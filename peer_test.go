package monarch_test

// The README's two-node walkthrough, runnable: node A serves its
// tier-0 cache over real loopback TCP, node B mounts it as a peer
// tier through the public facade, and a read of a non-owned file is
// served by the sibling's cache instead of the PFS.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"monarch"
)

func TestPublicAPIPeerNetwork(t *testing.T) {
	ctx := context.Background()
	nodes := []string{"nodeA", "nodeB"}
	ring, err := monarch.NewPeerRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Pick one file owned by each node so both routes are exercised.
	var ownedByA, ownedByB string
	for i := 0; ownedByA == "" || ownedByB == ""; i++ {
		name := fmt.Sprintf("shard-%04d", i)
		if ring.Owner(name) == "nodeA" && ownedByA == "" {
			ownedByA = name
		}
		if ring.Owner(name) == "nodeB" && ownedByB == "" {
			ownedByB = name
		}
	}
	payload := []byte("peer-served bytes")
	pfs := monarch.NewMemFS("lustre", 0)
	for _, name := range []string{ownedByA, ownedByB} {
		if err := pfs.WriteFile(ctx, name, payload); err != nil {
			t.Fatal(err)
		}
	}

	// Node A: a tier-0 cache holding its owned file, served to peers
	// (the monarch-serve daemon is this, wrapped around OSFS).
	ssdA := monarch.NewMemFS("ssdA", 0)
	if err := ssdA.WriteFile(ctx, ownedByA, payload); err != nil {
		t.Fatal(err)
	}
	srv, err := monarch.NewPeerServer(monarch.PeerServerConfig{Backend: ssdA})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	// Node B: local SSD above the peer tier above the PFS.
	clientA, err := monarch.NewPeerClient(monarch.PeerClientConfig{
		Name: "peer:nodeA",
		Dial: monarch.PeerTCPDialer(ln.Addr().String(), time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	peers, err := monarch.NewPeerTier("peers", "nodeB", ring, map[string]*monarch.PeerClient{"nodeA": clientA})
	if err != nil {
		t.Fatal(err)
	}
	m, err := monarch.New(monarch.Config{
		Levels: []monarch.Backend{monarch.NewMemFS("ssdB", 0), peers, pfs},
		Pool:   monarch.NewPool(2),
		Peer: monarch.PeerConfig{
			Tier: 1,
			Owns: func(name string) bool { return ring.Owner(name) == "nodeB" },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}

	// Non-owned file: node A's cache serves it over the wire.
	buf := make([]byte, len(payload))
	if _, err := m.ReadAt(ctx, ownedByA, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(payload) {
		t.Fatalf("peer read returned %q", buf)
	}
	s := m.Stats()
	if s.PeerHits != 1 || s.PeerHitBytes != int64(len(payload)) {
		t.Fatalf("expected 1 peer hit of %d bytes, got %+v", len(payload), s)
	}
	if s.ReadsServed[len(s.ReadsServed)-1] != 0 {
		t.Fatal("peer-served read still touched the PFS")
	}

	// Owned file: never peer-routed, served from the PFS and cached
	// locally like any single-node read.
	if _, err := m.ReadAt(ctx, ownedByB, buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats(); got.PeerHits != 1 || got.PeerMisses != 0 {
		t.Fatalf("owned read was peer-routed: %+v", got)
	}
}

// TestPublicAPIPeerChurn is the replicated walkthrough through the
// public facade: a 3-node ring at R=2, gossip membership, and a dead
// primary whose shard is still served peer-local by the next replica —
// zero fallbacks, breaker untouched.
func TestPublicAPIPeerChurn(t *testing.T) {
	ctx := context.Background()
	const replicas = 2
	ring, err := monarch.NewPeerRing([]string{"nodeA", "nodeB", "nodeC"}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// A file whose replica set is {A, C} in either order: B routes to
	// it, and when its primary dies the other replica must serve.
	var name string
	var owners []string
	for i := 0; name == ""; i++ {
		cand := fmt.Sprintf("shard-%04d", i)
		o := ring.OwnersOf(cand, replicas)
		if o[0] != "nodeB" && o[1] != "nodeB" {
			name, owners = cand, o
		}
	}
	payload := []byte("replica-served bytes")
	pfs := monarch.NewMemFS("lustre", 0)
	if err := pfs.WriteFile(ctx, name, payload); err != nil {
		t.Fatal(err)
	}

	// Both replicas hold the file (replica-aware placement would have
	// put it there); each serves its cache over loopback TCP.
	servers := map[string]*monarch.PeerServer{}
	clients := map[string]*monarch.PeerClient{}
	for _, node := range owners {
		cache := monarch.NewMemFS("ssd-"+node, 0)
		if err := cache.WriteFile(ctx, name, payload); err != nil {
			t.Fatal(err)
		}
		srv, err := monarch.NewPeerServer(monarch.PeerServerConfig{Backend: cache})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		servers[node] = srv
		c, err := monarch.NewPeerClient(monarch.PeerClientConfig{
			Name: "peer:" + node,
			Dial: monarch.PeerTCPDialer(ln.Addr().String(), time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[node] = c
	}

	mem, err := monarch.NewPeerMembership(monarch.PeerMembershipConfig{
		Self: "nodeB", Peers: owners,
	})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := monarch.NewPeerHeartbeater(mem, clients, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	hb.Start()
	defer hb.Stop()

	peers, err := monarch.NewPeerTierWithConfig(monarch.PeerTierConfig{
		Self: "nodeB", Ring: ring, Clients: clients,
		Replicas:   replicas,
		Membership: mem,
		Hedge:      monarch.PeerHedgeConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := monarch.New(monarch.Config{
		Levels: []monarch.Backend{monarch.NewMemFS("ssdB", 0), peers, pfs},
		Pool:   monarch.NewPool(2),
		Peer: monarch.PeerConfig{
			Tier: 1,
			Owns: func(n string) bool { return ring.OwnedBy(n, "nodeB", replicas) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}

	// Healthy cluster: the primary replica serves.
	buf := make([]byte, len(payload))
	if _, err := m.ReadAt(ctx, name, buf, 0); err != nil {
		t.Fatal(err)
	}
	// Kill the primary; the read must come from the other replica with
	// no fallback and no breaker movement.
	servers[owners[0]].Close()
	if _, err := m.ReadAt(ctx, name, buf, 0); err != nil {
		t.Fatalf("read through dead primary: %v", err)
	}
	if string(buf) != string(payload) {
		t.Fatalf("replica read returned %q", buf)
	}
	s := m.Stats()
	if s.PeerHits != 2 {
		t.Fatalf("expected both reads peer-served, got %+v", s)
	}
	if s.Fallbacks != 0 {
		t.Fatalf("dead primary caused %d PFS fallbacks with a live replica", s.Fallbacks)
	}
	if st := m.TierState(1); st != monarch.TierHealthy {
		t.Fatalf("peer tier state %v, want healthy", st)
	}

	// The membership view notices the death within its timeouts.
	deadline := time.Now().Add(5 * time.Second)
	for mem.State(owners[0]) != monarch.PeerDead {
		if time.Now().After(deadline) {
			t.Fatalf("view never marked %s dead: %v", owners[0], mem.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if mem.State(owners[1]) != monarch.PeerAlive {
		t.Fatalf("live replica demoted: %v", mem.Snapshot())
	}
}
