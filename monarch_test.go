package monarch_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"monarch"
)

// buildStack assembles a public-API middleware over memfs tiers with
// nfiles of size bytes staged on the "PFS".
func buildStack(t *testing.T, quota int64, nfiles, size int) (*monarch.Monarch, *monarch.MemFS, *monarch.Counting) {
	t.Helper()
	ctx := context.Background()
	pfsRaw := monarch.NewMemFS("lustre", 0)
	for i := 0; i < nfiles; i++ {
		content := bytes.Repeat([]byte{byte(i + 1)}, size)
		if err := pfsRaw.WriteFile(ctx, fmt.Sprintf("shard-%02d", i), content); err != nil {
			t.Fatal(err)
		}
	}
	pfsRaw.SetReadOnly(true)
	pfs := monarch.NewCounting(pfsRaw)
	tier0 := monarch.NewMemFS("ssd", quota)
	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{tier0, pfs},
		Pool:          monarch.NewPool(4),
		FullFileFetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, tier0, pfs
}

func waitIdle(t *testing.T, m *monarch.Monarch) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placements did not settle")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	m, tier0, pfs := buildStack(t, 0, 4, 4096)

	if m.NumFiles() != 4 || m.Levels() != 2 {
		t.Fatalf("namespace %d files, %d levels", m.NumFiles(), m.Levels())
	}
	buf := make([]byte, 512)
	n, err := m.ReadAt(ctx, "shard-01", buf, 1024)
	if err != nil || n != 512 || buf[0] != 2 {
		t.Fatalf("read: n=%d err=%v b=%d", n, err, buf[0])
	}
	waitIdle(t, m)
	if lvl, _ := m.LevelOf("shard-01"); lvl != 0 {
		t.Fatalf("level = %d after placement", lvl)
	}
	if tier0.Used() != 4096 {
		t.Fatalf("tier0 used = %d", tier0.Used())
	}
	before := pfs.Counts().DataOps()
	for i := 0; i < 5; i++ {
		if _, err := m.ReadAt(ctx, "shard-01", buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if pfs.Counts().DataOps() != before {
		t.Fatal("promoted file still hit the PFS")
	}
	st := m.Stats()
	if st.Placements != 1 || st.HitRatio() == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	ctx := context.Background()
	m, _, _ := buildStack(t, 0, 1, 16)
	if _, err := m.ReadAt(ctx, "nope", make([]byte, 1), 0); !errors.Is(err, monarch.ErrUnknownFile) {
		t.Fatalf("got %v", err)
	}
}

func TestPublicAPIOverOSFS(t *testing.T) {
	ctx := context.Background()
	pfsDir, ssdDir := t.TempDir(), t.TempDir()
	seed, err := monarch.NewOSFS("seed", pfsDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAA}, 8192)
	if err := seed.WriteFile(ctx, "data/shard-0", want); err != nil {
		t.Fatal(err)
	}
	pfs, err := monarch.NewOSFS("lustre", pfsDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tier0, err := monarch.NewOSFS("ssd", ssdDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{tier0, pfs},
		Pool:          monarch.NewPool(2),
		FullFileFetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFull(ctx, "data/shard-0")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read through middleware failed: %v", err)
	}
	waitIdle(t, m)
	onDisk, err := tier0.ReadFile(ctx, "data/shard-0")
	if err != nil || !bytes.Equal(onDisk, want) {
		t.Fatalf("tier0 copy: %v", err)
	}
}

func TestPublicEvictionPoliciesExposed(t *testing.T) {
	if monarch.NewLRU().Name() != "lru" || monarch.NewFIFO().Name() != "fifo" {
		t.Fatal("policy constructors broken")
	}
	if monarch.StageOnFirstRead.String() != "on-first-read" {
		t.Fatal("staging constant broken")
	}
}
