// Quickstart: run MONARCH as a real Go library over two in-memory
// storage tiers.
//
// A small "dataset" is staged on the lower tier (standing in for the
// shared PFS), a quota-limited fast tier sits above it, and reads go
// through the middleware: the first read of each file is served from
// the source while a background worker promotes the whole file; later
// reads hit the fast tier.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"monarch"
)

func main() {
	ctx := context.Background()

	// The "PFS": read-only, holds the dataset.
	pfsRaw := monarch.NewMemFS("lustre", 0)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("train.tfrecord-%05d-of-00008", i)
		content := bytes.Repeat([]byte{byte('a' + i)}, 1<<20)
		if err := pfsRaw.WriteFile(ctx, name, content); err != nil {
			log.Fatal(err)
		}
	}
	pfsRaw.SetReadOnly(true)
	pfs := monarch.NewCounting(pfsRaw) // count the I/O pressure we avoid

	// The fast tier: quota fits only 5 of the 8 files — MONARCH caches
	// what fits and leaves the rest on the PFS, no evictions.
	tier0 := monarch.NewMemFS("ssd", 5<<20)

	events := monarch.NewEventLog(64)
	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{tier0, pfs},
		Pool:          monarch.NewPool(6), // the paper's thread-pool size
		FullFileFetch: true,
		Events:        events,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	start := time.Now()
	if err := m.Init(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("namespace: %d files (built in %v)\n", m.NumFiles(), time.Since(start).Round(time.Microsecond))

	// "Epoch 1": read a slice of every file, the way a DL framework's
	// record reader issues preads.
	buf := make([]byte, 64<<10)
	for _, fi := range m.Files() {
		if _, err := m.ReadAt(ctx, fi.Name, buf, 0); err != nil {
			log.Fatal(err)
		}
	}
	for !m.Idle() {
		time.Sleep(time.Millisecond) // let background placement settle
	}

	// "Epoch 2": the placed files now come from the fast tier.
	opsBefore := pfs.Counts().DataOps()
	for _, fi := range m.Files() {
		if _, err := m.ReadAt(ctx, fi.Name, buf, 512<<10); err != nil {
			log.Fatal(err)
		}
	}
	opsEpoch2 := pfs.Counts().DataOps() - opsBefore

	st := m.Stats()
	fmt.Printf("placed %d of %d files (%d bytes) on the fast tier\n",
		st.Placements, m.NumFiles(), st.PlacedBytes)
	fmt.Printf("epoch 2 PFS reads: %d of 8 (hit ratio so far: %.0f%%)\n",
		opsEpoch2, 100*st.HitRatio())
	for _, fi := range m.Files() {
		lvl, _ := m.LevelOf(fi.Name)
		where := "ssd"
		if lvl == 1 {
			where = "lustre"
		}
		fmt.Printf("  %-28s level %d (%s)\n", fi.Name, lvl, where)
	}

	fmt.Println("\nmiddleware event log:")
	for _, e := range events.Events() {
		fmt.Printf("  %s\n", e)
	}
}
