// tfpipeline: train a model through the simulated TensorFlow-style
// input pipeline under all four storage setups and compare per-epoch
// times — Figure 3 of the paper in miniature.
//
// Run with: go run ./examples/tfpipeline [-model lenet] [-scale 0.01]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"monarch/internal/experiments"
	"monarch/internal/report"
)

func main() {
	model := flag.String("model", "lenet", "lenet | alexnet | resnet50")
	scale := flag.Float64("scale", 1.0/64, "dataset scale in (0,1]")
	runs := flag.Int("runs", 3, "seeded repetitions")
	flag.Parse()

	p := experiments.DefaultParams(*scale)
	p.Runs = *runs
	ds100, _ := p.Datasets()

	chart := report.NewBarChart(fmt.Sprintf(
		"%s on the %s dataset (scale %.3g, mean ± std over %d runs)",
		*model, ds100.Name, *scale, *runs))
	table := report.NewTable("run summary",
		"setup", "total", "cpu", "gpu", "PFS ops")

	for _, setup := range experiments.AllSetups() {
		agg, err := experiments.RunMany(setup, *model, ds100, p)
		if err != nil {
			log.Fatal(err)
		}
		for e := range agg.EpochTime {
			chart.Add(fmt.Sprintf("epoch %d", e+1), string(setup),
				agg.EpochTime[e].Mean(), agg.EpochTime[e].StdDev(), " s")
		}
		table.Add(string(setup),
			report.Seconds(agg.TotalTime.Mean()),
			report.Percent(agg.CPUUtil.Mean()),
			report.Percent(agg.GPUUtil.Mean()),
			report.Count(int64(agg.PFSOpTotal.Mean())))
	}
	chart.Render(os.Stdout)
	fmt.Println()
	table.Render(os.Stdout)
}
