// partialcache: the paper's headline scenario — a dataset twice the
// size of the local tier. MONARCH caches what fits during epoch 1 and
// serves the remainder from the PFS, cutting shared-file-system
// operations without ever evicting (§IV, 200 GiB dataset).
//
// Run with: go run ./examples/partialcache [-scale 0.015625]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"monarch/internal/dataset"
	"monarch/internal/experiments"
	"monarch/internal/report"
)

func main() {
	scale := flag.Float64("scale", 1.0/64, "dataset scale in (0,1]")
	runs := flag.Int("runs", 3, "seeded repetitions")
	flag.Parse()

	p := experiments.DefaultParams(*scale)
	p.Runs = *runs
	_, ds200 := p.Datasets()
	man, err := dataset.Plan(ds200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d shards, %.1f GiB; tier-0 quota %.1f GiB (%.0f%% coverage)\n\n",
		ds200.Name, ds200.NumShards,
		float64(man.TotalBytes())/(1<<30),
		float64(p.SSDQuota())/(1<<30),
		100*float64(p.SSDQuota())/float64(man.TotalBytes()))

	lustre, err := experiments.RunMany(experiments.VanillaLustre, "lenet", ds200, p)
	if err != nil {
		log.Fatal(err)
	}
	mon, err := experiments.RunMany(experiments.Monarch, "lenet", ds200, p)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("per-epoch comparison (LeNet, mean over runs)",
		"epoch", "lustre time", "monarch time", "lustre PFS ops", "monarch PFS ops")
	for e := range mon.EpochTime {
		t.Add(fmt.Sprintf("%d", e+1),
			report.Seconds(lustre.EpochTime[e].Mean()),
			report.Seconds(mon.EpochTime[e].Mean()),
			report.Count(int64(lustre.PFSOps[e].Mean())),
			report.Count(int64(mon.PFSOps[e].Mean())))
	}
	t.Render(os.Stdout)

	fmt.Printf("\ntotal training time: %.1f s → %.1f s (−%.0f%%)\n",
		lustre.TotalTime.Mean(), mon.TotalTime.Mean(),
		100*(1-mon.TotalTime.Mean()/lustre.TotalTime.Mean()))
	fmt.Printf("total PFS data ops:  %s → %s (−%.0f%%)\n",
		report.Count(int64(lustre.PFSOpTotal.Mean())),
		report.Count(int64(mon.PFSOpTotal.Mean())),
		100*(1-mon.PFSOpTotal.Mean()/lustre.PFSOpTotal.Mean()))
	fmt.Printf("bytes placed on the local tier: %s (no evictions, by design)\n",
		experiments.GiB(mon.Cached.Mean()))
}
