// pytorchloader: drive MONARCH with a PyTorch-style DataLoader — the
// paper's §VI portability direction. Unlike the TensorFlow pipeline's
// sequential 256 KiB shard streams, DataLoader workers issue one
// positioned read per record in globally shuffled order; the same
// middleware ReadAt call serves both patterns.
//
// Run with: go run ./examples/pytorchloader [-scale 0.015625]
package main

import (
	"flag"
	"fmt"
	"log"

	"monarch/internal/core"
	"monarch/internal/dataset"
	"monarch/internal/experiments"
	"monarch/internal/models"
	"monarch/internal/pipeline"
	"monarch/internal/pool"
	"monarch/internal/ptloader"
	"monarch/internal/sim"
	"monarch/internal/simstore"
	"monarch/internal/storage"
)

func main() {
	scale := flag.Float64("scale", 1.0/64, "dataset scale in (0,1]")
	flag.Parse()

	p := experiments.DefaultParams(*scale)
	ds100, _ := p.Datasets()
	man, err := dataset.Plan(ds100)
	if err != nil {
		log.Fatal(err)
	}
	mdl := models.LeNet()

	run := func(useMonarch bool) (epochSecs []float64, pfsOps int64) {
		env := sim.NewEnv(7)
		defer env.Close()
		lustreDev := simstore.NewDevice(env, p.Lustre)
		lustreDev.SetInterference(simstore.NewInterference(env, p.Interference))
		lustre := simstore.NewStore(lustreDev, "lustre", 0)
		for i := range man.Shards {
			lustre.AddFile(man.Shards[i].Name, man.Shards[i].Size)
		}
		lustre.SetReadOnly(true)
		pfs := storage.NewCounting(lustre)

		cfg := ptloader.DefaultConfig()
		cfg.Manifest = man
		cfg.PreprocessPerImage = mdl.PreprocessPerImage
		var src pipeline.Source = pfs
		var m *core.Monarch
		if useMonarch {
			ssd := simstore.NewStore(simstore.NewDevice(env, p.SSD), "ssd", p.SSDQuota())
			m, err = core.New(core.Config{
				Levels:        []storage.Backend{ssd, pfs},
				Pool:          pool.NewSimPool(env, "placer", p.PlacementThreads),
				FullFileFetch: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			src = m
		}
		cfg.Source = src
		cfg.CPU = sim.NewResource(env, "cpu", p.Node.CPUCores)
		gpu := sim.NewResource(env, "gpu", p.Node.GPUs)
		refs := ptloader.Flatten(man)

		env.Go("train", func(proc *sim.Proc) {
			if m != nil {
				if err := m.Init(proc.Context()); err != nil {
					log.Fatal(err)
				}
			}
			for epoch := 0; epoch < p.Epochs; epoch++ {
				start := env.Now()
				ep, err := ptloader.StartEpoch(env, cfg, refs, epoch, 7)
				if err != nil {
					log.Fatal(err)
				}
				for {
					if _, ok := ep.Next(proc); !ok {
						break
					}
					gpu.Acquire(proc, gpu.Capacity())
					proc.Sleep(mdl.StepTime)
					gpu.Release(gpu.Capacity())
				}
				if err := ep.Err(); err != nil {
					log.Fatal(err)
				}
				epochSecs = append(epochSecs, (env.Now() - start).Seconds())
			}
		})
		if err := env.Run(); err != nil {
			log.Fatal(err)
		}
		return epochSecs, pfs.Counts().DataOps()
	}

	vEpochs, vOps := run(false)
	mEpochs, mOps := run(true)

	fmt.Printf("PyTorch-style DataLoader, LeNet, %s at scale %.4g\n\n", ds100.Name, *scale)
	fmt.Printf("%-8s %14s %14s\n", "epoch", "vanilla-lustre", "monarch")
	for i := range vEpochs {
		fmt.Printf("%-8d %13.1fs %13.1fs\n", i+1, vEpochs[i], mEpochs[i])
	}
	var vTot, mTot float64
	for i := range vEpochs {
		vTot += vEpochs[i]
		mTot += mEpochs[i]
	}
	fmt.Printf("%-8s %13.1fs %13.1fs  (−%.0f%%)\n", "total", vTot, mTot, 100*(1-mTot/vTot))
	fmt.Printf("\nPFS data ops: %d → %d (−%.0f%%)\n", vOps, mOps, 100*(1-float64(mOps)/float64(vOps)))
	fmt.Println("note: record-grained access makes ~1 op per image — the op reduction is")
	fmt.Println("even larger than under TensorFlow's 256 KiB streaming reads.")
}
