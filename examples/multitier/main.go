// multitier: the paper's §VI future-work direction — a three-level
// hierarchy (RAM above SSD above PFS) — exercised through the real
// middleware API over in-memory backends. Files spill from the small
// fast tier to the larger one, and only the overflow stays on the PFS.
//
// Run with: go run ./examples/multitier
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"monarch"
)

func main() {
	ctx := context.Background()

	pfsRaw := monarch.NewMemFS("lustre", 0)
	const files, fileSize = 12, 1 << 20
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("shard-%02d", i)
		if err := pfsRaw.WriteFile(ctx, name, bytes.Repeat([]byte{byte(i)}, fileSize)); err != nil {
			log.Fatal(err)
		}
	}
	pfsRaw.SetReadOnly(true)
	pfs := monarch.NewCounting(pfsRaw)

	ram := monarch.NewMemFS("ram", 3<<20) // 3 files
	ssd := monarch.NewMemFS("ssd", 5<<20) // 5 more

	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{ram, ssd, pfs},
		Pool:          monarch.NewPool(6),
		FullFileFetch: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, 128<<10)
	for _, fi := range m.Files() {
		if _, err := m.ReadAt(ctx, fi.Name, buf, 0); err != nil {
			log.Fatal(err)
		}
	}
	for !m.Idle() {
		time.Sleep(time.Millisecond)
	}

	perLevel := map[int]int{}
	for _, fi := range m.Files() {
		lvl, _ := m.LevelOf(fi.Name)
		perLevel[lvl]++
	}
	fmt.Printf("placement after epoch 1 (12 × 1 MiB files):\n")
	fmt.Printf("  level 0 ram    (3 MiB quota): %d files\n", perLevel[0])
	fmt.Printf("  level 1 ssd    (5 MiB quota): %d files\n", perLevel[1])
	fmt.Printf("  level 2 lustre (source):      %d files\n", perLevel[2])

	st := m.Stats()
	fmt.Printf("placements: %d, skips: %d, evictions: %d\n",
		st.Placements, st.PlacementSkips, st.Evictions)
	fmt.Printf("ram used %d / ssd used %d bytes\n", ram.Used(), ssd.Used())
}
