package monarch_test

// One benchmark per paper table and figure (plus this reproduction's
// ablations): each iteration regenerates the complete artefact — all
// setups, models and seeded repetitions — at a reduced scale, and fails
// the bench if any of the experiment's shape checks against the paper's
// reported behaviour does not hold. Run the monarch-bench command for
// human-readable output or full-scale runs.

import (
	"testing"

	"monarch/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p := experiments.QuickParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o, err := exp.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if failed := o.Failed(); len(failed) > 0 {
			b.Fatalf("shape checks failed: %v", failed)
		}
	}
}

// BenchmarkFig1MotivationTrainingTime regenerates Figure 1: per-epoch
// training time for vanilla-lustre / vanilla-local / vanilla-caching on
// the 100 GiB dataset across LeNet, AlexNet, ResNet-50.
func BenchmarkFig1MotivationTrainingTime(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkTableMotivationResourceUsage regenerates §II-A's CPU/GPU/
// memory usage numbers.
func BenchmarkTableMotivationResourceUsage(b *testing.B) {
	benchExperiment(b, "resources-motivation")
}

// BenchmarkFig3TrainingTime100GiB regenerates Figure 3: the four setups
// including MONARCH on the 100 GiB dataset.
func BenchmarkFig3TrainingTime100GiB(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4TrainingTime200GiB regenerates Figure 4: vanilla-lustre
// vs MONARCH on the 200 GiB dataset that exceeds the local tier.
func BenchmarkFig4TrainingTime200GiB(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkTableLustreIOOps regenerates §IV-A's I/O-operation counts
// (798,340 ops/epoch vanilla; ~360 k remaining with MONARCH; ~55 %
// average reduction).
func BenchmarkTableLustreIOOps(b *testing.B) { benchExperiment(b, "io-ops") }

// BenchmarkTableEvalResourceUsage regenerates §IV-B's resource usage
// with MONARCH on both datasets.
func BenchmarkTableEvalResourceUsage(b *testing.B) { benchExperiment(b, "resources-eval") }

// BenchmarkTableMetadataInit regenerates §IV-A's metadata-container
// initialisation timings (13 s / 52 s).
func BenchmarkTableMetadataInit(b *testing.B) { benchExperiment(b, "metadata-init") }

// BenchmarkAblationEviction validates §III-A's no-eviction argument
// against LRU and FIFO replacement.
func BenchmarkAblationEviction(b *testing.B) { benchExperiment(b, "abl-eviction") }

// BenchmarkAblationThreadPool sweeps the placement pool around the
// paper's 6 threads.
func BenchmarkAblationThreadPool(b *testing.B) { benchExperiment(b, "abl-threads") }

// BenchmarkAblationStaging compares §III-A's placement-timing options.
func BenchmarkAblationStaging(b *testing.B) { benchExperiment(b, "abl-staging") }

// BenchmarkAblationFullFetch toggles the full-file background fetch.
func BenchmarkAblationFullFetch(b *testing.B) { benchExperiment(b, "abl-fullfetch") }

// BenchmarkAblationPFSSpeed sweeps PFS bandwidth to locate the
// crossover where tiering stops paying.
func BenchmarkAblationPFSSpeed(b *testing.B) { benchExperiment(b, "abl-pfs-speed") }

// BenchmarkAblationCoverage sweeps dataset-to-quota ratios to verify
// the partial-caching law behind Figure 4.
func BenchmarkAblationCoverage(b *testing.B) { benchExperiment(b, "abl-coverage") }

// BenchmarkAblationCompute sweeps GPU step time across the I/O-bound to
// compute-bound continuum (the law behind the paper's model selection).
func BenchmarkAblationCompute(b *testing.B) { benchExperiment(b, "abl-compute") }

// BenchmarkAblationReaders sweeps the pipeline's parallel-read width.
func BenchmarkAblationReaders(b *testing.B) { benchExperiment(b, "abl-readers") }

// BenchmarkExtensionMultiTier exercises §VI's future-work multi-level
// hierarchy.
func BenchmarkExtensionMultiTier(b *testing.B) { benchExperiment(b, "ext-multitier") }

// BenchmarkExtensionPyTorch drives MONARCH with a PyTorch-style
// DataLoader access pattern (§VI portability).
func BenchmarkExtensionPyTorch(b *testing.B) { benchExperiment(b, "ext-pytorch") }

// BenchmarkExtensionDistributed runs multi-node training against one
// shared PFS (§VI distributed training / §I concurrent-job motivation).
func BenchmarkExtensionDistributed(b *testing.B) { benchExperiment(b, "ext-distributed") }

// BenchmarkExtensionResilience injects a tier-0 device failure
// mid-training and verifies graceful fallback to the PFS.
func BenchmarkExtensionResilience(b *testing.B) { benchExperiment(b, "ext-resilience") }

// BenchmarkTraceTimeline charts PFS throughput over virtual time.
func BenchmarkTraceTimeline(b *testing.B) { benchExperiment(b, "trace-timeline") }

// BenchmarkTableLatency reports per-pread latency percentiles — the
// operation-level mechanism behind the epoch-time improvements.
func BenchmarkTableLatency(b *testing.B) { benchExperiment(b, "tab-latency") }
