package monarch_test

// End-to-end integration: a real synthetic TFRecord dataset is
// materialised on a real directory (the "PFS"), MONARCH tiers it into a
// second directory (the "SSD"), and a reader walks every record
// *through the middleware* with full CRC verification — the library
// exactly as a downstream user would run it, no simulation involved.

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"monarch"
	"monarch/internal/dataset"
	"monarch/internal/recordio"
	"monarch/internal/storage"
	"monarch/internal/tfrecord"
)

// middlewareReaderAt adapts Monarch to io.ReaderAt for one file so the
// stock record readers can stream through it.
type middlewareReaderAt struct {
	m    *monarch.Monarch
	name string
	ctx  context.Context
}

func (r middlewareReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.m.ReadAt(r.ctx, r.name, p, off)
	if err == nil && n < len(p) {
		err = io.EOF
	}
	return n, err
}

func buildRealStack(t *testing.T, spec dataset.Spec, quota int64) (*monarch.Monarch, *dataset.Manifest, *monarch.Counting) {
	t.Helper()
	ctx := context.Background()
	pfsDir, ssdDir := t.TempDir(), t.TempDir()

	seed, err := storage.NewOSFS("seed", pfsDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	man, err := dataset.Materialize(ctx, seed, spec)
	if err != nil {
		t.Fatal(err)
	}

	pfsRaw, err := monarch.NewOSFS("lustre", pfsDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	pfs := monarch.NewCounting(pfsRaw)
	tier0, err := monarch.NewOSFS("ssd", ssdDir, quota)
	if err != nil {
		t.Fatal(err)
	}
	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{tier0, pfs},
		Pool:          monarch.NewPool(6),
		FullFileFetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	return m, man, pfs
}

func TestIntegrationTFRecordTrainingEpochs(t *testing.T) {
	ctx := context.Background()
	spec := dataset.Spec{
		Name:       "it",
		NumImages:  120,
		TotalBytes: 600_000,
		NumShards:  6,
		SizeSigma:  0.3,
		Seed:       42,
	}
	m, man, pfs := buildRealStack(t, spec, 0)

	// Two "epochs": stream every record of every shard through the
	// middleware with CRC verification.
	for epoch := 0; epoch < 2; epoch++ {
		recID := 0
		for _, shard := range man.Shards {
			r := tfrecord.NewReader(io.NewSectionReader(
				middlewareReaderAt{m: m, name: shard.Name, ctx: ctx}, 0, shard.Size))
			for range shard.Records {
				payload, err := r.Next()
				if err != nil {
					t.Fatalf("epoch %d shard %s: %v", epoch, shard.Name, err)
				}
				if !bytes.Equal(payload, dataset.Payload(recID, len(payload))) {
					t.Fatalf("epoch %d record %d corrupted through middleware", epoch, recID)
				}
				recID++
			}
		}
		if recID != spec.NumImages {
			t.Fatalf("epoch %d: %d records, want %d", epoch, recID, spec.NumImages)
		}
		// Quiesce placements between epochs, as epoch boundaries do.
		deadline := time.Now().Add(10 * time.Second)
		for !m.Idle() {
			if time.Now().After(deadline) {
				t.Fatal("placement did not quiesce")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// After epoch 1 everything is placed: epoch 2 must not touch the PFS.
	st := m.Stats()
	if st.Placements != int64(spec.NumShards) {
		t.Fatalf("placements = %d, want %d", st.Placements, spec.NumShards)
	}
	counts := pfs.Counts()
	// Total PFS bytes read ≈ dataset once for the foreground epoch-1
	// partial reads + background full fetches; epoch 2 adds nothing, so
	// the ceiling is 2× the dataset (double-read worst case).
	if counts.BytesRead > 2*man.TotalBytes() {
		t.Fatalf("PFS read %d bytes for a %d-byte dataset", counts.BytesRead, man.TotalBytes())
	}
	if st.HitRatio() < 0.4 {
		t.Fatalf("hit ratio = %.2f", st.HitRatio())
	}
}

func TestIntegrationPartialQuotaRealDisk(t *testing.T) {
	ctx := context.Background()
	spec := dataset.Spec{
		Name:       "part",
		NumImages:  80,
		TotalBytes: 400_000,
		NumShards:  8,
		SizeSigma:  0.2,
		Seed:       7,
	}
	// Quota fits roughly half the shards.
	m, man, pfs := buildRealStack(t, spec, 200_000)

	buf := make([]byte, 4096)
	for _, shard := range man.Shards {
		if _, err := m.ReadAt(ctx, shard.Name, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placement did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
	st := m.Stats()
	if st.Placements == 0 || st.PlacementSkips == 0 {
		t.Fatalf("expected both placements and skips: %+v", st)
	}
	if st.Evictions != 0 {
		t.Fatal("no-eviction policy evicted")
	}
	// Epoch 2: placed shards must be PFS-free, skipped ones still read
	// from the PFS — and remain readable.
	before := pfs.Counts().DataOps()
	pfsReads := 0
	for _, shard := range man.Shards {
		if _, err := m.ReadAt(ctx, shard.Name, buf, 0); err != nil {
			t.Fatal(err)
		}
		if lvl, _ := m.LevelOf(shard.Name); lvl == 1 {
			pfsReads++
		}
	}
	if got := int(pfs.Counts().DataOps() - before); got != pfsReads {
		t.Fatalf("epoch-2 PFS ops = %d, want %d", got, pfsReads)
	}
}

func TestIntegrationChunkedRealDisk(t *testing.T) {
	ctx := context.Background()
	spec := dataset.Spec{
		Name:       "ch",
		NumImages:  120,
		TotalBytes: 600_000,
		NumShards:  6,
		SizeSigma:  0.3,
		Seed:       11,
	}
	pfsDir, ssdDir := t.TempDir(), t.TempDir()

	seed, err := storage.NewOSFS("seed", pfsDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	man, err := dataset.Materialize(ctx, seed, spec)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := monarch.NewOSFS("lustre", pfsDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	tier0, err := monarch.NewOSFS("ssd", ssdDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := monarch.New(monarch.Config{
		Levels:        []monarch.Backend{tier0, pfs},
		Pool:          monarch.NewPool(6),
		FullFileFetch: true,
		ChunkSize:     32 << 10, // shards are ~100 KB → a handful of chunks each
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}

	// Epoch 1: stream every record through the middleware with CRC
	// verification while the chunked copies race the reads in the
	// background. The first read of each shard is a small header read,
	// so every placement takes the chunked path (OSFS Allocate/WriteAt
	// on a real directory).
	recID := 0
	for _, shard := range man.Shards {
		r := tfrecord.NewReader(io.NewSectionReader(
			middlewareReaderAt{m: m, name: shard.Name, ctx: ctx}, 0, shard.Size))
		for range shard.Records {
			payload, err := r.Next()
			if err != nil {
				t.Fatalf("shard %s: %v", shard.Name, err)
			}
			if !bytes.Equal(payload, dataset.Payload(recID, len(payload))) {
				t.Fatalf("record %d corrupted through middleware", recID)
			}
			recID++
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placement did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}

	st := m.Stats()
	if st.Placements != int64(spec.NumShards) {
		t.Fatalf("placements = %d, want %d", st.Placements, spec.NumShards)
	}
	// Every shard exceeds one chunk, so chunked placement must have
	// fanned out more chunk writes than files.
	if st.ChunkPlacements <= st.Placements {
		t.Fatalf("chunk placements = %d for %d placements — chunked path not taken",
			st.ChunkPlacements, st.Placements)
	}
	// Partial hits depend on real-disk timing, but the counters must
	// agree with each other.
	if (st.PartialHits == 0) != (st.PartialHitBytes == 0) {
		t.Fatalf("inconsistent partial-hit counters: %d hits, %d bytes",
			st.PartialHits, st.PartialHitBytes)
	}

	// The chunk-assembled copies on the SSD directory are byte-identical
	// to the PFS originals, and epoch 2 serves every shard from tier 0.
	for _, shard := range man.Shards {
		want, err := os.ReadFile(filepath.Join(pfsDir, shard.Name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(ssdDir, shard.Name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shard %s differs between tiers after chunked placement", shard.Name)
		}
		if lvl, _ := m.LevelOf(shard.Name); lvl != 0 {
			t.Fatalf("shard %s at level %d after placement", shard.Name, lvl)
		}
	}
}

func TestIntegrationRecordIOFormatAgnostic(t *testing.T) {
	ctx := context.Background()
	spec := dataset.Spec{
		Name:       "mx",
		Format:     dataset.RecordIO,
		NumImages:  60,
		TotalBytes: 240_000,
		NumShards:  4,
		SizeSigma:  0.25,
		Seed:       3,
	}
	m, man, _ := buildRealStack(t, spec, 0)

	recID := 0
	for _, shard := range man.Shards {
		r := recordio.NewReader(io.NewSectionReader(
			middlewareReaderAt{m: m, name: shard.Name, ctx: ctx}, 0, shard.Size))
		for range shard.Records {
			payload, err := r.Next()
			if err != nil {
				t.Fatalf("shard %s: %v", shard.Name, err)
			}
			if !bytes.Equal(payload, dataset.Payload(recID, len(payload))) {
				t.Fatalf("record %d corrupted", recID)
			}
			recID++
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placement did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
	// The middleware tiered MXNet-format shards exactly as TFRecords:
	// nothing in MONARCH depends on the container format.
	if st := m.Stats(); st.Placements != int64(spec.NumShards) {
		t.Fatalf("placements = %d", st.Placements)
	}
}
