package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Two encodings share one logical layout: header, then interleaved
// file definitions and events (definitions always precede the first
// event referencing them), then a trailer.
//
// JSONL (default): one JSON object per line.
//
//	{"monarch_trace":1,"clock":"virtual",...}    header
//	{"file":{"id":1,"name":"shard-0","size":8}}  definition
//	{"t":12,"k":"read","f":1,"c":"pfs","tier":1,"lat":3,"off":0,"len":262144}
//	{"summary":{...},"trace":{...}}              trailer
//
// Binary (".bin" paths): magic "MTRB1\n", a length-prefixed JSON
// header, then tagged records — tag 1 a fixed-size event (40 bytes in
// version 2; 32 in version 1, which lacked the trailing Req field —
// the header's version selects the record length on read), tag 2 a
// file definition, tag 3 a length-prefixed JSON trailer. Everything is
// little-endian.
type encoder interface {
	header(h Header) error
	define(f File) error
	event(e Event) error
	trailer(t Trailer) error
	flush() error
}

// binMagic opens every binary trace.
var binMagic = []byte("MTRB1\n")

const (
	tagEvent   = 1
	tagDefine  = 2
	tagTrailer = 3
)

// --- JSONL ---

type jsonlEncoder struct {
	w   *bufio.Writer
	buf []byte
}

func newJSONLEncoder(w io.Writer) *jsonlEncoder {
	return &jsonlEncoder{w: bufio.NewWriterSize(w, 1<<16)}
}

func (e *jsonlEncoder) header(h Header) error {
	data, err := json.Marshal(h)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = e.w.Write(data)
	return err
}

func (e *jsonlEncoder) define(f File) error {
	data, err := json.Marshal(struct {
		File File `json:"file"`
	}{f})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = e.w.Write(data)
	return err
}

// event hand-builds the line: the drainer calls it once per event, and
// reflection-based marshalling dominates the drain cost otherwise.
func (e *jsonlEncoder) event(ev Event) error {
	b := e.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, ev.T, 10)
	b = append(b, `,"k":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.File != 0 {
		b = append(b, `,"f":`...)
		b = strconv.AppendUint(b, uint64(ev.File), 10)
	}
	if c := ev.Class.String(); c != "" {
		b = append(b, `,"c":"`...)
		b = append(b, c...)
		b = append(b, '"')
	}
	if ev.Kind != KindEpoch {
		b = append(b, `,"tier":`...)
		b = strconv.AppendInt(b, int64(ev.Tier), 10)
		b = append(b, `,"lat":`...)
		b = strconv.AppendUint(b, uint64(ev.Lat), 10)
	}
	if ev.Off != 0 {
		b = append(b, `,"off":`...)
		b = strconv.AppendInt(b, ev.Off, 10)
	}
	if ev.Len != 0 {
		b = append(b, `,"len":`...)
		b = strconv.AppendInt(b, ev.Len, 10)
	}
	if ev.Req != 0 {
		b = append(b, `,"r":`...)
		b = strconv.AppendUint(b, ev.Req, 10)
	}
	b = append(b, '}', '\n')
	e.buf = b
	_, err := e.w.Write(b)
	return err
}

func (e *jsonlEncoder) trailer(t Trailer) error {
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = e.w.Write(data)
	return err
}

func (e *jsonlEncoder) flush() error { return e.w.Flush() }

// --- binary ---

type binEncoder struct {
	w   *bufio.Writer
	rec [41]byte // tag + 40-byte event (v2 layout)
}

func newBinEncoder(w io.Writer) *binEncoder {
	return &binEncoder{w: bufio.NewWriterSize(w, 1<<16)}
}

func (e *binEncoder) blob(tag byte, data []byte) error {
	if err := e.w.WriteByte(tag); err != nil {
		return err
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(data)))
	if _, err := e.w.Write(n[:]); err != nil {
		return err
	}
	_, err := e.w.Write(data)
	return err
}

func (e *binEncoder) header(h Header) error {
	if _, err := e.w.Write(binMagic); err != nil {
		return err
	}
	data, err := json.Marshal(h)
	if err != nil {
		return err
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(data)))
	if _, err := e.w.Write(n[:]); err != nil {
		return err
	}
	_, err = e.w.Write(data)
	return err
}

func (e *binEncoder) define(f File) error {
	buf := make([]byte, 0, 16+len(f.Name))
	var u4 [4]byte
	binary.LittleEndian.PutUint32(u4[:], f.ID)
	buf = append(buf, u4[:]...)
	var u8 [8]byte
	binary.LittleEndian.PutUint64(u8[:], uint64(f.Size))
	buf = append(buf, u8[:]...)
	buf = append(buf, f.Name...)
	return e.blob(tagDefine, buf)
}

func (e *binEncoder) event(ev Event) error {
	b := e.rec[:]
	b[0] = tagEvent
	binary.LittleEndian.PutUint64(b[1:], uint64(ev.T))
	binary.LittleEndian.PutUint32(b[9:], ev.File)
	b[13] = byte(ev.Kind)
	b[14] = byte(ev.Class)
	b[15] = byte(ev.Tier)
	b[16] = ev.Lat
	binary.LittleEndian.PutUint64(b[17:], uint64(ev.Off))
	binary.LittleEndian.PutUint64(b[25:], uint64(ev.Len))
	binary.LittleEndian.PutUint64(b[33:], ev.Req)
	_, err := e.w.Write(b)
	return err
}

func (e *binEncoder) trailer(t Trailer) error {
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	return e.blob(tagTrailer, data)
}

func (e *binEncoder) flush() error { return e.w.Flush() }

// --- reading ---

// Trace is a fully decoded capture.
type Trace struct {
	Header  Header
	Files   []File // dense, Files[i].ID == i+1
	Events  []Event
	Summary map[string]int64 // middleware counters from the trailer
	Stats   map[string]int64 // recorder accounting from the trailer
}

// Complete reports whether the trace ends with a trailer (a clean
// Close) — replays refuse incomplete captures because there is nothing
// to verify against.
func (t *Trace) Complete() bool { return t.Summary != nil }

// Name resolves a file ID ("" for 0 or unknown IDs).
func (t *Trace) Name(id uint32) string {
	if id == 0 || int(id) > len(t.Files) {
		return ""
	}
	return t.Files[id-1].Name
}

// Size resolves a file ID's recorded size (-1 when unknown).
func (t *Trace) Size(id uint32) int64 {
	if id == 0 || int(id) > len(t.Files) {
		return -1
	}
	return t.Files[id-1].Size
}

// ReadFile loads and decodes a trace, auto-detecting the encoding.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return t, nil
}

// Read decodes a trace from r, auto-detecting the encoding by the
// binary magic.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binMagic))
	if err == nil && bytes.Equal(head, binMagic) {
		return readBin(br)
	}
	return readJSONL(br)
}

func (t *Trace) addFile(f File) error {
	if f.ID != uint32(len(t.Files)+1) {
		return fmt.Errorf("file definition %q out of order: id %d, want %d", f.Name, f.ID, len(t.Files)+1)
	}
	t.Files = append(t.Files, f)
	return nil
}

func readBin(br *bufio.Reader) (*Trace, error) {
	if _, err := br.Discard(len(binMagic)); err != nil {
		return nil, err
	}
	readBlob := func() ([]byte, error) {
		var n [4]byte
		if _, err := io.ReadFull(br, n[:]); err != nil {
			return nil, err
		}
		buf := make([]byte, binary.LittleEndian.Uint32(n[:]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	t := &Trace{}
	hb, err := readBlob()
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if err := json.Unmarshal(hb, &t.Header); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	// The header precedes every event, so its version can drive the
	// record length: version 1 wrote 32-byte events, version 2 appended
	// an 8-byte Req.
	recLen := 40
	if t.Header.Version < 2 {
		recLen = 32
	}
	var rec [40]byte
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagEvent:
			if _, err := io.ReadFull(br, rec[:recLen]); err != nil {
				return nil, fmt.Errorf("event record: %w", err)
			}
			ev := Event{
				T:     int64(binary.LittleEndian.Uint64(rec[0:])),
				File:  binary.LittleEndian.Uint32(rec[8:]),
				Kind:  Kind(rec[12]),
				Class: Class(rec[13]),
				Tier:  int8(rec[14]),
				Lat:   rec[15],
				Off:   int64(binary.LittleEndian.Uint64(rec[16:])),
				Len:   int64(binary.LittleEndian.Uint64(rec[24:])),
			}
			if recLen == 40 {
				ev.Req = binary.LittleEndian.Uint64(rec[32:])
			}
			t.Events = append(t.Events, ev)
		case tagDefine:
			buf, err := readBlob()
			if err != nil {
				return nil, fmt.Errorf("file definition: %w", err)
			}
			if len(buf) < 12 {
				return nil, fmt.Errorf("file definition: short record (%d bytes)", len(buf))
			}
			f := File{
				ID:   binary.LittleEndian.Uint32(buf[0:]),
				Size: int64(binary.LittleEndian.Uint64(buf[4:])),
				Name: string(buf[12:]),
			}
			if err := t.addFile(f); err != nil {
				return nil, err
			}
		case tagTrailer:
			buf, err := readBlob()
			if err != nil {
				return nil, fmt.Errorf("trailer: %w", err)
			}
			var tr Trailer
			if err := json.Unmarshal(buf, &tr); err != nil {
				return nil, fmt.Errorf("trailer: %w", err)
			}
			t.Summary, t.Stats = tr.Summary, tr.Trace
		default:
			return nil, fmt.Errorf("unknown record tag %d", tag)
		}
	}
}

// jsonlLine is the union of every JSONL line shape; which pointers are
// set discriminates header / definition / event / trailer.
type jsonlLine struct {
	Version *int             `json:"monarch_trace"`
	File    *File            `json:"file"`
	Summary map[string]int64 `json:"summary"`
	Stats   map[string]int64 `json:"trace"`

	T    int64  `json:"t"`
	K    string `json:"k"`
	F    uint32 `json:"f"`
	C    string `json:"c"`
	Tier *int   `json:"tier"`
	Lat  uint8  `json:"lat"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
	R    uint64 `json:"r"`
}

func readJSONL(br *bufio.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var l jsonlLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch {
		case l.Version != nil:
			if err := json.Unmarshal(raw, &t.Header); err != nil {
				return nil, fmt.Errorf("line %d: header: %w", lineNo, err)
			}
		case l.File != nil:
			if err := t.addFile(*l.File); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		case l.Summary != nil || l.Stats != nil:
			t.Summary, t.Stats = l.Summary, l.Stats
		case l.K != "":
			k, ok := kindFromString(l.K)
			if !ok {
				return nil, fmt.Errorf("line %d: unknown event kind %q", lineNo, l.K)
			}
			c, ok := classFromString(l.C)
			if !ok {
				return nil, fmt.Errorf("line %d: unknown event class %q", lineNo, l.C)
			}
			tier := -1
			if l.Tier != nil {
				tier = *l.Tier
			}
			t.Events = append(t.Events, Event{
				T: l.T, File: l.F, Kind: k, Class: c,
				Tier: int8(tier), Lat: l.Lat, Off: l.Off, Len: l.Len, Req: l.R,
			})
		default:
			return nil, fmt.Errorf("line %d: unrecognised line", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Header.Version == 0 {
		return nil, fmt.Errorf("not a monarch trace (no header)")
	}
	return t, nil
}
