// Package analyze derives per-epoch I/O analytics from a captured
// MONARCH access trace: PFS operation counts and savings against a
// PFS-only baseline, per-file access heatmaps, tier-transition
// timelines and time-to-first-local-hit — the paper's figure-style
// evidence, computed from a real run's events instead of end-of-run
// aggregates.
package analyze

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"monarch/internal/trace"
)

// Options tunes the analysis.
type Options struct {
	// TopFiles bounds the heatmap rows rendered (default 10). The JSON
	// output always carries every file.
	TopFiles int
}

// Epoch is one epoch's derived I/O profile. BaselineOps counts every
// successful foreground read — what a vanilla PFS-only run would issue
// — and PFSOps what actually reached the PFS: source-served reads,
// fallbacks, plus the background fetch traffic (BackgroundOps)
// attributed to the epoch in which each placement resolved.
type Epoch struct {
	Epoch    int   `json:"epoch"`
	Reads    int64 `json:"reads"` // successful foreground reads
	Local    int64 `json:"local"`
	Partial  int64 `json:"partial"`
	PFS      int64 `json:"pfs"`
	Fallback int64 `json:"fallback"`
	// Peer counts reads served by a sibling node's cache over the peer
	// network — no PFS traffic. PeerMiss counts peer-routed reads the
	// owner had not cached: they were re-served from the PFS and count
	// toward PFSOps. Hedged counts peer-served reads that raced a
	// second replica against a slow primary — still zero PFS ops, and
	// included in Peer's byte/op totals, but priced separately (each
	// hedge is one extra wire request somewhere in the cluster).
	Peer     int64 `json:"peer,omitempty"`
	PeerMiss int64 `json:"peer_miss,omitempty"`
	Hedged   int64 `json:"hedged,omitempty"`
	// Writes counts write-through writes (each a foreground PFS op);
	// WriteBacks counts writes acked by tier 0 with the PFS flush
	// deferred (zero foreground PFS ops). Flushes counts the background
	// flushes draining write-back files to the PFS (one background op
	// each — the flusher pushes a whole file per flush); Removes counts
	// foreground removals (one PFS metadata op each). The PFS-only
	// baseline charges every write and remove as a direct PFS op.
	Writes     int64 `json:"writes,omitempty"`
	WriteBacks int64 `json:"write_backs,omitempty"`
	Flushes    int64 `json:"flushes,omitempty"`
	Removes    int64 `json:"removes,omitempty"`
	Errors     int64 `json:"errors"`

	BytesLocal   int64 `json:"bytes_local"`
	BytesPeer    int64 `json:"bytes_peer,omitempty"`
	BytesPFS     int64 `json:"bytes_pfs"`
	BytesWritten int64 `json:"bytes_written,omitempty"`

	Fetches     int64 `json:"fetches"`
	Reuses      int64 `json:"reuses"`
	Skips       int64 `json:"skips"`
	Fails       int64 `json:"fails"`
	ChunkCopies int64 `json:"chunk_copies"`

	BackgroundOps int64   `json:"background_ops"`
	PFSOps        int64   `json:"pfs_ops"`
	BaselineOps   int64   `json:"baseline_ops"`
	Savings       float64 `json:"savings"` // 1 - PFSOps/BaselineOps

	Start int64 `json:"start_ns"` // relative to the trace's first event
	End   int64 `json:"end_ns"`
}

// FileStats is one file's access profile across epochs.
type FileStats struct {
	Name          string  `json:"name"`
	Size          int64   `json:"size"`
	Reads         int64   `json:"reads"`
	Bytes         int64   `json:"bytes"`
	ReadsPerEpoch []int64 `json:"reads_per_epoch"`
	// Heat is the file's exponentially decayed access temperature as of
	// the trace's last epoch — HeatScore over ReadsPerEpoch with the
	// default one-epoch half-life. It is the offline form of the value
	// core's heat-driven eviction engine maintains online, so an
	// operator can read "which files would the policy keep" straight
	// off a capture.
	Heat float64 `json:"heat"`
}

// HeatScore folds a per-epoch read heatmap into a single decayed
// temperature: each epoch's reads add one heat unit apiece, and heat
// halves every halfLife epochs of silence (halfLife <= 0 means 1).
// This is the same decay core.HeatPolicy applies online via
// MarkEpoch/AdvanceEpoch; TestHeatMatchesAnalyzer locks the two
// together.
func HeatScore(readsPerEpoch []int64, halfLife float64) float64 {
	if halfLife <= 0 {
		halfLife = 1
	}
	decay := math.Exp2(-1 / halfLife)
	h := 0.0
	for _, reads := range readsPerEpoch {
		h = h*decay + float64(reads)
	}
	return h
}

// Transition is one tier-transition event on the timeline.
type Transition struct {
	T     int64  `json:"t_ns"` // relative to the trace's first event
	Kind  string `json:"kind"` // placed, failed, skipped, demoted, evicted, tier-down, tier-up
	File  string `json:"file,omitempty"`
	Tier  int    `json:"tier"`
	Bytes int64  `json:"bytes,omitempty"`
}

// Analysis is the full derived view of one trace.
type Analysis struct {
	Clock    string            `json:"clock"`
	Sample   int               `json:"sample"`
	Levels   []trace.Level     `json:"levels"`
	Meta     map[string]string `json:"meta,omitempty"`
	Complete bool              `json:"complete"`

	Events   int64 `json:"events"`
	Files    int   `json:"files"`
	Duration int64 `json:"duration_ns"`

	Epochs []Epoch `json:"epochs"`

	BaselineOps int64   `json:"baseline_ops"`
	PFSOps      int64   `json:"pfs_ops"`
	Savings     float64 `json:"savings"`
	// RecordedPFSOps is the PFS data-op count measured by the run
	// itself (summary key "pfs_data_ops"), 0 when the capture did not
	// record one. With an unsampled, complete trace the analyzer's
	// PFSOps must equal it — the accounting cross-check.
	RecordedPFSOps int64 `json:"recorded_pfs_ops,omitempty"`

	// TimeToFirstLocalHit is ns from the first event to the first read
	// served above the source level; -1 when no read ever hit.
	TimeToFirstLocalHit int64 `json:"time_to_first_local_hit_ns"`

	FileStats   []FileStats      `json:"file_stats"`
	Transitions []Transition     `json:"transitions"`
	Summary     map[string]int64 `json:"summary,omitempty"`
}

// copyChunk extracts the background fetch request size from the trace
// meta; 0 means unknown (each fetch counts as one op).
func copyChunk(t *trace.Trace) int64 {
	if s, ok := t.Header.Meta["copy_chunk"]; ok {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0
}

// fetchOps is the number of source read operations a whole-file fetch
// of size bytes issues (the store pulls CopyChunk-sized requests).
func fetchOps(size, chunk int64) int64 {
	if size <= 0 {
		return 1
	}
	if chunk <= 0 {
		return 1
	}
	return (size + chunk - 1) / chunk
}

// Analyze derives the full analysis. Events are consumed in capture
// order; epoch boundaries come from the epoch markers monarch-bench
// records (a trace without markers is treated as one epoch).
func Analyze(t *trace.Trace, opts Options) *Analysis {
	if opts.TopFiles <= 0 {
		opts.TopFiles = 10
	}
	a := &Analysis{
		Clock:               t.Header.Clock,
		Sample:              t.Header.Sample,
		Levels:              t.Header.Levels,
		Meta:                t.Header.Meta,
		Complete:            t.Complete(),
		Events:              int64(len(t.Events)),
		Files:               len(t.Files),
		Summary:             t.Summary,
		TimeToFirstLocalHit: -1,
	}
	if t.Summary != nil {
		a.RecordedPFSOps = t.Summary["pfs_data_ops"]
	}
	chunk := copyChunk(t)

	var t0 int64
	if len(t.Events) > 0 {
		t0 = t.Events[0].T
		a.Duration = t.Events[len(t.Events)-1].T - t0
	}

	type fileAgg struct {
		reads, bytes []int64 // per epoch
		chunkOps     int64   // chunk copies since the last placement resolution
	}
	files := make(map[uint32]*fileAgg)
	epochs := []*Epoch{{Epoch: 1}}
	cur := epochs[0]

	getFile := func(id uint32) *fileAgg {
		f := files[id]
		if f == nil {
			f = &fileAgg{}
			files[id] = f
		}
		return f
	}
	bump := func(s *[]int64, epoch int, v int64) {
		for len(*s) < epoch {
			*s = append(*s, 0)
		}
		(*s)[epoch-1] += v
	}

	for _, ev := range t.Events {
		rel := ev.T - t0
		if cur.Reads+cur.Errors+cur.Fetches+cur.ChunkCopies+
			cur.Writes+cur.WriteBacks+cur.Flushes+cur.Removes == 0 {
			cur.Start = rel
		}
		cur.End = rel
		switch ev.Kind {
		case trace.KindRead:
			if ev.Class == trace.ClassError {
				cur.Errors++
				continue
			}
			cur.Reads++
			f := getFile(ev.File)
			bump(&f.reads, cur.Epoch, 1)
			bump(&f.bytes, cur.Epoch, ev.Len)
			switch ev.Class {
			case trace.ClassLocal:
				cur.Local++
				cur.BytesLocal += ev.Len
			case trace.ClassPartial:
				cur.Partial++
				cur.BytesLocal += ev.Len
			case trace.ClassPFS:
				cur.PFS++
				cur.BytesPFS += ev.Len
			case trace.ClassFallback:
				cur.Fallback++
				cur.BytesPFS += ev.Len
			case trace.ClassPeer:
				cur.Peer++
				cur.BytesPeer += ev.Len
			case trace.ClassPeerHedge:
				cur.Peer++
				cur.Hedged++
				cur.BytesPeer += ev.Len
			case trace.ClassPeerMiss:
				cur.PeerMiss++
				cur.BytesPFS += ev.Len
			}
			if (ev.Class == trace.ClassLocal || ev.Class == trace.ClassPartial) &&
				a.TimeToFirstLocalHit < 0 {
				a.TimeToFirstLocalHit = rel
			}
		case trace.KindChunkCopy:
			cur.ChunkCopies++
			cur.BackgroundOps++ // one source read per chunk copy
			getFile(ev.File).chunkOps++
		case trace.KindPlacement:
			f := getFile(ev.File)
			switch ev.Class {
			case trace.ClassFetch:
				cur.Fetches++
				if f.chunkOps == 0 {
					// Whole-file fetch: the destination pulled the file
					// from the source in copy-chunk-sized requests.
					cur.BackgroundOps += fetchOps(ev.Len, chunk)
				}
			case trace.ClassReuse:
				cur.Reuses++ // no source traffic: content came from the foreground read
			case trace.ClassSkip:
				cur.Skips++
			case trace.ClassFail:
				cur.Fails++
			}
			f.chunkOps = 0
			a.Transitions = append(a.Transitions, Transition{
				T: rel, Kind: placementKind(ev.Class), File: t.Name(ev.File),
				Tier: int(ev.Tier), Bytes: ev.Len,
			})
		case trace.KindWrite:
			switch ev.Class {
			case trace.ClassError:
				cur.Errors++
			case trace.ClassWrite:
				cur.Writes++
				cur.BytesWritten += ev.Len
			case trace.ClassWriteBack:
				cur.WriteBacks++
				cur.BytesWritten += ev.Len
			case trace.ClassRemove:
				cur.Removes++
			}
		case trace.KindFlush:
			if ev.Class == trace.ClassError {
				cur.Errors++
				continue
			}
			cur.Flushes++
			cur.BackgroundOps++ // the flusher pushes the whole file in one PFS write
		case trace.KindEpoch:
			cur = &Epoch{Epoch: len(epochs) + 1, Start: rel, End: rel}
			epochs = append(epochs, cur)
		case trace.KindState:
			a.Transitions = append(a.Transitions, Transition{
				T: rel, Kind: ev.Class.String(), File: t.Name(ev.File),
				Tier: int(ev.Tier), Bytes: ev.Len,
			})
		}
	}
	// A final marker leaves an empty trailing epoch; drop it.
	if n := len(epochs); n > 1 && epochs[n-1].Reads == 0 && epochs[n-1].Fetches == 0 &&
		epochs[n-1].ChunkCopies == 0 && epochs[n-1].Errors == 0 &&
		epochs[n-1].Writes == 0 && epochs[n-1].WriteBacks == 0 &&
		epochs[n-1].Flushes == 0 && epochs[n-1].Removes == 0 {
		epochs = epochs[:n-1]
	}
	for _, e := range epochs {
		e.PFSOps = e.PFS + e.Fallback + e.PeerMiss + e.BackgroundOps + e.Writes + e.Removes
		e.BaselineOps = e.Reads + e.Writes + e.WriteBacks + e.Removes
		if e.BaselineOps > 0 {
			e.Savings = 1 - float64(e.PFSOps)/float64(e.BaselineOps)
		}
		a.Epochs = append(a.Epochs, *e)
		a.PFSOps += e.PFSOps
		a.BaselineOps += e.BaselineOps
	}
	if a.BaselineOps > 0 {
		a.Savings = 1 - float64(a.PFSOps)/float64(a.BaselineOps)
	}

	nep := len(a.Epochs)
	for id, f := range files {
		fs := FileStats{Name: t.Name(id), Size: t.Size(id)}
		for len(f.reads) < nep {
			f.reads = append(f.reads, 0)
		}
		fs.ReadsPerEpoch = f.reads
		fs.Heat = HeatScore(f.reads, 1)
		for _, v := range f.reads {
			fs.Reads += v
		}
		for _, v := range f.bytes {
			fs.Bytes += v
		}
		a.FileStats = append(a.FileStats, fs)
	}
	sort.Slice(a.FileStats, func(i, j int) bool {
		if a.FileStats[i].Reads != a.FileStats[j].Reads {
			return a.FileStats[i].Reads > a.FileStats[j].Reads
		}
		return a.FileStats[i].Name < a.FileStats[j].Name
	})
	sort.SliceStable(a.Transitions, func(i, j int) bool { return a.Transitions[i].T < a.Transitions[j].T })
	return a
}

func placementKind(c trace.Class) string {
	switch c {
	case trace.ClassFetch, trace.ClassReuse:
		return "placed"
	case trace.ClassSkip:
		return "skipped"
	default:
		return "failed"
	}
}

// Render writes the human-readable report.
func (a *Analysis) Render(w io.Writer, opts Options) {
	if opts.TopFiles <= 0 {
		opts.TopFiles = 10
	}
	fmt.Fprintf(w, "trace: %s clock, %d epoch(s), %d file(s), %d event(s), span %s\n",
		a.Clock, len(a.Epochs), a.Files, a.Events, time.Duration(a.Duration).Round(time.Millisecond))
	if a.Sample > 1 {
		fmt.Fprintf(w, "NOTE: read hits sampled 1-in-%d; read counts are lower bounds\n", a.Sample)
	}
	if !a.Complete {
		fmt.Fprintf(w, "WARNING: no trailer — the capture did not close cleanly\n")
	}
	hasPeer := false
	hasHedge := false
	for _, e := range a.Epochs {
		if e.Peer > 0 || e.PeerMiss > 0 {
			hasPeer = true
		}
		if e.Hedged > 0 {
			hasHedge = true
		}
	}
	fmt.Fprintf(w, "\nper-epoch PFS operations (baseline: every read goes to the PFS)\n")
	switch {
	case hasPeer && hasHedge:
		fmt.Fprintf(w, "%-6s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s %8s\n",
			"epoch", "reads", "local", "partial", "peer", "hedged", "p-miss", "pfs", "fallback", "bg-ops", "pfs-ops", "baseline", "savings")
		for _, e := range a.Epochs {
			fmt.Fprintf(w, "%-6d %9d %9d %9d %9d %9d %9d %9d %9d %9d %9d %9d %7.1f%%\n",
				e.Epoch, e.Reads, e.Local, e.Partial, e.Peer, e.Hedged, e.PeerMiss, e.PFS, e.Fallback,
				e.BackgroundOps, e.PFSOps, e.BaselineOps, 100*e.Savings)
		}
	case hasPeer:
		fmt.Fprintf(w, "%-6s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s %8s\n",
			"epoch", "reads", "local", "partial", "peer", "p-miss", "pfs", "fallback", "bg-ops", "pfs-ops", "baseline", "savings")
		for _, e := range a.Epochs {
			fmt.Fprintf(w, "%-6d %9d %9d %9d %9d %9d %9d %9d %9d %9d %9d %7.1f%%\n",
				e.Epoch, e.Reads, e.Local, e.Partial, e.Peer, e.PeerMiss, e.PFS, e.Fallback,
				e.BackgroundOps, e.PFSOps, e.BaselineOps, 100*e.Savings)
		}
	default:
		fmt.Fprintf(w, "%-6s %9s %9s %9s %9s %9s %9s %9s %9s %8s\n",
			"epoch", "reads", "local", "partial", "pfs", "fallback", "bg-ops", "pfs-ops", "baseline", "savings")
		for _, e := range a.Epochs {
			fmt.Fprintf(w, "%-6d %9d %9d %9d %9d %9d %9d %9d %9d %7.1f%%\n",
				e.Epoch, e.Reads, e.Local, e.Partial, e.PFS, e.Fallback,
				e.BackgroundOps, e.PFSOps, e.BaselineOps, 100*e.Savings)
		}
	}
	hasWrite := false
	for _, e := range a.Epochs {
		if e.Writes > 0 || e.WriteBacks > 0 || e.Flushes > 0 || e.Removes > 0 {
			hasWrite = true
		}
	}
	if hasWrite {
		fmt.Fprintf(w, "\nper-epoch write operations (baseline: every write goes straight to the PFS)\n")
		fmt.Fprintf(w, "%-6s %9s %9s %9s %9s %12s\n",
			"epoch", "through", "wr-back", "flushes", "removes", "bytes")
		for _, e := range a.Epochs {
			fmt.Fprintf(w, "%-6d %9d %9d %9d %9d %12d\n",
				e.Epoch, e.Writes, e.WriteBacks, e.Flushes, e.Removes, e.BytesWritten)
		}
	}
	fmt.Fprintf(w, "total: %d PFS ops vs %d baseline → %.1f%% saved\n",
		a.PFSOps, a.BaselineOps, 100*a.Savings)
	if hasHedge {
		var hedged int64
		for _, e := range a.Epochs {
			hedged += e.Hedged
		}
		fmt.Fprintf(w, "hedged reads: %d peer hit(s) raced a second replica (one extra wire request each, zero PFS ops)\n", hedged)
	}
	if a.RecordedPFSOps > 0 {
		if a.RecordedPFSOps == a.PFSOps {
			fmt.Fprintf(w, "cross-check: run recorded %d PFS data ops — accounting matches exactly\n", a.RecordedPFSOps)
		} else {
			fmt.Fprintf(w, "cross-check: run recorded %d PFS data ops, analyzer derived %d (Δ %+d)\n",
				a.RecordedPFSOps, a.PFSOps, a.PFSOps-a.RecordedPFSOps)
		}
	}
	if a.TimeToFirstLocalHit >= 0 {
		fmt.Fprintf(w, "time to first local hit: %s\n",
			time.Duration(a.TimeToFirstLocalHit).Round(time.Millisecond))
	} else {
		fmt.Fprintf(w, "time to first local hit: never\n")
	}

	counts := map[string]int{}
	var firstPlace, lastPlace int64 = -1, -1
	for _, tr := range a.Transitions {
		counts[tr.Kind]++
		if tr.Kind == "placed" {
			if firstPlace < 0 {
				firstPlace = tr.T
			}
			lastPlace = tr.T
		}
	}
	if len(a.Transitions) > 0 {
		var parts []string
		for _, k := range []string{"placed", "skipped", "failed", "demoted", "evicted", "tier-down", "tier-up"} {
			if counts[k] > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
			}
		}
		fmt.Fprintf(w, "\ntier transitions: %s", strings.Join(parts, ", "))
		if firstPlace >= 0 {
			fmt.Fprintf(w, "; placements span %s – %s",
				time.Duration(firstPlace).Round(time.Millisecond),
				time.Duration(lastPlace).Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}

	if len(a.FileStats) > 0 {
		n := opts.TopFiles
		if n > len(a.FileStats) {
			n = len(a.FileStats)
		}
		fmt.Fprintf(w, "\nhottest files (reads per epoch; heat = decayed temperature, 1-epoch half-life)\n")
		for _, fs := range a.FileStats[:n] {
			cells := make([]string, len(fs.ReadsPerEpoch))
			for i, v := range fs.ReadsPerEpoch {
				cells[i] = strconv.FormatInt(v, 10)
			}
			fmt.Fprintf(w, "  %-40s %10d B  heat %6.2f  [%s]\n", fs.Name, fs.Size, fs.Heat, strings.Join(cells, " "))
		}
		if n < len(a.FileStats) {
			fmt.Fprintf(w, "  … %d more file(s)\n", len(a.FileStats)-n)
		}
	}
}
