package analyze

import (
	"sort"

	"monarch/internal/trace"
)

// This file stitches cross-node reads back together. A peer-served
// read leaves two records in two different captures: the reader's
// KindRead event (class peer/peer-hedge/peer-miss) and the owner's
// KindServe event, both stamped with the request ID the client minted
// and carried in the wire frame. Correlate joins them, which is the
// only way to see one logical read end to end — per-node traces alone
// cannot say WHICH sibling served a read, or what the serve cost on
// the far side.

// HalfEvent is one side of a cross-node read.
type HalfEvent struct {
	// Node names the trace the event came from (the Correlate map key).
	Node string `json:"node"`
	// File is the resolved file name in that node's namespace.
	File string `json:"file"`
	// T is the event time, ns relative to that node's capture start.
	// Clocks are per-node: T values are comparable within a node only.
	T int64 `json:"t_ns"`
	// Lat is the upper bound (seconds) of the event's latency bucket.
	Lat float64 `json:"lat_le_s"`
	// Class is the event's class string ("peer", "peer-hedge", ...).
	Class string `json:"class,omitempty"`
}

// StitchedPair is one logical cross-node read: the client half from
// the reader's trace and the serve half from the owner's.
type StitchedPair struct {
	Req    uint64      `json:"req"`
	Client HalfEvent   `json:"client"`
	Serves []HalfEvent `json:"serves"`
}

// Correlation is the result of stitching a set of per-node traces.
type Correlation struct {
	// Pairs holds every read matched to at least one serve, sorted by
	// request ID. A hedged read legitimately matches two serves (the
	// primary and the raced replica both served bytes).
	Pairs []StitchedPair `json:"pairs"`
	// UnmatchedReads counts peer reads that carried a request ID but
	// found no serve half — expected when the serving node's trace was
	// not captured or was sampled away.
	UnmatchedReads int `json:"unmatched_reads"`
	// UnmatchedServes counts serve events with no client half —
	// expected when the reading node's trace is missing, or its reads
	// were sampled (serve events are never sampled; client reads may
	// be).
	UnmatchedServes int `json:"unmatched_serves"`
}

// Correlate stitches per-node traces, keyed by node name, into
// cross-node read pairs via the shared request IDs.
func Correlate(traces map[string]*trace.Trace) *Correlation {
	type serveHalf struct {
		ev   HalfEvent
		used bool
	}
	serves := make(map[uint64][]*serveHalf)
	nodes := make([]string, 0, len(traces))
	for node := range traces {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		t := traces[node]
		for _, ev := range t.Events {
			if ev.Kind != trace.KindServe || ev.Req == 0 {
				continue
			}
			serves[ev.Req] = append(serves[ev.Req], &serveHalf{ev: HalfEvent{
				Node: node, File: t.Name(ev.File), T: ev.T,
				Lat: trace.LatBucketBound(ev.Lat), Class: ev.Class.String(),
			}})
		}
	}

	c := &Correlation{}
	for _, node := range nodes {
		t := traces[node]
		for _, ev := range t.Events {
			if ev.Kind != trace.KindRead || ev.Req == 0 {
				continue
			}
			halves := serves[ev.Req]
			if len(halves) == 0 {
				c.UnmatchedReads++
				continue
			}
			pair := StitchedPair{Req: ev.Req, Client: HalfEvent{
				Node: node, File: t.Name(ev.File), T: ev.T,
				Lat: trace.LatBucketBound(ev.Lat), Class: ev.Class.String(),
			}}
			for _, h := range halves {
				h.used = true
				pair.Serves = append(pair.Serves, h.ev)
			}
			c.Pairs = append(c.Pairs, pair)
		}
	}
	for _, halves := range serves {
		for _, h := range halves {
			if !h.used {
				c.UnmatchedServes++
			}
		}
	}
	sort.Slice(c.Pairs, func(i, j int) bool { return c.Pairs[i].Req < c.Pairs[j].Req })
	return c
}
