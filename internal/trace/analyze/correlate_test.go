package analyze

import (
	"testing"

	"monarch/internal/trace"
)

// synthTrace builds a minimal in-memory capture with one file table
// entry per name and the given events.
func synthTrace(files []string, events []trace.Event) *trace.Trace {
	t := &trace.Trace{Header: trace.Header{Version: 2}}
	for i, name := range files {
		t.Files = append(t.Files, trace.File{ID: uint32(i + 1), Name: name})
	}
	t.Events = events
	return t
}

func TestCorrelateStitchesAcrossNodes(t *testing.T) {
	reader := synthTrace([]string{"shard-7"}, []trace.Event{
		// A peer-served read stamped with request ID 0x11.
		{T: 100, File: 1, Kind: trace.KindRead, Class: trace.ClassPeer, Req: 0x11},
		// A local hit: no request ID, must not appear in the output.
		{T: 200, File: 1, Kind: trace.KindRead, Class: trace.ClassLocal},
	})
	owner := synthTrace([]string{"shard-7"}, []trace.Event{
		{T: 90, File: 1, Kind: trace.KindServe, Tier: -1, Req: 0x11},
	})

	c := Correlate(map[string]*trace.Trace{"node0": reader, "node1": owner})
	if len(c.Pairs) != 1 {
		t.Fatalf("stitched %d pairs, want 1: %+v", len(c.Pairs), c.Pairs)
	}
	p := c.Pairs[0]
	if p.Req != 0x11 {
		t.Fatalf("pair req = %x, want 0x11", p.Req)
	}
	if p.Client.Node != "node0" || p.Client.File != "shard-7" || p.Client.Class != "peer" {
		t.Fatalf("client half = %+v", p.Client)
	}
	if len(p.Serves) != 1 || p.Serves[0].Node != "node1" {
		t.Fatalf("serve halves = %+v", p.Serves)
	}
	if c.UnmatchedReads != 0 || c.UnmatchedServes != 0 {
		t.Fatalf("unmatched reads=%d serves=%d, want 0/0", c.UnmatchedReads, c.UnmatchedServes)
	}
}

func TestCorrelateHedgedReadMatchesTwoServes(t *testing.T) {
	reader := synthTrace([]string{"f"}, []trace.Event{
		{T: 10, File: 1, Kind: trace.KindRead, Class: trace.ClassPeerHedge, Req: 0x22},
	})
	primary := synthTrace([]string{"f"}, []trace.Event{
		{T: 5, File: 1, Kind: trace.KindServe, Req: 0x22},
	})
	replica := synthTrace([]string{"f"}, []trace.Event{
		{T: 6, File: 1, Kind: trace.KindServe, Req: 0x22},
	})

	c := Correlate(map[string]*trace.Trace{
		"reader": reader, "primary": primary, "replica": replica,
	})
	if len(c.Pairs) != 1 {
		t.Fatalf("stitched %d pairs, want 1", len(c.Pairs))
	}
	if got := len(c.Pairs[0].Serves); got != 2 {
		t.Fatalf("hedged read matched %d serves, want 2 (primary + raced replica)", got)
	}
	if c.UnmatchedServes != 0 {
		t.Fatalf("both serve halves belong to the read; unmatched = %d", c.UnmatchedServes)
	}
}

func TestCorrelateCountsUnmatchedHalves(t *testing.T) {
	// The reader's trace survived but the owner's capture is missing,
	// and a second owner recorded a serve whose reader was sampled away.
	reader := synthTrace([]string{"a"}, []trace.Event{
		{T: 1, File: 1, Kind: trace.KindRead, Class: trace.ClassPeer, Req: 0x33},
	})
	owner := synthTrace([]string{"b"}, []trace.Event{
		{T: 2, File: 1, Kind: trace.KindServe, Req: 0x44},
	})

	c := Correlate(map[string]*trace.Trace{"reader": reader, "owner": owner})
	if len(c.Pairs) != 0 {
		t.Fatalf("nothing should stitch, got %+v", c.Pairs)
	}
	if c.UnmatchedReads != 1 || c.UnmatchedServes != 1 {
		t.Fatalf("unmatched reads=%d serves=%d, want 1/1", c.UnmatchedReads, c.UnmatchedServes)
	}
}

func TestCorrelatePairsSortedByRequestID(t *testing.T) {
	reader := synthTrace([]string{"x"}, []trace.Event{
		{T: 1, File: 1, Kind: trace.KindRead, Class: trace.ClassPeer, Req: 0xbb},
		{T: 2, File: 1, Kind: trace.KindRead, Class: trace.ClassPeer, Req: 0xaa},
	})
	owner := synthTrace([]string{"x"}, []trace.Event{
		{T: 1, File: 1, Kind: trace.KindServe, Req: 0xaa},
		{T: 2, File: 1, Kind: trace.KindServe, Req: 0xbb},
	})
	c := Correlate(map[string]*trace.Trace{"r": reader, "o": owner})
	if len(c.Pairs) != 2 || c.Pairs[0].Req != 0xaa || c.Pairs[1].Req != 0xbb {
		t.Fatalf("pairs not sorted by request ID: %+v", c.Pairs)
	}
}
