package analyze

import (
	"bytes"
	"strings"
	"testing"

	"monarch/internal/trace"
)

// synthetic builds a two-epoch trace by hand: epoch 1 reads two files
// from the PFS, fetches one in chunks and one whole, epoch 2 reads
// both locally.
func synthetic() *trace.Trace {
	ev := func(t int64, k trace.Kind, c trace.Class, file uint32, tier int8, off, ln int64) trace.Event {
		return trace.Event{T: t, Kind: k, Class: c, File: file, Tier: tier, Off: off, Len: ln}
	}
	return &trace.Trace{
		Header: trace.Header{
			Version: trace.Version,
			Clock:   "virtual",
			Sample:  1,
			Source:  1,
			Levels:  []trace.Level{{Name: "ssd", Capacity: 1 << 30}, {Name: "lustre"}},
			Meta:    map[string]string{"copy_chunk": "100"},
		},
		Files: []trace.File{
			{ID: 1, Name: "a", Size: 250},
			{ID: 2, Name: "b", Size: 100},
		},
		Events: []trace.Event{
			// epoch 1: both files read from the PFS.
			ev(10, trace.KindRead, trace.ClassPFS, 1, 1, 0, 250),
			ev(20, trace.KindRead, trace.ClassPFS, 2, 1, 0, 100),
			// file a arrives in 3 chunk copies (250 B / 100 B chunks)…
			ev(30, trace.KindChunkCopy, trace.ClassNone, 1, 0, 0, 100),
			ev(40, trace.KindChunkCopy, trace.ClassNone, 1, 0, 100, 100),
			ev(50, trace.KindChunkCopy, trace.ClassNone, 1, 0, 200, 50),
			ev(60, trace.KindPlacement, trace.ClassFetch, 1, 0, 0, 250),
			// …file b in one whole-file fetch (1 op at copy_chunk 100).
			ev(70, trace.KindPlacement, trace.ClassFetch, 2, 0, 0, 100),
			ev(80, trace.KindEpoch, trace.ClassNone, 0, -1, 0, 1),
			// epoch 2: everything is local now.
			ev(90, trace.KindRead, trace.ClassLocal, 1, 0, 0, 250),
			ev(100, trace.KindRead, trace.ClassPartial, 2, 0, 0, 100),
			ev(110, trace.KindState, trace.ClassEvicted, 2, 0, 0, 100),
			ev(120, trace.KindEpoch, trace.ClassNone, 0, -1, 0, 2),
		},
		Summary: map[string]int64{
			"placements":   2,
			"pfs_data_ops": 6, // 2 foreground + 3 chunks + 1 whole-file
		},
		Stats: map[string]int64{"seen": 12, "recorded": 12, "dropped": 0},
	}
}

func TestAnalyzeSynthetic(t *testing.T) {
	a := Analyze(synthetic(), Options{})
	if len(a.Epochs) != 2 {
		t.Fatalf("epochs = %d: %+v", len(a.Epochs), a.Epochs)
	}
	e1, e2 := a.Epochs[0], a.Epochs[1]

	// Epoch 1: 2 PFS reads + 3 chunk ops + 1 whole-file op = 6 PFS ops
	// against a 2-read baseline.
	if e1.Reads != 2 || e1.PFS != 2 || e1.ChunkCopies != 3 || e1.Fetches != 2 {
		t.Fatalf("epoch 1 = %+v", e1)
	}
	if e1.BackgroundOps != 4 {
		t.Fatalf("epoch 1 background ops = %d, want 3 chunks + 1 whole-file", e1.BackgroundOps)
	}
	if e1.PFSOps != 6 || e1.BaselineOps != 2 {
		t.Fatalf("epoch 1 ops = %+v", e1)
	}

	// Epoch 2: fully local — 100% savings.
	if e2.Reads != 2 || e2.Local != 1 || e2.Partial != 1 || e2.PFSOps != 0 {
		t.Fatalf("epoch 2 = %+v", e2)
	}
	if e2.Savings != 1 {
		t.Fatalf("epoch 2 savings = %v", e2.Savings)
	}

	if a.PFSOps != 6 || a.BaselineOps != 4 {
		t.Fatalf("totals = pfs %d baseline %d", a.PFSOps, a.BaselineOps)
	}
	if a.RecordedPFSOps != 6 || a.PFSOps != a.RecordedPFSOps {
		t.Fatalf("cross-check: derived %d, recorded %d", a.PFSOps, a.RecordedPFSOps)
	}
	// This tiny workload re-reads too little to amortise the fetches:
	// 6 ops against a 4-read baseline is a net loss, and the analyzer
	// must say so rather than clamp.
	if a.Savings != 1-6.0/4.0 {
		t.Fatalf("savings = %v, want -0.5", a.Savings)
	}

	// First local hit is the epoch-2 read at t=90, relative to t0=10.
	if a.TimeToFirstLocalHit != 80 {
		t.Fatalf("time to first local hit = %d, want 80", a.TimeToFirstLocalHit)
	}

	// File heatmap: a leads with more bytes; both files show two epochs.
	if len(a.FileStats) != 2 || a.FileStats[0].Name != "a" {
		t.Fatalf("file stats = %+v", a.FileStats)
	}
	if got := a.FileStats[0].ReadsPerEpoch; len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Fatalf("reads per epoch for a = %v", got)
	}

	// Transitions: 2 placements + 1 eviction, time-ordered.
	if len(a.Transitions) != 3 {
		t.Fatalf("transitions = %+v", a.Transitions)
	}
	for i := 1; i < len(a.Transitions); i++ {
		if a.Transitions[i].T < a.Transitions[i-1].T {
			t.Fatalf("transitions out of order: %+v", a.Transitions)
		}
	}
	if a.Transitions[2].Kind != "evicted" {
		t.Fatalf("last transition = %+v", a.Transitions[2])
	}
}

func TestAnalyzeNoEpochMarkers(t *testing.T) {
	tr := synthetic()
	var evs []trace.Event
	for _, ev := range tr.Events {
		if ev.Kind != trace.KindEpoch {
			evs = append(evs, ev)
		}
	}
	tr.Events = evs
	a := Analyze(tr, Options{})
	if len(a.Epochs) != 1 {
		t.Fatalf("markerless trace epochs = %d", len(a.Epochs))
	}
	if a.Epochs[0].Reads != 4 {
		t.Fatalf("single epoch reads = %d", a.Epochs[0].Reads)
	}
}

// TestAnalyzePeerClasses: peer hits cost no PFS op; peer misses were
// re-served from the PFS and must count toward PFSOps.
func TestAnalyzePeerClasses(t *testing.T) {
	ev := func(t int64, c trace.Class, ln int64) trace.Event {
		return trace.Event{T: t, Kind: trace.KindRead, Class: c, File: 1, Tier: 1, Len: ln}
	}
	tr := &trace.Trace{
		Header: trace.Header{
			Version: trace.Version, Clock: "virtual", Sample: 1, Source: 2,
			Levels: []trace.Level{{Name: "ssd"}, {Name: "peers"}, {Name: "lustre"}},
		},
		Files: []trace.File{{ID: 1, Name: "remote/a", Size: 100}},
		Events: []trace.Event{
			ev(10, trace.ClassPeerMiss, 100), // owner not caught up yet → PFS served
			ev(20, trace.ClassPeer, 100),     // owner's cache served it
			ev(30, trace.ClassPeer, 100),
		},
		Summary: map[string]int64{"pfs_data_ops": 1},
	}
	a := Analyze(tr, Options{})
	e := a.Epochs[0]
	if e.Reads != 3 || e.Peer != 2 || e.PeerMiss != 1 {
		t.Fatalf("epoch = %+v", e)
	}
	if e.BytesPeer != 200 || e.BytesPFS != 100 {
		t.Fatalf("bytes peer %d pfs %d", e.BytesPeer, e.BytesPFS)
	}
	if a.PFSOps != 1 || a.BaselineOps != 3 {
		t.Fatalf("pfs ops %d baseline %d", a.PFSOps, a.BaselineOps)
	}
	if a.PFSOps != a.RecordedPFSOps {
		t.Fatalf("cross-check: derived %d, recorded %d", a.PFSOps, a.RecordedPFSOps)
	}
	var buf bytes.Buffer
	a.Render(&buf, Options{})
	out := buf.String()
	if !strings.Contains(out, "peer") || !strings.Contains(out, "p-miss") {
		t.Fatalf("peer columns missing from render:\n%s", out)
	}
}

func TestRenderMentionsKeyFigures(t *testing.T) {
	var buf bytes.Buffer
	Analyze(synthetic(), Options{}).Render(&buf, Options{})
	out := buf.String()
	for _, want := range []string{"per-epoch PFS operations", "savings", "accounting matches exactly",
		"time to first local hit", "tier transitions", "hottest files"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	a := Analyze(&trace.Trace{Header: trace.Header{Clock: "wall", Sample: 1}}, Options{})
	if a.Events != 0 || a.Savings != 0 || a.TimeToFirstLocalHit != -1 {
		t.Fatalf("empty analysis = %+v", a)
	}
	var buf bytes.Buffer
	a.Render(&buf, Options{}) // must not panic
}
