// Package trace captures MONARCH access traces: one fixed-size event
// per foreground read, per placement resolution, per chunk copy, per
// epoch boundary and per tier-state change. A Recorder hooks the
// middleware's span stream (obs.TraceHook) and streams events through a
// bounded ring buffer to a JSONL or binary sink, so memory stays flat
// however long the run and the hot path never blocks on I/O.
//
// The captured artifact is self-describing: a header carries the
// hierarchy shape, clock kind and sampling rate; file-definition
// records carry the namespace (names and sizes); a trailer carries the
// run's final counters. The analyze subpackage derives per-epoch PFS
// statistics from it, and the replay subpackage re-drives it through a
// fresh simulated hierarchy.
package trace

import (
	"math"
	"time"

	"monarch/internal/obs"
)

// Version is the trace format version written into headers. Version 2
// added the Req correlation field to events ("r" in JSONL, 8 extra
// bytes per binary record); version-1 traces still decode — the
// header's version selects the record length.
const Version = 2

// Kind classifies trace events.
type Kind uint8

const (
	// KindRead is one foreground ReadAt served by the middleware.
	KindRead Kind = iota + 1
	// KindPlacement is one placement reaching a terminal state.
	KindPlacement
	// KindChunkCopy is one chunk of a chunked placement landing.
	KindChunkCopy
	// KindEpoch marks an epoch boundary; Len carries the epoch number
	// (1-based) of the epoch that just finished.
	KindEpoch
	// KindState is a tier-state change: demotion, eviction, a breaker
	// opening or closing.
	KindState
	// KindServe is one READ frame this node served to a sibling over
	// the peer protocol — the remote half of the sibling's KindRead
	// peer hit, correlated through the shared Req ID. (Appended so
	// earlier kinds keep their numeric values in old binary traces.)
	KindServe
	// KindWrite is one foreground WriteAt acknowledged by the
	// middleware; its class says which durability level acked it.
	// (Appended, like KindServe, to keep old binary traces decodable.)
	KindWrite
	// KindFlush is one background flush of a write-back file's dirty
	// bytes from tier 0 to the PFS.
	KindFlush
)

// String names the kind (the "k" field of the JSONL encoding).
func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindPlacement:
		return "placement"
	case KindChunkCopy:
		return "chunk-copy"
	case KindEpoch:
		return "epoch"
	case KindState:
		return "state"
	case KindServe:
		return "serve"
	case KindWrite:
		return "write"
	case KindFlush:
		return "flush"
	default:
		return "unknown"
	}
}

// Class qualifies an event within its kind: the hit class of a read,
// the resolution of a placement, or the nature of a state change.
type Class uint8

const (
	// ClassNone is the zero class (epoch markers, chunk copies).
	ClassNone Class = iota

	// ClassLocal: a read served entirely from an upper tier.
	ClassLocal
	// ClassPartial: a read served from an upper tier mid-copy, while
	// the file's chunked placement was still in flight.
	ClassPartial
	// ClassPFS: a read served by the source (PFS) level.
	ClassPFS
	// ClassFallback: a read that failed on an upper tier and was
	// re-served from the source.
	ClassFallback
	// ClassError: a read that failed to the caller.
	ClassError

	// ClassFetch: a placement that copied content from the source.
	ClassFetch
	// ClassReuse: a placement satisfied from the foreground's full
	// read, with no source traffic.
	ClassReuse
	// ClassSkip: a placement skipped (no tier had room, or fetching
	// was disabled).
	ClassSkip
	// ClassFail: a placement that failed terminally.
	ClassFail

	// ClassDemoted: the breaker re-pointed a placed file at the source.
	ClassDemoted
	// ClassEvicted: an eviction ablation removed a file from a tier.
	ClassEvicted
	// ClassTierDown: a tier's circuit breaker opened.
	ClassTierDown
	// ClassTierUp: a recovery probe returned a tier to service.
	ClassTierUp

	// ClassPeer: a read served by the peer cache tier — the bytes came
	// from a sibling node's tier-0 store over the wire, not the PFS.
	// (Appended after the tier-state classes so the numeric values of
	// earlier classes — and with them existing binary traces — are
	// unchanged.)
	ClassPeer
	// ClassPeerMiss: a read routed to the peer tier whose owner had not
	// cached the file; it was re-served from the source. Unlike
	// ClassFallback this is a clean miss, not a failure.
	ClassPeerMiss
	// ClassPeerHedge: a peer-served read whose primary replica blew
	// past the adaptive latency threshold, so a hedge raced the next
	// replica. Still a peer hit — zero PFS ops — but priced separately
	// so the analyzer can report what tail latency costs. (Appended
	// after ClassPeerMiss to keep earlier binary traces decodable.)
	ClassPeerHedge

	// ClassWrite: a write-through write — the PFS had the bytes before
	// the caller was acked, so it costs foreground PFS ops. (Appended,
	// with the write classes below, after the peer classes.)
	ClassWrite
	// ClassWriteBack: a write acked by tier 0 with the flush deferred;
	// zero foreground PFS ops — the flush is priced separately.
	ClassWriteBack
	// ClassFlush: a background flush moving a write-back file's bytes
	// to the PFS; background PFS ops, off the foreground path.
	ClassFlush
	// ClassRemove: a foreground Remove of a writable file (one PFS
	// metadata op when the file had reached the PFS).
	ClassRemove
)

// String names the class (the "c" field of the JSONL encoding).
func (c Class) String() string {
	switch c {
	case ClassNone:
		return ""
	case ClassLocal:
		return "local"
	case ClassPartial:
		return "partial"
	case ClassPFS:
		return "pfs"
	case ClassFallback:
		return "fallback"
	case ClassError:
		return "error"
	case ClassFetch:
		return "fetch"
	case ClassReuse:
		return "reuse"
	case ClassSkip:
		return "skip"
	case ClassFail:
		return "fail"
	case ClassDemoted:
		return "demoted"
	case ClassEvicted:
		return "evicted"
	case ClassTierDown:
		return "tier-down"
	case ClassTierUp:
		return "tier-up"
	case ClassPeer:
		return "peer"
	case ClassPeerMiss:
		return "peer-miss"
	case ClassPeerHedge:
		return "peer-hedge"
	case ClassWrite:
		return "write"
	case ClassWriteBack:
		return "write-back"
	case ClassFlush:
		return "flush"
	case ClassRemove:
		return "remove"
	default:
		return "unknown"
	}
}

// classFromString inverts Class.String; ok is false for unknown names.
func classFromString(s string) (Class, bool) {
	for c := ClassNone; c <= ClassRemove; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return ClassNone, false
}

// kindFromString inverts Kind.String.
func kindFromString(s string) (Kind, bool) {
	for k := KindRead; k <= KindFlush; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one fixed-size trace record. T is nanoseconds since the
// recorder started, on whatever clock the header declares (virtual
// under simulation, wall-monotonic otherwise). File is an interned ID
// resolved through the trace's file table (0 = no file). Off/Len carry
// the byte range of reads and chunk copies; for placements Len is the
// file size, for epoch markers it is the epoch number.
type Event struct {
	T     int64
	File  uint32
	Kind  Kind
	Class Class
	Tier  int8  // serving/target level; -1 when not applicable
	Lat   uint8 // latency bucket index; see LatBucket
	Off   int64
	Len   int64
	Req   uint64 // cross-node correlation ID; 0 when unset
}

// File is one namespace entry of the traced hierarchy. IDs are dense
// and start at 1, in first-seen order (namespace order for runs that
// call Init before serving reads).
type File struct {
	ID   uint32 `json:"id"`
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// Level describes one hierarchy level in the header, enough for a
// replay to rebuild an equivalent stack.
type Level struct {
	Name     string `json:"name"`
	Capacity int64  `json:"capacity"`
}

// Header is the trace's self-description, written first in both
// encodings.
type Header struct {
	Version   int               `json:"monarch_trace"`
	Clock     string            `json:"clock"`  // "wall" or "virtual"
	Sample    int               `json:"sample"` // 1-in-N read sampling (<=1: every read)
	Source    int               `json:"source"` // source (PFS) level index
	ChunkSize int64             `json:"chunk_size,omitempty"`
	Levels    []Level           `json:"levels"`
	Meta      map[string]string `json:"meta,omitempty"`
}

// Trailer closes a complete trace: the run's final middleware counters
// plus the recorder's own accounting, so consumers can tell a truncated
// capture from a clean one.
type Trailer struct {
	Summary map[string]int64 `json:"summary"`
	Trace   map[string]int64 `json:"trace"`
}

// latBoundsNS mirrors obs.LatencyBuckets in integer nanoseconds, so
// the hot path buckets with int64 compares instead of float division.
var latBoundsNS = func() [8]int64 {
	var b [8]int64
	if len(obs.LatencyBuckets) != len(b) {
		panic("trace: latency bucket count drifted from obs.LatencyBuckets")
	}
	for i, s := range obs.LatencyBuckets {
		b[i] = int64(s * 1e9)
	}
	return b
}()

// LatBucket maps a duration onto obs.LatencyBuckets: the index of the
// first bound the duration fits under, or len(obs.LatencyBuckets) for
// observations beyond the last bound. One byte per event buys the
// analyzer latency histograms without storing nanosecond durations.
func LatBucket(d time.Duration) uint8 {
	ns := int64(d)
	for i, b := range latBoundsNS {
		if ns <= b {
			return uint8(i)
		}
	}
	return uint8(len(latBoundsNS))
}

// LatBucketBound returns the upper bound (seconds) of bucket i, or
// +Inf for the overflow bucket.
func LatBucketBound(i uint8) float64 {
	if int(i) < len(obs.LatencyBuckets) {
		return obs.LatencyBuckets[i]
	}
	return math.Inf(1)
}
