package trace

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"monarch/internal/obs"
)

// capture writes a small, representative trace through a Recorder and
// reads it back. Both encodings must reproduce it exactly.
func capture(t *testing.T, path string, sample int) *Trace {
	t.Helper()
	var clock int64
	rec, err := New(Config{
		Path:   path,
		Sample: sample,
		Now:    func() int64 { clock += 1000; return clock },
		Levels: []Level{{Name: "ssd", Capacity: 1 << 30}, {Name: "lustre"}},
		Source: 1,
		Meta:   map[string]string{"scale": "1", "copy_chunk": "4194304"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.AddFiles([]File{{Name: "a", Size: 100}, {Name: "b", Size: 200}})

	rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "a", Tier: 1, Off: 0, Bytes: 50, Duration: time.Millisecond})
	rec.HookSpan(obs.Span{Kind: obs.SpanPlacement, File: "a", Tier: 0, Bytes: 100})
	rec.HookSpan(obs.Span{Kind: obs.SpanChunkCopy, File: "b", Tier: 0, Off: 64, Bytes: 32, Duration: time.Microsecond})
	rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "a", Tier: 0, Off: 50, Bytes: 50, Duration: 10 * time.Microsecond})
	rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "b", Tier: 0, Off: 0, Bytes: 10,
		Flags: obs.FlagPartial, Duration: time.Microsecond})
	// A file never registered: interned lazily with unknown size.
	rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "c", Tier: 1, Bytes: 5})
	rec.MarkEpoch(1)
	rec.State(ClassEvicted, "b", 0, 200)
	rec.AddSummary(map[string]int64{"placements": 1})
	rec.AddSummary(map[string]int64{"pfs_data_ops": 42})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func checkCapture(t *testing.T, tr *Trace) {
	t.Helper()
	if tr.Header.Version != Version || tr.Header.Clock != "virtual" || tr.Header.Source != 1 {
		t.Fatalf("header = %+v", tr.Header)
	}
	if len(tr.Header.Levels) != 2 || tr.Header.Levels[0].Name != "ssd" || tr.Header.Levels[0].Capacity != 1<<30 {
		t.Fatalf("levels = %+v", tr.Header.Levels)
	}
	if tr.Header.Meta["copy_chunk"] != "4194304" {
		t.Fatalf("meta = %v", tr.Header.Meta)
	}
	if len(tr.Files) != 3 || tr.Name(1) != "a" || tr.Size(2) != 200 || tr.Size(3) != -1 {
		t.Fatalf("files = %+v", tr.Files)
	}
	if !tr.Complete() {
		t.Fatal("trace has no trailer")
	}
	if tr.Summary["placements"] != 1 || tr.Summary["pfs_data_ops"] != 42 {
		t.Fatalf("summary = %v", tr.Summary)
	}
	if tr.Stats["seen"] != 8 || tr.Stats["recorded"] != 8 || tr.Stats["dropped"] != 0 {
		t.Fatalf("stats = %v", tr.Stats)
	}

	want := []struct {
		kind  Kind
		class Class
		file  string
		tier  int8
		off   int64
		len   int64
	}{
		{KindRead, ClassPFS, "a", 1, 0, 50},
		{KindPlacement, ClassFetch, "a", 0, 0, 100},
		{KindChunkCopy, ClassNone, "b", 0, 64, 32},
		{KindRead, ClassLocal, "a", 0, 50, 50},
		{KindRead, ClassPartial, "b", 0, 0, 10},
		{KindRead, ClassPFS, "c", 1, 0, 5},
		{KindEpoch, ClassNone, "", -1, 0, 1},
		{KindState, ClassEvicted, "b", 0, 0, 200},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(tr.Events), len(want), tr.Events)
	}
	var prevT int64
	for i, w := range want {
		ev := tr.Events[i]
		if ev.Kind != w.kind || ev.Class != w.class || ev.Tier != w.tier || ev.Off != w.off || ev.Len != w.len {
			t.Fatalf("event %d = %+v, want %+v", i, ev, w)
		}
		if tr.Name(ev.File) != w.file {
			t.Fatalf("event %d file = %q, want %q", i, tr.Name(ev.File), w.file)
		}
		if ev.T <= prevT {
			t.Fatalf("event %d timestamp %d not increasing (prev %d)", i, ev.T, prevT)
		}
		prevT = ev.T
	}
	// Latency buckets: 1ms lands in the decade bucket covering 1e-3.
	if got := tr.Events[0].Lat; LatBucketBound(got) < 1e-3 {
		t.Fatalf("1ms read bucketed at %d (bound %g)", got, LatBucketBound(got))
	}
}

func TestRoundTripJSONL(t *testing.T) {
	checkCapture(t, capture(t, filepath.Join(t.TempDir(), "t.jsonl"), 1))
}

func TestRoundTripBinary(t *testing.T) {
	checkCapture(t, capture(t, filepath.Join(t.TempDir(), "t.bin"), 1))
}

func TestEncodingsAgree(t *testing.T) {
	dir := t.TempDir()
	j := capture(t, filepath.Join(dir, "t.jsonl"), 1)
	b := capture(t, filepath.Join(dir, "t.bin"), 1)
	if len(j.Events) != len(b.Events) {
		t.Fatalf("event counts differ: jsonl %d, bin %d", len(j.Events), len(b.Events))
	}
	for i := range j.Events {
		if j.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: jsonl %+v, bin %+v", i, j.Events[i], b.Events[i])
		}
	}
}

// TestSamplingPolicy locks the rule sampling must follow: only plain
// local/PFS read hits are thinned; partial hits, errors, placements,
// chunk copies, epochs and state changes always record.
func TestSamplingPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	rec, err := New(Config{Path: path, Sample: 10, Levels: []Level{{Name: "ssd"}, {Name: "pfs"}}, Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	const hits = 100
	for i := 0; i < hits; i++ {
		rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "f", Tier: 0, Bytes: 1})
	}
	rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "f", Tier: 0, Bytes: 1, Flags: obs.FlagPartial})
	rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "f", Tier: 1, Bytes: 1, Flags: obs.FlagFallback})
	rec.HookSpan(obs.Span{Kind: obs.SpanPlacement, File: "f", Tier: 0, Bytes: 1})
	rec.HookSpan(obs.Span{Kind: obs.SpanChunkCopy, File: "f", Tier: 0, Bytes: 1})
	rec.MarkEpoch(1)
	rec.State(ClassDemoted, "f", 0, 1)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	st := rec.Stats()
	if st.Seen != st.Recorded+st.SampledOut+st.Dropped {
		t.Fatalf("invariant broken: %+v", st)
	}
	if st.SampledOut != hits-hits/10 {
		t.Fatalf("sampled out %d of %d hits, want %d", st.SampledOut, hits, hits-hits/10)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d", st.Dropped)
	}

	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Kind]int{}
	classes := map[Class]int{}
	for _, ev := range tr.Events {
		counts[ev.Kind]++
		classes[ev.Class]++
	}
	if counts[KindRead] != hits/10+2 {
		t.Fatalf("reads recorded = %d, want %d sampled + 2 unsampled", counts[KindRead], hits/10)
	}
	if classes[ClassPartial] != 1 || classes[ClassFallback] != 1 {
		t.Fatalf("event-worthy reads were sampled out: %v", classes)
	}
	if counts[KindPlacement] != 1 || counts[KindChunkCopy] != 1 || counts[KindEpoch] != 1 || counts[KindState] != 1 {
		t.Fatalf("non-read events were sampled out: %v", counts)
	}
}

func TestRingOverflowDropsAndCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "o.jsonl")
	rec, err := New(Config{Path: path, Buffer: 4, Levels: []Level{{Name: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the drainer's input at bay by flooding from many goroutines;
	// with a 4-slot ring some of 10k events must drop, none may block.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1250; i++ {
				rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "f", Tier: 0, Bytes: 1})
			}
		}()
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Seen != 10000 {
		t.Fatalf("seen = %d", st.Seen)
	}
	if st.Seen != st.Recorded+st.SampledOut+st.Dropped {
		t.Fatalf("invariant broken: %+v", st)
	}
	if st.Written != st.Recorded {
		t.Fatalf("written %d != recorded %d after Close", st.Written, st.Recorded)
	}
	tr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(tr.Events)) != st.Recorded {
		t.Fatalf("file holds %d events, recorder claims %d", len(tr.Events), st.Recorded)
	}
	if tr.Stats["dropped"] != st.Dropped {
		t.Fatalf("trailer dropped = %d, stats = %d", tr.Stats["dropped"], st.Dropped)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.HookSpan(obs.Span{Kind: obs.SpanRead})
	r.State(ClassEvicted, "f", 0, 1)
	r.MarkEpoch(1)
	r.AddFiles([]File{{Name: "x"}})
	r.AddSummary(map[string]int64{"a": 1})
	if st := r.Stats(); st != (RecorderStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIsIdempotentAndDropsLateEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	rec, err := New(Config{Path: path, Levels: []Level{{Name: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "f", Tier: 0, Bytes: 1})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "f", Tier: 0, Bytes: 1})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Dropped != 1 || st.Recorded != 1 {
		t.Fatalf("post-close accounting = %+v", st)
	}
}

func TestInstrumentExportsCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "i.jsonl")
	rec, err := New(Config{Path: path, Sample: 2, Levels: []Level{{Name: "a"}, {Name: "b"}}, Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	reg := obs.NewRegistry()
	rec.Instrument(reg)
	for i := 0; i < 4; i++ {
		rec.HookSpan(obs.Span{Kind: obs.SpanRead, File: "f", Tier: 0, Bytes: 1})
	}
	snap := reg.Snapshot()
	if v, ok := snap.Value("monarch_trace_events_total", obs.L("disposition", "recorded")); !ok || v != 2 {
		t.Fatalf("recorded counter = %v ok=%v", v, ok)
	}
	if v, ok := snap.Value("monarch_trace_events_total", obs.L("disposition", "sampled-out")); !ok || v != 2 {
		t.Fatalf("sampled-out counter = %v ok=%v", v, ok)
	}
}

func TestLatBucketMonotone(t *testing.T) {
	durs := []time.Duration{0, time.Microsecond, 50 * time.Microsecond,
		time.Millisecond, 300 * time.Millisecond, time.Second, time.Minute}
	var prev uint8
	for i, d := range durs {
		b := LatBucket(d)
		if i > 0 && b < prev {
			t.Fatalf("bucket(%v) = %d < bucket(prev) = %d", d, b, prev)
		}
		prev = b
	}
	if LatBucketBound(LatBucket(time.Minute)) != LatBucketBound(255) {
		t.Fatalf("overflow duration should land in the last bucket")
	}
}
