package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// TestReadBinaryV1 decodes a hand-built version-1 binary trace: 32-byte
// event records with no Req field. Old captures must stay readable
// after the version-2 record grew the correlation ID.
func TestReadBinaryV1(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binMagic)

	blob := func(data []byte) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(data)))
		buf.Write(n[:])
		buf.Write(data)
	}
	hdr, err := json.Marshal(Header{Version: 1, Clock: "wall", Levels: []Level{{Name: "ssd"}}})
	if err != nil {
		t.Fatal(err)
	}
	blob(hdr)

	// tagDefine: file "a", id 1, size 64.
	def := make([]byte, 12, 13)
	binary.LittleEndian.PutUint32(def[0:], 1)
	binary.LittleEndian.PutUint64(def[4:], 64)
	def = append(def, 'a')
	buf.WriteByte(tagDefine)
	blob(def)

	// tagEvent: one v1 (32-byte) read record — T=5000, file 1,
	// KindRead/ClassLocal, tier 0, off 8, len 16, and no Req bytes.
	var rec [32]byte
	binary.LittleEndian.PutUint64(rec[0:], 5000)
	binary.LittleEndian.PutUint32(rec[8:], 1)
	rec[12] = byte(KindRead)
	rec[13] = byte(ClassLocal)
	rec[14] = 0 // tier
	rec[15] = 2 // latency bucket
	binary.LittleEndian.PutUint64(rec[16:], 8)
	binary.LittleEndian.PutUint64(rec[24:], 16)
	buf.WriteByte(tagEvent)
	buf.Write(rec[:])

	trl, err := json.Marshal(Trailer{Summary: map[string]int64{"reads": 1}})
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(tagTrailer)
	blob(trl)

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Version != 1 {
		t.Fatalf("version = %d, want 1", tr.Header.Version)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(tr.Events))
	}
	ev := tr.Events[0]
	if ev.T != 5000 || tr.Name(ev.File) != "a" || ev.Kind != KindRead ||
		ev.Class != ClassLocal || ev.Off != 8 || ev.Len != 16 {
		t.Fatalf("v1 event decoded as %+v", ev)
	}
	if ev.Req != 0 {
		t.Fatalf("v1 record has no Req field, decoded %x", ev.Req)
	}
	if !tr.Complete() || tr.Summary["reads"] != 1 {
		t.Fatalf("trailer lost: %+v", tr.Summary)
	}
}
