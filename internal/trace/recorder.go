package trace

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"monarch/internal/obs"
)

// Config assembles a Recorder.
type Config struct {
	// Path is the trace destination. A ".bin" suffix selects the
	// compact binary encoding; anything else writes JSONL.
	Path string
	// Sample records 1 in Sample plain read hits (<=1 records every
	// read). Sampling never touches partial hits, fallbacks, errors,
	// placements, chunk copies, epoch markers or state changes, so the
	// trace stays in lock-step with the middleware's event counters —
	// only the bulk local/PFS hit stream is thinned.
	Sample int
	// Now supplies monotonic nanoseconds; experiments pass the sim
	// clock so timestamps are virtual. Nil uses wall-monotonic time
	// since the recorder started.
	Now func() int64
	// Buffer is the ring capacity in events (default 65536, ~2 MiB).
	// When producers outrun the drainer the ring drops events and
	// counts them rather than blocking the read path.
	Buffer int
	// Levels, Source and ChunkSize describe the traced hierarchy and
	// are embedded in the header for replays.
	Levels    []Level
	Source    int
	ChunkSize int64
	// Meta is embedded verbatim in the header (scale, dataset, copy
	// chunk — whatever a consumer needs to interpret the run).
	Meta map[string]string
}

// RecorderStats is the recorder's own accounting. The invariant
// Seen == Recorded + SampledOut + Dropped always holds; Written trails
// Recorded until Close drains the ring.
type RecorderStats struct {
	Seen       int64 // events offered to the recorder
	Recorded   int64 // events accepted into the ring
	SampledOut int64 // plain read hits thinned by Config.Sample
	Dropped    int64 // ring overflow, sink failure, or post-Close arrivals
	Written    int64 // events the drainer has handed to the sink
}

// Recorder streams middleware events to a trace file. Producers only
// take a short mutex to append into a preallocated ring; encoding and
// file I/O happen on a background drainer goroutine.
type Recorder struct {
	cfg     Config
	sampleN int64
	now     func() int64
	epoch   int64 // wall base when cfg.Now is nil

	f   *os.File
	enc encoder

	// recorded is not stored: the invariant pins it to
	// seen - sampledOut - dropped, saving one atomic per hot-path event.
	tick       atomic.Int64 // read-hit counter driving sampling
	seen       atomic.Int64
	sampledOut atomic.Int64
	dropped    atomic.Int64
	written    atomic.Int64

	mu      sync.Mutex
	ring    []Event
	start   int
	n       int
	defs    []File // file definitions pending a drain
	names   map[string]uint32
	summary map[string]int64
	sinkErr error
	closed  bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// New opens cfg.Path and starts the drainer. The header is written
// immediately, so even an empty trace is self-describing.
func New(cfg Config) (*Recorder, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("trace: empty path")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1 << 16
	}
	if cfg.Sample < 1 {
		cfg.Sample = 1
	}
	f, err := os.Create(cfg.Path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	r := &Recorder{
		cfg:     cfg,
		sampleN: int64(cfg.Sample),
		now:     cfg.Now,
		ring:    make([]Event, cfg.Buffer),
		names:   make(map[string]uint32),
		summary: make(map[string]int64),
		f:       f,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	clock := "virtual"
	if r.now == nil {
		start := time.Now()
		r.now = func() int64 { return int64(time.Since(start)) }
		clock = "wall"
	}
	h := Header{
		Version:   Version,
		Clock:     clock,
		Sample:    cfg.Sample,
		Source:    cfg.Source,
		ChunkSize: cfg.ChunkSize,
		Levels:    cfg.Levels,
		Meta:      cfg.Meta,
	}
	if strings.HasSuffix(cfg.Path, ".bin") {
		r.enc = newBinEncoder(f)
	} else {
		r.enc = newJSONLEncoder(f)
	}
	if err := r.enc.header(h); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %w", err)
	}
	go r.drainLoop()
	return r, nil
}

// AddFiles registers namespace entries (IDs are assigned in order).
// Call it once the metadata container is built; files first seen
// through events are interned lazily with size -1.
func (r *Recorder) AddFiles(files []File) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, f := range files {
		r.internLocked(f.Name, f.Size)
	}
	r.mu.Unlock()
	r.wakeDrainer()
}

// internLocked returns the ID for name, defining it if new. Definitions
// queue ahead of the events that reference them: defs and ring are
// appended under the same mutex and drained together, so a definition
// always reaches the sink before its first event.
func (r *Recorder) internLocked(name string, size int64) uint32 {
	if id, ok := r.names[name]; ok {
		return id
	}
	id := uint32(len(r.names) + 1)
	r.names[name] = id
	r.defs = append(r.defs, File{ID: id, Name: name, Size: size})
	return id
}

// HookSpan adapts the middleware's span stream into trace events; wire
// it as (or into) core's Config.Trace hook. Unknown span kinds are
// ignored.
func (r *Recorder) HookSpan(s obs.Span) {
	if r == nil {
		return
	}
	switch s.Kind {
	case obs.SpanRead:
		class := ClassLocal
		switch {
		case s.Err != nil:
			class = ClassError
		case s.Flags&obs.FlagFallback != 0:
			class = ClassFallback
		case s.Flags&obs.FlagPartial != 0:
			class = ClassPartial
		case s.Flags&obs.FlagPeerMiss != 0:
			class = ClassPeerMiss
		case s.Flags&obs.FlagHedged != 0:
			class = ClassPeerHedge
		case s.Flags&obs.FlagPeer != 0:
			class = ClassPeer
		case s.Tier == r.cfg.Source:
			class = ClassPFS
		}
		r.seen.Add(1)
		if (class == ClassLocal || class == ClassPFS) && r.sampleN > 1 {
			if (r.tick.Add(1)-1)%r.sampleN != 0 {
				r.sampledOut.Add(1)
				return
			}
		}
		r.enqueue(Event{
			T:     r.now(),
			Kind:  KindRead,
			Class: class,
			Tier:  int8(s.Tier),
			Lat:   LatBucket(s.Duration),
			Off:   s.Off,
			Len:   s.Bytes,
			Req:   s.Req,
		}, s.File)
	case obs.SpanPeerServe:
		// The remote half of a sibling's peer read. Never sampled: each
		// serve is the witness that stitches a cross-node span pair, and
		// the analyzer cannot correlate what sampling threw away.
		class := ClassNone
		if s.Err != nil {
			class = ClassError
		}
		r.seen.Add(1)
		r.enqueue(Event{
			T:     r.now(),
			Kind:  KindServe,
			Class: class,
			Tier:  int8(s.Tier),
			Lat:   LatBucket(s.Duration),
			Off:   s.Off,
			Len:   s.Bytes,
			Req:   s.Req,
		}, s.File)
	case obs.SpanPlacement:
		class := ClassFetch
		switch {
		case s.Err != nil && s.Tier < 0:
			class = ClassSkip
		case s.Err != nil:
			class = ClassFail
		case s.Flags&obs.FlagReuse != 0:
			class = ClassReuse
		}
		r.seen.Add(1)
		r.enqueue(Event{
			T:     r.now(),
			Kind:  KindPlacement,
			Class: class,
			Tier:  int8(s.Tier),
			Lat:   LatBucket(s.Duration),
			Len:   s.Bytes,
		}, s.File)
	case obs.SpanChunkCopy:
		r.seen.Add(1)
		r.enqueue(Event{
			T:    r.now(),
			Kind: KindChunkCopy,
			Tier: int8(s.Tier),
			Lat:  LatBucket(s.Duration),
			Off:  s.Off,
			Len:  s.Bytes,
		}, s.File)
	case obs.SpanWrite, obs.SpanRemove:
		// Writes and removes are never sampled: checkpoint bursts are
		// rare, each acked byte matters for crash accounting, and the
		// analyzer prices write-through vs write-back from exact counts.
		class := ClassWrite
		switch {
		case s.Err != nil:
			class = ClassError
		case s.Kind == obs.SpanRemove:
			class = ClassRemove
		case s.Flags&obs.FlagWriteBack != 0:
			class = ClassWriteBack
		}
		r.seen.Add(1)
		r.enqueue(Event{
			T:     r.now(),
			Kind:  KindWrite,
			Class: class,
			Tier:  int8(s.Tier),
			Lat:   LatBucket(s.Duration),
			Off:   s.Off,
			Len:   s.Bytes,
			Req:   s.Req,
		}, s.File)
	case obs.SpanFlush:
		class := ClassFlush
		if s.Err != nil {
			class = ClassError
		}
		r.seen.Add(1)
		r.enqueue(Event{
			T:     r.now(),
			Kind:  KindFlush,
			Class: class,
			Tier:  int8(s.Tier),
			Lat:   LatBucket(s.Duration),
			Len:   s.Bytes,
		}, s.File)
	}
}

// State records a tier-state change (demotion, eviction, breaker
// transitions); core forwards these from its event funnel.
func (r *Recorder) State(c Class, file string, tier int, bytes int64) {
	if r == nil {
		return
	}
	r.seen.Add(1)
	r.enqueue(Event{T: r.now(), Kind: KindState, Class: c, Tier: int8(tier), Len: bytes}, file)
}

// MarkEpoch records an epoch boundary: epoch n (1-based) just ended.
func (r *Recorder) MarkEpoch(n int) {
	if r == nil {
		return
	}
	r.seen.Add(1)
	r.enqueue(Event{T: r.now(), Kind: KindEpoch, Tier: -1, Len: int64(n)}, "")
}

// AddSummary merges counters into the trailer written at Close (core
// contributes its Stats; experiments add the measured PFS op count so
// the analyzer can cross-check its accounting).
func (r *Recorder) AddSummary(kv map[string]int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range kv {
		r.summary[k] = v
	}
}

// enqueue appends ev to the ring, interning the file name. Ring-full
// and post-Close events are dropped and counted, never blocked on.
// The drainer is only woken on an empty→non-empty transition: while it
// works it re-checks the ring itself, so per-event signalling would
// just add channel traffic and shrink its batches.
func (r *Recorder) enqueue(ev Event, file string) {
	r.mu.Lock()
	if r.closed || r.sinkErr != nil {
		r.mu.Unlock()
		r.dropped.Add(1)
		return
	}
	if file != "" {
		ev.File = r.internLocked(file, -1)
	}
	if r.n == len(r.ring) {
		r.mu.Unlock()
		r.dropped.Add(1)
		return
	}
	wasEmpty := r.n == 0
	r.ring[(r.start+r.n)%len(r.ring)] = ev
	r.n++
	r.mu.Unlock()
	if wasEmpty {
		r.wakeDrainer()
	}
}

// recorded derives the accepted-event count from the invariant.
func (r *Recorder) recorded() int64 {
	return r.seen.Load() - r.sampledOut.Load() - r.dropped.Load()
}

func (r *Recorder) wakeDrainer() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// drainLoop moves definitions and events from the ring to the encoder
// until Close. Encoding happens outside the producer mutex.
func (r *Recorder) drainLoop() {
	defer close(r.done)
	for {
		select {
		case <-r.wake:
			r.drain()
		case <-r.stop:
			r.drain()
			return
		}
	}
}

// drain writes everything currently buffered. Definitions drain before
// events grabbed in the same batch, preserving the define-before-use
// order established under the producer mutex.
func (r *Recorder) drain() {
	for {
		r.mu.Lock()
		if len(r.defs) == 0 && r.n == 0 {
			r.mu.Unlock()
			return
		}
		defs := r.defs
		r.defs = nil
		batch := make([]Event, 0, r.n)
		for r.n > 0 {
			batch = append(batch, r.ring[r.start])
			r.start = (r.start + 1) % len(r.ring)
			r.n--
		}
		broken := r.sinkErr != nil
		r.mu.Unlock()

		if broken {
			// Converts these events from recorded to dropped: recorded is
			// derived as seen - sampledOut - dropped.
			r.dropped.Add(int64(len(batch)))
			continue
		}
		var err error
		for _, d := range defs {
			if err = r.enc.define(d); err != nil {
				break
			}
		}
		for _, ev := range batch {
			if err != nil {
				break
			}
			if err = r.enc.event(ev); err != nil {
				break
			}
			r.written.Add(1)
		}
		if err != nil {
			r.mu.Lock()
			if r.sinkErr == nil {
				r.sinkErr = err
			}
			r.mu.Unlock()
		}
	}
}

// Stats returns the recorder's accounting.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	return RecorderStats{
		Seen:       r.seen.Load(),
		Recorded:   r.recorded(),
		SampledOut: r.sampledOut.Load(),
		Dropped:    r.dropped.Load(),
		Written:    r.written.Load(),
	}
}

// Instrument registers the recorder's accounting into a metrics
// registry, so snapshots embed trace health next to everything else.
func (r *Recorder) Instrument(reg *obs.Registry, labels ...obs.Label) {
	const help = "Trace recorder events, by disposition."
	reg.CounterFunc("monarch_trace_events_total", help,
		r.recorded, append(labels, obs.L("disposition", "recorded"))...)
	reg.CounterFunc("monarch_trace_events_total", help,
		func() int64 { return r.sampledOut.Load() }, append(labels, obs.L("disposition", "sampled-out"))...)
	reg.CounterFunc("monarch_trace_events_total", help,
		func() int64 { return r.dropped.Load() }, append(labels, obs.L("disposition", "dropped"))...)
	reg.CounterFunc("monarch_trace_written_total",
		"Trace events drained to the sink.",
		func() int64 { return r.written.Load() }, labels...)
}

// Close stops intake, drains the ring, writes the trailer and closes
// the file. Events arriving after Close are dropped and counted; a
// second Close is a no-op returning the first outcome.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.closed {
		err := r.sinkErr
		r.mu.Unlock()
		return err
	}
	r.closed = true
	r.mu.Unlock()

	close(r.stop)
	<-r.done

	r.mu.Lock()
	defer r.mu.Unlock()
	t := Trailer{
		Summary: r.summary,
		Trace: map[string]int64{
			"seen":        r.seen.Load(),
			"recorded":    r.recorded(),
			"sampled_out": r.sampledOut.Load(),
			"dropped":     r.dropped.Load(),
		},
	}
	if r.sinkErr == nil {
		r.sinkErr = r.enc.trailer(t)
	}
	if r.sinkErr == nil {
		r.sinkErr = r.enc.flush()
	}
	if err := r.f.Close(); err != nil && r.sinkErr == nil {
		r.sinkErr = err
	}
	return r.sinkErr
}
