package replay

import (
	"bytes"
	"strings"
	"testing"

	"monarch/internal/trace"
)

// consistent builds a trace whose trailer matches what a faithful
// replay must derive from its events, so the round-trip check passes.
func consistent() *trace.Trace {
	ev := func(t int64, k trace.Kind, c trace.Class, file uint32, tier int8, off, ln int64) trace.Event {
		return trace.Event{T: t, Kind: k, Class: c, File: file, Tier: tier, Off: off, Len: ln}
	}
	return &trace.Trace{
		Header: trace.Header{
			Version: trace.Version,
			Clock:   "virtual",
			Sample:  1,
			Source:  1,
			Levels:  []trace.Level{{Name: "ssd", Capacity: 1 << 30}, {Name: "lustre"}},
			Meta:    map[string]string{"copy_chunk": "100"},
		},
		Files: []trace.File{
			{ID: 1, Name: "a", Size: 250},
			{ID: 2, Name: "b", Size: 100},
		},
		Events: []trace.Event{
			ev(1000, trace.KindRead, trace.ClassPFS, 1, 1, 0, 250),
			ev(2000, trace.KindRead, trace.ClassPFS, 2, 1, 0, 100),
			ev(3000, trace.KindChunkCopy, trace.ClassNone, 1, 0, 0, 100),
			ev(4000, trace.KindChunkCopy, trace.ClassNone, 1, 0, 100, 100),
			ev(5000, trace.KindChunkCopy, trace.ClassNone, 1, 0, 200, 50),
			ev(6000, trace.KindPlacement, trace.ClassFetch, 1, 0, 0, 250),
			ev(7000, trace.KindPlacement, trace.ClassFetch, 2, 0, 0, 100),
			ev(8000, trace.KindEpoch, trace.ClassNone, 0, -1, 0, 1),
			ev(9000, trace.KindRead, trace.ClassLocal, 1, 0, 0, 250),
			ev(10000, trace.KindRead, trace.ClassPartial, 2, 0, 0, 100),
		},
		Summary: map[string]int64{
			"reads_tier_0": 2, "bytes_tier_0": 350,
			"reads_tier_1": 2, "bytes_tier_1": 350,
			"partial_hits": 1, "partial_hit_bytes": 100,
			"fallbacks":    0,
			"pfs_data_ops": 6, // 2 source reads + 3 chunks + 1 whole-file fetch
			"placements":   2, "placed_bytes": 350,
			"chunk_placements": 3, "placement_skips": 0, "placement_errors": 0,
		},
		Stats: map[string]int64{"seen": 10, "recorded": 10, "dropped": 0},
	}
}

func TestFaithfulRoundTrip(t *testing.T) {
	tr := consistent()
	rep, err := Run(tr, Options{Mode: Faithful})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("mismatches: %v", rep.Mismatches)
	}
	if rep.ReadsServed[0] != 2 || rep.ReadsServed[1] != 2 ||
		rep.BytesServed[0] != 350 || rep.BytesServed[1] != 350 {
		t.Fatalf("reads/bytes = %v / %v", rep.ReadsServed, rep.BytesServed)
	}
	if rep.PFSOps != 6 || rep.Placements != 2 || rep.ChunkPlacements != 3 || rep.PartialHits != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Duration <= 0 {
		t.Fatalf("virtual makespan = %v", rep.Duration)
	}

	var buf bytes.Buffer
	rep.RenderText(&buf, tr)
	if !strings.Contains(buf.String(), "match the capture exactly") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestFaithfulDetectsDivergence(t *testing.T) {
	tr := consistent()
	tr.Summary["pfs_data_ops"] = 99
	rep, err := Run(tr, Options{Mode: Faithful})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 1 || !strings.Contains(rep.Mismatches[0], "pfs_data_ops") {
		t.Fatalf("mismatches = %v", rep.Mismatches)
	}
	var buf bytes.Buffer
	rep.RenderText(&buf, tr)
	if !strings.Contains(buf.String(), "MISMATCH") {
		t.Fatalf("render does not surface the mismatch:\n%s", buf.String())
	}
}

func TestSampledTraceSkipsReadChecks(t *testing.T) {
	tr := consistent()
	// Pretend half the plain hits were thinned: read counters no longer
	// match, but the always-recorded placement stream still must.
	tr.Header.Sample = 2
	tr.Summary["reads_tier_0"] = 99999
	rep, err := Run(tr, Options{Mode: Faithful})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("sampled trace mismatches: %v", rep.Mismatches)
	}
}

func TestReplayRejectsIncompleteTrace(t *testing.T) {
	tr := consistent()
	tr.Summary = nil
	if _, err := Run(tr, Options{}); err == nil {
		t.Fatal("incomplete trace accepted")
	}
	if _, err := Run(&trace.Trace{}, Options{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestLiveReplayRebuildsStack(t *testing.T) {
	rep, err := Run(consistent(), Options{Mode: Live, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "live" {
		t.Fatalf("mode = %q", rep.Mode)
	}
	// All four foreground reads are re-issued; the rebuilt stack makes
	// its own placement decisions over them.
	var reads int64
	for _, v := range rep.ReadsServed {
		reads += v
	}
	if reads != 4 {
		t.Fatalf("reads served = %v", rep.ReadsServed)
	}
	if rep.Placements != 2 {
		t.Fatalf("placements = %d, want both files placed", rep.Placements)
	}
	var buf bytes.Buffer
	rep.RenderText(&buf, consistent())
	if !strings.Contains(buf.String(), "live") {
		t.Fatalf("render:\n%s", buf.String())
	}
}
