// Package replay re-drives a captured MONARCH access trace through a
// fresh simulated storage hierarchy, turning any capture into a
// reproducible benchmark.
//
// Faithful mode replays exactly what the capture recorded: every event
// charges the level that served it in the original run (reads on their
// serving tier, fetches as source-read + destination-write streams),
// and the per-tier statistics it aggregates are compared against the
// trailer the capture wrote — an unsampled, complete trace must
// round-trip exactly. Live mode instead rebuilds a real middleware
// stack (core.New over simstore tiers) from the trace header and
// re-issues the foreground reads at their recorded timestamps, so the
// replay re-decides placement — a what-if run over the captured
// workload rather than a re-enactment.
package replay

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"monarch/internal/core"
	"monarch/internal/pool"
	"monarch/internal/sim"
	"monarch/internal/simstore"
	"monarch/internal/storage"
	"monarch/internal/trace"
)

// Mode selects the replay strategy.
type Mode int

const (
	// Faithful re-enacts the captured events verbatim.
	Faithful Mode = iota
	// Live rebuilds a middleware stack and re-issues the reads.
	Live
)

// Options tunes a replay.
type Options struct {
	Mode Mode
	// Workers is the number of replay processes re-driving events
	// (default 16, the pipeline's reader count).
	Workers int
	// Seed seeds the simulation environment (default 1).
	Seed uint64
	// PlacementThreads sizes the live-mode placement pool (default 6,
	// or the trace meta's "placement_threads").
	PlacementThreads int
}

// Report is the replay's outcome.
type Report struct {
	Mode     string        `json:"mode"`
	Events   int64         `json:"events"`
	Duration time.Duration `json:"duration"` // virtual makespan

	ReadsServed     []int64 `json:"reads_served"` // per level
	BytesServed     []int64 `json:"bytes_served"`
	PartialHits     int64   `json:"partial_hits"`
	PartialHitBytes int64   `json:"partial_hit_bytes"`
	Fallbacks       int64   `json:"fallbacks"`
	Placements      int64   `json:"placements"`
	PlacedBytes     int64   `json:"placed_bytes"`
	ChunkPlacements int64   `json:"chunk_placements"`
	Skips           int64   `json:"skips"`
	Failures        int64   `json:"failures"`
	PFSOps          int64   `json:"pfs_ops"`

	// Mismatches lists counters that differ from the capture's trailer
	// (faithful mode only; empty means the trace round-tripped).
	Mismatches []string `json:"mismatches,omitempty"`
}

// specFor guesses a device model from a level name; replays only need
// plausible service times, the statistics do not depend on them.
func specFor(name string) simstore.DeviceSpec {
	switch {
	case strings.Contains(name, "ram"):
		return simstore.RAMSpec()
	case strings.Contains(name, "lustre") || strings.Contains(name, "pfs"):
		return simstore.LustreSpec()
	default:
		return simstore.SSDSpec()
	}
}

// Run replays t under opts.
func Run(t *trace.Trace, opts Options) (*Report, error) {
	if len(t.Header.Levels) == 0 {
		return nil, fmt.Errorf("replay: trace header declares no levels")
	}
	if !t.Complete() {
		return nil, fmt.Errorf("replay: incomplete trace (no trailer); nothing to verify against")
	}
	if opts.Workers <= 0 {
		opts.Workers = 16
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Mode == Live {
		return runLive(t, opts)
	}
	return runFaithful(t, opts)
}

// charge is one device operation derived from an event.
type charge struct {
	t     sim.Time
	level int
	write bool
	bytes int64
}

// runFaithful re-enacts the capture. Statistics are derived in one
// sequential pass (so ordering between concurrent replay workers can
// never skew them), then the charges are fanned out over Workers sim
// processes that honour the recorded timestamps.
func runFaithful(t *trace.Trace, opts Options) (*Report, error) {
	nlev := len(t.Header.Levels)
	source := t.Header.Source
	if source < 0 || source >= nlev {
		source = nlev - 1
	}
	rep := &Report{
		Mode:        "faithful",
		Events:      int64(len(t.Events)),
		ReadsServed: make([]int64, nlev),
		BytesServed: make([]int64, nlev),
	}
	copyChunk := int64(0)
	if s, ok := t.Header.Meta["copy_chunk"]; ok {
		copyChunk, _ = strconv.ParseInt(s, 10, 64)
	}

	var charges []charge
	chunkOps := make(map[uint32]int64)
	for _, ev := range t.Events {
		ts := sim.Time(ev.T)
		switch ev.Kind {
		case trace.KindRead:
			if ev.Class == trace.ClassError {
				continue
			}
			lvl := int(ev.Tier)
			if lvl < 0 || lvl >= nlev {
				continue
			}
			rep.ReadsServed[lvl]++
			rep.BytesServed[lvl] += ev.Len
			charges = append(charges, charge{t: ts, level: lvl, bytes: ev.Len})
			switch ev.Class {
			case trace.ClassPartial:
				rep.PartialHits++
				rep.PartialHitBytes += ev.Len
			case trace.ClassFallback:
				rep.Fallbacks++
			}
			if lvl == source {
				rep.PFSOps++
			}
		case trace.KindChunkCopy:
			rep.ChunkPlacements++
			rep.PFSOps++
			chunkOps[ev.File]++
			charges = append(charges,
				charge{t: ts, level: source, bytes: ev.Len},
				charge{t: ts, level: int(ev.Tier), write: true, bytes: ev.Len})
		case trace.KindPlacement:
			switch ev.Class {
			case trace.ClassFetch:
				rep.Placements++
				rep.PlacedBytes += ev.Len
				if chunkOps[ev.File] == 0 {
					// Whole-file fetch: stream the file from the source
					// in copy-chunk-sized requests.
					n := int64(1)
					if copyChunk > 0 && ev.Len > 0 {
						n = (ev.Len + copyChunk - 1) / copyChunk
					}
					rep.PFSOps += n
					rem := ev.Len
					sz := ev.Len
					if copyChunk > 0 {
						sz = copyChunk
					}
					for rem > 0 {
						b := sz
						if b > rem {
							b = rem
						}
						charges = append(charges,
							charge{t: ts, level: source, bytes: b},
							charge{t: ts, level: int(ev.Tier), write: true, bytes: b})
						rem -= b
					}
				}
			case trace.ClassReuse:
				rep.Placements++
				rep.PlacedBytes += ev.Len
				charges = append(charges, charge{t: ts, level: int(ev.Tier), write: true, bytes: ev.Len})
			case trace.ClassSkip:
				rep.Skips++
			case trace.ClassFail:
				rep.Failures++
			}
			delete(chunkOps, ev.File)
		}
	}

	// Re-drive the charges through fresh devices on the sim clock.
	env := sim.NewEnv(opts.Seed)
	defer env.Close()
	devs := make([]*simstore.Device, nlev)
	for i, l := range t.Header.Levels {
		devs[i] = simstore.NewDevice(env, specFor(l.Name))
	}
	for w := 0; w < opts.Workers; w++ {
		w := w
		env.Go(fmt.Sprintf("replay-%d", w), func(p *sim.Proc) {
			for i := w; i < len(charges); i += opts.Workers {
				c := charges[i]
				p.SleepUntil(c.t)
				if c.bytes <= 0 {
					continue
				}
				if c.write {
					devs[c.level].Write(p, c.bytes)
				} else {
					devs[c.level].Read(p, c.bytes)
				}
			}
		})
	}
	if err := env.Run(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	rep.Duration = env.Now().Duration()
	rep.Mismatches = compare(t, rep)
	return rep, nil
}

// compare checks the re-enacted statistics against the capture's
// trailer. A sampled capture thins plain read hits, so read/byte
// counters are only checked at sample 1.
func compare(t *trace.Trace, rep *Report) []string {
	var out []string
	check := func(key string, got int64) {
		want, ok := t.Summary[key]
		if !ok {
			return
		}
		if got != want {
			out = append(out, fmt.Sprintf("%s: capture %d, replay %d", key, want, got))
		}
	}
	if t.Header.Sample <= 1 && t.Stats["dropped"] == 0 {
		for i := range rep.ReadsServed {
			check(fmt.Sprintf("reads_tier_%d", i), rep.ReadsServed[i])
			check(fmt.Sprintf("bytes_tier_%d", i), rep.BytesServed[i])
		}
		check("partial_hits", rep.PartialHits)
		check("partial_hit_bytes", rep.PartialHitBytes)
		check("fallbacks", rep.Fallbacks)
		check("pfs_data_ops", rep.PFSOps)
	}
	check("placements", rep.Placements)
	check("placed_bytes", rep.PlacedBytes)
	check("chunk_placements", rep.ChunkPlacements)
	check("placement_skips", rep.Skips)
	check("placement_errors", rep.Failures)
	sort.Strings(out)
	return out
}

// runLive rebuilds a middleware stack from the header and re-issues
// the captured foreground reads at their recorded timestamps.
func runLive(t *trace.Trace, opts Options) (*Report, error) {
	nlev := len(t.Header.Levels)
	if nlev < 2 {
		return nil, fmt.Errorf("replay: live mode needs at least 2 levels (header has %d)", nlev)
	}
	threads := opts.PlacementThreads
	if threads <= 0 {
		threads = 6
		if s, ok := t.Header.Meta["placement_threads"]; ok {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				threads = v
			}
		}
	}

	env := sim.NewEnv(opts.Seed)
	defer env.Close()
	levels := make([]storage.Backend, nlev)
	var src *simstore.Store
	for i, l := range t.Header.Levels {
		st := simstore.NewStore(simstore.NewDevice(env, specFor(l.Name)), l.Name, l.Capacity)
		if s, ok := t.Header.Meta["copy_chunk"]; ok {
			if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
				st.CopyChunk = v
			}
		}
		levels[i] = st
		if i == nlev-1 {
			src = st
		}
	}
	for _, f := range t.Files {
		if f.Size >= 0 {
			src.AddFile(f.Name, f.Size)
		}
	}
	src.SetReadOnly(true)

	m, err := core.New(core.Config{
		Levels:        levels,
		Pool:          pool.NewSimPool(env, "replay-placer", threads),
		FullFileFetch: true,
		ChunkSize:     t.Header.ChunkSize,
	})
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}

	// Only successful foreground reads are re-issued: errors and all
	// background activity are outcomes for the rebuilt stack to
	// re-decide.
	var reads []trace.Event
	for _, ev := range t.Events {
		if ev.Kind == trace.KindRead && ev.Class != trace.ClassError {
			reads = append(reads, ev)
		}
	}
	var replayErr error
	// The metadata build needs the simulated clock, so workers start
	// from inside the init proc once it completes.
	env.Go("replay-init", func(ip *sim.Proc) {
		if err := m.Init(ip.Context()); err != nil {
			replayErr = fmt.Errorf("replay: %w", err)
			return
		}
		for w := 0; w < opts.Workers; w++ {
			w := w
			env.Go(fmt.Sprintf("replay-%d", w), func(p *sim.Proc) {
				buf := make([]byte, 1<<20)
				for i := w; i < len(reads); i += opts.Workers {
					ev := reads[i]
					name := t.Name(ev.File)
					if name == "" || ev.Len <= 0 {
						continue
					}
					if int64(len(buf)) < ev.Len {
						buf = make([]byte, ev.Len)
					}
					p.SleepUntil(sim.Time(ev.T))
					if _, err := m.ReadAt(p.Context(), name, buf[:ev.Len], ev.Off); err != nil && replayErr == nil {
						replayErr = fmt.Errorf("replay: read %s@%d: %w", name, ev.Off, err)
					}
				}
			})
		}
	})
	if err := env.Run(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if replayErr != nil {
		return nil, replayErr
	}

	s := m.Stats()
	rep := &Report{
		Mode:            "live",
		Events:          int64(len(reads)),
		Duration:        env.Now().Duration(),
		ReadsServed:     append([]int64(nil), s.ReadsServed...),
		BytesServed:     append([]int64(nil), s.BytesServed...),
		PartialHits:     s.PartialHits,
		PartialHitBytes: s.PartialHitBytes,
		Fallbacks:       s.Fallbacks,
		Placements:      s.Placements,
		PlacedBytes:     s.PlacedBytes,
		ChunkPlacements: s.ChunkPlacements,
		Skips:           s.PlacementSkips,
		Failures:        s.PlacementErrors,
	}
	return rep, nil
}

// RenderText writes rep as a human-readable table, with the capture's
// trailer alongside for comparison.
func (rep *Report) RenderText(wr io.Writer, t *trace.Trace) {
	fmt.Fprintf(wr, "replay (%s): %d event(s), virtual makespan %s\n",
		rep.Mode, rep.Events, rep.Duration.Round(time.Millisecond))
	for i := range rep.ReadsServed {
		name := fmt.Sprintf("tier %d", i)
		if i < len(t.Header.Levels) {
			name = fmt.Sprintf("tier %d (%s)", i, t.Header.Levels[i].Name)
		}
		fmt.Fprintf(wr, "  %-20s reads %9d   bytes %13d\n", name, rep.ReadsServed[i], rep.BytesServed[i])
	}
	fmt.Fprintf(wr, "  partial hits %d (%d bytes), fallbacks %d\n",
		rep.PartialHits, rep.PartialHitBytes, rep.Fallbacks)
	fmt.Fprintf(wr, "  placements %d (%d bytes), chunk placements %d, skips %d, failures %d\n",
		rep.Placements, rep.PlacedBytes, rep.ChunkPlacements, rep.Skips, rep.Failures)
	if rep.Mode == "faithful" {
		fmt.Fprintf(wr, "  PFS data ops %d\n", rep.PFSOps)
		if len(rep.Mismatches) == 0 {
			fmt.Fprintf(wr, "  round-trip: replay statistics match the capture exactly\n")
		} else {
			fmt.Fprintf(wr, "  round-trip MISMATCH (%d counter(s)):\n", len(rep.Mismatches))
			for _, m := range rep.Mismatches {
				fmt.Fprintf(wr, "    %s\n", m)
			}
		}
	}
}
