// Package peernet serves a node's tier-0 cache to sibling nodes over a
// length-prefixed binary wire protocol, and consumes sibling caches
// through a storage.Backend client — the "peer tier" that slots into
// the MONARCH hierarchy between local SSD and the PFS.
//
// The wire format is one frame per request and one per response:
//
//	| u32 length (big-endian) | u8 code | payload (length-1 bytes) |
//
// The code byte is an Op for requests and a Status for responses;
// the two ranges are disjoint so a desynchronised stream fails loudly
// instead of misparsing. Strings travel as u16 length + bytes,
// integers as big-endian fixed width. Frames are capped at MaxFrame;
// decoders reject anything larger before allocating.
package peernet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"monarch/internal/bufpool"
)

// MaxFrame bounds one frame (code byte + payload). Large reads are
// split client-side into maxData-sized requests, so the cap is a
// protocol sanity limit, not a file-size limit.
const MaxFrame = 64 << 20

// maxData is the largest byte range the client asks for in one READ
// frame; response = 1 code byte + payload must stay under MaxFrame.
const maxData = 4 << 20

// Op codes sent by clients. The high bit is clear; Status codes have
// it set.
const (
	// OpPing checks liveness; empty payload, empty OK response. A
	// non-empty payload is a piggybacked membership heartbeat (see
	// appendHeartbeat); servers with a Membership answer with their own
	// view, servers without answer empty — old and new nodes interoperate.
	OpPing byte = 0x01
	// OpStat requests file metadata; payload = name, response = i64 size.
	OpStat byte = 0x02
	// OpList requests the full listing; empty payload, response =
	// u32 count + count×(name, i64 size).
	OpList byte = 0x03
	// OpRead requests a byte range; payload = name + i64 off + u32 n,
	// response payload = the bytes read (short at EOF, empty past it).
	OpRead byte = 0x04
	// OpWrite creates or replaces a file; payload = name + data.
	OpWrite byte = 0x05
	// OpRemove deletes a file; payload = name.
	OpRemove byte = 0x06
	// OpUsage requests quota accounting; response = i64 capacity +
	// i64 used.
	OpUsage byte = 0x07
	// OpStats requests the node's observability snapshot; empty payload,
	// response = u8 version + JSON-encoded NodeStats (see stats.go).
	// Servers without a stats source answer StatusInvalid, so old and
	// new nodes interoperate.
	OpStats byte = 0x08
)

// flagReqID marks a request frame that carries a correlation ID: when
// the bit is set on an op code, 8 big-endian bytes of request ID sit
// between the code byte and the payload. The bit is outside both the
// op range (0x01–0x08) and the status range (0x80–0x87), so a server
// that predates it would see an unknown op and answer StatusInvalid
// instead of misparsing. Responses never carry the bit: a response is
// matched to its request by the synchronous framing, not by ID.
const flagReqID byte = 0x40

// Status codes returned by servers. Each maps onto the storage sentinel
// the client re-wraps, so errors.Is works across the wire.
const (
	// StatusOK carries the operation's result payload.
	StatusOK byte = 0x80
	// StatusNotExist maps to storage.ErrNotExist.
	StatusNotExist byte = 0x81
	// StatusExist maps to storage.ErrExist.
	StatusExist byte = 0x82
	// StatusNoSpace maps to storage.ErrNoSpace.
	StatusNoSpace byte = 0x83
	// StatusReadOnly maps to storage.ErrReadOnly.
	StatusReadOnly byte = 0x84
	// StatusInvalid reports a malformed or rejected request (bad name,
	// unparseable payload, unknown op).
	StatusInvalid byte = 0x85
	// StatusCanceled maps to context.Canceled.
	StatusCanceled byte = 0x86
	// StatusInternal reports any other backend failure.
	StatusInternal byte = 0x87
)

// errMalformed tags every decode failure so the fuzz target (and the
// server's request loop) can distinguish protocol garbage from I/O
// errors.
var errMalformed = errors.New("peernet: malformed frame")

// writeFrame emits one frame. The payload may be nil.
func writeFrame(w io.Writer, code byte, payload []byte) error {
	return writeFrameID(w, code, 0, payload)
}

// writeFrameID emits one frame, stamping the request ID after the code
// byte (and setting flagReqID on it) when req is non-zero.
func writeFrameID(w io.Writer, code byte, req uint64, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("peernet: frame payload %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [13]byte
	n := 5
	hdr[4] = code
	if req != 0 {
		hdr[4] = code | flagReqID
		binary.BigEndian.PutUint64(hdr[5:13], req)
		n = 13
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+n-4))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame decodes one frame from r. Payloads up to bufpool.MaxPooled
// come from the buffer pool — the caller hands them back with
// putPayload once parsed (every in-tree decode copies what it keeps:
// strings via parseString, ReadAt payloads via copy, WriteFile data via
// the backend's own copy). Larger payloads are freshly allocated,
// growing in bounded steps so a hostile length prefix cannot force a
// huge allocation before the stream runs dry.
func readFrame(r io.Reader) (code byte, req uint64, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, 0, nil, fmt.Errorf("%w: zero length", errMalformed)
	}
	if n > MaxFrame {
		return 0, 0, nil, fmt.Errorf("%w: length %d exceeds MaxFrame", errMalformed, n)
	}
	var cb [1]byte
	if _, err := io.ReadFull(r, cb[:]); err != nil {
		return 0, 0, nil, err
	}
	code = cb[0]
	n--
	if code&0x80 == 0 && code&flagReqID != 0 {
		// A request frame carrying a correlation ID: 8 ID bytes sit
		// between the code byte and the payload.
		if n < 8 {
			return 0, 0, nil, fmt.Errorf("%w: truncated request ID", errMalformed)
		}
		var ib [8]byte
		if _, err := io.ReadFull(r, ib[:]); err != nil {
			return 0, 0, nil, err
		}
		req = binary.BigEndian.Uint64(ib[:])
		code &^= flagReqID
		n -= 8
	}
	body, err := readBounded(r, int(n))
	if err != nil {
		return 0, 0, nil, err
	}
	return code, req, body, nil
}

// readBounded reads exactly n bytes. Sizes the pool covers borrow a
// pooled buffer (a hostile length prefix can pin at most one maximal
// pool class per connection, and the buffer is recycled either way);
// larger reads grow incrementally so the prefix alone cannot force a
// near-MaxFrame allocation before the stream runs dry.
func readBounded(r io.Reader, n int) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	if n <= bufpool.MaxPooled {
		buf := bufpool.Get(n)
		if _, err := io.ReadFull(r, buf); err != nil {
			bufpool.Put(buf)
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, 64<<10)
	for len(buf) < n {
		chunk := min(n-len(buf), 1<<20)
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// putPayload recycles a frame payload obtained from readFrame. Safe on
// nil and on payloads that outgrew the pool (bufpool discards those).
func putPayload(p []byte) { bufpool.Put(p) }

// appendString encodes s as u16 length + bytes.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// parseString decodes a string, returning the remainder of p.
func parseString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("%w: truncated string length", errMalformed)
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return "", nil, fmt.Errorf("%w: truncated string body", errMalformed)
	}
	return string(p[:n]), p[n:], nil
}

// parseI64 decodes a big-endian int64, returning the remainder.
func parseI64(p []byte) (int64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated int64", errMalformed)
	}
	return int64(binary.BigEndian.Uint64(p)), p[8:], nil
}

// parseU32 decodes a big-endian uint32, returning the remainder.
func parseU32(p []byte) (uint32, []byte, error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("%w: truncated uint32", errMalformed)
	}
	return binary.BigEndian.Uint32(p), p[4:], nil
}

// readReq is the decoded payload of an OpRead frame.
type readReq struct {
	name string
	off  int64
	n    uint32
}

// appendReadReq encodes a READ request payload.
func appendReadReq(b []byte, name string, off int64, n uint32) []byte {
	b = appendString(b, name)
	b = binary.BigEndian.AppendUint64(b, uint64(off))
	return binary.BigEndian.AppendUint32(b, n)
}

// parseReadReq decodes a READ request payload.
func parseReadReq(p []byte) (readReq, error) {
	var rq readReq
	var err error
	if rq.name, p, err = parseString(p); err != nil {
		return rq, err
	}
	if rq.off, p, err = parseI64(p); err != nil {
		return rq, err
	}
	if rq.n, p, err = parseU32(p); err != nil {
		return rq, err
	}
	if rq.n > maxData {
		return rq, fmt.Errorf("%w: read of %d bytes exceeds per-request cap", errMalformed, rq.n)
	}
	if len(p) != 0 {
		return rq, fmt.Errorf("%w: %d trailing bytes after READ request", errMalformed, len(p))
	}
	return rq, nil
}

// listEntry is one (name, size) pair in a LIST response.
type listEntry struct {
	name string
	size int64
}

// appendListResp encodes a LIST response payload.
func appendListResp(b []byte, entries []listEntry) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		b = appendString(b, e.name)
		b = binary.BigEndian.AppendUint64(b, uint64(e.size))
	}
	return b
}

// parseListResp decodes a LIST response payload.
func parseListResp(p []byte) ([]listEntry, error) {
	count, p, err := parseU32(p)
	if err != nil {
		return nil, err
	}
	// Every entry is at least 10 bytes (2-byte name length + 8-byte
	// size); reject counts the payload cannot possibly hold before
	// allocating for them.
	if int64(count)*10 > int64(len(p)) {
		return nil, fmt.Errorf("%w: list count %d exceeds payload", errMalformed, count)
	}
	entries := make([]listEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		var e listEntry
		if e.name, p, err = parseString(p); err != nil {
			return nil, err
		}
		if e.size, p, err = parseI64(p); err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after LIST response", errMalformed, len(p))
	}
	return entries, nil
}

// appendHeartbeat encodes a heartbeat payload (piggybacked on OpPing
// requests and their OK responses): sender name + u32 count +
// count×(node, u64 age-nanos). Ages, not timestamps, travel on the
// wire so peers never need synchronised clocks: the receiver rebases
// each age onto its own clock at decode time.
func appendHeartbeat(b []byte, sender string, entries []HeartbeatEntry) []byte {
	b = appendString(b, sender)
	b = binary.BigEndian.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		b = appendString(b, e.Node)
		age := e.Age
		if age < 0 {
			age = 0
		}
		b = binary.BigEndian.AppendUint64(b, uint64(age))
	}
	return b
}

// parseHeartbeat decodes a heartbeat payload.
func parseHeartbeat(p []byte) (sender string, entries []HeartbeatEntry, err error) {
	if sender, p, err = parseString(p); err != nil {
		return "", nil, err
	}
	count, p, err := parseU32(p)
	if err != nil {
		return "", nil, err
	}
	// Every entry is at least 10 bytes (2-byte name length + 8-byte
	// age); reject counts the payload cannot possibly hold.
	if int64(count)*10 > int64(len(p)) {
		return "", nil, fmt.Errorf("%w: heartbeat count %d exceeds payload", errMalformed, count)
	}
	entries = make([]HeartbeatEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		var e HeartbeatEntry
		if e.Node, p, err = parseString(p); err != nil {
			return "", nil, err
		}
		var age int64
		if age, p, err = parseI64(p); err != nil {
			return "", nil, err
		}
		if age < 0 {
			return "", nil, fmt.Errorf("%w: negative heartbeat age", errMalformed)
		}
		e.Age = time.Duration(age)
		entries = append(entries, e)
	}
	if len(p) != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes after heartbeat", errMalformed, len(p))
	}
	return sender, entries, nil
}

// appendUsageResp encodes a USAGE response payload.
func appendUsageResp(b []byte, capacity, used int64) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(capacity))
	return binary.BigEndian.AppendUint64(b, uint64(used))
}

// parseUsageResp decodes a USAGE response payload.
func parseUsageResp(p []byte) (capacity, used int64, err error) {
	if capacity, p, err = parseI64(p); err != nil {
		return 0, 0, err
	}
	if used, p, err = parseI64(p); err != nil {
		return 0, 0, err
	}
	if len(p) != 0 {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes after USAGE response", errMalformed, len(p))
	}
	return capacity, used, nil
}
