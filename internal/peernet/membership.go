package peernet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"monarch/internal/obs"
)

// PeerState is one node's liveness as seen from the local node.
type PeerState int32

const (
	// PeerAlive: heard from (directly or via gossip) within SuspectAfter.
	PeerAlive PeerState = iota
	// PeerSuspect: silent past SuspectAfter but not yet DeadAfter. The
	// tier deprioritises suspect replicas but still tries them last.
	PeerSuspect
	// PeerDead: silent past DeadAfter. The tier skips dead replicas
	// entirely; a successful heartbeat resurrects the peer to Alive.
	PeerDead
)

// String names the state.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return "unknown"
	}
}

// HeartbeatEntry is one peer's age in a gossiped view: how long ago
// the reporting node last had evidence of the peer being reachable.
type HeartbeatEntry struct {
	Node string
	Age  time.Duration
}

// MembershipConfig configures a node's liveness view.
type MembershipConfig struct {
	// Self is this node's ring ID; it is always Alive in its own view.
	Self string
	// Peers are the other ring members tracked by the view.
	Peers []string
	// SuspectAfter is the silence that demotes Alive to Suspect
	// (default 1s).
	SuspectAfter time.Duration
	// DeadAfter is the silence that demotes to Dead (default 3s; must
	// exceed SuspectAfter).
	DeadAfter time.Duration
	// OnChange, when set, observes every state transition. Called
	// without the view lock held, from whichever goroutine noticed the
	// transition (a heartbeat loop or a Tick caller); keep it fast.
	OnChange func(peer string, from, to PeerState)
	// Clock injects time for tests; nil uses time.Now.
	Clock func() time.Time
}

// Membership is a node's view of which peers are reachable. Evidence
// comes from two directions: a successful outbound request to a peer
// (direct — "I can reach it"), and gossiped ages relayed by other
// nodes (indirect — "someone reached it age ago"). Reachability, not
// process-aliveness, is the tracked property: a peer whose serving
// socket is gone is dead for the tier's purposes even if its own
// outbound traffic still flows.
//
// States are derived locally from silence against the configured
// timeouts; the wire carries only ages, so nodes never need agreeing
// clocks and a partitioned node's stale opinion of a third party
// cannot poison the view by more than its own silence already does.
type Membership struct {
	cfg MembershipConfig

	mu    sync.Mutex
	peers map[string]*peerHealth
}

type peerHealth struct {
	lastSeen time.Time
	state    PeerState
}

// NewMembership validates cfg and builds a view with every peer
// optimistically Alive (as-of now), so a cluster booting in any order
// does not start demoted.
func NewMembership(cfg MembershipConfig) (*Membership, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("peernet: membership needs a self ID")
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3 * cfg.SuspectAfter
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		return nil, fmt.Errorf("peernet: DeadAfter (%v) must exceed SuspectAfter (%v)",
			cfg.DeadAfter, cfg.SuspectAfter)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	m := &Membership{cfg: cfg, peers: make(map[string]*peerHealth, len(cfg.Peers))}
	now := cfg.Clock()
	for _, p := range cfg.Peers {
		if p == "" || p == cfg.Self {
			return nil, fmt.Errorf("peernet: bad membership peer %q", p)
		}
		if m.peers[p] != nil {
			return nil, fmt.Errorf("peernet: duplicate membership peer %q", p)
		}
		m.peers[p] = &peerHealth{lastSeen: now, state: PeerAlive}
	}
	return m, nil
}

// Self returns this node's ID.
func (m *Membership) Self() string { return m.cfg.Self }

// ObserveAlive records direct evidence that peer is reachable now.
func (m *Membership) ObserveAlive(peer string) {
	m.observe(peer, 0)
}

// observe rebases "reachable age ago" onto the local clock and
// refreshes the peer, resurrecting it if the new evidence is fresh
// enough. Unknown peers are ignored: membership is ring-scoped.
func (m *Membership) observe(peer string, age time.Duration) {
	m.mu.Lock()
	h, ok := m.peers[peer]
	if !ok {
		m.mu.Unlock()
		return
	}
	seen := m.cfg.Clock().Add(-age)
	if seen.After(h.lastSeen) {
		h.lastSeen = seen
	}
	from, to := h.state, m.stateFor(m.cfg.Clock().Sub(h.lastSeen))
	h.state = to
	m.mu.Unlock()
	m.notify(peer, from, to)
}

// Merge folds a gossiped view into the local one. Entries about self
// are ignored (a node is its own best witness).
func (m *Membership) Merge(entries []HeartbeatEntry) {
	for _, e := range entries {
		if e.Node == m.cfg.Self {
			continue
		}
		m.observe(e.Node, e.Age)
	}
}

// Tick re-derives every peer's state from the current clock, firing
// OnChange for transitions. Heartbeat loops call it once per interval;
// tests call it after advancing a fake clock.
func (m *Membership) Tick() {
	type change struct {
		peer     string
		from, to PeerState
	}
	var changes []change
	m.mu.Lock()
	now := m.cfg.Clock()
	for peer, h := range m.peers {
		to := m.stateFor(now.Sub(h.lastSeen))
		if to != h.state {
			changes = append(changes, change{peer, h.state, to})
			h.state = to
		}
	}
	m.mu.Unlock()
	for _, c := range changes {
		m.notify(c.peer, c.from, c.to)
	}
}

// stateFor maps silence onto a state. Callers hold m.mu.
func (m *Membership) stateFor(silence time.Duration) PeerState {
	switch {
	case silence >= m.cfg.DeadAfter:
		return PeerDead
	case silence >= m.cfg.SuspectAfter:
		return PeerSuspect
	default:
		return PeerAlive
	}
}

func (m *Membership) notify(peer string, from, to PeerState) {
	if from != to && m.cfg.OnChange != nil {
		m.cfg.OnChange(peer, from, to)
	}
}

// State returns the current view of one peer; self is always Alive and
// unknown peers report Dead (never route to a non-member).
func (m *Membership) State(peer string) PeerState {
	if peer == m.cfg.Self {
		return PeerAlive
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.peers[peer]
	if !ok {
		return PeerDead
	}
	return m.stateFor(m.cfg.Clock().Sub(h.lastSeen))
}

// Snapshot returns the whole view (self excluded), re-derived from the
// clock at call time.
func (m *Membership) Snapshot() map[string]PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Clock()
	out := make(map[string]PeerState, len(m.peers))
	for peer, h := range m.peers {
		out[peer] = m.stateFor(now.Sub(h.lastSeen))
	}
	return out
}

// LiveCount reports how many peers are not Dead.
func (m *Membership) LiveCount() int {
	n := 0
	for _, s := range m.Snapshot() {
		if s != PeerDead {
			n++
		}
	}
	return n
}

// View exports the local view as gossipable ages: every tracked peer
// at its silence. The receiving side merges what is fresher than its
// own evidence and drops the rest. Self is deliberately absent: a node
// must never vouch for its own reachability (its outbound traffic
// still flowing proves nothing about its serving socket — the exact
// failure a kill leaves behind). Peers learn a node is alive only by
// reaching it, directly or through a third party's direct evidence.
func (m *Membership) View() []HeartbeatEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Clock()
	entries := make([]HeartbeatEntry, 0, len(m.peers))
	for peer, h := range m.peers {
		age := now.Sub(h.lastSeen)
		if age < 0 {
			age = 0
		}
		entries = append(entries, HeartbeatEntry{Node: peer, Age: age})
	}
	return entries
}

// Instrument implements obs.Instrumentable: a per-peer state gauge
// (0 alive, 1 suspect, 2 dead) driven straight off the view.
func (m *Membership) Instrument(r *obs.Registry, labels ...obs.Label) {
	m.mu.Lock()
	peers := make([]string, 0, len(m.peers))
	for p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	for _, peer := range peers {
		peer := peer
		r.GaugeFunc("monarch_peer_membership_state",
			"Liveness of a ring member as seen locally: 0 alive, 1 suspect, 2 dead.",
			func() float64 { return float64(m.State(peer)) },
			append(append([]obs.Label(nil), labels...), obs.L("peer", peer))...)
	}
}

// Heartbeater drives the gossip exchange: every Interval it pings each
// peer with the local view piggybacked, merges the responses, and
// ticks the view so silence decays into Suspect/Dead. One goroutine
// per peer per round, so a single unreachable peer (blocked in a dial
// timeout) cannot stall detection of the others.
type Heartbeater struct {
	mem      *Membership
	clients  map[string]*Client
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// NewHeartbeater builds (but does not start) a heartbeat loop over the
// given per-peer clients (the same clients the Tier reads through —
// heartbeats ride the existing connections and wire protocol).
func NewHeartbeater(mem *Membership, clients map[string]*Client, interval time.Duration) (*Heartbeater, error) {
	if mem == nil {
		return nil, fmt.Errorf("peernet: heartbeater needs a membership view")
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	for peer := range mem.peers {
		if clients[peer] == nil {
			return nil, fmt.Errorf("peernet: heartbeater missing a client for peer %q", peer)
		}
	}
	return &Heartbeater{mem: mem, clients: clients, interval: interval}, nil
}

// Start launches the loop; idempotent until Stop.
func (h *Heartbeater) Start() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stop != nil || h.stopped {
		return
	}
	h.stop = make(chan struct{})
	h.wg.Add(1)
	go h.loop(h.stop)
}

// Stop halts the loop and waits for in-flight rounds to finish.
func (h *Heartbeater) Stop() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.stopped = true
	if h.stop != nil {
		close(h.stop)
	}
	h.mu.Unlock()
	h.wg.Wait()
}

func (h *Heartbeater) loop(stop chan struct{}) {
	defer h.wg.Done()
	ticker := time.NewTicker(h.interval)
	defer ticker.Stop()
	h.round(stop)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			h.round(stop)
		}
	}
}

// round pings every tracked peer once, concurrently, then ticks.
func (h *Heartbeater) round(stop chan struct{}) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	view := h.mem.View()
	var wg sync.WaitGroup
	for peer, c := range h.clients {
		if _, tracked := h.mem.peers[peer]; !tracked {
			continue
		}
		wg.Add(1)
		go func(peer string, c *Client) {
			defer wg.Done()
			resp, err := c.Heartbeat(ctx, h.mem.Self(), view)
			if err != nil {
				return // silence accrues; Tick demotes
			}
			h.mem.ObserveAlive(peer)
			h.mem.Merge(resp)
		}(peer, c)
	}
	wg.Wait()
	h.mem.Tick()
}
