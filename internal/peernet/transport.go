package peernet

import (
	"context"
	"net"
	"time"
)

// TCPDialer returns a Dialer for a peer server's TCP address. The
// dial timeout is separate from the client's per-request Timeout (a
// caller deadline still wins if tighter).
func TCPDialer(addr string, timeout time.Duration) Dialer {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return func(ctx context.Context) (net.Conn, error) {
		dctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		var d net.Dialer
		return d.DialContext(dctx, "tcp", addr)
	}
}

// PipeDialer returns a Dialer that connects to srv in-process through
// net.Pipe — no sockets, fully deterministic, and the whole frame
// codec still runs. Each dial spawns one server-side goroutine, which
// exits when either end closes (or srv is closed).
func PipeDialer(srv *Server) Dialer {
	return func(ctx context.Context) (net.Conn, error) {
		client, server := net.Pipe()
		go srv.ServeConn(server)
		return client, nil
	}
}
