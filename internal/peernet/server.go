package peernet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"monarch/internal/bufpool"
	"monarch/internal/obs"
	"monarch/internal/storage"
)

// ServerConfig configures one peer server.
type ServerConfig struct {
	// Backend is the store served to peers — the node's tier-0 cache.
	Backend storage.Backend
	// AllowWrite permits OpWrite/OpRemove. Off by default: the peer
	// network is a read-only cache fabric, and a read-only server is
	// what keeps a misbehaving peer from corrupting a sibling's tier.
	AllowWrite bool
	// Membership, when set, lets the server take part in the gossip
	// exchange: PING frames carrying a heartbeat payload merge the
	// sender's view and are answered with this node's own. Without it,
	// heartbeat PINGs are answered empty (plain liveness), so old and
	// new nodes interoperate.
	Membership *Membership
	// Stats, when set, answers STATS requests with this node's
	// observability snapshot. Nil servers answer StatusInvalid, exactly
	// like servers that predate the op.
	Stats func() (NodeStats, error)
	// Trace, when set, receives one SpanPeerServe per READ frame
	// served, stamped with the request's correlation ID — the remote
	// half of a cross-node peer-read span pair. Hooks must be fast.
	Trace obs.TraceHook
	// Logf receives per-connection diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Server exposes a storage.Backend to peers over the frame protocol.
// One goroutine per connection; requests on a connection are processed
// in order (pipelining is the client pool's job, not the stream's).
type Server struct {
	cfg ServerConfig

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer validates cfg and builds a Server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("peernet: server needs a backend")
	}
	return &Server{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until the listener fails or the
// server is closed; it blocks. Serve returns nil after Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("peernet: server is closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// ServeConn serves one pre-established connection (the net.Pipe
// transport) until it closes; it blocks. The connection is closed on
// return.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	s.serveConn(conn)
}

// serveConn runs the request loop.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		op, req, payload, err := readFrame(br)
		if err != nil {
			// A malformed frame may leave unread garbage mid-stream;
			// drop the connection rather than guess at resync.
			if errors.Is(err, errMalformed) {
				s.logf("peernet: %s: dropping connection: %v", conn.RemoteAddr(), err)
				writeFrame(bw, StatusInvalid, appendString(nil, err.Error()))
				bw.Flush()
			}
			return
		}
		status, resp, release := s.handle(op, req, payload)
		err = writeFrame(bw, status, resp)
		if err == nil {
			err = bw.Flush()
		}
		// The response may borrow backend bytes (a storage.View) or a
		// pooled buffer; it must stay alive until flushed to the socket.
		if release != nil {
			release()
		}
		putPayload(payload)
		if err != nil {
			return
		}
	}
}

// handle dispatches one request and encodes the response. A non-nil
// release returns resources resp borrows (a view's lock, a pooled
// buffer); the caller invokes it after resp has been written out.
func (s *Server) handle(op byte, req uint64, payload []byte) (status byte, resp []byte, release func()) {
	ctx := context.Background()
	b := s.cfg.Backend
	switch op {
	case OpPing:
		if len(payload) == 0 {
			return StatusOK, nil, nil
		}
		_, entries, err := parseHeartbeat(payload)
		if err != nil {
			return failWith(err)
		}
		m := s.cfg.Membership
		if m == nil {
			return StatusOK, nil, nil
		}
		// Merge the gossiped ages only. The sender being able to reach
		// us says nothing about whether we can reach it — liveness here
		// means "its serving socket answers", which only our own
		// outbound heartbeats can prove.
		m.Merge(entries)
		return StatusOK, appendHeartbeat(nil, m.Self(), m.View()), nil

	case OpStat:
		name, _, err := parseString(payload)
		if err != nil {
			return failWith(err)
		}
		fi, err := b.Stat(ctx, name)
		if err != nil {
			return failWith(err)
		}
		return StatusOK, binary.BigEndian.AppendUint64(nil, uint64(fi.Size)), nil

	case OpList:
		infos, err := b.List(ctx)
		if err != nil {
			return failWith(err)
		}
		entries := make([]listEntry, len(infos))
		for i, fi := range infos {
			entries[i] = listEntry{name: fi.Name, size: fi.Size}
		}
		return StatusOK, appendListResp(nil, entries), nil

	case OpRead:
		rq, err := parseReadReq(payload)
		if err != nil {
			return failWith(err)
		}
		start := time.Now()
		// Serve straight out of the backend's bytes when it lends views
		// (MemFS tier-0 caches do): the response is written to the
		// socket from the cache's own buffer, no intermediate copy.
		if vr, ok := b.(storage.ViewReader); ok {
			v, verr := vr.ReadView(ctx, rq.name, rq.off, int64(rq.n))
			if verr == nil {
				s.serveSpan(rq, req, int64(len(v.Data)), nil, start)
				return StatusOK, v.Data, v.Release
			}
			if !errors.Is(verr, errors.ErrUnsupported) {
				s.serveSpan(rq, req, 0, verr, start)
				return failWith(verr)
			}
		}
		p := bufpool.Get(int(rq.n))
		n, err := b.ReadAt(ctx, rq.name, p, rq.off)
		if err != nil {
			bufpool.Put(p)
			s.serveSpan(rq, req, 0, err, start)
			return failWith(err)
		}
		s.serveSpan(rq, req, int64(n), nil, start)
		return StatusOK, p[:n], func() { bufpool.Put(p) }

	case OpWrite:
		if !s.cfg.AllowWrite {
			return StatusReadOnly, appendString(nil, "peer server is read-only"), nil
		}
		name, data, err := parseString(payload)
		if err != nil {
			return failWith(err)
		}
		if err := b.WriteFile(ctx, name, data); err != nil {
			return failWith(err)
		}
		return StatusOK, nil, nil

	case OpRemove:
		if !s.cfg.AllowWrite {
			return StatusReadOnly, appendString(nil, "peer server is read-only"), nil
		}
		name, _, err := parseString(payload)
		if err != nil {
			return failWith(err)
		}
		if err := b.Remove(ctx, name); err != nil {
			return failWith(err)
		}
		return StatusOK, nil, nil

	case OpUsage:
		return StatusOK, appendUsageResp(nil, b.Capacity(), b.Used()), nil

	case OpStats:
		if s.cfg.Stats == nil {
			return StatusInvalid, appendString(nil, "stats unsupported"), nil
		}
		ns, err := s.cfg.Stats()
		if err != nil {
			return failWith(err)
		}
		resp, err := appendStatsResp(nil, ns)
		if err != nil {
			return failWith(err)
		}
		return StatusOK, resp, nil

	default:
		return StatusInvalid, appendString(nil, fmt.Sprintf("unknown op 0x%02x", op)), nil
	}
}

// serveSpan emits the server half of a peer read to the trace hook.
func (s *Server) serveSpan(rq readReq, req uint64, n int64, err error, start time.Time) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(obs.Span{
		Kind:     obs.SpanPeerServe,
		File:     rq.name,
		Tier:     -1,
		Off:      rq.off,
		Bytes:    n,
		Req:      req,
		Err:      err,
		Duration: time.Since(start),
	})
}

// failWith adapts statusFromError to handle's three-value signature.
func failWith(err error) (byte, []byte, func()) {
	status, msg := statusFromError(err)
	return status, msg, nil
}

// statusFromError maps a backend (or decode) error onto the wire
// status that will reconstruct the right sentinel client-side.
func statusFromError(err error) (byte, []byte) {
	msg := appendString(nil, err.Error())
	switch {
	case errors.Is(err, storage.ErrNotExist):
		return StatusNotExist, msg
	case errors.Is(err, storage.ErrExist):
		return StatusExist, msg
	case errors.Is(err, storage.ErrNoSpace):
		return StatusNoSpace, msg
	case errors.Is(err, storage.ErrReadOnly):
		return StatusReadOnly, msg
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return StatusCanceled, msg
	case errors.Is(err, errMalformed):
		return StatusInvalid, msg
	default:
		return StatusInternal, msg
	}
}

// Close stops all listeners, closes every live connection and waits
// for connection goroutines to drain. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
