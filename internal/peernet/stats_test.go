package peernet_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"monarch/internal/obs"
	"monarch/internal/peernet"
	"monarch/internal/storage"
)

// statsClient builds a server with a Stats source and a Trace hook and
// returns a connected client plus the span sink.
func statsClient(t *testing.T, stats func() (peernet.NodeStats, error)) (*peernet.Client, *storage.MemFS, *spanSink) {
	t.Helper()
	mem := storage.NewMemFS("remote", 0)
	sink := &spanSink{}
	srv, err := peernet.NewServer(peernet.ServerConfig{
		Backend: mem,
		Stats:   stats,
		Trace:   sink.hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name:     "peer:stats",
		Dial:     peernet.PipeDialer(srv),
		PoolSize: 2,
		Timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	return c, mem, sink
}

// spanSink collects serve spans emitted by a server's Trace hook.
type spanSink struct {
	mu    sync.Mutex
	spans []obs.Span
}

func (s *spanSink) hook(sp obs.Span) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

func (s *spanSink) all() []obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.Span(nil), s.spans...)
}

// TestClientStatsRoundtrip sends a full NodeStats — registry snapshot,
// gossip view, job ledger — across the wire and checks nothing is lost.
func TestClientStatsRoundtrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("stats_reads_total", "", obs.L("tier", "0")).Add(7)
	reg.Gauge("stats_depth", "").Set(2.5)

	want := peernet.NodeStats{
		Node:    "node3",
		Metrics: reg.Snapshot(),
		Gossip: []peernet.GossipEntry{
			{Node: "node1", State: "alive"},
			{Node: "node2", State: "suspect"},
		},
		Jobs: map[string]peernet.JobCounters{
			"resnet": {ReadsServed: 9, BytesServed: 4096, Hits: 6, Evictions: 1},
		},
	}
	c, _, _ := statsClient(t, func() (peernet.NodeStats, error) { return want, nil })

	got, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "node3" {
		t.Fatalf("node = %q, want node3", got.Node)
	}
	if v, ok := got.Metrics.Int("stats_reads_total", obs.L("tier", "0")); !ok || v != 7 {
		t.Fatalf("counter travelled as %d (found=%v), want 7", v, ok)
	}
	if len(got.Gossip) != 2 || got.Gossip[1].State != "suspect" {
		t.Fatalf("gossip view = %+v", got.Gossip)
	}
	if jc := got.Jobs["resnet"]; jc.BytesServed != 4096 || jc.Hits != 6 {
		t.Fatalf("job ledger = %+v", got.Jobs)
	}
}

// TestClientStatsSourceError propagates a failing stats source as a
// remote error, not a transport failure (which would trigger retries).
func TestClientStatsSourceError(t *testing.T) {
	c, _, _ := statsClient(t, func() (peernet.NodeStats, error) {
		return peernet.NodeStats{}, context.DeadlineExceeded
	})
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("Stats against a failing source returned nil error")
	}
}

// TestRequestIDTravelsToServeSpan is the wire half of cross-node trace
// correlation: a request ID placed in the client's context must arrive
// in the server's serve span, and reads without one must carry zero.
func TestRequestIDTravelsToServeSpan(t *testing.T) {
	ctx := context.Background()
	c, mem, sink := statsClient(t, nil)
	if err := mem.WriteFile(ctx, "shard-0", make([]byte, 128)); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 64)
	if _, err := c.ReadAt(obs.WithRequestID(ctx, 0xabcdef12345), "shard-0", buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(ctx, "shard-0", buf, 64); err != nil {
		t.Fatal(err)
	}

	spans := sink.all()
	if len(spans) != 2 {
		t.Fatalf("server emitted %d serve spans, want 2", len(spans))
	}
	var stamped, bare int
	for _, sp := range spans {
		if sp.Kind != obs.SpanPeerServe || sp.File != "shard-0" {
			t.Fatalf("unexpected span %+v", sp)
		}
		switch sp.Req {
		case 0xabcdef12345:
			stamped++
		case 0:
			bare++
		default:
			t.Fatalf("span carries foreign request ID %016x", sp.Req)
		}
	}
	if stamped != 1 || bare != 1 {
		t.Fatalf("stamped=%d bare=%d, want 1 and 1", stamped, bare)
	}
}

// TestStatsAgainstPlainServer checks the compatibility story: a server
// built without a Stats source answers StatusInvalid, which the client
// surfaces as an error rather than garbage.
func TestStatsAgainstPlainServer(t *testing.T) {
	c, _ := pipeClient(t, 0, false)
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("Stats against a stats-less server returned nil error")
	}
}
