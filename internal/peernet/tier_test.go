package peernet_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"monarch/internal/obs"
	"monarch/internal/peernet"
	"monarch/internal/storage"
)

// tierFixture builds a ring of n nodes, one MemFS + server per node,
// and returns node 0's Tier plus every node's store. Servers for nodes
// listed in dead are closed immediately.
func tierFixture(t *testing.T, n int, dead ...int) (*peernet.Tier, *peernet.Ring, []*storage.MemFS) {
	t.Helper()
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d", i)
	}
	ring, err := peernet.NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*storage.MemFS, n)
	clients := make(map[string]*peernet.Client)
	for i := 1; i < n; i++ {
		stores[i] = storage.NewMemFS(nodes[i], 0)
		srv, err := peernet.NewServer(peernet.ServerConfig{Backend: stores[i]})
		if err != nil {
			t.Fatal(err)
		}
		closed := false
		for _, d := range dead {
			if d == i {
				srv.Close()
				closed = true
			}
		}
		if !closed {
			t.Cleanup(func() { srv.Close() })
		}
		c, err := peernet.NewClient(peernet.ClientConfig{
			Name:    "peer:" + nodes[i],
			Dial:    peernet.PipeDialer(srv),
			Retries: 1,
			Backoff: time.Millisecond,
			Timeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[nodes[i]] = c
	}
	stores[0] = storage.NewMemFS(nodes[0], 0)
	tier, err := peernet.NewTier("peers", nodes[0], ring, clients)
	if err != nil {
		t.Fatal(err)
	}
	return tier, ring, stores
}

func TestTierRoutesToOwner(t *testing.T) {
	ctx := context.Background()
	tier, ring, stores := tierFixture(t, 4)
	nodes := ring.Nodes()
	idx := map[string]int{}
	for i, n := range nodes {
		idx[n] = i
	}

	// Seed every node's store with a file it owns, plus note one file
	// owned by node0 itself.
	var selfOwned string
	perOwner := map[string]string{}
	for i := 0; len(perOwner) < 3 || selfOwned == ""; i++ {
		name := fmt.Sprintf("data/shard-%04d.rec", i)
		owner := ring.Owner(name)
		if owner == "node0" {
			if selfOwned == "" {
				selfOwned = name
			}
			continue
		}
		if _, ok := perOwner[owner]; ok {
			continue
		}
		perOwner[owner] = name
		if err := stores[idx[owner]].WriteFile(ctx, name, []byte("from "+owner)); err != nil {
			t.Fatal(err)
		}
	}

	for owner, name := range perOwner {
		data, err := tier.ReadFile(ctx, name)
		if err != nil || string(data) != "from "+owner {
			t.Fatalf("read %s from %s: %q err=%v", name, owner, data, err)
		}
		fi, err := tier.Stat(ctx, name)
		if err != nil || fi.Size != int64(len("from "+owner)) {
			t.Fatalf("stat %s: %+v err=%v", name, fi, err)
		}
	}

	// Files this node owns are not the peer network's to serve.
	if _, err := tier.ReadFile(ctx, selfOwned); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("self-owned read: %v, want ErrNotExist", err)
	}
}

func TestTierMissIsNotExist(t *testing.T) {
	ctx := context.Background()
	tier, ring, _ := tierFixture(t, 2)
	// Find a name node1 owns but never cached.
	for i := 0; ; i++ {
		name := fmt.Sprintf("uncached-%d", i)
		if ring.Owner(name) == "node1" {
			if _, err := tier.ReadFile(ctx, name); !errors.Is(err, storage.ErrNotExist) {
				t.Fatalf("peer miss: %v, want ErrNotExist", err)
			}
			return
		}
	}
}

func TestTierIsReadOnlyAndFull(t *testing.T) {
	ctx := context.Background()
	tier, _, _ := tierFixture(t, 2)
	if err := tier.WriteFile(ctx, "f", []byte("x")); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("write: %v", err)
	}
	if err := tier.Remove(ctx, "f"); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("remove: %v", err)
	}
	// Zero free space is what keeps the placement handler from ever
	// choosing the peer tier as a destination.
	if free := storage.Free(tier); free != 0 {
		t.Fatalf("free = %d, want 0", free)
	}
}

func TestTierPingRequiresAllPeers(t *testing.T) {
	ctx := context.Background()
	t.Run("AllAlive", func(t *testing.T) {
		tier, _, _ := tierFixture(t, 3)
		if err := tier.Ping(ctx); err != nil {
			t.Fatalf("ping with live peers: %v", err)
		}
	})
	t.Run("OneDead", func(t *testing.T) {
		tier, _, _ := tierFixture(t, 3, 2)
		if err := tier.Ping(ctx); err == nil {
			t.Fatal("ping with a dead peer succeeded")
		}
	})
}

func TestTierList(t *testing.T) {
	ctx := context.Background()
	tier, _, stores := tierFixture(t, 3)
	if err := stores[1].WriteFile(ctx, "bb", make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
	if err := stores[2].WriteFile(ctx, "aa", make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	infos, err := tier.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "aa" || infos[1].Name != "bb" {
		t.Fatalf("merged list = %+v", infos)
	}
}

func TestTierValidatesMembership(t *testing.T) {
	ring, _ := peernet.NewRing([]string{"a", "b"}, 0)
	if _, err := peernet.NewTier("p", "a", ring, nil); err == nil {
		t.Fatal("tier without client for ring member accepted")
	}
	if _, err := peernet.NewTier("p", "zz", ring, nil); err == nil {
		t.Fatal("tier for non-member node accepted")
	}
}

func TestTierRejectsTooManyReplicas(t *testing.T) {
	ring, _ := peernet.NewRing([]string{"a"}, 0)
	if _, err := peernet.NewTierWithConfig(peernet.TierConfig{
		Self: "a", Ring: ring, Replicas: 2,
	}); err == nil {
		t.Fatal("replica width beyond the member count accepted")
	}
}

// replicaCluster builds n nodes with live servers (index 0 is self: no
// server) and hands back everything a replica test needs to kill and
// seed specific nodes.
type replicaCluster struct {
	ring    *peernet.Ring
	stores  []*storage.MemFS
	servers []*peernet.Server
	clients map[string]*peernet.Client
	idx     map[string]int
}

func newReplicaCluster(t *testing.T, n int, wrap func(i int, b storage.Backend) storage.Backend) *replicaCluster {
	t.Helper()
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d", i)
	}
	ring, err := peernet.NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	rc := &replicaCluster{
		ring:    ring,
		stores:  make([]*storage.MemFS, n),
		servers: make([]*peernet.Server, n),
		clients: map[string]*peernet.Client{},
		idx:     map[string]int{},
	}
	for i, node := range nodes {
		rc.idx[node] = i
		rc.stores[i] = storage.NewMemFS(node, 0)
		if i == 0 {
			continue
		}
		backend := storage.Backend(rc.stores[i])
		if wrap != nil {
			backend = wrap(i, backend)
		}
		srv, err := peernet.NewServer(peernet.ServerConfig{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		rc.servers[i] = srv
		c, err := peernet.NewClient(peernet.ClientConfig{
			Name:    "peer:" + node,
			Dial:    peernet.PipeDialer(srv),
			Retries: 1,
			Backoff: time.Millisecond,
			Timeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		rc.clients[node] = c
	}
	return rc
}

// foreignName finds a name whose whole replica set avoids node 0, so
// every replica is reachable only over the wire.
func (rc *replicaCluster) foreignName(t *testing.T, replicas int) (string, []string) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("data/shard-%04d.rec", i)
		owners := rc.ring.OwnersOf(name, replicas)
		foreign := true
		for _, o := range owners {
			if o == "node0" {
				foreign = false
			}
		}
		if foreign {
			return name, owners
		}
	}
	t.Fatal("no fully foreign replica set found")
	return "", nil
}

// TestTierReplicaFailover is the robustness core: with R=2 and both
// replicas holding the file, killing the primary's server must not
// surface an error — the read comes back from the second replica.
func TestTierReplicaFailover(t *testing.T) {
	ctx := context.Background()
	rc := newReplicaCluster(t, 4, nil)
	tier, err := peernet.NewTierWithConfig(peernet.TierConfig{
		Self: "node0", Ring: rc.ring, Clients: rc.clients, Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	name, owners := rc.foreignName(t, 2)
	for _, o := range owners {
		if err := rc.stores[rc.idx[o]].WriteFile(ctx, name, []byte("replicated")); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy primary serves as before.
	if data, err := tier.ReadFile(ctx, name); err != nil || string(data) != "replicated" {
		t.Fatalf("pre-kill read: %q err=%v", data, err)
	}

	rc.servers[rc.idx[owners[0]]].Close()
	data, err := tier.ReadFile(ctx, name)
	if err != nil || string(data) != "replicated" {
		t.Fatalf("post-kill read: %q err=%v — dead primary must fail over to the replica", data, err)
	}
	if _, err := tier.Stat(ctx, name); err != nil {
		t.Fatalf("post-kill stat: %v", err)
	}
}

// TestTierReplicaMissBeatsTransportError pins the error reduction: if
// any reachable replica definitively lacks the file, the tier reports a
// clean miss (ErrNotExist → peer-miss re-read from the source), not the
// dead primary's transport error (→ fallback + breaker pressure).
func TestTierReplicaMissBeatsTransportError(t *testing.T) {
	ctx := context.Background()
	rc := newReplicaCluster(t, 4, nil)
	tier, err := peernet.NewTierWithConfig(peernet.TierConfig{
		Self: "node0", Ring: rc.ring, Clients: rc.clients, Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	name, owners := rc.foreignName(t, 2)
	// Neither replica holds the file, and the primary is dead.
	rc.servers[rc.idx[owners[0]]].Close()
	if _, err := tier.ReadFile(ctx, name); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("miss through a dead primary: %v, want ErrNotExist", err)
	}
}

// TestTierAllReplicasDeadIsAnError: when no replica answers and none
// reported a miss, the transport failure must propagate (this is what
// feeds the breaker when a whole replica set is gone).
func TestTierAllReplicasDeadIsAnError(t *testing.T) {
	ctx := context.Background()
	rc := newReplicaCluster(t, 4, nil)
	tier, err := peernet.NewTierWithConfig(peernet.TierConfig{
		Self: "node0", Ring: rc.ring, Clients: rc.clients, Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	name, owners := rc.foreignName(t, 2)
	for _, o := range owners {
		rc.servers[rc.idx[o]].Close()
	}
	_, err = tier.ReadFile(ctx, name)
	if err == nil || errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("read with whole replica set dead: %v, want a transport error", err)
	}
}

// slowServe delays every served ReadAt — a congested peer, not a dead
// one.
type slowServe struct {
	storage.Backend
	delay time.Duration
}

func (s slowServe) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	time.Sleep(s.delay)
	return s.Backend.ReadAt(ctx, name, p, off)
}

// TestTierHedgedRead races a 200ms-slow primary against a fast second
// replica: the backup must win, the caller's buffer must carry the
// backup's bytes, and the hedge counters and the read annotation must
// record it.
func TestTierHedgedRead(t *testing.T) {
	ctx := context.Background()
	var slowIdx int
	rc := newReplicaCluster(t, 3, nil)
	name, owners := rc.foreignName(t, 2)
	slowIdx = rc.idx[owners[0]]

	// Rebuild with the primary's serving path delayed.
	rc = newReplicaCluster(t, 3, func(i int, b storage.Backend) storage.Backend {
		if i == slowIdx {
			return slowServe{Backend: b, delay: 200 * time.Millisecond}
		}
		return b
	})
	for _, o := range owners {
		if err := rc.stores[rc.idx[o]].WriteFile(ctx, name, []byte("hedged bytes")); err != nil {
			t.Fatal(err)
		}
	}
	tier, err := peernet.NewTierWithConfig(peernet.TierConfig{
		Self: "node0", Ring: rc.ring, Clients: rc.clients, Replicas: 2,
		Hedge: peernet.HedgeConfig{Enabled: true, MinSamples: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One fast round trip seeds the primary's latency histogram past
	// MinSamples, so the adaptive threshold (floored at 1ms) arms.
	if err := rc.clients[owners[0]].Ping(ctx); err != nil {
		t.Fatal(err)
	}

	rctx, ann := obs.WithReadAnnotation(ctx)
	buf := make([]byte, len("hedged bytes"))
	start := time.Now()
	n, err := tier.ReadAt(rctx, name, buf, 0)
	if err != nil || string(buf[:n]) != "hedged bytes" {
		t.Fatalf("hedged read: %q err=%v", buf[:n], err)
	}
	if d := time.Since(start); d >= 200*time.Millisecond {
		t.Fatalf("hedged read took %v — the backup never raced", d)
	}
	if tier.Hedges() != 1 || tier.HedgeWins() != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", tier.Hedges(), tier.HedgeWins())
	}
	if ann.Flags()&obs.FlagHedged == 0 {
		t.Fatal("read annotation missing FlagHedged")
	}
}

// TestTierMembershipSkipsDeadReplica: with a view that already calls
// the primary Dead, the tier must not even dial it — the replica is
// first in try-order.
func TestTierMembershipSkipsDeadReplica(t *testing.T) {
	ctx := context.Background()
	rc := newReplicaCluster(t, 4, nil)
	name, owners := rc.foreignName(t, 2)

	clk := time.Now()
	elapsed := time.Duration(0)
	mem, err := peernet.NewMembership(peernet.MembershipConfig{
		Self:         "node0",
		Peers:        []string{"node1", "node2", "node3"},
		SuspectAfter: 50 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
		Clock:        func() time.Time { return clk.Add(elapsed) },
	})
	if err != nil {
		t.Fatal(err)
	}
	tier, err := peernet.NewTierWithConfig(peernet.TierConfig{
		Self: "node0", Ring: rc.ring, Clients: rc.clients, Replicas: 2,
		Membership: mem,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Only the second replica holds the file. Everyone goes silent,
	// then every peer but the primary is observed alive: the primary is
	// Dead in the view, its server is gone, and yet the read must be
	// served without burning a dial on it.
	if err := rc.stores[rc.idx[owners[1]]].WriteFile(ctx, name, []byte("from replica")); err != nil {
		t.Fatal(err)
	}
	rc.servers[rc.idx[owners[0]]].Close()
	elapsed = 200 * time.Millisecond
	for _, p := range []string{"node1", "node2", "node3"} {
		if p != owners[0] {
			mem.ObserveAlive(p)
		}
	}
	dials := rc.clients[owners[0]].TransportErrors()
	data, err := tier.ReadFile(ctx, name)
	if err != nil || string(data) != "from replica" {
		t.Fatalf("read around dead primary: %q err=%v", data, err)
	}
	if got := rc.clients[owners[0]].TransportErrors(); got != dials {
		t.Fatalf("tier dialed the Dead primary (%d new transport errors)", got-dials)
	}
}
