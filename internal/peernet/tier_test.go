package peernet_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"monarch/internal/peernet"
	"monarch/internal/storage"
)

// tierFixture builds a ring of n nodes, one MemFS + server per node,
// and returns node 0's Tier plus every node's store. Servers for nodes
// listed in dead are closed immediately.
func tierFixture(t *testing.T, n int, dead ...int) (*peernet.Tier, *peernet.Ring, []*storage.MemFS) {
	t.Helper()
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d", i)
	}
	ring, err := peernet.NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*storage.MemFS, n)
	clients := make(map[string]*peernet.Client)
	for i := 1; i < n; i++ {
		stores[i] = storage.NewMemFS(nodes[i], 0)
		srv, err := peernet.NewServer(peernet.ServerConfig{Backend: stores[i]})
		if err != nil {
			t.Fatal(err)
		}
		closed := false
		for _, d := range dead {
			if d == i {
				srv.Close()
				closed = true
			}
		}
		if !closed {
			t.Cleanup(func() { srv.Close() })
		}
		c, err := peernet.NewClient(peernet.ClientConfig{
			Name:    "peer:" + nodes[i],
			Dial:    peernet.PipeDialer(srv),
			Retries: 1,
			Backoff: time.Millisecond,
			Timeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[nodes[i]] = c
	}
	stores[0] = storage.NewMemFS(nodes[0], 0)
	tier, err := peernet.NewTier("peers", nodes[0], ring, clients)
	if err != nil {
		t.Fatal(err)
	}
	return tier, ring, stores
}

func TestTierRoutesToOwner(t *testing.T) {
	ctx := context.Background()
	tier, ring, stores := tierFixture(t, 4)
	nodes := ring.Nodes()
	idx := map[string]int{}
	for i, n := range nodes {
		idx[n] = i
	}

	// Seed every node's store with a file it owns, plus note one file
	// owned by node0 itself.
	var selfOwned string
	perOwner := map[string]string{}
	for i := 0; len(perOwner) < 3 || selfOwned == ""; i++ {
		name := fmt.Sprintf("data/shard-%04d.rec", i)
		owner := ring.Owner(name)
		if owner == "node0" {
			if selfOwned == "" {
				selfOwned = name
			}
			continue
		}
		if _, ok := perOwner[owner]; ok {
			continue
		}
		perOwner[owner] = name
		if err := stores[idx[owner]].WriteFile(ctx, name, []byte("from "+owner)); err != nil {
			t.Fatal(err)
		}
	}

	for owner, name := range perOwner {
		data, err := tier.ReadFile(ctx, name)
		if err != nil || string(data) != "from "+owner {
			t.Fatalf("read %s from %s: %q err=%v", name, owner, data, err)
		}
		fi, err := tier.Stat(ctx, name)
		if err != nil || fi.Size != int64(len("from "+owner)) {
			t.Fatalf("stat %s: %+v err=%v", name, fi, err)
		}
	}

	// Files this node owns are not the peer network's to serve.
	if _, err := tier.ReadFile(ctx, selfOwned); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("self-owned read: %v, want ErrNotExist", err)
	}
}

func TestTierMissIsNotExist(t *testing.T) {
	ctx := context.Background()
	tier, ring, _ := tierFixture(t, 2)
	// Find a name node1 owns but never cached.
	for i := 0; ; i++ {
		name := fmt.Sprintf("uncached-%d", i)
		if ring.Owner(name) == "node1" {
			if _, err := tier.ReadFile(ctx, name); !errors.Is(err, storage.ErrNotExist) {
				t.Fatalf("peer miss: %v, want ErrNotExist", err)
			}
			return
		}
	}
}

func TestTierIsReadOnlyAndFull(t *testing.T) {
	ctx := context.Background()
	tier, _, _ := tierFixture(t, 2)
	if err := tier.WriteFile(ctx, "f", []byte("x")); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("write: %v", err)
	}
	if err := tier.Remove(ctx, "f"); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("remove: %v", err)
	}
	// Zero free space is what keeps the placement handler from ever
	// choosing the peer tier as a destination.
	if free := storage.Free(tier); free != 0 {
		t.Fatalf("free = %d, want 0", free)
	}
}

func TestTierPingRequiresAllPeers(t *testing.T) {
	ctx := context.Background()
	t.Run("AllAlive", func(t *testing.T) {
		tier, _, _ := tierFixture(t, 3)
		if err := tier.Ping(ctx); err != nil {
			t.Fatalf("ping with live peers: %v", err)
		}
	})
	t.Run("OneDead", func(t *testing.T) {
		tier, _, _ := tierFixture(t, 3, 2)
		if err := tier.Ping(ctx); err == nil {
			t.Fatal("ping with a dead peer succeeded")
		}
	})
}

func TestTierList(t *testing.T) {
	ctx := context.Background()
	tier, _, stores := tierFixture(t, 3)
	if err := stores[1].WriteFile(ctx, "bb", make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
	if err := stores[2].WriteFile(ctx, "aa", make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	infos, err := tier.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "aa" || infos[1].Name != "bb" {
		t.Fatalf("merged list = %+v", infos)
	}
}

func TestTierValidatesMembership(t *testing.T) {
	ring, _ := peernet.NewRing([]string{"a", "b"}, 0)
	if _, err := peernet.NewTier("p", "a", ring, nil); err == nil {
		t.Fatal("tier without client for ring member accepted")
	}
	if _, err := peernet.NewTier("p", "zz", ring, nil); err == nil {
		t.Fatal("tier for non-member node accepted")
	}
}
