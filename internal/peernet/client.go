package peernet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"monarch/internal/obs"
	"monarch/internal/storage"
)

// ErrClientClosed is returned by every operation on a closed Client.
// Close also fails in-flight requests with it: their connections are
// closed under them and the retry loop refuses to redial.
var ErrClientClosed = errors.New("peernet: client is closed")

// Dialer opens one connection to a peer server. TCPDialer and
// PipeDialer cover the two in-tree transports; tests can inject
// failing dialers to exercise the retry path.
type Dialer func(ctx context.Context) (net.Conn, error)

// ClientConfig configures one peer client.
type ClientConfig struct {
	// Name is the backend name the client reports ("peer:node1").
	Name string
	// Dial opens connections to the peer.
	Dial Dialer
	// PoolSize caps idle connections kept for reuse (default 2).
	PoolSize int
	// Timeout bounds each request end to end — every attempt and every
	// retry backoff must fit inside it (default 5s). A tighter caller
	// deadline wins.
	Timeout time.Duration
	// Retries is how many times a request is retried after a
	// *transport* failure — dial or I/O errors. Remote errors (a miss,
	// a full quota) are definitive and never retried. Default 1.
	Retries int
	// Backoff seeds the retry delay: it doubles per attempt and each
	// sleep is jittered by a uniform factor in [0.5, 1.5), so retries
	// from many nodes hitting one struggling peer spread out instead
	// of arriving in lockstep (default 10ms). A sleep that would
	// outlive the per-op deadline is skipped and the request fails
	// with the last transport error instead.
	Backoff time.Duration
}

// Client speaks the frame protocol to one peer server and exposes it
// as a storage.Backend, so a peer's cache composes into the hierarchy
// exactly like a local tier. Safe for concurrent use: concurrent
// requests each use their own pooled connection.
type Client struct {
	cfg ClientConfig

	mu     sync.Mutex
	idle   []net.Conn
	live   map[net.Conn]struct{} // checked out by in-flight requests
	closed bool

	// Per-op wire attempts, transport errors and response bytes;
	// exported through Instrument. The histogram pointer is nil until
	// Instrument runs — the hot path loads it atomically. hlat is the
	// always-on latency record the hedging engine derives its adaptive
	// p99 threshold from; it exists whether or not Instrument ran.
	reqs     [16]atomic.Int64 // indexed by op byte (low nibble)
	transErr atomic.Int64
	bytesIn  atomic.Int64
	lat      atomic.Pointer[obs.Histogram]
	hlat     *obs.Histogram
}

// opNames label the per-op request counters.
var opNames = map[byte]string{
	OpPing:   "ping",
	OpStat:   "stat",
	OpList:   "list",
	OpRead:   "read",
	OpWrite:  "write",
	OpRemove: "remove",
	OpUsage:  "usage",
	OpStats:  "stats",
}

// NewClient validates cfg, applies defaults and builds a Client. No
// connection is opened until the first request.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("peernet: client needs a dialer")
	}
	if cfg.Name == "" {
		cfg.Name = "peer"
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	return &Client{
		cfg:  cfg,
		live: make(map[net.Conn]struct{}),
		hlat: obs.NewHistogram(obs.LatencyBuckets),
	}, nil
}

// Name implements storage.Backend.
func (c *Client) Name() string { return c.cfg.Name }

// Close drains the idle pool, closes every in-flight connection (so
// blocked requests fail fast with ErrClientClosed instead of waiting
// out their deadlines) and fails future requests. Safe to call more
// than once.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	live := make([]net.Conn, 0, len(c.live))
	for conn := range c.live {
		live = append(live, conn)
	}
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
	for _, conn := range live {
		conn.Close()
	}
	return nil
}

// getConn pops an idle connection or dials a fresh one; either way the
// connection is tracked as live until putConn/discard, so Close can
// fail it under an in-flight request.
func (c *Client) getConn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("peernet: %s: %w", c.cfg.Name, ErrClientClosed)
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.live[conn] = struct{}{}
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	conn, err := c.cfg.Dial(ctx)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("peernet: %s: %w", c.cfg.Name, ErrClientClosed)
	}
	c.live[conn] = struct{}{}
	c.mu.Unlock()
	return conn, nil
}

// putConn returns a healthy connection to the pool.
func (c *Client) putConn(conn net.Conn) {
	conn.SetDeadline(time.Time{})
	c.mu.Lock()
	delete(c.live, conn)
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// discard closes a failed connection and forgets it.
func (c *Client) discard(conn net.Conn) {
	c.mu.Lock()
	delete(c.live, conn)
	c.mu.Unlock()
	conn.Close()
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// do runs one request under the per-op deadline with transport-level
// retry: jittered exponential backoff between attempts, total wall
// time (attempts plus sleeps) capped by the deadline. It returns the
// remote status and response payload; callers map non-OK statuses
// through remoteError.
func (c *Client) do(ctx context.Context, op byte, payload []byte) (byte, []byte, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	// One deadline for the whole call; a tighter caller deadline wins.
	deadline := time.Now().Add(c.cfg.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	backoff := c.cfg.Backoff
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			if err := ctx.Err(); err != nil {
				return 0, nil, err
			}
			sleep := time.Duration((0.5 + rand.Float64()) * float64(backoff))
			backoff *= 2
			if sleep > time.Until(deadline) {
				// The sleep would outlive the op deadline; surface the
				// last transport error instead of burning the budget.
				break
			}
			select {
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			case <-time.After(sleep):
			}
		}
		attempts++
		conn, err := c.getConn(ctx)
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return 0, nil, err
			}
			c.transErr.Add(1)
			lastErr = err
			continue
		}
		status, resp, err := c.roundTrip(ctx, conn, op, payload, deadline)
		if err != nil {
			c.discard(conn)
			c.transErr.Add(1)
			if c.isClosed() {
				return 0, nil, fmt.Errorf("peernet: %s: %w", c.cfg.Name, ErrClientClosed)
			}
			lastErr = err
			continue
		}
		c.putConn(conn)
		return status, resp, nil
	}
	return 0, nil, fmt.Errorf("peernet: %s: request failed after %d attempts: %w",
		c.cfg.Name, attempts, lastErr)
}

// roundTrip sends one frame and reads the response on conn. A
// cancelled context forces the connection's deadline into the past, so
// hedged reads can abandon the losing replica mid-read instead of
// waiting out the full timeout.
func (c *Client) roundTrip(ctx context.Context, conn net.Conn, op byte, payload []byte, deadline time.Time) (byte, []byte, error) {
	if err := conn.SetDeadline(deadline); err != nil {
		return 0, nil, err
	}
	if cancel := ctx.Done(); cancel != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-cancel:
				conn.SetDeadline(time.Unix(1, 0))
			case <-done:
			}
		}()
	}
	c.reqs[op&0x0f].Add(1)
	start := time.Now()
	if err := writeFrameID(conn, op, obs.RequestIDFrom(ctx), payload); err != nil {
		return 0, nil, err
	}
	status, _, resp, err := readFrame(conn)
	if err != nil {
		return 0, nil, err
	}
	elapsed := time.Since(start).Seconds()
	c.hlat.Observe(elapsed)
	if h := c.lat.Load(); h != nil {
		h.Observe(elapsed)
	}
	return status, resp, nil
}

// LatencyQuantile estimates quantile q of this client's request round
// trips from the always-on latency histogram, with the sample count —
// the signal the tier's hedging engine thresholds on.
func (c *Client) LatencyQuantile(q float64) (seconds float64, samples uint64) {
	return c.hlat.Quantile(q), c.hlat.Count()
}

// remoteError reconstructs the sentinel a non-OK status encodes, so
// errors.Is(err, storage.ErrNotExist) works across the wire. It
// consumes resp (recycling the pooled payload); callers must not touch
// resp afterwards.
func (c *Client) remoteError(status byte, resp []byte) error {
	msg, _, perr := parseString(resp)
	if perr != nil {
		msg = "(no detail)"
	}
	putPayload(resp)
	switch status {
	case StatusNotExist:
		return fmt.Errorf("peernet: %s: %s: %w", c.cfg.Name, msg, storage.ErrNotExist)
	case StatusExist:
		return fmt.Errorf("peernet: %s: %s: %w", c.cfg.Name, msg, storage.ErrExist)
	case StatusNoSpace:
		return fmt.Errorf("peernet: %s: %s: %w", c.cfg.Name, msg, storage.ErrNoSpace)
	case StatusReadOnly:
		return fmt.Errorf("peernet: %s: %s: %w", c.cfg.Name, msg, storage.ErrReadOnly)
	case StatusCanceled:
		return fmt.Errorf("peernet: %s: %s: %w", c.cfg.Name, msg, context.Canceled)
	case StatusInvalid, StatusInternal:
		return fmt.Errorf("peernet: %s: remote error: %s", c.cfg.Name, msg)
	default:
		return fmt.Errorf("peernet: %s: unknown status 0x%02x", c.cfg.Name, status)
	}
}

// Ping implements storage.Pinger: a liveness round trip the recovery
// prober uses instead of its default write probe.
func (c *Client) Ping(ctx context.Context) error {
	status, resp, err := c.do(ctx, OpPing, nil)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return c.remoteError(status, resp)
	}
	putPayload(resp)
	return nil
}

// Heartbeat sends one membership heartbeat piggybacked on PING: the
// local view travels out, the peer's view comes back (nil when the
// peer runs without a Membership — plain liveness still proven).
func (c *Client) Heartbeat(ctx context.Context, self string, view []HeartbeatEntry) ([]HeartbeatEntry, error) {
	status, resp, err := c.do(ctx, OpPing, appendHeartbeat(nil, self, view))
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, c.remoteError(status, resp)
	}
	if len(resp) == 0 {
		return nil, nil
	}
	_, entries, err := parseHeartbeat(resp)
	putPayload(resp)
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// Stat implements storage.Backend.
func (c *Client) Stat(ctx context.Context, name string) (storage.FileInfo, error) {
	if err := storage.ValidateName(name); err != nil {
		return storage.FileInfo{}, err
	}
	status, resp, err := c.do(ctx, OpStat, appendString(nil, name))
	if err != nil {
		return storage.FileInfo{}, err
	}
	if status != StatusOK {
		return storage.FileInfo{}, c.remoteError(status, resp)
	}
	size, _, err := parseI64(resp)
	putPayload(resp)
	if err != nil {
		return storage.FileInfo{}, err
	}
	return storage.FileInfo{Name: name, Size: size}, nil
}

// List implements storage.Backend.
func (c *Client) List(ctx context.Context) ([]storage.FileInfo, error) {
	status, resp, err := c.do(ctx, OpList, nil)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, c.remoteError(status, resp)
	}
	entries, err := parseListResp(resp)
	putPayload(resp)
	if err != nil {
		return nil, err
	}
	infos := make([]storage.FileInfo, len(entries))
	for i, e := range entries {
		infos[i] = storage.FileInfo{Name: e.name, Size: e.size}
	}
	return infos, nil
}

// ReadAt implements storage.Backend, splitting large windows into
// maxData-sized wire requests.
func (c *Client) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := storage.ValidateName(name); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("peernet: %s: negative offset %d", c.cfg.Name, off)
	}
	done := 0
	for {
		want := min(len(p)-done, maxData)
		status, resp, err := c.do(ctx, OpRead,
			appendReadReq(nil, name, off+int64(done), uint32(want)))
		if err != nil {
			return done, err
		}
		if status != StatusOK {
			return done, c.remoteError(status, resp)
		}
		if len(resp) > want {
			putPayload(resp)
			return done, fmt.Errorf("%w: READ returned %d bytes for a %d-byte request",
				errMalformed, len(resp), want)
		}
		n := copy(p[done:], resp)
		putPayload(resp)
		done += n
		c.bytesIn.Add(int64(n))
		if n < want || done == len(p) {
			// Short response = EOF on the remote, matching local
			// ReadAt semantics (n < len(p), nil error).
			return done, nil
		}
	}
}

// ReadFile implements storage.Backend as Stat + ranged reads.
func (c *Client) ReadFile(ctx context.Context, name string) ([]byte, error) {
	fi, err := c.Stat(ctx, name)
	if err != nil {
		return nil, err
	}
	data := make([]byte, fi.Size)
	n, err := c.ReadAt(ctx, name, data, 0)
	if err != nil {
		return nil, err
	}
	return data[:n], nil
}

// WriteFile implements storage.Backend. Servers reject it unless
// started with AllowWrite.
func (c *Client) WriteFile(ctx context.Context, name string, data []byte) error {
	if err := storage.ValidateName(name); err != nil {
		return err
	}
	payload := append(appendString(nil, name), data...)
	status, resp, err := c.do(ctx, OpWrite, payload)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return c.remoteError(status, resp)
	}
	putPayload(resp)
	return nil
}

// Remove implements storage.Backend.
func (c *Client) Remove(ctx context.Context, name string) error {
	if err := storage.ValidateName(name); err != nil {
		return err
	}
	status, resp, err := c.do(ctx, OpRemove, appendString(nil, name))
	if err != nil {
		return err
	}
	if status != StatusOK {
		return c.remoteError(status, resp)
	}
	putPayload(resp)
	return nil
}

// Stats fetches the peer's observability snapshot: registry metrics,
// gossip view and per-job ledger. Peers that predate the STATS op (or
// run without a stats source) answer StatusInvalid, which surfaces
// here as a remote error.
func (c *Client) Stats(ctx context.Context) (NodeStats, error) {
	status, resp, err := c.do(ctx, OpStats, nil)
	if err != nil {
		return NodeStats{}, err
	}
	if status != StatusOK {
		return NodeStats{}, c.remoteError(status, resp)
	}
	ns, err := parseStatsResp(resp)
	putPayload(resp)
	return ns, err
}

// usage fetches the remote quota pair with a self-imposed deadline,
// since Capacity/Used take no context.
func (c *Client) usage() (capacity, used int64, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	status, resp, err := c.do(ctx, OpUsage, nil)
	if err != nil {
		return 0, 0, err
	}
	if status != StatusOK {
		return 0, 0, c.remoteError(status, resp)
	}
	capacity, used, err = parseUsageResp(resp)
	putPayload(resp)
	return capacity, used, err
}

// Capacity implements storage.Backend; it reports 0 (unlimited) when
// the peer cannot be reached — harmless, because peer tiers are never
// placement destinations.
func (c *Client) Capacity() int64 {
	capacity, _, err := c.usage()
	if err != nil {
		return 0
	}
	return capacity
}

// Used implements storage.Backend.
func (c *Client) Used() int64 {
	_, used, err := c.usage()
	if err != nil {
		return 0
	}
	return used
}

// Instrument implements obs.Instrumentable: per-op request counters,
// transport-error and byte totals, and a request latency histogram,
// all labelled with the peer name.
func (c *Client) Instrument(r *obs.Registry, labels ...obs.Label) {
	base := append([]obs.Label{obs.L("peer", c.cfg.Name)}, labels...)
	for op, name := range opNames {
		ctr := &c.reqs[op&0x0f]
		r.CounterFunc("monarch_peer_requests_total",
			"Wire requests sent to a peer cache server, by operation.",
			ctr.Load, append(append([]obs.Label(nil), base...), obs.L("op", name))...)
	}
	r.CounterFunc("monarch_peer_transport_errors_total",
		"Dial or I/O failures talking to a peer cache server (before retry).",
		c.transErr.Load, base...)
	r.CounterFunc("monarch_peer_read_bytes_total",
		"Payload bytes received from a peer cache server by READ requests.",
		c.bytesIn.Load, base...)
	c.lat.Store(r.Histogram("monarch_peer_request_seconds",
		"Round-trip latency of peer cache requests.",
		obs.LatencyBuckets, base...))
}

// TransportErrors reports the number of dial/IO failures so far.
func (c *Client) TransportErrors() int64 { return c.transErr.Load() }
