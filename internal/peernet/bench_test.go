package peernet_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"monarch/internal/peernet"
	"monarch/internal/storage"
)

// benchServer seeds a MemFS with one file and serves it.
func benchServer(b *testing.B, size int) *peernet.Server {
	b.Helper()
	mem := storage.NewMemFS("remote", 0)
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := mem.WriteFile(context.Background(), "bench.rec", data); err != nil {
		b.Fatal(err)
	}
	srv, err := peernet.NewServer(peernet.ServerConfig{Backend: mem})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

// benchRead drives b.N whole-file reads through c and reports MB/s.
func benchRead(b *testing.B, c *peernet.Client, size int) {
	ctx := context.Background()
	p := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := c.ReadAt(ctx, "bench.rec", p, 0)
		if err != nil || n != size {
			b.Fatalf("read: n=%d err=%v", n, err)
		}
	}
}

// BenchmarkPeerRead measures one-request read latency/throughput over
// both transports at dataset-shard-ish sizes.
func BenchmarkPeerRead(b *testing.B) {
	sizes := []int{4 << 10, 256 << 10, 4 << 20}

	for _, size := range sizes {
		size := size
		b.Run(fmt.Sprintf("pipe/%dKB", size>>10), func(b *testing.B) {
			srv := benchServer(b, size)
			c, err := peernet.NewClient(peernet.ClientConfig{
				Name: "peer:pipe",
				Dial: peernet.PipeDialer(srv),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			benchRead(b, c, size)
		})

		b.Run(fmt.Sprintf("tcp/%dKB", size>>10), func(b *testing.B) {
			srv := benchServer(b, size)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			c, err := peernet.NewClient(peernet.ClientConfig{
				Name: "peer:tcp",
				Dial: peernet.TCPDialer(ln.Addr().String(), time.Second),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			benchRead(b, c, size)
		})
	}
}

// BenchmarkPeerStat measures the metadata round trip — the per-request
// floor under the protocol.
func BenchmarkPeerStat(b *testing.B) {
	srv := benchServer(b, 1024)
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:pipe",
		Dial: peernet.PipeDialer(srv),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stat(ctx, "bench.rec"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeerReadHedged prices the hedging machinery on the healthy
// path: a 2-replica tier reading through fast pipe transports, hedging
// armed. "off" is the same tier with hedging disabled, so the diff is
// the pure cost of arming a hedge timer per read (the unhealthy path —
// a hedge actually firing — is priced by the experiment, not a
// microbenchmark).
func BenchmarkPeerReadHedged(b *testing.B) {
	const size = 256 << 10
	build := func(b *testing.B, hedge bool) *peernet.Tier {
		ring, err := peernet.NewRing([]string{"self", "node1", "node2"}, 0)
		if err != nil {
			b.Fatal(err)
		}
		clients := map[string]*peernet.Client{}
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i)
		}
		for _, node := range []string{"node1", "node2"} {
			mem := storage.NewMemFS(node, 0)
			if err := mem.WriteFile(context.Background(), "bench.rec", data); err != nil {
				b.Fatal(err)
			}
			srv, err := peernet.NewServer(peernet.ServerConfig{Backend: mem})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })
			c, err := peernet.NewClient(peernet.ClientConfig{
				Name: "peer:" + node,
				Dial: peernet.PipeDialer(srv),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			clients[node] = c
		}
		tier, err := peernet.NewTierWithConfig(peernet.TierConfig{
			Self: "self", Ring: ring, Clients: clients, Replicas: 2,
			Hedge: peernet.HedgeConfig{Enabled: hedge, MinSamples: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		return tier
	}

	for _, mode := range []struct {
		name  string
		hedge bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			tier := build(b, mode.hedge)
			ctx := context.Background()
			p := make([]byte, size)
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := tier.ReadAt(ctx, "bench.rec", p, 0)
				if err != nil || n != size {
					b.Fatalf("read: n=%d err=%v", n, err)
				}
			}
		})
	}
}
