package peernet_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"monarch/internal/peernet"
	"monarch/internal/storage"
)

// benchServer seeds a MemFS with one file and serves it.
func benchServer(b *testing.B, size int) *peernet.Server {
	b.Helper()
	mem := storage.NewMemFS("remote", 0)
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := mem.WriteFile(context.Background(), "bench.rec", data); err != nil {
		b.Fatal(err)
	}
	srv, err := peernet.NewServer(peernet.ServerConfig{Backend: mem})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

// benchRead drives b.N whole-file reads through c and reports MB/s.
func benchRead(b *testing.B, c *peernet.Client, size int) {
	ctx := context.Background()
	p := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := c.ReadAt(ctx, "bench.rec", p, 0)
		if err != nil || n != size {
			b.Fatalf("read: n=%d err=%v", n, err)
		}
	}
}

// BenchmarkPeerRead measures one-request read latency/throughput over
// both transports at dataset-shard-ish sizes.
func BenchmarkPeerRead(b *testing.B) {
	sizes := []int{4 << 10, 256 << 10, 4 << 20}

	for _, size := range sizes {
		size := size
		b.Run(fmt.Sprintf("pipe/%dKB", size>>10), func(b *testing.B) {
			srv := benchServer(b, size)
			c, err := peernet.NewClient(peernet.ClientConfig{
				Name: "peer:pipe",
				Dial: peernet.PipeDialer(srv),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			benchRead(b, c, size)
		})

		b.Run(fmt.Sprintf("tcp/%dKB", size>>10), func(b *testing.B) {
			srv := benchServer(b, size)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			c, err := peernet.NewClient(peernet.ClientConfig{
				Name: "peer:tcp",
				Dial: peernet.TCPDialer(ln.Addr().String(), time.Second),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			benchRead(b, c, size)
		})
	}
}

// BenchmarkPeerStat measures the metadata round trip — the per-request
// floor under the protocol.
func BenchmarkPeerStat(b *testing.B) {
	srv := benchServer(b, 1024)
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:pipe",
		Dial: peernet.PipeDialer(srv),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stat(ctx, "bench.rec"); err != nil {
			b.Fatal(err)
		}
	}
}
