package peernet

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a, err := NewRing([]string{"node0", "node1", "node2", "node3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"node3", "node1", "node0", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("data/shard-%04d.rec", i)
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("rings disagree on %s: %s vs %s", name, a.Owner(name), b.Owner(name))
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"node0", "node1", "node2", "node3"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const files = 4000
	for i := 0; i < files; i++ {
		counts[r.Owner(fmt.Sprintf("data/shard-%05d.rec", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / files
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of the namespace: %v", n, 100*share, counts)
		}
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"only"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("f-%d", i)); got != "only" {
			t.Fatalf("owner = %q", got)
		}
	}
}

func TestRingMembershipChangeMovesLittle(t *testing.T) {
	before, _ := NewRing([]string{"node0", "node1", "node2", "node3"}, 0)
	after, _ := NewRing([]string{"node0", "node1", "node2", "node3", "node4"}, 0)
	const files = 2000
	moved := 0
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("data/shard-%05d.rec", i)
		if before.Owner(name) != after.Owner(name) {
			moved++
		}
	}
	// Adding a fifth node should move roughly 1/5 of the keys; anything
	// over half means the hash is not consistent.
	if float64(moved)/files > 0.5 {
		t.Fatalf("membership change moved %d/%d keys", moved, files)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty node ID accepted")
	}
}
