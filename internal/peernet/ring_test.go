package peernet

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a, err := NewRing([]string{"node0", "node1", "node2", "node3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"node3", "node1", "node0", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("data/shard-%04d.rec", i)
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("rings disagree on %s: %s vs %s", name, a.Owner(name), b.Owner(name))
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"node0", "node1", "node2", "node3"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const files = 4000
	for i := 0; i < files; i++ {
		counts[r.Owner(fmt.Sprintf("data/shard-%05d.rec", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / files
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of the namespace: %v", n, 100*share, counts)
		}
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"only"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("f-%d", i)); got != "only" {
			t.Fatalf("owner = %q", got)
		}
	}
}

func TestRingMembershipChangeMovesLittle(t *testing.T) {
	before, _ := NewRing([]string{"node0", "node1", "node2", "node3"}, 0)
	after, _ := NewRing([]string{"node0", "node1", "node2", "node3", "node4"}, 0)
	const files = 2000
	moved := 0
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("data/shard-%05d.rec", i)
		if before.Owner(name) != after.Owner(name) {
			moved++
		}
	}
	// Adding a fifth node should move roughly 1/5 of the keys; anything
	// over half means the hash is not consistent.
	if float64(moved)/files > 0.5 {
		t.Fatalf("membership change moved %d/%d keys", moved, files)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty node ID accepted")
	}
}

// TestRingOwnersOfProperties holds the replica-set invariants over a
// large sample of names: distinct members only, primary == Owner,
// width capped at the member count, and OwnedBy consistent with the
// returned set at every width.
func TestRingOwnersOfProperties(t *testing.T) {
	nodes := []string{"node0", "node1", "node2", "node3", "node4"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	member := map[string]bool{}
	for _, n := range nodes {
		member[n] = true
	}
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("data/shard-%04d.rec", i)
		owners := r.OwnersOf(name, 3)
		if len(owners) != 3 {
			t.Fatalf("%s: %d owners, want 3", name, len(owners))
		}
		if owners[0] != r.Owner(name) {
			t.Fatalf("%s: primary %s != Owner %s", name, owners[0], r.Owner(name))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if !member[o] {
				t.Fatalf("%s: non-member owner %s", name, o)
			}
			if seen[o] {
				t.Fatalf("%s: duplicate owner in %v", name, owners)
			}
			seen[o] = true
		}
		// OwnedBy(k) must match membership of owners[:k] exactly.
		for _, n := range nodes {
			for k := 1; k <= 3; k++ {
				in := false
				for _, o := range owners[:k] {
					if o == n {
						in = true
					}
				}
				if got := r.OwnedBy(name, n, k); got != in {
					t.Fatalf("%s: OwnedBy(%s,%d)=%v, set=%v", name, n, k, got, owners[:k])
				}
			}
		}
	}
	// Width beyond the membership is capped, not padded.
	if all := r.OwnersOf("anything", 50); len(all) != len(nodes) {
		t.Fatalf("OwnersOf capped at %d, want %d", len(all), len(nodes))
	}
}

// TestRingAddRemoveRoundTrip: join-then-leave restores the exact
// ownership of every name, and bad membership edits error.
func TestRingAddRemoveRoundTrip(t *testing.T) {
	base, err := NewRing([]string{"node0", "node1", "node2", "node3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := base.Add("node4")
	if err != nil {
		t.Fatal(err)
	}
	back, err := grown.Remove("node4")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		name := fmt.Sprintf("f-%d", i)
		a, b := base.OwnersOf(name, 2), back.OwnersOf(name, 2)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("%s: replica set %v changed to %v across join+leave", name, a, b)
		}
	}
	if _, err := grown.Add("node4"); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if _, err := base.Remove("ghost"); err == nil {
		t.Fatal("departure of a non-member accepted")
	}
	// Immutability: the receiver never observes the edit.
	if len(base.Nodes()) != 4 || len(grown.Nodes()) != 5 {
		t.Fatalf("rings mutated in place: base=%v grown=%v", base.Nodes(), grown.Nodes())
	}
}

// TestRingReplicaSetMovementBounded: one node joining a ring of 8
// must disturb roughly 2/9 of the R=2 replica sets (each of the two
// replica slots moves with probability ~1/9), never a wholesale
// reshuffle. The complement also holds: a set that changed must still
// share at least one member with its old self or include the joiner.
func TestRingReplicaSetMovementBounded(t *testing.T) {
	nodes := make([]string, 8)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d", i)
	}
	before, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := before.Add("node8")
	if err != nil {
		t.Fatal(err)
	}
	const names = 2000
	changed := 0
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("data/part-%05d", i)
		a, b := before.OwnersOf(name, 2), after.OwnersOf(name, 2)
		if a[0] == b[0] && a[1] == b[1] {
			continue
		}
		changed++
		// A disturbed set either gained the joiner or kept a survivor:
		// the walk only re-routes where node8's points landed.
		keeps := b[0] == "node8" || b[1] == "node8" ||
			b[0] == a[0] || b[0] == a[1] || b[1] == a[0] || b[1] == a[1]
		if !keeps {
			t.Fatalf("%s: %v -> %v shares nothing with the old set", name, a, b)
		}
	}
	if frac := float64(changed) / names; frac > 0.5 {
		t.Fatalf("join moved %.0f%% of replica sets; expected ~22%%", frac*100)
	}
	if changed == 0 {
		t.Fatal("join moved nothing; the test has no teeth")
	}
}
