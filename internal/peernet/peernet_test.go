package peernet_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"monarch/internal/obs"
	"monarch/internal/peernet"
	"monarch/internal/storage"
	"monarch/internal/storage/storagetest"
)

// pipeClient builds a MemFS-backed server and a Client connected over
// net.Pipe, torn down with the test.
func pipeClient(t *testing.T, capacity int64, allowWrite bool) (*peernet.Client, *storage.MemFS) {
	t.Helper()
	mem := storage.NewMemFS("remote", capacity)
	srv, err := peernet.NewServer(peernet.ServerConfig{Backend: mem, AllowWrite: allowWrite})
	if err != nil {
		t.Fatal(err)
	}
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name:     "peer:test",
		Dial:     peernet.PipeDialer(srv),
		PoolSize: 4,
		Timeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	return c, mem
}

// TestClientConformance holds the peer client to the same contract as
// MemFS and OSFS: the full storage conformance suite runs against a
// writable server over the pipe transport.
func TestClientConformance(t *testing.T) {
	storagetest.RunConformance(t, func(capacity int64) storage.Backend {
		c, _ := pipeClient(t, capacity, true)
		return c
	})
}

// TestClientWriteConformance holds the peer client's mutation path
// (OpWrite/OpRemove over the wire) to the shared write-lifecycle
// contract; the range subtests skip because the wire protocol has no
// ALLOC/WRITEAT ops.
func TestClientWriteConformance(t *testing.T) {
	storagetest.RunWriteConformance(t, func(capacity int64) storage.Backend {
		c, _ := pipeClient(t, capacity, true)
		return c
	})
}

// TestWriteRemoveOverTCP drives the gated mutation ops end-to-end over
// a real loopback socket: write, read-back, remove, and the sentinel
// for removing a ghost — all through the kernel's TCP path rather than
// net.Pipe.
func TestWriteRemoveOverTCP(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemFS("remote", 0)
	srv, err := peernet.NewServer(peernet.ServerConfig{Backend: mem, AllowWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:tcp-write",
		Dial: peernet.TCPDialer(ln.Addr().String(), time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	payload := bytes.Repeat([]byte{0xC3}, 128<<10)
	if err := c.WriteFile(ctx, "ckpt/shard-0", payload); err != nil {
		t.Fatal(err)
	}
	if got, err := mem.ReadFile(ctx, "ckpt/shard-0"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("server content after TCP write: %v", err)
	}
	if got, err := c.ReadFile(ctx, "ckpt/shard-0"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("TCP read-back: %v", err)
	}
	if err := c.Remove(ctx, "ckpt/shard-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Stat(ctx, "ckpt/shard-0"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("server copy survived TCP remove: %v", err)
	}
	if err := c.Remove(ctx, "ckpt/shard-0"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("ghost remove over TCP: %v, want ErrNotExist", err)
	}
}

// TestClientWrapperPassthrough runs the Counting and Faulty
// instrumentation wrappers over the peer client, the way experiments
// stack them over local backends.
func TestClientWrapperPassthrough(t *testing.T) {
	ctx := context.Background()

	t.Run("CountingCounts", func(t *testing.T) {
		c, _ := pipeClient(t, 0, true)
		w := storage.NewCounting(c)
		if err := w.WriteFile(ctx, "f", []byte("abcdef")); err != nil {
			t.Fatal(err)
		}
		data, err := w.ReadFile(ctx, "f")
		if err != nil || string(data) != "abcdef" {
			t.Fatalf("readfile: %q err=%v", data, err)
		}
		p := make([]byte, 3)
		if n, err := w.ReadAt(ctx, "f", p, 1); err != nil || n != 3 {
			t.Fatalf("readat: n=%d err=%v", n, err)
		}
		counts := w.Counts()
		if counts.Ops[storage.OpWrite] != 1 || counts.Ops[storage.OpRead] != 2 {
			t.Fatalf("ops = %+v", counts.Ops)
		}
		if counts.BytesRead != 9 {
			t.Fatalf("bytes read = %d, want 9", counts.BytesRead)
		}
	})

	t.Run("CountingRangeWriterUnsupported", func(t *testing.T) {
		c, _ := pipeClient(t, 0, true)
		w := storage.NewCounting(c)
		if err := w.Allocate(ctx, "f", 8); !errors.Is(err, errors.ErrUnsupported) {
			t.Fatalf("allocate over peer client: %v, want ErrUnsupported", err)
		}
	})

	t.Run("FaultyInjects", func(t *testing.T) {
		c, _ := pipeClient(t, 0, true)
		w := storage.NewFaulty(c)
		if err := w.WriteFile(ctx, "f", []byte("x")); err != nil {
			t.Fatal(err)
		}
		w.FailNextReads(1)
		if _, err := w.ReadFile(ctx, "f"); err == nil {
			t.Fatal("injected read fault did not fire")
		}
		if _, err := w.ReadFile(ctx, "f"); err != nil {
			t.Fatalf("post-heal read: %v", err)
		}
	})
}

// TestClientSentinelsAcrossWire pins the error mapping: remote
// sentinel errors must satisfy errors.Is locally.
func TestClientSentinelsAcrossWire(t *testing.T) {
	ctx := context.Background()
	c, mem := pipeClient(t, 10, true)

	if _, err := c.Stat(ctx, "ghost"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("stat ghost: %v", err)
	}
	if err := c.WriteFile(ctx, "big", make([]byte, 11)); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("over-quota write: %v", err)
	}
	mem.SetReadOnly(true)
	if err := c.WriteFile(ctx, "f", []byte("x")); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("write to read-only remote: %v", err)
	}
}

// TestReadOnlyServer locks down the default posture: without
// AllowWrite the server rejects mutations with ErrReadOnly but serves
// reads.
func TestReadOnlyServer(t *testing.T) {
	ctx := context.Background()
	c, mem := pipeClient(t, 0, false)
	if err := mem.WriteFile(ctx, "f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile(ctx, "g", []byte("x")); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("write via read-only server: %v", err)
	}
	if err := c.Remove(ctx, "f"); !errors.Is(err, storage.ErrReadOnly) {
		t.Fatalf("remove via read-only server: %v", err)
	}
	data, err := c.ReadFile(ctx, "f")
	if err != nil || string(data) != "data" {
		t.Fatalf("read via read-only server: %q err=%v", data, err)
	}
}

// TestClientPing exercises the Pinger extension both ways.
func TestClientPing(t *testing.T) {
	ctx := context.Background()
	c, _ := pipeClient(t, 0, false)
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping live server: %v", err)
	}

	dead, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:dead",
		Dial: func(ctx context.Context) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
		Retries: 1,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dead.Ping(ctx); err == nil {
		t.Fatal("ping of dead peer succeeded")
	}
}

// TestClientRetriesTransportErrors verifies the retry path: the first
// dial fails, the retry lands, and the transport-error counter records
// the failure.
func TestClientRetriesTransportErrors(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemFS("remote", 0)
	if err := mem.WriteFile(ctx, "f", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	srv, err := peernet.NewServer(peernet.ServerConfig{Backend: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pipe := peernet.PipeDialer(srv)
	failures := 1
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:flaky",
		Dial: func(ctx context.Context) (net.Conn, error) {
			if failures > 0 {
				failures--
				return nil, errors.New("transient dial failure")
			}
			return pipe(ctx)
		},
		Retries: 2,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data, err := c.ReadFile(ctx, "f")
	if err != nil || string(data) != "ok" {
		t.Fatalf("read through flaky dialer: %q err=%v", data, err)
	}
	if got := c.TransportErrors(); got != 1 {
		t.Fatalf("transport errors = %d, want 1", got)
	}
}

// TestClientDoesNotRetryRemoteErrors: a remote miss is definitive; it
// must not burn retry attempts (or reconnect).
func TestClientDoesNotRetryRemoteErrors(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemFS("remote", 0)
	srv, err := peernet.NewServer(peernet.ServerConfig{Backend: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dials := 0
	pipe := peernet.PipeDialer(srv)
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:count",
		Dial: func(ctx context.Context) (net.Conn, error) {
			dials++
			return pipe(ctx)
		},
		Retries: 3,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Stat(ctx, "ghost"); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("stat ghost: %v", err)
		}
	}
	if dials != 1 {
		t.Fatalf("dials = %d, want 1 (pooled conn reused, misses not retried)", dials)
	}
}

// TestClientDeadline: a server that never answers must fail the
// request within the per-request timeout, not hang.
func TestClientDeadline(t *testing.T) {
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:hang",
		Dial: func(ctx context.Context) (net.Conn, error) {
			client, _ := net.Pipe() // no server loop: reads/writes block
			return client, nil
		},
		Timeout: 50 * time.Millisecond,
		Retries: 0,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(context.Background()); err == nil {
		t.Fatal("ping of hung server succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline took %s to fire", d)
	}
}

// TestClientInstrument checks the per-peer series land in the registry
// with the right names and move with traffic.
func TestClientInstrument(t *testing.T) {
	ctx := context.Background()
	c, mem := pipeClient(t, 0, false)
	if err := mem.WriteFile(ctx, "f", bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Instrument(reg)
	if _, err := c.ReadFile(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	vars := reg.Vars()
	if got := vars[`monarch_peer_requests_total{op="read",peer="peer:test"}`]; got < 1 {
		t.Fatalf("read requests = %v, want >= 1; vars: %v", got, vars)
	}
	if got := vars[`monarch_peer_read_bytes_total{peer="peer:test"}`]; got != 100 {
		t.Fatalf("read bytes = %v, want 100", got)
	}
	found := false
	for k := range vars {
		if strings.HasPrefix(k, "monarch_peer_request_seconds") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("latency histogram not registered")
	}
}

// TestServerTCP runs the same protocol over a real loopback socket.
func TestServerTCP(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemFS("remote", 0)
	if err := mem.WriteFile(ctx, "shard/0", []byte("tcp bytes")); err != nil {
		t.Fatal(err)
	}
	srv, err := peernet.NewServer(peernet.ServerConfig{Backend: mem})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:tcp",
		Dial: peernet.TCPDialer(ln.Addr().String(), time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadFile(ctx, "shard/0")
	if err != nil || string(data) != "tcp bytes" {
		t.Fatalf("tcp read: %q err=%v", data, err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("tcp ping: %v", err)
	}
	c.Close()
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v after Close", err)
	}
	// A dead server turns into transport errors, not hangs.
	c2, err := peernet.NewClient(peernet.ClientConfig{
		Name:    "peer:tcp2",
		Dial:    peernet.TCPDialer(ln.Addr().String(), 100*time.Millisecond),
		Retries: 0,
		Timeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(ctx); err == nil {
		t.Fatal("ping of closed server succeeded")
	}
}

// TestLargeReadSplitsFrames moves a payload bigger than one READ
// request so the client's windowing path runs.
func TestLargeReadSplitsFrames(t *testing.T) {
	ctx := context.Background()
	c, mem := pipeClient(t, 0, false)
	want := make([]byte, 5<<20) // > maxData (4 MiB)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := mem.WriteFile(ctx, "big", want); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile(ctx, "big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("large read corrupted across frame splits")
	}
}

// TestClientCloseIdempotent: Close twice is fine, and every operation
// after Close fails fast with ErrClientClosed.
func TestClientCloseIdempotent(t *testing.T) {
	ctx := context.Background()
	c, _ := pipeClient(t, 0, false)
	if err := c.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := c.ReadFile(ctx, "f"); !errors.Is(err, peernet.ErrClientClosed) {
		t.Fatalf("read after close: %v, want ErrClientClosed", err)
	}
	if err := c.Ping(ctx); !errors.Is(err, peernet.ErrClientClosed) {
		t.Fatalf("ping after close: %v, want ErrClientClosed", err)
	}
}

// stallFS blocks every ReadAt until the gate opens, simulating a peer
// that accepted the request but never answers.
type stallFS struct {
	storage.Backend
	gate chan struct{}
}

func (s stallFS) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	<-s.gate
	return s.Backend.ReadAt(ctx, name, p, off)
}

// TestClientCloseDuringRead: a request blocked on a stalled peer must
// fail fast when the client closes underneath it — Close kills the
// in-flight connection instead of letting the read wait out its
// 30-second deadline.
func TestClientCloseDuringRead(t *testing.T) {
	ctx := context.Background()
	mem := storage.NewMemFS("remote", 0)
	if err := mem.WriteFile(ctx, "slow", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	srv, err := peernet.NewServer(peernet.ServerConfig{
		Backend: stallFS{Backend: mem, gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// LIFO: the gate must open before srv.Close waits on the handler
	// goroutine blocked behind it.
	defer close(gate)
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name:    "peer:stalled",
		Dial:    peernet.PipeDialer(srv),
		Retries: 1,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := c.ReadFile(ctx, "slow")
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the read reach the wire
	start := time.Now()
	c.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, peernet.ErrClientClosed) {
			t.Fatalf("read under close: %v, want ErrClientClosed", err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("read took %v to fail after Close", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read still blocked 5s after Close")
	}
}

// TestClientBackoffCappedByDeadline: with a dead dial target, retry
// sleeps must never outlive the per-op deadline. Retries 8 at 200ms
// exponential backoff would naively sleep ~51s; the op must return in
// roughly its 300ms budget.
func TestClientBackoffCappedByDeadline(t *testing.T) {
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:unreachable",
		Dial: func(ctx context.Context) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
		Retries: 8,
		Backoff: 200 * time.Millisecond,
		Timeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Ping(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ping of unreachable peer succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v; backoff ignored the %v op deadline", elapsed, 300*time.Millisecond)
	}
}
