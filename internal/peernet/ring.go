package peernet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ownership ring: every file name maps to
// exactly one node, all nodes agree on the mapping with no
// coordination, and adding or removing a node only moves ~1/N of the
// namespace. Each node projects `replicas` virtual points onto the
// ring so ownership stays balanced even with few nodes.
type Ring struct {
	points []ringPoint
	nodes  []string
	vnodes int
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-point count used when NewRing is
// given replicas <= 0. 64 keeps the max/min ownership skew under ~20%
// for small clusters without making lookup tables large.
const DefaultReplicas = 64

// NewRing builds a ring over nodes. Node IDs must be unique and
// non-empty; order does not matter (all nodes build identical rings
// from the same membership set).
func NewRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("peernet: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		points: make([]ringPoint, 0, len(nodes)*replicas),
		nodes:  append([]string(nil), nodes...),
		vnodes: replicas,
	}
	sort.Strings(r.nodes)
	for _, node := range r.nodes {
		if node == "" {
			return nil, fmt.Errorf("peernet: empty node ID")
		}
		if seen[node] {
			return nil, fmt.Errorf("peernet: duplicate node ID %q", node)
		}
		seen[node] = true
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", node, i)),
				node: node,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare) break by node so every ring built
		// from the same membership agrees.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node that owns name: the first virtual point at or
// after the name's hash, wrapping around the ring.
func (r *Ring) Owner(name string) string {
	h := hash64(name)
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// OwnersOf returns the ordered replica set for name: the first n
// distinct nodes encountered walking the ring clockwise from the
// name's hash. The first entry equals Owner(name); n is capped at the
// member count. Every node derives the identical set, so "replica k"
// is a cluster-wide role, not a local guess.
func (r *Ring) OwnersOf(name string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(name)
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

// OwnedBy reports whether node is one of the first n replicas of name
// — the replica-aware form of `ring.Owner(name) == node` that
// Config.Peer.Owns should use when running with replication.
func (r *Ring) OwnedBy(name, node string, n int) bool {
	for _, o := range r.OwnersOf(name, n) {
		if o == node {
			return true
		}
	}
	return false
}

// Nodes returns the membership, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Add returns a new ring with node joined; the receiver is unchanged
// (rings are immutable, so concurrent readers never see a rebalance
// mid-flight). Ownership movement is bounded: only names whose replica
// walk now meets one of the new node's virtual points change hands,
// ~K/N of the namespace.
func (r *Ring) Add(node string) (*Ring, error) {
	return NewRing(append(r.Nodes(), node), r.vnodes)
}

// Remove returns a new ring with node departed; the receiver is
// unchanged. Names the node owned redistribute across the survivors;
// everything else keeps its owner.
func (r *Ring) Remove(node string) (*Ring, error) {
	nodes := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == len(r.nodes) {
		return nil, fmt.Errorf("peernet: node %q is not a ring member", node)
	}
	return NewRing(nodes, r.vnodes)
}

// hash64 is FNV-1a 64: cheap, allocation-free and stable across
// processes (ownership must agree between nodes).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
