package peernet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ownership ring: every file name maps to
// exactly one node, all nodes agree on the mapping with no
// coordination, and adding or removing a node only moves ~1/N of the
// namespace. Each node projects `replicas` virtual points onto the
// ring so ownership stays balanced even with few nodes.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-point count used when NewRing is
// given replicas <= 0. 64 keeps the max/min ownership skew under ~20%
// for small clusters without making lookup tables large.
const DefaultReplicas = 64

// NewRing builds a ring over nodes. Node IDs must be unique and
// non-empty; order does not matter (all nodes build identical rings
// from the same membership set).
func NewRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("peernet: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		points: make([]ringPoint, 0, len(nodes)*replicas),
		nodes:  append([]string(nil), nodes...),
	}
	sort.Strings(r.nodes)
	for _, node := range r.nodes {
		if node == "" {
			return nil, fmt.Errorf("peernet: empty node ID")
		}
		if seen[node] {
			return nil, fmt.Errorf("peernet: duplicate node ID %q", node)
		}
		seen[node] = true
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", node, i)),
				node: node,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare) break by node so every ring built
		// from the same membership agrees.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node that owns name: the first virtual point at or
// after the name's hash, wrapping around the ring.
func (r *Ring) Owner(name string) string {
	h := hash64(name)
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the membership, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// hash64 is FNV-1a 64: cheap, allocation-free and stable across
// processes (ownership must agree between nodes).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
