package peernet

import (
	"encoding/json"
	"fmt"

	"monarch/internal/obs"
)

// statsVersion is the STATS payload version. The response payload is
// one version byte followed by JSON — the snapshot is control-plane
// traffic polled every few seconds, so schema evolvability beats the
// byte-level compactness the data-plane frames need.
const statsVersion byte = 1

// maxStats bounds a STATS response payload. A registry snapshot of a
// node with thousands of series is well under a megabyte; anything
// approaching the data-plane cap is garbage.
const maxStats = maxData

// GossipEntry is one node's opinion of one peer in its membership
// view, as carried in a STATS response.
type GossipEntry struct {
	// Node is the peer this opinion is about.
	Node string `json:"node"`
	// State is the observed PeerState ("alive", "suspect", "dead").
	State string `json:"state"`
}

// JobCounters is the per-job slice of a node's quota ledger.
type JobCounters struct {
	ReadsServed int64 `json:"reads_served"`
	BytesServed int64 `json:"bytes_served"`
	Hits        int64 `json:"hits"`
	Evictions   int64 `json:"evictions"`
}

// NodeStats is one node's observability snapshot as returned by a
// STATS request: its metric registry, its gossip view of the cluster,
// and its per-job quota ledger.
type NodeStats struct {
	// Node is the responding node's name.
	Node string `json:"node"`
	// Metrics is the node's full registry snapshot.
	Metrics obs.Snapshot `json:"metrics"`
	// Gossip is the node's membership view, including its (always
	// Alive) opinion of itself. Empty when the node runs no gossip.
	Gossip []GossipEntry `json:"gossip,omitempty"`
	// Jobs is the per-job quota ledger. Empty on single-tenant nodes.
	Jobs map[string]JobCounters `json:"jobs,omitempty"`
}

// appendStatsResp encodes a STATS response payload.
func appendStatsResp(b []byte, ns NodeStats) ([]byte, error) {
	data, err := json.Marshal(ns)
	if err != nil {
		return nil, err
	}
	b = append(b, statsVersion)
	return append(b, data...), nil
}

// parseStatsResp decodes a STATS response payload.
func parseStatsResp(p []byte) (NodeStats, error) {
	var ns NodeStats
	if len(p) < 1 {
		return ns, fmt.Errorf("%w: empty STATS response", errMalformed)
	}
	if p[0] != statsVersion {
		return ns, fmt.Errorf("%w: STATS version %d unsupported", errMalformed, p[0])
	}
	if len(p) > maxStats {
		return ns, fmt.Errorf("%w: STATS payload %d bytes exceeds cap", errMalformed, len(p))
	}
	if err := json.Unmarshal(p[1:], &ns); err != nil {
		return ns, fmt.Errorf("%w: STATS body: %v", errMalformed, err)
	}
	return ns, nil
}
