package peernet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzFrame throws arbitrary bytes at the wire decode path: the frame
// reader first, then every payload parser against each decoded frame.
// The invariants are "no panic" and "no unbounded allocation" —
// malformed lengths, truncated frames and oversize payloads must come
// back as errors. The seed corpus in testdata/fuzz/FuzzFrame pins the
// regressions found while developing the codec.
func FuzzFrame(f *testing.F) {
	// Well-formed frames, so the fuzzer starts from parseable inputs.
	f.Add([]byte{0, 0, 0, 1, OpPing})
	f.Add([]byte{0, 0, 0, 1, OpList})
	var read []byte
	read = appendReadReq(read, "data/shard-0001.rec", 4096, 65536)
	var frame bytes.Buffer
	writeFrame(&frame, OpRead, read)
	f.Add(frame.Bytes())
	var list bytes.Buffer
	writeFrame(&list, StatusOK, appendListResp(nil, []listEntry{
		{name: "a.rec", size: 10}, {name: "b.rec", size: 20},
	}))
	f.Add(list.Bytes())
	var usage bytes.Buffer
	writeFrame(&usage, StatusOK, appendUsageResp(nil, 1<<30, 1<<20))
	f.Add(usage.Bytes())
	// Mutation ops: a WRITE (name + raw data payload), an empty-data
	// WRITE, a REMOVE, and a WRITE whose name length overruns the
	// payload — parseString must bound-check before slicing data off.
	var write bytes.Buffer
	writeFrame(&write, OpWrite, append(appendString(nil, "ckpt/shard-0"), []byte("checkpoint bytes")...))
	f.Add(write.Bytes())
	var writeEmpty bytes.Buffer
	writeFrame(&writeEmpty, OpWrite, appendString(nil, "empty"))
	f.Add(writeEmpty.Bytes())
	var remove bytes.Buffer
	writeFrame(&remove, OpRemove, appendString(nil, "ckpt/old"))
	f.Add(remove.Bytes())
	f.Add([]byte{0, 0, 0, 4, OpWrite, 0xff, 0xff, 'x'})
	// Heartbeat payloads: a gossiped view, an empty view, and the
	// count-overrun shape that parseHeartbeat must bound-check.
	var hb bytes.Buffer
	writeFrame(&hb, OpPing, appendHeartbeat(nil, "node0", []HeartbeatEntry{
		{Node: "node1", Age: 0}, {Node: "node2", Age: 1500 * time.Millisecond},
	}))
	f.Add(hb.Bytes())
	var hbEmpty bytes.Buffer
	writeFrame(&hbEmpty, OpPing, appendHeartbeat(nil, "solo", nil))
	f.Add(hbEmpty.Bytes())
	var hbBad bytes.Buffer
	writeFrame(&hbBad, OpPing, []byte{0, 1, 's', 0xff, 0xff, 0xff, 0xff})
	f.Add(hbBad.Bytes())
	// A STATS response and an ID-stamped request: the version byte,
	// JSON body and the 8-byte correlation ID all sit on the decode
	// path.
	var stats bytes.Buffer
	statsPayload, _ := appendStatsResp(nil, NodeStats{
		Node:   "node0",
		Gossip: []GossipEntry{{Node: "node1", State: "alive"}},
		Jobs:   map[string]JobCounters{"resnet": {ReadsServed: 3, Hits: 2}},
	})
	writeFrame(&stats, StatusOK, statsPayload)
	f.Add(stats.Bytes())
	var reqID bytes.Buffer
	writeFrameID(&reqID, OpRead, 0xdeadbeefcafe, read)
	f.Add(reqID.Bytes())
	var statsReq bytes.Buffer
	writeFrameID(&statsReq, OpStats, 1, nil)
	f.Add(statsReq.Bytes())
	// Malformed shapes: zero length, huge length, truncated body, an
	// ID flag with fewer than 8 ID bytes behind it, a bad STATS version.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 1, 0, OpStat, 0, 50, 'a', 'b'})
	f.Add([]byte{0, 0, 0, 4, OpRead | 0x40, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 3, StatusOK, 0xff, '{'})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			code, req, payload, err := readFrame(r)
			if err != nil {
				break
			}
			// The ID flag must be stripped from decoded codes, and an
			// absent ID decodes as zero.
			if code&0x80 == 0 && code&0x40 != 0 {
				t.Fatalf("undecoded request-ID flag on code %#x", code)
			}
			_ = req
			// A decoded frame's length prefix can never exceed what the
			// input held.
			if len(payload)+1 > len(data) {
				t.Fatalf("payload %d bytes from %d input bytes", len(payload), len(data))
			}
			_ = code
			// Run every parser over the payload; they must error or
			// succeed, never panic, regardless of which op the payload
			// was really for.
			if s, rest, err := parseString(payload); err == nil {
				if len(s)+len(rest) > len(payload) {
					t.Fatal("parseString conjured bytes")
				}
			}
			parseReadReq(payload)
			if entries, err := parseListResp(payload); err == nil {
				for _, e := range entries {
					if len(e.name) > len(payload) {
						t.Fatal("parseListResp conjured a name")
					}
				}
			}
			parseUsageResp(payload)
			parseI64(payload)
			parseU32(payload)
			if sender, entries, err := parseHeartbeat(payload); err == nil {
				if len(sender) > len(payload) || len(entries) > len(payload) {
					t.Fatal("parseHeartbeat conjured data")
				}
			}
			if ns, err := parseStatsResp(payload); err == nil {
				if len(ns.Node) > len(payload) {
					t.Fatal("parseStatsResp conjured a node name")
				}
			}
		}
	})
}

// FuzzRoundtrip checks encode→decode identity for request/response
// payloads built from fuzzed fields.
func FuzzRoundtrip(f *testing.F) {
	f.Add("data/x.rec", int64(0), uint32(1024))
	f.Add("", int64(-1), uint32(0))
	f.Fuzz(func(t *testing.T, name string, off int64, n uint32) {
		if len(name) > 0xffff {
			name = name[:0xffff]
		}
		if n > maxData {
			n = maxData
		}
		payload := appendReadReq(nil, name, off, n)
		var buf bytes.Buffer
		if err := writeFrame(&buf, OpRead, payload); err != nil {
			t.Fatal(err)
		}
		code, _, got, err := readFrame(&buf)
		if err != nil || code != OpRead {
			t.Fatalf("decode: code=%#x err=%v", code, err)
		}
		rq, err := parseReadReq(got)
		if err != nil {
			t.Fatal(err)
		}
		if rq.name != name || rq.off != off || rq.n != n {
			t.Fatalf("roundtrip mismatch: %+v", rq)
		}
	})
}

// FuzzHeartbeat checks encode→decode identity for gossiped views built
// from fuzzed fields, and that the decoder never accepts trailing junk.
func FuzzHeartbeat(f *testing.F) {
	f.Add("node0", "node1", int64(0), "node2", int64(1500))
	f.Add("", "", int64(-1), "", int64(1<<40))
	f.Fuzz(func(t *testing.T, sender, n1 string, age1 int64, n2 string, age2 int64) {
		if len(sender) > 0xffff {
			sender = sender[:0xffff]
		}
		if len(n1) > 0xffff {
			n1 = n1[:0xffff]
		}
		if len(n2) > 0xffff {
			n2 = n2[:0xffff]
		}
		entries := []HeartbeatEntry{
			{Node: n1, Age: time.Duration(age1) * time.Millisecond},
			{Node: n2, Age: time.Duration(age2) * time.Millisecond},
		}
		payload := appendHeartbeat(nil, sender, entries)
		gotSender, got, err := parseHeartbeat(payload)
		if err != nil {
			t.Fatalf("decode of encoded view: %v", err)
		}
		if gotSender != sender || len(got) != len(entries) {
			t.Fatalf("roundtrip: sender=%q entries=%d", gotSender, len(got))
		}
		for i := range entries {
			// Ages travel as u64 nanos, clamped at zero on encode
			// (negative silence does not exist).
			want := entries[i].Age
			if want < 0 {
				want = 0
			}
			if got[i].Node != entries[i].Node || got[i].Age != want {
				t.Fatalf("entry %d: got %+v want {%s %v}", i, got[i], entries[i].Node, want)
			}
		}
		if _, _, err := parseHeartbeat(append(payload, 0)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
}

// TestFrameRejectsOversize pins the MaxFrame guard on both sides.
func TestFrameRejectsOversize(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, _, _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversize length accepted")
	}
	if err := writeFrame(&bytes.Buffer{}, OpWrite, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversize write accepted")
	}
}
