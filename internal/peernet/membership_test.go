package peernet

import (
	"reflect"
	"sort"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for membership tests.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time          { return f.now }
func (f *fakeClock) Advance(d time.Duration) { f.now = f.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func (f *fakeClock) config(self string, peers ...string) MembershipConfig {
	return MembershipConfig{
		Self:         self,
		Peers:        peers,
		SuspectAfter: time.Second,
		DeadAfter:    3 * time.Second,
		Clock:        f.Now,
	}
}

func TestMembershipStateTransitions(t *testing.T) {
	clk := newFakeClock()
	var transitions []string
	cfg := clk.config("a", "b")
	cfg.OnChange = func(peer string, from, to PeerState) {
		transitions = append(transitions, peer+":"+from.String()+">"+to.String())
	}
	m, err := NewMembership(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if got := m.State("b"); got != PeerAlive {
		t.Fatalf("initial state = %v, want alive", got)
	}
	clk.Advance(1500 * time.Millisecond)
	if got := m.State("b"); got != PeerSuspect {
		t.Fatalf("after 1.5s silence = %v, want suspect", got)
	}
	clk.Advance(2 * time.Second) // 3.5s total
	if got := m.State("b"); got != PeerDead {
		t.Fatalf("after 3.5s silence = %v, want dead", got)
	}
	m.Tick()
	m.ObserveAlive("b")
	if got := m.State("b"); got != PeerAlive {
		t.Fatalf("after resurrection = %v, want alive", got)
	}
	want := []string{"b:alive>dead", "b:dead>alive"}
	if !reflect.DeepEqual(transitions, want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}

	// Self is always alive; unknown peers are never routable.
	if m.State("a") != PeerAlive {
		t.Fatal("self not alive")
	}
	if m.State("stranger") != PeerDead {
		t.Fatal("unknown peer not dead")
	}
}

func TestMembershipMergeKeepsFreshestEvidence(t *testing.T) {
	clk := newFakeClock()
	m, err := NewMembership(clk.config("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(4 * time.Second) // everyone silent past DeadAfter
	if m.State("b") != PeerDead || m.State("c") != PeerDead {
		t.Fatal("peers not dead after silence")
	}

	// Gossip: someone reached b half a second ago — fresh enough to
	// resurrect. The stale entry about c (reached 10s ago) is older
	// than local evidence and must not move anything.
	m.Merge([]HeartbeatEntry{
		{Node: "b", Age: 500 * time.Millisecond},
		{Node: "c", Age: 10 * time.Second},
		{Node: "a", Age: time.Hour}, // self: ignored outright
	})
	if got := m.State("b"); got != PeerAlive {
		t.Fatalf("b after fresh gossip = %v, want alive", got)
	}
	if got := m.State("c"); got != PeerDead {
		t.Fatalf("c after stale gossip = %v, want dead", got)
	}
	if got := m.LiveCount(); got != 1 {
		t.Fatalf("live count = %d, want 1", got)
	}
}

// TestMembershipViewNeverVouchesForSelf pins the anti-entropy rule that
// keeps a half-dead node from keeping itself alive: a node whose
// serving socket is gone can still send heartbeats, so if views carried
// a self entry at age zero, every receiver would merge it and the
// cluster would never converge on Dead.
func TestMembershipViewNeverVouchesForSelf(t *testing.T) {
	clk := newFakeClock()
	m, err := NewMembership(clk.config("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	m.ObserveAlive("b")
	view := m.View()
	var nodes []string
	for _, e := range view {
		if e.Node == "a" {
			t.Fatalf("view carries a self entry: %+v", view)
		}
		nodes = append(nodes, e.Node)
	}
	sort.Strings(nodes)
	if !reflect.DeepEqual(nodes, []string{"b", "c"}) {
		t.Fatalf("view nodes = %v", nodes)
	}
	for _, e := range view {
		switch e.Node {
		case "b":
			if e.Age != 0 {
				t.Fatalf("b's age = %v, want 0", e.Age)
			}
		case "c":
			if e.Age != 2*time.Second {
				t.Fatalf("c's age = %v, want 2s", e.Age)
			}
		}
	}
}

func TestMembershipValidation(t *testing.T) {
	if _, err := NewMembership(MembershipConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewMembership(MembershipConfig{Self: "a", Peers: []string{"a"}}); err == nil {
		t.Fatal("self as peer accepted")
	}
	if _, err := NewMembership(MembershipConfig{Self: "a", Peers: []string{"b", "b"}}); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if _, err := NewMembership(MembershipConfig{
		Self: "a", Peers: []string{"b"},
		SuspectAfter: time.Second, DeadAfter: time.Second,
	}); err == nil {
		t.Fatal("DeadAfter <= SuspectAfter accepted")
	}
}

func TestHeartbeatCodecRoundtrip(t *testing.T) {
	entries := []HeartbeatEntry{
		{Node: "node1", Age: 0},
		{Node: "node2", Age: 1500 * time.Millisecond},
		{Node: "a-much-longer-node-name", Age: time.Hour},
	}
	payload := appendHeartbeat(nil, "sender", entries)
	sender, got, err := parseHeartbeat(payload)
	if err != nil {
		t.Fatal(err)
	}
	if sender != "sender" || !reflect.DeepEqual(got, entries) {
		t.Fatalf("roundtrip: sender=%q entries=%+v", sender, got)
	}

	// Empty view roundtrips too (a lone node still heartbeats).
	payload = appendHeartbeat(nil, "solo", nil)
	sender, got, err = parseHeartbeat(payload)
	if err != nil || sender != "solo" || len(got) != 0 {
		t.Fatalf("empty view: sender=%q entries=%v err=%v", sender, got, err)
	}
}

func TestHeartbeatCodecRejectsMalformed(t *testing.T) {
	good := appendHeartbeat(nil, "s", []HeartbeatEntry{{Node: "n", Age: time.Second}})
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0xff),
		"count overrun":  {0, 1, 's', 0xff, 0xff, 0xff, 0xff},
	}
	for name, payload := range cases {
		if _, _, err := parseHeartbeat(payload); err == nil {
			t.Errorf("%s: malformed heartbeat accepted", name)
		}
	}
}
