package peernet

import (
	"context"
	"fmt"
	"sort"

	"monarch/internal/obs"
	"monarch/internal/storage"
)

// Tier aggregates the peer clients of one node into a single
// storage.Backend that slots into the MONARCH hierarchy between local
// SSD and the PFS. Reads route to the owner of the requested name on
// the consistent-hash ring; names this node owns report ErrNotExist
// (they are served by the local tier above, never the peer network).
//
// A Tier is deliberately hostile to placement: Capacity()==Used()==1
// makes storage.Free report zero, so the placement handler skips it as
// a destination without any peer-specific logic in core. Mutations
// return ErrReadOnly for the same reason.
type Tier struct {
	name    string
	self    string
	ring    *Ring
	clients map[string]*Client
}

// NewTier builds the peer tier for node self. clients must hold one
// entry per *other* ring member (self excluded).
func NewTier(name, self string, ring *Ring, clients map[string]*Client) (*Tier, error) {
	if ring == nil {
		return nil, fmt.Errorf("peernet: tier needs a ring")
	}
	found := false
	for _, n := range ring.Nodes() {
		if n == self {
			found = true
			continue
		}
		if clients[n] == nil {
			return nil, fmt.Errorf("peernet: tier missing a client for ring member %q", n)
		}
	}
	if !found {
		return nil, fmt.Errorf("peernet: node %q is not a ring member", self)
	}
	if name == "" {
		name = "peers"
	}
	return &Tier{name: name, self: self, ring: ring, clients: clients}, nil
}

// Name implements storage.Backend.
func (t *Tier) Name() string { return t.name }

// owner resolves the client serving name, or nil when this node owns
// it.
func (t *Tier) owner(name string) *Client {
	o := t.ring.Owner(name)
	if o == t.self {
		return nil
	}
	return t.clients[o]
}

// Stat implements storage.Backend.
func (t *Tier) Stat(ctx context.Context, name string) (storage.FileInfo, error) {
	c := t.owner(name)
	if c == nil {
		return storage.FileInfo{}, fmt.Errorf("peernet: %q is owned locally: %w", name, storage.ErrNotExist)
	}
	return c.Stat(ctx, name)
}

// ReadAt implements storage.Backend.
func (t *Tier) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	c := t.owner(name)
	if c == nil {
		return 0, fmt.Errorf("peernet: %q is owned locally: %w", name, storage.ErrNotExist)
	}
	return c.ReadAt(ctx, name, p, off)
}

// ReadFile implements storage.Backend.
func (t *Tier) ReadFile(ctx context.Context, name string) ([]byte, error) {
	c := t.owner(name)
	if c == nil {
		return nil, fmt.Errorf("peernet: %q is owned locally: %w", name, storage.ErrNotExist)
	}
	return c.ReadFile(ctx, name)
}

// List implements storage.Backend: the union of every peer's listing,
// sorted by name.
func (t *Tier) List(ctx context.Context) ([]storage.FileInfo, error) {
	var all []storage.FileInfo
	for _, node := range t.ring.Nodes() {
		if node == t.self {
			continue
		}
		infos, err := t.clients[node].List(ctx)
		if err != nil {
			return nil, err
		}
		all = append(all, infos...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all, nil
}

// WriteFile implements storage.Backend; the peer tier is read-only.
func (t *Tier) WriteFile(ctx context.Context, name string, data []byte) error {
	return fmt.Errorf("peernet: %s: %w", t.name, storage.ErrReadOnly)
}

// Remove implements storage.Backend; the peer tier is read-only.
func (t *Tier) Remove(ctx context.Context, name string) error {
	return fmt.Errorf("peernet: %s: %w", t.name, storage.ErrReadOnly)
}

// Capacity and Used report a full 1-byte quota so storage.Free is
// zero and placement never targets the peer tier.

// Capacity implements storage.Backend.
func (t *Tier) Capacity() int64 { return 1 }

// Used implements storage.Backend.
func (t *Tier) Used() int64 { return 1 }

// Ping implements storage.Pinger: alive only when every peer answers.
// Conservative on purpose — with a single breaker guarding the whole
// tier, reporting "up" while one peer is dead would flap the tier on
// every read routed to that peer. Per-peer breakers are future work.
func (t *Tier) Ping(ctx context.Context) error {
	for _, node := range t.ring.Nodes() {
		if node == t.self {
			continue
		}
		if err := t.clients[node].Ping(ctx); err != nil {
			return fmt.Errorf("peernet: peer %s: %w", node, err)
		}
	}
	return nil
}

// Instrument implements obs.Instrumentable by fanning out to every
// client; each registers its own per-peer series.
func (t *Tier) Instrument(r *obs.Registry, labels ...obs.Label) {
	for _, node := range t.ring.Nodes() {
		if node == t.self {
			continue
		}
		t.clients[node].Instrument(r, labels...)
	}
}

// Close closes every client.
func (t *Tier) Close() error {
	for _, c := range t.clients {
		c.Close()
	}
	return nil
}
