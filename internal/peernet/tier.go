package peernet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"monarch/internal/obs"
	"monarch/internal/storage"
)

// Tier aggregates the peer clients of one node into a single
// storage.Backend that slots into the MONARCH hierarchy between local
// SSD and the PFS. Reads route to the replica set of the requested
// name on the consistent-hash ring, in ring order: if the primary
// fails, the next replica is tried before the error ever reaches the
// middleware — a killed primary costs a tier-internal retry, not a
// PFS fallback. A Membership view (optional) filters replicas by
// liveness so dead peers are skipped without burning a dial timeout,
// and a HedgeConfig (optional) races a second replica when the
// primary's response blows past its adaptive latency threshold.
//
// A Tier is deliberately hostile to placement: Capacity()==Used()==1
// makes storage.Free report zero, so the placement handler skips it as
// a destination without any peer-specific logic in core. Mutations
// return ErrReadOnly for the same reason.
type Tier struct {
	name       string
	self       string
	ring       *Ring
	clients    map[string]*Client
	replicas   int
	membership *Membership
	hedge      HedgeConfig

	hedges    atomic.Int64 // hedge requests launched
	hedgeWins atomic.Int64 // hedges whose result served the read
}

// HedgeConfig tunes hedged reads. The zero value disables them.
type HedgeConfig struct {
	// Enabled turns hedging on.
	Enabled bool
	// Quantile of the primary's latency distribution that arms the
	// hedge timer (default 0.99).
	Quantile float64
	// MinSamples is how many round trips the primary must have served
	// before the quantile is trusted; below it no hedge fires
	// (default 32).
	MinSamples int
	// Floor is the minimum hedge delay, so a peer whose p99 is
	// microseconds does not hedge on scheduler noise (default 1ms).
	Floor time.Duration
}

// TierConfig assembles a Tier.
type TierConfig struct {
	// Name is the backend name ("peers" when empty).
	Name string
	// Self is this node's ring ID.
	Self string
	// Ring is the cluster's ownership ring.
	Ring *Ring
	// Clients holds one client per *other* ring member.
	Clients map[string]*Client
	// Replicas is the replica-set width R (default 1: primary only).
	Replicas int
	// Membership, when set, filters replicas by liveness: Dead peers
	// are skipped (tried only if every replica is Dead — the view may
	// be stale), and Ping requires only live peers to answer.
	Membership *Membership
	// Hedge tunes hedged reads against slow primaries.
	Hedge HedgeConfig
}

// NewTier builds a single-replica peer tier — the pre-replication
// shape, kept for callers that want the minimal wiring.
func NewTier(name, self string, ring *Ring, clients map[string]*Client) (*Tier, error) {
	return NewTierWithConfig(TierConfig{Name: name, Self: self, Ring: ring, Clients: clients})
}

// NewTierWithConfig validates cfg, applies defaults and builds a Tier.
func NewTierWithConfig(cfg TierConfig) (*Tier, error) {
	if cfg.Ring == nil {
		return nil, fmt.Errorf("peernet: tier needs a ring")
	}
	found := false
	for _, n := range cfg.Ring.Nodes() {
		if n == cfg.Self {
			found = true
			continue
		}
		if cfg.Clients[n] == nil {
			return nil, fmt.Errorf("peernet: tier missing a client for ring member %q", n)
		}
	}
	if !found {
		return nil, fmt.Errorf("peernet: node %q is not a ring member", cfg.Self)
	}
	if cfg.Name == "" {
		cfg.Name = "peers"
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(cfg.Ring.Nodes()) {
		return nil, fmt.Errorf("peernet: %d replicas exceed the %d ring members",
			cfg.Replicas, len(cfg.Ring.Nodes()))
	}
	if cfg.Hedge.Quantile <= 0 || cfg.Hedge.Quantile >= 1 {
		cfg.Hedge.Quantile = 0.99
	}
	if cfg.Hedge.MinSamples <= 0 {
		cfg.Hedge.MinSamples = 32
	}
	if cfg.Hedge.Floor <= 0 {
		cfg.Hedge.Floor = time.Millisecond
	}
	return &Tier{
		name:       cfg.Name,
		self:       cfg.Self,
		ring:       cfg.Ring,
		clients:    cfg.Clients,
		replicas:   cfg.Replicas,
		membership: cfg.Membership,
		hedge:      cfg.Hedge,
	}, nil
}

// Name implements storage.Backend.
func (t *Tier) Name() string { return t.name }

// candidate is one routable replica.
type candidate struct {
	node string
	c    *Client
}

// candidates resolves the replica set for name in try-order: replicas
// the membership view calls Alive first (ring order), then Suspect
// ones, with self excluded. Dead replicas are returned only when the
// whole set is Dead — the view can be stale, and trying is cheaper
// than declaring a miss on hearsay. An empty result means this node is
// the only replica.
func (t *Tier) candidates(name string) []candidate {
	owners := t.ring.OwnersOf(name, t.replicas)
	var live, suspect, dead []candidate
	for _, node := range owners {
		if node == t.self {
			continue
		}
		c := t.clients[node]
		if c == nil {
			continue
		}
		cand := candidate{node: node, c: c}
		if t.membership == nil {
			live = append(live, cand)
			continue
		}
		switch t.membership.State(node) {
		case PeerAlive:
			live = append(live, cand)
		case PeerSuspect:
			suspect = append(suspect, cand)
		default:
			dead = append(dead, cand)
		}
	}
	out := append(live, suspect...)
	if len(out) == 0 {
		out = dead
	}
	return out
}

// pickErr reduces the per-replica failures of one operation: a clean
// miss (every consulted replica definitively lacks the file) beats a
// transport error, so the middleware re-reads the source as a peer
// miss instead of tripping the breaker; but any hard failure without a
// miss propagates as one.
func pickErr(missErr, lastErr error) error {
	if missErr != nil {
		return missErr
	}
	return lastErr
}

// Stat implements storage.Backend, failing over across the replica
// set.
func (t *Tier) Stat(ctx context.Context, name string) (storage.FileInfo, error) {
	cands := t.candidates(name)
	if len(cands) == 0 {
		return storage.FileInfo{}, fmt.Errorf("peernet: %q is owned locally: %w", name, storage.ErrNotExist)
	}
	var missErr, lastErr error
	for _, cand := range cands {
		fi, err := cand.c.Stat(ctx, name)
		if err == nil {
			return fi, nil
		}
		if errors.Is(err, storage.ErrNotExist) {
			missErr = err
		} else {
			lastErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	return storage.FileInfo{}, pickErr(missErr, lastErr)
}

// ReadAt implements storage.Backend: the primary replica first (hedged
// against its own tail latency when configured), then the remaining
// replicas in ring order. Successful hedged reads are flagged through
// the context's obs.ReadAnnotation so the read span records them.
func (t *Tier) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	cands := t.candidates(name)
	if len(cands) == 0 {
		return 0, fmt.Errorf("peernet: %q is owned locally: %w", name, storage.ErrNotExist)
	}
	var missErr, lastErr error
	i := 0
	for i < len(cands) {
		var n int
		var err error
		if i == 0 && len(cands) > 1 {
			var consumed int
			var hedged bool
			n, err, consumed, hedged = t.hedgedRead(ctx, name, p, off, cands[0], cands[1])
			i += consumed
			if hedged && err == nil {
				obs.ReadAnnotationFrom(ctx).Annotate(obs.FlagHedged)
			}
		} else {
			n, err = cands[i].c.ReadAt(ctx, name, p, off)
			i++
		}
		if err == nil {
			return n, nil
		}
		if errors.Is(err, storage.ErrNotExist) {
			missErr = err
		} else {
			lastErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	return 0, pickErr(missErr, lastErr)
}

// hedgeThreshold returns the delay after which a read of c should be
// hedged, or 0 when hedging must not fire (disabled, or too few
// samples to trust the quantile).
func (t *Tier) hedgeThreshold(c *Client) time.Duration {
	if !t.hedge.Enabled {
		return 0
	}
	q, n := c.LatencyQuantile(t.hedge.Quantile)
	if n < uint64(t.hedge.MinSamples) {
		return 0
	}
	d := time.Duration(q * float64(time.Second))
	if d < t.hedge.Floor {
		d = t.hedge.Floor
	}
	return d
}

// hedgedRead reads from primary, racing backup if primary's response
// exceeds its adaptive threshold. Returns how many candidates were
// consumed (1: primary only, 2: hedge fired) and whether it fired.
// The winner's bytes land in p; the loser is cancelled and its
// connection unblocked by the client's deadline watchdog.
func (t *Tier) hedgedRead(ctx context.Context, name string, p []byte, off int64, primary, backup candidate) (int, error, int, bool) {
	threshold := t.hedgeThreshold(primary.c)
	if threshold <= 0 {
		n, err := primary.c.ReadAt(ctx, name, p, off)
		return n, err, 1, false
	}

	type result struct {
		n   int
		err error
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	pch := make(chan result, 1)
	go func() {
		n, err := primary.c.ReadAt(pctx, name, p, off)
		pch <- result{n, err}
	}()

	timer := time.NewTimer(threshold)
	defer timer.Stop()
	select {
	case r := <-pch:
		return r.n, r.err, 1, false
	case <-timer.C:
	}

	// The primary is past its p99: race the next replica. It reads
	// into a private buffer so the two writers never share p.
	t.hedges.Add(1)
	bctx, bcancel := context.WithCancel(ctx)
	defer bcancel()
	bbuf := make([]byte, len(p))
	bch := make(chan result, 1)
	go func() {
		n, err := backup.c.ReadAt(bctx, name, bbuf, off)
		bch <- result{n, err}
	}()

	var pres, bres *result
	for {
		select {
		case r := <-pch:
			pres = &r
			if r.err == nil {
				bcancel() // loser keeps writing only its own buffer
				return r.n, nil, 2, true
			}
		case r := <-bch:
			bres = &r
			if r.err == nil {
				pcancel()
				if pres == nil {
					// The primary writes the caller's buffer; it must
					// finish (promptly, its deadline is now forced)
					// before the winner's bytes overwrite it.
					<-pch
				}
				copy(p, bbuf[:r.n])
				t.hedgeWins.Add(1)
				return r.n, nil, 2, true
			}
		}
		if pres != nil && bres != nil {
			if errors.Is(pres.err, storage.ErrNotExist) {
				return 0, pres.err, 2, true
			}
			if errors.Is(bres.err, storage.ErrNotExist) {
				return 0, bres.err, 2, true
			}
			return 0, pres.err, 2, true
		}
	}
}

// ReadFile implements storage.Backend through the tier's own Stat and
// ReadAt, so it inherits replica failover and hedging.
func (t *Tier) ReadFile(ctx context.Context, name string) ([]byte, error) {
	fi, err := t.Stat(ctx, name)
	if err != nil {
		return nil, err
	}
	data := make([]byte, fi.Size)
	n, err := t.ReadAt(ctx, name, data, 0)
	if err != nil {
		return nil, err
	}
	return data[:n], nil
}

// List implements storage.Backend: the union of every live peer's
// listing, sorted by name. Peers the membership view calls Dead are
// skipped rather than failing the whole listing.
func (t *Tier) List(ctx context.Context) ([]storage.FileInfo, error) {
	var all []storage.FileInfo
	for _, node := range t.ring.Nodes() {
		if node == t.self {
			continue
		}
		if t.membership != nil && t.membership.State(node) == PeerDead {
			continue
		}
		infos, err := t.clients[node].List(ctx)
		if err != nil {
			return nil, err
		}
		all = append(all, infos...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all, nil
}

// WriteFile implements storage.Backend; the peer tier is read-only.
func (t *Tier) WriteFile(ctx context.Context, name string, data []byte) error {
	return fmt.Errorf("peernet: %s: %w", t.name, storage.ErrReadOnly)
}

// Remove implements storage.Backend; the peer tier is read-only.
func (t *Tier) Remove(ctx context.Context, name string) error {
	return fmt.Errorf("peernet: %s: %w", t.name, storage.ErrReadOnly)
}

// Capacity and Used report a full 1-byte quota so storage.Free is
// zero and placement never targets the peer tier.

// Capacity implements storage.Backend.
func (t *Tier) Capacity() int64 { return 1 }

// Used implements storage.Backend.
func (t *Tier) Used() int64 { return 1 }

// Ping implements storage.Pinger. Without a membership view it is
// conservative: every peer must answer, because with a single breaker
// guarding the whole tier, reporting "up" while one peer is dead would
// flap the tier on every read routed to that peer. With a view, peers
// it calls Dead are excused — replication covers their shards — and
// the tier is down only when no peer is live at all.
func (t *Tier) Ping(ctx context.Context) error {
	live := 0
	for _, node := range t.ring.Nodes() {
		if node == t.self {
			continue
		}
		if t.membership != nil && t.membership.State(node) == PeerDead {
			continue
		}
		if err := t.clients[node].Ping(ctx); err != nil {
			return fmt.Errorf("peernet: peer %s: %w", node, err)
		}
		live++
	}
	if live == 0 && len(t.ring.Nodes()) > 1 {
		return fmt.Errorf("peernet: %s: no live peers", t.name)
	}
	return nil
}

// Hedges reports how many hedge requests have been launched.
func (t *Tier) Hedges() int64 { return t.hedges.Load() }

// HedgeWins reports how many hedges served their read.
func (t *Tier) HedgeWins() int64 { return t.hedgeWins.Load() }

// Instrument implements obs.Instrumentable: every client registers its
// per-peer series, the membership view (if any) its state gauges, and
// the tier its hedge counters.
func (t *Tier) Instrument(r *obs.Registry, labels ...obs.Label) {
	for _, node := range t.ring.Nodes() {
		if node == t.self {
			continue
		}
		t.clients[node].Instrument(r, labels...)
	}
	if t.membership != nil {
		t.membership.Instrument(r, labels...)
	}
	r.CounterFunc("monarch_peer_hedges_total",
		"Hedge requests raced against a slow primary replica.",
		t.hedges.Load, labels...)
	r.CounterFunc("monarch_peer_hedge_wins_total",
		"Hedge requests whose response served the read.",
		t.hedgeWins.Load, labels...)
}

// Close closes every client.
func (t *Tier) Close() error {
	for _, c := range t.clients {
		c.Close()
	}
	return nil
}
