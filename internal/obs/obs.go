// Package obs is MONARCH's observability substrate: a lock-cheap
// metrics registry (counters, gauges, bounded histograms), typed trace
// spans for the hot read/placement paths, and two sinks — a
// Prometheus-text/JSON HTTP endpoint and a point-in-time snapshot.
//
// The paper evaluates MONARCH through externally observed I/O counters
// (ops submitted to Lustre, bytes per tier, training time); this
// package makes the same signals — plus the internals the paper cannot
// see, like breaker flips and chunk-copy progress — first-class, so
// every policy decision is explainable from a scrape.
//
// Design rules:
//
//   - handles, not lookups: instrumented code holds *Counter /
//     *Gauge / *Histogram pointers obtained once at wiring time; the
//     hot path is a single atomic op, never a map access or a lock;
//   - derived values are functions: queue depth, breaker state and hit
//     ratio are registered as CounterFunc/GaugeFunc closures evaluated
//     at collection time, so they can never drift from the source of
//     truth (this is also how core.Stats stays a read-only view);
//   - snapshots are "consistent enough": per-metric loads are atomic
//     but the snapshot as a whole is not a transaction, matching the
//     guarantees of storage.Counting.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value dimension of a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric. The zero value is
// unusable; obtain handles from Registry.Counter. All methods are
// nil-safe so optional instrumentation can stay unconditional.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is a programming error but is
// not checked on the hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bounded-bucket distribution: observations land in the
// first bucket whose upper bound is >= the value, plus an implicit +Inf
// bucket. Buckets are fixed at registration, so Observe is a short
// linear scan and two atomic adds — no allocation, no lock.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// NewHistogram builds a standalone histogram with the given upper
// bounds (nil defaults to LatencyBuckets) — for components that need a
// distribution before (or without) a registry, like the peer client's
// always-on latency record behind hedged-read thresholds. Registering
// the same name via Registry.Histogram yields an independent series;
// standalone histograms are private to their owner.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Quantile estimates the q-quantile (q in [0,1]) from the live bucket
// counts, interpolating linearly within the crossing bucket — the same
// estimate Snapshot's HistogramPoint.Quantile reports, computed
// without building a snapshot. Observations beyond the last finite
// bound clamp to it; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	count := h.count.Load()
	if count == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	prevLE, cum := 0.0, uint64(0)
	for i, le := range h.bounds {
		prev := cum
		cum += h.counts[i].Load()
		if float64(cum) >= rank && cum > prev {
			frac := (rank - float64(prev)) / float64(cum-prev)
			return prevLE + (le-prevLE)*frac
		}
		prevLE = le
	}
	return h.bounds[len(h.bounds)-1]
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets are the default histogram bounds for operation
// latencies in seconds: 1µs to 10s, one decade per bucket — wide
// enough to cover a memfs copy and a cold PFS fetch alike.
var LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one labelled instance of a metric family. Exactly one of
// the value fields is set.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() int64
	gf     func() float64
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series map[string]*series // by label signature
}

// Registry holds metric families and hands out handles. Registration
// takes a lock; handle operations do not. Registering the same
// name+labels again returns the existing handle, so wiring code can be
// idempotent.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// signature builds the canonical label key for a series; labels are
// sorted by name so registration order never matters.
func signature(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(0xff)
		b.WriteString(l.Value)
		b.WriteByte(0xfe)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ensure returns the family for name, creating it with help/typ on
// first use and panicking on a type conflict — a conflict is always a
// wiring bug, and failing fast beats exposing garbage.
func (r *Registry) ensure(name, help string, typ metricType) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (r *Registry) lookup(name, help string, typ metricType, labels []Label) (*family, []Label, *series) {
	labels = sortLabels(labels)
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Name, name))
		}
	}
	f := r.ensure(name, help, typ)
	return f, labels, f.series[signature(labels)]
}

// Counter registers (or finds) a counter series and returns its handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ls, s := r.lookup(name, help, typeCounter, labels)
	if s != nil {
		if s.c == nil {
			panic(fmt.Sprintf("obs: metric %q is func-backed, cannot return a handle", name))
		}
		return s.c
	}
	s = &series{labels: ls, c: &Counter{}}
	f.series[signature(ls)] = s
	return s.c
}

// Gauge registers (or finds) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ls, s := r.lookup(name, help, typeGauge, labels)
	if s != nil {
		if s.g == nil {
			panic(fmt.Sprintf("obs: metric %q is func-backed, cannot return a handle", name))
		}
		return s.g
	}
	s = &series{labels: ls, g: &Gauge{}}
	f.series[signature(ls)] = s
	return s.g
}

// Histogram registers (or finds) a histogram series with the given
// upper bounds (nil defaults to LatencyBuckets) and returns its handle.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ls, s := r.lookup(name, help, typeHistogram, labels)
	if s != nil {
		return s.h
	}
	if buckets == nil {
		buckets = LatencyBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	s = &series{labels: ls, h: &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}}
	f.series[signature(ls)] = s
	return s.h
}

// CounterFunc registers a counter series whose value is read from fn at
// collection time — the mechanism that keeps derived views (e.g.
// storage.Counting totals) in lock-step with their source of truth.
// Registering a duplicate series panics.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ls, s := r.lookup(name, help, typeCounter, labels)
	if s != nil {
		panic(fmt.Sprintf("obs: duplicate registration of %q", name))
	}
	f.series[signature(ls)] = &series{labels: ls, cf: fn}
}

// GaugeFunc registers a gauge series whose value is read from fn at
// collection time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ls, s := r.lookup(name, help, typeGauge, labels)
	if s != nil {
		panic(fmt.Sprintf("obs: duplicate registration of %q", name))
	}
	f.series[signature(ls)] = &series{labels: ls, gf: fn}
}

// sortedFamilies returns families by name and each family's series by
// label signature — the deterministic order every sink emits.
func (r *Registry) sortedFamilies() []*family {
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	out := make([]*series, 0, len(sigs))
	for _, sig := range sigs {
		out = append(out, f.series[sig])
	}
	return out
}

// value evaluates a counter/gauge series.
func (s *series) value() float64 {
	switch {
	case s.c != nil:
		return float64(s.c.Value())
	case s.cf != nil:
		return float64(s.cf())
	case s.g != nil:
		return s.g.Value()
	case s.gf != nil:
		return s.gf()
	default:
		return 0
	}
}
