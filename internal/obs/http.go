package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// HandlerOpts tunes the HTTP handler returned by HandlerWith.
type HandlerOpts struct {
	// DisablePprof drops the net/http/pprof handlers from the mux. By
	// default they are served under /debug/pprof/ so a live instance can
	// be profiled through the same port that exports its metrics.
	DisablePprof bool
	// Health, when set, serves GET /healthz: the JSON summary it
	// returns, with status 200 while Healthy() and 503 once any tier's
	// breaker is down. Evaluated per request, so probes see live
	// breaker state.
	Health func() Health
	// Routes mounts extra handlers on the mux by pattern — the hook the
	// cluster aggregator uses for /metrics/cluster and /cluster.json,
	// and monarch-serve for /debug/gossip. Patterns must not collide
	// with the built-in ones.
	Routes map[string]http.Handler
}

// TierHealth is one tier's circuit-breaker state in a health summary.
type TierHealth struct {
	Tier  int    `json:"tier"`
	Name  string `json:"name"`
	State string `json:"state"` // "healthy", "suspect" or "down"
}

// Health is the summary served by /healthz: enough to answer "is this
// node degraded, and why" in one probe — breaker states, the node's
// own gossip view, and whether the trace ring has been dropping.
type Health struct {
	// Status is "ok" or "down"; filled by the handler from Healthy().
	Status string `json:"status"`
	// Tiers lists every breaker-guarded tier and its state.
	Tiers []TierHealth `json:"tiers,omitempty"`
	// Gossip is this node's membership view (peer → state). Empty when
	// the node runs no gossip.
	Gossip map[string]string `json:"gossip,omitempty"`
	// TraceDrops counts trace events lost to a full ring buffer.
	TraceDrops int64 `json:"trace_drops"`
}

// Healthy reports whether the node should answer probes with 200: it
// is false only when a tier's breaker is open (state "down") — suspect
// tiers and trace drops degrade the summary without failing it.
func (h Health) Healthy() bool {
	for _, t := range h.Tiers {
		if t.State == "down" {
			return false
		}
	}
	return true
}

// Handler serves the registry over HTTP:
//
//	GET /metrics       Prometheus text exposition (scrape target)
//	GET /metrics.json  JSON snapshot (consumed by monarch-inspect)
//	GET /debug/vars    expvar-style flat map of counter/gauge values
//	GET /debug/pprof/  runtime profiles (net/http/pprof)
//
// Non-GET requests get 405; the handler evaluates func-backed metrics
// at request time, so a scrape always reflects live queue depth and
// breaker state. Use HandlerWith to opt out of the pprof endpoints.
func (r *Registry) Handler() http.Handler { return r.HandlerWith(HandlerOpts{}) }

// HandlerWith is Handler with explicit options.
func (r *Registry) HandlerWith(opts HandlerOpts) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	}))
	mux.HandleFunc("/metrics.json", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	}))
	mux.HandleFunc("/debug/vars", getOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Vars())
	}))
	if opts.Health != nil {
		mux.HandleFunc("/healthz", getOnly(func(w http.ResponseWriter, _ *http.Request) {
			h := opts.Health()
			h.Status = "ok"
			w.Header().Set("Content-Type", "application/json")
			if !h.Healthy() {
				h.Status = "down"
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(h)
		}))
	}
	for pattern, h := range opts.Routes {
		mux.Handle(pattern, h)
	}
	if !opts.DisablePprof {
		// The default pprof handlers hang off http.DefaultServeMux; wire
		// them into this mux explicitly so instances never leak profiles
		// onto servers that share the process.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// getOnly rejects non-GET/HEAD methods with 405: every endpoint here is
// a read-only view, and a POST reaching it is a misconfigured scraper.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, req)
	}
}

// Vars flattens every counter and gauge into an expvar-style map keyed
// by the series' exposition name (histograms are summarised as _count
// and _sum). Keys are deterministic, values are evaluated live.
func (r *Registry) Vars() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			key := seriesKey(f.name, s.labels)
			if s.h != nil {
				out[seriesKey(f.name+"_count", s.labels)] = float64(s.h.Count())
				out[seriesKey(f.name+"_sum", s.labels)] = s.h.Sum()
				continue
			}
			out[key] = s.value()
		}
	}
	return out
}

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	key := name + "{"
	for i, l := range labels {
		if i > 0 {
			key += ","
		}
		key += l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return key + "}"
}
