package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry over HTTP:
//
//	GET /metrics       Prometheus text exposition (scrape target)
//	GET /metrics.json  JSON snapshot (consumed by monarch-inspect)
//	GET /debug/vars    expvar-style flat map of counter/gauge values
//
// The handler evaluates func-backed metrics at request time, so a
// scrape always reflects live queue depth and breaker state.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Vars())
	})
	return mux
}

// Vars flattens every counter and gauge into an expvar-style map keyed
// by the series' exposition name (histograms are summarised as _count
// and _sum). Keys are deterministic, values are evaluated live.
func (r *Registry) Vars() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			key := seriesKey(f.name, s.labels)
			if s.h != nil {
				out[seriesKey(f.name+"_count", s.labels)] = float64(s.h.Count())
				out[seriesKey(f.name+"_sum", s.labels)] = s.h.Sum()
				continue
			}
			out[key] = s.value()
		}
	}
	return out
}

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	key := name + "{"
	for i, l := range labels {
		if i > 0 {
			key += ","
		}
		key += l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return key + "}"
}
