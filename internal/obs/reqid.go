package obs

import (
	"context"
	"math/rand"
	"sync/atomic"
)

// Request IDs correlate one foreground read across nodes: minted where
// the read enters the middleware, carried in the peernet frame header,
// and stamped into both the client-side read span and the remote
// node's serve span, so a trace analyzer can stitch the pair and price
// true end-to-end peer latency.
//
// An ID is 64 bits: a random 32-bit process prefix (so IDs minted by
// different nodes never collide in a merged trace) over a 32-bit
// counter. Zero is reserved for "no ID".

// reqPrefix is this process's random ID prefix.
var reqPrefix = uint64(rand.Uint32()) << 32

// reqCounter numbers IDs within the process.
var reqCounter atomic.Uint64

// NewRequestID mints a process-unique, never-zero request ID.
func NewRequestID() uint64 {
	id := reqPrefix | (reqCounter.Add(1) & 0xffffffff)
	if id == 0 {
		id = reqPrefix | 1
	}
	return id
}

// reqIDKey keys a request ID in a context.
type reqIDKey struct{}

// WithRequestID derives a context carrying id.
func WithRequestID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom extracts the request ID, or 0 when none is set.
func RequestIDFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(reqIDKey{}).(uint64)
	return id
}
