package obs

import (
	"context"
	"testing"
)

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == 0 || b == 0 {
		t.Fatal("request IDs must never be zero (zero means unset)")
	}
	if a == b {
		t.Fatalf("consecutive IDs collide: %016x", a)
	}
	if a>>32 != b>>32 {
		t.Fatalf("IDs from one process must share the prefix: %016x vs %016x", a, b)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestIDFrom(ctx); got != 0 {
		t.Fatalf("bare context carries ID %016x, want 0", got)
	}
	ctx = WithRequestID(ctx, 0xdeadbeef)
	if got := RequestIDFrom(ctx); got != 0xdeadbeef {
		t.Fatalf("roundtrip = %016x, want deadbeef", got)
	}
}
