package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` headers per
// family, one sample line per series, histograms as cumulative
// `_bucket{le=...}` plus `_sum` and `_count`. Output order is
// deterministic (name, then label signature), so the format is
// golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for _, s := range f.sortedSeries() {
			if s.h != nil {
				writeHistogram(bw, f.name, s)
				continue
			}
			writeSample(bw, f.name, s.labels, "", s.value())
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, name string, s *series) {
	var cum uint64
	for i, b := range s.h.bounds {
		cum += s.h.counts[i].Load()
		writeSample(bw, name+"_bucket", s.labels, formatLE(b), float64(cum))
	}
	cum += s.h.counts[len(s.h.bounds)].Load()
	writeSample(bw, name+"_bucket", s.labels, "+Inf", float64(cum))
	writeSample(bw, name+"_sum", s.labels, "", s.h.Sum())
	writeSample(bw, name+"_count", s.labels, "", float64(s.h.Count()))
}

// WriteMetricPoints renders a pre-built point list (a Snapshot's
// Metrics, or a merged fleet view) in the same text exposition format
// as WritePrometheus. Points must arrive grouped by name — `# HELP` /
// `# TYPE` headers are emitted whenever the name changes, taken from
// the group's first point. Labels render in sorted order, so output
// is deterministic for identical input.
func WriteMetricPoints(w io.Writer, points []MetricPoint) error {
	bw := bufio.NewWriter(w)
	prev := ""
	for _, p := range points {
		if p.Name != prev {
			prev = p.Name
			if p.Help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(p.Name)
				bw.WriteByte(' ')
				bw.WriteString(escapeHelp(p.Help))
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(p.Name)
			bw.WriteByte(' ')
			bw.WriteString(p.Type)
			bw.WriteByte('\n')
		}
		labels := sortedPointLabels(p.Labels)
		if h := p.Histogram; h != nil {
			for _, b := range h.Buckets {
				writeSample(bw, p.Name+"_bucket", labels, formatLE(b.LE), float64(b.Count))
			}
			writeSample(bw, p.Name+"_bucket", labels, "+Inf", float64(h.Count))
			writeSample(bw, p.Name+"_sum", labels, "", h.Sum)
			writeSample(bw, p.Name+"_count", labels, "", float64(h.Count))
			continue
		}
		v := 0.0
		if p.Value != nil {
			v = *p.Value
		}
		writeSample(bw, p.Name, labels, "", v)
	}
	return bw.Flush()
}

// sortedPointLabels converts a point's label map to a sorted slice.
func sortedPointLabels(m map[string]string) []Label {
	if len(m) == 0 {
		return nil
	}
	out := make([]Label, 0, len(m))
	for k, v := range m {
		out = append(out, Label{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// writeSample emits one line: name{labels[,le="?"]} value. le, when
// non-empty, is appended as the histogram bucket bound.
func writeSample(bw *bufio.Writer, name string, labels []Label, le string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// formatValue renders integers without an exponent and everything else
// in Go's shortest float form, matching common Prometheus client
// output.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLE(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
