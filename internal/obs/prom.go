package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` headers per
// family, one sample line per series, histograms as cumulative
// `_bucket{le=...}` plus `_sum` and `_count`. Output order is
// deterministic (name, then label signature), so the format is
// golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for _, s := range f.sortedSeries() {
			if s.h != nil {
				writeHistogram(bw, f.name, s)
				continue
			}
			writeSample(bw, f.name, s.labels, "", s.value())
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, name string, s *series) {
	var cum uint64
	for i, b := range s.h.bounds {
		cum += s.h.counts[i].Load()
		writeSample(bw, name+"_bucket", s.labels, formatLE(b), float64(cum))
	}
	cum += s.h.counts[len(s.h.bounds)].Load()
	writeSample(bw, name+"_bucket", s.labels, "+Inf", float64(cum))
	writeSample(bw, name+"_sum", s.labels, "", s.h.Sum())
	writeSample(bw, name+"_count", s.labels, "", float64(s.h.Count()))
}

// writeSample emits one line: name{labels[,le="?"]} value. le, when
// non-empty, is appended as the histogram bucket bound.
func writeSample(bw *bufio.Writer, name string, labels []Label, le string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// formatValue renders integers without an exponent and everything else
// in Go's shortest float form, matching common Prometheus client
// output.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLE(b float64) string {
	if math.IsInf(b, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
