package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"monarch/internal/obs"
	"monarch/internal/peernet"
	"monarch/internal/storage"
)

var update = flag.Bool("update", false, "rewrite golden files")

// nodeRegistry builds a deterministic registry for a fake node: the
// same families every node exports, with node-dependent values, plus
// one series only some nodes carry (exercising partial overlap).
func nodeRegistry(node int) *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("demo_reads_total", "Reads per tier.", obs.L("tier", "0")).Add(int64(10 * (node + 1)))
	r.Counter("demo_reads_total", "Reads per tier.", obs.L("tier", "1")).Add(int64(node + 1))
	r.Gauge("demo_queue_depth", "Queue depth.").Set(float64(node))
	h := r.Histogram("demo_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for i := 0; i <= node; i++ {
		h.Observe(0.05)
		h.Observe(5)
	}
	if node%2 == 1 {
		r.Counter("demo_odd_total", "Only odd nodes.").Add(int64(node))
	}
	return r
}

func nodeStats(node int) peernet.NodeStats {
	return peernet.NodeStats{
		Node:    fmt.Sprintf("node%d", node),
		Metrics: nodeRegistry(node).Snapshot(),
	}
}

// TestMergeSumsEverySeries is the aggregation property test: for every
// series of every node, the fleet value must equal the sum of that
// series across the per-node registries — no series lost, none
// double-counted.
func TestMergeSumsEverySeries(t *testing.T) {
	const n = 4
	nodes := make([]peernet.NodeStats, n)
	for i := range nodes {
		nodes[i] = nodeStats(i)
	}
	fleet := Merge(nodes)

	// Sum every per-node series independently of Merge's bookkeeping.
	wantValues := map[string]float64{}
	wantCounts := map[string]uint64{}
	for _, ns := range nodes {
		for _, p := range ns.Metrics.Metrics {
			id := seriesID(p.Name, p.Labels)
			if p.Value != nil {
				wantValues[id] += *p.Value
			}
			if p.Histogram != nil {
				wantCounts[id] += p.Histogram.Count
			}
		}
	}
	gotSeries := map[string]bool{}
	for _, p := range fleet.Metrics {
		id := seriesID(p.Name, p.Labels)
		if gotSeries[id] {
			t.Fatalf("fleet holds series %q twice", id)
		}
		gotSeries[id] = true
		if p.Value != nil {
			if got, want := *p.Value, wantValues[id]; got != want {
				t.Errorf("fleet %q = %v, want sum %v", id, got, want)
			}
			delete(wantValues, id)
		}
		if p.Histogram != nil {
			if got, want := p.Histogram.Count, wantCounts[id]; got != want {
				t.Errorf("fleet %q count = %d, want %d", id, got, want)
			}
			delete(wantCounts, id)
		}
	}
	for id := range wantValues {
		t.Errorf("series %q missing from the fleet view", id)
	}
	for id := range wantCounts {
		t.Errorf("histogram %q missing from the fleet view", id)
	}
}

func TestMergeRecomputesHistogramQuantiles(t *testing.T) {
	nodes := []peernet.NodeStats{nodeStats(0), nodeStats(3)}
	fleet := Merge(nodes)
	hp, ok := fleet.Hist("demo_latency_seconds")
	if !ok {
		t.Fatal("merged histogram missing")
	}
	if hp.Count != 2+8 {
		t.Fatalf("merged count = %d, want 10", hp.Count)
	}
	if hp.P50 != hp.Quantile(0.50) || hp.P99 != hp.Quantile(0.99) {
		t.Fatalf("quantiles not recomputed from merged buckets: %+v", hp)
	}
	// Buckets are cumulative: the last finite bucket holds every
	// observation (nothing in this fixture lands past the top bound).
	if last := hp.Buckets[len(hp.Buckets)-1].Count; last != hp.Count {
		t.Fatalf("last cumulative bucket = %d, total says %d", last, hp.Count)
	}
}

func TestDisagreements(t *testing.T) {
	nodes := []peernet.NodeStats{
		{Node: "node0", Gossip: []peernet.GossipEntry{
			{Node: "node2", State: "alive"}, {Node: "node3", State: "alive"},
		}},
		{Node: "node1", Gossip: []peernet.GossipEntry{
			{Node: "node2", State: "dead"}, {Node: "node3", State: "alive"},
		}},
	}
	d := disagreements(nodes)
	if len(d) != 1 || d[0].Subject != "node2" {
		t.Fatalf("disagreements = %+v, want exactly one about node2", d)
	}
	if d[0].Views["node0"] != "alive" || d[0].Views["node1"] != "dead" {
		t.Fatalf("views = %v", d[0].Views)
	}
}

func TestMergeJobs(t *testing.T) {
	nodes := []peernet.NodeStats{
		{Node: "a", Jobs: map[string]peernet.JobCounters{
			"resnet": {ReadsServed: 10, BytesServed: 100, Hits: 7, Evictions: 1},
		}},
		{Node: "b", Jobs: map[string]peernet.JobCounters{
			"resnet": {ReadsServed: 5, BytesServed: 50, Hits: 2},
			"bert":   {ReadsServed: 3},
		}},
	}
	jobs := mergeJobs(nodes)
	if got := jobs["resnet"]; got != (peernet.JobCounters{ReadsServed: 15, BytesServed: 150, Hits: 9, Evictions: 1}) {
		t.Fatalf("resnet = %+v", got)
	}
	if got := jobs["bert"]; got.ReadsServed != 3 {
		t.Fatalf("bert = %+v", got)
	}
}

// TestPollOverWire drives the real path: two peernet servers answering
// STATS frames over pipe transports, one unreachable source, plus a
// local self — the aggregator must merge the reachable ones and report
// the failure instead of erroring.
func TestPollOverWire(t *testing.T) {
	mkServer := func(node int) *peernet.Server {
		srv, err := peernet.NewServer(peernet.ServerConfig{
			Backend: storage.NewMemFS("ssd", 0),
			Stats:   func() (peernet.NodeStats, error) { return nodeStats(node), nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	var clients []*peernet.Client
	mkClient := func(name string, dial peernet.Dialer) *peernet.Client {
		c, err := peernet.NewClient(peernet.ClientConfig{
			Name: name, Dial: dial, Timeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		return c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	s1, s2 := mkServer(1), mkServer(2)
	defer s1.Close()
	defer s2.Close()
	agg := New(Config{
		Self: func() (peernet.NodeStats, error) { return nodeStats(0), nil },
		Sources: []Source{
			{Node: "node1", Client: mkClient("peer:node1", peernet.PipeDialer(s1))},
			{Node: "node2", Client: mkClient("peer:node2", peernet.PipeDialer(s2))},
			{Node: "node9", Client: mkClient("peer:node9", func(ctx context.Context) (net.Conn, error) {
				return nil, fmt.Errorf("connection refused")
			})},
		},
		Timeout: 5 * time.Second,
	})
	snap, err := agg.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Nodes) != 3 {
		t.Fatalf("reached %d nodes, want 3", len(snap.Nodes))
	}
	for i, want := range []string{"node0", "node1", "node2"} {
		if snap.Nodes[i].Node != want {
			t.Fatalf("nodes[%d] = %q, want %q (sorted)", i, snap.Nodes[i].Node, want)
		}
	}
	if len(snap.Unreachable) != 1 || snap.Unreachable["node9"] == "" {
		t.Fatalf("unreachable = %v, want node9 reported", snap.Unreachable)
	}
	// 10+20+30 from tier 0 across nodes 0..2.
	if got, _ := snap.Fleet.Value("demo_reads_total", obs.L("tier", "0")); got != 60 {
		t.Fatalf("fleet demo_reads_total{tier=0} = %v, want 60", got)
	}
}

func TestPollAllUnreachable(t *testing.T) {
	c, err := peernet.NewClient(peernet.ClientConfig{
		Name: "peer:gone",
		Dial: func(ctx context.Context) (net.Conn, error) { return nil, fmt.Errorf("refused") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	agg := New(Config{Sources: []Source{{Node: "gone", Client: c}}, Timeout: time.Second})
	if _, err := agg.Poll(context.Background()); err == nil {
		t.Fatal("Poll with zero reachable nodes returned nil error")
	}
}

// TestServerWithoutStatsRejects pins the downgrade path: a server with
// no stats source answers STATS with a remote error, not a hang or a
// cut connection.
func TestServerWithoutStatsRejects(t *testing.T) {
	srv, err := peernet.NewServer(peernet.ServerConfig{Backend: storage.NewMemFS("ssd", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := peernet.NewClient(peernet.ClientConfig{Name: "peer:old", Dial: peernet.PipeDialer(srv)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("Stats against a stats-less server returned nil error")
	}
}

// TestClusterGolden locks the /metrics/cluster exposition down
// byte-for-byte: fleet series first within each family, then per-node
// series with the injected node label.
// Regenerate with: go test ./internal/obs/cluster -run TestClusterGolden -update
func TestClusterGolden(t *testing.T) {
	nodes := []peernet.NodeStats{nodeStats(0), nodeStats(1)}
	snap := Snapshot{Nodes: nodes, Fleet: Merge(nodes)}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, snap); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("cluster exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestRoutesOnObsMux mounts the aggregator on the obs handler the way
// monarch-serve does and scrapes both endpoints over HTTP.
func TestRoutesOnObsMux(t *testing.T) {
	srv, err := peernet.NewServer(peernet.ServerConfig{
		Backend: storage.NewMemFS("ssd", 0),
		Stats:   func() (peernet.NodeStats, error) { return nodeStats(1), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := peernet.NewClient(peernet.ClientConfig{Name: "peer:node1", Dial: peernet.PipeDialer(srv)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	agg := New(Config{
		Self:    func() (peernet.NodeStats, error) { return nodeStats(0), nil },
		Sources: []Source{{Node: "node1", Client: c}},
	})
	reg := obs.NewRegistry()
	web := httptest.NewServer(reg.HandlerWith(obs.HandlerOpts{Routes: agg.Routes()}))
	defer web.Close()

	resp, err := web.Client().Get(web.URL + "/metrics/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics/cluster = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(body.String(), `demo_reads_total{node="node1",tier="0"}`) {
		t.Fatalf("exposition missing per-node series:\n%s", body.String())
	}

	resp, err = web.Client().Get(web.URL + "/cluster.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Nodes) != 2 {
		t.Fatalf("/cluster.json holds %d nodes, want 2", len(snap.Nodes))
	}
	if v, _ := snap.Fleet.Value("demo_queue_depth"); v != 1 {
		t.Fatalf("fleet demo_queue_depth = %v, want 1", v)
	}
}
