package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"

	"monarch/internal/obs"
)

// WriteMetrics renders a fleet snapshot in the Prometheus text
// exposition format: for each family, the fleet-summed series first,
// then every node's own series with a `node` label — one scrape
// answers both "what is the cluster doing" and "which node is the
// outlier". Output is deterministic for identical input, so the
// format is golden-testable.
func WriteMetrics(w io.Writer, snap Snapshot) error {
	points := make([]obs.MetricPoint, 0,
		len(snap.Fleet.Metrics)*(len(snap.Nodes)+1))
	points = append(points, snap.Fleet.Metrics...)
	for _, n := range snap.Nodes {
		for _, p := range n.Metrics.Metrics {
			labels := make(map[string]string, len(p.Labels)+1)
			for k, v := range p.Labels {
				labels[k] = v
			}
			labels["node"] = n.Node
			p.Labels = labels
			points = append(points, p)
		}
	}
	// Group by family; the stable sort keeps fleet series ahead of the
	// per-node ones and preserves node order within a family.
	sort.SliceStable(points, func(i, j int) bool { return points[i].Name < points[j].Name })
	return obs.WriteMetricPoints(w, points)
}

// MetricsHandler serves GET /metrics/cluster: one poll per scrape,
// rendered through WriteMetrics. Poll failures surface as 502 — a
// scrape that cannot see the fleet must not masquerade as an empty
// fleet.
func (a *Aggregator) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap, err := a.Poll(req.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, snap)
	})
}

// JSONHandler serves GET /cluster.json: the full Snapshot, indented —
// the feed monarch-inspect top renders.
func (a *Aggregator) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap, err := a.Poll(req.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}

// Routes returns the obs.HandlerOpts route map exposing this
// aggregator on a node's metrics mux.
func (a *Aggregator) Routes() map[string]http.Handler {
	return map[string]http.Handler{
		"/metrics/cluster": a.MetricsHandler(),
		"/cluster.json":    a.JSONHandler(),
	}
}
