// Package cluster aggregates per-node observability into a fleet
// view. MONARCH's value proposition is measured in cluster-wide PFS
// ops saved, but metrics and traces are collected per node; this
// package polls every node's STATS endpoint over the existing peernet
// client (pooled connections, retries, deadlines — nothing new on the
// wire), merges the snapshots into fleet series, and re-exposes them
// on the node's obs HTTP mux as /metrics/cluster (Prometheus text)
// and /cluster.json (structured, consumed by monarch-inspect top).
//
// Merge semantics: counters and gauges sum across nodes; histograms
// with identical bucket layouts sum pointwise (every in-tree latency
// histogram uses obs.LatencyBuckets, so layouts match in practice)
// and re-derive their quantiles from the merged buckets. Per-node
// breakdowns survive in the exposition as the same series with a
// `node` label, and per-job ledgers roll up across nodes. Gossip
// views are compared pairwise: when two observers disagree about a
// peer's state, the disagreement is surfaced instead of averaged
// away — a stuck view is exactly what a chaos drill needs to see.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"monarch/internal/obs"
	"monarch/internal/peernet"
)

// Source is one pollable node.
type Source struct {
	// Node is the node's name, used to label its series in the fleet
	// exposition.
	Node string
	// Client speaks to the node's peer server (which must run with a
	// stats source).
	Client *peernet.Client
}

// Config assembles an Aggregator.
type Config struct {
	// Self, when set, contributes the local node's snapshot without a
	// wire hop — an aggregator usually runs on a node that is itself
	// part of the fleet.
	Self func() (peernet.NodeStats, error)
	// Sources are the remote nodes to poll.
	Sources []Source
	// Timeout bounds one whole poll fan-out (default 5s).
	Timeout time.Duration
}

// Aggregator polls a fleet and merges the results.
type Aggregator struct {
	cfg Config
}

// New builds an Aggregator.
func New(cfg Config) *Aggregator {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	return &Aggregator{cfg: cfg}
}

// Disagreement records a gossip split: observers that hold different
// opinions of the same peer's state.
type Disagreement struct {
	// Subject is the peer being disagreed about.
	Subject string `json:"subject"`
	// Views maps observer → the state it reports for Subject.
	Views map[string]string `json:"views"`
}

// Snapshot is one aggregation round over the fleet.
type Snapshot struct {
	// Nodes holds every reachable node's snapshot, sorted by name.
	Nodes []peernet.NodeStats `json:"nodes"`
	// Unreachable maps nodes that failed to answer to the error text.
	Unreachable map[string]string `json:"unreachable,omitempty"`
	// Fleet is the merged registry view: counters and gauges summed,
	// histograms bucket-merged, deterministic order.
	Fleet obs.Snapshot `json:"fleet"`
	// Jobs rolls the per-node quota ledgers up across the fleet.
	Jobs map[string]peernet.JobCounters `json:"jobs,omitempty"`
	// Disagreements lists gossip splits between node views.
	Disagreements []Disagreement `json:"disagreements,omitempty"`
}

// Poll fans one STATS request out to every source (and the local Self,
// if any), then merges whatever answered. It fails only when not a
// single node could be snapshotted; partial fleets are normal during
// churn and are reported through Unreachable instead.
func (a *Aggregator) Poll(ctx context.Context) (Snapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, a.cfg.Timeout)
	defer cancel()

	type result struct {
		node string
		ns   peernet.NodeStats
		err  error
	}
	results := make([]result, len(a.cfg.Sources)+1)
	var wg sync.WaitGroup
	for i, src := range a.cfg.Sources {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ns, err := src.Client.Stats(ctx)
			results[i] = result{node: src.Node, ns: ns, err: err}
		}()
	}
	last := &results[len(a.cfg.Sources)]
	if a.cfg.Self != nil {
		ns, err := a.cfg.Self()
		*last = result{node: ns.Node, ns: ns, err: err}
		if last.node == "" {
			last.node = "self"
		}
	} else {
		last.err = fmt.Errorf("no local source")
		last.node = ""
	}
	wg.Wait()

	var snap Snapshot
	for _, r := range results {
		if r.node == "" && r.err != nil {
			continue // the absent Self slot
		}
		if r.err != nil {
			if snap.Unreachable == nil {
				snap.Unreachable = make(map[string]string)
			}
			snap.Unreachable[r.node] = r.err.Error()
			continue
		}
		if r.ns.Node == "" {
			r.ns.Node = r.node
		}
		snap.Nodes = append(snap.Nodes, r.ns)
	}
	if len(snap.Nodes) == 0 {
		return snap, fmt.Errorf("cluster: no node answered the stats poll")
	}
	sort.Slice(snap.Nodes, func(i, j int) bool { return snap.Nodes[i].Node < snap.Nodes[j].Node })
	snap.Fleet = Merge(snap.Nodes)
	snap.Jobs = mergeJobs(snap.Nodes)
	snap.Disagreements = disagreements(snap.Nodes)
	return snap, nil
}

// seriesID keys one series by name plus sorted labels.
func seriesID(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte(0xff)
		b.WriteString(k)
		b.WriteByte(0xfe)
		b.WriteString(labels[k])
	}
	return b.String()
}

// Merge folds every node's registry snapshot into fleet series:
// counters and gauges sum per (name, labels); histograms with
// identical bucket layouts sum pointwise and re-derive P50/P95/P99
// from the merged buckets (a layout mismatch keeps the first layout
// and folds in only count and sum — quantiles stay estimable, nothing
// is silently dropped). Output order is deterministic: name, then
// label signature.
func Merge(nodes []peernet.NodeStats) obs.Snapshot {
	merged := make(map[string]*obs.MetricPoint)
	var order []string
	for _, n := range nodes {
		for _, p := range n.Metrics.Metrics {
			id := seriesID(p.Name, p.Labels)
			m, ok := merged[id]
			if !ok {
				cp := p
				if p.Value != nil {
					v := *p.Value
					cp.Value = &v
				}
				if p.Histogram != nil {
					h := *p.Histogram
					h.Buckets = append([]obs.BucketPoint(nil), p.Histogram.Buckets...)
					cp.Histogram = &h
				}
				if p.Labels != nil {
					cp.Labels = make(map[string]string, len(p.Labels))
					for k, v := range p.Labels {
						cp.Labels[k] = v
					}
				}
				merged[id] = &cp
				order = append(order, id)
				continue
			}
			switch {
			case p.Value != nil && m.Value != nil:
				*m.Value += *p.Value
			case p.Histogram != nil && m.Histogram != nil:
				mergeHistogram(m.Histogram, p.Histogram)
			}
		}
	}
	sort.Strings(order)
	var out obs.Snapshot
	for _, id := range order {
		m := merged[id]
		if m.Histogram != nil {
			m.Histogram.P50 = m.Histogram.Quantile(0.50)
			m.Histogram.P95 = m.Histogram.Quantile(0.95)
			m.Histogram.P99 = m.Histogram.Quantile(0.99)
		}
		out.Metrics = append(out.Metrics, *m)
	}
	return out
}

// mergeHistogram folds src into dst.
func mergeHistogram(dst, src *obs.HistogramPoint) {
	dst.Sum += src.Sum
	dst.Count += src.Count
	if len(dst.Buckets) == len(src.Buckets) {
		same := true
		for i := range dst.Buckets {
			if dst.Buckets[i].LE != src.Buckets[i].LE {
				same = false
				break
			}
		}
		if same {
			for i := range dst.Buckets {
				dst.Buckets[i].Count += src.Buckets[i].Count
			}
		}
	}
}

// mergeJobs rolls the per-node job ledgers up across the fleet.
func mergeJobs(nodes []peernet.NodeStats) map[string]peernet.JobCounters {
	var out map[string]peernet.JobCounters
	for _, n := range nodes {
		for job, jc := range n.Jobs {
			if out == nil {
				out = make(map[string]peernet.JobCounters)
			}
			agg := out[job]
			agg.ReadsServed += jc.ReadsServed
			agg.BytesServed += jc.BytesServed
			agg.Hits += jc.Hits
			agg.Evictions += jc.Evictions
			out[job] = agg
		}
	}
	return out
}

// disagreements compares every observer's opinion of every subject and
// returns the splits, sorted by subject. A node absent from a view is
// not an opinion (gossip views deliberately omit nodes never heard
// from), so only explicit conflicting states count.
func disagreements(nodes []peernet.NodeStats) []Disagreement {
	views := make(map[string]map[string]string) // subject -> observer -> state
	for _, n := range nodes {
		for _, g := range n.Gossip {
			m := views[g.Node]
			if m == nil {
				m = make(map[string]string)
				views[g.Node] = m
			}
			m[n.Node] = g.State
		}
	}
	var out []Disagreement
	for subject, opinions := range views {
		distinct := make(map[string]bool)
		for _, state := range opinions {
			distinct[state] = true
		}
		if len(distinct) > 1 {
			out = append(out, Disagreement{Subject: subject, Views: opinions})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out
}
