package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// buildVersion resolves the binary's module version once: the VCS
// revision when the binary was built from a checkout, the module
// version when built from a proper release, "dev" otherwise.
var buildVersion = func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return s.Value[:12]
		}
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}()

// RegisterBuildInfo adds the standard identification series to r:
//
//	monarch_build_info{version,goversion,platform} 1
//	monarch_uptime_seconds                         (derived, live)
//
// start anchors the uptime series; pass the process (or instance)
// start time. Idempotent per registry for the gauge; a second call
// with the same registry would re-register the uptime func and panic,
// so call it once where the registry is built.
func RegisterBuildInfo(r *Registry, start time.Time) {
	g := r.Gauge("monarch_build_info",
		"Build identification; the value is always 1, the labels carry the facts.",
		L("version", buildVersion),
		L("goversion", runtime.Version()),
		L("platform", runtime.GOOS+"-"+runtime.GOARCH))
	g.Set(1)
	r.GaugeFunc("monarch_uptime_seconds",
		"Seconds since this instance started.",
		func() float64 { return time.Since(start).Seconds() })
}
