package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", L("kind", "a"))
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same name+labels returns the same handle.
	if c2 := r.Counter("test_ops_total", "ops", L("kind", "a")); c2 != c {
		t.Fatal("re-registration did not return the existing handle")
	}
	// Different label value is a distinct series.
	if c3 := r.Counter("test_ops_total", "ops", L("kind", "b")); c3 == c {
		t.Fatal("distinct label value shared a handle")
	}

	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}

	// Nil handles are safe no-ops so optional wiring stays unconditional.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
}

func TestLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order produced distinct series")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("conflict_total", "")
}

func TestDuplicateFuncRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("f_total", "", func() int64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate CounterFunc did not panic")
		}
	}()
	r.CounterFunc("f_total", "", func() int64 { return 2 })
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad name", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-102.65) > 1e-9 {
		t.Fatalf("sum = %v, want 102.65", got)
	}
	hp, ok := r.Snapshot().Hist("lat_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Cumulative: <=0.1 holds 2 (0.05 and the boundary value 0.1),
	// <=1 holds 3, <=10 holds 4; +Inf (the count) holds all 5.
	want := []uint64{2, 3, 4}
	for i, b := range hp.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket le=%v count = %d, want %d", b.LE, b.Count, want[i])
		}
	}
}

func TestFuncMetricsEvaluateLive(t *testing.T) {
	r := NewRegistry()
	var n int64
	r.CounterFunc("live_total", "", func() int64 { return n })
	r.GaugeFunc("live_depth", "", func() float64 { return float64(n) * 2 })
	n = 7
	snap := r.Snapshot()
	if v, _ := snap.Value("live_total"); v != 7 {
		t.Fatalf("counterfunc = %v, want 7", v)
	}
	if v, _ := snap.Value("live_depth"); v != 14 {
		t.Fatalf("gaugefunc = %v, want 14", v)
	}
}

// TestConcurrentUpdates hammers one counter, one gauge and one
// histogram from parallel goroutines; run under -race (make race
// covers internal/obs) it doubles as the registry's data-race proof.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_hist", "", []float64{0.5})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64((seed+i)%2)) // alternates 0 and 1
				// Concurrent snapshots must not race with updates.
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Fatalf("gauge = %v, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	if got := h.Sum(); got != total/2 {
		t.Fatalf("histogram sum = %v, want %d", got, total/2)
	}
}

// TestConcurrentRegistration exercises the registration path itself
// under parallelism: all goroutines must converge on the same handle.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	handles := make([]*Counter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i] = r.Counter("shared_total", "", L("x", "y"))
			handles[i].Inc()
		}(w)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if handles[i] != handles[0] {
			t.Fatal("concurrent registration returned distinct handles")
		}
	}
	if got := handles[0].Value(); got != workers {
		t.Fatalf("counter = %d, want %d", got, workers)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b_total", "", L("t", "1")).Add(5)
		r.Counter("a_total", "").Add(1)
		r.Gauge("z_depth", "").Set(2)
		return r
	}
	j1, err := json.Marshal(build().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(build().Snapshot())
	if string(j1) != string(j2) {
		t.Fatalf("snapshots of identical state differ:\n%s\n%s", j1, j2)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_ops_total", "handler ops", L("op", "read")).Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, `h_ops_total{op="read"} 3`) {
		t.Fatalf("/metrics missing sample:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}

	body, ctype = get("/metrics.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json content-type = %q", ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if v, ok := snap.Value("h_ops_total", L("op", "read")); !ok || v != 3 {
		t.Fatalf("/metrics.json value = %v ok=%v, want 3", v, ok)
	}

	body, _ = get("/debug/vars")
	var vars map[string]float64
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	if vars[`h_ops_total{op="read"}`] != 3 {
		t.Fatalf("/debug/vars = %v", vars)
	}
}

func TestSpanString(t *testing.T) {
	s := Span{Kind: SpanRead, File: "f", Tier: 0, Bytes: 64, Duration: 0}
	if got := s.String(); !strings.Contains(got, "read f") || !strings.Contains(got, "tier=0") {
		t.Fatalf("span string = %q", got)
	}
	kinds := []SpanKind{SpanRead, SpanPlacementEnqueue, SpanPlacement, SpanChunkCopy, SpanTierProbe, SpanKind(99)}
	want := []string{"read", "placement-enqueue", "placement", "chunk-copy", "tier-probe", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Fatalf("SpanKind(%d) = %q, want %q", int(k), k, want[i])
		}
	}
}
