package obs

import (
	"context"
	"fmt"
	"time"
)

// SpanKind classifies the typed spans MONARCH's hot paths emit. Spans
// replace ad-hoc log prints: each covers one bounded operation on the
// read → tier probe → placement enqueue → chunk copy pipeline, with its
// duration and outcome attached.
type SpanKind int

const (
	// SpanRead covers one foreground ReadAt, from namespace lookup to
	// the bytes landing in the caller's buffer. Tier is the level that
	// served it.
	SpanRead SpanKind = iota
	// SpanPlacementEnqueue marks a first access handing a file to the
	// placement pool (duration zero: enqueue never blocks).
	SpanPlacementEnqueue
	// SpanPlacement covers one placement reaching a terminal state:
	// placed (Err nil), skipped, or failed. Duration runs from enqueue
	// to resolution, so it includes queue wait — the figure an operator
	// needs to size the pool.
	SpanPlacement
	// SpanChunkCopy covers one chunk of a chunked placement moving from
	// the source to the destination tier.
	SpanChunkCopy
	// SpanTierProbe covers one recovery probe of a Down tier.
	SpanTierProbe
	// SpanEvict covers one eviction: a victim's bytes leaving a tier to
	// make room for a hotter (or quota-entitled) placement. Duration is
	// the backend removal; the eviction itself is also surfaced through
	// the event funnel and the trace's state stream.
	SpanEvict
	// SpanPeerServe covers one READ frame served to a sibling node by
	// the peer cache server. It is the remote half of a peer read: its
	// Req matches the Req of the client-side SpanRead that triggered
	// it, so correlated traces can price true end-to-end peer latency.
	SpanPeerServe
	// SpanWrite covers one foreground WriteAt: from the durability
	// decision to the acknowledgment. Tier is the level that acked the
	// bytes (tier 0 for write-back, the source level for write-through);
	// FlagWriteBack distinguishes the two.
	SpanWrite
	// SpanFlush covers one background flush of a write-back file's dirty
	// bytes from tier 0 to the PFS. Bytes is the file size flushed.
	SpanFlush
	// SpanRemove covers one foreground Remove of a writable file.
	SpanRemove
)

// String names the kind.
func (k SpanKind) String() string {
	switch k {
	case SpanRead:
		return "read"
	case SpanPlacementEnqueue:
		return "placement-enqueue"
	case SpanPlacement:
		return "placement"
	case SpanChunkCopy:
		return "chunk-copy"
	case SpanTierProbe:
		return "tier-probe"
	case SpanEvict:
		return "evict"
	case SpanPeerServe:
		return "peer-serve"
	case SpanWrite:
		return "write"
	case SpanFlush:
		return "flush"
	case SpanRemove:
		return "remove"
	default:
		return "unknown"
	}
}

// SpanFlags qualify how an operation was served, beyond what Kind and
// Tier capture. They exist so downstream consumers (the trace recorder
// in particular) can classify hits without re-deriving middleware
// state.
type SpanFlags uint8

const (
	// FlagPartial marks a read served from an upper tier while that
	// file's chunked placement was still in flight (mid-copy
	// read-through).
	FlagPartial SpanFlags = 1 << iota
	// FlagFallback marks a read that failed on an upper tier and was
	// re-served from the source level.
	FlagFallback
	// FlagReuse marks a placement satisfied by re-using the
	// foreground's full read instead of fetching from the source.
	FlagReuse
	// FlagPeer marks a read served by the peer cache tier: the bytes
	// came from a sibling node over the wire, not from the PFS.
	FlagPeer
	// FlagPeerMiss marks a read that was routed to the peer tier, found
	// the owner had not cached the file, and was re-served from the
	// source. A clean miss — distinct from FlagFallback, which records a
	// tier *failure*.
	FlagPeerMiss
	// FlagHedged marks a peer read whose primary replica blew past the
	// adaptive latency threshold, so a hedge request raced the next
	// replica (whichever answered first served the bytes).
	FlagHedged
	// FlagWriteBack marks a write acknowledged by tier 0 with the PFS
	// flush deferred to the background (vs write-through, which acks
	// only after the PFS has the bytes).
	FlagWriteBack
)

// Span is one completed operation on an instrumented path. Spans are
// delivered synchronously to the Config.Trace hook; hooks must be fast
// and must not block, or they stall the path they observe.
type Span struct {
	Kind     SpanKind
	File     string        // file involved ("" for tier-scoped spans)
	Tier     int           // hierarchy level (-1 when not applicable)
	Off      int64         // byte offset of the operation, if ranged
	Bytes    int64         // payload bytes moved, if any
	Attempt  int           // 1-based placement attempt, if applicable
	Flags    SpanFlags     // hit qualifiers; see SpanFlags
	Req      uint64        // cross-node correlation ID (0 when unset)
	Err      error         // outcome; nil on success
	Duration time.Duration // wall-clock duration (informational under simulation)
}

// String formats the span for logs.
func (s Span) String() string {
	out := s.Kind.String()
	if s.File != "" {
		out += " " + s.File
	}
	if s.Tier >= 0 {
		out += fmt.Sprintf(" tier=%d", s.Tier)
	}
	if s.Off > 0 {
		out += fmt.Sprintf(" off=%d", s.Off)
	}
	if s.Bytes > 0 {
		out += fmt.Sprintf(" bytes=%d", s.Bytes)
	}
	if s.Attempt > 0 {
		out += fmt.Sprintf(" attempt=%d", s.Attempt)
	}
	if s.Flags&FlagPartial != 0 {
		out += " partial"
	}
	if s.Flags&FlagFallback != 0 {
		out += " fallback"
	}
	if s.Flags&FlagReuse != 0 {
		out += " reuse"
	}
	if s.Flags&FlagPeer != 0 {
		out += " peer"
	}
	if s.Flags&FlagPeerMiss != 0 {
		out += " peer-miss"
	}
	if s.Flags&FlagHedged != 0 {
		out += " hedged"
	}
	if s.Flags&FlagWriteBack != 0 {
		out += " write-back"
	}
	if s.Req != 0 {
		out += fmt.Sprintf(" req=%016x", s.Req)
	}
	out += fmt.Sprintf(" dur=%s", s.Duration)
	if s.Err != nil {
		out += fmt.Sprintf(" err=%q", s.Err)
	}
	return out
}

// TraceHook receives completed spans.
type TraceHook func(Span)

// MultiHook fans one span stream out to several hooks, skipping nil
// entries. It returns nil when no hook remains, so callers can keep
// their usual `if hook != nil` fast path, and returns a lone survivor
// directly to avoid a wrapper on the hot path.
func MultiHook(hooks ...TraceHook) TraceHook {
	live := hooks[:0:0]
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(s Span) {
		for _, h := range live {
			h(s)
		}
	}
}

// Instrumentable is implemented by components (storage wrappers, pools)
// that can register their own metrics into a registry; extra labels
// identify the instance (e.g. its hierarchy tier).
type Instrumentable interface {
	Instrument(r *Registry, labels ...Label)
}

// readAnnKey keys a *ReadAnnotation in a context.
type readAnnKey struct{}

// ReadAnnotation is a flag backchannel from a backend to the span its
// read runs under. storage.Backend.ReadAt returns only (n, err), so a
// backend that wants to qualify how it served — the peer tier marking
// a hedged read — sets flags here; the middleware ORs them into the
// read span before emitting it. Writes happen before the backend call
// returns and reads after, on the caller's goroutine, so no locking.
type ReadAnnotation struct {
	flags SpanFlags
}

// Annotate marks the operation with f.
func (a *ReadAnnotation) Annotate(f SpanFlags) {
	if a != nil {
		a.flags |= f
	}
}

// Flags returns the accumulated flags.
func (a *ReadAnnotation) Flags() SpanFlags {
	if a == nil {
		return 0
	}
	return a.flags
}

// WithReadAnnotation derives a context carrying a fresh annotation.
func WithReadAnnotation(ctx context.Context) (context.Context, *ReadAnnotation) {
	a := &ReadAnnotation{}
	return context.WithValue(ctx, readAnnKey{}, a), a
}

// ReadAnnotationFrom extracts the annotation, or nil.
func ReadAnnotationFrom(ctx context.Context) *ReadAnnotation {
	a, _ := ctx.Value(readAnnKey{}).(*ReadAnnotation)
	return a
}
