package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with every series shape the
// exposition format has to render: plain and labelled counters, a
// help-less gauge, a func-backed counter, a labelled histogram, and a
// label value that needs escaping. All values are exact in binary so
// the rendered text is bit-stable.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("demo_files_total", "Per-file ops.", L("file", "a\"b\nc")).Inc()
	h := r.Histogram("demo_latency_seconds", "Latency.", []float64{1, 4}, L("tier", "0"))
	for _, v := range []float64{0.25, 0.5, 2, 8} {
		h.Observe(v)
	}
	r.CounterFunc("demo_live_total", "Live.", func() int64 { return 42 })
	r.Gauge("demo_queue_depth", "").Set(2.5)
	r.Counter("demo_reads_total", "Reads per tier.", L("tier", "0")).Add(5)
	r.Counter("demo_reads_total", "Reads per tier.", L("tier", "1")).Add(7)
	return r
}

// TestPrometheusGolden locks the exposition format down byte-for-byte.
// Regenerate with: go test ./internal/obs -run TestPrometheusGolden -update
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition format drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Rendering twice must be byte-identical (map iteration must not
	// leak into the output order).
	var buf2 bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two renders of identical state differ")
	}
}
