package obs

import "math"

// Snapshot is a point-in-time, JSON-serialisable view of a registry.
// Order is deterministic: metric name, then label signature — so two
// snapshots of identical state marshal to identical bytes.
type Snapshot struct {
	Metrics []MetricPoint `json:"metrics"`
}

// MetricPoint is one series at snapshot time. Counters and gauges carry
// Value; histograms carry Histogram instead.
type MetricPoint struct {
	Name      string            `json:"name"`
	Type      string            `json:"type"`
	Help      string            `json:"help,omitempty"`
	Labels    map[string]string `json:"labels,omitempty"`
	Value     *float64          `json:"value,omitempty"`
	Histogram *HistogramPoint   `json:"histogram,omitempty"`
}

// HistogramPoint is a histogram's cumulative buckets plus sum/count.
// P50/P95/P99 are Prometheus-style estimates interpolated from the
// cumulative buckets at snapshot time (0 while the histogram is empty);
// they exist so JSON consumers get latency summaries without
// re-implementing the bucket walk.
type HistogramPoint struct {
	Buckets []BucketPoint `json:"buckets"`
	Sum     float64       `json:"sum"`
	Count   uint64        `json:"count"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
}

// Quantile estimates the q-quantile (q in [0,1]) from the cumulative
// buckets, interpolating linearly within the bucket that crosses the
// target rank — the same estimate Prometheus' histogram_quantile
// computes. Observations beyond the last finite bound clamp to that
// bound (an unbounded bucket has no interpolable width). Returns 0 for
// an empty histogram.
func (h *HistogramPoint) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	lastFinite := h.Buckets[len(h.Buckets)-1].LE
	prevLE, prevCount := 0.0, uint64(0)
	for _, b := range h.Buckets {
		if float64(b.Count) >= rank && b.Count > prevCount {
			frac := (rank - float64(prevCount)) / float64(b.Count-prevCount)
			return prevLE + (b.LE-prevLE)*frac
		}
		prevLE, prevCount = b.LE, b.Count
	}
	// Rank falls in the implicit +Inf bucket: clamp to the largest
	// finite bound.
	return lastFinite
}

// BucketPoint is one cumulative bucket: observations <= LE (the final
// bucket has LE = +Inf, marshalled as the string "+Inf" would not be
// valid JSON, so it is omitted and implied by Count).
type BucketPoint struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot captures every series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			p := MetricPoint{Name: f.name, Type: f.typ.String(), Help: f.help}
			if len(s.labels) > 0 {
				p.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					p.Labels[l.Name] = l.Value
				}
			}
			if s.h != nil {
				hp := &HistogramPoint{Sum: s.h.Sum(), Count: s.h.Count()}
				var cum uint64
				for i, b := range s.h.bounds {
					cum += s.h.counts[i].Load()
					hp.Buckets = append(hp.Buckets, BucketPoint{LE: b, Count: cum})
				}
				hp.P50 = hp.Quantile(0.50)
				hp.P95 = hp.Quantile(0.95)
				hp.P99 = hp.Quantile(0.99)
				p.Histogram = hp
			} else {
				v := s.value()
				p.Value = &v
			}
			snap.Metrics = append(snap.Metrics, p)
		}
	}
	return snap
}

// Value finds a counter/gauge series by name and labels (order
// insensitive); ok is false when the series is absent or a histogram.
func (s Snapshot) Value(name string, labels ...Label) (v float64, ok bool) {
	for _, p := range s.Metrics {
		if p.Name != name || p.Value == nil || !labelsMatch(p.Labels, labels) {
			continue
		}
		return *p.Value, true
	}
	return 0, false
}

// Hist finds a histogram series by name and labels.
func (s Snapshot) Hist(name string, labels ...Label) (*HistogramPoint, bool) {
	for _, p := range s.Metrics {
		if p.Name != name || p.Histogram == nil || !labelsMatch(p.Labels, labels) {
			continue
		}
		return p.Histogram, true
	}
	return nil, false
}

func labelsMatch(have map[string]string, want []Label) bool {
	if len(have) != len(want) {
		return false
	}
	for _, l := range want {
		if have[l.Name] != l.Value {
			return false
		}
	}
	return true
}

// Int returns Value truncated to int64 (counters are exact up to 2^53).
func (s Snapshot) Int(name string, labels ...Label) (int64, bool) {
	v, ok := s.Value(name, labels...)
	if !ok || math.IsNaN(v) {
		return 0, ok
	}
	return int64(v), true
}
