package obs

import (
	"encoding/json"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerRejectsBadMethods(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_ops_total", "").Add(1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for _, path := range []string{"/metrics", "/metrics.json", "/debug/vars"} {
		resp, err := srv.Client().Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d, want %d", path, resp.StatusCode, http.StatusMethodNotAllowed)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Fatalf("POST %s Allow = %q, want GET advertised", path, allow)
		}
	}

	// HEAD stays allowed: load balancers probe with it.
	resp, err := srv.Client().Head(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD /metrics = %d, want 200", resp.StatusCode)
	}
}

func TestHandlerUnknownPath(t *testing.T) {
	srv := httptest.NewServer(NewRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
	}
}

func TestHandlerPprof(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("/debug/pprof/ index does not list profiles:\n%s", body)
	}

	disabled := httptest.NewServer(r.HandlerWith(HandlerOpts{DisablePprof: true}))
	defer disabled.Close()
	resp, err = disabled.Client().Get(disabled.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ with DisablePprof = %d, want 404", resp.StatusCode)
	}
	// /metrics must survive the opt-out.
	resp, err = disabled.Client().Get(disabled.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics with DisablePprof = %d, want 200", resp.StatusCode)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	r := NewRegistry()
	state := "healthy"
	srv := httptest.NewServer(r.HandlerWith(HandlerOpts{Health: func() Health {
		return Health{
			Tiers:      []TierHealth{{Tier: 0, Name: "ssd", State: state}},
			Gossip:     map[string]string{"node1": "alive"},
			TraceDrops: 3,
		}
	}}))
	defer srv.Close()

	get := func() (int, Health) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("/healthz is not JSON: %v", err)
		}
		return resp.StatusCode, h
	}

	code, h := get()
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy node: %d %q, want 200 ok", code, h.Status)
	}
	if len(h.Tiers) != 1 || h.Tiers[0].State != "healthy" || h.TraceDrops != 3 {
		t.Fatalf("health body = %+v", h)
	}
	if h.Gossip["node1"] != "alive" {
		t.Fatalf("gossip view lost: %+v", h.Gossip)
	}

	// A suspect tier degrades nothing: only Down turns the probe red.
	state = "suspect"
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("suspect tier: %d, want 200", code)
	}
	state = "down"
	code, h = get()
	if code != http.StatusServiceUnavailable || h.Status != "down" {
		t.Fatalf("down tier: %d %q, want 503 down", code, h.Status)
	}

	// Without a Health source the endpoint does not exist.
	bare := httptest.NewServer(NewRegistry().Handler())
	defer bare.Close()
	resp, err := bare.Client().Get(bare.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /healthz without a source = %d, want 404", resp.StatusCode)
	}
}

func TestHandlerRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_ops_total", "").Add(1)
	srv := httptest.NewServer(r.HandlerWith(HandlerOpts{Routes: map[string]http.Handler{
		"/debug/custom": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, "custom")
		}),
	}}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/custom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "custom" {
		t.Fatalf("mounted route: %d %q", resp.StatusCode, body)
	}
	// The standard endpoints survive extra routes.
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics with Routes = %d, want 200", resp.StatusCode)
	}
}

func TestServeOnClosedListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewRegistry().Handler()}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve on a closed listener returned nil error")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{0.1, 1, 10})
	// 10 observations in [0, 0.1), 80 in [0.1, 1), 10 in [1, 10).
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 80; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	hp := histogramPoint(t, r, "q_seconds")
	// p50: rank 50 of 90 cumulative in the [0.1,1) bucket →
	// 0.1 + (50-10)/80 * 0.9 = 0.55.
	if got := hp.Quantile(0.50); math.Abs(got-0.55) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.55", got)
	}
	if hp.P50 != hp.Quantile(0.50) || hp.P95 != hp.Quantile(0.95) || hp.P99 != hp.Quantile(0.99) {
		t.Fatalf("snapshot quantile fields disagree with Quantile(): %+v", hp)
	}
	if hp.P95 <= hp.P50 || hp.P99 < hp.P95 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", hp.P50, hp.P95, hp.P99)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()
	empty := r.Histogram("e_seconds", "", []float64{1, 2})
	_ = empty
	hp := histogramPoint(t, r, "e_seconds")
	if got := hp.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}

	r2 := NewRegistry()
	over := r2.Histogram("o_seconds", "", []float64{1})
	over.Observe(100) // lands in the +Inf bucket
	hp = histogramPoint(t, r2, "o_seconds")
	// Overflow clamps to the largest finite bound instead of +Inf.
	if got := hp.Quantile(0.99); got != 1 {
		t.Fatalf("overflow p99 = %v, want clamp to 1", got)
	}
	if got := hp.Quantile(-1); got != hp.Quantile(0) {
		t.Fatalf("q<0 = %v, want clamp to q=0 (%v)", got, hp.Quantile(0))
	}
}

func TestSnapshotJSONCarriesQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("j_seconds", "", []float64{1, 10}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"p50"`, `"p95"`, `"p99"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("snapshot JSON missing %s:\n%s", key, data)
		}
	}
}

// histogramPoint extracts the single histogram series by name.
func histogramPoint(t *testing.T, r *Registry, name string) *HistogramPoint {
	t.Helper()
	for _, p := range r.Snapshot().Metrics {
		if p.Name == name && p.Histogram != nil {
			return p.Histogram
		}
	}
	t.Fatalf("histogram %q not in snapshot", name)
	return nil
}
