package core

import (
	"fmt"
	"strings"
	"sync"
)

// TenantConfig declares one job's guaranteed share of every cache tier
// (every level except the read-only source). Shares are fractions of
// each tier's capacity; the sum across tenants must not exceed 1.
//
// Shares are guarantees, not limits: borrowing is work-conserving. A
// job may fill any free space beyond its share, but while it is over
// its share its coldest files are the first reclaimed when an
// under-share job needs room (see HeatPolicy.VictimFor).
type TenantConfig struct {
	// Job names the tenant; Config.JobOf maps file names to jobs.
	Job string
	// Share is the guaranteed fraction (0..1] of each cache tier.
	Share float64
}

// JobFromPath is the default Config.JobOf: the first path segment of
// the file name ("jobA/shard-0003" → "jobA"; no separator → "").
// It matches the per-job namespaces monarch-serve exports.
func JobFromPath(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return ""
}

// tenantTable is the quota ledger behind multi-job tenancy: per-(job,
// tier) bytes of currently placed files, charged on placement and
// released on eviction/demotion. The placer and the heat policy consult
// it for share guarantees; the per-job fairness gauges read it.
//
// Invariant (enforced by charge/release pairing on entry transitions
// and locked down by TestQuotaAccounting*): a job's used bytes on a
// tier never go negative and always equal the sum of its files placed
// there.
type tenantTable struct {
	jobOf func(string) string
	share map[string]float64
	caps  []int64 // per-level capacity snapshot (source level included, unused)

	mu   sync.Mutex
	used map[string][]int64 // job → per-level placed bytes
}

// newTenantTable builds the ledger; returns nil when tenancy is off
// (no JobOf and no Tenants), which disables all per-job accounting.
func newTenantTable(cfg Config, caps []int64) (*tenantTable, error) {
	if cfg.JobOf == nil && len(cfg.Tenants) == 0 {
		return nil, nil
	}
	t := &tenantTable{
		jobOf: cfg.JobOf,
		share: make(map[string]float64),
		caps:  caps,
		used:  make(map[string][]int64),
	}
	if t.jobOf == nil {
		t.jobOf = JobFromPath
	}
	sum := 0.0
	for _, tc := range cfg.Tenants {
		if tc.Share < 0 || tc.Share > 1 {
			return nil, fmt.Errorf("monarch: tenant %q share %v outside [0,1]", tc.Job, tc.Share)
		}
		if _, dup := t.share[tc.Job]; dup {
			return nil, fmt.Errorf("monarch: tenant %q declared twice", tc.Job)
		}
		t.share[tc.Job] = tc.Share
		sum += tc.Share
	}
	if sum > 1+1e-9 {
		return nil, fmt.Errorf("monarch: tenant shares sum to %v (> 1)", sum)
	}
	return t, nil
}

// job attributes a file name; nil-safe ("" = the single anonymous job).
func (t *tenantTable) job(name string) string {
	if t == nil {
		return ""
	}
	return t.jobOf(name)
}

// guarantee returns job's guaranteed bytes on level (0 for undeclared
// jobs and for unlimited-capacity tiers, where shares are moot).
func (t *tenantTable) guarantee(job string, level int) int64 {
	if t == nil || level < 0 || level >= len(t.caps) || t.caps[level] <= 0 {
		return 0
	}
	return int64(t.share[job] * float64(t.caps[level]))
}

// charge records bytes of job's data placed on level.
func (t *tenantTable) charge(job string, level int, bytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.row(job)[level] += bytes
}

// release returns bytes of job's data evicted or demoted off level.
// Releasing more than was charged is a bookkeeping bug; the ledger
// clamps at zero so a miscount can never flip the quota logic's sign,
// and the invariant suite asserts the clamp never fires.
func (t *tenantTable) release(job string, level int, bytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.row(job)
	r[level] -= bytes
	if r[level] < 0 {
		r[level] = 0
	}
}

// usedBytes returns job's currently placed bytes on level.
func (t *tenantTable) usedBytes(job string, level int) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.used[job]; ok {
		return r[level]
	}
	return 0
}

// overShare reports whether job is borrowing beyond its guaranteed
// share of level. On unlimited tiers nobody is ever over share.
func (t *tenantTable) overShare(job string, level int) bool {
	if t == nil {
		return false
	}
	g := t.guarantee(job, level)
	if level < 0 || level >= len(t.caps) || t.caps[level] <= 0 {
		return false
	}
	return t.usedBytes(job, level) > g
}

// jobs returns the declared tenants (for gauge registration).
func (t *tenantTable) jobs() []string {
	if t == nil {
		return nil
	}
	out := make([]string, 0, len(t.share))
	for j := range t.share {
		out = append(out, j)
	}
	return out
}

func (t *tenantTable) row(job string) []int64 {
	r, ok := t.used[job]
	if !ok {
		r = make([]int64, len(t.caps))
		t.used[job] = r
	}
	return r
}
