package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"monarch/internal/obs"
	"monarch/internal/storage"
)

// assertStatsParity proves the Stats-as-view invariant: every field of a
// Stats() snapshot must equal the corresponding series in the obs
// registry. Call only when the instance is idle — the two snapshots are
// not taken atomically.
func assertStatsParity(t *testing.T, m *Monarch) {
	t.Helper()
	s := m.Stats()
	snap := m.Registry().Snapshot()
	intVal := func(name string, labels ...obs.Label) int64 {
		t.Helper()
		v, ok := snap.Int(name, labels...)
		if !ok {
			t.Fatalf("metric %s%v missing from registry", name, labels)
		}
		return v
	}
	for i := range s.ReadsServed {
		tier := obs.L("tier", strconv.Itoa(i))
		if got := intVal("monarch_tier_read_ops_total", tier); got != s.ReadsServed[i] {
			t.Errorf("tier %d read ops: registry %d, Stats %d", i, got, s.ReadsServed[i])
		}
		if got := intVal("monarch_tier_read_bytes_total", tier); got != s.BytesServed[i] {
			t.Errorf("tier %d read bytes: registry %d, Stats %d", i, got, s.BytesServed[i])
		}
	}
	checks := []struct {
		name string
		want int64
	}{
		{"monarch_placements_total", s.Placements},
		{"monarch_placed_bytes_total", s.PlacedBytes},
		{"monarch_placement_skips_total", s.PlacementSkips},
		{"monarch_placement_errors_total", s.PlacementErrors},
		{"monarch_full_read_reuses_total", s.FullReadReuses},
		{"monarch_chunk_placements_total", s.ChunkPlacements},
		{"monarch_partial_hits_total", s.PartialHits},
		{"monarch_partial_hit_bytes_total", s.PartialHitBytes},
		{"monarch_fallbacks_total", s.Fallbacks},
		{"monarch_evictions_total", s.Evictions},
		{"monarch_demotions_total", s.Demotions},
		{"monarch_placement_retries_total", s.PlacementRetries},
		{"monarch_tier_trips_total", s.TierTrips},
		{"monarch_tier_recoveries_total", s.TierRecoveries},
		{"monarch_probes_total", s.Probes},
	}
	for _, c := range checks {
		if got := intVal(c.name); got != c.want {
			t.Errorf("%s: registry %d, Stats %d", c.name, got, c.want)
		}
	}
	if v, ok := snap.Value("monarch_hit_ratio"); !ok || v != s.HitRatio() {
		t.Errorf("hit ratio: registry %v (ok=%v), Stats %v", v, ok, s.HitRatio())
	}
	if v, ok := snap.Value("monarch_inflight_placements"); !ok || int(v) != s.InFlight {
		t.Errorf("inflight: registry %v (ok=%v), Stats %d", v, ok, s.InFlight)
	}
}

// TestStatsRegistryParityWholeFile checks parity on the plain path, plus
// two registry-only signals Stats cannot carry: read latency histograms
// (one observation per served read) and per-kind event counters in
// lock-step with the event log.
func TestStatsRegistryParityWholeFile(t *testing.T) {
	const nfiles, size = 5, 100
	log := NewEventLog(256)
	f := newFixture(t, 0, nfiles, size, func(c *Config) { c.Events = log })
	p := make([]byte, size)
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < nfiles; i++ {
			if _, err := f.m.ReadAt(context.Background(), fmt.Sprintf("f%03d", i), p, 0); err != nil {
				t.Fatal(err)
			}
		}
		f.waitIdle(t)
	}
	assertStatsParity(t, f.m)

	s := f.m.Stats()
	snap := f.m.Registry().Snapshot()
	for i := range s.ReadsServed {
		hp, ok := snap.Hist("monarch_read_latency_seconds", obs.L("tier", strconv.Itoa(i)))
		if !ok {
			t.Fatalf("tier %d read latency histogram missing", i)
		}
		if int64(hp.Count) != s.ReadsServed[i] {
			t.Errorf("tier %d latency observations = %d, reads served = %d", i, hp.Count, s.ReadsServed[i])
		}
	}
	if hp, ok := snap.Hist("monarch_placement_latency_seconds"); !ok || int64(hp.Count) != s.Placements {
		t.Errorf("placement latency observations vs placements: hist=%+v placements=%d", hp, s.Placements)
	}
	// Event funnel: the registry's per-kind counters and the event log
	// are fed by the same call, so they must agree.
	byKind := map[EventKind]int64{}
	for _, e := range log.Events() {
		byKind[e.Kind]++
	}
	for k := EventKind(0); k < eventKinds; k++ {
		got, ok := snap.Int("monarch_events_total", obs.L("kind", k.String()))
		if !ok {
			t.Fatalf("events_total{kind=%q} missing", k)
		}
		if got != byKind[k] {
			t.Errorf("events_total{kind=%q} = %d, event log has %d", k, got, byKind[k])
		}
	}
}

func TestStatsRegistryParityChunked(t *testing.T) {
	const nfiles, size = 3, 1024 // 4 chunks of 256 each
	m := newChunkStack(t, storage.NewMemFS("ssd", 0), 4, nfiles, size, nil)
	// Partial first reads trigger the chunked fan-out (full reads would
	// take the full-content reuse path); a second epoch of full reads
	// then exercises tier-0 serving.
	for i := 0; i < nfiles; i++ {
		if _, err := m.ReadAt(context.Background(), fmt.Sprintf("c%03d", i), make([]byte, 1), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitIdleM(t, m)
	p := make([]byte, size)
	for i := 0; i < nfiles; i++ {
		if _, err := m.ReadAt(context.Background(), fmt.Sprintf("c%03d", i), p, 0); err != nil {
			t.Fatal(err)
		}
	}
	waitIdleM(t, m)
	assertStatsParity(t, m)

	s := m.Stats()
	if s.ChunkPlacements == 0 {
		t.Fatal("chunked scenario produced no chunk placements")
	}
	// Every chunk copy observes the chunk-copy latency histogram.
	hp, ok := m.Registry().Snapshot().Hist("monarch_chunk_copy_latency_seconds")
	if !ok || int64(hp.Count) != s.ChunkPlacements {
		t.Errorf("chunk copy observations vs chunk placements: hist=%+v chunks=%d", hp, s.ChunkPlacements)
	}
}

func TestStatsRegistryParityFaultyTier(t *testing.T) {
	const nfiles, size = 4, 100
	f := newHealthFixture(t, nfiles, size, nil)

	f.readAll(t, nfiles, size)
	f.waitIdle(t)
	assertStatsParity(t, f.m)

	// Break the tier: fallbacks, trips, demotions and failed probes all
	// land in both views.
	f.faulty.Break()
	for epoch := 0; epoch < 2; epoch++ {
		f.readAll(t, nfiles, size)
	}
	f.waitIdle(t)
	assertStatsParity(t, f.m)

	// Recover and re-place: probes, recoveries, retried placements.
	f.faulty.Fix()
	deadline := time.Now().Add(5 * time.Second)
	for f.m.TierState(0) != TierHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("tier never recovered (state %v)", f.m.TierState(0))
		}
		f.readAll(t, 1, size)
		time.Sleep(time.Millisecond)
	}
	f.readAll(t, nfiles, size)
	f.waitIdle(t)
	assertStatsParity(t, f.m)

	if s := f.m.Stats(); s.TierTrips == 0 || s.TierRecoveries == 0 || s.Fallbacks == 0 {
		t.Fatalf("faulty scenario exercised nothing: %+v", s)
	}
}

// TestBreakerStateGauge drives the circuit breaker around its full cycle
// and asserts the monarch_tier_breaker_state gauge tracks every
// transition: Healthy(0) → Suspect(1) → Down(2) → Healthy(0).
func TestBreakerStateGauge(t *testing.T) {
	const nfiles, size = 4, 100
	f := newHealthFixture(t, nfiles, size, nil) // thresholds: 2 errors, probe gate 1 read
	gauge := func() float64 {
		t.Helper()
		v, ok := f.m.Registry().Snapshot().Value("monarch_tier_breaker_state", obs.L("tier", "0"))
		if !ok {
			t.Fatal("breaker gauge missing")
		}
		return v
	}
	read := func(i int) {
		t.Helper()
		p := make([]byte, size)
		if _, err := f.m.ReadAt(context.Background(), fmt.Sprintf("f%03d", i), p, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Place everything so reads hit tier 0, then walk the transitions.
	f.readAll(t, nfiles, size)
	f.waitIdle(t)
	steps := []struct {
		name string
		act  func()
		want float64
	}{
		{"healthy after placement", func() {}, 0},
		{"suspect after first error", func() { f.faulty.Break(); read(0) }, 1},
		{"down at threshold", func() { read(1) }, 2},
	}
	for _, step := range steps {
		step.act()
		if got := gauge(); got != step.want {
			t.Fatalf("%s: breaker gauge = %v, want %v", step.name, got, step.want)
		}
		if got := float64(f.m.TierState(0)); got != step.want {
			t.Fatalf("%s: gauge and TierState disagree", step.name)
		}
	}

	// Recovery: the gauge must return to 0 once a probe succeeds.
	f.faulty.Fix()
	deadline := time.Now().Add(5 * time.Second)
	for gauge() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker gauge never returned to healthy (now %v)", gauge())
		}
		read(0) // ticks the probe gate
		time.Sleep(time.Millisecond)
	}
}

// failAllWriteAts lets Allocate through and fails every chunk WriteAt,
// so a multi-chunk placement sees several concurrent chunk failures.
type failAllWriteAts struct {
	*storage.MemFS
}

var errChunkInjected = errors.New("injected chunk write failure")

func (f *failAllWriteAts) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	return 0, errChunkInjected
}

// TestChunkCopyErrorCountedOnce is the regression test for the
// silent-drop fix: a failed chunked placement must increment
// monarch_errors_total{stage="chunk-copy"} exactly once per job — the
// first failing worker wins — even when every chunk of the job fails,
// and the failure must surface in the event log.
func TestChunkCopyErrorCountedOnce(t *testing.T) {
	log := NewEventLog(64)
	tier0 := &failAllWriteAts{MemFS: storage.NewMemFS("ssd", 0)}
	m := newChunkStack(t, tier0, 4, 1, 1024, func(c *Config) { c.Events = log }) // 4 chunks, all doomed
	// A partial read triggers the chunked placement.
	if _, err := m.ReadAt(context.Background(), "c000", make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	waitIdleM(t, m)

	snap := m.Registry().Snapshot()
	if got, ok := snap.Int("monarch_errors_total", obs.L("stage", "chunk-copy")); !ok || got != 1 {
		t.Fatalf("errors_total{stage=chunk-copy} = %d (ok=%v), want exactly 1", got, ok)
	}
	if got, ok := snap.Int("monarch_errors_total", obs.L("stage", "placement")); !ok || got != 1 {
		t.Fatalf("errors_total{stage=placement} = %d (ok=%v), want 1", got, ok)
	}
	var failed int
	for _, e := range log.Events() {
		if e.Kind == EventFailed {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("event log has %d failed events, want 1", failed)
	}
	assertStatsParity(t, m)
}

// TestMetricsEndpoint is the acceptance scrape: with Config.MetricsAddr
// set, the HTTP endpoint must expose per-tier read bytes/ops, the hit
// ratio, the placement latency histogram and the breaker state, and the
// JSON sibling must agree with Stats.
func TestMetricsEndpoint(t *testing.T) {
	const nfiles, size = 3, 100
	f := newFixture(t, 0, nfiles, size, func(c *Config) { c.MetricsAddr = "127.0.0.1:0" })
	p := make([]byte, size)
	for i := 0; i < nfiles; i++ {
		if _, err := f.m.ReadAt(context.Background(), fmt.Sprintf("f%03d", i), p, 0); err != nil {
			t.Fatal(err)
		}
	}
	f.waitIdle(t)

	base := f.m.MetricsURL()
	if base == "" {
		t.Fatal("MetricsURL empty with MetricsAddr set")
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`monarch_tier_read_ops_total{tier="0"}`,
		`monarch_tier_read_ops_total{tier="1"}`,
		`monarch_tier_read_bytes_total{tier="0"}`,
		`monarch_hit_ratio`,
		`monarch_placement_latency_seconds_bucket`,
		`monarch_tier_breaker_state{tier="0"} 0`,
		`monarch_placements_total 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// The JSON endpoint decodes into a Snapshot that matches Stats.
	resp, err = http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	s := f.m.Stats()
	if v, ok := snap.Int("monarch_tier_read_ops_total", obs.L("tier", "1")); !ok || v != s.ReadsServed[1] {
		t.Fatalf("json snapshot tier-1 ops = %d (ok=%v), Stats %d", v, ok, s.ReadsServed[1])
	}
}

// TestMetricsAddrConflict ensures a bad listen address surfaces as a
// New error rather than a silent dead endpoint.
func TestMetricsAddrConflict(t *testing.T) {
	cfg := Config{
		Levels:      []storage.Backend{storage.NewMemFS("a", 0), storage.NewMemFS("b", 0)},
		Disabled:    true,
		MetricsAddr: "256.256.256.256:0",
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid MetricsAddr did not fail New")
	}
}

// TestTraceSpans locks the span taxonomy on the hot paths: a cold read
// emits read + placement-enqueue, the background copy emits placement
// (and chunk-copy when chunked), and a warm read reports the upper tier.
func TestTraceSpans(t *testing.T) {
	var mu sync.Mutex
	var spans []obs.Span
	trace := func(s obs.Span) {
		mu.Lock()
		spans = append(spans, s)
		mu.Unlock()
	}
	const size = 1024
	m := newChunkStack(t, storage.NewMemFS("ssd", 0), 2, 1, size, func(c *Config) { c.Trace = trace })
	// Partial cold read (triggers chunked placement), then a warm full
	// read from tier 0.
	if _, err := m.ReadAt(context.Background(), "c000", make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	waitIdleM(t, m)
	if _, err := m.ReadAt(context.Background(), "c000", make([]byte, size), 0); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	byKind := map[obs.SpanKind][]obs.Span{}
	for _, s := range spans {
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	reads := byKind[obs.SpanRead]
	if len(reads) != 2 || reads[0].Tier != 1 || reads[1].Tier != 0 {
		t.Fatalf("read spans = %+v, want cold from tier 1 then warm from tier 0", reads)
	}
	if reads[0].Bytes != 1 || reads[1].Bytes != size || reads[0].File != "c000" {
		t.Fatalf("read span fields wrong: %+v", reads)
	}
	if n := len(byKind[obs.SpanPlacementEnqueue]); n != 1 {
		t.Fatalf("placement-enqueue spans = %d, want 1", n)
	}
	placements := byKind[obs.SpanPlacement]
	if len(placements) != 1 || placements[0].Err != nil || placements[0].Tier != 0 {
		t.Fatalf("placement spans = %+v", placements)
	}
	if n := len(byKind[obs.SpanChunkCopy]); n != int(size/256) {
		t.Fatalf("chunk-copy spans = %d, want %d", n, size/256)
	}
}
