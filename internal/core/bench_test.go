package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// benchStack builds a warmed-up middleware: every file already placed
// on tier 0, so the benchmarks isolate the steady-state read path.
func benchStack(b *testing.B, nfiles, fileSize int) *Monarch {
	b.Helper()
	ctx := context.Background()
	pfs := storage.NewMemFS("pfs", 0)
	for i := 0; i < nfiles; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("f%04d", i),
			bytes.Repeat([]byte{byte(i)}, fileSize)); err != nil {
			b.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	tier0 := storage.NewMemFS("ssd", 0)
	gp := pool.NewGoPool(4)
	m, err := New(Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          gp,
		FullFileFetch: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	if err := m.Init(ctx); err != nil {
		b.Fatal(err)
	}
	// Warm placement.
	buf := make([]byte, fileSize)
	for i := 0; i < nfiles; i++ {
		if _, err := m.ReadAt(ctx, fmt.Sprintf("f%04d", i), buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	for !m.Idle() {
		time.Sleep(time.Millisecond)
	}
	return m
}

// BenchmarkReadAtSteadyState measures the middleware's per-read
// overhead once everything is placed: lookup + stats + the memfs copy.
func BenchmarkReadAtSteadyState(b *testing.B) {
	m := benchStack(b, 64, 256<<10)
	ctx := context.Background()
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("f%04d", i%64)
		if _, err := m.ReadAt(ctx, name, buf, int64(i%4)*(64<<10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadAtParallel measures the same path under contention, the
// shape of a framework's reader-thread pool.
func BenchmarkReadAtParallel(b *testing.B) {
	m := benchStack(b, 64, 256<<10)
	ctx := context.Background()
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 64<<10)
		i := 0
		for pb.Next() {
			i++
			name := fmt.Sprintf("f%04d", i%64)
			if _, err := m.ReadAt(ctx, name, buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMetadataLookup isolates the namespace lookup.
func BenchmarkMetadataLookup(b *testing.B) {
	m := benchStack(b, 1024, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Stat(fmt.Sprintf("f%04d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInit measures namespace construction over a large listing.
func BenchmarkInit(b *testing.B) {
	ctx := context.Background()
	pfs := storage.NewMemFS("pfs", 0)
	for i := 0; i < 4096; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("f%05d", i), []byte{1}); err != nil {
			b.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp := pool.NewGoPool(1)
		m, err := New(Config{
			Levels:        []storage.Backend{storage.NewMemFS("t0", 0), pfs},
			Pool:          gp,
			FullFileFetch: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Init(ctx); err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}
