package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"monarch/internal/obs"
	"monarch/internal/pool"
	"monarch/internal/storage"
)

// benchStack builds a warmed-up middleware: every file already placed
// on tier 0, so the benchmarks isolate the steady-state read path.
func benchStack(b *testing.B, nfiles, fileSize int) *Monarch {
	b.Helper()
	ctx := context.Background()
	pfs := storage.NewMemFS("pfs", 0)
	for i := 0; i < nfiles; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("f%04d", i),
			bytes.Repeat([]byte{byte(i)}, fileSize)); err != nil {
			b.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	tier0 := storage.NewMemFS("ssd", 0)
	gp := pool.NewGoPool(4)
	m, err := New(Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          gp,
		FullFileFetch: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	if err := m.Init(ctx); err != nil {
		b.Fatal(err)
	}
	// Warm placement.
	buf := make([]byte, fileSize)
	for i := 0; i < nfiles; i++ {
		if _, err := m.ReadAt(ctx, fmt.Sprintf("f%04d", i), buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	for !m.Idle() {
		time.Sleep(time.Millisecond)
	}
	return m
}

// BenchmarkReadAtSteadyState measures the middleware's per-read
// overhead once everything is placed: lookup + stats + the memfs copy.
func BenchmarkReadAtSteadyState(b *testing.B) {
	m := benchStack(b, 64, 256<<10)
	ctx := context.Background()
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("f%04d", i%64)
		if _, err := m.ReadAt(ctx, name, buf, int64(i%4)*(64<<10)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFanIn runs body under exactly g goroutines regardless of the
// host's core count, so fan-in points are comparable across machines:
// RunParallel spawns parallelism×GOMAXPROCS workers, so GOMAXPROCS is
// pinned to the largest power of two ≤ min(g, NumCPU) and the
// parallelism multiplier supplies the rest (g is always a power of
// two here, so the division is exact). Each worker gets a distinct
// seed to spread its file sequence.
func benchFanIn(b *testing.B, g int, body func(pb *testing.PB, seed int)) {
	procs := 1
	for procs*2 <= g && procs*2 <= runtime.NumCPU() {
		procs *= 2
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	b.SetParallelism(g / procs)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		body(pb, int(seq.Add(1))*7919)
	})
}

// BenchmarkReadAtParallel measures the steady-state read path under
// goroutine fan-in — the shape of a framework's reader-thread pool.
// The copy variant is the classic pread-style ReadAt into a caller
// buffer (memory-bandwidth-bound: each op moves 64 KiB); the view
// variant is ReadView's copy-free path over the same workload, which
// strips the memcpy and leaves only lookup + routing + bookkeeping.
// make bench-hotpath records every point into BENCH_hotpath.json so
// the fan-in profile stays tracked in-repo.
func BenchmarkReadAtParallel(b *testing.B) {
	m := benchStack(b, 64, 256<<10)
	ctx := context.Background()
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("f%04d", i)
	}
	for _, g := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("copy/g%d", g), func(b *testing.B) {
			benchFanIn(b, g, func(pb *testing.PB, seed int) {
				buf := make([]byte, 64<<10)
				i := seed
				for pb.Next() {
					i++
					if _, err := m.ReadAt(ctx, names[i&63], buf, int64(i&3)<<16); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
	for _, g := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("view/g%d", g), func(b *testing.B) {
			benchFanIn(b, g, func(pb *testing.PB, seed int) {
				i := seed
				for pb.Next() {
					i++
					v, err := m.ReadView(ctx, names[i&63], int64(i&3)<<16, 64<<10)
					if err != nil {
						b.Fatal(err)
					}
					if len(v.Data) != 64<<10 {
						b.Fatalf("view returned %d bytes", len(v.Data))
					}
					// Touch both ends so the view's bytes are really read,
					// without paying a full copy.
					_ = v.Data[0] + v.Data[len(v.Data)-1]
					v.Release()
				}
			})
		})
	}
}

// benchPlacement measures end-to-end background placement of a small
// dataset: trigger every file with a 1-byte read, then wait for the
// copies to land. chunkSize 0 is the paper's whole-file path; a positive
// chunkSize exercises the chunked fan-out (BENCH_chunked.json tracks
// the two against each other).
func benchPlacement(b *testing.B, chunkSize int64) {
	ctx := context.Background()
	const nfiles, fileSize = 16, 1 << 20
	pfs := storage.NewMemFS("pfs", 0)
	for i := 0; i < nfiles; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("f%04d", i),
			bytes.Repeat([]byte{byte(i)}, fileSize)); err != nil {
			b.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	b.SetBytes(nfiles * fileSize)
	b.ReportAllocs()
	b.ResetTimer()
	buf := make([]byte, 1)
	for i := 0; i < b.N; i++ {
		gp := pool.NewGoPool(6)
		m, err := New(Config{
			Levels:        []storage.Backend{storage.NewMemFS("ssd", 0), pfs},
			Pool:          gp,
			FullFileFetch: true,
			ChunkSize:     chunkSize,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Init(ctx); err != nil {
			b.Fatal(err)
		}
		for f := 0; f < nfiles; f++ {
			if _, err := m.ReadAt(ctx, fmt.Sprintf("f%04d", f), buf, 0); err != nil {
				b.Fatal(err)
			}
		}
		for !m.Idle() {
			time.Sleep(50 * time.Microsecond)
		}
		m.Close()
	}
}

func BenchmarkPlacementWholeFile(b *testing.B) { benchPlacement(b, 0) }

func BenchmarkPlacementChunked(b *testing.B) { benchPlacement(b, 256<<10) }

// benchMidCopy measures the read path with a chunked placement pinned
// in flight: every read takes the chunk-bitmap probe (chunksCover)
// before being served from the upper tier — the per-read cost the
// mid-copy read-through feature adds. cfgEdit lets the instrumented
// variant attach observability consumers to the same stack; the built
// instance is returned so callers can snapshot its registry.
func benchMidCopy(b *testing.B, cfgEdit func(*Config)) *Monarch {
	ctx := context.Background()
	const fileSize, chunk = 256 << 10, 64 << 10
	content := bytes.Repeat([]byte{7}, fileSize)
	pfs := storage.NewMemFS("pfs", 0)
	if err := pfs.WriteFile(ctx, "f", content); err != nil {
		b.Fatal(err)
	}
	pfs.SetReadOnly(true)
	tier0 := storage.NewMemFS("ssd", 0)
	gp := pool.NewGoPool(1)
	cfg := Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          gp,
		FullFileFetch: true,
		ChunkSize:     chunk,
	}
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	// Hand-arm the mid-copy state: namespace built, entry queued with
	// every chunk resident, content staged on tier 0. No chunk job runs,
	// so the placement never resolves and each read exercises the bitmap
	// scan (a queued entry never re-schedules placement on access).
	if err := tier0.Allocate(ctx, "f", fileSize); err != nil {
		b.Fatal(err)
	}
	if _, err := tier0.WriteAt(ctx, "f", content, 0); err != nil {
		b.Fatal(err)
	}
	m.meta.populate([]storage.FileInfo{{Name: "f", Size: fileSize}}, 1)
	e, _ := m.meta.get("f")
	e.tryQueue()
	e.beginChunks(0, chunk)
	for i := 0; i < chunkCount(fileSize, chunk); i++ {
		e.markChunk(i)
	}
	buf := make([]byte, chunk)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ReadAt(ctx, "f", buf, int64(i%4)*chunk); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

func BenchmarkReadAtMidCopy(b *testing.B) { benchMidCopy(b, nil) }

// BenchmarkReadAtInstrumented is the overhead guard for the
// observability layer: the identical mid-copy read path with this PR's
// hot-path consumers attached — a span trace hook and a live metrics
// endpoint. The budget (DESIGN.md §8) is ≤5% over
// BenchmarkReadAtMidCopy; make bench-obs records both into
// BENCH_obs.json. (An EventLog is deliberately not attached: its
// bounded ring takes a mutex per partial-hit event, a pre-existing,
// separately opt-in cost this guard would misattribute to the metrics
// layer.)
func BenchmarkReadAtInstrumented(b *testing.B) {
	var spans atomic.Int64
	m := benchMidCopy(b, func(c *Config) {
		c.Trace = func(s obs.Span) { spans.Add(1) }
		c.MetricsAddr = "127.0.0.1:0"
	})
	if spans.Load() == 0 {
		b.Fatal("trace hook never fired")
	}
	// make bench-obs embeds the run's registry in BENCH_obs.json.
	if path := os.Getenv("MONARCH_METRICS_OUT"); path != "" {
		b.StopTimer()
		data, err := json.MarshalIndent(m.Registry().Snapshot(), "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadAtTraced is the overhead guard for the access-trace
// recorder: the instrumented mid-copy read path with the trace
// recorder attached on top of the span hook and metrics endpoint. The
// budget (DESIGN.md §9) is ≤5% over BenchmarkReadAtInstrumented — the
// recorder's hot path is one atomic, a short mutex'd ring append and a
// channel signal; encoding and file I/O stay on the drainer.
func BenchmarkReadAtTraced(b *testing.B) {
	var spans atomic.Int64
	path := filepath.Join(b.TempDir(), "bench.bin")
	m := benchMidCopy(b, func(c *Config) {
		c.Trace = func(s obs.Span) { spans.Add(1) }
		c.MetricsAddr = "127.0.0.1:0"
		c.TracePath = path
	})
	b.StopTimer()
	if spans.Load() == 0 {
		b.Fatal("trace hook never fired")
	}
	st := m.Tracer().Stats()
	if st.Recorded == 0 {
		b.Fatal("recorder saw no events")
	}
}

// BenchmarkMetadataLookup isolates the namespace lookup.
func BenchmarkMetadataLookup(b *testing.B) {
	m := benchStack(b, 1024, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Stat(fmt.Sprintf("f%04d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInit measures namespace construction over a large listing.
func BenchmarkInit(b *testing.B) {
	ctx := context.Background()
	pfs := storage.NewMemFS("pfs", 0)
	for i := 0; i < 4096; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("f%05d", i), []byte{1}); err != nil {
			b.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp := pool.NewGoPool(1)
		m, err := New(Config{
			Levels:        []storage.Backend{storage.NewMemFS("t0", 0), pfs},
			Pool:          gp,
			FullFileFetch: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Init(ctx); err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}
