package core

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"monarch/internal/obs"
	"monarch/internal/trace"
)

// readAll drives reads of every fixture file through the middleware,
// epochs times, marking trace epoch boundaries.
func readAll(t *testing.T, f *fixture, nfiles, fileSize, epochs int) {
	t.Helper()
	ctx := context.Background()
	buf := make([]byte, fileSize)
	for e := 1; e <= epochs; e++ {
		for i := 0; i < nfiles; i++ {
			name := fileName(i)
			if _, err := f.m.ReadAt(ctx, name, buf, 0); err != nil {
				t.Fatalf("read %s: %v", name, err)
			}
		}
		f.waitIdle(t)
		f.m.MarkTraceEpoch(e)
	}
}

// fileName mirrors newFixture's naming.
func fileName(i int) string { return fmt.Sprintf("f%03d", i) }

func TestTraceCaptureRoundTrip(t *testing.T) {
	const nfiles, fileSize, epochs = 6, 4096, 2
	path := filepath.Join(t.TempDir(), "core.jsonl")
	f := newFixture(t, 0, nfiles, fileSize, func(c *Config) {
		c.TracePath = path
	})
	readAll(t, f, nfiles, fileSize, epochs)
	stats := f.m.Stats()
	f.m.Close()

	tr, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Complete() {
		t.Fatal("trace has no trailer")
	}
	if len(tr.Files) != nfiles {
		t.Fatalf("trace defines %d files, want %d", len(tr.Files), nfiles)
	}
	for _, fl := range tr.Files {
		if fl.Size != fileSize {
			t.Fatalf("file %q size %d, want %d (Init should register sizes)", fl.Name, fl.Size, fileSize)
		}
	}

	var reads, places, epochMarks int64
	for _, ev := range tr.Events {
		switch ev.Kind {
		case trace.KindRead:
			reads++
		case trace.KindPlacement:
			places++
		case trace.KindEpoch:
			epochMarks++
		}
	}
	var wantReads int64
	for _, v := range stats.ReadsServed {
		wantReads += v
	}
	if reads != wantReads {
		t.Fatalf("trace records %d reads, stats say %d", reads, wantReads)
	}
	if places != stats.Placements+stats.PlacementSkips+stats.PlacementErrors {
		t.Fatalf("trace records %d placements, stats say %d", places,
			stats.Placements+stats.PlacementSkips+stats.PlacementErrors)
	}
	if epochMarks != epochs {
		t.Fatalf("epoch markers = %d, want %d", epochMarks, epochs)
	}

	// The trailer summary is the Stats flattening the replayer verifies
	// against.
	for key, want := range map[string]int64{
		"placements":   stats.Placements,
		"placed_bytes": stats.PlacedBytes,
		"reads_tier_0": stats.ReadsServed[0],
		"reads_tier_1": stats.ReadsServed[1],
		"bytes_tier_0": stats.BytesServed[0],
		"bytes_tier_1": stats.BytesServed[1],
	} {
		if got := tr.Summary[key]; got != want {
			t.Fatalf("trailer %s = %d, want %d", key, got, want)
		}
	}
	if tr.Stats["dropped"] != 0 {
		t.Fatalf("capture dropped %d events", tr.Stats["dropped"])
	}
}

// eventsTotal reads a monarch_events_total series from the registry.
func eventsTotal(t *testing.T, m *Monarch, kind string) int64 {
	t.Helper()
	v, ok := m.Registry().Snapshot().Value("monarch_events_total", obs.L("kind", kind))
	if !ok {
		t.Fatalf("monarch_events_total{kind=%q} not registered", kind)
	}
	return int64(v)
}

// TestTraceSamplingParity is the lock-step regression test: with
// sampling enabled the trace may thin plain read hits, but every
// event-worthy record must still match monarch_events_total exactly,
// and the recorder's accounting must balance.
func TestTraceSamplingParity(t *testing.T) {
	const nfiles, fileSize, epochs = 8, 4096, 3
	for _, sample := range []int{1, 5} {
		path := filepath.Join(t.TempDir(), "parity.jsonl")
		// Quota fits half the files and LRU churns them, so placements,
		// skips and evictions all fire; chunked placement adds chunk
		// copies and possibly mid-copy partial hits.
		f := newFixture(t, int64(nfiles/2*fileSize), nfiles, fileSize, func(c *Config) {
			c.TracePath = path
			c.TraceSample = sample
			c.ChunkSize = 1024
			c.Eviction = NewLRU()
		})
		readAll(t, f, nfiles, fileSize, epochs)
		rst := f.m.Tracer().Stats()
		f.m.Close()

		if rst.Seen != rst.Recorded+rst.SampledOut+rst.Dropped {
			t.Fatalf("sample=%d: accounting broken: %+v", sample, rst)
		}
		if rst.Dropped != 0 {
			t.Fatalf("sample=%d: dropped %d events", sample, rst.Dropped)
		}
		if sample > 1 && rst.SampledOut == 0 {
			t.Fatalf("sample=%d thinned nothing over %d events", sample, rst.Seen)
		}
		if sample == 1 && rst.SampledOut != 0 {
			t.Fatalf("sample=1 thinned %d events", rst.SampledOut)
		}

		tr, err := trace.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[trace.Kind]int64{}
		classes := map[trace.Class]int64{}
		for _, ev := range tr.Events {
			kinds[ev.Kind]++
			if ev.Kind == trace.KindRead || ev.Kind == trace.KindState {
				classes[ev.Class]++
			}
		}

		placeEvents := eventsTotal(t, f.m, "placed") + eventsTotal(t, f.m, "skipped") + eventsTotal(t, f.m, "failed")
		if kinds[trace.KindPlacement] != placeEvents {
			t.Fatalf("sample=%d: trace has %d placement records, events_total says %d",
				sample, kinds[trace.KindPlacement], placeEvents)
		}
		if got, want := kinds[trace.KindChunkCopy], eventsTotal(t, f.m, "chunk-placed"); got != want {
			t.Fatalf("sample=%d: chunk copies %d vs events_total %d", sample, got, want)
		}
		if got, want := classes[trace.ClassPartial], eventsTotal(t, f.m, "partial-hit"); got != want {
			t.Fatalf("sample=%d: partial hits %d vs events_total %d", sample, got, want)
		}
		if got, want := classes[trace.ClassFallback], eventsTotal(t, f.m, "fallback"); got != want {
			t.Fatalf("sample=%d: fallbacks %d vs events_total %d", sample, got, want)
		}
		stateEvents := eventsTotal(t, f.m, "demoted") + eventsTotal(t, f.m, "evicted") +
			eventsTotal(t, f.m, "tier-down") + eventsTotal(t, f.m, "tier-up")
		if kinds[trace.KindState] != stateEvents {
			t.Fatalf("sample=%d: state records %d vs events_total %d", sample, kinds[trace.KindState], stateEvents)
		}
		if stateEvents == 0 {
			t.Fatalf("sample=%d: workload produced no evictions; parity test lost its teeth", sample)
		}

		// Sampling must account for exactly the plain hits it removed.
		stats := f.m.Stats()
		var totalReads int64
		for _, v := range stats.ReadsServed {
			totalReads += v
		}
		if got := kinds[trace.KindRead] + rst.SampledOut; got != totalReads {
			t.Fatalf("sample=%d: recorded %d + sampled-out %d != %d reads",
				sample, kinds[trace.KindRead], rst.SampledOut, totalReads)
		}

		// The registry view and the recorder agree.
		snap := f.m.Registry().Snapshot()
		if v, ok := snap.Value("monarch_trace_events_total", obs.L("disposition", "recorded")); !ok || int64(v) != rst.Recorded {
			t.Fatalf("sample=%d: registry recorded=%v ok=%v, recorder %d", sample, v, ok, rst.Recorded)
		}
		if v, ok := snap.Value("monarch_trace_events_total", obs.L("disposition", "sampled-out")); !ok || int64(v) != rst.SampledOut {
			t.Fatalf("sample=%d: registry sampled-out=%v ok=%v, recorder %d", sample, v, ok, rst.SampledOut)
		}
	}
}

// TestTraceOverheadPathUnconfigured locks the zero-cost default: no
// TracePath means no tracer, no span hook allocation beyond the
// configured one, and MarkTraceEpoch/Tracer stay safe.
func TestTraceOverheadPathUnconfigured(t *testing.T) {
	f := newFixture(t, 0, 2, 128, nil)
	if f.m.Tracer() != nil {
		t.Fatal("tracer exists without TracePath")
	}
	f.m.MarkTraceEpoch(1) // must not panic
	buf := make([]byte, 128)
	if _, err := f.m.ReadAt(context.Background(), "f000", buf, 0); err != nil {
		t.Fatal(err)
	}
}
