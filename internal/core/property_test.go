package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// TestPropertyInvariantsUnderRandomWorkloads drives MONARCH with
// arbitrary read sequences over randomised hierarchies and checks the
// middleware's core invariants afterwards:
//
//  1. reads always return the source's bytes, whatever tier serves them;
//  2. no tier ever exceeds its quota;
//  3. a placed file is fully and correctly present on its tier;
//  4. placement happens at most once per file (no churn without an
//     eviction policy);
//  5. placement fills tiers strictly in hierarchy order.
func TestPropertyInvariantsUnderRandomWorkloads(t *testing.T) {
	ctx := context.Background()
	type workload struct {
		NumFiles uint8
		FileSize uint16
		Quota0   uint16
		Quota1   uint16
		ReadPlan []uint16 // (file, offset) pairs derived per element
		PoolSize uint8
	}
	runCase := func(w workload) bool {
		nfiles := int(w.NumFiles%12) + 1
		fileSize := int(w.FileSize%2000) + 1
		quota0 := int64(w.Quota0 % 8000)
		quota1 := int64(w.Quota1 % 8000)

		pfsRaw := storage.NewMemFS("pfs", 0)
		contents := make(map[string][]byte, nfiles)
		for i := 0; i < nfiles; i++ {
			name := fmt.Sprintf("f%02d", i)
			c := bytes.Repeat([]byte{byte(i + 1)}, fileSize)
			contents[name] = c
			if err := pfsRaw.WriteFile(ctx, name, c); err != nil {
				t.Fatal(err)
			}
		}
		pfsRaw.SetReadOnly(true)
		tier0 := storage.NewMemFS("t0", quota0)
		tier1 := storage.NewMemFS("t1", quota1)
		gp := pool.NewGoPool(int(w.PoolSize%4) + 1)
		m, err := New(Config{
			Levels:        []storage.Backend{tier0, tier1, pfsRaw},
			Pool:          gp,
			FullFileFetch: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if err := m.Init(ctx); err != nil {
			t.Fatal(err)
		}

		buf := make([]byte, 257)
		for _, step := range w.ReadPlan {
			name := fmt.Sprintf("f%02d", int(step)%nfiles)
			off := int64(step) % int64(fileSize)
			n, err := m.ReadAt(ctx, name, buf, off)
			if err != nil {
				t.Logf("read %s@%d: %v", name, off, err)
				return false
			}
			want := contents[name][off:]
			if len(want) > len(buf) {
				want = want[:len(buf)]
			}
			if n != len(want) || !bytes.Equal(buf[:n], want) {
				t.Logf("read %s@%d returned wrong bytes", name, off)
				return false
			}
		}
		// Quiesce placements.
		deadline := time.Now().Add(5 * time.Second)
		for !m.Idle() {
			if time.Now().After(deadline) {
				t.Log("placements stuck")
				return false
			}
			time.Sleep(100 * time.Microsecond)
		}

		// Invariant 2: quotas respected.
		if (quota0 > 0 && tier0.Used() > quota0) || (quota1 > 0 && tier1.Used() > quota1) {
			t.Logf("quota exceeded: %d/%d, %d/%d", tier0.Used(), quota0, tier1.Used(), quota1)
			return false
		}
		// Invariants 3-5.
		st := m.Stats()
		placed := int64(0)
		for name, want := range contents {
			lvl, err := m.LevelOf(name)
			if err != nil {
				return false
			}
			if lvl == 2 {
				continue
			}
			placed++
			tier := []*storage.MemFS{tier0, tier1}[lvl]
			got, err := tier.ReadFile(ctx, name)
			if err != nil || !bytes.Equal(got, want) {
				t.Logf("placed file %s wrong on tier %d: %v", name, lvl, err)
				return false
			}
		}
		if st.Placements != placed {
			t.Logf("placements counter %d != placed files %d", st.Placements, placed)
			return false
		}
		if st.Evictions != 0 {
			t.Logf("no-eviction run evicted %d", st.Evictions)
			return false
		}
		// Invariant 1 (final re-read through the middleware).
		for name, want := range contents {
			got := make([]byte, fileSize)
			n, err := m.ReadAt(ctx, name, got, 0)
			if err != nil || n != fileSize || !bytes.Equal(got[:n], want) {
				t.Logf("final read of %s failed: %v", name, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(runCase, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFaultWorkloadsConverge drives the enlarged placement
// state machine (queue → retry → placed / demoted → re-placed) with
// random read plans interleaved with Break/Fix toggles on tier 0 and
// checks the fault-management invariants afterwards:
//
//  1. reads always return the source's bytes, broken tier or not;
//  2. once the fault clears, the system converges: the tier returns to
//     Healthy and every file ends up placed on tier 0 with full,
//     correct content;
//  3. no entry is left stuck in the queued state after quiescence;
//  4. breaker accounting is coherent (every trip recovered, recoveries
//     never exceed probes).
func TestPropertyFaultWorkloadsConverge(t *testing.T) {
	ctx := context.Background()
	type workload struct {
		NumFiles uint8
		FileSize uint16
		Plan     []uint16 // per element: read (and occasionally Break/Fix)
	}
	runCase := func(w workload) bool {
		nfiles := int(w.NumFiles%8) + 1
		fileSize := int(w.FileSize%1500) + 1

		pfsRaw := storage.NewMemFS("pfs", 0)
		contents := make(map[string][]byte, nfiles)
		for i := 0; i < nfiles; i++ {
			name := fmt.Sprintf("f%02d", i)
			c := bytes.Repeat([]byte{byte(i + 1)}, fileSize)
			contents[name] = c
			if err := pfsRaw.WriteFile(ctx, name, c); err != nil {
				t.Fatal(err)
			}
		}
		pfsRaw.SetReadOnly(true)
		faulty := storage.NewFaulty(storage.NewMemFS("t0", 0))
		m, err := New(Config{
			Levels:        []storage.Backend{faulty, pfsRaw},
			Pool:          pool.NewGoPool(2),
			FullFileFetch: true,
			Health:        HealthConfig{ReadErrorThreshold: 2, WriteErrorThreshold: 2, ProbeAfterReads: 1},
			Retry:         RetryPolicy{MaxAttempts: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if err := m.Init(ctx); err != nil {
			t.Fatal(err)
		}

		buf := make([]byte, fileSize)
		for _, step := range w.Plan {
			switch {
			case step%17 == 0:
				faulty.Break()
			case step%23 == 0:
				faulty.Fix()
			default:
				name := fmt.Sprintf("f%02d", int(step)%nfiles)
				n, err := m.ReadAt(ctx, name, buf, 0)
				if err != nil || n != fileSize || !bytes.Equal(buf[:n], contents[name]) {
					t.Logf("read %s under faults: n=%d err=%v", name, n, err)
					return false
				}
			}
		}

		// Invariant 2: clear the fault and converge.
		faulty.Fix()
		deadline := time.Now().Add(10 * time.Second)
		for {
			for i := 0; i < nfiles; i++ {
				name := fmt.Sprintf("f%02d", i)
				if _, err := m.ReadAt(ctx, name, buf, 0); err != nil {
					t.Logf("convergence read %s: %v", name, err)
					return false
				}
			}
			for !m.Idle() {
				if time.Now().After(deadline) {
					t.Log("placements stuck")
					return false
				}
				time.Sleep(100 * time.Microsecond)
			}
			placed := 0
			for i := 0; i < nfiles; i++ {
				if lvl, _ := m.LevelOf(fmt.Sprintf("f%02d", i)); lvl == 0 {
					placed++
				}
			}
			if placed == nfiles && m.TierState(0) == TierHealthy {
				break
			}
			if time.Now().After(deadline) {
				t.Logf("never converged: placed=%d/%d state=%v", placed, nfiles, m.TierState(0))
				return false
			}
		}
		// Invariant 3: final states are Placed with correct tier content.
		for i := 0; i < nfiles; i++ {
			name := fmt.Sprintf("f%02d", i)
			e, _ := m.meta.get(name)
			if s := e.currentState(); s != statePlaced {
				t.Logf("%s stuck in state %d", name, s)
				return false
			}
			got, err := faulty.ReadFile(ctx, name)
			if err != nil || !bytes.Equal(got, contents[name]) {
				t.Logf("tier content of %s wrong: %v", name, err)
				return false
			}
		}
		// Invariant 4: coherent breaker accounting.
		st := m.Stats()
		if st.TierTrips != st.TierRecoveries || st.TierRecoveries > st.Probes {
			t.Logf("incoherent breaker stats: %+v", st)
			return false
		}
		return true
	}
	if err := quick.Check(runCase, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLevelOrderRespected checks that with generous quotas the
// placement always lands on level 0, never skipping ahead.
func TestPropertyLevelOrderRespected(t *testing.T) {
	ctx := context.Background()
	err := quick.Check(func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 16 {
			return true
		}
		pfsRaw := storage.NewMemFS("pfs", 0)
		for i, s := range sizes {
			if err := pfsRaw.WriteFile(ctx, fmt.Sprintf("f%d", i),
				bytes.Repeat([]byte{1}, int(s)+1)); err != nil {
				return false
			}
		}
		pfsRaw.SetReadOnly(true)
		tier0 := storage.NewMemFS("t0", 0) // unlimited
		tier1 := storage.NewMemFS("t1", 0)
		gp := pool.NewGoPool(2)
		m, err := New(Config{
			Levels:        []storage.Backend{tier0, tier1, pfsRaw},
			Pool:          gp,
			FullFileFetch: true,
		})
		if err != nil {
			return false
		}
		defer m.Close()
		if err := m.Init(ctx); err != nil {
			return false
		}
		buf := make([]byte, 8)
		for i := range sizes {
			if _, err := m.ReadAt(ctx, fmt.Sprintf("f%d", i), buf, 0); err != nil {
				return false
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for !m.Idle() {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(100 * time.Microsecond)
		}
		// With room on level 0, nothing should land on level 1.
		if tier1.Used() != 0 {
			return false
		}
		for i := range sizes {
			if lvl, _ := m.LevelOf(fmt.Sprintf("f%d", i)); lvl != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}
