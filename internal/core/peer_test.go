package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// peerFixture builds a 3-level hierarchy [ssd, peer, pfs] where the
// middle level stands in for a peernet.Tier: a read-only MemFS holding
// whatever "sibling caches" were seeded into it. Owns reports files NOT
// prefixed "remote/" as locally owned.
type peerFixture struct {
	ssd  *storage.MemFS
	peer *storage.Faulty
	pfs  *storage.Counting
	m    *Monarch
}

func newPeerFixture(t *testing.T, cfgEdit func(*Config)) *peerFixture {
	t.Helper()
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	for _, name := range []string{"local/a", "local/b", "remote/c", "remote/d"} {
		content := bytes.Repeat([]byte(name[len(name)-1:]), 64)
		if err := pfsRaw.WriteFile(ctx, name, content); err != nil {
			t.Fatal(err)
		}
	}
	pfsRaw.SetReadOnly(true)
	pfs := storage.NewCounting(pfsRaw)

	peerRaw := storage.NewMemFS("peers", 0)
	// The owner of remote/c has cached it; remote/d's owner has not.
	if err := peerRaw.WriteFile(ctx, "remote/c", bytes.Repeat([]byte("c"), 64)); err != nil {
		t.Fatal(err)
	}
	peerRaw.SetReadOnly(true)
	peer := storage.NewFaulty(peerRaw)

	ssd := storage.NewMemFS("ssd", 0)
	gp := pool.NewGoPool(2)
	cfg := Config{
		Levels:        []storage.Backend{ssd, peer, pfs},
		Pool:          gp,
		FullFileFetch: true,
		Peer: PeerConfig{
			Tier: 1,
			Owns: func(name string) bool { return !strings.HasPrefix(name, "remote/") },
		},
	}
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return &peerFixture{ssd: ssd, peer: peer, pfs: pfs, m: m}
}

func (f *peerFixture) read(t *testing.T, name string) []byte {
	t.Helper()
	data, err := f.m.ReadFull(context.Background(), name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

func TestPeerConfigValidation(t *testing.T) {
	mem := storage.NewMemFS("a", 0)
	gp := pool.NewGoPool(1)
	defer gp.Close()
	owns := func(string) bool { return true }
	levels := []storage.Backend{mem, mem, mem}
	cases := []struct {
		name string
		peer PeerConfig
	}{
		{"tier is top level via negative", PeerConfig{Tier: -1, Owns: owns}},
		{"tier is the source", PeerConfig{Tier: 2, Owns: owns}},
		{"tier out of range", PeerConfig{Tier: 5, Owns: owns}},
		{"missing Owns", PeerConfig{Tier: 1}},
	}
	for _, c := range cases {
		if _, err := New(Config{Levels: levels, Pool: gp, Peer: c.peer}); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := New(Config{Levels: levels, Pool: gp, Peer: PeerConfig{Tier: 1, Owns: owns}}); err != nil {
		t.Errorf("valid peer config rejected: %v", err)
	}
}

// TestPeerHitServesFromOwnerCache: a non-owned file the owner has
// cached is served by the peer tier, counted as a peer hit, and never
// placed locally.
func TestPeerHitServesFromOwnerCache(t *testing.T) {
	f := newPeerFixture(t, nil)
	data := f.read(t, "remote/c")
	if !bytes.Equal(data, bytes.Repeat([]byte("c"), 64)) {
		t.Fatalf("peer read returned %q", data)
	}
	s := f.m.Stats()
	if s.PeerHits != 1 || s.PeerHitBytes != 64 || s.PeerMisses != 0 {
		t.Fatalf("stats = hits %d bytes %d misses %d", s.PeerHits, s.PeerHitBytes, s.PeerMisses)
	}
	if s.ReadsServed[1] != 1 {
		t.Fatalf("peer tier served %d reads, want 1", s.ReadsServed[1])
	}
	if ops := f.pfs.Counts().DataOps(); ops != 0 {
		t.Fatalf("peer hit cost %d PFS data ops", ops)
	}
	// Non-owned files must never be cached locally.
	waitFixtureIdle(t, f.m)
	if lvl, _ := f.m.LevelOf("remote/c"); lvl != 2 {
		t.Fatalf("remote/c placed at level %d", lvl)
	}
	if _, err := f.ssd.Stat(context.Background(), "remote/c"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("non-owned file landed on local ssd: %v", err)
	}
}

// TestPeerMissFallsThroughCleanly: the owner not having cached the file
// yet is protocol behaviour — the source serves the read and nothing
// feeds the fallback counter or the breaker.
func TestPeerMissFallsThroughCleanly(t *testing.T) {
	f := newPeerFixture(t, nil)
	data := f.read(t, "remote/d")
	if !bytes.Equal(data, bytes.Repeat([]byte("d"), 64)) {
		t.Fatalf("miss read returned %q", data)
	}
	s := f.m.Stats()
	if s.PeerMisses != 1 || s.PeerHits != 0 {
		t.Fatalf("stats = misses %d hits %d", s.PeerMisses, s.PeerHits)
	}
	if s.Fallbacks != 0 {
		t.Fatalf("clean miss counted as fallback (%d)", s.Fallbacks)
	}
	if f.m.TierState(1) != TierHealthy {
		t.Fatalf("clean miss fed the breaker: %v", f.m.TierState(1))
	}
	if s.ReadsServed[2] != 1 {
		t.Fatalf("source served %d reads, want 1", s.ReadsServed[2])
	}
}

// TestPeerFailureFallsBackAndTripsBreaker: transport-level peer errors
// take the fallback path, count under stage="peer", and demote the peer
// tier so later reads go straight to the source.
func TestPeerFailureFallsBackAndTripsBreaker(t *testing.T) {
	f := newPeerFixture(t, func(cfg *Config) {
		cfg.Health.ReadErrorThreshold = 2
	})
	f.peer.Break()
	// Each read still succeeds (PFS fallback); two failures trip the
	// breaker.
	for i := 0; i < 2; i++ {
		f.read(t, "remote/c")
	}
	s := f.m.Stats()
	if s.Fallbacks != 2 || s.PeerHits != 0 || s.PeerMisses != 0 {
		t.Fatalf("stats = fallbacks %d hits %d misses %d", s.Fallbacks, s.PeerHits, s.PeerMisses)
	}
	if f.m.TierState(1) != TierDown {
		t.Fatalf("peer tier state = %v, want down", f.m.TierState(1))
	}
	vars := f.m.Registry().Vars()
	if got := vars[`monarch_errors_total{stage="peer"}`]; got != float64(2) {
		t.Fatalf(`monarch_errors_total{stage="peer"} = %v, want 2`, got)
	}
	// With the breaker open, reads skip the peer tier entirely: no new
	// fallbacks, served straight from the source.
	f.read(t, "remote/c")
	if s = f.m.Stats(); s.Fallbacks != 2 {
		t.Fatalf("read against open breaker attempted the peer tier (fallbacks %d)", s.Fallbacks)
	}
}

// TestPeerOwnedFilesStillPlaceLocally: peer routing must not disturb
// the owned-file path — first read places the file on the local tier.
func TestPeerOwnedFilesStillPlaceLocally(t *testing.T) {
	f := newPeerFixture(t, nil)
	f.read(t, "local/a")
	waitFixtureIdle(t, f.m)
	if lvl, _ := f.m.LevelOf("local/a"); lvl != 0 {
		t.Fatalf("owned file at level %d, want 0", lvl)
	}
	s := f.m.Stats()
	if s.PeerHits != 0 || s.PeerMisses != 0 {
		t.Fatalf("owned read touched the peer path: %+v", s)
	}
	// Second read is a local hit.
	f.read(t, "local/a")
	if s = f.m.Stats(); s.ReadsServed[0] != 1 {
		t.Fatalf("local tier served %d reads, want 1", s.ReadsServed[0])
	}
}

// TestPeerPreStageOnlyOwned: pre-training staging copies owned files
// only; non-owned files stay on the source.
func TestPeerPreStageOnlyOwned(t *testing.T) {
	f := newPeerFixture(t, func(cfg *Config) {
		cfg.Staging = StagePreTraining
	})
	waitFixtureIdle(t, f.m)
	for name, want := range map[string]int{"local/a": 0, "local/b": 0, "remote/c": 2, "remote/d": 2} {
		if lvl, err := f.m.LevelOf(name); err != nil || lvl != want {
			t.Errorf("%s at level %d (err %v), want %d", name, lvl, err, want)
		}
	}
}

// TestPeerTierNeverPlacementDestination: when the local tier is too
// small, the placer must skip the peer tier (it is a read-only view of
// sibling caches, not storage) and record a skip — not attempt a write.
func TestPeerTierNeverPlacementDestination(t *testing.T) {
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	if err := pfsRaw.WriteFile(ctx, "big", bytes.Repeat([]byte("x"), 32)); err != nil {
		t.Fatal(err)
	}
	pfsRaw.SetReadOnly(true)
	// Unlimited-quota MemFS: without the explicit peer-tier guard the
	// placer would see plenty of free space and try to write into it.
	peerRaw := storage.NewMemFS("peers", 0)
	gp := pool.NewGoPool(1)
	m, err := New(Config{
		Levels:        []storage.Backend{storage.NewMemFS("ssd", 4), peerRaw, storage.NewCounting(pfsRaw)},
		Pool:          gp,
		FullFileFetch: true,
		Peer:          PeerConfig{Tier: 1, Owns: func(string) bool { return true }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if _, err := m.ReadAt(ctx, "big", make([]byte, 32), 0); err != nil {
		t.Fatal(err)
	}
	waitFixtureIdle(t, m)
	if _, err := peerRaw.Stat(ctx, "big"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("placement reached the peer tier: %v", err)
	}
	s := m.Stats()
	if s.PlacementSkips != 1 || s.PlacementErrors != 0 {
		t.Fatalf("skips %d errors %d, want 1/0", s.PlacementSkips, s.PlacementErrors)
	}
}

// TestPeerDisabledModePassesThrough: Disabled short-circuits peer
// routing along with everything else.
func TestPeerDisabledModePassesThrough(t *testing.T) {
	f := newPeerFixture(t, func(cfg *Config) {
		cfg.Disabled = true
		cfg.Pool = nil
	})
	f.read(t, "remote/c")
	s := f.m.Stats()
	if s.PeerHits != 0 || s.ReadsServed[2] != 1 {
		t.Fatalf("disabled mode routed to peers: %+v", s)
	}
}

func waitFixtureIdle(t *testing.T, m *Monarch) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placements did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}
