package core

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// benchWriteStack builds a write-enabled middleware over MemFS tiers.
// journal=true adds a real on-disk journal (the WAL append is the
// dominant cost it measures); durability picks the ack path.
func benchWriteStack(b *testing.B, d Durability, journaled bool) *Monarch {
	b.Helper()
	ctx := context.Background()
	pfs := storage.NewMemFS("pfs", 0)
	if err := pfs.WriteFile(ctx, "data/seed", bytes.Repeat([]byte{1}, 1024)); err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Levels:        []storage.Backend{storage.NewMemFS("ssd", 0), pfs},
		Pool:          pool.NewGoPool(4),
		FullFileFetch: true,
		Write: WriteConfig{
			Enabled:    true,
			Durability: func(string) Durability { return d },
		},
	}
	if journaled {
		cfg.Write.JournalPath = filepath.Join(b.TempDir(), "bench.journal")
	}
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	return m
}

// benchWriteLoop writes chunkSize-byte slices round-robin across a few
// fixed-size checkpoint shards — the paper's bursty checkpoint shape.
func benchWriteLoop(b *testing.B, m *Monarch, chunkSize int) {
	b.Helper()
	ctx := context.Background()
	const shards = 4
	shardSize := int64(64 << 20)
	for i := 0; i < shards; i++ {
		if err := m.Create(ctx, fmt.Sprintf("ckpt/s%d", i), shardSize); err != nil {
			b.Fatal(err)
		}
	}
	chunk := bytes.Repeat([]byte{0xC5}, chunkSize)
	slots := int(shardSize) / chunkSize
	b.SetBytes(int64(chunkSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("ckpt/s%d", i%shards)
		off := int64((i/shards)%slots) * int64(chunkSize)
		if _, err := m.WriteAt(ctx, name, chunk, off); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := m.Flush(ctx, ""); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWriteThrough is the direct-PFS checkpoint baseline: every
// WriteAt pays the source-tier write before acking.
func BenchmarkWriteThrough(b *testing.B) {
	benchWriteLoop(b, benchWriteStack(b, WriteThrough, false), 256<<10)
}

// BenchmarkWriteBack acks on tier 0; the flush to the PFS runs behind
// the timer (retired in StopTimer's drain).
func BenchmarkWriteBack(b *testing.B) {
	benchWriteLoop(b, benchWriteStack(b, WriteBack, false), 256<<10)
}

// BenchmarkWriteBackJournaled adds the crash journal to the ack path:
// the WAL append (an on-disk file, no fsync) is the durability tax.
func BenchmarkWriteBackJournaled(b *testing.B) {
	benchWriteLoop(b, benchWriteStack(b, WriteBack, true), 256<<10)
}

// BenchmarkWriteBackSmall measures the fixed per-write overhead with a
// 4 KiB payload (metadata-log-style writes rather than shard bursts).
func BenchmarkWriteBackSmall(b *testing.B) {
	benchWriteLoop(b, benchWriteStack(b, WriteBack, false), 4<<10)
}
