package core

import (
	"fmt"
	"sync"
	"time"
)

// EventKind classifies middleware events.
type EventKind int

// Event kinds recorded by the log.
const (
	// EventPlaced: a file landed on an upper tier.
	EventPlaced EventKind = iota
	// EventSkipped: no tier had room (or fetching was disabled).
	EventSkipped
	// EventFailed: an operational error aborted a placement.
	EventFailed
	// EventEvicted: an eviction-policy ablation removed a file.
	EventEvicted
	// EventFallback: a read was re-served from the PFS after a tier
	// failure.
	EventFallback
	// EventDemoted: the circuit breaker re-pointed a placed file at the
	// source level because its tier is Down.
	EventDemoted
	// EventRetried: a transient placement failure was re-queued under
	// Config.Retry.
	EventRetried
	// EventTierDown: a tier's circuit breaker opened after repeated
	// errors.
	EventTierDown
	// EventTierUp: a recovery probe returned a Down tier to service;
	// Bytes carries the number of entries made re-placeable.
	EventTierUp
	// EventChunkPlaced: one chunk of a chunked placement landed on an
	// upper tier; Bytes carries the chunk length.
	EventChunkPlaced
	// EventPartialHit: a read was served from an upper tier while that
	// file's chunked placement was still in flight; Bytes carries the
	// bytes served.
	EventPartialHit
	// EventOpError: a best-effort side operation failed — partial-copy
	// cleanup after a failed chunk job, an eviction victim's removal,
	// or a probe's scratch-file cleanup. These paths used to drop their
	// errors silently; now they surface here and in the
	// monarch_errors_total metric.
	EventOpError
	// EventPromoted: an unplaceable file re-entered the placement
	// pipeline because its heat came to justify displacing a colder
	// resident.
	EventPromoted
	// EventFlushed: a write-back file's dirty bytes reached the PFS;
	// Bytes carries the dirty bytes retired.
	EventFlushed
	// EventWriteStalled: a write-back writer blocked on the dirty
	// budget until the flusher drained; Bytes carries the write size.
	EventWriteStalled
	// EventRecovered: Init replayed journaled write-back state into the
	// PFS after a crash; Bytes carries the number of files recovered.
	EventRecovered

	// eventKinds counts the kinds above; keep it last.
	eventKinds
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventPlaced:
		return "placed"
	case EventSkipped:
		return "skipped"
	case EventFailed:
		return "failed"
	case EventEvicted:
		return "evicted"
	case EventFallback:
		return "fallback"
	case EventDemoted:
		return "demoted"
	case EventRetried:
		return "retried"
	case EventTierDown:
		return "tier-down"
	case EventTierUp:
		return "tier-up"
	case EventChunkPlaced:
		return "chunk-placed"
	case EventPartialHit:
		return "partial-hit"
	case EventOpError:
		return "op-error"
	case EventPromoted:
		return "promoted"
	case EventFlushed:
		return "flushed"
	case EventWriteStalled:
		return "write-stalled"
	case EventRecovered:
		return "recovered"
	default:
		return "unknown"
	}
}

// Event is one middleware occurrence worth surfacing to operators.
type Event struct {
	Kind  EventKind
	File  string
	Level int // tier involved (-1 when not applicable)
	Bytes int64
	Err   error
	// Seq orders events; Wall is the host time the event was recorded
	// (informational only — experiments run on virtual time).
	Seq  uint64
	Wall time.Time
}

// String formats the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case EventPlaced:
		return fmt.Sprintf("#%d placed %s on level %d (%d bytes)", e.Seq, e.File, e.Level, e.Bytes)
	case EventEvicted:
		return fmt.Sprintf("#%d evicted %s from level %d", e.Seq, e.File, e.Level)
	case EventFailed:
		return fmt.Sprintf("#%d placement of %s failed: %v", e.Seq, e.File, e.Err)
	case EventFallback:
		return fmt.Sprintf("#%d read of %s fell back to the source level", e.Seq, e.File)
	case EventDemoted:
		return fmt.Sprintf("#%d demoted %s off level %d to the source level", e.Seq, e.File, e.Level)
	case EventRetried:
		return fmt.Sprintf("#%d placement of %s re-queued after level %d error: %v", e.Seq, e.File, e.Level, e.Err)
	case EventTierDown:
		return fmt.Sprintf("#%d tier %d down: %v", e.Seq, e.Level, e.Err)
	case EventTierUp:
		return fmt.Sprintf("#%d tier %d back in service (%d entries re-placeable)", e.Seq, e.Level, e.Bytes)
	case EventChunkPlaced:
		return fmt.Sprintf("#%d chunk of %s placed on level %d (%d bytes)", e.Seq, e.File, e.Level, e.Bytes)
	case EventPartialHit:
		return fmt.Sprintf("#%d read of %s served mid-copy from level %d (%d bytes)", e.Seq, e.File, e.Level, e.Bytes)
	case EventOpError:
		return fmt.Sprintf("#%d best-effort operation on %s (level %d) failed: %v", e.Seq, e.File, e.Level, e.Err)
	case EventPromoted:
		return fmt.Sprintf("#%d promoted %s back into placement (%d bytes)", e.Seq, e.File, e.Bytes)
	case EventFlushed:
		return fmt.Sprintf("#%d flushed %s to the PFS (%d dirty bytes retired)", e.Seq, e.File, e.Bytes)
	case EventWriteStalled:
		return fmt.Sprintf("#%d write of %s stalled on the dirty budget (%d bytes)", e.Seq, e.File, e.Bytes)
	case EventRecovered:
		return fmt.Sprintf("#%d recovered %d journaled files to the PFS", e.Seq, e.Bytes)
	default:
		return fmt.Sprintf("#%d %s %s", e.Seq, e.Kind, e.File)
	}
}

// EventLog is a bounded ring of recent middleware events, attached via
// Config.Events. It is safe for concurrent use and never blocks the
// read or placement paths; when full, the oldest events are dropped.
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	start   int
	n       int
	seq     uint64
	dropped uint64
}

// NewEventLog creates a ring holding up to capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		panic("core: event log capacity must be positive")
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// add records one event.
func (l *EventLog) add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	e.Wall = time.Now()
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = e
		l.n++
		return
	}
	l.buf[l.start] = e
	l.start = (l.start + 1) % len(l.buf)
	l.dropped++
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}

// Dropped returns how many events were evicted from the ring.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// emit is the nil-safe hook used by the middleware internals.
func (l *EventLog) emit(e Event) {
	if l == nil {
		return
	}
	l.add(e)
}
