package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

func TestLRUPolicyOrder(t *testing.T) {
	p := NewLRU()
	if p.Name() != "lru" {
		t.Fatal("name")
	}
	p.OnPlaced("a", 0)
	p.OnPlaced("b", 0)
	p.OnPlaced("c", 0)
	p.OnAccess("a") // a becomes most recent
	v, ok := p.Victim(0)
	if !ok || v != "b" {
		t.Fatalf("victim = %q, want b", v)
	}
	p.OnEvicted("b")
	v, _ = p.Victim(0)
	if v != "c" {
		t.Fatalf("next victim = %q, want c", v)
	}
}

func TestFIFOPolicyIgnoresAccess(t *testing.T) {
	p := NewFIFO()
	p.OnPlaced("a", 0)
	p.OnPlaced("b", 0)
	p.OnAccess("a")
	v, ok := p.Victim(0)
	if !ok || v != "a" {
		t.Fatalf("victim = %q, want a (insertion order)", v)
	}
}

func TestPolicyEmptyLevel(t *testing.T) {
	p := NewLRU()
	if _, ok := p.Victim(3); ok {
		t.Fatal("victim from empty level")
	}
	p.OnEvicted("never-placed") // must not panic
	p.OnAccess("never-placed")
}

func TestPolicyPerLevelIsolation(t *testing.T) {
	p := NewFIFO()
	p.OnPlaced("a", 0)
	p.OnPlaced("b", 1)
	if v, ok := p.Victim(1); !ok || v != "b" {
		t.Fatalf("level 1 victim = %q", v)
	}
	if v, _ := p.Victim(0); v != "a" {
		t.Fatalf("level 0 victim = %q", v)
	}
}

func TestPolicyReplacement(t *testing.T) {
	p := NewLRU()
	p.OnPlaced("a", 0)
	p.OnPlaced("a", 1) // moved levels
	if _, ok := p.Victim(0); ok {
		t.Fatal("stale entry left on level 0")
	}
	if v, ok := p.Victim(1); !ok || v != "a" {
		t.Fatalf("level 1 victim = %q", v)
	}
}

// TestEvictionCausesThrashing demonstrates the paper's §III-A argument:
// with a cache smaller than the dataset and random once-per-epoch
// access, an evicting MONARCH keeps copying files in and out while the
// no-eviction policy settles after epoch 1.
func TestEvictionCausesThrashing(t *testing.T) {
	run := func(policy EvictionPolicy) (evictions, placements int64, pfsReads int64) {
		ctx := context.Background()
		pfsRaw := storage.NewMemFS("lustre", 0)
		const files = 10
		for i := 0; i < files; i++ {
			if err := pfsRaw.WriteFile(ctx, fmt.Sprintf("f%d", i), bytes.Repeat([]byte{1}, 1000)); err != nil {
				t.Fatal(err)
			}
		}
		pfsRaw.SetReadOnly(true)
		pfs := storage.NewCounting(pfsRaw)
		tier0 := storage.NewMemFS("ssd", 5000) // half the dataset
		gp := pool.NewGoPool(1)
		m, err := New(Config{
			Levels:        []storage.Backend{tier0, pfs},
			Pool:          gp,
			FullFileFetch: true,
			Eviction:      policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if err := m.Init(ctx); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 100)
		for epoch := 0; epoch < 3; epoch++ {
			for i := 0; i < files; i++ {
				if _, err := m.ReadAt(ctx, fmt.Sprintf("f%d", i), buf, 0); err != nil {
					t.Fatal(err)
				}
				// Serialize placements so eviction decisions are
				// deterministic.
				for !m.Idle() {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}
		st := m.Stats()
		return st.Evictions, st.Placements, pfs.Counts().Ops[storage.OpRead]
	}

	evNone, plNone, pfsNone := run(nil)
	if evNone != 0 {
		t.Fatalf("no-eviction run evicted %d", evNone)
	}
	evLRU, plLRU, pfsLRU := run(NewLRU())
	if evLRU == 0 {
		t.Fatal("LRU run never evicted despite undersized tier")
	}
	if plLRU <= plNone {
		t.Fatalf("LRU placements (%d) should exceed no-eviction (%d): churn", plLRU, plNone)
	}
	if pfsLRU <= pfsNone {
		t.Fatalf("LRU PFS reads (%d) should exceed no-eviction (%d): extra PFS pressure", pfsLRU, pfsNone)
	}
}

func TestEvictionVictimNeverTooBigLoop(t *testing.T) {
	// A file larger than the whole tier must not trigger an eviction
	// spiral: tryMakeRoom must bail out.
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	if err := pfsRaw.WriteFile(ctx, "small", bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := pfsRaw.WriteFile(ctx, "huge", bytes.Repeat([]byte{2}, 10_000)); err != nil {
		t.Fatal(err)
	}
	pfsRaw.SetReadOnly(true)
	tier0 := storage.NewMemFS("ssd", 500)
	gp := pool.NewGoPool(1)
	m, err := New(Config{
		Levels:        []storage.Backend{tier0, pfsRaw},
		Pool:          gp,
		FullFileFetch: true,
		Eviction:      NewLRU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 50)
	if _, err := m.ReadAt(ctx, "small", buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt(ctx, "huge", buf, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placement stuck")
		}
		time.Sleep(time.Millisecond)
	}
	if lvl, _ := m.LevelOf("small"); lvl != 0 {
		t.Fatal("small file should stay placed")
	}
	if lvl, _ := m.LevelOf("huge"); lvl != 1 {
		t.Fatal("huge file must remain on PFS")
	}
	if st := m.Stats(); st.Evictions != 0 {
		t.Fatalf("evicted %d files for an unplaceable giant", st.Evictions)
	}
}
