package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// healthFixture wires a 2-level hierarchy whose tier 0 is a
// fault-injectable, op-counted MemFS, with aggressive breaker settings
// so tests trip and recover quickly.
type healthFixture struct {
	faulty *storage.Faulty
	tier0  *storage.Counting // wraps faulty: counts attempts against the tier
	pfs    *storage.MemFS
	log    *EventLog
	m      *Monarch
}

func newHealthFixture(t *testing.T, nfiles, size int, cfgEdit func(*Config)) *healthFixture {
	t.Helper()
	ctx := context.Background()
	pfs := storage.NewMemFS("lustre", 0)
	for i := 0; i < nfiles; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("f%03d", i),
			bytes.Repeat([]byte{byte(i + 1)}, size)); err != nil {
			t.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	faulty := storage.NewFaulty(storage.NewMemFS("ssd", 0))
	tier0 := storage.NewCounting(faulty)
	log := NewEventLog(1024)
	cfg := Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          pool.NewGoPool(2),
		FullFileFetch: true,
		Events:        log,
		Health:        HealthConfig{ReadErrorThreshold: 2, WriteErrorThreshold: 2, ProbeAfterReads: 1},
	}
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return &healthFixture{faulty: faulty, tier0: tier0, pfs: pfs, log: log, m: m}
}

func (f *healthFixture) waitIdle(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !f.m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placements did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

func (f *healthFixture) readAll(t *testing.T, nfiles, size int) {
	t.Helper()
	p := make([]byte, size)
	for i := 0; i < nfiles; i++ {
		name := fmt.Sprintf("f%03d", i)
		n, err := f.m.ReadAt(context.Background(), name, p, 0)
		if err != nil || n != size || p[0] != byte(i+1) {
			t.Fatalf("read %s: n=%d err=%v first=%d", name, n, err, p[0])
		}
	}
}

// TestSelfHealingLoop is the acceptance scenario: tier 0 breaks
// mid-run, the breaker opens within the configured threshold (bounded
// doomed attempts, then zero), entries demote to the PFS; after Fix a
// probe reopens the tier, demoted files are re-placed, and reads are
// served from tier 0 again — all visible via Stats and the EventLog.
func TestSelfHealingLoop(t *testing.T) {
	const nfiles, size = 4, 100
	f := newHealthFixture(t, nfiles, size, nil)

	// Epoch 1: everything placed on tier 0.
	f.readAll(t, nfiles, size)
	f.waitIdle(t)
	for i := 0; i < nfiles; i++ {
		if lvl, _ := f.m.LevelOf(fmt.Sprintf("f%03d", i)); lvl != 0 {
			t.Fatalf("f%03d not placed (level %d)", i, lvl)
		}
	}
	if st := f.m.TierState(0); st != TierHealthy {
		t.Fatalf("tier state = %v", st)
	}

	// The device dies. The breaker must open after at most
	// ReadErrorThreshold (=2) failed attempts; every further read must
	// go straight to the PFS with zero attempts against tier 0.
	f.faulty.Break()
	attemptsBefore := f.tier0.Counts().Ops[storage.OpRead]
	for epoch := 0; epoch < 2; epoch++ {
		f.readAll(t, nfiles, size)
	}
	doomed := f.tier0.Counts().Ops[storage.OpRead] - attemptsBefore
	if doomed > 2 {
		t.Fatalf("doomed tier-0 read attempts = %d, want <= threshold 2", doomed)
	}
	if st := f.m.TierState(0); st != TierDown {
		t.Fatalf("tier state = %v, want down", st)
	}
	for i := 0; i < nfiles; i++ {
		if lvl, _ := f.m.LevelOf(fmt.Sprintf("f%03d", i)); lvl != 1 {
			t.Fatalf("f%03d not demoted (level %d)", i, lvl)
		}
	}
	f.waitIdle(t) // probes run on the pool; let them land
	st := f.m.Stats()
	if st.TierTrips != 1 || st.Demotions != nfiles {
		t.Fatalf("trips=%d demotions=%d, want 1/%d", st.TierTrips, st.Demotions, nfiles)
	}
	if st.Fallbacks != 2 {
		t.Fatalf("fallbacks = %d, want exactly the 2 doomed attempts", st.Fallbacks)
	}
	if st.Probes == 0 {
		t.Fatal("no recovery probes attempted while down")
	}

	// The device comes back: the next read's probe must reopen the tier.
	f.faulty.Fix()
	deadline := time.Now().Add(5 * time.Second)
	for f.m.TierState(0) != TierHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("tier never recovered (state %v)", f.m.TierState(0))
		}
		f.readAll(t, 1, size) // ticks the probe gate
		time.Sleep(time.Millisecond)
	}

	// Re-placement epoch: demoted entries re-enter the pipeline.
	f.readAll(t, nfiles, size)
	f.waitIdle(t)
	for i := 0; i < nfiles; i++ {
		if lvl, _ := f.m.LevelOf(fmt.Sprintf("f%03d", i)); lvl != 0 {
			t.Fatalf("f%03d not re-placed (level %d)", i, lvl)
		}
	}
	// And the next epoch is served from tier 0 again.
	served0 := f.m.Stats().ReadsServed[0]
	f.readAll(t, nfiles, size)
	if got := f.m.Stats().ReadsServed[0] - served0; got != nfiles {
		t.Fatalf("post-recovery reads from tier0 = %d, want %d", got, nfiles)
	}

	st = f.m.Stats()
	if st.TierRecoveries != 1 {
		t.Fatalf("recoveries = %d", st.TierRecoveries)
	}
	if st.Placements != 2*nfiles {
		t.Fatalf("placements = %d, want %d (initial + re-placement)", st.Placements, 2*nfiles)
	}
	byKind := map[EventKind]int{}
	for _, e := range f.log.Events() {
		byKind[e.Kind]++
	}
	if byKind[EventTierDown] != 1 || byKind[EventTierUp] != 1 {
		t.Fatalf("tier events down=%d up=%d", byKind[EventTierDown], byKind[EventTierUp])
	}
	if byKind[EventDemoted] != nfiles {
		t.Fatalf("demoted events = %d", byKind[EventDemoted])
	}
}

// TestRetryRecoversFromTransientWriteFailure: with Config.Retry, one
// injected transient write failure re-queues the placement instead of
// marking the file unplaceable.
func TestRetryRecoversFromTransientWriteFailure(t *testing.T) {
	const size = 200
	f := newHealthFixture(t, 1, size, func(c *Config) {
		c.Retry = RetryPolicy{MaxAttempts: 3}
	})
	f.faulty.FailNextWrites(1)
	f.readAll(t, 1, size)
	f.waitIdle(t)
	if lvl, _ := f.m.LevelOf("f000"); lvl != 0 {
		t.Fatalf("file not placed after retry (level %d)", lvl)
	}
	st := f.m.Stats()
	if st.PlacementRetries != 1 || st.PlacementErrors != 0 || st.Placements != 1 {
		t.Fatalf("retries=%d errors=%d placements=%d", st.PlacementRetries, st.PlacementErrors, st.Placements)
	}
	// One write error then a success: the tier must settle back healthy.
	if ts := f.m.TierState(0); ts != TierHealthy {
		t.Fatalf("tier state = %v", ts)
	}
	found := false
	for _, e := range f.log.Events() {
		if e.Kind == EventRetried && e.File == "f000" {
			found = true
		}
	}
	if !found {
		t.Fatal("no EventRetried emitted")
	}
}

// TestRetryExhaustionMarksUnplaceable: a persistent failure burns the
// attempt budget and then gives up exactly as before.
func TestRetryExhaustionMarksUnplaceable(t *testing.T) {
	const size = 100
	f := newHealthFixture(t, 1, size, func(c *Config) {
		c.Retry = RetryPolicy{MaxAttempts: 2}
	})
	f.faulty.FailEveryNthWrite(1) // every write fails
	f.readAll(t, 1, size)
	f.waitIdle(t)
	if lvl, _ := f.m.LevelOf("f000"); lvl != 1 {
		t.Fatalf("level = %d, want 1", lvl)
	}
	st := f.m.Stats()
	if st.PlacementRetries != 1 || st.PlacementErrors != 1 || st.Placements != 0 {
		t.Fatalf("retries=%d errors=%d placements=%d", st.PlacementRetries, st.PlacementErrors, st.Placements)
	}
	// Two consecutive write errors hit WriteErrorThreshold=2: breaker
	// opens from the write path too.
	if ts := f.m.TierState(0); ts != TierDown {
		t.Fatalf("tier state = %v, want down", ts)
	}
}

// TestPermanentErrorsDoNotRetry: quota exhaustion (ErrNoSpace on every
// tier) and read-only tiers mark unplaceable without retry churn even
// when Config.Retry is enabled.
func TestPermanentErrorsDoNotRetry(t *testing.T) {
	ctx := context.Background()
	pfs := storage.NewMemFS("lustre", 0)
	if err := pfs.WriteFile(ctx, "f", bytes.Repeat([]byte{1}, 1000)); err != nil {
		t.Fatal(err)
	}
	pfs.SetReadOnly(true)

	t.Run("no-space", func(t *testing.T) {
		tier0 := storage.NewMemFS("ssd", 10) // file never fits
		m, err := New(Config{
			Levels:        []storage.Backend{tier0, pfs},
			Pool:          pool.NewGoPool(1),
			FullFileFetch: true,
			Retry:         RetryPolicy{MaxAttempts: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if err := m.Init(ctx); err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 1000)
		if _, err := m.ReadAt(ctx, "f", p, 0); err != nil {
			t.Fatal(err)
		}
		for !m.Idle() {
			time.Sleep(time.Millisecond)
		}
		st := m.Stats()
		if st.PlacementRetries != 0 || st.PlacementSkips != 1 {
			t.Fatalf("retries=%d skips=%d", st.PlacementRetries, st.PlacementSkips)
		}
	})

	t.Run("read-only", func(t *testing.T) {
		tier0 := storage.NewMemFS("ssd", 0)
		tier0.SetReadOnly(true)
		m, err := New(Config{
			Levels:        []storage.Backend{tier0, pfs},
			Pool:          pool.NewGoPool(1),
			FullFileFetch: true,
			Retry:         RetryPolicy{MaxAttempts: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if err := m.Init(ctx); err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 1000)
		if _, err := m.ReadAt(ctx, "f", p, 0); err != nil {
			t.Fatal(err)
		}
		for !m.Idle() {
			time.Sleep(time.Millisecond)
		}
		st := m.Stats()
		if st.PlacementRetries != 0 || st.PlacementErrors != 1 {
			t.Fatalf("retries=%d errors=%d", st.PlacementRetries, st.PlacementErrors)
		}
	})
}

// blockingFS stalls WriteFile until its context is cancelled, to pin a
// placement in flight.
type blockingFS struct {
	*storage.MemFS
	started chan struct{}
	once    sync.Once
}

func (b *blockingFS) WriteFile(ctx context.Context, name string, data []byte) error {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return ctx.Err()
}

// TestShutdownCancelsInFlightPlacement: Monarch.Shutdown interrupts a
// running copy; the cancelled placement is not a placement error and
// returns the entry to the source state.
func TestShutdownCancelsInFlightPlacement(t *testing.T) {
	ctx := context.Background()
	pfs := storage.NewMemFS("lustre", 0)
	if err := pfs.WriteFile(ctx, "f", bytes.Repeat([]byte{7}, 100)); err != nil {
		t.Fatal(err)
	}
	pfs.SetReadOnly(true)
	tier0 := &blockingFS{MemFS: storage.NewMemFS("ssd", 0), started: make(chan struct{})}
	m, err := New(Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          pool.NewGoPool(1),
		FullFileFetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 100)
	if _, err := m.ReadAt(ctx, "f", p, 0); err != nil {
		t.Fatal(err)
	}
	<-tier0.started // the copy is pinned mid-flight
	done := make(chan struct{})
	go func() { m.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return; worker not cancelled")
	}
	st := m.Stats()
	if st.PlacementErrors != 0 || st.Placements != 0 {
		t.Fatalf("cancelled placement recorded as error/placement: %+v", st)
	}
	if got, _ := m.meta.get("f"); got.currentState() != stateSource {
		t.Fatalf("entry state = %v, want source", got.currentState())
	}
	// Reads keep working from the source after shutdown.
	if _, err := m.ReadAt(ctx, "f", p, 0); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentStressBreakFix hammers ReadAt from many goroutines
// while the main goroutine toggles Break/Fix on tier 0: no read may be
// lost or corrupted, no entry may be left stuck queued, and the
// breaker/demotion counters must be mutually consistent at the end.
func TestConcurrentStressBreakFix(t *testing.T) {
	const nfiles, size = 16, 512
	iters := 400
	toggles := 4
	if testing.Short() {
		iters, toggles = 80, 2
	}
	f := newHealthFixture(t, nfiles, size, func(c *Config) {
		c.Health = HealthConfig{ReadErrorThreshold: 3, WriteErrorThreshold: 3, ProbeAfterReads: 1}
		c.Retry = RetryPolicy{MaxAttempts: 2}
	})
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := make([]byte, size)
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("f%03d", (w*7+i*13)%nfiles)
				n, err := f.m.ReadAt(ctx, name, p, 0)
				if err != nil {
					t.Errorf("read %s: %v", name, err)
					return
				}
				want := byte((w*7+i*13)%nfiles + 1)
				if n != size || p[0] != want || p[size-1] != want {
					t.Errorf("read %s corrupted: n=%d got=%d want=%d", name, n, p[0], want)
					return
				}
			}
		}(w)
	}
	for k := 0; k < toggles; k++ {
		time.Sleep(2 * time.Millisecond)
		f.faulty.Break()
		time.Sleep(2 * time.Millisecond)
		f.faulty.Fix()
	}
	wg.Wait()
	f.faulty.Fix()

	// Converge: keep reading until the tier is healthy and every file
	// is back on tier 0.
	deadline := time.Now().Add(15 * time.Second)
	for {
		f.readAll(t, nfiles, size)
		f.waitIdle(t)
		placed := 0
		for i := 0; i < nfiles; i++ {
			if lvl, _ := f.m.LevelOf(fmt.Sprintf("f%03d", i)); lvl == 0 {
				placed++
			}
		}
		if placed == nfiles && f.m.TierState(0) == TierHealthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: placed=%d/%d state=%v stats=%+v",
				placed, nfiles, f.m.TierState(0), f.m.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// No stuck queued entries, and coherent breaker accounting.
	for i := 0; i < nfiles; i++ {
		e, _ := f.m.meta.get(fmt.Sprintf("f%03d", i))
		if s := e.currentState(); s != statePlaced {
			t.Fatalf("f%03d stuck in state %d", i, s)
		}
		got, err := f.faulty.ReadFile(ctx, fmt.Sprintf("f%03d", i))
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, size)) {
			t.Fatalf("tier0 content for f%03d wrong: %v", i, err)
		}
	}
	st := f.m.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after idle", st.InFlight)
	}
	if st.TierTrips != st.TierRecoveries {
		t.Fatalf("trips=%d recoveries=%d, want equal after convergence", st.TierTrips, st.TierRecoveries)
	}
	if st.TierRecoveries > st.Probes {
		t.Fatalf("recoveries=%d > probes=%d", st.TierRecoveries, st.Probes)
	}
	if st.Demotions > st.TierTrips*int64(nfiles) {
		t.Fatalf("demotions=%d exceed trips(%d)×files(%d)", st.Demotions, st.TierTrips, nfiles)
	}
	if int64(nfiles) > st.Placements {
		t.Fatalf("placements=%d < files=%d", st.Placements, nfiles)
	}
}

// TestDisabledHealthKeepsLegacyBehaviour: with Health.Disabled the
// breaker never opens and every read retries the broken tier (the
// pre-breaker fallback path).
func TestDisabledHealthKeepsLegacyBehaviour(t *testing.T) {
	const nfiles, size = 2, 100
	f := newHealthFixture(t, nfiles, size, func(c *Config) {
		c.Health = HealthConfig{Disabled: true}
	})
	f.readAll(t, nfiles, size)
	f.waitIdle(t)
	f.faulty.Break()
	for i := 0; i < 5; i++ {
		f.readAll(t, nfiles, size)
	}
	st := f.m.Stats()
	if st.Fallbacks != 5*nfiles {
		t.Fatalf("fallbacks = %d, want %d (one per read)", st.Fallbacks, 5*nfiles)
	}
	if st.Demotions != 0 || st.TierTrips != 0 {
		t.Fatalf("breaker acted while disabled: %+v", st)
	}
	if ts := f.m.TierState(0); ts != TierHealthy {
		t.Fatalf("state = %v", ts)
	}
}

// TestRetryPolicyClassificationAndBackoff covers the default
// transient/permanent split, the IsTransient override, and backoff
// doubling with its cap.
func TestRetryPolicyClassificationAndBackoff(t *testing.T) {
	var r RetryPolicy
	for _, err := range []error{storage.ErrNoSpace, storage.ErrReadOnly, storage.ErrNotExist,
		context.Canceled, context.DeadlineExceeded} {
		if r.transient(err) {
			t.Errorf("%v classified transient", err)
		}
	}
	for _, err := range []error{storage.ErrInjected, errors.New("io: device error")} {
		if !r.transient(err) {
			t.Errorf("%v classified permanent", err)
		}
	}
	r.IsTransient = func(error) bool { return false }
	if r.transient(storage.ErrInjected) {
		t.Error("IsTransient override ignored")
	}

	b := RetryPolicy{Backoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	for i, want := range []time.Duration{10, 20, 35, 35} {
		if got := b.backoff(i + 1); got != want*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
	// wait honours cancellation immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	(&RetryPolicy{Backoff: 10 * time.Second}).wait(ctx, 1)
	if time.Since(start) > time.Second {
		t.Fatal("wait ignored cancelled context")
	}
}

// TestTierStateAndEventStrings pins the observability surface.
func TestTierStateAndEventStrings(t *testing.T) {
	if TierHealthy.String() != "healthy" || TierSuspect.String() != "suspect" ||
		TierDown.String() != "down" || TierState(9).String() != "unknown" {
		t.Fatal("TierState.String broken")
	}
	for kind, want := range map[EventKind]string{
		EventDemoted: "demoted", EventRetried: "retried",
		EventTierDown: "tier-down", EventTierUp: "tier-up",
	} {
		if kind.String() != want {
			t.Errorf("kind %d = %q, want %q", kind, kind.String(), want)
		}
	}
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: EventDemoted, File: "f", Level: 0}, "demoted"},
		{Event{Kind: EventRetried, File: "f", Level: 0, Err: storage.ErrInjected}, "re-queued"},
		{Event{Kind: EventTierDown, Level: 0, Err: storage.ErrInjected}, "down"},
		{Event{Kind: EventTierUp, Level: 0, Bytes: 3}, "back in service"},
	}
	for _, c := range cases {
		if !strings.Contains(c.e.String(), c.want) {
			t.Errorf("%v does not mention %q", c.e.String(), c.want)
		}
	}
}

// TestExternalBreakerFeeds exercises the gossip glue: an external
// health signal (a peer marked Dead by the membership view) counts
// toward the read-error threshold via ReportTierError, and
// ForceTierDown opens the breaker immediately when no peer is live.
func TestExternalBreakerFeeds(t *testing.T) {
	f := newHealthFixture(t, 1, 64, nil) // ReadErrorThreshold: 2
	extErr := errors.New("gossip: peer marked dead")

	// One report is demotion pressure — Suspect, not a trip.
	f.m.ReportTierError(0, extErr)
	if st := f.m.TierState(0); st != TierSuspect {
		t.Fatalf("one external report left the tier %v, want suspect", st)
	}
	// The second consecutive report crosses the threshold.
	f.m.ReportTierError(0, extErr)
	if st := f.m.TierState(0); st != TierDown {
		t.Fatalf("threshold external reports left the tier %v", st)
	}
	downs := 0
	for _, e := range f.log.Events() {
		if e.Kind == EventTierDown {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("%d tier-down events, want 1", downs)
	}

	// Out-of-range and source levels are ignored, not panics: the PFS
	// must never be demotable by external feeds.
	f.m.ReportTierError(-1, extErr)
	f.m.ReportTierError(99, extErr)
	f.m.ReportTierError(1, extErr) // level 1 is the source
	f.m.ForceTierDown(1, extErr)
	if st := f.m.TierState(1); st != TierHealthy {
		t.Fatalf("source tier demoted externally: %v", st)
	}
}

func TestForceTierDownImmediateAndIdempotent(t *testing.T) {
	f := newHealthFixture(t, 1, 64, nil)
	extErr := errors.New("gossip: no live peers")
	f.m.ForceTierDown(0, extErr)
	if st := f.m.TierState(0); st != TierDown {
		t.Fatalf("forced trip left the tier %v", st)
	}
	// A second force on an open breaker is a no-op — no duplicate
	// demotion event, no probe-state churn.
	f.m.ForceTierDown(0, extErr)
	downs := 0
	for _, e := range f.log.Events() {
		if e.Kind == EventTierDown {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("%d tier-down events after double force, want 1", downs)
	}
}
