package core

import (
	"strconv"
	"sync"

	"monarch/internal/obs"
)

// Stats is a snapshot of the middleware's counters. Per-level slices
// are indexed by hierarchy level; the last index is the PFS — the
// experiments read "I/O pressure on the PFS" from that slot.
//
// Stats is a read-only view derived from the obs metrics registry: the
// statsCollector's fields ARE registry counter handles, so a scrape of
// the Prometheus endpoint and a Stats() call can never disagree.
type Stats struct {
	// ReadsServed / BytesServed count foreground reads by the level
	// that served them.
	ReadsServed []int64
	BytesServed []int64
	// Placements is the number of files successfully moved to an upper
	// tier; PlacedBytes the bytes they amount to.
	Placements  int64
	PlacedBytes int64
	// PlacementSkips counts files left on the PFS because no tier had
	// room (or the fetch ablation disabled copying).
	PlacementSkips int64
	// PlacementErrors counts operational failures during placement.
	PlacementErrors int64
	// FullReadReuses counts placements satisfied from content the
	// framework had already read in full (§III-B).
	FullReadReuses int64
	// ChunkPlacements counts individual chunks written by chunked
	// placements (Config.ChunkSize > 0).
	ChunkPlacements int64
	// PartialHits counts foreground reads served from an upper tier
	// while that file's chunked placement was still in flight —
	// ranges whose chunks had already landed. PartialHitBytes is the
	// bytes they amount to.
	PartialHits     int64
	PartialHitBytes int64
	// PeerHits counts foreground reads served by the peer cache tier —
	// files this node does not own, read from their owner's cache over
	// the wire. PeerHitBytes is the bytes they amount to.
	PeerHits     int64
	PeerHitBytes int64
	// PeerMisses counts reads routed to the peer tier whose owner had
	// not cached the file yet; the read was re-served from the source.
	// A miss is protocol behaviour, not a failure: it feeds neither
	// Fallbacks nor the tier breaker.
	PeerMisses int64
	// PeerHedges counts peer hits served under a hedge: the primary
	// replica exceeded its adaptive latency threshold, so the read
	// raced a second replica and took the first answer.
	PeerHedges int64
	// Fallbacks counts foreground reads re-served from the PFS after an
	// upper tier failed.
	Fallbacks int64
	// Evictions counts files removed from a tier by the eviction policy
	// (the heat engine under tenancy, or an abl-eviction ablation).
	Evictions int64
	// EvictionRaces counts reads that looked up a placed file and found
	// its tier copy already removed by a concurrent eviction; they were
	// re-served from the source with no breaker feed, like peer misses.
	EvictionRaces int64
	// Promotions counts unplaceable files re-entered into the placement
	// pipeline because their heat came to justify displacing a colder
	// resident.
	Promotions int64
	// Demotions counts entries re-pointed from a Down tier to the
	// source level by the circuit breaker.
	Demotions int64
	// PlacementRetries counts placements re-queued after a transient
	// failure (Config.Retry).
	PlacementRetries int64
	// TierTrips counts circuit-breaker openings (Healthy/Suspect→Down).
	TierTrips int64
	// TierRecoveries counts successful recovery probes (Down→Healthy).
	TierRecoveries int64
	// Probes counts recovery probes attempted against Down tiers.
	Probes int64
	// Creates counts writable files registered through Create.
	Creates int64
	// Writes counts foreground WriteAt acks (both durability levels);
	// WriteBacks is the subset acked by tier 0 with the flush deferred.
	// WrittenBytes is the foreground bytes acked.
	Writes       int64
	WriteBacks   int64
	WrittenBytes int64
	// Flushes counts background flushes of write-back files to the PFS;
	// FlushedBytes the dirty bytes they retired.
	Flushes      int64
	FlushedBytes int64
	// WriteStalls counts writers that blocked on the dirty budget.
	WriteStalls int64
	// Removes counts writable files deleted through Remove.
	Removes int64
	// RecoveredFiles counts files whose journaled write-back state was
	// replayed into the PFS by Init after a crash.
	RecoveredFiles int64
	// PlacementPauses counts background placement tasks paused by the
	// checkpoint-burst gate.
	PlacementPauses int64
	// DirtyBytes is the current write-back backlog: bytes acked by tier
	// 0 but not yet flushed to the PFS.
	DirtyBytes int64
	// InFlight is the number of queued or running placement tasks
	// (including retries and recovery probes).
	InFlight int
	// Jobs holds per-tenant fairness counters, keyed by job name; nil
	// unless Config.JobOf or Config.Tenants enabled tenancy.
	Jobs map[string]JobStats
}

// JobStats are one tenant's fairness counters.
type JobStats struct {
	// ReadsServed / BytesServed count the job's foreground reads.
	ReadsServed int64
	BytesServed int64
	// Hits counts the job's reads served above the source level.
	Hits int64
	// Evictions counts the job's files evicted from a tier.
	Evictions int64
}

// HitRatio returns the fraction of the job's reads served above the
// source level.
func (j JobStats) HitRatio() float64 {
	if j.ReadsServed == 0 {
		return 0
	}
	return float64(j.Hits) / float64(j.ReadsServed)
}

// HitRatio returns the fraction of foreground reads served above the
// source level.
func (s Stats) HitRatio() float64 {
	var upper, total int64
	for i, n := range s.ReadsServed {
		total += n
		if i < len(s.ReadsServed)-1 {
			upper += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(upper) / float64(total)
}

// statsCollector is the live, concurrent form of Stats. Every field is
// a handle into the instance's obs registry — there is exactly one
// copy of each count, and Stats/the Prometheus endpoint/the JSON
// snapshot are all views over it.
type statsCollector struct {
	readsServed []*obs.Counter
	bytesServed []*obs.Counter
	// writtenBytes counts placement bytes landing on each tier
	// (registry-only: whole-file copies plus individual chunks, even
	// chunks of a copy that later fails and is removed).
	writtenBytes    []*obs.Counter
	placements      *obs.Counter
	placedBytes     *obs.Counter
	placementSkips  *obs.Counter
	placementErrors *obs.Counter
	fullReadReuses  *obs.Counter
	chunkPlacements *obs.Counter
	partialHits     *obs.Counter
	partialHitBytes *obs.Counter
	peerHits        *obs.Counter
	peerHitBytes    *obs.Counter
	peerMisses      *obs.Counter
	peerHedges      *obs.Counter
	fallbacks       *obs.Counter
	evictions       *obs.Counter
	evictionRaces   *obs.Counter
	promotions      *obs.Counter
	demotions       *obs.Counter
	retries         *obs.Counter
	tierTrips       *obs.Counter
	tierRecoveries  *obs.Counter
	probes          *obs.Counter
	creates         *obs.Counter
	writes          *obs.Counter
	writeBacks      *obs.Counter
	writtenBytesFg  *obs.Counter
	flushes         *obs.Counter
	flushedBytes    *obs.Counter
	writeStalls     *obs.Counter
	removes         *obs.Counter
	recoveredFiles  *obs.Counter
	placementPauses *obs.Counter

	// Per-job fairness series, registered lazily on a job's first read
	// or eviction (obs.Registry handles are idempotent and mutex-guarded,
	// so concurrent first touches are safe). reg is retained for that
	// lazy registration only.
	reg   *obs.Registry
	jobMu sync.RWMutex
	jobs  map[string]*jobCounters
}

// jobCounters are one tenant's live fairness handles.
type jobCounters struct {
	reads     *obs.Counter
	readBytes *obs.Counter
	hits      *obs.Counter
	evictions *obs.Counter
}

func (c *statsCollector) init(reg *obs.Registry, levels int) {
	c.reg = reg
	c.jobs = make(map[string]*jobCounters)
	for i := 0; i < levels; i++ {
		tier := obs.L("tier", strconv.Itoa(i))
		c.readsServed = append(c.readsServed, reg.Counter("monarch_tier_read_ops_total",
			"Foreground reads served, by the hierarchy level that served them.", tier))
		c.bytesServed = append(c.bytesServed, reg.Counter("monarch_tier_read_bytes_total",
			"Foreground bytes served, by the hierarchy level that served them.", tier))
		c.writtenBytes = append(c.writtenBytes, reg.Counter("monarch_tier_write_bytes_total",
			"Placement bytes written into each hierarchy level (whole files and chunks).", tier))
	}
	c.placements = reg.Counter("monarch_placements_total",
		"Files successfully moved to an upper tier.")
	c.placedBytes = reg.Counter("monarch_placed_bytes_total",
		"Bytes of successfully placed files.")
	c.placementSkips = reg.Counter("monarch_placement_skips_total",
		"Files left on the PFS because no tier had room or fetching was disabled.")
	c.placementErrors = reg.Counter("monarch_placement_errors_total",
		"Placements aborted by an operational failure.")
	c.fullReadReuses = reg.Counter("monarch_full_read_reuses_total",
		"Placements satisfied from content the framework had already read in full.")
	c.chunkPlacements = reg.Counter("monarch_chunk_placements_total",
		"Individual chunks written by chunked placements.")
	c.partialHits = reg.Counter("monarch_partial_hits_total",
		"Reads served from an upper tier while the file's chunked placement was in flight.")
	c.partialHitBytes = reg.Counter("monarch_partial_hit_bytes_total",
		"Bytes served by partial (mid-copy) hits.")
	c.peerHits = reg.Counter("monarch_peer_hits_total",
		"Reads served by the peer cache tier (non-owned files, read from their owner's cache).")
	c.peerHitBytes = reg.Counter("monarch_peer_hit_bytes_total",
		"Bytes served by peer cache hits.")
	c.peerMisses = reg.Counter("monarch_peer_misses_total",
		"Peer-routed reads whose owner had not cached the file; re-served from the source.")
	c.peerHedges = reg.Counter("monarch_peer_hedged_reads_total",
		"Peer hits served under a hedge: a second replica raced a slow primary.")
	c.fallbacks = reg.Counter("monarch_fallbacks_total",
		"Reads re-served from the PFS after an upper-tier failure.")
	c.evictions = reg.Counter("monarch_evictions_total",
		"Files removed from a tier by the eviction policy.")
	c.evictionRaces = reg.Counter("monarch_eviction_read_races_total",
		"Reads that raced a concurrent eviction and were cleanly re-served from the source.")
	c.promotions = reg.Counter("monarch_promotions_total",
		"Unplaceable files re-entered into placement because their heat justified it.")
	c.demotions = reg.Counter("monarch_demotions_total",
		"Entries re-pointed from a Down tier to the source level.")
	c.retries = reg.Counter("monarch_placement_retries_total",
		"Placements re-queued after a transient failure.")
	c.tierTrips = reg.Counter("monarch_tier_trips_total",
		"Circuit-breaker openings (Healthy/Suspect to Down).")
	c.tierRecoveries = reg.Counter("monarch_tier_recoveries_total",
		"Successful recovery probes (Down to Healthy).")
	c.probes = reg.Counter("monarch_probes_total",
		"Recovery probes attempted against Down tiers.")
	c.creates = reg.Counter("monarch_creates_total",
		"Writable files registered through Create.")
	c.writes = reg.Counter("monarch_writes_total",
		"Foreground WriteAt acks (write-through and write-back).")
	c.writeBacks = reg.Counter("monarch_write_backs_total",
		"Writes acked by tier 0 with the PFS flush deferred.")
	c.writtenBytesFg = reg.Counter("monarch_written_bytes_total",
		"Foreground bytes acked by the write path.")
	c.flushes = reg.Counter("monarch_flushes_total",
		"Background flushes of write-back files to the PFS.")
	c.flushedBytes = reg.Counter("monarch_flushed_bytes_total",
		"Dirty bytes retired by background flushes.")
	c.writeStalls = reg.Counter("monarch_write_stalls_total",
		"Writers that blocked on the dirty budget until the flusher drained.")
	c.removes = reg.Counter("monarch_removes_total",
		"Writable files deleted through Remove.")
	c.recoveredFiles = reg.Counter("monarch_recovered_files_total",
		"Files whose journaled write-back state was replayed into the PFS after a crash.")
	c.placementPauses = reg.Counter("monarch_placement_pauses_total",
		"Background placement tasks paused by the checkpoint-burst gate.")
}

func (c *statsCollector) served(level int, bytes int64) {
	c.readsServed[level].Inc()
	c.bytesServed[level].Add(bytes)
}

// placedOn records a whole placement landing on level.
func (c *statsCollector) placedOn(level int, bytes int64) {
	c.placements.Inc()
	c.placedBytes.Add(bytes)
}

// job returns (lazily creating) the fairness handles for one tenant.
func (c *statsCollector) job(name string) *jobCounters {
	c.jobMu.RLock()
	jc := c.jobs[name]
	c.jobMu.RUnlock()
	if jc != nil {
		return jc
	}
	c.jobMu.Lock()
	defer c.jobMu.Unlock()
	if jc = c.jobs[name]; jc == nil {
		l := obs.L("job", name)
		jc = &jobCounters{
			reads: c.reg.Counter("monarch_job_read_ops_total",
				"Foreground reads, by tenant job.", l),
			readBytes: c.reg.Counter("monarch_job_read_bytes_total",
				"Foreground bytes read, by tenant job.", l),
			hits: c.reg.Counter("monarch_job_hits_total",
				"Reads served above the source level, by tenant job.", l),
			evictions: c.reg.Counter("monarch_job_evictions_total",
				"Files evicted from a tier, by tenant job.", l),
		}
		c.jobs[name] = jc
	}
	return jc
}

// jobRead attributes one served read to its tenant; no-op without a
// tenant table, so single-tenant instances pay one nil check.
func (c *statsCollector) jobRead(t *tenantTable, file string, level, src int, bytes int64) {
	if t == nil {
		return
	}
	jc := c.job(t.job(file))
	jc.reads.Inc()
	jc.readBytes.Add(bytes)
	if level != src {
		jc.hits.Inc()
	}
}

// jobEviction attributes one eviction to its tenant.
func (c *statsCollector) jobEviction(t *tenantTable, job string) {
	if t == nil {
		return
	}
	c.job(job).evictions.Inc()
}

// hitRatio is the live form of Stats.HitRatio, exposed as the
// monarch_hit_ratio gauge.
func (c *statsCollector) hitRatio() float64 {
	var upper, total int64
	for i, ctr := range c.readsServed {
		n := ctr.Value()
		total += n
		if i < len(c.readsServed)-1 {
			upper += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(upper) / float64(total)
}

func (c *statsCollector) snapshot(inFlight int) Stats {
	s := Stats{
		ReadsServed:      make([]int64, len(c.readsServed)),
		BytesServed:      make([]int64, len(c.bytesServed)),
		Placements:       c.placements.Value(),
		PlacedBytes:      c.placedBytes.Value(),
		PlacementSkips:   c.placementSkips.Value(),
		PlacementErrors:  c.placementErrors.Value(),
		FullReadReuses:   c.fullReadReuses.Value(),
		ChunkPlacements:  c.chunkPlacements.Value(),
		PartialHits:      c.partialHits.Value(),
		PartialHitBytes:  c.partialHitBytes.Value(),
		PeerHits:         c.peerHits.Value(),
		PeerHitBytes:     c.peerHitBytes.Value(),
		PeerMisses:       c.peerMisses.Value(),
		PeerHedges:       c.peerHedges.Value(),
		Fallbacks:        c.fallbacks.Value(),
		Evictions:        c.evictions.Value(),
		EvictionRaces:    c.evictionRaces.Value(),
		Promotions:       c.promotions.Value(),
		Demotions:        c.demotions.Value(),
		PlacementRetries: c.retries.Value(),
		TierTrips:        c.tierTrips.Value(),
		TierRecoveries:   c.tierRecoveries.Value(),
		Probes:           c.probes.Value(),
		Creates:          c.creates.Value(),
		Writes:           c.writes.Value(),
		WriteBacks:       c.writeBacks.Value(),
		WrittenBytes:     c.writtenBytesFg.Value(),
		Flushes:          c.flushes.Value(),
		FlushedBytes:     c.flushedBytes.Value(),
		WriteStalls:      c.writeStalls.Value(),
		Removes:          c.removes.Value(),
		RecoveredFiles:   c.recoveredFiles.Value(),
		PlacementPauses:  c.placementPauses.Value(),
		InFlight:         inFlight,
	}
	for i := range c.readsServed {
		s.ReadsServed[i] = c.readsServed[i].Value()
		s.BytesServed[i] = c.bytesServed[i].Value()
	}
	c.jobMu.RLock()
	if len(c.jobs) > 0 {
		s.Jobs = make(map[string]JobStats, len(c.jobs))
		for name, jc := range c.jobs {
			s.Jobs[name] = JobStats{
				ReadsServed: jc.reads.Value(),
				BytesServed: jc.readBytes.Value(),
				Hits:        jc.hits.Value(),
				Evictions:   jc.evictions.Value(),
			}
		}
	}
	c.jobMu.RUnlock()
	return s
}
