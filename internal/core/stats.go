package core

import "sync/atomic"

// Stats is a snapshot of the middleware's counters. Per-level slices
// are indexed by hierarchy level; the last index is the PFS — the
// experiments read "I/O pressure on the PFS" from that slot.
type Stats struct {
	// ReadsServed / BytesServed count foreground reads by the level
	// that served them.
	ReadsServed []int64
	BytesServed []int64
	// Placements is the number of files successfully moved to an upper
	// tier; PlacedBytes the bytes they amount to.
	Placements  int64
	PlacedBytes int64
	// PlacementSkips counts files left on the PFS because no tier had
	// room (or the fetch ablation disabled copying).
	PlacementSkips int64
	// PlacementErrors counts operational failures during placement.
	PlacementErrors int64
	// FullReadReuses counts placements satisfied from content the
	// framework had already read in full (§III-B).
	FullReadReuses int64
	// ChunkPlacements counts individual chunks written by chunked
	// placements (Config.ChunkSize > 0).
	ChunkPlacements int64
	// PartialHits counts foreground reads served from an upper tier
	// while that file's chunked placement was still in flight —
	// ranges whose chunks had already landed. PartialHitBytes is the
	// bytes they amount to.
	PartialHits     int64
	PartialHitBytes int64
	// Fallbacks counts foreground reads re-served from the PFS after an
	// upper tier failed.
	Fallbacks int64
	// Evictions counts files removed by an eviction-policy ablation.
	Evictions int64
	// Demotions counts entries re-pointed from a Down tier to the
	// source level by the circuit breaker.
	Demotions int64
	// PlacementRetries counts placements re-queued after a transient
	// failure (Config.Retry).
	PlacementRetries int64
	// TierTrips counts circuit-breaker openings (Healthy/Suspect→Down).
	TierTrips int64
	// TierRecoveries counts successful recovery probes (Down→Healthy).
	TierRecoveries int64
	// Probes counts recovery probes attempted against Down tiers.
	Probes int64
	// InFlight is the number of queued or running placement tasks
	// (including retries and recovery probes).
	InFlight int
}

// HitRatio returns the fraction of foreground reads served above the
// source level.
func (s Stats) HitRatio() float64 {
	var upper, total int64
	for i, n := range s.ReadsServed {
		total += n
		if i < len(s.ReadsServed)-1 {
			upper += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(upper) / float64(total)
}

// statsCollector is the live, concurrent form of Stats.
type statsCollector struct {
	readsServed     []atomic.Int64
	bytesServed     []atomic.Int64
	placements      atomic.Int64
	placedBytes     atomic.Int64
	placementSkips  atomic.Int64
	placementErrors atomic.Int64
	fullReadReuses  atomic.Int64
	chunkPlacements atomic.Int64
	partialHits     atomic.Int64
	partialHitBytes atomic.Int64
	fallbacks       atomic.Int64
	evictions       atomic.Int64
	demotions       atomic.Int64
	retries         atomic.Int64
	tierTrips       atomic.Int64
	tierRecoveries  atomic.Int64
	probes          atomic.Int64
}

func (c *statsCollector) init(levels int) {
	c.readsServed = make([]atomic.Int64, levels)
	c.bytesServed = make([]atomic.Int64, levels)
}

func (c *statsCollector) served(level int, bytes int64) {
	c.readsServed[level].Add(1)
	c.bytesServed[level].Add(bytes)
}

func (c *statsCollector) snapshot(inFlight int) Stats {
	s := Stats{
		ReadsServed:      make([]int64, len(c.readsServed)),
		BytesServed:      make([]int64, len(c.bytesServed)),
		Placements:       c.placements.Load(),
		PlacedBytes:      c.placedBytes.Load(),
		PlacementSkips:   c.placementSkips.Load(),
		PlacementErrors:  c.placementErrors.Load(),
		FullReadReuses:   c.fullReadReuses.Load(),
		ChunkPlacements:  c.chunkPlacements.Load(),
		PartialHits:      c.partialHits.Load(),
		PartialHitBytes:  c.partialHitBytes.Load(),
		Fallbacks:        c.fallbacks.Load(),
		Evictions:        c.evictions.Load(),
		Demotions:        c.demotions.Load(),
		PlacementRetries: c.retries.Load(),
		TierTrips:        c.tierTrips.Load(),
		TierRecoveries:   c.tierRecoveries.Load(),
		Probes:           c.probes.Load(),
		InFlight:         inFlight,
	}
	for i := range c.readsServed {
		s.ReadsServed[i] = c.readsServed[i].Load()
		s.BytesServed[i] = c.bytesServed[i].Load()
	}
	return s
}
