package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// FuzzReadAt drives the middleware with arbitrary (offset, length,
// chunk-size) triples against a plain MemFS oracle holding the same
// content. Whatever tier serves the read — source, mid-copy chunks, or
// the placed copy — the result must be byte-identical to the oracle's
// pread, in both whole-file (chunkSize 0) and chunked mode.
func FuzzReadAt(f *testing.F) {
	f.Add(uint16(0), int64(0), uint16(0), uint16(0))
	f.Add(uint16(1), int64(0), uint16(1), uint16(1))
	f.Add(uint16(1000), int64(0), uint16(1000), uint16(256))  // full read, 4 chunks
	f.Add(uint16(1000), int64(999), uint16(10), uint16(256))  // clipped at EOF
	f.Add(uint16(1000), int64(1000), uint16(10), uint16(256)) // at EOF
	f.Add(uint16(1000), int64(2000), uint16(10), uint16(256)) // past EOF
	f.Add(uint16(1000), int64(-3), uint16(10), uint16(256))   // negative offset
	f.Add(uint16(1000), int64(200), uint16(112), uint16(256)) // chunk straddle
	f.Add(uint16(513), int64(512), uint16(1), uint16(512))    // short tail chunk
	f.Add(uint16(4096), int64(100), uint16(4000), uint16(1))  // 1-byte chunks
	f.Add(uint16(300), int64(0), uint16(300), uint16(7))      // odd chunk size
	f.Fuzz(func(t *testing.T, fileSize uint16, off int64, readLen, chunkSize uint16) {
		ctx := context.Background()
		content := chunkContent(0, int(fileSize))
		oracle := storage.NewMemFS("oracle", 0)
		if err := oracle.WriteFile(ctx, "f", content); err != nil {
			t.Fatal(err)
		}
		pfs := storage.NewMemFS("lustre", 0)
		if err := pfs.WriteFile(ctx, "f", content); err != nil {
			t.Fatal(err)
		}
		pfs.SetReadOnly(true)
		m, err := New(Config{
			Levels:        []storage.Backend{storage.NewMemFS("ssd", 0), pfs},
			Pool:          pool.NewGoPool(2),
			FullFileFetch: true,
			ChunkSize:     int64(chunkSize),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if err := m.Init(ctx); err != nil {
			t.Fatal(err)
		}

		check := func(phase string) {
			got := make([]byte, readLen)
			want := make([]byte, readLen)
			gn, gerr := m.ReadAt(ctx, "f", got, off)
			wn, werr := oracle.ReadAt(ctx, "f", want, off)
			if (gerr != nil) != (werr != nil) {
				t.Fatalf("%s: err=%v, oracle err=%v", phase, gerr, werr)
			}
			if gerr != nil {
				return
			}
			if gn != wn {
				t.Fatalf("%s: n=%d, oracle n=%d", phase, gn, wn)
			}
			if !bytes.Equal(got[:gn], want[:wn]) {
				t.Fatalf("%s: bytes differ from oracle", phase)
			}
		}

		// First read lands while the background placement is (possibly)
		// mid-copy; the second read after Idle hits the placed copy.
		check("mid-flight")
		waitIdleM(t, m)
		check("settled")

		// The placed copy, if any, must be byte-identical to the source.
		if lvl, err := m.LevelOf("f"); err == nil && lvl == 0 && fileSize > 0 {
			got, err := m.ReadFull(ctx, "f")
			if err != nil || !bytes.Equal(got, content) {
				t.Fatalf("placed copy differs from source (err=%v)", err)
			}
		}
	})
}

// FuzzNamespace drives the metadata container and one entry's
// chunk-bitmap state machine with an arbitrary op tape: it must never
// panic, sizes must stay consistent, and the bitmap invariants
// (chunksLeft >= 0, chunksCover only answers while queued) must hold
// after every transition.
func FuzzNamespace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 1, 0, 2, 0, 3, 0})
	f.Add([]byte{1, 0, 0, 2, 1, 3, 5, 4, 0, 5, 0})
	f.Add([]byte{2, 9, 1, 9, 2, 9, 3, 9, 4, 9, 5, 9, 6, 9, 7, 9, 8, 9})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const levels = 3
		c := newMetadataContainer(levels)
		nf := 1
		if len(tape) > 0 {
			nf = 1 + int(tape[0])%4
		}
		infos := make([]storage.FileInfo, nf)
		for i := range infos {
			size := int64(i * 100)
			if len(tape) > i+1 {
				size = int64(tape[i+1]) * 3
			}
			infos[i] = storage.FileInfo{Name: fmt.Sprintf("f%02d", i), Size: size}
		}
		c.populate(infos, levels-1)
		if c.len() != nf {
			t.Fatalf("namespace has %d entries, want %d", c.len(), nf)
		}
		list := c.list()
		for i, fi := range list {
			if fi.Name != infos[i].Name || fi.Size != infos[i].Size {
				t.Fatalf("list[%d] = %+v, want %+v", i, fi, infos[i])
			}
		}

		for pc := 1; pc+1 < len(tape); pc += 2 {
			op, arg := tape[pc], int64(tape[pc+1])
			e, ok := c.get(fmt.Sprintf("f%02d", int(op/16)%nf))
			if !ok {
				t.Fatal("populated entry missing")
			}
			switch op % 10 {
			case 0:
				e.tryQueue()
			case 1:
				e.markPlaced(int(arg) % levels)
			case 2:
				e.beginChunks(0, arg%7) // includes chunk sizes 0..6
			case 3:
				e.markChunk(int(arg))
			case 4:
				e.clearChunks()
			case 5:
				lvl, cov := e.chunksCover(arg, arg%97)
				if cov && e.currentState() != stateQueued {
					t.Fatal("chunksCover answered outside stateQueued")
				}
				if cov && lvl != 0 {
					t.Fatalf("chunksCover returned level %d, bitmap armed for 0", lvl)
				}
			case 6:
				e.markUnplaceable()
			case 7:
				e.cancelQueued()
			case 8:
				e.markDemoted(int(arg)%levels, levels-1)
			case 9:
				e.makeReplaceable()
			}
			e.mu.Lock()
			if e.chunksLeft < 0 {
				t.Fatal("chunksLeft went negative")
			}
			if e.chunkBits == nil && e.chunksLeft != 0 {
				t.Fatal("chunksLeft nonzero with disarmed bitmap")
			}
			if e.size != infos[int(op/16)%nf].Size {
				t.Fatal("entry size changed")
			}
			e.mu.Unlock()
		}

		// The namespace itself must be unchanged by entry-state churn.
		if got := c.list(); len(got) != nf {
			t.Fatalf("namespace size drifted to %d", len(got))
		}
	})
}
