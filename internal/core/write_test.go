package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// newWriteFixture builds a 2-level hierarchy with a WRITABLE PFS (the
// write path needs the source to accept flushes and recovery) and the
// write subsystem enabled.
type writeFixture struct {
	tier0 *storage.MemFS
	pfs   *storage.MemFS
	m     *Monarch
}

func newWriteFixture(t *testing.T, nfiles int, cfgEdit func(*Config)) *writeFixture {
	t.Helper()
	ctx := context.Background()
	pfs := storage.NewMemFS("lustre", 0)
	for i := 0; i < nfiles; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("data/f%03d", i), bytes.Repeat([]byte{byte(i + 1)}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	tier0 := storage.NewMemFS("ssd", 1<<30)
	cfg := Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          pool.NewGoPool(4),
		FullFileFetch: true,
		Write:         WriteConfig{Enabled: true},
	}
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return &writeFixture{tier0: tier0, pfs: pfs, m: m}
}

func backAll(string) Durability { return WriteBack }

func TestWritesDisabled(t *testing.T) {
	f := newFixture(t, 1<<20, 1, 64, nil)
	ctx := context.Background()
	if err := f.m.Create(ctx, "c", 10); !errors.Is(err, ErrWritesDisabled) {
		t.Fatalf("Create without Write config: %v", err)
	}
	if _, err := f.m.WriteAt(ctx, "c", []byte("x"), 0); !errors.Is(err, ErrWritesDisabled) {
		t.Fatalf("WriteAt without Write config: %v", err)
	}
	if err := f.m.Remove(ctx, "c"); !errors.Is(err, ErrWritesDisabled) {
		t.Fatalf("Remove without Write config: %v", err)
	}
}

func TestWriteThrough(t *testing.T) {
	f := newWriteFixture(t, 2, nil)
	ctx := context.Background()
	const name = "ckpt/epoch-1"
	payload := bytes.Repeat([]byte{0xCD}, 4096)
	if err := f.m.Create(ctx, name, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if n, err := f.m.WriteAt(ctx, name, payload, 0); err != nil || n != len(payload) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	// Write-through: the PFS has the bytes before the ack.
	got, err := f.pfs.ReadFile(ctx, name)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("PFS content mismatch after write-through: %v", err)
	}
	// The file reads back through the middleware.
	buf := make([]byte, len(payload))
	if n, err := f.m.ReadAt(ctx, name, buf, 0); err != nil || !bytes.Equal(buf[:n], payload) {
		t.Fatalf("ReadAt after write: %d, %v", n, err)
	}
	s := f.m.Stats()
	if s.Creates != 1 || s.Writes != 1 || s.WriteBacks != 0 || s.WrittenBytes != int64(len(payload)) {
		t.Fatalf("stats after write-through: %+v", s)
	}
	if s.DirtyBytes != 0 {
		t.Fatalf("write-through left %d dirty bytes", s.DirtyBytes)
	}
}

func TestWriteBackAcksOnTier0ThenFlushes(t *testing.T) {
	f := newWriteFixture(t, 2, func(c *Config) {
		c.Write.Durability = backAll
	})
	ctx := context.Background()
	const name = "ckpt/shard-0"
	payload := bytes.Repeat([]byte{0xEE}, 8192)
	if err := f.m.Create(ctx, name, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.WriteAt(ctx, name, payload, 0); err != nil {
		t.Fatal(err)
	}
	// The ack landed on tier 0.
	if got, err := f.tier0.ReadFile(ctx, name); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("tier-0 content after write-back ack: %v", err)
	}
	if err := f.m.Flush(ctx, name); err != nil {
		t.Fatal(err)
	}
	if got, err := f.pfs.ReadFile(ctx, name); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("PFS content after flush: %v", err)
	}
	s := f.m.Stats()
	if s.WriteBacks != 1 || s.Flushes == 0 || s.DirtyBytes != 0 {
		t.Fatalf("stats after flush: WriteBacks=%d Flushes=%d Dirty=%d", s.WriteBacks, s.Flushes, s.DirtyBytes)
	}
	// Reads of the write-back file serve from tier 0.
	if lvl, err := f.m.LevelOf(name); err != nil || lvl != 0 {
		t.Fatalf("LevelOf(%s) = %d, %v; want tier 0", name, lvl, err)
	}
}

func TestWriteValidation(t *testing.T) {
	f := newWriteFixture(t, 2, nil)
	ctx := context.Background()
	if err := f.m.Create(ctx, "", 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := f.m.Create(ctx, "x", -1); err == nil {
		t.Fatal("negative size accepted")
	}
	// A dataset name must not be shadowed.
	if err := f.m.Create(ctx, "data/f000", 10); !errors.Is(err, storage.ErrExist) {
		t.Fatalf("Create over dataset file: %v", err)
	}
	if err := f.m.Create(ctx, "w", 16); err != nil {
		t.Fatal(err)
	}
	// Double create collides.
	if err := f.m.Create(ctx, "w", 16); !errors.Is(err, storage.ErrExist) {
		t.Fatalf("double Create: %v", err)
	}
	// Out-of-bounds writes are rejected.
	if _, err := f.m.WriteAt(ctx, "w", make([]byte, 8), 12); err == nil {
		t.Fatal("write past EOF accepted")
	}
	if _, err := f.m.WriteAt(ctx, "w", []byte("x"), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	// Dataset files are not writable.
	if _, err := f.m.WriteAt(ctx, "data/f000", []byte("x"), 0); !errors.Is(err, ErrNotWritable) {
		t.Fatalf("WriteAt on dataset file: %v", err)
	}
	if err := f.m.Remove(ctx, "data/f000"); !errors.Is(err, ErrNotWritable) {
		t.Fatalf("Remove on dataset file: %v", err)
	}
	// Zero-length writes are a no-op.
	if n, err := f.m.WriteAt(ctx, "w", nil, 0); n != 0 || err != nil {
		t.Fatalf("zero-length write: %d, %v", n, err)
	}
}

func TestRemoveWritableFile(t *testing.T) {
	f := newWriteFixture(t, 1, func(c *Config) {
		c.Write.Durability = backAll
	})
	ctx := context.Background()
	const name = "ckpt/tmp"
	if err := f.m.Create(ctx, name, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.WriteAt(ctx, name, bytes.Repeat([]byte{1}, 32), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Flush(ctx, name); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Remove(ctx, name); err != nil {
		t.Fatal(err)
	}
	if _, err := f.tier0.Stat(ctx, name); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("tier-0 copy survived Remove: %v", err)
	}
	if _, err := f.pfs.Stat(ctx, name); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("PFS copy survived Remove: %v", err)
	}
	if _, err := f.m.Stat(name); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("namespace entry survived Remove: %v", err)
	}
	// The name is reusable.
	if err := f.m.Create(ctx, name, 8); err != nil {
		t.Fatalf("re-Create after Remove: %v", err)
	}
	if f.m.Stats().Removes != 1 {
		t.Fatalf("Removes = %d", f.m.Stats().Removes)
	}
}

// gatedBackend wraps a PFS so tests can control flush fate: WriteFile
// blocks until release() (pinning dirty bytes deterministically) or
// fails outright after breakPFS() (the crash-test shape: acked bytes
// must survive on the journal alone, never reaching the PFS).
type gatedBackend struct {
	storage.Backend
	gate    chan struct{}
	fail    chan struct{}
	blocked chan struct{} // closed once the first WriteFile is waiting
	once    sync.Once
}

func newGatedBackend(b storage.Backend) *gatedBackend {
	return &gatedBackend{
		Backend: b,
		gate:    make(chan struct{}),
		fail:    make(chan struct{}),
		blocked: make(chan struct{}),
	}
}

func (g *gatedBackend) WriteFile(ctx context.Context, name string, data []byte) error {
	g.once.Do(func() { close(g.blocked) })
	select {
	case <-g.gate:
	case <-g.fail:
		return errors.New("gated: PFS unavailable")
	}
	return g.Backend.WriteFile(ctx, name, data)
}

func (g *gatedBackend) release()  { close(g.gate) }
func (g *gatedBackend) breakPFS() { close(g.fail) }

// Allocate/WriteAt pass through so the wrapper still satisfies
// storage.RangeWriter (recovery and write-through need it).
func (g *gatedBackend) Allocate(ctx context.Context, name string, size int64) error {
	return g.Backend.(storage.RangeWriter).Allocate(ctx, name, size)
}

func (g *gatedBackend) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	return g.Backend.(storage.RangeWriter).WriteAt(ctx, name, p, off)
}

func TestDirtyBudgetStallsWriters(t *testing.T) {
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	if err := pfsRaw.WriteFile(ctx, "data/a", bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	pfs := newGatedBackend(pfsRaw)
	m, err := New(Config{
		Levels:        []storage.Backend{storage.NewMemFS("ssd", 1<<30), pfs},
		Pool:          pool.NewGoPool(2),
		FullFileFetch: true,
		Write: WriteConfig{
			Enabled:     true,
			Durability:  backAll,
			DirtyBudget: 1024, // one 1 KiB write fills it
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	if err := m.Create(ctx, "w", 4096); err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{9}, 1024)
	if _, err := m.WriteAt(ctx, "w", chunk, 0); err != nil {
		t.Fatal(err)
	}
	// The flusher is now stuck in the gated WriteFile with the budget
	// full; the next write must stall until we release the gate.
	<-pfs.blocked
	done := make(chan error, 1)
	go func() {
		_, werr := m.WriteAt(ctx, "w", chunk, 1024)
		done <- werr
	}()
	select {
	case err := <-done:
		t.Fatalf("second write did not stall (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	pfs.release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stalled write failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled write never completed")
	}
	if err := m.Flush(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.WriteStalls == 0 {
		t.Fatalf("WriteStalls = %d, want > 0", s.WriteStalls)
	}
}

func TestBurstGatePausesPlacement(t *testing.T) {
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	if err := pfsRaw.WriteFile(ctx, "data/a", bytes.Repeat([]byte{1}, 2048)); err != nil {
		t.Fatal(err)
	}
	pfs := newGatedBackend(pfsRaw)
	m, err := New(Config{
		Levels:        []storage.Backend{storage.NewMemFS("ssd", 1<<30), pfs},
		Pool:          pool.NewGoPool(2),
		FullFileFetch: true,
		Write: WriteConfig{
			Enabled:    true,
			Durability: backAll,
			BurstIdle:  20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	if err := m.Create(ctx, "ckpt", 1024); err != nil {
		t.Fatal(err)
	}
	// Dirty bytes pinned by the gated flush hold the burst gate open.
	if _, err := m.WriteAt(ctx, "ckpt", bytes.Repeat([]byte{7}, 1024), 0); err != nil {
		t.Fatal(err)
	}
	<-pfs.blocked
	if !m.WriteBurstActive() {
		t.Fatal("burst not active with dirty bytes outstanding")
	}
	// Trigger a placement; it must pause while the burst is active.
	buf := make([]byte, 16)
	if _, err := m.ReadAt(ctx, "data/a", buf, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := m.Stats().Placements; got != 0 {
		t.Fatalf("placement landed during burst (%d)", got)
	}
	pfs.release()
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Placements == 0 {
		if time.Now().After(deadline) {
			t.Fatal("placement never resumed after burst drained")
		}
		time.Sleep(time.Millisecond)
	}
	if m.Stats().PlacementPauses == 0 {
		t.Fatal("no placement pause recorded")
	}
}

// journalOp is one mutation the crash harness both issues against the
// write-back instance and replays against a reference PFS.
type journalOp struct {
	alloc bool
	name  string
	size  int64
	off   int64
	data  []byte
}

// TestJournalRecovery is the core-level crash harness: a write-back
// burst is journaled while the PFS is unreachable (every flush fails),
// then the process "dies" via Shutdown — no drain, tier 0 discarded.
// A fresh instance over the same PFS and journal must recover every
// acked byte, byte-identical to what a direct write-through run
// produces. The journal is then additionally truncated at every
// record boundary, asserting replay applies exactly the surviving
// prefix — no acked-write loss before the cut, no torn state after.
func TestJournalRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	jpath := filepath.Join(dir, "write.journal")

	ops := []journalOp{
		{alloc: true, name: "ckpt/s0", size: 1024},
		{alloc: true, name: "ckpt/s1", size: 512},
		{name: "ckpt/s0", off: 0, data: bytes.Repeat([]byte{0xA0}, 1000)},
		{name: "ckpt/s1", off: 0, data: bytes.Repeat([]byte{0xB1}, 300)},
		{name: "ckpt/s0", off: 1000, data: bytes.Repeat([]byte{0xA2}, 24)},
		{name: "ckpt/s1", off: 300, data: bytes.Repeat([]byte{0xB3}, 212)},
		{name: "ckpt/s0", off: 512, data: bytes.Repeat([]byte{0xA4}, 100)}, // overwrite mid-file
	}
	applyRef := func(ref *storage.MemFS, n int) {
		t.Helper()
		for _, o := range ops[:n] {
			if o.alloc {
				if err := ref.Allocate(ctx, o.name, o.size); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if _, err := ref.WriteAt(ctx, o.name, o.data, o.off); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Reference: the same ops written straight through to a bare PFS.
	ref := storage.NewMemFS("ref", 0)
	applyRef(ref, len(ops))
	want := map[string][]byte{}
	for _, name := range []string{"ckpt/s0", "ckpt/s1"} {
		data, err := ref.ReadFile(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}

	build := func(src storage.Backend) *Monarch {
		m, err := New(Config{
			Levels:        []storage.Backend{storage.NewMemFS("ssd", 1<<30), src},
			Pool:          pool.NewGoPool(2),
			FullFileFetch: true,
			Write: WriteConfig{
				Enabled:     true,
				Durability:  backAll,
				JournalPath: jpath,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Init(ctx); err != nil {
			t.Fatal(err)
		}
		return m
	}
	seed := func() *storage.MemFS {
		pfs := storage.NewMemFS("lustre", 0)
		if err := pfs.WriteFile(ctx, "data/a", bytes.Repeat([]byte{1}, 64)); err != nil {
			t.Fatal(err)
		}
		return pfs
	}

	// Crash run: flushes fail (PFS "down"), so durability rests on the
	// journal alone.
	pfs := seed()
	gated := newGatedBackend(pfs)
	gated.breakPFS()
	m1 := build(gated)
	// boundaries[i] = journal size after i acked ops: the record edges
	// the truncation sweep cuts at.
	boundaries := []int64{m1.writes.jn.Stats().Size}
	for _, o := range ops {
		if o.alloc {
			if err := m1.Create(ctx, o.name, o.size); err != nil {
				t.Fatal(err)
			}
		} else if _, err := m1.WriteAt(ctx, o.name, o.data, o.off); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, m1.writes.jn.Stats().Size)
	}
	m1.Shutdown() // kill -9: no flush, no drain, journal sealed as-is
	if _, err := pfs.Stat(ctx, "ckpt/s0"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("PFS saw checkpoint bytes before the crash: %v", err)
	}
	blob, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}

	// Full-journal recovery: byte-identical to the write-through run.
	m2 := build(pfs)
	for name, data := range want {
		got, err := pfs.ReadFile(ctx, name)
		if err != nil {
			t.Fatalf("recovered %s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("recovered %s differs from write-through reference", name)
		}
		// Recovered files are normal namespace entries.
		if _, err := m2.Stat(name); err != nil {
			t.Fatalf("recovered %s missing from namespace: %v", name, err)
		}
	}
	if s := m2.Stats(); s.RecoveredFiles != 2 {
		t.Fatalf("RecoveredFiles = %d, want 2", s.RecoveredFiles)
	}
	m2.Close()

	// Truncation sweep: cut the journal at every acked-op boundary and
	// assert recovery applies exactly that prefix.
	for cut := 0; cut < len(boundaries); cut++ {
		pfsN := seed()
		if err := os.WriteFile(jpath, blob[:boundaries[cut]], 0o644); err != nil {
			t.Fatal(err)
		}
		mN := build(pfsN)
		refN := storage.NewMemFS("ref", 0)
		applyRef(refN, cut)
		infos, err := refN.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, fi := range infos {
			gotData, err := pfsN.ReadFile(ctx, fi.Name)
			if err != nil {
				t.Fatalf("cut %d: recovered %s: %v", cut, fi.Name, err)
			}
			refData, _ := refN.ReadFile(ctx, fi.Name)
			if !bytes.Equal(gotData, refData) {
				t.Fatalf("cut %d: %s differs from prefix replay", cut, fi.Name)
			}
		}
		if cut == 0 {
			if _, err := pfsN.Stat(ctx, "ckpt/s0"); !errors.Is(err, storage.ErrNotExist) {
				t.Fatalf("cut 0: phantom file recovered from empty journal: %v", err)
			}
		}
		mN.Close()
	}
}

// TestJournalRemoveRecovery: a journaled Remove voids the file's
// pending records; recovery must not resurrect it.
func TestJournalRemoveRecovery(t *testing.T) {
	ctx := context.Background()
	jpath := filepath.Join(t.TempDir(), "write.journal")
	pfs := storage.NewMemFS("lustre", 0)
	if err := pfs.WriteFile(ctx, "data/a", []byte("dataset")); err != nil {
		t.Fatal(err)
	}
	gated := newGatedBackend(pfs)
	gated.breakPFS()
	build := func(src storage.Backend) *Monarch {
		m, err := New(Config{
			Levels:        []storage.Backend{storage.NewMemFS("ssd", 1<<30), src},
			Pool:          pool.NewGoPool(2),
			FullFileFetch: true,
			Write:         WriteConfig{Enabled: true, Durability: backAll, JournalPath: jpath},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Init(ctx); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := build(gated)
	if err := m1.Create(ctx, "tmp", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.WriteAt(ctx, "tmp", bytes.Repeat([]byte{5}, 64), 0); err != nil {
		t.Fatal(err)
	}
	if err := m1.Remove(ctx, "tmp"); err != nil {
		t.Fatal(err)
	}
	m1.Shutdown()

	m2 := build(pfs)
	defer m2.Close()
	if _, err := pfs.Stat(ctx, "tmp"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("removed file resurrected by recovery: %v", err)
	}
	if _, err := m2.Stat("tmp"); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("removed file in recovered namespace: %v", err)
	}
}

// TestHeatPersistence (satellite): heat-policy state survives a
// graceful stop/reopen through the journal — the reopened instance
// picks the identical eviction victim.
func TestHeatPersistence(t *testing.T) {
	ctx := context.Background()
	jpath := filepath.Join(t.TempDir(), "write.journal")
	pfs := storage.NewMemFS("lustre", 0)
	for i := 0; i < 4; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("data/f%d", i), bytes.Repeat([]byte{byte(i + 1)}, 256)); err != nil {
			t.Fatal(err)
		}
	}
	build := func(hp *HeatPolicy) *Monarch {
		m, err := New(Config{
			Levels:        []storage.Backend{storage.NewMemFS("ssd", 1<<30), pfs},
			Pool:          pool.NewGoPool(2),
			FullFileFetch: true,
			Eviction:      hp,
			Write:         WriteConfig{Enabled: true, JournalPath: jpath},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Init(ctx); err != nil {
			t.Fatal(err)
		}
		return m
	}
	hp1 := NewHeatPolicy(HeatConfig{HalfLifeEpochs: 2})
	m1 := build(hp1)
	// Skewed access pattern: f0 hottest, f3 coldest.
	buf := make([]byte, 8)
	reads := map[string]int{"data/f0": 9, "data/f1": 5, "data/f2": 3, "data/f3": 1}
	for name, n := range reads {
		for i := 0; i < n; i++ {
			if _, err := m1.ReadAt(ctx, name, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	m1.MarkEpoch(1)
	wantEpoch := hp1.Epoch()
	wantHeat := map[string]float64{}
	for name := range reads {
		wantHeat[name] = hp1.Heat(name)
	}
	m1.Close() // graceful: persists the heat snapshot into the journal

	hp2 := NewHeatPolicy(HeatConfig{HalfLifeEpochs: 2})
	m2 := build(hp2)
	defer m2.Close()
	if hp2.Epoch() != wantEpoch {
		t.Fatalf("restored epoch %d, want %d", hp2.Epoch(), wantEpoch)
	}
	for name, want := range wantHeat {
		if got := hp2.Heat(name); got != want {
			t.Fatalf("restored heat of %s = %v, want %v", name, got, want)
		}
	}
	// Identical victim choices: rebuild the placed books (a restart
	// re-places files) and contest the two policies.
	for _, hp := range []*HeatPolicy{hp1, hp2} {
		for name := range reads {
			hp.OnPlaced(name, 0)
		}
	}
	v1, ok1 := hp1.Victim(0)
	v2, ok2 := hp2.Victim(0)
	if !ok1 || !ok2 || v1 != v2 {
		t.Fatalf("victim diverged after restart: (%q,%v) vs (%q,%v)", v1, ok1, v2, ok2)
	}
	if v2 != "data/f3" {
		t.Fatalf("victim = %q, want the coldest data/f3", v2)
	}
}

// TestWritableFilesNeverEvicted: the eviction guard treats writable
// files as off-limits even when the policy's books propose them.
func TestWritableFilesNeverEvicted(t *testing.T) {
	ctx := context.Background()
	pfs := storage.NewMemFS("lustre", 0)
	if err := pfs.WriteFile(ctx, "data/a", bytes.Repeat([]byte{1}, 600)); err != nil {
		t.Fatal(err)
	}
	lru := NewLRU()
	tier0 := storage.NewMemFS("ssd", 1024)
	m, err := New(Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          pool.NewGoPool(2),
		FullFileFetch: true,
		Eviction:      lru,
		Write:         WriteConfig{Enabled: true, Durability: backAll},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// A writable file occupies most of tier 0.
	if err := m.Create(ctx, "ckpt", 600); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteAt(ctx, "ckpt", bytes.Repeat([]byte{2}, 600), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(ctx, "ckpt"); err != nil {
		t.Fatal(err)
	}
	// Poison the policy books: pretend ckpt is a placed resident, so it
	// is the only victim the policy can propose.
	lru.OnPlaced("ckpt", 0)
	// data/a (600 B) cannot fit beside ckpt (600 B) in 1024 B; the only
	// proposable victim is ckpt, which the guard must refuse.
	buf := make([]byte, 16)
	if _, err := m.ReadAt(ctx, "data/a", buf, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placement did not settle")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := tier0.Stat(ctx, "ckpt"); err != nil {
		t.Fatalf("writable file evicted from tier 0: %v", err)
	}
	if got, err := tier0.ReadFile(ctx, "ckpt"); err != nil || !bytes.Equal(got, bytes.Repeat([]byte{2}, 600)) {
		t.Fatalf("writable tier-0 content corrupted: %v", err)
	}
}
