package core

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// scriptedPolicy is a deliberately adversarial EvictionPolicy for the
// edge-case tests: it proposes a fixed victim regardless of what is
// actually placed, modelling policies whose books lag (or lie about)
// middleware state. The eviction loop must survive it.
type scriptedPolicy struct {
	mu      sync.Mutex
	victims []string // proposals, in order; last one repeats forever
	asked   int
	evicted []string
}

func (p *scriptedPolicy) Name() string         { return "scripted" }
func (p *scriptedPolicy) OnAccess(string)      {}
func (p *scriptedPolicy) OnPlaced(string, int) {}
func (p *scriptedPolicy) OnEvicted(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.evicted = append(p.evicted, name)
}
func (p *scriptedPolicy) Victim(int) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.victims) == 0 {
		return "", false
	}
	i := p.asked
	if i >= len(p.victims) {
		i = len(p.victims) - 1
	}
	p.asked++
	return p.victims[i], true
}

// sweepEvictionInvariants walks the whole namespace after a quiesce and
// checks the structural invariants the eviction engine must uphold:
//
//  1. The chunk-presence bitmap never outlives its metadata entry: only
//     queued (in-flight) entries may be armed. An armed source/placed
//     entry means an eviction tore state down partially.
//  2. Every evicted (back-to-source) entry is immediately re-placeable:
//     tryQueue must succeed, i.e. eviction fully reset the state
//     machine (probed with a tryQueue/cancelQueued round trip).
//  3. The quota ledger exactly matches per-job sums over placed
//     entries (and is therefore non-negative) when tenancy is on.
func sweepEvictionInvariants(t *testing.T, m *Monarch) {
	t.Helper()
	for _, e := range m.meta.sortedEntries() {
		st, lvl, armed := e.snapshot()
		if st != stateQueued && armed {
			t.Errorf("%s: state %v at level %d but chunk bitmap still armed", e.name, st, lvl)
		}
		if st == stateSource {
			if !e.tryQueue() {
				t.Errorf("%s: evicted entry not re-placeable (tryQueue failed)", e.name)
				continue
			}
			e.cancelQueued()
		}
	}
	if m.tenants != nil {
		assertLedgerExact(t, m)
	}
}

// TestEvictReplaceReadRaceHighFanIn is PR 8's counterpart of
// TestReadAtHighFanIn: the same 64-goroutine read tapes, but over a
// tier that holds barely a third of the dataset with an eviction policy
// attached, so evictions, re-placements, chunked copies, promotions and
// zero-copy ReadViews all interleave. Eviction removes entries from the
// sharded atomic metadata while readers hold stale snapshots — the race
// this test exists to hammer under -race.
//
// Every read must still be byte-identical to the generator; races where
// a reader loses its tier-0 copy mid-read must resolve through the
// eviction-race re-serve (never the failure fallback or the breaker);
// and the invariant sweep must hold once the stack quiesces.
func TestEvictReplaceReadRaceHighFanIn(t *testing.T) {
	if testing.Short() {
		t.Skip("high fan-in stress test")
	}
	const (
		goroutines = 64
		nfiles     = 32
		fileSize   = 4096
		opsPerG    = 100
		tierCap    = 11 * fileSize // ~1/3 of the dataset
	)
	jobOf := func(name string) string {
		// c000..c031 → two tenants by index parity.
		if n, err := strconv.Atoi(name[1:]); err == nil && n%2 == 0 {
			return "even"
		}
		return "odd"
	}
	for _, tc := range []struct {
		name   string
		policy EvictionPolicy
	}{
		{"lru-churn", NewLRU()}, // worst case: evicts eagerly, maximal race surface
		{"heat", NewHeatPolicy(HeatConfig{HalfLifeEpochs: 1, AdmitMargin: 1.1})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := newChunkStack(t, storage.NewMemFS("ssd", tierCap), 4, nfiles, fileSize,
				func(c *Config) {
					c.Eviction = tc.policy
					c.JobOf = jobOf
					c.Tenants = []TenantConfig{{Job: "even", Share: 0.5}, {Job: "odd", Share: 0.5}}
				})

			stop := make(chan struct{})
			var epochs sync.WaitGroup
			epochs.Add(1)
			go func() { // heat clock ticking under the readers' feet
				defer epochs.Done()
				for n := 1; ; n++ {
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
						m.MarkEpoch(n)
					}
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					tape := makeFanInTape(int64(g)*104729+13, nfiles, fileSize, opsPerG)
					runFanInTape(t, m, tape, nfiles, fileSize)
				}(g)
			}
			wg.Wait()
			close(stop)
			epochs.Wait()
			if t.Failed() {
				t.FailNow()
			}
			waitIdleM(t, m)

			st := m.Stats()
			if st.Evictions == 0 {
				t.Error("undersized tier saw no evictions: the race never happened")
			}
			// A reader losing its copy to an eviction is a clean race,
			// not a tier failure: nothing may reach the fallback path or
			// feed the breaker.
			if st.Fallbacks != 0 {
				t.Errorf("fallbacks = %d, want 0 (eviction races must not look like tier failures)", st.Fallbacks)
			}
			if st.TierTrips != 0 || st.Demotions != 0 {
				t.Errorf("breaker fired (trips=%d demotions=%d) on a healthy tier", st.TierTrips, st.Demotions)
			}
			if st.PlacementErrors != 0 {
				t.Errorf("placement errors = %d, want 0", st.PlacementErrors)
			}
			var jobReads int64
			for _, js := range st.Jobs {
				jobReads += js.ReadsServed
			}
			if total := sum64(st.ReadsServed); jobReads != total {
				t.Errorf("per-job read counters sum to %d, tier counters to %d", jobReads, total)
			}
			sweepEvictionInvariants(t, m)

			// The tier must not have been left over-committed: resident
			// bytes fit the capacity.
			var resident int64
			for _, e := range m.meta.sortedEntries() {
				if s, lvl, _ := e.snapshot(); s == statePlaced && lvl == 0 {
					resident += e.size
				}
			}
			if resident > tierCap {
				t.Errorf("tier 0 over-committed: %d resident bytes > %d capacity", resident, tierCap)
			}
		})
	}
}

// TestEvictionSkipsPinnedInFlightPlacement pins down victim-selection
// safety: a file whose chunked placement is still in flight (queued,
// bitmap armed) can never be evicted, even when the policy proposes it.
// The placement worker is frozen mid-copy with a gated backend while an
// adversarial policy nominates the in-flight file; the eviction CAS
// must refuse, the placement must abort cleanly without it, and after
// the gate opens the pinned file must finish placing with intact bytes.
func TestEvictionSkipsPinnedInFlightPlacement(t *testing.T) {
	// Two chunks per file: the pinned file's chunk job grabs one extra
	// pool worker, finds both chunks already claimed, and exits — so the
	// second worker stays free to run the competing placement while the
	// first sits frozen inside chunk 1's gated WriteAt.
	const fileSize = 512
	g := &gatedFS{MemFS: storage.NewMemFS("ssd", fileSize+256), release: make(chan struct{})}
	var once sync.Once
	open := func() { once.Do(func() { close(g.release) }) }
	policy := &scriptedPolicy{victims: []string{"c000"}}
	m := newChunkStack(t, g, 2, 2, fileSize, func(c *Config) { c.Eviction = policy })
	t.Cleanup(open)
	ctx := context.Background()

	// Partial read starts c000's chunked placement; the gate lets chunk
	// 0 land and freezes the worker inside chunk 1's WriteAt.
	if _, err := m.ReadAt(ctx, "c000", make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().ChunkPlacements == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no chunk landed")
		}
		time.Sleep(time.Millisecond)
	}

	// c001 wants the tier, which c000's in-flight allocation fills. The
	// policy offers up c000 — the engine must refuse (it is pinned),
	// drop the stale proposal, and leave c001 on the source.
	if _, err := m.ReadAt(ctx, "c001", make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if e, ok := m.meta.get("c001"); ok && e.currentState() == stateUnplaceable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("c001 placement did not resolve")
		}
		time.Sleep(time.Millisecond)
	}
	if st := m.Stats(); st.Evictions != 0 {
		t.Fatalf("evicted %d files while the only candidate was pinned", st.Evictions)
	}
	if e, _ := m.meta.get("c000"); e.currentState() != stateQueued {
		t.Fatalf("pinned c000 left queued state mid-copy: %v", e.currentState())
	}

	// Gate opens: the frozen placement completes untouched.
	open()
	waitIdleM(t, m)
	if lvl, err := m.LevelOf("c000"); err != nil || lvl != 0 {
		t.Fatalf("c000 at level %d (err=%v) after release, want 0", lvl, err)
	}
	got := make([]byte, fileSize)
	if _, err := m.ReadAt(ctx, "c000", got, 0); err != nil {
		t.Fatal(err)
	}
	if want := chunkContent(0, fileSize); !bytes.Equal(got, want) {
		t.Fatal("pinned file corrupted across the eviction attempt")
	}
	sweepEvictionInvariants(t, m)
}

// TestEvictionPolicyEdgeCases drives tryMakeRoom through the
// adversarial proposals a buggy or lagging policy can make. In every
// case placement must resolve (placed or cleanly skipped) without
// hanging, spinning, or evicting the wrong file.
func TestEvictionPolicyEdgeCases(t *testing.T) {
	const fileSize = 1000
	for _, tc := range []struct {
		name    string
		tierCap int64
		tenants []TenantConfig
		policy  func() *scriptedPolicy
		// expectations after both files are read and the pool drains:
		wantLvl0  map[string]int
		wantEvict int64
	}{
		{
			// A policy that nominates the very file being placed: the
			// self-eviction guard must abort the loop, not free the
			// candidate's own (nonexistent) bytes and loop forever.
			name:      "victim equals file being placed",
			tierCap:   fileSize + fileSize/2,
			policy:    func() *scriptedPolicy { return &scriptedPolicy{victims: []string{"f1"}} },
			wantLvl0:  map[string]int{"f0": 0, "f1": 1},
			wantEvict: 0,
		},
		{
			// A policy that nominates a file the namespace has never
			// heard of: errUnknownVictim must abort the attempt.
			name:      "victim unknown to namespace",
			tierCap:   fileSize + fileSize/2,
			policy:    func() *scriptedPolicy { return &scriptedPolicy{victims: []string{"ghost"}} },
			wantLvl0:  map[string]int{"f0": 0, "f1": 1},
			wantEvict: 0,
		},
		{
			// A zero-share tenant owns everything resident: it has no
			// guaranteed quota, so another tenant's placement reclaims
			// from it immediately (here via the default heat policy's
			// quota-reclaim arm, no scripted proposals needed).
			name:      "zero-quota tenant is always reclaimable",
			tierCap:   fileSize,
			tenants:   []TenantConfig{{Job: "a", Share: 0}, {Job: "b", Share: 1}},
			wantLvl0:  map[string]int{"f0": 1, "f1": 0},
			wantEvict: 1,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			pfs := storage.NewMemFS("lustre", 0)
			jobs := map[string]string{"f0": "a", "f1": "b"}
			for i := 0; i < 2; i++ {
				if err := pfs.WriteFile(ctx, fmt.Sprintf("f%d", i), chunkContent(i, fileSize)); err != nil {
					t.Fatal(err)
				}
			}
			pfs.SetReadOnly(true)
			cfg := Config{
				Levels:        []storage.Backend{storage.NewMemFS("ssd", tc.tierCap), pfs},
				Pool:          pool.NewGoPool(1),
				FullFileFetch: true,
			}
			var policy *scriptedPolicy
			if tc.policy != nil {
				policy = tc.policy()
				cfg.Eviction = policy
			} else {
				cfg.Eviction = NewHeatPolicy(HeatConfig{})
				cfg.JobOf = func(name string) string { return jobs[name] }
				cfg.Tenants = tc.tenants
			}
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(m.Close)
			if err := m.Init(ctx); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, fileSize)
			for i := 0; i < 2; i++ {
				if _, err := m.ReadAt(ctx, fmt.Sprintf("f%d", i), buf, 0); err != nil {
					t.Fatal(err)
				}
				waitIdleM(t, m) // also proves placement resolved: no hang
			}
			for name, want := range tc.wantLvl0 {
				if lvl, err := m.LevelOf(name); err != nil || lvl != want {
					t.Errorf("%s at level %d (err=%v), want %d", name, lvl, err, want)
				}
			}
			if st := m.Stats(); st.Evictions != tc.wantEvict {
				t.Errorf("evictions = %d, want %d", st.Evictions, tc.wantEvict)
			}
			sweepEvictionInvariants(t, m)
		})
	}
}
