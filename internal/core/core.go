// Package core implements MONARCH, the paper's contribution: a
// framework-agnostic middleware for hierarchical storage management
// that sits between a deep-learning framework's data loader and a
// hierarchy of storage backends.
//
// The three modules of the paper's §III map onto this package as
// follows:
//
//   - storage hierarchy  → Config.Levels / the levels slice: an ordered
//     list of storage drivers, each wrapping a storage.Backend with a
//     quota; every level except the last starts empty and is
//     read-write, the last level is the read-only PFS holding the
//     dataset;
//   - placement handler  → placement.go: a background thread pool that
//     copies each file, on its first read, into the highest tier with
//     free space — whole-file fetches, no eviction;
//   - metadata container → metadata.go: an ephemeral virtual namespace
//     mapping every file to its size and current tier, built at job
//     start by listing the PFS dataset directory.
//
// The public entry point mirrors the paper's TensorFlow integration: a
// single Monarch.ReadAt(name, buf, off) call replacing the POSIX pread
// in the framework's file-system driver.
package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"monarch/internal/bufpool"
	"monarch/internal/obs"
	"monarch/internal/pool"
	"monarch/internal/storage"
	"monarch/internal/trace"
)

// StagingMode selects when data placement happens (§III-A discusses
// both options).
type StagingMode int

const (
	// StageOnFirstRead places each file when the framework first reads
	// it during epoch 1 — the paper's choice, adding no start-up delay.
	StageOnFirstRead StagingMode = iota
	// StagePreTraining copies files (in namespace order) into the upper
	// tiers before any read is served — the paper's rejected option i,
	// kept for the abl-staging ablation.
	StagePreTraining
)

// String names the mode.
func (s StagingMode) String() string {
	switch s {
	case StageOnFirstRead:
		return "on-first-read"
	case StagePreTraining:
		return "pre-training"
	default:
		return "unknown"
	}
}

// Config assembles a Monarch instance.
type Config struct {
	// Levels is the storage hierarchy in placement order. The last
	// level is the PFS: it must already hold the dataset and is treated
	// as a read-only source. At least two levels are required.
	Levels []storage.Backend
	// Pool executes background placements. Required unless every read
	// should be served from the source (Disabled).
	Pool pool.Executor
	// FullFileFetch enables the §III-A optimisation: when the framework
	// reads only a slice of a file, the background copy still fetches
	// the file's full content so subsequent slices hit the fast tier.
	// Disabling it (abl-fullfetch) copies only bytes the framework has
	// already read — i.e. placement degenerates to per-range caching.
	FullFileFetch bool
	// ChunkSize, when positive, splits each background placement into
	// fixed-size chunks fanned out across the pool; the read path then
	// serves any range whose chunks have already landed from the upper
	// tier while the rest of the copy is still in flight (mid-copy
	// read-through). The destination tier must implement
	// storage.RangeWriter or the placement silently falls back to a
	// whole-file copy. Zero preserves the paper-faithful whole-file
	// behaviour.
	ChunkSize int64
	// Staging selects placement timing; see StagingMode.
	Staging StagingMode
	// Eviction is nil for the paper's no-eviction policy (the right
	// choice for a single job with uniform access), a HeatPolicy for
	// heat-driven multi-job admission/eviction, or LRU/FIFO for the
	// abl-eviction ablation.
	Eviction EvictionPolicy
	// JobOf attributes a file name to a tenant job for quota accounting
	// and per-job fairness counters. Nil with Tenants set defaults to
	// JobFromPath (the first path segment); nil without Tenants disables
	// per-job accounting entirely.
	JobOf func(name string) string
	// Tenants declares per-job guaranteed shares of every cache tier;
	// see TenantConfig. Empty disables quota enforcement (single-tenant
	// behaviour). Borrowing is work-conserving: shares only bite under
	// tier pressure.
	Tenants []TenantConfig
	// Health tunes the per-tier circuit breaker that demotes entries
	// off failing tiers and probes Down tiers for recovery. The zero
	// value enables the breaker with defaults; set Health.Disabled for
	// the pre-breaker behaviour.
	Health HealthConfig
	// Retry re-queues placements that failed transiently instead of
	// marking the file unplaceable. The zero value disables retries.
	Retry RetryPolicy
	// Disabled turns Monarch into a pass-through to the source level
	// (used by baselines that want the namespace but no tiering).
	Disabled bool
	// Events, when non-nil, receives placement/eviction/fallback events
	// for observability. The log never blocks the data path.
	Events *EventLog
	// MetricsAddr, when non-empty, serves the instance's metrics
	// registry over HTTP at this "host:port" (":0" picks a free port;
	// see Monarch.MetricsURL). Endpoints: /metrics (Prometheus text),
	// /metrics.json (JSON snapshot), /debug/vars (expvar-style map).
	// The server starts in New and stops with Close/Shutdown.
	MetricsAddr string
	// Trace, when non-nil, receives typed spans from the read,
	// placement, chunk-copy and probe paths. The hook runs
	// synchronously on the instrumented path: it must be fast and must
	// never block.
	Trace obs.TraceHook
	// TracePath, when non-empty, streams an access trace to this file:
	// one fixed-size event per read, placement, chunk copy, epoch mark
	// and tier-state change (see internal/trace). A ".bin" suffix
	// selects the compact binary encoding; anything else writes JSONL.
	// The recorder closes (and writes its trailer) with Close/Shutdown.
	TracePath string
	// TraceSample records 1 in N plain read hits (≤1 records every
	// read). Partial hits, fallbacks, errors, placements and state
	// changes are never sampled out, so the trace stays in lock-step
	// with the monarch_events_total counters.
	TraceSample int
	// TraceClock supplies the trace's monotonic nanosecond clock; the
	// experiments pass the simulation clock so captured timestamps are
	// virtual. Nil uses wall-monotonic time.
	TraceClock func() int64
	// TraceMeta is embedded verbatim in the trace header (scale,
	// dataset name, copy-chunk size — whatever replays need).
	TraceMeta map[string]string
	// DisablePprof removes the net/http/pprof handlers that the
	// MetricsAddr endpoint serves under /debug/pprof/ by default.
	DisablePprof bool
	// Peer wires a peer cache tier (a level serving sibling nodes'
	// caches over the wire) into the read path; see PeerConfig.
	Peer PeerConfig
	// Write enables the write path — Create/WriteAt/Flush/Remove for
	// runtime-created files (checkpoints), with per-path durability and
	// an optional crash journal; see WriteConfig.
	Write WriteConfig
}

// PeerConfig routes reads through a peer cache tier. With a consistent
// ownership ring, every node caches only the files it owns and serves
// them to siblings; reads of non-owned files go through the owner's
// cache instead of hammering the PFS.
type PeerConfig struct {
	// Tier is the hierarchy index of the peer tier — the level whose
	// backend serves sibling caches (a peernet.Tier). It must sit
	// strictly between the top local tier and the source: 0 < Tier <
	// len(Levels)-1. Zero disables peer routing (level 0 is the top
	// local tier and can never be the peer tier).
	Tier int
	// Owns reports whether this node owns name on the ownership ring.
	// Owned files are cached locally by the placement handler;
	// non-owned reads route through the peer tier. Required when Tier
	// is set.
	Owns func(name string) bool
}

// enabled reports whether peer routing is configured.
func (p PeerConfig) enabled() bool { return p.Tier != 0 }

// Monarch is the middleware instance. All methods are safe for
// concurrent use.
type Monarch struct {
	cfg Config
	// base anchors the hot path's monotonic clock: time.Since(base)
	// costs one nanotime read, where a time.Now pair also reads the
	// wall clock — ~60ns saved per ReadView on the copy-free path.
	base   time.Time
	levels []*driver
	source *driver // == levels[len-1]
	meta   *metadataContainer
	stats  statsCollector
	placer *placer
	health *healthTracker
	// tenants is the per-job quota ledger; nil unless Config.JobOf or
	// Config.Tenants enables multi-job tenancy.
	tenants *tenantTable
	inst    instruments
	// writes is the write subsystem (durable checkpoints, write-back
	// flusher, crash journal); nil unless Config.Write.Enabled.
	writes *writeState
	tracer *trace.Recorder
	// spanHook fans spans out to the trace recorder and Config.Trace;
	// nil when neither is configured.
	spanHook obs.TraceHook

	metricsLn  net.Listener
	metricsSrv *http.Server
	traceOnce  sync.Once
}

// ErrNotInitialized is returned by reads before Init has built the
// namespace.
var ErrNotInitialized = errors.New("monarch: Init has not been called")

// ErrUnknownFile is returned for names absent from the namespace.
var ErrUnknownFile = errors.New("monarch: file not in namespace")

// New validates cfg and assembles an instance. Call Init before
// serving reads.
func New(cfg Config) (*Monarch, error) {
	if len(cfg.Levels) < 2 {
		return nil, fmt.Errorf("monarch: need at least 2 levels (got %d)", len(cfg.Levels))
	}
	if cfg.Pool == nil && !cfg.Disabled {
		return nil, fmt.Errorf("monarch: placement pool required")
	}
	if cfg.ChunkSize < 0 {
		return nil, fmt.Errorf("monarch: negative ChunkSize %d", cfg.ChunkSize)
	}
	if cfg.Peer.enabled() {
		if cfg.Peer.Tier < 1 || cfg.Peer.Tier >= len(cfg.Levels)-1 {
			return nil, fmt.Errorf("monarch: peer tier %d must sit between the top tier and the source (0 < tier < %d)",
				cfg.Peer.Tier, len(cfg.Levels)-1)
		}
		if cfg.Peer.Owns == nil {
			return nil, fmt.Errorf("monarch: peer routing requires an Owns function")
		}
	}
	if cfg.Write.Enabled {
		if cfg.Disabled {
			return nil, fmt.Errorf("monarch: the write path requires tiering (Disabled is set)")
		}
		if _, ok := cfg.Levels[0].(storage.RangeWriter); !ok {
			return nil, fmt.Errorf("monarch: the write path requires level 0 (%s) to implement storage.RangeWriter",
				cfg.Levels[0].Name())
		}
		if _, ok := cfg.Levels[len(cfg.Levels)-1].(storage.RangeWriter); !ok {
			return nil, fmt.Errorf("monarch: the write path requires the source level (%s) to implement storage.RangeWriter",
				cfg.Levels[len(cfg.Levels)-1].Name())
		}
	}
	m := &Monarch{cfg: cfg, base: time.Now()}
	for i, b := range cfg.Levels {
		if b == nil {
			return nil, fmt.Errorf("monarch: level %d backend is nil", i)
		}
		d := &driver{level: i, backend: b}
		d.vr, _ = b.(storage.ViewReader)
		m.levels = append(m.levels, d)
	}
	m.source = m.levels[len(m.levels)-1]
	m.meta = newMetadataContainer(len(m.levels))
	m.inst.reg = obs.NewRegistry()
	m.stats.init(m.inst.reg, len(m.levels))
	caps := make([]int64, len(m.levels))
	for i, d := range m.levels {
		caps[i] = d.backend.Capacity()
	}
	tenants, err := newTenantTable(cfg, caps)
	if err != nil {
		return nil, err
	}
	m.tenants = tenants
	if tb, ok := cfg.Eviction.(tenancyBinder); ok && m.tenants != nil {
		tb.bindTenancy(m.tenants)
	}
	m.placer = newPlacer(m)
	m.health = newHealthTracker(cfg.Health, len(m.levels)-1)
	if cfg.Write.Enabled {
		m.writes = newWriteState(m, cfg.Write)
	}
	m.initObs()
	m.initTenantObs()
	if cfg.TracePath != "" {
		if err := m.startTrace(); err != nil {
			return nil, err
		}
	}
	var tracerHook obs.TraceHook
	if m.tracer != nil {
		tracerHook = m.tracer.HookSpan
	}
	m.spanHook = obs.MultiHook(tracerHook, cfg.Trace)
	if cfg.MetricsAddr != "" {
		if err := m.startMetrics(); err != nil {
			m.closeTrace()
			return nil, err
		}
	}
	return m, nil
}

// Init builds the metadata container by listing the source level (the
// paper's start-up namespace traversal). Calling it a second time is an
// error: the namespace is ephemeral per job, and rebuilding it would
// silently forget completed placements.
func (m *Monarch) Init(ctx context.Context) error {
	if m.meta.initialized() {
		return fmt.Errorf("monarch: Init called twice")
	}
	// Journal recovery runs BEFORE the namespace listing: write-back
	// bytes a crashed predecessor acked but never flushed land on the
	// PFS first, so the recovered files are listed like any other.
	if err := m.initWrites(ctx); err != nil {
		return err
	}
	infos, err := m.source.backend.List(ctx)
	if err != nil {
		return fmt.Errorf("monarch: init: %w", err)
	}
	m.meta.populate(infos, len(m.levels)-1)
	if m.tracer != nil {
		files := make([]trace.File, len(infos))
		for i, fi := range infos {
			files[i] = trace.File{Name: fi.Name, Size: fi.Size}
		}
		m.tracer.AddFiles(files)
	}
	if m.cfg.Staging == StagePreTraining && !m.cfg.Disabled {
		return m.preStage(ctx)
	}
	return nil
}

// Levels returns the number of hierarchy levels.
func (m *Monarch) Levels() int { return len(m.levels) }

// NumFiles returns the namespace size.
func (m *Monarch) NumFiles() int { return m.meta.len() }

// Stats returns a snapshot of middleware counters.
func (m *Monarch) Stats() Stats {
	s := m.stats.snapshot(m.placer.inFlight())
	if m.writes != nil {
		s.DirtyBytes = m.writes.dirtyBytes()
	}
	return s
}

// Idle reports whether no placements are queued or running.
func (m *Monarch) Idle() bool { return m.placer.inFlight() == 0 }

// Close stops the placement intake. Queued placements still complete
// (GoPool's Close additionally waits for them). The trace recorder, if
// any, flushes and writes its trailer after the pool drains, so the
// trace's summary reflects final counters.
func (m *Monarch) Close() {
	m.stopMetrics()
	if m.writes != nil {
		// Graceful: drain the dirty backlog to the PFS, persist the heat
		// snapshot, seal the journal.
		m.writes.close(true)
	}
	if m.cfg.Pool != nil {
		m.cfg.Pool.Close()
	}
	m.closeTrace()
}

// Shutdown cancels in-flight placements and stops the intake; unlike
// Close it does not wait out long copies. Cancelled placements return
// their files to the source state and are not counted as errors.
func (m *Monarch) Shutdown() {
	m.stopMetrics()
	if m.writes != nil {
		// Abrupt: skip the drain. The journal already holds every acked
		// write-back byte; the next Init replays them into the PFS.
		m.writes.close(false)
	}
	if m.cfg.Pool != nil {
		m.cfg.Pool.Shutdown()
	}
	m.closeTrace()
}

// ReadAt is the paper's Monarch.read: it serves len(p) bytes at offset
// off of the named file from whichever tier currently holds it, and —
// on the first read of a file — schedules its background placement
// into the highest tier with free space.
func (m *Monarch) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	start := time.Now()
	e, err := m.lookup(name)
	if err != nil {
		m.inst.errRead.Inc()
		m.span(obs.Span{Kind: obs.SpanRead, File: name, Tier: -1, Off: off, Err: err, Duration: time.Since(start)})
		return 0, err
	}
	src := m.source.level
	lvl := e.currentLevel()
	partial := false
	peer := false
	var flags obs.SpanFlags
	if !m.cfg.Disabled {
		m.tickProbes()
		if lvl != src && m.health.isDown(lvl) {
			// The tier's breaker is open: route straight to the source
			// and demote the entry so later reads skip this path too —
			// one metadata update instead of a doomed attempt per read.
			m.demote(e, lvl)
			lvl = src
		}
		if lvl == src && m.cfg.ChunkSize > 0 {
			// Mid-copy read-through: a chunked placement may already
			// hold every chunk this range touches. Serve it from the
			// upper tier instead of adding PFS pressure.
			if plvl, ok := e.chunksCover(off, int64(len(p))); ok && !m.health.isDown(plvl) {
				lvl = plvl
				partial = true
			}
		}
		if lvl == src && m.cfg.Peer.enabled() && !m.cfg.Peer.Owns(name) &&
			!m.health.isDown(m.cfg.Peer.Tier) {
			// This node does not own the file: the owner's cache serves
			// it over the peer network instead of the PFS.
			lvl = m.cfg.Peer.Tier
			peer = true
		}
	}
	d := m.levels[lvl]
	rctx := ctx
	var ann *obs.ReadAnnotation
	var req uint64
	if peer {
		// Backend.ReadAt has no flag channel, so the peer tier reports
		// how it served (a hedged read) through a context annotation.
		rctx, ann = obs.WithReadAnnotation(ctx)
		// Mint the cross-node correlation ID: the peernet client stamps
		// it into the frame header, the serving node stamps it into its
		// serve span, and both halves land in traces under the same Req.
		req = obs.NewRequestID()
		rctx = obs.WithRequestID(rctx, req)
	}
	n, rerr := d.backend.ReadAt(rctx, name, p, off)
	if rerr != nil && peer && errors.Is(rerr, storage.ErrNotExist) {
		// Clean peer miss: the owner has not cached the file yet. That
		// is the protocol working, not a failure — no breaker feed, no
		// fallback event; the source still holds the data.
		m.stats.peerMisses.Add(1)
		flags |= obs.FlagPeerMiss
		peer = false
		d = m.source
		n, rerr = d.backend.ReadAt(ctx, name, p, off)
	} else if rerr != nil && lvl != src && !peer && !partial &&
		m.cfg.Eviction != nil && errors.Is(rerr, storage.ErrNotExist) {
		// Clean eviction race: the snapshot said placed, but a
		// concurrent eviction re-pointed the entry and removed the tier
		// copy between our lookup and the read. Like a peer miss this is
		// the protocol working, not a tier failure — re-serve from the
		// source with no breaker feed and no fallback event, so the
		// stress fan-in of evict/re-place/read cannot trip a healthy
		// tier. Mid-copy (partial) reads are excluded: in-flight chunked
		// placements are pinned against eviction, so ErrNotExist there
		// is a real anomaly for the breaker.
		m.stats.evictionRaces.Add(1)
		d = m.source
		n, rerr = d.backend.ReadAt(ctx, name, p, off)
	} else if rerr != nil && lvl != src {
		// A tier failed under us: fall back to the PFS, which always
		// holds the dataset, count the event, and feed the breaker.
		m.stats.fallbacks.Add(1)
		if peer {
			m.inst.errPeer.Inc()
			peer = false
		} else {
			m.inst.errTierRead.Inc()
		}
		flags |= obs.FlagFallback
		m.event(Event{Kind: EventFallback, File: name, Level: lvl, Err: rerr})
		if !m.cfg.Disabled {
			if m.health.recordReadError(lvl) {
				m.tierDown(lvl, rerr)
			}
			if m.health.isDown(lvl) {
				m.demote(e, lvl)
			}
		}
		d = m.source
		n, rerr = d.backend.ReadAt(ctx, name, p, off)
	} else if rerr == nil && lvl != src && !m.cfg.Disabled {
		m.health.recordReadOK(lvl)
	}
	if rerr != nil {
		m.inst.errRead.Inc()
		m.span(obs.Span{Kind: obs.SpanRead, File: name, Tier: d.level, Off: off, Flags: flags, Req: req, Err: rerr, Duration: time.Since(start)})
		return n, rerr
	}
	m.stats.served(d.level, int64(n))
	if partial && d.level != src {
		flags |= obs.FlagPartial
		m.stats.partialHits.Add(1)
		m.stats.partialHitBytes.Add(int64(n))
		m.event(Event{Kind: EventPartialHit, File: name, Level: d.level, Bytes: int64(n)})
	}
	if peer && d.level != src {
		flags |= obs.FlagPeer
		m.stats.peerHits.Add(1)
		m.stats.peerHitBytes.Add(int64(n))
		if ann.Flags()&obs.FlagHedged != 0 {
			flags |= obs.FlagHedged
			m.stats.peerHedges.Add(1)
		}
	}
	dur := time.Since(start)
	m.inst.readLatency[d.level].Observe(dur.Seconds())
	m.span(obs.Span{Kind: obs.SpanRead, File: name, Tier: d.level, Off: off, Bytes: int64(n), Flags: flags, Req: req, Duration: dur})
	m.stats.jobRead(m.tenants, name, d.level, src, int64(n))

	if !m.cfg.Disabled && m.cfg.Staging == StageOnFirstRead && m.owns(name) {
		// The §III-B flow: first access triggers placement. If the
		// framework happened to read the whole file, hand the content
		// to the placer so it can skip the source re-read. Under peer
		// routing, only owned files are cached locally — non-owned
		// reads already went through the owner's cache.
		var full []byte
		if off == 0 && int64(n) == e.size {
			full = append([]byte(nil), p[:n]...)
		}
		m.placer.onAccess(e, full)
	}
	if m.cfg.Eviction != nil {
		m.cfg.Eviction.OnAccess(name)
		if !m.cfg.Disabled && m.owns(name) {
			m.maybePromote(e)
		}
	}
	return n, nil
}

// maybePromote re-enters an unplaceable file into the placement
// pipeline. Heat-style policies (promoter) gate the revival: the file
// must have become hot enough to displace a colder resident, and
// HeatPolicy.ShouldPromote rate-limits the check to once per file per
// epoch. Plain recency policies (LRU/FIFO) revive unconditionally —
// under them an access *is* the claim to residence, and the books they
// keep lag the chunk-finalisation tasks, so a placement skipped during
// a burst must be retriable on the next touch. The placement itself
// then runs the normal admission path: if no victim still qualifies by
// the time it executes, the file simply returns to unplaceable.
func (m *Monarch) maybePromote(e *fileEntry) {
	if e.currentState() != stateUnplaceable {
		return
	}
	if pr, ok := m.cfg.Eviction.(promoter); ok && !pr.ShouldPromote(e.name) {
		return
	}
	if !e.makeReplaceable() {
		return
	}
	m.stats.promotions.Add(1)
	m.event(Event{Kind: EventPromoted, File: e.name, Level: -1, Bytes: e.size})
	m.placer.onAccess(e, nil)
}

// ReadView serves up to n bytes of the named file at offset off as a
// borrowed, read-only view — the copy-free variant of ReadAt. When the
// file is fully placed on a healthy tier whose backend lends views
// (MemFS, OSFS), the returned Data points straight at the tier's bytes
// with no copy into a caller buffer; every other case (mid-copy,
// peer-routed, demoted, unknown backend) falls through to the full
// ReadAt machinery into pooled scratch, so ReadView is always exactly
// as available as ReadAt and moves the same counters, histograms and
// spans.
//
// The caller MUST Release the view exactly once, promptly: a MemFS
// view holds the file's read lock, so sitting on one blocks writers to
// that file.
func (m *Monarch) ReadView(ctx context.Context, name string, off, n int64) (storage.View, error) {
	if n < 0 {
		return storage.View{}, fmt.Errorf("monarch: negative view length %d", n)
	}
	start := time.Since(m.base)
	e, err := m.lookup(name)
	if err != nil {
		m.inst.errRead.Inc()
		m.span(obs.Span{Kind: obs.SpanRead, File: name, Tier: -1, Off: off, Err: err, Duration: time.Since(m.base) - start})
		return storage.View{}, err
	}
	// Fast path: fully placed on a healthy tier that lends views. The
	// snapshot is one atomic load; a stale answer (concurrent demotion
	// or eviction) surfaces as a backend error and falls through to the
	// general path's fallback machinery.
	if st, lvl, _ := e.snapshot(); st == statePlaced && !m.cfg.Disabled {
		m.tickProbes()
		if d := m.levels[lvl]; !m.health.isDown(lvl) {
			if vr := d.viewReader(); vr != nil {
				v, rerr := vr.ReadView(ctx, name, off, n)
				if rerr == nil {
					m.health.recordReadOK(lvl)
					m.stats.served(lvl, int64(len(v.Data)))
					m.stats.jobRead(m.tenants, name, lvl, m.source.level, int64(len(v.Data)))
					dur := time.Since(m.base) - start
					m.inst.readLatency[lvl].Observe(dur.Seconds())
					m.span(obs.Span{Kind: obs.SpanRead, File: name, Tier: lvl, Off: off, Bytes: int64(len(v.Data)), Duration: dur})
					if m.cfg.Eviction != nil {
						m.cfg.Eviction.OnAccess(name)
					}
					return v, nil
				}
				if errors.Is(rerr, errors.ErrUnsupported) {
					// A wrapper claimed ViewReader but its wrapped
					// backend lacks it; stop asking.
					d.viewOff.Store(true)
				}
			}
		}
	}
	// General path: ReadAt into pooled scratch (full breaker, mid-copy,
	// peer and fallback semantics); Release returns the buffer.
	cn := n
	if rem := e.size - off; off >= 0 && rem < cn {
		cn = max(rem, 0)
	}
	buf := bufpool.Get(int(cn))
	nn, rerr := m.ReadAt(ctx, name, buf, off)
	if rerr != nil {
		bufpool.Put(buf)
		return storage.View{}, rerr
	}
	return storage.PooledView(buf, nn), nil
}

// ReadFull reads the entire named file through the middleware.
func (m *Monarch) ReadFull(ctx context.Context, name string) ([]byte, error) {
	e, err := m.lookup(name)
	if err != nil {
		return nil, err
	}
	p := make([]byte, e.size)
	n, err := m.ReadAt(ctx, name, p, 0)
	if err != nil {
		return nil, err
	}
	return p[:n], nil
}

// Stat returns the namespace entry for name without touching storage.
func (m *Monarch) Stat(name string) (storage.FileInfo, error) {
	e, err := m.lookup(name)
	if err != nil {
		return storage.FileInfo{}, err
	}
	return storage.FileInfo{Name: name, Size: e.size}, nil
}

// Files returns the namespace in sorted order.
func (m *Monarch) Files() []storage.FileInfo { return m.meta.list() }

// LevelOf reports which tier currently serves name.
func (m *Monarch) LevelOf(name string) (int, error) {
	e, err := m.lookup(name)
	if err != nil {
		return 0, err
	}
	return e.currentLevel(), nil
}

// owns reports whether this node should cache name locally. Without
// peer routing every node owns the whole namespace.
func (m *Monarch) owns(name string) bool {
	return !m.cfg.Peer.enabled() || m.cfg.Peer.Owns(name)
}

func (m *Monarch) lookup(name string) (*fileEntry, error) {
	if !m.meta.initialized() {
		return nil, ErrNotInitialized
	}
	e, ok := m.meta.get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFile, name)
	}
	return e, nil
}

// driver is the paper's "storage driver": a hierarchy level wrapping a
// backend.
type driver struct {
	level   int
	backend storage.Backend
	// vr is the backend's zero-copy capability, resolved once. viewOff
	// flips permanently when the backend turns out not to support views
	// after all (a wrapper like Counting asserts ViewReader but its
	// wrapped backend may not), so the fast path stops retrying.
	vr      storage.ViewReader
	viewOff atomic.Bool
}

// viewReader returns the driver's usable zero-copy capability, nil if
// absent or disabled.
func (d *driver) viewReader() storage.ViewReader {
	if d.vr == nil || d.viewOff.Load() {
		return nil
	}
	return d.vr
}
