package core

import (
	"container/list"
	"sync"
)

// EvictionPolicy is the hook behind the abl-eviction ablation. The
// paper argues (§III-A) that because every file is read exactly once
// per epoch in random order, cache replacement only adds inter-tier
// churn ("I/O trashing") and PFS load; MONARCH therefore never evicts.
// These policies exist to *demonstrate* that claim, not to be used.
//
// Implementations must be safe for concurrent use.
type EvictionPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// OnAccess records a foreground read of name.
	OnAccess(name string)
	// OnPlaced records that name now lives on level.
	OnPlaced(name string, level int)
	// OnEvicted records that name was removed from its tier.
	OnEvicted(name string)
	// Victim proposes a file to evict from level; ok is false when the
	// policy has no candidate.
	Victim(level int) (name string, ok bool)
}

// orderedPolicy implements LRU and FIFO over per-level lists.
type orderedPolicy struct {
	name      string
	moveOnHit bool // true = LRU, false = FIFO
	mu        sync.Mutex
	byName    map[string]*list.Element
	byLevel   map[int]*list.List // front = oldest
	levelOf   map[string]int
}

// NewLRU returns a least-recently-used policy.
func NewLRU() EvictionPolicy { return newOrdered("lru", true) }

// NewFIFO returns an insertion-order policy.
func NewFIFO() EvictionPolicy { return newOrdered("fifo", false) }

func newOrdered(name string, moveOnHit bool) *orderedPolicy {
	return &orderedPolicy{
		name:      name,
		moveOnHit: moveOnHit,
		byName:    make(map[string]*list.Element),
		byLevel:   make(map[int]*list.List),
		levelOf:   make(map[string]int),
	}
}

func (p *orderedPolicy) Name() string { return p.name }

func (p *orderedPolicy) OnAccess(name string) {
	if !p.moveOnHit {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byName[name]; ok {
		p.byLevel[p.levelOf[name]].MoveToBack(el)
	}
}

func (p *orderedPolicy) OnPlaced(name string, level int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byName[name]; ok {
		p.byLevel[p.levelOf[name]].Remove(el)
	}
	l := p.byLevel[level]
	if l == nil {
		l = list.New()
		p.byLevel[level] = l
	}
	p.byName[name] = l.PushBack(name)
	p.levelOf[name] = level
}

func (p *orderedPolicy) OnEvicted(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byName[name]; ok {
		p.byLevel[p.levelOf[name]].Remove(el)
		delete(p.byName, name)
		delete(p.levelOf, name)
	}
}

func (p *orderedPolicy) Victim(level int) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := p.byLevel[level]
	if l == nil || l.Len() == 0 {
		return "", false
	}
	return l.Front().Value.(string), true
}
