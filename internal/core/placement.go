package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"monarch/internal/bufpool"
	"monarch/internal/obs"
	"monarch/internal/pool"
	"monarch/internal/storage"
)

// placer is the paper's placement handler: it owns the background
// thread pool and the tier-selection algorithm (§III-A — descend the
// hierarchy, first level with room wins; no eviction). Beyond the
// paper, it skips tiers whose circuit breaker is open and re-queues
// transiently failed placements under Config.Retry.
type placer struct {
	m        *Monarch
	inflight atomic.Int64
}

func newPlacer(m *Monarch) *placer { return &placer{m: m} }

func (pl *placer) inFlight() int { return int(pl.inflight.Load()) }

// submit runs task on the pool with in-flight accounting (placements,
// retries, and recovery probes all count toward Idle); it reports
// false when the pool is closed.
func (pl *placer) submit(task pool.Task) bool {
	pl.inflight.Add(1)
	ok := pl.m.cfg.Pool.Submit(func(ctx context.Context) {
		defer pl.inflight.Add(-1)
		task(ctx)
	})
	if !ok {
		pl.inflight.Add(-1)
	}
	return ok
}

// onAccess is called from the foreground read path. If this is the
// file's first access it schedules a placement task; full, when
// non-nil, is the complete file content the framework just read (the
// §III-B fast path that skips the source re-read).
func (pl *placer) onAccess(e *fileEntry, full []byte) {
	// Snapshot fast-skip: once the file left Source (queued, placed,
	// unplaceable, ...) every subsequent read would pay the entry mutex
	// in tryQueue just to learn there is nothing to do. tryQueue stays
	// the authoritative, mutex-guarded transition for the one read that
	// actually races the snapshot.
	if e.currentState() != stateSource {
		return
	}
	if pl.m.writes.protected(e.name) {
		// Writable files never enter the placement pipeline: a tier copy
		// of a write-through file would go stale on its next WriteAt.
		return
	}
	if !e.tryQueue() {
		return
	}
	if !pl.submit(func(ctx context.Context) { pl.place(ctx, e, full, 1, true) }) {
		e.markUnplaceable() // pool closed: no placement for this job
		return
	}
	pl.m.span(obs.Span{Kind: obs.SpanPlacementEnqueue, File: e.name, Tier: -1, Bytes: e.size})
}

// placed records a successful placement of e onto d: metadata, stats,
// the enqueue-to-landed latency histogram, the placement span, the
// event, and the eviction hook — shared by the whole-file and chunked
// paths so the two can never diverge in bookkeeping. reuse marks a
// placement satisfied from the foreground's full read (no source
// traffic), which the span advertises so trace consumers can account
// PFS operations correctly.
func (pl *placer) placed(e *fileEntry, d *driver, attempt int, wroteBytes, reuse bool) {
	m := pl.m
	queued := e.queuedSince()
	m.health.recordWriteOK(d.level)
	e.markPlaced(d.level)
	m.stats.placedOn(d.level, e.size)
	if wroteBytes {
		m.stats.writtenBytes[d.level].Add(e.size)
	}
	var dur time.Duration
	if !queued.IsZero() {
		dur = time.Since(queued)
		m.inst.placementLatency.Observe(dur.Seconds())
	}
	var flags obs.SpanFlags
	if reuse {
		flags |= obs.FlagReuse
	}
	m.span(obs.Span{Kind: obs.SpanPlacement, File: e.name, Tier: d.level, Bytes: e.size, Attempt: attempt, Flags: flags, Duration: dur})
	m.event(Event{Kind: EventPlaced, File: e.name, Level: d.level, Bytes: e.size})
	if m.tenants != nil {
		m.tenants.charge(m.tenants.job(e.name), d.level, e.size)
	}
	if m.cfg.Eviction != nil {
		m.cfg.Eviction.OnPlaced(e.name, d.level)
	}
}

// placementSkipped records a terminal skip (no tier had room, or the
// fetch ablation disabled copying).
func (pl *placer) placementSkipped(e *fileEntry, cause error) {
	m := pl.m
	m.stats.placementSkips.Add(1)
	m.span(obs.Span{Kind: obs.SpanPlacement, File: e.name, Tier: -1, Bytes: e.size, Err: cause,
		Duration: sinceQueued(e)})
	m.event(Event{Kind: EventSkipped, File: e.name, Level: -1})
	e.markUnplaceable()
}

// placementFailed records a terminal operational failure on level.
func (pl *placer) placementFailed(e *fileEntry, level, attempt int, err error) {
	m := pl.m
	m.stats.placementErrors.Add(1)
	m.inst.errPlacement.Inc()
	m.span(obs.Span{Kind: obs.SpanPlacement, File: e.name, Tier: level, Bytes: e.size,
		Attempt: attempt, Err: err, Duration: sinceQueued(e)})
	m.event(Event{Kind: EventFailed, File: e.name, Level: level, Err: err})
	e.markUnplaceable()
}

func sinceQueued(e *fileEntry) time.Duration {
	if q := e.queuedSince(); !q.IsZero() {
		return time.Since(q)
	}
	return 0
}

// place copies e into the first healthy tier with room; attempt is
// 1-based. allowChunks permits the chunked fan-out (pre-staging keeps
// it off: it must finish synchronously before training starts). The
// paper's policy never evicts; the eviction ablations hook in through
// tryMakeRoom.
func (pl *placer) place(ctx context.Context, e *fileEntry, full []byte, attempt int, allowChunks bool) {
	m := pl.m
	if ctx.Err() != nil {
		e.cancelQueued() // shut down mid-queue: not a placement failure
		return
	}
	// Checkpoint-burst gate: while foreground writes are landing (or
	// their dirty backlog is draining), background copies would fight
	// them for tier and PFS bandwidth — hold here until the burst ends.
	m.writePause(ctx)
	if ctx.Err() != nil {
		e.cancelQueued()
		return
	}
	for _, d := range m.levels[:len(m.levels)-1] {
		if m.cfg.Peer.enabled() && d.level == m.cfg.Peer.Tier {
			continue // the peer tier is a read-only view of siblings, never a destination
		}
		if !m.health.placeable(d.level) {
			continue // breaker open: never write into a dead tier
		}
		if storage.Free(d.backend) < e.size {
			if !pl.tryMakeRoom(ctx, d, e) {
				continue
			}
		}
		err := pl.copyInto(ctx, d, e, full, attempt, allowChunks)
		if err == nil {
			// Mirrors copyInto's first case: a full foreground read was
			// written straight through, with no source fetch.
			reuse := full != nil && int64(len(full)) == e.size
			pl.placed(e, d, attempt, true, reuse)
			return
		}
		if errors.Is(err, errChunksDelegated) {
			// A chunk job now owns this placement; it finalises the
			// entry, stats and events when the last chunk resolves.
			return
		}
		if errors.Is(err, storage.ErrNoSpace) {
			// Lost a quota race with a concurrent placement; try the
			// next level down.
			continue
		}
		if errors.Is(err, errFetchDisabled) {
			pl.placementSkipped(e, err)
			return
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			e.cancelQueued() // cancelled copy: not a placement failure
			return
		}
		// Operational failure: feed the breaker, then retry or give up.
		if m.health.recordWriteError(d.level) {
			m.tierDown(d.level, err)
		}
		if pl.retry(e, full, attempt, d.level, err, allowChunks) {
			return
		}
		pl.placementFailed(e, d.level, attempt, err)
		return
	}
	pl.placementSkipped(e, storage.ErrNoSpace)
}

// retry re-queues a transiently failed placement with backoff; it
// reports whether the failure was handled (a retry was scheduled, or
// the pool closed while scheduling it).
func (pl *placer) retry(e *fileEntry, full []byte, attempt, level int, err error, allowChunks bool) bool {
	m := pl.m
	r := m.cfg.Retry
	if !r.enabled() || attempt >= r.MaxAttempts || !r.transient(err) {
		return false
	}
	e.noteRetry()
	m.stats.retries.Add(1)
	m.event(Event{Kind: EventRetried, File: e.name, Level: level, Err: err})
	next := attempt + 1
	if !pl.submit(func(ctx context.Context) {
		r.wait(ctx, attempt)
		pl.place(ctx, e, full, next, allowChunks)
	}) {
		e.markUnplaceable() // pool closed between failure and retry
	}
	return true
}

// copyInto moves the file content onto level d. Preference order:
// reuse the foreground's full read, then the chunked fan-out (when
// configured and the tier supports range writes), then the backend's
// whole-file copy fast path, then an explicit read-modify-write through
// this process.
func (pl *placer) copyInto(ctx context.Context, d *driver, e *fileEntry, full []byte, attempt int, allowChunks bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m := pl.m
	src := m.source.backend
	switch {
	case full != nil && int64(len(full)) == e.size:
		m.stats.fullReadReuses.Add(1)
		return d.backend.WriteFile(ctx, e.name, full)
	case !m.cfg.FullFileFetch:
		// Ablation: no full-file fetch. Without the optimisation the
		// middleware can only cache content the framework explicitly
		// read in full, so a partial first read places nothing.
		return errFetchDisabled
	default:
		if allowChunks && m.cfg.ChunkSize > 0 && e.size > 0 {
			if rw, ok := d.backend.(storage.RangeWriter); ok {
				err := pl.placeChunked(ctx, d, rw, e, attempt)
				if !errors.Is(err, errors.ErrUnsupported) {
					return err
				}
				// An instrumentation wrapper advertised range writes
				// its inner backend lacks: fall back to whole-file.
			}
		}
		if cp, ok := d.backend.(storage.Copier); ok {
			return cp.CopyFrom(ctx, src, e.name)
		}
		data, err := src.ReadFile(ctx, e.name)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return d.backend.WriteFile(ctx, e.name, data)
	}
}

// errChunksDelegated signals that a chunk job has taken ownership of
// the placement: the calling place() must return without touching the
// entry, because the job finalises success/failure asynchronously.
var errChunksDelegated = errors.New("monarch: chunked placement in flight")

// placeChunked allocates e at full size on d and fans its chunks out
// across the pool: min(pool workers, chunk count) claim-loop workers
// each pull the next unclaimed chunk, copy it, and flip its presence
// bit — so the foreground can read completed ranges mid-copy. The
// calling task itself becomes one of the workers (placement never
// deadlocks on a saturated pool), and whichever worker exits last
// finalises the placement. Returns errChunksDelegated once the job is
// running, or the Allocate error (ErrNoSpace routes the caller to the
// next level; errors.ErrUnsupported routes to the whole-file path).
func (pl *placer) placeChunked(ctx context.Context, d *driver, rw storage.RangeWriter, e *fileEntry, attempt int) error {
	if err := rw.Allocate(ctx, e.name, e.size); err != nil {
		return err
	}
	chunk := pl.m.cfg.ChunkSize
	e.beginChunks(d.level, chunk)
	j := &chunkJob{
		pl:      pl,
		d:       d,
		rw:      rw,
		e:       e,
		chunk:   chunk,
		nchunks: int64(chunkCount(e.size, chunk)),
		attempt: attempt,
	}
	fan := int64(pl.m.cfg.Pool.Workers())
	if fan > j.nchunks {
		fan = j.nchunks
	}
	j.workers.Store(1) // the calling task is worker zero
	for i := int64(1); i < fan; i++ {
		j.workers.Add(1)
		if !pl.submit(j.run) {
			j.workers.Add(-1) // pool closed: run with fewer workers
		}
	}
	j.run(ctx)
	return errChunksDelegated
}

// chunkJob is one file's in-flight chunked placement.
type chunkJob struct {
	pl      *placer
	d       *driver
	rw      storage.RangeWriter
	e       *fileEntry
	chunk   int64
	nchunks int64
	attempt int

	next    atomic.Int64 // next chunk index to claim
	done    atomic.Int64 // chunks copied successfully
	workers atomic.Int64 // live claim-loop workers

	mu        sync.Mutex
	err       error // first operational failure
	cancelled bool
}

func (j *chunkJob) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = err
		// First failing worker charges the error funnel — exactly once
		// per failed job, however many workers observe the failure.
		j.pl.m.inst.errChunkCopy.Inc()
	}
}

func (j *chunkJob) failed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err != nil
}

func (j *chunkJob) cancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelled = true
}

// run is one claim-loop worker: it pulls unclaimed chunk indices until
// they run out, the job fails, or the context is cancelled. The last
// worker to exit finalises the placement.
func (j *chunkJob) run(ctx context.Context) {
	buf := bufpool.Get(int(j.chunk))
	defer bufpool.Put(buf)
	for !j.failed() {
		if ctx.Err() != nil {
			j.cancel()
			break
		}
		// Per-chunk burst check: a long chunked copy yields between
		// chunks when a checkpoint burst starts mid-flight.
		j.pl.m.writePause(ctx)
		if ctx.Err() != nil {
			j.cancel()
			break
		}
		i := j.next.Add(1) - 1
		if i >= j.nchunks {
			break
		}
		if err := j.copyChunk(ctx, i, buf); err != nil {
			if ctx.Err() != nil || errors.Is(err, context.Canceled) {
				j.cancel()
			} else {
				j.fail(err)
			}
			break
		}
	}
	if j.workers.Add(-1) == 0 {
		j.finish(ctx)
	}
}

// copyChunk moves chunk i from the source into the destination tier
// and, on success, flips its presence bit so the read path can serve it
// immediately.
func (j *chunkJob) copyChunk(ctx context.Context, i int64, buf []byte) error {
	m := j.pl.m
	start := time.Now()
	off := i * j.chunk
	want := j.e.size - off
	if want > j.chunk {
		want = j.chunk
	}
	n, err := m.source.backend.ReadAt(ctx, j.e.name, buf[:want], off)
	if err != nil {
		return err
	}
	if int64(n) < want {
		return fmt.Errorf("monarch: chunk %d of %q: source truncated at %d/%d bytes",
			i, j.e.name, off+int64(n), j.e.size)
	}
	if _, err := j.rw.WriteAt(ctx, j.e.name, buf[:want], off); err != nil {
		return err
	}
	j.e.markChunk(int(i))
	j.done.Add(1)
	m.stats.chunkPlacements.Add(1)
	m.stats.writtenBytes[j.d.level].Add(want)
	dur := time.Since(start)
	m.inst.chunkCopyLatency.Observe(dur.Seconds())
	m.span(obs.Span{Kind: obs.SpanChunkCopy, File: j.e.name, Tier: j.d.level, Off: off, Bytes: want,
		Attempt: j.attempt, Duration: dur})
	m.event(Event{Kind: EventChunkPlaced, File: j.e.name, Level: j.d.level, Bytes: want})
	return nil
}

// finish resolves the whole placement once the last worker exits:
// success mirrors the whole-file bookkeeping; a failed chunk removes
// the partial copy — demoting only this file — and classifies the
// error through the same retry/breaker machinery as whole-file
// placements; cancellation returns the entry to Source untouched.
func (j *chunkJob) finish(ctx context.Context) {
	m := j.pl.m
	e, d := j.e, j.d
	if j.done.Load() == j.nchunks {
		// Chunk bytes were charged to the tier as they landed, so the
		// shared bookkeeping must not add them again.
		j.pl.placed(e, d, j.attempt, false, false)
		return
	}
	e.clearChunks()
	j.mu.Lock()
	err, cancelled := j.err, j.cancelled
	j.mu.Unlock()
	if err == nil && cancelled {
		e.cancelQueued() // shutdown mid-copy: not a placement failure
		return
	}
	// A chunk failed: drop the partial copy so the tier never serves a
	// torn file, then feed the breaker and retry or give up — only this
	// file is affected unless the breaker trips the whole tier.
	if rmErr := d.backend.Remove(ctx, e.name); rmErr != nil && !errors.Is(rmErr, storage.ErrNotExist) {
		m.inst.errCleanup.Inc()
		m.event(Event{Kind: EventOpError, File: e.name, Level: d.level, Err: rmErr})
	}
	if m.health.recordWriteError(d.level) {
		m.tierDown(d.level, err)
	}
	if j.pl.retry(e, nil, j.attempt, d.level, err, true) {
		return
	}
	j.pl.placementFailed(e, d.level, j.attempt, err)
}

// errFetchDisabled marks placements skipped by the abl-fullfetch
// configuration; it routes to markUnplaceable via the placementErrors
// path but is not an operational failure.
var errFetchDisabled = errors.New("monarch: full-file fetch disabled")

// errUnknownVictim marks a policy proposing a file absent from the
// namespace; tryMakeRoom gives up rather than trusting the policy
// further.
var errUnknownVictim = errors.New("monarch: eviction victim missing from namespace")

// tryMakeRoom applies the configured eviction policy until e fits on
// d. With a victimChooser (the heat engine) the candidate is in view,
// so admission — quota reclaim or the heat-vs-margin contest — happens
// inside victim selection; plain policies (the abl-eviction LRU/FIFO)
// keep their unconditional make-room behaviour. The file being placed
// is never its own victim, and a victim proposed twice aborts the loop
// so a policy that ignores OnEvicted cannot spin it forever.
func (pl *placer) tryMakeRoom(ctx context.Context, d *driver, e *fileEntry) bool {
	policy := pl.m.cfg.Eviction
	if policy == nil {
		return false
	}
	if c := d.backend.Capacity(); c > 0 && e.size > c {
		return false // would never fit, even empty
	}
	chooser, _ := policy.(victimChooser)
	var tried map[string]bool
	for storage.Free(d.backend) < e.size {
		var victim string
		var ok bool
		if chooser != nil {
			victim, ok = chooser.VictimFor(e.name, d.level)
		} else {
			victim, ok = policy.Victim(d.level)
		}
		if !ok || victim == e.name || tried[victim] {
			return false
		}
		if tried == nil {
			tried = make(map[string]bool)
		}
		tried[victim] = true
		if _, err := pl.evict(ctx, d, victim); err != nil {
			return false
		}
		// A stale victim (freed=false, nil error) just loops: evict
		// already dropped it from the policy's books, so the next
		// iteration proposes someone else.
	}
	return true
}

// evict removes the victim from d on behalf of a placement. It reports
// freed=true when bytes actually left the tier; freed=false with a nil
// error means the victim was stale — no longer placed on d (concurrent
// eviction or demotion, or pinned by an in-flight chunked placement) —
// and the caller should ask the policy for another candidate.
func (pl *placer) evict(ctx context.Context, d *driver, name string) (bool, error) {
	m := pl.m
	e, ok := m.meta.get(name)
	if !ok {
		return false, errUnknownVictim
	}
	// Writable files are never victims: a dirty one holds the only
	// tiered copy of acked bytes, and even a clean one belongs to the
	// Remove lifecycle, not the placement policy. Defense in depth — the
	// write path keeps them out of Eviction.OnPlaced, so a policy
	// proposing one is working from corrupt books; treat it as stale.
	if m.writes.protected(name) {
		m.cfg.Eviction.OnEvicted(name)
		return false, nil
	}
	// Metadata first: the moment the entry re-points at the source, new
	// lookups route there and never observe the removal below. A reader
	// already holding the placed snapshot may race Remove and get
	// ErrNotExist from the tier; ReadAt treats that as a clean eviction
	// race (re-served from the source, no breaker feed).
	if !e.markEvictedFrom(d.level, m.source.level) {
		m.cfg.Eviction.OnEvicted(name) // stale books: drop the ghost
		return false, nil
	}
	start := time.Now()
	job := m.tenants.job(name)
	m.tenants.release(job, d.level, e.size)
	m.cfg.Eviction.OnEvicted(name)
	if err := d.backend.Remove(ctx, name); err != nil && !errors.Is(err, storage.ErrNotExist) {
		// The entry already routes to the source so reads stay correct,
		// but the tier freed nothing — surface the wedged eviction.
		m.inst.errEvict.Inc()
		m.event(Event{Kind: EventOpError, File: name, Level: d.level, Err: err})
		return false, err
	}
	m.stats.evictions.Add(1)
	m.stats.jobEviction(m.tenants, job)
	m.event(Event{Kind: EventEvicted, File: name, Level: d.level, Bytes: e.size})
	m.span(obs.Span{Kind: obs.SpanEvict, File: name, Tier: d.level, Bytes: e.size, Duration: time.Since(start)})
	return true, nil
}

// preStage implements StagePreTraining: synchronously walk the
// namespace in name order, placing every file until the upper tiers
// fill. It runs on the caller (no thread pool) because the paper's
// option i happens before training starts; for the same reason the
// chunked fan-out is disabled here — every copy must have completed by
// the time preStage returns. Cancelling the context aborts the walk.
func (m *Monarch) preStage(ctx context.Context) error {
	for _, e := range m.meta.sortedEntries() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !m.owns(e.name) {
			continue
		}
		if !e.tryQueue() {
			continue
		}
		m.placer.place(ctx, e, nil, 1, false)
	}
	return nil
}
