package core

import (
	"context"
	"errors"
	"sync/atomic"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// placer is the paper's placement handler: it owns the background
// thread pool and the tier-selection algorithm (§III-A — descend the
// hierarchy, first level with room wins; no eviction). Beyond the
// paper, it skips tiers whose circuit breaker is open and re-queues
// transiently failed placements under Config.Retry.
type placer struct {
	m        *Monarch
	inflight atomic.Int64
}

func newPlacer(m *Monarch) *placer { return &placer{m: m} }

func (pl *placer) inFlight() int { return int(pl.inflight.Load()) }

// submit runs task on the pool with in-flight accounting (placements,
// retries, and recovery probes all count toward Idle); it reports
// false when the pool is closed.
func (pl *placer) submit(task pool.Task) bool {
	pl.inflight.Add(1)
	ok := pl.m.cfg.Pool.Submit(func(ctx context.Context) {
		defer pl.inflight.Add(-1)
		task(ctx)
	})
	if !ok {
		pl.inflight.Add(-1)
	}
	return ok
}

// onAccess is called from the foreground read path. If this is the
// file's first access it schedules a placement task; full, when
// non-nil, is the complete file content the framework just read (the
// §III-B fast path that skips the source re-read).
func (pl *placer) onAccess(e *fileEntry, full []byte) {
	if !e.tryQueue() {
		return
	}
	if !pl.submit(func(ctx context.Context) { pl.place(ctx, e, full, 1) }) {
		e.markUnplaceable() // pool closed: no placement for this job
	}
}

// place copies e into the first healthy tier with room; attempt is
// 1-based. The paper's policy never evicts; the eviction ablations hook
// in through tryMakeRoom.
func (pl *placer) place(ctx context.Context, e *fileEntry, full []byte, attempt int) {
	m := pl.m
	if ctx.Err() != nil {
		e.cancelQueued() // shut down mid-queue: not a placement failure
		return
	}
	for _, d := range m.levels[:len(m.levels)-1] {
		if !m.health.placeable(d.level) {
			continue // breaker open: never write into a dead tier
		}
		if storage.Free(d.backend) < e.size {
			if !pl.tryMakeRoom(ctx, d, e.size) {
				continue
			}
		}
		err := pl.copyInto(ctx, d, e, full)
		if err == nil {
			m.health.recordWriteOK(d.level)
			e.markPlaced(d.level)
			m.stats.placements.Add(1)
			m.stats.placedBytes.Add(e.size)
			m.cfg.Events.emit(Event{Kind: EventPlaced, File: e.name, Level: d.level, Bytes: e.size})
			if m.cfg.Eviction != nil {
				m.cfg.Eviction.OnPlaced(e.name, d.level)
			}
			return
		}
		if errors.Is(err, storage.ErrNoSpace) {
			// Lost a quota race with a concurrent placement; try the
			// next level down.
			continue
		}
		if errors.Is(err, errFetchDisabled) {
			m.stats.placementSkips.Add(1)
			m.cfg.Events.emit(Event{Kind: EventSkipped, File: e.name, Level: -1})
			e.markUnplaceable()
			return
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			e.cancelQueued() // cancelled copy: not a placement failure
			return
		}
		// Operational failure: feed the breaker, then retry or give up.
		if m.health.recordWriteError(d.level) {
			m.tierDown(d.level, err)
		}
		if pl.retry(e, full, attempt, d.level, err) {
			return
		}
		m.stats.placementErrors.Add(1)
		m.cfg.Events.emit(Event{Kind: EventFailed, File: e.name, Level: d.level, Err: err})
		e.markUnplaceable()
		return
	}
	m.stats.placementSkips.Add(1)
	m.cfg.Events.emit(Event{Kind: EventSkipped, File: e.name, Level: -1})
	e.markUnplaceable()
}

// retry re-queues a transiently failed placement with backoff; it
// reports whether the failure was handled (a retry was scheduled, or
// the pool closed while scheduling it).
func (pl *placer) retry(e *fileEntry, full []byte, attempt, level int, err error) bool {
	m := pl.m
	r := m.cfg.Retry
	if !r.enabled() || attempt >= r.MaxAttempts || !r.transient(err) {
		return false
	}
	e.noteRetry()
	m.stats.retries.Add(1)
	m.cfg.Events.emit(Event{Kind: EventRetried, File: e.name, Level: level, Err: err})
	next := attempt + 1
	if !pl.submit(func(ctx context.Context) {
		r.wait(ctx, attempt)
		pl.place(ctx, e, full, next)
	}) {
		e.markUnplaceable() // pool closed between failure and retry
	}
	return true
}

// copyInto moves the file content onto level d. Preference order:
// reuse the foreground's full read, then the backend's whole-file copy
// fast path, then an explicit read-modify-write through this process.
func (pl *placer) copyInto(ctx context.Context, d *driver, e *fileEntry, full []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m := pl.m
	src := m.source.backend
	switch {
	case full != nil && int64(len(full)) == e.size:
		m.stats.fullReadReuses.Add(1)
		return d.backend.WriteFile(ctx, e.name, full)
	case !m.cfg.FullFileFetch:
		// Ablation: no full-file fetch. Without the optimisation the
		// middleware can only cache content the framework explicitly
		// read in full, so a partial first read places nothing.
		return errFetchDisabled
	default:
		if cp, ok := d.backend.(storage.Copier); ok {
			return cp.CopyFrom(ctx, src, e.name)
		}
		data, err := src.ReadFile(ctx, e.name)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return d.backend.WriteFile(ctx, e.name, data)
	}
}

// errFetchDisabled marks placements skipped by the abl-fullfetch
// configuration; it routes to markUnplaceable via the placementErrors
// path but is not an operational failure.
var errFetchDisabled = errors.New("monarch: full-file fetch disabled")

// tryMakeRoom applies the configured eviction policy (ablation only;
// the paper's MONARCH never evicts) until size bytes fit on d.
func (pl *placer) tryMakeRoom(ctx context.Context, d *driver, size int64) bool {
	policy := pl.m.cfg.Eviction
	if policy == nil {
		return false
	}
	if d.backend.Capacity() > 0 && size > d.backend.Capacity() {
		return false // would never fit, even empty
	}
	for storage.Free(d.backend) < size {
		victim, ok := policy.Victim(d.level)
		if !ok {
			return false
		}
		if err := pl.evict(ctx, d, victim); err != nil {
			return false
		}
	}
	return true
}

func (pl *placer) evict(ctx context.Context, d *driver, name string) error {
	m := pl.m
	e, ok := m.meta.get(name)
	if !ok {
		return errors.New("monarch: eviction victim missing from namespace")
	}
	if err := d.backend.Remove(ctx, name); err != nil {
		return err
	}
	e.markEvicted(m.source.level)
	m.cfg.Eviction.OnEvicted(name)
	m.stats.evictions.Add(1)
	m.cfg.Events.emit(Event{Kind: EventEvicted, File: name, Level: d.level, Bytes: e.size})
	return nil
}

// preStage implements StagePreTraining: synchronously walk the
// namespace in name order, placing every file until the upper tiers
// fill. It runs on the caller (no thread pool) because the paper's
// option i happens before training starts.
func (m *Monarch) preStage(ctx context.Context) error {
	for _, e := range m.meta.sortedEntries() {
		if !e.tryQueue() {
			continue
		}
		m.placer.place(ctx, e, nil, 1)
	}
	return nil
}
