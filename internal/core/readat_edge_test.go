package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"monarch/internal/storage"
)

// TestReadAtEdgeCases pins the pread contract at the boundaries, in
// whole-file and chunked mode and both before and after placement: the
// middleware must behave exactly like the backing store's ReadRange.
func TestReadAtEdgeCases(t *testing.T) {
	const fileSize = 1000 // 4 chunks of 256: last chunk is short
	want := chunkContent(0, fileSize)
	cases := []struct {
		name    string
		off     int64
		bufLen  int
		wantN   int
		wantErr bool
	}{
		{"full file", 0, fileSize, fileSize, false},
		{"interior range", 100, 50, 50, false},
		{"read at EOF", fileSize, 10, 0, false},
		{"read past EOF", fileSize + 5, 10, 0, false},
		{"range clipped at EOF", fileSize - 10, 50, 10, false},
		{"zero-length buffer", 0, 0, 0, false},
		{"zero-length buffer at EOF", fileSize, 0, 0, false},
		{"chunk-boundary straddle", 200, 112, 112, false}, // spans chunks 0 and 1
		{"exact chunk", 256, 256, 256, false},             // chunk 1 exactly
		{"tail into short chunk", 700, 300, 300, false},   // chunks 2 and 3
		{"negative offset", -1, 10, 0, true},
	}
	for _, chunkSize := range []int64{0, 256} {
		for _, placed := range []bool{false, true} {
			mode := fmt.Sprintf("chunk=%d/placed=%v", chunkSize, placed)
			t.Run(mode, func(t *testing.T) {
				m := newChunkStack(t, storage.NewMemFS("ssd", 0), 4, 1, fileSize,
					func(c *Config) { c.ChunkSize = chunkSize })
				ctx := context.Background()
				if placed {
					if _, err := m.ReadAt(ctx, "c000", make([]byte, 1), 0); err != nil {
						t.Fatal(err)
					}
					waitIdleM(t, m)
				}
				for _, tc := range cases {
					buf := make([]byte, tc.bufLen)
					n, err := m.ReadAt(ctx, "c000", buf, tc.off)
					if (err != nil) != tc.wantErr {
						t.Errorf("%s: err=%v wantErr=%v", tc.name, err, tc.wantErr)
						continue
					}
					if n != tc.wantN {
						t.Errorf("%s: n=%d want %d", tc.name, n, tc.wantN)
						continue
					}
					if err == nil && n > 0 && !bytes.Equal(buf[:n], want[tc.off:tc.off+int64(n)]) {
						t.Errorf("%s: bytes differ from source", tc.name)
					}
				}
			})
		}
	}
}

// TestConcurrentFirstRead races two goroutines on the same file's first
// read: both must get correct bytes and exactly one placement may run.
func TestConcurrentFirstRead(t *testing.T) {
	for _, chunkSize := range []int64{0, 256} {
		t.Run(fmt.Sprintf("chunk=%d", chunkSize), func(t *testing.T) {
			const fileSize = 1000
			m := newChunkStack(t, storage.NewMemFS("ssd", 0), 4, 1, fileSize,
				func(c *Config) { c.ChunkSize = chunkSize })
			ctx := context.Background()
			want := chunkContent(0, fileSize)
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					buf := make([]byte, 100)
					n, err := m.ReadAt(ctx, "c000", buf, int64(g)*100)
					if err != nil {
						errs[g] = err
						return
					}
					if n != 100 || !bytes.Equal(buf[:n], want[g*100:g*100+n]) {
						errs[g] = fmt.Errorf("goroutine %d: wrong bytes (n=%d)", g, n)
					}
				}(g)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			waitIdleM(t, m)
			st := m.Stats()
			if st.Placements != 1 {
				t.Fatalf("placements = %d, want exactly 1", st.Placements)
			}
			if got, err := m.ReadFull(ctx, "c000"); err != nil || !bytes.Equal(got, want) {
				t.Fatalf("placed content differs from source (err=%v)", err)
			}
		})
	}
}

// TestReadAtUnknownAndUninitialized pins the namespace error contract
// regardless of chunk mode.
func TestReadAtUnknownFileChunked(t *testing.T) {
	m := newChunkStack(t, storage.NewMemFS("ssd", 0), 1, 1, 100, nil)
	if _, err := m.ReadAt(context.Background(), "nope", make([]byte, 1), 0); err == nil {
		t.Fatal("expected ErrUnknownFile")
	}
}
