package core

import (
	"fmt"
	"net"
	"net/http"
	"strconv"

	"monarch/internal/obs"
	"monarch/internal/pool"
)

// Error stages for the monarch_errors_total funnel. Every error the
// middleware observes — including ones it previously dropped on
// best-effort paths — increments exactly one stage.
const (
	// stageTierRead: an upper-tier read failed and the read fell back
	// to the source.
	stageTierRead = "tier-read"
	// stagePeer: a peer-tier read failed (transport or remote error —
	// NOT a clean miss) and the read fell back to the source.
	stagePeer = "peer"
	// stageRead: a foreground read failed to the caller.
	stageRead = "read"
	// stagePlacement: a placement reached terminal failure.
	stagePlacement = "placement"
	// stageChunkCopy: one chunk copy of a chunked placement failed
	// (counted once per failed job, by the first failing worker).
	stageChunkCopy = "chunk-copy"
	// stageProbe: a recovery probe found the tier still dead.
	stageProbe = "probe"
	// stageEvict: an eviction victim could not be removed.
	stageEvict = "evict"
	// stageCleanup: a best-effort removal failed (partial-copy cleanup
	// after a failed chunk job, probe scratch file).
	stageCleanup = "cleanup"
	// stageWrite: a foreground Create/WriteAt/Remove failed to the
	// caller.
	stageWrite = "write"
	// stageFlush: a background flush of a write-back file to the PFS
	// failed (the bytes stay dirty and journaled; the flush retries).
	stageFlush = "flush"
	// stageJournal: a write-journal append, compaction or close failed.
	stageJournal = "journal"
)

// instruments bundles the registry and every handle the middleware
// updates outside the statsCollector: latency histograms, the error
// funnel, and per-event-kind counters. All handles are created once in
// initObs; hot paths only touch atomics.
type instruments struct {
	reg *obs.Registry

	readLatency      []*obs.Histogram // per tier, successful foreground reads
	placementLatency *obs.Histogram   // enqueue → placed, successful placements
	chunkCopyLatency *obs.Histogram   // one chunk, source → destination tier
	writeLatency     *obs.Histogram   // successful foreground writes, ack latency
	flushLatency     *obs.Histogram   // one write-back flush, tier 0 → PFS

	errTierRead  *obs.Counter
	errPeer      *obs.Counter
	errRead      *obs.Counter
	errPlacement *obs.Counter
	errChunkCopy *obs.Counter
	errProbe     *obs.Counter
	errEvict     *obs.Counter
	errCleanup   *obs.Counter
	errWrite     *obs.Counter
	errFlush     *obs.Counter
	errJournal   *obs.Counter

	events [eventKinds]*obs.Counter
}

// initObs builds the registry view of the instance: histograms, error
// counters, event counters, derived gauges (hit ratio, breaker state,
// pool load), and the auto-instrumentation of levels that support it.
// Called from New after stats, placer and health exist.
func (m *Monarch) initObs() {
	reg := m.inst.reg
	obs.RegisterBuildInfo(reg, m.base)
	for i := range m.levels {
		m.inst.readLatency = append(m.inst.readLatency, reg.Histogram(
			"monarch_read_latency_seconds",
			"Latency of successful foreground reads, by serving level.",
			nil, obs.L("tier", strconv.Itoa(i))))
	}
	m.inst.placementLatency = reg.Histogram("monarch_placement_latency_seconds",
		"Enqueue-to-landed latency of successful placements (includes queue wait).", nil)
	m.inst.chunkCopyLatency = reg.Histogram("monarch_chunk_copy_latency_seconds",
		"Latency of individual chunk copies within chunked placements.", nil)
	m.inst.writeLatency = reg.Histogram("monarch_write_latency_seconds",
		"Ack latency of successful foreground writes (both durability levels).", nil)
	m.inst.flushLatency = reg.Histogram("monarch_flush_latency_seconds",
		"Latency of background write-back flushes (tier 0 to the PFS).", nil)

	const errHelp = "Errors observed by the middleware, by pipeline stage."
	m.inst.errTierRead = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stageTierRead))
	m.inst.errPeer = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stagePeer))
	m.inst.errRead = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stageRead))
	m.inst.errPlacement = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stagePlacement))
	m.inst.errChunkCopy = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stageChunkCopy))
	m.inst.errProbe = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stageProbe))
	m.inst.errEvict = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stageEvict))
	m.inst.errCleanup = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stageCleanup))
	m.inst.errWrite = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stageWrite))
	m.inst.errFlush = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stageFlush))
	m.inst.errJournal = reg.Counter("monarch_errors_total", errHelp, obs.L("stage", stageJournal))

	for k := EventKind(0); k < eventKinds; k++ {
		m.inst.events[k] = reg.Counter("monarch_events_total",
			"Middleware events emitted, by kind.", obs.L("kind", k.String()))
	}

	reg.GaugeFunc("monarch_hit_ratio",
		"Fraction of foreground reads served above the source level.",
		m.stats.hitRatio)
	reg.GaugeFunc("monarch_inflight_placements",
		"Queued or running placement tasks, including retries and probes.",
		func() float64 { return float64(m.placer.inFlight()) })
	if m.writes != nil {
		reg.GaugeFunc("monarch_dirty_bytes",
			"Write-back bytes acked by tier 0 but not yet flushed to the PFS.",
			func() float64 { return float64(m.writes.dirtyBytes()) })
		reg.GaugeFunc("monarch_write_burst_active",
			"1 while the checkpoint-burst gate holds background placement paused.",
			func() float64 {
				if m.writes.burstActive() {
					return 1
				}
				return 0
			})
	}
	for i := 0; i < len(m.levels)-1; i++ {
		lvl := i
		reg.GaugeFunc("monarch_tier_breaker_state",
			"Circuit-breaker state per tier: 0 healthy, 1 suspect, 2 down.",
			func() float64 { return float64(m.health.state(lvl)) },
			obs.L("tier", strconv.Itoa(lvl)))
	}
	if p := m.cfg.Pool; p != nil {
		reg.GaugeFunc("monarch_pool_workers",
			"Fixed worker count of the placement pool.",
			func() float64 { return float64(p.Workers()) })
		reg.GaugeFunc("monarch_pool_queue_depth",
			"Placement tasks waiting for a worker.",
			func() float64 {
				if in, ok := p.(pool.Introspector); ok {
					s := in.Stats()
					return float64(s.Pending - s.Active)
				}
				return float64(p.Pending())
			})
		reg.GaugeFunc("monarch_pool_active_workers",
			"Workers currently running a placement task.",
			func() float64 {
				if in, ok := p.(pool.Introspector); ok {
					return float64(in.Stats().Active)
				}
				return 0
			})
	}
	for i, d := range m.levels {
		b := d.backend
		tier := obs.L("tier", strconv.Itoa(i))
		reg.GaugeFunc("monarch_tier_used_bytes",
			"Bytes currently held by each level's backend.",
			func() float64 { return float64(b.Used()) }, tier)
		reg.GaugeFunc("monarch_tier_capacity_bytes",
			"Capacity each level's backend reports (0 = unlimited).",
			func() float64 { return float64(b.Capacity()) }, tier)
		if in, ok := b.(obs.Instrumentable); ok {
			in.Instrument(reg, tier)
		}
	}
}

// initTenantObs registers per-tenant quota gauges for every declared
// tenant and cache tier. Jobs discovered only at runtime still get
// their fairness counters lazily (statsCollector.job); quota gauges
// exist only for declared shares, because only those carry guarantees.
func (m *Monarch) initTenantObs() {
	if m.tenants == nil {
		return
	}
	reg := m.inst.reg
	for _, j := range m.tenants.jobs() {
		job := j
		for lvl := 0; lvl < len(m.levels)-1; lvl++ {
			level := lvl
			labels := []obs.Label{obs.L("job", job), obs.L("tier", strconv.Itoa(level))}
			reg.GaugeFunc("monarch_job_tier_used_bytes",
				"Bytes of a tenant job's files currently placed on a tier.",
				func() float64 { return float64(m.tenants.usedBytes(job, level)) },
				labels...)
			reg.GaugeFunc("monarch_job_tier_quota_bytes",
				"A tenant job's guaranteed share of a tier, in bytes.",
				func() float64 { return float64(m.tenants.guarantee(job, level)) },
				labels...)
		}
	}
}

// event is the single funnel every middleware event goes through: it
// bumps the per-kind counter, forwards to the (possibly nil) event
// log, and mirrors tier-state changes into the access trace — so the
// log, the registry and the trace can never disagree about what
// happened.
func (m *Monarch) event(e Event) {
	if k := int(e.Kind); k >= 0 && k < len(m.inst.events) {
		m.inst.events[k].Inc()
	}
	m.cfg.Events.emit(e)
	m.traceState(e)
}

// span delivers a completed span to the configured consumers (the
// trace recorder and the Config.Trace hook, fanned out by New).
func (m *Monarch) span(s obs.Span) {
	if m.spanHook != nil {
		m.spanHook(s)
	}
}

// Registry exposes the instance's metrics registry, for embedding
// snapshots (monarch-benchjson -metrics) or attaching custom sinks.
func (m *Monarch) Registry() *obs.Registry { return m.inst.reg }

// Healthz summarizes the instance for the /healthz endpoint: every
// cache tier's breaker state plus the trace ring's drop count. The
// summary is Healthy() unless a breaker is open. Gossip state is
// outside core's view; monarch-serve layers it in before serving.
func (m *Monarch) Healthz() obs.Health {
	h := obs.Health{}
	for i, d := range m.levels {
		if i == m.source.level {
			continue
		}
		h.Tiers = append(h.Tiers, obs.TierHealth{
			Tier:  i,
			Name:  d.backend.Name(),
			State: m.health.state(i).String(),
		})
	}
	h.TraceDrops = m.tracer.Stats().Dropped
	return h
}

// MetricsURL returns the base URL of the metrics endpoint, or "" when
// Config.MetricsAddr is unset. With MetricsAddr ":0" this is how the
// chosen port is discovered.
func (m *Monarch) MetricsURL() string {
	if m.metricsLn == nil {
		return ""
	}
	return "http://" + m.metricsLn.Addr().String()
}

// startMetrics binds Config.MetricsAddr and serves the registry
// (Prometheus text on /metrics, JSON snapshot on /metrics.json,
// expvar-style map on /debug/vars).
func (m *Monarch) startMetrics() error {
	ln, err := net.Listen("tcp", m.cfg.MetricsAddr)
	if err != nil {
		return fmt.Errorf("monarch: metrics listener: %w", err)
	}
	m.metricsLn = ln
	srv := &http.Server{Handler: m.inst.reg.HandlerWith(obs.HandlerOpts{
		DisablePprof: m.cfg.DisablePprof,
		Health:       m.Healthz,
	})}
	m.metricsSrv = srv
	// srv is captured locally: stopMetrics may nil the field before this
	// goroutine is scheduled.
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// stopMetrics shuts the metrics endpoint down; safe to call twice and
// with no server running.
func (m *Monarch) stopMetrics() {
	if m.metricsSrv != nil {
		_ = m.metricsSrv.Close()
		m.metricsSrv = nil
		m.metricsLn = nil
	}
}
