package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monarch/internal/bufpool"
	"monarch/internal/storage"
)

// FuzzMetaOracle replays an arbitrary op tape against the sharded
// metadataContainer and a plain-map oracle whose entries are driven
// through identical fileEntry transitions. Lookups, counts, sorted
// listings and the lock-free packed snapshots must agree after every
// step — sharding must be observationally indistinguishable from one
// map, and a snapshot must never lag the mutex-guarded truth once the
// mutator has returned.
func FuzzMetaOracle(f *testing.F) {
	f.Add(uint8(4), []byte{})
	f.Add(uint8(70), []byte{0, 0, 1, 1, 2, 2, 3, 3, 4, 4})
	f.Add(uint8(130), []byte{5, 9, 6, 9, 7, 9, 8, 9, 9, 9})
	f.Add(uint8(64), []byte{1, 0, 3, 5, 2, 0, 1, 1, 10, 200})
	f.Add(uint8(2), []byte{2, 3, 3, 0, 3, 1, 3, 2, 10, 100, 1, 0})
	f.Fuzz(func(t *testing.T, nFiles uint8, tape []byte) {
		const levels = 3
		nf := 1 + int(nFiles)%130 // crosses the shard count (64)
		infos := make([]storage.FileInfo, nf)
		for i := range infos {
			infos[i] = storage.FileInfo{Name: fmt.Sprintf("f%03d", i), Size: int64(i) * 17}
		}
		c := newMetadataContainer(levels)
		c.populate(infos, levels-1)
		oracle := make(map[string]*fileEntry, nf)
		for _, fi := range infos {
			e := &fileEntry{name: fi.Name, size: fi.Size, level: levels - 1}
			e.publish()
			oracle[fi.Name] = e
		}
		if c.len() != len(oracle) {
			t.Fatalf("len = %d, oracle %d", c.len(), len(oracle))
		}
		// Re-populating existing names must not double count.
		c.populate(infos[:1], levels-1)
		if c.len() != len(oracle) {
			t.Fatalf("len = %d after re-populate, oracle %d", c.len(), len(oracle))
		}

		check := func(step int, ce, oe *fileEntry) {
			t.Helper()
			st, lvl, armed := ce.snapshot()
			ost, olvl, oarmed := oe.snapshot()
			if st != ost || lvl != olvl || armed != oarmed {
				t.Fatalf("step %d: snapshot (%d,%d,%v) != oracle (%d,%d,%v)",
					step, st, lvl, armed, ost, olvl, oarmed)
			}
			ce.mu.Lock()
			mst, mlvl, marmed := ce.state, ce.level, ce.chunkBits != nil
			ce.mu.Unlock()
			if st != mst || lvl != mlvl || armed != marmed {
				t.Fatalf("step %d: snapshot (%d,%d,%v) lags locked truth (%d,%d,%v)",
					step, st, lvl, armed, mst, mlvl, marmed)
			}
		}

		for pc := 0; pc+1 < len(tape); pc += 2 {
			op, arg := tape[pc], int64(tape[pc+1])
			name := fmt.Sprintf("f%03d", int(arg)%nf)
			ce, ok := c.get(name)
			oe, ook := oracle[name]
			if ok != ook {
				t.Fatalf("get(%q) = %v, oracle %v", name, ok, ook)
			}
			if !ok {
				t.Fatalf("populated entry %q missing", name)
			}
			switch op % 13 {
			case 0:
				if g, w := ce.tryQueue(), oe.tryQueue(); g != w {
					t.Fatalf("tryQueue = %v, oracle %v", g, w)
				}
			case 1:
				ce.markPlaced(int(arg) % levels)
				oe.markPlaced(int(arg) % levels)
			case 2:
				ce.beginChunks(0, arg%7)
				oe.beginChunks(0, arg%7)
			case 3:
				if g, w := ce.markChunk(int(arg)), oe.markChunk(int(arg)); g != w {
					t.Fatalf("markChunk(%d) = %v, oracle %v", arg, g, w)
				}
			case 4:
				ce.clearChunks()
				oe.clearChunks()
			case 5:
				ce.markUnplaceable()
				oe.markUnplaceable()
			case 6:
				ce.markEvicted(levels - 1)
				oe.markEvicted(levels - 1)
			case 7:
				if g, w := ce.markDemoted(int(arg)%levels, levels-1), oe.markDemoted(int(arg)%levels, levels-1); g != w {
					t.Fatalf("markDemoted = %v, oracle %v", g, w)
				}
			case 8:
				ce.cancelQueued()
				oe.cancelQueued()
			case 9:
				if g, w := ce.makeReplaceable(), oe.makeReplaceable(); g != w {
					t.Fatalf("makeReplaceable = %v, oracle %v", g, w)
				}
			case 10:
				glvl, gcov := ce.chunksCover(arg, arg%97)
				wlvl, wcov := oe.chunksCover(arg, arg%97)
				if glvl != wlvl || gcov != wcov {
					t.Fatalf("chunksCover(%d) = (%d,%v), oracle (%d,%v)", arg, glvl, gcov, wlvl, wcov)
				}
			case 11:
				if _, hit := c.get(fmt.Sprintf("zz%03d", arg)); hit {
					t.Fatalf("get of unpopulated name hit")
				}
			case 12:
				// The live eviction transition: must agree with the
				// oracle, must only fire on entries placed on the given
				// level, and must leave the entry re-placeable with no
				// chunk state behind.
				g := ce.markEvictedFrom(int(arg)%levels, levels-1)
				w := oe.markEvictedFrom(int(arg)%levels, levels-1)
				if g != w {
					t.Fatalf("markEvictedFrom = %v, oracle %v", g, w)
				}
				if g {
					if st, _, armed := ce.snapshot(); st != stateSource || armed {
						t.Fatalf("evicted entry in state %d (armed=%v), want re-placeable source", st, armed)
					}
					if !ce.tryQueue() || !oe.tryQueue() {
						t.Fatalf("evicted entry not immediately re-placeable")
					}
				}
			}
			check(pc, ce, oe)
		}

		// Whole-namespace walks must see exactly the oracle's names, in
		// sorted order, regardless of how they landed across shards.
		list := c.list()
		if len(list) != len(oracle) {
			t.Fatalf("list has %d entries, oracle %d", len(list), len(oracle))
		}
		for i, fi := range list {
			want := fmt.Sprintf("f%03d", i)
			if fi.Name != want || fi.Size != int64(i)*17 {
				t.Fatalf("list[%d] = %+v, want {%s %d}", i, fi, want, i*17)
			}
		}
		se := c.sortedEntries()
		for i, e := range se {
			if e.name != fmt.Sprintf("f%03d", i) {
				t.Fatalf("sortedEntries[%d] = %q, out of order", i, e.name)
			}
			if oracle[e.name] == nil {
				t.Fatalf("sortedEntries yielded unknown entry %q", e.name)
			}
		}
	})
}

// fanInTape is one reader's deterministic op sequence in the high
// fan-in stress test: the same tapes replayed serially must produce
// identical aggregate stats, because every op's outcome is a pure
// function of the (immutable) file contents.
type fanInTape struct {
	ops []fanInOp
}

type fanInOp struct {
	file int // -1 = read of an unknown name (must error)
	off  int64
	n    int
	view bool // read through ReadView instead of ReadAt
}

func makeFanInTape(seed int64, nfiles, fileSize, ops int) fanInTape {
	rng := rand.New(rand.NewSource(seed))
	tape := fanInTape{ops: make([]fanInOp, ops)}
	for i := range tape.ops {
		op := fanInOp{
			file: rng.Intn(nfiles),
			off:  int64(rng.Intn(fileSize + fileSize/4)), // some reads clip at / start past EOF
			n:    1 + rng.Intn(fileSize),
			view: rng.Intn(4) == 0,
		}
		if rng.Intn(32) == 0 {
			op.file = -1
		}
		tape.ops[i] = op
	}
	return tape
}

// runFanInTape replays one tape against m, verifying every read against
// the generating function, and returns (successful reads, bytes read,
// failed reads).
func runFanInTape(t *testing.T, m *Monarch, tape fanInTape, nfiles, fileSize int) (reads, bytesRead, errs int64) {
	ctx := context.Background()
	buf := make([]byte, fileSize)
	for _, op := range tape.ops {
		if op.file < 0 {
			if _, err := m.ReadAt(ctx, "missing", buf[:1], 0); err == nil {
				t.Error("read of unknown name succeeded")
				return
			}
			errs++
			continue
		}
		name := fmt.Sprintf("c%03d", op.file)
		want := chunkContent(op.file, fileSize)
		wantN := min(op.n, max(fileSize-int(op.off), 0))
		wantStart := min(int(op.off), fileSize)
		var got []byte
		if op.view {
			v, err := m.ReadView(ctx, name, op.off, int64(op.n))
			if err != nil {
				t.Errorf("ReadView(%s, %d, %d): %v", name, op.off, op.n, err)
				return
			}
			got = v.Data
			if len(got) != wantN || !bytes.Equal(got, want[wantStart:wantStart+wantN]) {
				v.Release()
				t.Errorf("ReadView(%s, %d, %d) returned wrong bytes (n=%d, want %d)",
					name, op.off, op.n, len(got), wantN)
				return
			}
			v.Release()
		} else {
			n, err := m.ReadAt(ctx, name, buf[:op.n], op.off)
			if err != nil {
				t.Errorf("ReadAt(%s, %d, %d): %v", name, op.off, op.n, err)
				return
			}
			if n != wantN || !bytes.Equal(buf[:n], want[wantStart:wantStart+wantN]) {
				t.Errorf("ReadAt(%s, %d, %d) returned wrong bytes (n=%d, want %d)",
					name, op.off, op.n, n, wantN)
				return
			}
		}
		reads++
		bytesRead += int64(wantN)
	}
	return reads, bytesRead, errs
}

func sum64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestReadAtHighFanIn hammers a chunked 2-level stack with 64 reader
// goroutines racing the background placements — hits, misses, mid-copy
// partial hits and unknown names all interleaved — and then replays the
// exact same tapes serially on a fresh stack. Every read must be
// byte-identical to the generating function in both runs, the
// timing-independent stats (reads, bytes, placements) must agree, and
// the buffer pool must balance once both stacks quiesce.
func TestReadAtHighFanIn(t *testing.T) {
	if testing.Short() {
		t.Skip("high fan-in stress test")
	}
	const (
		goroutines = 64
		nfiles     = 32
		fileSize   = 4096
		opsPerG    = 150
	)
	before := bufpool.Snapshot()
	tapes := make([]fanInTape, goroutines)
	for g := range tapes {
		tapes[g] = makeFanInTape(int64(g)*7919+1, nfiles, fileSize, opsPerG)
	}

	run := func(concurrent bool) (reads, bytesRead, errs int64, st Stats) {
		m := newChunkStack(t, storage.NewMemFS("ssd", 0), 2, nfiles, fileSize, nil)
		var r, b, e atomic.Int64
		if concurrent {
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					gr, gb, ge := runFanInTape(t, m, tapes[g], nfiles, fileSize)
					r.Add(gr)
					b.Add(gb)
					e.Add(ge)
				}(g)
			}
			wg.Wait()
		} else {
			for g := 0; g < goroutines; g++ {
				gr, gb, ge := runFanInTape(t, m, tapes[g], nfiles, fileSize)
				r.Add(gr)
				b.Add(gb)
				e.Add(ge)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
		waitIdleM(t, m)
		st = m.Stats()
		// Every file was read at least once, so every file must end up
		// placed on tier 0 once the pool drains.
		for i := 0; i < nfiles; i++ {
			if lvl, err := m.LevelOf(fmt.Sprintf("c%03d", i)); err != nil || lvl != 0 {
				t.Fatalf("c%03d at level %d (err=%v) after quiesce, want 0", i, lvl, err)
			}
		}
		m.Close()
		return r.Load(), b.Load(), e.Load(), st
	}

	cr, cb, ce, cst := run(true)
	sr, sb, se, sst := run(false)

	if cr != sr || cb != sb || ce != se {
		t.Fatalf("concurrent run (reads=%d bytes=%d errs=%d) != serial (reads=%d bytes=%d errs=%d)",
			cr, cb, ce, sr, sb, se)
	}
	for name, pair := range map[string][2]int64{
		"ReadsServed": {sum64(cst.ReadsServed), sum64(sst.ReadsServed)},
		"BytesServed": {sum64(cst.BytesServed), sum64(sst.BytesServed)},
		"Placements":  {cst.Placements, sst.Placements},
		"PlacedBytes": {cst.PlacedBytes, sst.PlacedBytes},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s: concurrent %d != serial %d", name, pair[0], pair[1])
		}
	}
	if got, want := sum64(cst.ReadsServed), cr; got != want {
		t.Errorf("stats counted %d served reads, tapes produced %d", got, want)
	}
	if got, want := sum64(cst.BytesServed), cb; got != want {
		t.Errorf("stats counted %d served bytes, tapes produced %d", got, want)
	}
	if cst.PlacementErrors != 0 || sst.PlacementErrors != 0 {
		t.Errorf("placement errors: concurrent %d, serial %d", cst.PlacementErrors, sst.PlacementErrors)
	}

	// Leak check: every pooled buffer the two runs borrowed (chunk
	// copies, probe scratch, view fallthroughs) must have been returned
	// or discarded once everything quiesced.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := bufpool.Snapshot()
		gets := after.Gets - before.Gets
		rets := (after.Puts - before.Puts) + (after.Discards - before.Discards)
		if gets == rets {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("buffer pool imbalance: %d gets, %d puts+discards", gets, rets)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
