package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

func TestEventLogRingSemantics(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.add(Event{Kind: EventPlaced, File: fmt.Sprintf("f%d", i)})
	}
	evs := l.Events()
	if len(evs) != 3 || l.Len() != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].File != "f2" || evs[2].File != "f4" {
		t.Fatalf("ring order wrong: %v %v", evs[0].File, evs[2].File)
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d", l.Dropped())
	}
	// Sequence numbers are global and monotone.
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("seqs: %d %d", evs[0].Seq, evs[2].Seq)
	}
}

func TestEventLogPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEventLog(0)
}

func TestEventKindAndString(t *testing.T) {
	kinds := map[EventKind]string{
		EventPlaced: "placed", EventSkipped: "skipped", EventFailed: "failed",
		EventEvicted: "evicted", EventFallback: "fallback", EventKind(42): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	e := Event{Kind: EventPlaced, File: "f", Level: 0, Bytes: 10, Seq: 1}
	if !strings.Contains(e.String(), "placed f on level 0") {
		t.Fatalf("%q", e.String())
	}
	if !strings.Contains(Event{Kind: EventFailed, File: "g", Err: errors.New("x"), Seq: 2}.String(), "failed") {
		t.Fatal("failed event string")
	}
	if !strings.Contains(Event{Kind: EventEvicted, File: "h", Seq: 3}.String(), "evicted") {
		t.Fatal("evicted event string")
	}
	if !strings.Contains(Event{Kind: EventFallback, File: "i", Seq: 4}.String(), "fell back") {
		t.Fatal("fallback event string")
	}
	if !strings.Contains(Event{Kind: EventSkipped, File: "j", Seq: 5}.String(), "skipped") {
		t.Fatal("skipped event string")
	}
}

func TestNilEventLogIsSafe(t *testing.T) {
	var l *EventLog
	l.emit(Event{Kind: EventPlaced}) // must not panic
}

func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.add(Event{Kind: EventPlaced})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 64 || l.Dropped() != 800-64 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
}

func TestMiddlewareEmitsLifecycleEvents(t *testing.T) {
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("pfs", 0)
	for i := 0; i < 4; i++ {
		if err := pfsRaw.WriteFile(ctx, fmt.Sprintf("f%d", i),
			bytes.Repeat([]byte{1}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	pfsRaw.SetReadOnly(true)
	tier0 := storage.NewFaulty(storage.NewMemFS("ssd", 250)) // fits 2
	log := NewEventLog(32)
	gp := pool.NewGoPool(1)
	m, err := New(Config{
		Levels:        []storage.Backend{tier0, pfsRaw},
		Pool:          gp,
		FullFileFetch: true,
		Events:        log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	for i := 0; i < 4; i++ {
		if _, err := m.ReadAt(ctx, fmt.Sprintf("f%d", i), buf, 0); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for !m.Idle() {
			if time.Now().After(deadline) {
				t.Fatal("stuck")
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Break the tier and force a fallback.
	tier0.Break()
	if _, err := m.ReadAt(ctx, "f0", buf, 0); err != nil {
		t.Fatal(err)
	}

	byKind := map[EventKind]int{}
	for _, e := range log.Events() {
		byKind[e.Kind]++
	}
	if byKind[EventPlaced] != 2 {
		t.Fatalf("placed events = %d, want 2", byKind[EventPlaced])
	}
	if byKind[EventSkipped] != 2 {
		t.Fatalf("skipped events = %d, want 2", byKind[EventSkipped])
	}
	if byKind[EventFallback] != 1 {
		t.Fatalf("fallback events = %d, want 1", byKind[EventFallback])
	}
}
