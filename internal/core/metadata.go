package core

import (
	"sort"
	"sync"
	"time"

	"monarch/internal/storage"
)

// placementState tracks a file's progress through the placement
// pipeline.
type placementState int

const (
	// stateSource: only the PFS copy exists and no placement has been
	// scheduled yet.
	stateSource placementState = iota
	// stateQueued: a placement task is queued or running.
	stateQueued
	// statePlaced: the file lives on an upper tier.
	statePlaced
	// stateUnplaceable: every candidate tier was full (or a placement
	// failed permanently); the file is served from the PFS until a tier
	// recovery makes it re-placeable (§III-A: placement stops once the
	// local tiers run out of space).
	stateUnplaceable
	// stateDemoted: the file was placed on a tier whose circuit breaker
	// tripped; it is served from the source until the tier recovers and
	// resetForReplacement sends it back through the placement pipeline.
	stateDemoted
)

// fileEntry is the paper's "file info": size, name and current storage
// tier, guarded for concurrent access from the framework's reader
// threads and the placement pool. Beyond the paper it carries a
// chunk-presence bitmap while a chunked placement is in flight, so the
// read path can serve already-copied ranges from the upper tier
// mid-copy.
//
// Bitmap invariants:
//   - chunkBits is non-nil exactly between beginChunks and
//     markPlaced/clearChunks; outside that window reads never consult it;
//   - bit i covers byte range [i*chunkSize, min((i+1)*chunkSize, size));
//   - bits only go 0→1 while armed (markChunk), so a range observed
//     covered stays covered until the whole placement resolves;
//   - chunksLeft is the count of zero bits; it reaches 0 exactly when
//     every chunk landed, at which point the owner calls markPlaced.
type fileEntry struct {
	name string
	size int64

	mu       sync.Mutex
	level    int
	state    placementState
	retries  int       // placement attempts beyond the first (observability)
	queuedAt time.Time // when the current placement was enqueued (latency spans)

	// Chunked-placement residency (armed only while a chunked copy is
	// in flight; nil in whole-file mode).
	chunkSize  int64
	chunkLevel int
	chunkBits  []uint64
	chunksLeft int
}

func (e *fileEntry) currentLevel() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.level
}

func (e *fileEntry) currentState() placementState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// tryQueue transitions Source→Queued exactly once; it reports whether
// the caller won the race and should schedule the placement.
func (e *fileEntry) tryQueue() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != stateSource {
		return false
	}
	e.state = stateQueued
	e.queuedAt = time.Now()
	return true
}

// queuedSince returns when the in-flight placement was enqueued; the
// zero time if none is.
func (e *fileEntry) queuedSince() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queuedAt
}

// markPlaced records a successful placement onto level and disarms any
// chunk bitmap: once placed, the normal tier routing serves the file.
func (e *fileEntry) markPlaced(level int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.level = level
	e.state = statePlaced
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
}

// chunkCount returns how many chunk-size pieces cover size bytes.
func chunkCount(size, chunk int64) int {
	if size <= 0 || chunk <= 0 {
		return 0
	}
	return int((size + chunk - 1) / chunk)
}

// beginChunks arms the chunk-presence bitmap for a chunked copy into
// level, discarding any prior partial state (a retried placement starts
// over).
func (e *fileEntry) beginChunks(level int, chunk int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := chunkCount(e.size, chunk)
	e.chunkSize = chunk
	e.chunkLevel = level
	e.chunkBits = make([]uint64, (n+63)/64)
	e.chunksLeft = n
}

// markChunk records chunk i resident; it reports whether i was the last
// missing chunk, i.e. the copy is now complete. Marking an unarmed,
// out-of-range, or already-set chunk is a no-op — the range check must
// use the real chunk count, not the bitmap's word capacity, or phantom
// indices in the last word's slack would drive chunksLeft negative and
// complete the placement early.
func (e *fileEntry) markChunk(i int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.chunkBits == nil || i < 0 || i >= chunkCount(e.size, e.chunkSize) {
		return false
	}
	w, b := i/64, uint(i%64)
	if e.chunkBits[w]&(1<<b) != 0 {
		return false
	}
	e.chunkBits[w] |= 1 << b
	e.chunksLeft--
	return e.chunksLeft == 0
}

// clearChunks discards partial-copy state after a failed or cancelled
// chunked placement; the entry falls back to source-only residency.
func (e *fileEntry) clearChunks() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
}

// chunksCover reports whether every chunk overlapping [off, off+n)
// (clamped to the file size) is already resident on the tier a chunked
// placement is copying into, returning that level. It only answers
// while the placement is in flight (stateQueued with an armed bitmap);
// empty ranges are routed to the source like today.
func (e *fileEntry) chunksCover(off, n int64) (int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.chunkBits == nil || e.chunkSize <= 0 || e.state != stateQueued {
		return 0, false
	}
	if off < 0 || off >= e.size {
		return 0, false
	}
	end := off + n
	if end > e.size {
		end = e.size
	}
	if end <= off {
		return 0, false
	}
	for i := off / e.chunkSize; i*e.chunkSize < end; i++ {
		w, b := i/64, uint(i%64)
		if e.chunkBits[w]&(1<<b) == 0 {
			return 0, false
		}
	}
	return e.chunkLevel, true
}

// markUnplaceable records that no tier had space.
func (e *fileEntry) markUnplaceable() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state = stateUnplaceable
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
}

// markEvicted sends the file back to the source level so a later access
// may re-place it (only eviction-policy ablations ever call this).
func (e *fileEntry) markEvicted(sourceLevel int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.level = sourceLevel
	e.state = stateSource
}

// markDemoted re-points a file placed on a tripped tier at the source
// level; it reports whether the entry actually moved (false when a
// concurrent demotion or placement already changed it).
func (e *fileEntry) markDemoted(from, sourceLevel int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != statePlaced || e.level != from {
		return false
	}
	e.level = sourceLevel
	e.state = stateDemoted
	return true
}

// cancelQueued returns a queued entry to Source after a cancelled
// placement, so a later access may schedule it again; a cancelled
// placement is not a placement failure.
func (e *fileEntry) cancelQueued() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == stateQueued {
		e.state = stateSource
	}
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
}

// noteRetry counts one placement retry on the entry.
func (e *fileEntry) noteRetry() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retries++
}

// makeReplaceable sends a demoted or unplaceable entry back to Source
// so its next access re-enters the placement pipeline; it reports
// whether the entry changed.
func (e *fileEntry) makeReplaceable() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != stateDemoted && e.state != stateUnplaceable {
		return false
	}
	e.state = stateSource
	return true
}

// metadataContainer is the paper's virtual namespace module. It follows
// an ephemeral storage model: populated at the start of the training
// job, updated during runtime, and discarded with the process.
type metadataContainer struct {
	mu      sync.RWMutex
	entries map[string]*fileEntry
	ready   bool
	levels  int
}

func newMetadataContainer(levels int) *metadataContainer {
	return &metadataContainer{entries: make(map[string]*fileEntry), levels: levels}
}

// populate builds the namespace from a source-level listing.
func (c *metadataContainer) populate(infos []storage.FileInfo, sourceLevel int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, fi := range infos {
		c.entries[fi.Name] = &fileEntry{name: fi.Name, size: fi.Size, level: sourceLevel}
	}
	c.ready = true
}

func (c *metadataContainer) initialized() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ready
}

func (c *metadataContainer) get(name string) (*fileEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	return e, ok
}

func (c *metadataContainer) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// list returns the namespace sorted by name.
func (c *metadataContainer) list() []storage.FileInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]storage.FileInfo, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, storage.FileInfo{Name: e.name, Size: e.size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// resetForReplacement makes every demoted or unplaceable entry
// re-placeable after a tier recovery; it returns how many entries
// changed.
func (c *metadataContainer) resetForReplacement() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, e := range c.entries {
		if e.makeReplaceable() {
			n++
		}
	}
	return n
}

// sortedEntries returns entries in name order (pre-staging order).
func (c *metadataContainer) sortedEntries() []*fileEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*fileEntry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
