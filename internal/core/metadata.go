package core

import (
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"monarch/internal/storage"
)

// placementState tracks a file's progress through the placement
// pipeline.
type placementState int

const (
	// stateSource: only the PFS copy exists and no placement has been
	// scheduled yet.
	stateSource placementState = iota
	// stateQueued: a placement task is queued or running.
	stateQueued
	// statePlaced: the file lives on an upper tier.
	statePlaced
	// stateUnplaceable: every candidate tier was full (or a placement
	// failed permanently); the file is served from the PFS until a tier
	// recovery makes it re-placeable (§III-A: placement stops once the
	// local tiers run out of space).
	stateUnplaceable
	// stateDemoted: the file was placed on a tier whose circuit breaker
	// tripped; it is served from the source until the tier recovers and
	// resetForReplacement sends it back through the placement pipeline.
	stateDemoted
)

// fileEntry is the paper's "file info": size, name and current storage
// tier, guarded for concurrent access from the framework's reader
// threads and the placement pool. Beyond the paper it carries a
// chunk-presence bitmap while a chunked placement is in flight, so the
// read path can serve already-copied ranges from the upper tier
// mid-copy.
//
// Bitmap invariants:
//   - chunkBits is non-nil exactly between beginChunks and
//     markPlaced/clearChunks; outside that window reads never consult it;
//   - bit i covers byte range [i*chunkSize, min((i+1)*chunkSize, size));
//   - bits only go 0→1 while armed (markChunk), so a range observed
//     covered stays covered until the whole placement resolves;
//   - chunksLeft is the count of zero bits; it reaches 0 exactly when
//     every chunk landed, at which point the owner calls markPlaced.
type fileEntry struct {
	name string
	size int64

	// snap is a packed (state, level, chunk-armed) snapshot republished
	// under mu after every transition, so the read path answers "which
	// tier serves this file right now?" with one atomic load instead of
	// the entry mutex. Layout: bits 0–7 state, 8–31 level, 32 armed.
	// The mutex stays the sole writer: transitions are still serialized
	// and the snapshot is always internally consistent.
	snap atomic.Uint64

	mu       sync.Mutex
	level    int
	state    placementState
	retries  int       // placement attempts beyond the first (observability)
	queuedAt time.Time // when the current placement was enqueued (latency spans)

	// Chunked-placement residency (armed only while a chunked copy is
	// in flight; nil in whole-file mode).
	chunkSize  int64
	chunkLevel int
	chunkBits  []uint64
	chunksLeft int
}

const snapArmed = 1 << 32

// publish refreshes the packed snapshot; callers hold e.mu (or hold the
// entry exclusively, as populate does before linking it into a shard).
func (e *fileEntry) publish() {
	s := uint64(e.state)&0xff | uint64(e.level)&0xffffff<<8
	if e.chunkBits != nil {
		s |= snapArmed
	}
	e.snap.Store(s)
}

// snapshot returns the packed (state, level, armed) triple with one
// atomic load.
func (e *fileEntry) snapshot() (placementState, int, bool) {
	s := e.snap.Load()
	return placementState(s & 0xff), int(s >> 8 & 0xffffff), s&snapArmed != 0
}

func (e *fileEntry) currentLevel() int {
	_, lvl, _ := e.snapshot()
	return lvl
}

func (e *fileEntry) currentState() placementState {
	st, _, _ := e.snapshot()
	return st
}

// tryQueue transitions Source→Queued exactly once; it reports whether
// the caller won the race and should schedule the placement.
func (e *fileEntry) tryQueue() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != stateSource {
		return false
	}
	e.state = stateQueued
	e.queuedAt = time.Now()
	e.publish()
	return true
}

// queuedSince returns when the in-flight placement was enqueued; the
// zero time if none is.
func (e *fileEntry) queuedSince() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queuedAt
}

// markPlaced records a successful placement onto level and disarms any
// chunk bitmap: once placed, the normal tier routing serves the file.
func (e *fileEntry) markPlaced(level int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.level = level
	e.state = statePlaced
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
	e.publish()
}

// chunkCount returns how many chunk-size pieces cover size bytes.
func chunkCount(size, chunk int64) int {
	if size <= 0 || chunk <= 0 {
		return 0
	}
	return int((size + chunk - 1) / chunk)
}

// beginChunks arms the chunk-presence bitmap for a chunked copy into
// level, discarding any prior partial state (a retried placement starts
// over).
func (e *fileEntry) beginChunks(level int, chunk int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := chunkCount(e.size, chunk)
	e.chunkSize = chunk
	e.chunkLevel = level
	e.chunkBits = make([]uint64, (n+63)/64)
	e.chunksLeft = n
	e.publish()
}

// markChunk records chunk i resident; it reports whether i was the last
// missing chunk, i.e. the copy is now complete. Marking an unarmed,
// out-of-range, or already-set chunk is a no-op — the range check must
// use the real chunk count, not the bitmap's word capacity, or phantom
// indices in the last word's slack would drive chunksLeft negative and
// complete the placement early.
func (e *fileEntry) markChunk(i int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.chunkBits == nil || i < 0 || i >= chunkCount(e.size, e.chunkSize) {
		return false
	}
	w, b := i/64, uint(i%64)
	if e.chunkBits[w]&(1<<b) != 0 {
		return false
	}
	e.chunkBits[w] |= 1 << b
	e.chunksLeft--
	return e.chunksLeft == 0
}

// clearChunks discards partial-copy state after a failed or cancelled
// chunked placement; the entry falls back to source-only residency.
func (e *fileEntry) clearChunks() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
	e.publish()
}

// chunksCover reports whether every chunk overlapping [off, off+n)
// (clamped to the file size) is already resident on the tier a chunked
// placement is copying into, returning that level. It only answers
// while the placement is in flight (stateQueued with an armed bitmap);
// empty ranges are routed to the source like today.
func (e *fileEntry) chunksCover(off, n int64) (int, bool) {
	// Lock-free pre-gate: outside the beginChunks→markPlaced/clearChunks
	// window (the common case — placed or plain source files) the armed
	// bit is clear and reads never pay the entry mutex here.
	if st, _, armed := e.snapshot(); !armed || st != stateQueued {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.chunkBits == nil || e.chunkSize <= 0 || e.state != stateQueued {
		return 0, false
	}
	if off < 0 || off >= e.size {
		return 0, false
	}
	end := off + n
	if end > e.size {
		end = e.size
	}
	if end <= off {
		return 0, false
	}
	for i := off / e.chunkSize; i*e.chunkSize < end; i++ {
		w, b := i/64, uint(i%64)
		if e.chunkBits[w]&(1<<b) == 0 {
			return 0, false
		}
	}
	return e.chunkLevel, true
}

// markUnplaceable records that no tier had space.
func (e *fileEntry) markUnplaceable() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state = stateUnplaceable
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
	e.publish()
}

// markEvicted sends the file back to the source level so a later access
// may re-place it, discarding any chunk state so the presence bitmap
// never outlives the entry's residency. Prefer markEvictedFrom on the
// live eviction path; this unconditional form remains for the namespace
// fuzz tapes.
func (e *fileEntry) markEvicted(sourceLevel int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.level = sourceLevel
	e.state = stateSource
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
	e.publish()
}

// markEvictedFrom atomically re-points a file placed on from at the
// source level, reporting whether the entry actually moved. It refuses
// any entry not currently placed on from — in particular queued entries
// with an in-flight (possibly chunk-armed) placement, which is what
// pins them against eviction — so a victim chosen from a stale policy
// view is skipped instead of corrupted. The evicted entry lands in
// stateSource: always immediately re-placeable on its next access.
func (e *fileEntry) markEvictedFrom(from, sourceLevel int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != statePlaced || e.level != from {
		return false
	}
	e.level = sourceLevel
	e.state = stateSource
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
	e.publish()
	return true
}

// markDemoted re-points a file placed on a tripped tier at the source
// level; it reports whether the entry actually moved (false when a
// concurrent demotion or placement already changed it).
func (e *fileEntry) markDemoted(from, sourceLevel int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != statePlaced || e.level != from {
		return false
	}
	e.level = sourceLevel
	e.state = stateDemoted
	e.publish()
	return true
}

// cancelQueued returns a queued entry to Source after a cancelled
// placement, so a later access may schedule it again; a cancelled
// placement is not a placement failure.
func (e *fileEntry) cancelQueued() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == stateQueued {
		e.state = stateSource
	}
	e.chunkBits = nil
	e.chunkSize = 0
	e.chunksLeft = 0
	e.publish()
}

// noteRetry counts one placement retry on the entry.
func (e *fileEntry) noteRetry() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retries++
}

// makeReplaceable sends a demoted or unplaceable entry back to Source
// so its next access re-enters the placement pipeline; it reports
// whether the entry changed.
func (e *fileEntry) makeReplaceable() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != stateDemoted && e.state != stateUnplaceable {
		return false
	}
	e.state = stateSource
	e.publish()
	return true
}

// metaShards is the lock-stripe width of the namespace. Power of two
// so shard selection is a mask; 64 stripes keep the collision odds of
// any two concurrently-read files on one lock at ~1.5%.
const metaShards = 64

// metaShard is one lock stripe: a plain map under its own RWMutex.
// Padding keeps neighbouring shards' locks off one cache line, so
// reader fan-in on shard i doesn't false-share with shard i+1.
type metaShard struct {
	mu      sync.RWMutex
	entries map[string]*fileEntry
	_       [40]byte
}

// metadataContainer is the paper's virtual namespace module. It follows
// an ephemeral storage model: populated at the start of the training
// job, updated during runtime, and discarded with the process.
//
// The namespace is sharded into metaShards lock stripes keyed by a
// maphash of the file name: a read locks only its own stripe, so
// goroutine fan-in on distinct files no longer serializes on one
// RWMutex cache line. Entries never move between stripes (the
// namespace is append-only after Init), and whole-namespace walks
// (list, resetForReplacement) take the stripes in index order.
type metadataContainer struct {
	seed   maphash.Seed
	shards [metaShards]metaShard
	ready  atomic.Bool
	count  atomic.Int64
	levels int
}

func newMetadataContainer(levels int) *metadataContainer {
	c := &metadataContainer{seed: maphash.MakeSeed(), levels: levels}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*fileEntry)
	}
	return c
}

func (c *metadataContainer) shard(name string) *metaShard {
	return &c.shards[maphash.String(c.seed, name)&(metaShards-1)]
}

// populate builds the namespace from a source-level listing.
func (c *metadataContainer) populate(infos []storage.FileInfo, sourceLevel int) {
	for _, fi := range infos {
		e := &fileEntry{name: fi.Name, size: fi.Size, level: sourceLevel}
		e.publish()
		s := c.shard(fi.Name)
		s.mu.Lock()
		if _, exists := s.entries[fi.Name]; !exists {
			c.count.Add(1)
		}
		s.entries[fi.Name] = e
		s.mu.Unlock()
	}
	c.ready.Store(true)
}

// insert adds one entry at runtime (the write path registering a
// created file). It fails with storage.ErrExist when the name is
// taken: writable names must not shadow dataset files.
func (c *metadataContainer) insert(name string, size int64, level int, state placementState) (*fileEntry, error) {
	e := &fileEntry{name: name, size: size, level: level, state: state}
	e.publish()
	s := c.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[name]; exists {
		return nil, storage.ErrExist
	}
	s.entries[name] = e
	c.count.Add(1)
	return e, nil
}

// remove drops an entry from the namespace (the write path's Remove);
// it reports whether the name was present.
func (c *metadataContainer) remove(name string) bool {
	s := c.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[name]; !exists {
		return false
	}
	delete(s.entries, name)
	c.count.Add(-1)
	return true
}

func (c *metadataContainer) initialized() bool {
	return c.ready.Load()
}

func (c *metadataContainer) get(name string) (*fileEntry, bool) {
	s := c.shard(name)
	s.mu.RLock()
	e, ok := s.entries[name]
	s.mu.RUnlock()
	return e, ok
}

func (c *metadataContainer) len() int {
	return int(c.count.Load())
}

// list returns the namespace sorted by name.
func (c *metadataContainer) list() []storage.FileInfo {
	out := make([]storage.FileInfo, 0, c.len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for _, e := range s.entries {
			out = append(out, storage.FileInfo{Name: e.name, Size: e.size})
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// resetForReplacement makes every demoted or unplaceable entry
// re-placeable after a tier recovery; it returns how many entries
// changed.
func (c *metadataContainer) resetForReplacement() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for _, e := range s.entries {
			if e.makeReplaceable() {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// sortedEntries returns entries in name order (pre-staging order).
func (c *metadataContainer) sortedEntries() []*fileEntry {
	out := make([]*fileEntry, 0, c.len())
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for _, e := range s.entries {
			out = append(out, e)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
