package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"monarch/internal/pool"
	"monarch/internal/storage"
	"monarch/internal/trace/analyze"
)

// TestHeatDecay exercises the online decay math: reads add heat, epochs
// halve it (at the default one-epoch half-life), and untouched files
// stay cold.
func TestHeatDecay(t *testing.T) {
	p := NewHeatPolicy(HeatConfig{})
	for i := 0; i < 4; i++ {
		p.OnAccess("hot")
	}
	p.OnAccess("cold")
	if got := p.Heat("hot"); got != 4 {
		t.Fatalf("heat(hot) = %v, want 4", got)
	}
	p.AdvanceEpoch()
	if got := p.Heat("hot"); got != 2 {
		t.Fatalf("heat(hot) after one epoch = %v, want 2", got)
	}
	p.AdvanceEpoch()
	if got, want := p.Heat("hot"), 1.0; got != want {
		t.Fatalf("heat(hot) after two epochs = %v, want %v", got, want)
	}
	if got := p.Heat("cold"); got != 0.25 {
		t.Fatalf("heat(cold) = %v, want 0.25", got)
	}
	if got := p.Heat("never"); got != 0 {
		t.Fatalf("heat(never) = %v, want 0", got)
	}
}

// TestHeatMatchesAnalyzer locks the online engine to the analyzer's
// offline HeatScore: replaying a per-epoch read heatmap through
// OnAccess/AdvanceEpoch must land on exactly the score the analyzer
// derives from the same heatmap.
func TestHeatMatchesAnalyzer(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		halfLife := []float64{1, 2, 0.5}[trial%3]
		p := NewHeatPolicy(HeatConfig{HalfLifeEpochs: halfLife})
		epochs := 1 + rng.Intn(6)
		perEpoch := make([]int64, epochs)
		for i := range perEpoch {
			perEpoch[i] = int64(rng.Intn(5))
		}
		for i, reads := range perEpoch {
			if i > 0 {
				p.AdvanceEpoch()
			}
			for r := int64(0); r < reads; r++ {
				p.OnAccess("f")
			}
		}
		want := analyze.HeatScore(perEpoch, halfLife)
		if got := p.Heat("f"); got != want {
			t.Fatalf("trial %d (halfLife=%v, %v): online heat %v != analyzer %v",
				trial, halfLife, perEpoch, got, want)
		}
	}
}

// TestHeatVictimSelection checks both Victim (coldest resident) and the
// admission-aware VictimFor: a hot candidate displaces the coldest
// file, a lukewarm one is refused by the margin, and the candidate is
// never its own victim.
func TestHeatVictimSelection(t *testing.T) {
	p := NewHeatPolicy(HeatConfig{AdmitMargin: 2})
	for name, reads := range map[string]int{"a": 1, "b": 3, "c": 5, "hot": 6, "warm": 2} {
		for i := 0; i < reads; i++ {
			p.OnAccess(name)
		}
		if name == "a" || name == "b" || name == "c" {
			p.OnPlaced(name, 0)
		}
	}
	// Contests compare epoch-boundary heat: reads of the epoch in
	// progress count for nothing, so even a candidate with six fresh
	// reads is refused until an epoch completes. Read order within one
	// epoch must never create eviction pressure.
	if v, ok := p.VictimFor("hot", 0); ok {
		t.Fatalf("VictimFor(hot) before any epoch boundary = %q,%v, want refusal", v, ok)
	}

	p.AdvanceEpoch()
	// Boundary heats (half-life 1): a=0.5, b=1.5, c=2.5, hot=3, warm=1.
	if v, ok := p.Victim(0); !ok || v != "a" {
		t.Fatalf("Victim(0) = %q,%v, want a,true", v, ok)
	}
	if v, ok := p.Victim(1); ok {
		t.Fatalf("Victim(1) = %q,%v on empty level, want miss", v, ok)
	}
	// heat(hot)=3 > heat(a)=0.5 * margin 2 → admitted against a.
	if v, ok := p.VictimFor("hot", 0); !ok || v != "a" {
		t.Fatalf("VictimFor(hot) = %q,%v, want a,true", v, ok)
	}
	// heat(warm)=1 fails the 2x margin against a's 0.5.
	if v, ok := p.VictimFor("warm", 0); ok {
		t.Fatalf("VictimFor(warm) = %q,%v, want refusal", v, ok)
	}
	// The coldest resident asking for room must not evict itself; its
	// only options are the others, which are all hotter.
	if v, ok := p.VictimFor("a", 0); ok {
		t.Fatalf("VictimFor(a) = %q,%v, want refusal (never self)", v, ok)
	}

	// After eviction the file leaves the books but keeps its history.
	p.OnEvicted("a")
	if v, ok := p.Victim(0); !ok || v != "b" {
		t.Fatalf("Victim(0) after evicting a = %q,%v, want b,true", v, ok)
	}
	if got := p.Heat("a"); got != 0.5 {
		t.Fatalf("heat(a) after eviction = %v, want history kept (0.5)", got)
	}
}

// TestTenantTableValidation covers Config.Tenants rejection paths.
func TestTenantTableValidation(t *testing.T) {
	base := func() Config {
		return Config{JobOf: JobFromPath}
	}
	for _, tc := range []struct {
		name    string
		tenants []TenantConfig
		wantErr bool
	}{
		{"ok", []TenantConfig{{Job: "a", Share: 0.5}, {Job: "b", Share: 0.5}}, false},
		{"negative share", []TenantConfig{{Job: "a", Share: -0.1}}, true},
		{"share above one", []TenantConfig{{Job: "a", Share: 1.5}}, true},
		{"sum above one", []TenantConfig{{Job: "a", Share: 0.7}, {Job: "b", Share: 0.7}}, true},
		{"duplicate job", []TenantConfig{{Job: "a", Share: 0.3}, {Job: "a", Share: 0.3}}, true},
	} {
		cfg := base()
		cfg.Tenants = tc.tenants
		_, err := newTenantTable(cfg, []int64{1000, 0})
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
	// Tenancy off: no JobOf, no Tenants.
	tt, err := newTenantTable(Config{}, []int64{1000, 0})
	if err != nil || tt != nil {
		t.Fatalf("tenancy-off table = %v, %v; want nil, nil", tt, err)
	}
	// Nil table is safe everywhere.
	var nilT *tenantTable
	nilT.charge("a", 0, 10)
	nilT.release("a", 0, 10)
	if nilT.job("a/x") != "" || nilT.usedBytes("a", 0) != 0 || nilT.overShare("a", 0) {
		t.Fatal("nil tenant table must act as a no-op")
	}
}

// TestJobFromPath pins the default namespace attribution.
func TestJobFromPath(t *testing.T) {
	for name, want := range map[string]string{
		"jobA/shard-0003": "jobA",
		"jobA/sub/x":      "jobA",
		"noslash":         "",
		"/lead":           "",
	} {
		if got := JobFromPath(name); got != want {
			t.Errorf("JobFromPath(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestQuotaAccountingNeverNegative drives random placement / eviction /
// demotion transition sequences through real fileEntry state machines
// with the tenant ledger attached, mirroring them in a plain model.
// After every step the ledger must match the model exactly and never go
// negative — the "quota accounting never negative" invariant, enforced
// structurally by charging only on entering statePlaced and releasing
// only on the guarded transitions out of it.
func TestQuotaAccountingNeverNegative(t *testing.T) {
	const (
		levels = 3
		nfiles = 12
	)
	jobs := []string{"jobA", "jobB", "jobC"}
	f := func(tape []byte) bool {
		tt, err := newTenantTable(Config{
			JobOf:   JobFromPath,
			Tenants: []TenantConfig{{Job: "jobA", Share: 0.4}, {Job: "jobB", Share: 0.4}},
		}, []int64{1 << 20, 1 << 20, 0})
		if err != nil {
			t.Fatal(err)
		}
		entries := make([]*fileEntry, nfiles)
		for i := range entries {
			entries[i] = &fileEntry{
				name:  fmt.Sprintf("%s/f%02d", jobs[i%len(jobs)], i),
				size:  int64(100 + i),
				level: levels - 1,
			}
			entries[i].publish()
		}
		model := map[string][]int64{} // job → per-level bytes
		bump := func(job string, lvl int, d int64) {
			r := model[job]
			if r == nil {
				r = make([]int64, levels)
				model[job] = r
			}
			r[lvl] += d
		}
		for pc := 0; pc+1 < len(tape); pc += 2 {
			op, arg := tape[pc], tape[pc+1]
			e := entries[int(arg)%nfiles]
			job := tt.job(e.name)
			lvl := int(op) / 3 % (levels - 1)
			switch op % 3 {
			case 0: // placement: queue (if possible) then land on lvl
				if e.tryQueue() {
					e.markPlaced(lvl)
					tt.charge(job, lvl, e.size)
					bump(job, lvl, e.size)
				}
			case 1: // eviction off lvl — release only when the CAS fires
				if e.markEvictedFrom(lvl, levels-1) {
					tt.release(job, lvl, e.size)
					bump(job, lvl, -e.size)
				}
			case 2: // breaker demotion off lvl — same pairing rule
				if e.markDemoted(lvl, levels-1) {
					tt.release(job, lvl, e.size)
					bump(job, lvl, -e.size)
				}
			}
			for _, j := range append(jobs, "") {
				for l := 0; l < levels; l++ {
					got := tt.usedBytes(j, l)
					if got < 0 {
						t.Errorf("used(%s,%d) = %d < 0", j, l, got)
						return false
					}
					want := int64(0)
					if r := model[j]; r != nil {
						want = r[l]
					}
					if got != want {
						t.Errorf("used(%s,%d) = %d, model %d", j, l, got, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuotaReclaimUnderPressure is the work-conserving borrowing story
// end to end: jobB borrows the whole tier while jobA is idle (free
// space is never wasted), then jobA's placements reclaim space from the
// borrower up to jobA's guaranteed share — without jobA's cold files
// needing any heat advantage over jobB's.
func TestQuotaReclaimUnderPressure(t *testing.T) {
	ctx := context.Background()
	const fileSize = 100
	pfs := storage.NewMemFS("lustre", 0)
	var names []string
	for j := 0; j < 8; j++ {
		for _, job := range []string{"jobA", "jobB"} {
			name := fmt.Sprintf("%s/f%d", job, j)
			if err := pfs.WriteFile(ctx, name, make([]byte, fileSize)); err != nil {
				t.Fatal(err)
			}
			names = append(names, name)
		}
	}
	pfs.SetReadOnly(true)
	ssd := storage.NewMemFS("ssd", 8*fileSize) // room for 8 of the 16 files
	m, err := New(Config{
		Levels:        []storage.Backend{ssd, pfs},
		Pool:          pool.NewGoPool(2),
		FullFileFetch: true,
		Eviction:      NewHeatPolicy(HeatConfig{}),
		JobOf:         JobFromPath,
		Tenants:       []TenantConfig{{Job: "jobA", Share: 0.5}, {Job: "jobB", Share: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}

	// jobB reads everything it has, twice: borrows the whole tier.
	buf := make([]byte, fileSize)
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < 8; j++ {
			if _, err := m.ReadAt(ctx, fmt.Sprintf("jobB/f%d", j), buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		waitIdleM(t, m)
	}
	if used := m.tenants.usedBytes("jobB", 0); used != 8*fileSize {
		t.Fatalf("jobB borrowed %d bytes, want the whole tier (%d)", used, 8*fileSize)
	}

	// jobA shows up with cold, read-once files. Its guaranteed share
	// lets each placement reclaim from the over-share borrower even
	// though jobB's files are hotter.
	for j := 0; j < 4; j++ {
		if _, err := m.ReadAt(ctx, fmt.Sprintf("jobA/f%d", j), buf, 0); err != nil {
			t.Fatal(err)
		}
		waitIdleM(t, m)
	}
	usedA := m.tenants.usedBytes("jobA", 0)
	usedB := m.tenants.usedBytes("jobB", 0)
	if usedA != 4*fileSize {
		t.Fatalf("jobA reclaimed %d bytes, want %d", usedA, 4*fileSize)
	}
	if usedB != 4*fileSize {
		t.Fatalf("jobB kept %d bytes, want shrunk to its share (%d)", usedB, 4*fileSize)
	}
	st := m.Stats()
	if st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4 quota reclaims", st.Evictions)
	}
	if st.Jobs["jobB"].Evictions != 4 || st.Jobs["jobA"].Evictions != 0 {
		t.Fatalf("per-job evictions = %+v, want all 4 charged to jobB", st.Jobs)
	}
	// Once jobA is at its share, further jobA placements must NOT keep
	// eating jobB's guaranteed half without a heat win.
	for j := 4; j < 8; j++ {
		if _, err := m.ReadAt(ctx, fmt.Sprintf("jobA/f%d", j), buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	waitIdleM(t, m)
	if usedB := m.tenants.usedBytes("jobB", 0); usedB != 4*fileSize {
		t.Fatalf("jobB squeezed to %d bytes below its guaranteed share", usedB)
	}
	// The ledger always matches ground truth: sum of placed entries.
	assertLedgerExact(t, m)
}

// assertLedgerExact recomputes every job's per-level usage from the
// metadata container and compares it to the quota ledger.
func assertLedgerExact(t *testing.T, m *Monarch) {
	t.Helper()
	want := map[string][]int64{}
	for _, e := range m.meta.sortedEntries() {
		st, lvl, _ := e.snapshot()
		if st != statePlaced {
			continue
		}
		job := m.tenants.job(e.name)
		r := want[job]
		if r == nil {
			r = make([]int64, len(m.levels))
			want[job] = r
		}
		r[lvl] += e.size
	}
	m.tenants.mu.Lock()
	jobs := make([]string, 0, len(m.tenants.used))
	for j := range m.tenants.used {
		jobs = append(jobs, j)
	}
	m.tenants.mu.Unlock()
	for j := range want {
		jobs = append(jobs, j)
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j] {
			continue
		}
		seen[j] = true
		for lvl := range m.levels {
			got := m.tenants.usedBytes(j, lvl)
			if got < 0 {
				t.Errorf("ledger used(%s,%d) = %d < 0", j, lvl, got)
			}
			var w int64
			if r := want[j]; r != nil {
				w = r[lvl]
			}
			if got != w {
				t.Errorf("ledger used(%s,%d) = %d, placed entries sum to %d", j, lvl, got, w)
			}
		}
	}
}

// TestHeatPromotion: a file that was unplaceable (tier full of
// then-hotter data) is promoted back into placement once its heat
// overtakes a resident's by the admission margin.
func TestHeatPromotion(t *testing.T) {
	ctx := context.Background()
	const fileSize = 100
	pfs := storage.NewMemFS("lustre", 0)
	for _, name := range []string{"resident", "latecomer"} {
		if err := pfs.WriteFile(ctx, name, make([]byte, fileSize)); err != nil {
			t.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	m, err := New(Config{
		Levels:        []storage.Backend{storage.NewMemFS("ssd", fileSize), pfs}, // one file fits
		Pool:          pool.NewGoPool(1),
		FullFileFetch: true,
		Eviction:      NewHeatPolicy(HeatConfig{AdmitMargin: 1.5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, fileSize)
	read := func(name string) {
		t.Helper()
		if _, err := m.ReadAt(ctx, name, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	read("resident")
	waitIdleM(t, m)
	read("latecomer") // tier full; latecomer heat 1 vs resident 1: refused
	waitIdleM(t, m)
	if lvl, _ := m.LevelOf("latecomer"); lvl != 1 {
		t.Fatalf("latecomer at level %d, want source (refused admission)", lvl)
	}
	if e, _ := m.meta.get("latecomer"); e.currentState() != stateUnplaceable {
		t.Fatalf("latecomer state = %v, want unplaceable", e.currentState())
	}

	// An epoch passes; the resident cools while the latecomer gets hot.
	m.MarkEpoch(1)
	read("latecomer")
	read("latecomer")
	m.MarkEpoch(2)
	read("latecomer") // promotion check fires here (rate-limited per epoch)
	waitIdleM(t, m)
	if lvl, _ := m.LevelOf("latecomer"); lvl != 0 {
		t.Fatalf("latecomer at level %d after heating up, want promoted to 0", lvl)
	}
	if lvl, _ := m.LevelOf("resident"); lvl != 1 {
		t.Fatalf("resident at level %d, want evicted back to source", lvl)
	}
	st := m.Stats()
	if st.Promotions == 0 || st.Evictions == 0 {
		t.Fatalf("promotions=%d evictions=%d, want both > 0", st.Promotions, st.Evictions)
	}
}

// TestHeatNoChurnUnderUniformAccess is the paper's §III-A stance as a
// degenerate case of the heat engine: one job reading every file once
// per epoch gives every file equal heat, nothing clears the admission
// margin, and the engine performs zero evictions — unlike LRU, which
// TestEvictionCausesThrashing shows churning on the same workload.
func TestHeatNoChurnUnderUniformAccess(t *testing.T) {
	ctx := context.Background()
	const (
		nfiles   = 10
		fileSize = 100
	)
	pfs := storage.NewMemFS("lustre", 0)
	for i := 0; i < nfiles; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("f%02d", i), make([]byte, fileSize)); err != nil {
			t.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	m, err := New(Config{
		Levels:        []storage.Backend{storage.NewMemFS("ssd", 5*fileSize), pfs},
		Pool:          pool.NewGoPool(2),
		FullFileFetch: true,
		Eviction:      NewHeatPolicy(HeatConfig{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, fileSize)
	for epoch := 1; epoch <= 3; epoch++ {
		for i := 0; i < nfiles; i++ {
			if _, err := m.ReadAt(ctx, fmt.Sprintf("f%02d", i), buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		waitIdleM(t, m)
		m.MarkEpoch(epoch)
	}
	if st := m.Stats(); st.Evictions != 0 {
		t.Fatalf("heat policy evicted %d times under uniform access, want 0 (no churn)", st.Evictions)
	}
}
