package core

import (
	"fmt"
	"strconv"

	"monarch/internal/trace"
)

// startTrace opens the access-trace recorder (Config.TracePath) and
// registers its accounting in the metrics registry. Called from New
// before the span hook is assembled.
func (m *Monarch) startTrace() error {
	levels := make([]trace.Level, len(m.levels))
	for i, d := range m.levels {
		levels[i] = trace.Level{Name: d.backend.Name(), Capacity: d.backend.Capacity()}
	}
	rec, err := trace.New(trace.Config{
		Path:      m.cfg.TracePath,
		Sample:    m.cfg.TraceSample,
		Now:       m.cfg.TraceClock,
		Levels:    levels,
		Source:    m.source.level,
		ChunkSize: m.cfg.ChunkSize,
		Meta:      m.cfg.TraceMeta,
	})
	if err != nil {
		return fmt.Errorf("monarch: trace: %w", err)
	}
	m.tracer = rec
	rec.Instrument(m.inst.reg)
	return nil
}

// closeTrace seals the trace: final counters become the trailer
// summary, the ring drains, and the file closes. Idempotent; a sink
// failure surfaces through the cleanup error funnel rather than
// failing Close.
func (m *Monarch) closeTrace() {
	if m.tracer == nil {
		return
	}
	m.traceOnce.Do(func() {
		m.tracer.AddSummary(m.traceSummary())
		if err := m.tracer.Close(); err != nil {
			m.inst.errCleanup.Inc()
			m.event(Event{Kind: EventOpError, File: m.cfg.TracePath, Level: -1, Err: err})
		}
	})
}

// traceSummary flattens Stats into the trailer's counter map — the
// ground truth a faithful replay must reproduce.
func (m *Monarch) traceSummary() map[string]int64 {
	s := m.Stats()
	out := map[string]int64{
		"placements":        s.Placements,
		"placed_bytes":      s.PlacedBytes,
		"placement_skips":   s.PlacementSkips,
		"placement_errors":  s.PlacementErrors,
		"full_read_reuses":  s.FullReadReuses,
		"chunk_placements":  s.ChunkPlacements,
		"partial_hits":      s.PartialHits,
		"partial_hit_bytes": s.PartialHitBytes,
		"fallbacks":         s.Fallbacks,
		"evictions":         s.Evictions,
		"demotions":         s.Demotions,
	}
	if m.cfg.Peer.enabled() {
		// Only with peer routing on: replays of single-node traces
		// compare trailer keys and would see spurious zero-valued ones.
		out["peer_hits"] = s.PeerHits
		out["peer_hit_bytes"] = s.PeerHitBytes
		out["peer_misses"] = s.PeerMisses
		out["peer_hedges"] = s.PeerHedges
	}
	if m.cfg.Write.Enabled {
		// Gated like the peer keys: read-only traces keep their trailer
		// shape.
		out["writes"] = s.Writes
		out["write_backs"] = s.WriteBacks
		out["written_bytes"] = s.WrittenBytes
		out["flushes"] = s.Flushes
		out["removes"] = s.Removes
	}
	for i := range s.ReadsServed {
		out["reads_tier_"+strconv.Itoa(i)] = s.ReadsServed[i]
		out["bytes_tier_"+strconv.Itoa(i)] = s.BytesServed[i]
	}
	return out
}

// MarkEpoch tells the instance that epoch n (1-based) finished: the
// access trace records the boundary (a no-op without Config.TracePath)
// and an epoch-aware eviction policy advances its heat-decay clock —
// the online counterpart of the analyzer's per-epoch heatmap cut
// points. The training loop should call it once per epoch.
func (m *Monarch) MarkEpoch(n int) {
	m.tracer.MarkEpoch(n)
	if ea, ok := m.cfg.Eviction.(epochAdvancer); ok {
		ea.AdvanceEpoch()
	}
}

// MarkTraceEpoch is the historical name of MarkEpoch, kept for existing
// training loops; it forwards unchanged.
func (m *Monarch) MarkTraceEpoch(n int) { m.MarkEpoch(n) }

// Tracer exposes the access-trace recorder (nil without
// Config.TracePath), so harnesses can merge their own counters into
// the trailer — the experiments record the measured PFS data-op count
// for the analyzer's cross-check.
func (m *Monarch) Tracer() *trace.Recorder { return m.tracer }

// traceState forwards tier-state events into the recorder; called
// from the event funnel so the trace and monarch_events_total can
// never disagree.
func (m *Monarch) traceState(e Event) {
	if m.tracer == nil {
		return
	}
	var c trace.Class
	switch e.Kind {
	case EventDemoted:
		c = trace.ClassDemoted
	case EventEvicted:
		c = trace.ClassEvicted
	case EventTierDown:
		c = trace.ClassTierDown
	case EventTierUp:
		c = trace.ClassTierUp
	default:
		return
	}
	m.tracer.State(c, e.File, e.Level, e.Bytes)
}
