package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// chunkContent generates deterministic, offset-sensitive file content so
// byte-identity checks catch misplaced chunks, not just missing ones.
func chunkContent(i, size int) []byte {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte((i+1)*37 + j*131)
	}
	return b
}

// newChunkStack builds a 2-level hierarchy over an arbitrary tier-0
// backend with chunked placement on (ChunkSize 256 unless edited) and
// nfiles of fileSize bytes named c000, c001, ... on the PFS.
func newChunkStack(t *testing.T, tier0 storage.Backend, workers, nfiles, fileSize int, edit func(*Config)) *Monarch {
	t.Helper()
	ctx := context.Background()
	pfs := storage.NewMemFS("lustre", 0)
	for i := 0; i < nfiles; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("c%03d", i), chunkContent(i, fileSize)); err != nil {
			t.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	cfg := Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          pool.NewGoPool(workers),
		FullFileFetch: true,
		ChunkSize:     256,
	}
	if edit != nil {
		edit(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	return m
}

func waitIdleM(t *testing.T, m *Monarch) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placements did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

// gatedFS lets the first WriteAt through and blocks every later one
// until release is closed, freezing a chunked placement mid-copy.
type gatedFS struct {
	*storage.MemFS
	release chan struct{}
	writes  atomic.Int64
}

func (g *gatedFS) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if g.writes.Add(1) > 1 {
		select {
		case <-g.release:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return g.MemFS.WriteAt(ctx, name, p, off)
}

// TestChunkedMidCopyReadThrough is the tentpole's acceptance test: with
// a chunked placement frozen after its first chunk, a read of the
// already-landed range is served from the upper tier (PartialHits > 0)
// while a range touching a missing chunk still goes to the source.
func TestChunkedMidCopyReadThrough(t *testing.T) {
	g := &gatedFS{MemFS: storage.NewMemFS("ssd", 0), release: make(chan struct{})}
	var once sync.Once
	open := func() { once.Do(func() { close(g.release) }) }
	m := newChunkStack(t, g, 1, 1, 1024, nil) // 4 chunks of 256
	t.Cleanup(open)                           // unblock the worker even if the test fails early
	ctx := context.Background()
	want := chunkContent(0, 1024)

	// A partial first read triggers the chunked placement (a full read
	// would take the §III-B full-content reuse path instead).
	if _, err := m.ReadAt(ctx, "c000", make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	// Wait for chunk 0 to land; the single worker then blocks inside
	// chunk 1's WriteAt, so exactly one chunk is resident.
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().ChunkPlacements == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no chunk landed")
		}
		time.Sleep(time.Millisecond)
	}

	// Covered range: chunk 0 only — must be served from tier 0.
	buf := make([]byte, 256)
	n, err := m.ReadAt(ctx, "c000", buf, 0)
	if err != nil || n != 256 {
		t.Fatalf("mid-copy read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, want[:256]) {
		t.Fatal("mid-copy read returned corrupt bytes")
	}
	st := m.Stats()
	if st.PartialHits != 1 || st.PartialHitBytes != 256 {
		t.Fatalf("partial hits = %d (%d B), want 1 (256 B)", st.PartialHits, st.PartialHitBytes)
	}
	if st.ReadsServed[0] != 1 {
		t.Fatalf("tier-0 reads = %d, want 1", st.ReadsServed[0])
	}

	// Straddling range [128,384) touches the unlanded chunk 1: source.
	buf2 := make([]byte, 256)
	if _, err := m.ReadAt(ctx, "c000", buf2, 128); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2, want[128:384]) {
		t.Fatal("straddling read returned corrupt bytes")
	}
	if st := m.Stats(); st.PartialHits != 1 {
		t.Fatalf("straddling read counted as partial hit (%d)", st.PartialHits)
	}

	// Release the copy; the placement must complete normally.
	open()
	waitIdleM(t, m)
	st = m.Stats()
	if st.Placements != 1 || st.ChunkPlacements != 4 || st.PlacedBytes != 1024 {
		t.Fatalf("final stats: placements=%d chunks=%d bytes=%d",
			st.Placements, st.ChunkPlacements, st.PlacedBytes)
	}
	if lvl, _ := m.LevelOf("c000"); lvl != 0 {
		t.Fatalf("file on level %d after placement", lvl)
	}
	got, err := m.ReadFull(ctx, "c000")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("placed content differs from source (err=%v)", err)
	}
}

// TestChunkedPlacementMatchesSource fans several files out across a
// multi-worker pool and checks the landed copies byte-for-byte.
func TestChunkedPlacementMatchesSource(t *testing.T) {
	tier0 := storage.NewMemFS("ssd", 0)
	const nfiles, fileSize = 5, 1000 // 4 chunks per file (256-byte chunks)
	m := newChunkStack(t, tier0, 4, nfiles, fileSize, nil)
	ctx := context.Background()
	for i := 0; i < nfiles; i++ {
		if _, err := m.ReadAt(ctx, fmt.Sprintf("c%03d", i), make([]byte, 1), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitIdleM(t, m)
	st := m.Stats()
	if st.Placements != nfiles || st.ChunkPlacements != 4*nfiles || st.PlacedBytes != nfiles*fileSize {
		t.Fatalf("stats: placements=%d chunks=%d bytes=%d",
			st.Placements, st.ChunkPlacements, st.PlacedBytes)
	}
	for i := 0; i < nfiles; i++ {
		name := fmt.Sprintf("c%03d", i)
		if lvl, _ := m.LevelOf(name); lvl != 0 {
			t.Fatalf("%s on level %d", name, lvl)
		}
		got, err := tier0.ReadFile(ctx, name)
		if err != nil || !bytes.Equal(got, chunkContent(i, fileSize)) {
			t.Fatalf("%s: placed copy differs from source (err=%v)", name, err)
		}
	}
}

// TestChunkSizeZeroParity runs the same workload with ChunkSize=0 and
// with chunking on: bytes must be identical, and the ChunkSize=0 run
// must be stat-for-stat the paper-faithful whole-file behaviour.
func TestChunkSizeZeroParity(t *testing.T) {
	const nfiles, fileSize = 4, 1000
	workload := func(chunkSize int64) ([]byte, Stats) {
		t.Helper()
		m := newChunkStack(t, storage.NewMemFS("ssd", 0), 4, nfiles, fileSize,
			func(c *Config) { c.ChunkSize = chunkSize })
		ctx := context.Background()
		var out []byte
		small := make([]byte, 7)
		for i := 0; i < nfiles; i++ {
			n, err := m.ReadAt(ctx, fmt.Sprintf("c%03d", i), small, 900)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, small[:n]...)
		}
		waitIdleM(t, m)
		full := make([]byte, fileSize)
		for i := 0; i < nfiles; i++ {
			name := fmt.Sprintf("c%03d", i)
			n, err := m.ReadAt(ctx, name, full, 0)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, full[:n]...)
			if n, err := m.ReadAt(ctx, name, full, fileSize); err != nil || n != 0 {
				t.Fatalf("read at EOF: n=%d err=%v", n, err)
			}
		}
		st := m.Stats()
		st.InFlight = 0
		return out, st
	}

	wholeBytes, whole := workload(0)
	chunkBytes, chunked := workload(256)
	if !bytes.Equal(wholeBytes, chunkBytes) {
		t.Fatal("chunked and whole-file runs returned different bytes")
	}
	if whole.ChunkPlacements != 0 || whole.PartialHits != 0 || whole.PartialHitBytes != 0 {
		t.Fatalf("ChunkSize=0 produced chunk activity: %+v", whole)
	}
	// With the chunk counters factored out, every other counter must
	// match the whole-file run exactly.
	chunked.ChunkPlacements = 0
	if !reflect.DeepEqual(whole, chunked) {
		t.Fatalf("stats diverge:\nwhole-file: %+v\nchunked:    %+v", whole, chunked)
	}
}

// bareBackend hides MemFS's optional interfaces (RangeWriter, Copier) so
// the stack behaves like a tier that only supports whole-file writes.
type bareBackend struct{ storage.Backend }

// TestChunkedFallsBackWithoutRangeWriter checks both fallback routes:
// a tier that does not type-assert to RangeWriter, and an
// instrumentation wrapper that advertises RangeWriter but whose inner
// backend lacks it (errors.ErrUnsupported).
func TestChunkedFallsBackWithoutRangeWriter(t *testing.T) {
	cases := []struct {
		name  string
		tier0 func() storage.Backend
		read  func(ctx context.Context, b storage.Backend, name string) ([]byte, error)
	}{
		{"bare", func() storage.Backend { return bareBackend{storage.NewMemFS("ssd", 0)} },
			func(ctx context.Context, b storage.Backend, name string) ([]byte, error) {
				return b.ReadFile(ctx, name)
			}},
		{"counting-over-bare", func() storage.Backend {
			return storage.NewCounting(bareBackend{storage.NewMemFS("ssd", 0)})
		},
			func(ctx context.Context, b storage.Backend, name string) ([]byte, error) {
				return b.ReadFile(ctx, name)
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tier0 := tc.tier0()
			m := newChunkStack(t, tier0, 4, 2, 1000, nil)
			ctx := context.Background()
			for i := 0; i < 2; i++ {
				if _, err := m.ReadAt(ctx, fmt.Sprintf("c%03d", i), make([]byte, 1), 0); err != nil {
					t.Fatal(err)
				}
			}
			waitIdleM(t, m)
			st := m.Stats()
			if st.Placements != 2 || st.ChunkPlacements != 0 {
				t.Fatalf("stats: placements=%d chunks=%d (want whole-file fallback)",
					st.Placements, st.ChunkPlacements)
			}
			for i := 0; i < 2; i++ {
				name := fmt.Sprintf("c%03d", i)
				got, err := tc.read(ctx, tier0, name)
				if err != nil || !bytes.Equal(got, chunkContent(i, 1000)) {
					t.Fatalf("%s: fallback copy differs from source (err=%v)", name, err)
				}
			}
		})
	}
}

// failFS fails every WriteAt targeting one file; other files write
// normally.
type failFS struct {
	*storage.MemFS
	failName string
}

func (f *failFS) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if name == f.failName {
		return 0, fmt.Errorf("ssd: write %q: injected chunk failure", name)
	}
	return f.MemFS.WriteAt(ctx, name, p, off)
}

// TestChunkFailureDemotesOnlyThatFile: a failed chunk removes the
// partial copy and marks only that file unplaceable — siblings place
// normally and reads of the failed file still come from the source.
func TestChunkFailureDemotesOnlyThatFile(t *testing.T) {
	tier0 := &failFS{MemFS: storage.NewMemFS("ssd", 0), failName: "c000"}
	m := newChunkStack(t, tier0, 2, 2, 1000, nil)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := m.ReadAt(ctx, fmt.Sprintf("c%03d", i), make([]byte, 1), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitIdleM(t, m)
	st := m.Stats()
	if st.PlacementErrors != 1 || st.Placements != 1 {
		t.Fatalf("stats: errors=%d placements=%d", st.PlacementErrors, st.Placements)
	}
	// The partial copy must not survive: the tier would serve torn data.
	if _, err := tier0.MemFS.ReadFile(ctx, "c000"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("partial copy left on tier 0: err=%v", err)
	}
	if lvl, _ := m.LevelOf("c000"); lvl != 1 {
		t.Fatalf("failed file on level %d, want source", lvl)
	}
	got, err := m.ReadFull(ctx, "c000")
	if err != nil || !bytes.Equal(got, chunkContent(0, 1000)) {
		t.Fatalf("failed file unreadable from source: %v", err)
	}
	// The sibling is unaffected.
	if lvl, _ := m.LevelOf("c001"); lvl != 0 {
		t.Fatalf("sibling on level %d, want 0", lvl)
	}
	if got, err := tier0.MemFS.ReadFile(ctx, "c001"); err != nil || !bytes.Equal(got, chunkContent(1, 1000)) {
		t.Fatalf("sibling copy differs from source (err=%v)", err)
	}
}

// flakyFS fails the first WriteAt, then recovers.
type flakyFS struct {
	*storage.MemFS
	failures atomic.Int64
}

func (f *flakyFS) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if f.failures.Add(1) == 1 {
		return 0, fmt.Errorf("ssd: write %q: transient device error", name)
	}
	return f.MemFS.WriteAt(ctx, name, p, off)
}

// TestChunkFailureRetriesTransiently: with Config.Retry set, a
// transient chunk failure re-queues the whole placement instead of
// marking the file unplaceable.
func TestChunkFailureRetriesTransiently(t *testing.T) {
	tier0 := &flakyFS{MemFS: storage.NewMemFS("ssd", 0)}
	m := newChunkStack(t, tier0, 2, 1, 1000, func(c *Config) {
		c.Retry = RetryPolicy{MaxAttempts: 3}
	})
	ctx := context.Background()
	if _, err := m.ReadAt(ctx, "c000", make([]byte, 1), 0); err != nil {
		t.Fatal(err)
	}
	waitIdleM(t, m)
	st := m.Stats()
	if st.Placements != 1 || st.PlacementRetries != 1 || st.PlacementErrors != 0 {
		t.Fatalf("stats: placements=%d retries=%d errors=%d",
			st.Placements, st.PlacementRetries, st.PlacementErrors)
	}
	got, err := tier0.MemFS.ReadFile(ctx, "c000")
	if err != nil || !bytes.Equal(got, chunkContent(0, 1000)) {
		t.Fatalf("retried copy differs from source (err=%v)", err)
	}
}

// cancellingTier cancels a context after its first successful
// whole-file write, simulating a shutdown that lands mid-pre-stage.
type cancellingTier struct {
	*storage.MemFS
	cancel context.CancelFunc
	writes atomic.Int64
}

func (c *cancellingTier) WriteFile(ctx context.Context, name string, data []byte) error {
	err := c.MemFS.WriteFile(ctx, name, data)
	if err == nil && c.writes.Add(1) == 1 {
		c.cancel()
	}
	return err
}

// TestPreStageHonoursCancellation covers the preStage bugfix: the
// namespace walk must check ctx between files, both when the context is
// cancelled up front and when cancellation lands mid-walk.
func TestPreStageHonoursCancellation(t *testing.T) {
	t.Run("cancelled-before", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		m := buildPreStage(t, storage.NewMemFS("ssd", 0), 0)
		if err := m.Init(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("Init = %v, want context.Canceled", err)
		}
		if st := m.Stats(); st.Placements != 0 {
			t.Fatalf("placements = %d after cancelled pre-stage", st.Placements)
		}
	})
	t.Run("cancelled-mid-walk", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		tier0 := &cancellingTier{MemFS: storage.NewMemFS("ssd", 0), cancel: cancel}
		m := buildPreStage(t, tier0, 0)
		if err := m.Init(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("Init = %v, want context.Canceled", err)
		}
		if st := m.Stats(); st.Placements != 1 {
			t.Fatalf("placements = %d, want 1 (walk must stop after the cancel)", st.Placements)
		}
	})
}

// buildPreStage assembles a pre-training-staging stack over tier0 with
// three files, without calling Init.
func buildPreStage(t *testing.T, tier0 storage.Backend, chunkSize int64) *Monarch {
	t.Helper()
	ctx := context.Background()
	pfs := storage.NewMemFS("lustre", 0)
	for i := 0; i < 3; i++ {
		if err := pfs.WriteFile(ctx, fmt.Sprintf("c%03d", i), chunkContent(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	pfs.SetReadOnly(true)
	m, err := New(Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          pool.NewGoPool(2),
		FullFileFetch: true,
		Staging:       StagePreTraining,
		ChunkSize:     chunkSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// TestPreStageStaysWholeFile: pre-training staging must complete
// synchronously, so the chunked fan-out stays off even with ChunkSize
// configured.
func TestPreStageStaysWholeFile(t *testing.T) {
	tier0 := storage.NewMemFS("ssd", 0)
	m := buildPreStage(t, tier0, 256)
	ctx := context.Background()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Placements != 3 || st.ChunkPlacements != 0 {
		t.Fatalf("stats: placements=%d chunks=%d (pre-stage must stay whole-file)",
			st.Placements, st.ChunkPlacements)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("c%03d", i)
		if got, err := tier0.ReadFile(ctx, name); err != nil || !bytes.Equal(got, chunkContent(i, 512)) {
			t.Fatalf("%s: pre-staged copy differs from source (err=%v)", name, err)
		}
	}
}
