package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"monarch/internal/pool"
	"monarch/internal/storage"
)

// fixture builds a 2-level hierarchy (tier0 memfs with quota, PFS memfs
// holding nfiles of fileSize bytes) and a Monarch over them.
type fixture struct {
	tier0 *storage.MemFS
	pfs   *storage.Counting
	m     *Monarch
	p     *pool.GoPool
}

func newFixture(t *testing.T, quota int64, nfiles int, fileSize int, cfgEdit func(*Config)) *fixture {
	t.Helper()
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	for i := 0; i < nfiles; i++ {
		content := bytes.Repeat([]byte{byte(i + 1)}, fileSize)
		if err := pfsRaw.WriteFile(ctx, fmt.Sprintf("f%03d", i), content); err != nil {
			t.Fatal(err)
		}
	}
	pfsRaw.SetReadOnly(true)
	pfs := storage.NewCounting(pfsRaw)
	tier0 := storage.NewMemFS("ssd", quota)
	gp := pool.NewGoPool(4)
	cfg := Config{
		Levels:        []storage.Backend{tier0, pfs},
		Pool:          gp,
		FullFileFetch: true,
	}
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return &fixture{tier0: tier0, pfs: pfs, m: m, p: gp}
}

// waitIdle blocks until background placements settle.
func (f *fixture) waitIdle(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !f.m.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("placements did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNewValidation(t *testing.T) {
	mem := storage.NewMemFS("a", 0)
	gp := pool.NewGoPool(1)
	defer gp.Close()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no levels", Config{Pool: gp}},
		{"one level", Config{Levels: []storage.Backend{mem}, Pool: gp}},
		{"nil backend", Config{Levels: []storage.Backend{mem, nil}, Pool: gp}},
		{"nil pool", Config{Levels: []storage.Backend{mem, mem}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Disabled mode does not need a pool.
	if _, err := New(Config{Levels: []storage.Backend{mem, mem}, Disabled: true}); err != nil {
		t.Errorf("disabled without pool: %v", err)
	}
}

func TestReadBeforeInitFails(t *testing.T) {
	gp := pool.NewGoPool(1)
	defer gp.Close()
	m, err := New(Config{
		Levels: []storage.Backend{storage.NewMemFS("a", 0), storage.NewMemFS("b", 0)},
		Pool:   gp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadAt(context.Background(), "f", make([]byte, 1), 0); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("got %v", err)
	}
}

func TestInitBuildsNamespace(t *testing.T) {
	f := newFixture(t, 0, 5, 100, nil)
	if f.m.NumFiles() != 5 {
		t.Fatalf("namespace has %d files", f.m.NumFiles())
	}
	files := f.m.Files()
	if len(files) != 5 || files[0].Name != "f000" || files[0].Size != 100 {
		t.Fatalf("files = %+v", files)
	}
	fi, err := f.m.Stat("f003")
	if err != nil || fi.Size != 100 {
		t.Fatalf("stat: %+v err=%v", fi, err)
	}
	// Namespace Stat must not touch storage.
	if got := f.pfs.Counts().Ops[storage.OpStat]; got != 0 {
		t.Fatalf("Stat hit the backend %d times", got)
	}
	// Every file starts at the source level.
	lvl, err := f.m.LevelOf("f000")
	if err != nil || lvl != 1 {
		t.Fatalf("level = %d err=%v", lvl, err)
	}
}

func TestInitTwiceRejected(t *testing.T) {
	f := newFixture(t, 0, 1, 10, nil)
	if err := f.m.Init(context.Background()); err == nil {
		t.Fatal("second Init should fail")
	}
}

func TestUnknownFile(t *testing.T) {
	f := newFixture(t, 0, 1, 10, nil)
	if _, err := f.m.ReadAt(context.Background(), "ghost", make([]byte, 1), 0); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.m.Stat("ghost"); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("stat: %v", err)
	}
	if _, err := f.m.LevelOf("ghost"); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("levelof: %v", err)
	}
}

func TestFirstReadServesFromPFSAndPlaces(t *testing.T) {
	f := newFixture(t, 0, 3, 1000, nil)
	ctx := context.Background()
	p := make([]byte, 100)
	n, err := f.m.ReadAt(ctx, "f000", p, 0)
	if err != nil || n != 100 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if p[0] != 1 {
		t.Fatalf("wrong content: %d", p[0])
	}
	f.waitIdle(t)
	lvl, _ := f.m.LevelOf("f000")
	if lvl != 0 {
		t.Fatalf("file not promoted: level %d", lvl)
	}
	// Full file (not just the 100 read bytes) must be on tier 0: the
	// §III-A full-file fetch.
	got, err := f.tier0.ReadFile(ctx, "f000")
	if err != nil || len(got) != 1000 {
		t.Fatalf("tier0 copy: len=%d err=%v", len(got), err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{1}, 1000)) {
		t.Fatal("tier0 copy corrupted")
	}
	st := f.m.Stats()
	if st.Placements != 1 || st.PlacedBytes != 1000 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSubsequentReadsServedFromTier0(t *testing.T) {
	f := newFixture(t, 0, 1, 500, nil)
	ctx := context.Background()
	p := make([]byte, 500)
	if _, err := f.m.ReadAt(ctx, "f000", p, 0); err != nil {
		t.Fatal(err)
	}
	f.waitIdle(t)
	before := f.pfs.Counts().DataOps()
	for i := 0; i < 10; i++ {
		if _, err := f.m.ReadAt(ctx, "f000", p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.pfs.Counts().DataOps(); got != before {
		t.Fatalf("PFS ops grew from %d to %d after promotion", before, got)
	}
	st := f.m.Stats()
	if st.ReadsServed[0] != 10 || st.BytesServed[0] != 5000 {
		t.Fatalf("tier0 serving stats: %+v", st)
	}
	if st.HitRatio() < 0.9 {
		t.Fatalf("hit ratio = %v", st.HitRatio())
	}
}

func TestPlacementDeduplicated(t *testing.T) {
	f := newFixture(t, 0, 1, 100_000, nil)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := make([]byte, 64)
			if _, err := f.m.ReadAt(ctx, "f000", p, int64(i)*64); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	f.waitIdle(t)
	st := f.m.Stats()
	if st.Placements != 1 {
		t.Fatalf("placements = %d, want exactly 1", st.Placements)
	}
	// The PFS should have been read roughly once for the copy (by
	// whole file), not 16 times.
	if br := f.pfs.Counts().BytesRead; br > 110_000 {
		t.Fatalf("PFS bytes read = %d, want ~100k + foreground", br)
	}
}

func TestFullReadReuseSkipsSourceReRead(t *testing.T) {
	f := newFixture(t, 0, 1, 2048, nil)
	ctx := context.Background()
	p := make([]byte, 2048)
	if _, err := f.m.ReadAt(ctx, "f000", p, 0); err != nil {
		t.Fatal(err)
	}
	f.waitIdle(t)
	st := f.m.Stats()
	if st.FullReadReuses != 1 {
		t.Fatalf("full-read reuses = %d", st.FullReadReuses)
	}
	// Exactly one PFS read op: the foreground one. No background fetch.
	if ops := f.pfs.Counts().Ops[storage.OpRead]; ops != 1 {
		t.Fatalf("PFS read ops = %d, want 1", ops)
	}
	got, err := f.tier0.ReadFile(ctx, "f000")
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{1}, 2048)) {
		t.Fatalf("tier0 content wrong (err=%v)", err)
	}
}

func TestPartialDatasetPlacementStopsAtQuota(t *testing.T) {
	// 10 files × 1000 bytes, tier0 quota 4500: only 4 files fit. The
	// paper's key scenario (§IV, 200 GiB dataset).
	f := newFixture(t, 4500, 10, 1000, nil)
	ctx := context.Background()
	p := make([]byte, 1000)
	for i := 0; i < 10; i++ {
		if _, err := f.m.ReadAt(ctx, fmt.Sprintf("f%03d", i), p, 0); err != nil {
			t.Fatal(err)
		}
		f.waitIdle(t)
	}
	st := f.m.Stats()
	if st.Placements != 4 {
		t.Fatalf("placements = %d, want 4", st.Placements)
	}
	if st.PlacementSkips != 6 {
		t.Fatalf("skips = %d, want 6", st.PlacementSkips)
	}
	if f.tier0.Used() != 4000 {
		t.Fatalf("tier0 used = %d", f.tier0.Used())
	}
	// Epoch 2: placed files hit tier0, the rest keep hitting the PFS —
	// and crucially no placement is retried.
	before := f.pfs.Counts().DataOps()
	placed, unplaced := 0, 0
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("f%03d", i)
		if _, err := f.m.ReadAt(ctx, name, p, 0); err != nil {
			t.Fatal(err)
		}
		if lvl, _ := f.m.LevelOf(name); lvl == 0 {
			placed++
		} else {
			unplaced++
		}
	}
	f.waitIdle(t)
	if placed != 4 || unplaced != 6 {
		t.Fatalf("placed/unplaced = %d/%d", placed, unplaced)
	}
	if got := f.pfs.Counts().DataOps() - before; got != 6 {
		t.Fatalf("epoch-2 PFS ops = %d, want 6", got)
	}
	if st := f.m.Stats(); st.Evictions != 0 {
		t.Fatalf("no-eviction policy evicted %d files", st.Evictions)
	}
}

func TestThreeLevelHierarchySpillover(t *testing.T) {
	// Files spill to level 1 when level 0 fills: §III-A's descending
	// placement across [0, N-2].
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	for i := 0; i < 6; i++ {
		if err := pfsRaw.WriteFile(ctx, fmt.Sprintf("f%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	pfsRaw.SetReadOnly(true)
	ram := storage.NewMemFS("ram", 250) // fits 2
	ssd := storage.NewMemFS("ssd", 350) // fits 3
	gp := pool.NewGoPool(2)
	m, err := New(Config{
		Levels:        []storage.Backend{ram, ssd, pfsRaw},
		Pool:          gp,
		FullFileFetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 100)
	for i := 0; i < 6; i++ {
		if _, err := m.ReadAt(ctx, fmt.Sprintf("f%d", i), p, 0); err != nil {
			t.Fatal(err)
		}
		for !m.Idle() {
			time.Sleep(time.Millisecond)
		}
	}
	levels := make(map[int]int)
	for i := 0; i < 6; i++ {
		lvl, _ := m.LevelOf(fmt.Sprintf("f%d", i))
		levels[lvl]++
	}
	if levels[0] != 2 || levels[1] != 3 || levels[2] != 1 {
		t.Fatalf("level distribution = %v, want map[0:2 1:3 2:1]", levels)
	}
}

func TestReadAcrossOffsets(t *testing.T) {
	f := newFixture(t, 0, 1, 1000, nil)
	ctx := context.Background()
	p := make([]byte, 300)
	n, err := f.m.ReadAt(ctx, "f000", p, 900)
	if err != nil || n != 100 {
		t.Fatalf("tail read: n=%d err=%v", n, err)
	}
	n, err = f.m.ReadAt(ctx, "f000", p, 5000)
	if err != nil || n != 0 {
		t.Fatalf("past-EOF: n=%d err=%v", n, err)
	}
}

func TestReadFull(t *testing.T) {
	f := newFixture(t, 0, 1, 777, nil)
	data, err := f.m.ReadFull(context.Background(), "f000")
	if err != nil || len(data) != 777 {
		t.Fatalf("len=%d err=%v", len(data), err)
	}
}

func TestTierFailureFallsBackToPFS(t *testing.T) {
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	if err := pfsRaw.WriteFile(ctx, "f", bytes.Repeat([]byte{9}, 100)); err != nil {
		t.Fatal(err)
	}
	tier0 := storage.NewFaulty(storage.NewMemFS("ssd", 0))
	gp := pool.NewGoPool(1)
	m, err := New(Config{
		Levels:        []storage.Backend{tier0, pfsRaw},
		Pool:          gp,
		FullFileFetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 100)
	if _, err := m.ReadAt(ctx, "f", p, 0); err != nil {
		t.Fatal(err)
	}
	for !m.Idle() {
		time.Sleep(time.Millisecond)
	}
	if lvl, _ := m.LevelOf("f"); lvl != 0 {
		t.Fatal("file should be placed before fault")
	}
	tier0.Break()
	n, err := m.ReadAt(ctx, "f", p, 0)
	if err != nil || n != 100 || p[0] != 9 {
		t.Fatalf("fallback read: n=%d err=%v", n, err)
	}
	if st := m.Stats(); st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d", st.Fallbacks)
	}
}

func TestPlacementWriteFailureLeavesFileOnPFS(t *testing.T) {
	ctx := context.Background()
	pfsRaw := storage.NewMemFS("lustre", 0)
	if err := pfsRaw.WriteFile(ctx, "f", bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	tier0 := storage.NewFaulty(storage.NewMemFS("ssd", 0))
	tier0.FailEveryNthWrite(1)
	gp := pool.NewGoPool(1)
	m, err := New(Config{
		Levels:        []storage.Backend{tier0, pfsRaw},
		Pool:          gp,
		FullFileFetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 10)
	if _, err := m.ReadAt(ctx, "f", p, 0); err != nil {
		t.Fatal(err)
	}
	for !m.Idle() {
		time.Sleep(time.Millisecond)
	}
	if lvl, _ := m.LevelOf("f"); lvl != 1 {
		t.Fatalf("file level = %d, want 1 (still on PFS)", lvl)
	}
	st := m.Stats()
	if st.PlacementErrors != 1 {
		t.Fatalf("placement errors = %d", st.PlacementErrors)
	}
	// Reads must keep working from the PFS.
	if _, err := m.ReadAt(ctx, "f", p, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledModePassesThrough(t *testing.T) {
	f := newFixture(t, 0, 2, 100, func(c *Config) {
		c.Disabled = true
		c.Pool = nil
	})
	ctx := context.Background()
	p := make([]byte, 100)
	for i := 0; i < 5; i++ {
		if _, err := f.m.ReadAt(ctx, "f000", p, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := f.m.Stats()
	if st.Placements != 0 || st.ReadsServed[1] != 5 || st.ReadsServed[0] != 0 {
		t.Fatalf("disabled mode stats: %+v", st)
	}
	if f.tier0.Used() != 0 {
		t.Fatal("disabled mode wrote to tier0")
	}
}

func TestFullFetchDisabledAblation(t *testing.T) {
	f := newFixture(t, 0, 2, 1000, func(c *Config) { c.FullFileFetch = false })
	ctx := context.Background()
	p := make([]byte, 100)
	// Partial first read: without the optimisation, nothing is placed.
	if _, err := f.m.ReadAt(ctx, "f000", p, 0); err != nil {
		t.Fatal(err)
	}
	f.waitIdle(t)
	if lvl, _ := f.m.LevelOf("f000"); lvl != 1 {
		t.Fatalf("partial read placed file at level %d", lvl)
	}
	// Full first read still places (content reuse path).
	full := make([]byte, 1000)
	if _, err := f.m.ReadAt(ctx, "f001", full, 0); err != nil {
		t.Fatal(err)
	}
	f.waitIdle(t)
	if lvl, _ := f.m.LevelOf("f001"); lvl != 0 {
		t.Fatalf("full read did not place: level %d", lvl)
	}
}

func TestPreStaging(t *testing.T) {
	f := newFixture(t, 2500, 5, 1000, func(c *Config) { c.Staging = StagePreTraining })
	// Init already pre-staged: first reads hit tier 0 immediately.
	st := f.m.Stats()
	if st.Placements != 2 || st.PlacementSkips != 3 {
		t.Fatalf("pre-stage placements/skips = %d/%d", st.Placements, st.PlacementSkips)
	}
	ctx := context.Background()
	p := make([]byte, 1000)
	if _, err := f.m.ReadAt(ctx, "f000", p, 0); err != nil {
		t.Fatal(err)
	}
	if got := f.m.Stats().ReadsServed[0]; got != 1 {
		t.Fatalf("first read not served from tier0 (served=%d)", got)
	}
}

func TestStagingModeString(t *testing.T) {
	if StageOnFirstRead.String() != "on-first-read" ||
		StagePreTraining.String() != "pre-training" ||
		StagingMode(99).String() != "unknown" {
		t.Fatal("StagingMode.String broken")
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	f := newFixture(t, 50_000, 40, 1000, nil)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := make([]byte, 250)
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("f%03d", (w*7+i*13)%40)
				off := int64((i % 4) * 250)
				n, err := f.m.ReadAt(ctx, name, p, off)
				if err != nil {
					t.Error(err)
					return
				}
				if n != 250 {
					t.Errorf("short read %d", n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	f.waitIdle(t)
	st := f.m.Stats()
	if st.Placements != 40 {
		t.Fatalf("placements = %d, want 40", st.Placements)
	}
	total := st.ReadsServed[0] + st.ReadsServed[1]
	if total != 1600 {
		t.Fatalf("reads recorded = %d, want 1600", total)
	}
}

func TestStatsHitRatioEmpty(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty HitRatio should be 0")
	}
}
