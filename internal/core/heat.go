package core

import (
	"math"
	"sync"
	"sync/atomic"
)

// HeatConfig tunes the heat-driven eviction/admission engine.
type HeatConfig struct {
	// HalfLifeEpochs is the number of epochs over which a file's heat
	// decays to half if it is never read again. Zero means 1.
	HalfLifeEpochs float64
	// AdmitMargin is the hysteresis factor guarding admission: a
	// candidate may displace a placed victim only when the candidate's
	// heat exceeds the victim's by this factor. Values <= 1 are clamped
	// to the default 1.25. The margin is what makes the engine degrade
	// to the paper's no-eviction behaviour under single-job uniform
	// access — every file's heat converges to the same value, nothing
	// clears the margin, and the tier contents freeze instead of
	// thrashing (§III-A).
	AdmitMargin float64
}

func (c HeatConfig) halfLife() float64 {
	if c.HalfLifeEpochs <= 0 {
		return 1
	}
	return c.HalfLifeEpochs
}

func (c HeatConfig) margin() float64 {
	if c.AdmitMargin <= 1 {
		return 1.25
	}
	return c.AdmitMargin
}

// HeatPolicy is the real policy engine behind multi-job tenancy: the
// online form of the per-epoch read heatmaps the trace analyzer derives
// offline (analyze.HeatScore uses the same exponential decay). Every
// read adds one unit of heat to its file; heat halves every
// HalfLifeEpochs epochs (advanced by Monarch.MarkEpoch). Under tier
// pressure the engine evicts the coldest placed file, but only when the
// incoming file is hotter by AdmitMargin — or when per-job quota shares
// entitle an under-share job to reclaim space from a job borrowing
// beyond its share (work-conserving borrowing: free space is always
// usable by anyone). Victim contests compare heat as of the last
// completed epoch, never the epoch in progress, so placement decisions
// are driven by the same per-epoch heatmaps the analyzer derives
// offline rather than by intra-epoch read order.
//
// HeatPolicy implements EvictionPolicy and is safe for concurrent use.
// Reads touch one RWMutex read-lock plus per-entry atomics; only victim
// selection and epoch advancement take the write lock.
type HeatPolicy struct {
	cfg   HeatConfig
	epoch atomic.Int64

	// tenants is the owning instance's quota table, bound by New when
	// Config.Tenants is set; nil means pure heat-based admission.
	tenants *tenantTable

	mu     sync.RWMutex
	files  map[string]*heatEntry
	placed map[int]map[string]*heatEntry // level → files resident there
}

// heatEntry is one file's decayed access temperature. prevBits holds
// the float64 bits of the heat accumulated through the last completed
// epoch (as of lastEpoch); cur counts the reads of the epoch in
// progress. Both fold forward lazily so AdvanceEpoch is O(1). Victim
// contests compare prev only — epoch-boundary heat — so that read
// order within an epoch cannot make a scan's tail look colder than
// its head and trigger churn mid-epoch.
type heatEntry struct {
	name         string
	prevBits     atomic.Uint64
	cur          atomic.Int64
	lastEpoch    atomic.Int64
	promoteEpoch atomic.Int64 // last epoch a promotion check ran (rate limit)
	foldMu       sync.Mutex   // serialises epoch folds; reads stay lock-free
}

// NewHeatPolicy returns a heat-driven eviction/admission engine.
func NewHeatPolicy(cfg HeatConfig) *HeatPolicy {
	return &HeatPolicy{
		cfg:    cfg,
		files:  make(map[string]*heatEntry),
		placed: make(map[int]map[string]*heatEntry),
	}
}

// bindTenancy wires the instance's quota table in; called by New.
func (p *HeatPolicy) bindTenancy(t *tenantTable) { p.tenants = t }

// Name implements EvictionPolicy.
func (p *HeatPolicy) Name() string { return "heat" }

// decayFactor returns the multiplier that ages heat across d epochs.
func (p *HeatPolicy) decayFactor(d int64) float64 {
	if d <= 0 {
		return 1
	}
	return math.Exp2(-float64(d) / p.cfg.halfLife())
}

// fold rolls e's current-epoch reads into its decayed accumulation,
// bringing it up to epoch now. Concurrent folds serialise on foldMu;
// readers racing a fold may see the pre- or post-fold view of one
// epoch's reads, which only shifts one contest by one decay factor.
func (p *HeatPolicy) fold(e *heatEntry, now int64) {
	e.foldMu.Lock()
	defer e.foldMu.Unlock()
	last := e.lastEpoch.Load()
	if last >= now {
		return
	}
	h := (math.Float64frombits(e.prevBits.Load()) + float64(e.cur.Load())) * p.decayFactor(now-last)
	e.prevBits.Store(math.Float64bits(h))
	e.cur.Store(0)
	e.lastEpoch.Store(now)
}

// heatOf returns e's total heat as of the current epoch, including the
// epoch in progress — the analyzer's HeatScore form, h·decay + reads.
func (p *HeatPolicy) heatOf(e *heatEntry) float64 {
	now := p.epoch.Load()
	last := e.lastEpoch.Load()
	h := math.Float64frombits(e.prevBits.Load()) + float64(e.cur.Load())
	if last == now {
		return h
	}
	return h * p.decayFactor(now-last)
}

// boundaryOf returns e's heat as of the last completed epoch: the
// epoch in progress contributes nothing. All victim contests use this
// view, so within one epoch every file's standing is frozen — a
// uniform scan cannot evict its own not-yet-read tail no matter the
// read order, which is what lets the engine degrade to the paper's
// no-eviction behaviour (§III-A).
func (p *HeatPolicy) boundaryOf(e *heatEntry) float64 {
	now := p.epoch.Load()
	last := e.lastEpoch.Load()
	if last == now {
		return math.Float64frombits(e.prevBits.Load())
	}
	return (math.Float64frombits(e.prevBits.Load()) + float64(e.cur.Load())) * p.decayFactor(now-last)
}

// bump folds e forward to the current epoch and adds one access.
func (p *HeatPolicy) bump(e *heatEntry) {
	now := p.epoch.Load()
	if e.lastEpoch.Load() != now {
		p.fold(e, now)
	}
	e.cur.Add(1)
}

// entry returns the heat record for name, creating it on first touch.
func (p *HeatPolicy) entry(name string) *heatEntry {
	p.mu.RLock()
	e := p.files[name]
	p.mu.RUnlock()
	if e != nil {
		return e
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e = p.files[name]; e == nil {
		e = &heatEntry{name: name}
		e.promoteEpoch.Store(-1)
		p.files[name] = e
	}
	return e
}

// OnAccess implements EvictionPolicy: one read adds one unit of heat.
func (p *HeatPolicy) OnAccess(name string) { p.bump(p.entry(name)) }

// OnPlaced implements EvictionPolicy.
func (p *HeatPolicy) OnPlaced(name string, level int) {
	e := p.entry(name)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, lv := range p.placed {
		delete(lv, name)
	}
	lv := p.placed[level]
	if lv == nil {
		lv = make(map[string]*heatEntry)
		p.placed[level] = lv
	}
	lv[name] = e
}

// OnEvicted implements EvictionPolicy: the file leaves its tier but
// keeps its heat history, so re-admission decisions see its past.
func (p *HeatPolicy) OnEvicted(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, lv := range p.placed {
		delete(lv, name)
	}
}

// AdvanceEpoch moves the decay clock one epoch forward; entries fold
// their heat lazily on next touch. Monarch.MarkEpoch calls this.
func (p *HeatPolicy) AdvanceEpoch() { p.epoch.Add(1) }

// Epoch returns the current decay epoch.
func (p *HeatPolicy) Epoch() int64 { return p.epoch.Load() }

// Heat returns name's current (decayed) heat; zero for untouched files.
func (p *HeatPolicy) Heat(name string) float64 {
	p.mu.RLock()
	e := p.files[name]
	p.mu.RUnlock()
	if e == nil {
		return 0
	}
	return p.heatOf(e)
}

// coldest scans level's residents for eviction victims by
// epoch-boundary heat; skip is never considered. cold is the coldest
// entry eligible as a heat-contest victim for a candidate owned by
// candJob: when quota shares are declared, files of other jobs still
// within their guaranteed share are off limits — a job's guarantee
// shields its residents from hotter tenants, not just from reclaim.
// coldOver is the coldest entry whose job borrows beyond its own
// share, the quota-reclaim arm's pick.
func (p *HeatPolicy) coldest(level int, skip, candJob string) (cold, coldOver *heatEntry, coldHeat, coldOverHeat float64) {
	for name, e := range p.placed[level] {
		if name == skip {
			continue
		}
		h := p.boundaryOf(e)
		over := p.tenants != nil && p.tenants.overShare(p.tenants.job(name), level)
		if p.tenants == nil || over || p.tenants.job(name) == candJob {
			if cold == nil || h < coldHeat {
				cold, coldHeat = e, h
			}
		}
		if over {
			if coldOver == nil || h < coldOverHeat {
				coldOver, coldOverHeat = e, h
			}
		}
	}
	return
}

// Victim implements EvictionPolicy: the file placed on level with the
// lowest epoch-boundary heat, quota shares notwithstanding.
func (p *HeatPolicy) Victim(level int) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var cold *heatEntry
	var coldHeat float64
	for _, e := range p.placed[level] {
		if h := p.boundaryOf(e); cold == nil || h < coldHeat {
			cold, coldHeat = e, h
		}
	}
	if cold == nil {
		return "", false
	}
	return cold.name, true
}

// VictimFor is the admission-aware victim selection the placer prefers
// over Victim: it proposes a file to evict from level to make room for
// candidate, or ok=false when the candidate does not justify evicting
// anything (the placement then falls through to lower tiers or is
// skipped, exactly like a full tier under the paper's policy).
//
// Order of preference:
//  1. quota reclaim — when the candidate's job is under its guaranteed
//     share of level and another job is borrowing beyond its own share,
//     the borrower's coldest file goes, no heat contest required;
//  2. heat admission — the coldest eligible file on level goes, but
//     only when the candidate's heat beats it by AdmitMargin. Files of
//     other jobs still within their guaranteed share are never
//     eligible: a guarantee shields residents from hotter tenants.
//
// Both arms compare epoch-boundary heat (completed epochs only), so
// reads of the epoch in progress create no eviction pressure and a
// scan's read order cannot churn the tier mid-epoch.
func (p *HeatPolicy) VictimFor(candidate string, level int) (string, bool) {
	var job string
	if p.tenants != nil {
		job = p.tenants.job(candidate)
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	var candHeat float64
	if ce := p.files[candidate]; ce != nil {
		candHeat = p.boundaryOf(ce)
	}
	cold, coldOver, coldHeat, _ := p.coldest(level, candidate, job)
	if p.tenants != nil && coldOver != nil &&
		!p.tenants.overShare(job, level) && p.tenants.job(coldOver.name) != job {
		return coldOver.name, true
	}
	if cold != nil && candHeat > coldHeat*p.cfg.margin() {
		return cold.name, true
	}
	return "", false
}

// ShouldPromote reports whether an unplaceable file has become hot
// enough to re-enter the placement pipeline: some tier holds a file it
// would displace under VictimFor. Checks are rate-limited to once per
// file per epoch, so cold unplaceable files cost one atomic load per
// read.
func (p *HeatPolicy) ShouldPromote(name string) bool {
	e := p.entry(name)
	now := p.epoch.Load()
	last := e.promoteEpoch.Load()
	if last == now || !e.promoteEpoch.CompareAndSwap(last, now) {
		return false
	}
	p.mu.RLock()
	levels := make([]int, 0, len(p.placed))
	for lvl := range p.placed {
		levels = append(levels, lvl)
	}
	p.mu.RUnlock()
	for _, lvl := range levels {
		if _, ok := p.VictimFor(name, lvl); ok {
			return true
		}
	}
	return false
}

// heatState is one file's serialisable heat record, exchanged with the
// write journal so victim standing survives daemon restarts.
type heatState struct {
	name      string
	prevBits  uint64 // float64 bits of the epoch-boundary accumulation
	cur       int64  // reads of the epoch in progress
	lastEpoch int64
}

// snapshotState captures the decay clock and every file's heat for
// persistence. The placed books are deliberately absent: they are
// rebuilt by OnPlaced as the next process re-places files, while heat
// is history no restart should forget.
func (p *HeatPolicy) snapshotState() (epoch int64, files []heatState) {
	epoch = p.epoch.Load()
	p.mu.RLock()
	defer p.mu.RUnlock()
	files = make([]heatState, 0, len(p.files))
	for name, e := range p.files {
		files = append(files, heatState{
			name:      name,
			prevBits:  e.prevBits.Load(),
			cur:       e.cur.Load(),
			lastEpoch: e.lastEpoch.Load(),
		})
	}
	return epoch, files
}

// restoreState reinstates a snapshot taken by snapshotState. Called
// before any access lands (Init, pre-List), so plain stores suffice.
func (p *HeatPolicy) restoreState(epoch int64, files []heatState) {
	p.epoch.Store(epoch)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range files {
		e := p.files[s.name]
		if e == nil {
			e = &heatEntry{name: s.name}
			e.promoteEpoch.Store(-1)
			p.files[s.name] = e
		}
		e.prevBits.Store(s.prevBits)
		e.cur.Store(s.cur)
		e.lastEpoch.Store(s.lastEpoch)
	}
}

// victimChooser is the optional EvictionPolicy extension the placer
// prefers when making room: victim selection with the candidate (and
// through the bound tenancy table, its job) in view.
type victimChooser interface {
	VictimFor(candidate string, level int) (string, bool)
}

// promoter is the optional EvictionPolicy extension consulted on reads
// of unplaceable files; see HeatPolicy.ShouldPromote.
type promoter interface {
	ShouldPromote(name string) bool
}

// epochAdvancer is the optional EvictionPolicy extension driven by
// Monarch.MarkEpoch.
type epochAdvancer interface {
	AdvanceEpoch()
}

// tenancyBinder is the optional EvictionPolicy extension New uses to
// wire the instance's quota table into the policy.
type tenancyBinder interface {
	bindTenancy(t *tenantTable)
}
