package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"monarch/internal/bufpool"
	"monarch/internal/obs"
	"monarch/internal/storage"
)

// This file implements the tier fault-management subsystem. The paper's
// resilience property (§III: the PFS always holds the full dataset, so
// losing an upper tier degrades performance, never correctness) is made
// operational in three parts:
//
//   - a per-tier circuit breaker: consecutive read/write errors move a
//     tier Healthy → Suspect → Down; once Down, reads of entries placed
//     there are demoted to the source level in a single metadata update
//     (no per-read doomed attempt) and new placements skip the tier;
//   - a placement retry policy (Config.Retry): transient write failures
//     re-queue with backoff instead of permanently marking the file
//     unplaceable;
//   - recovery probing: while a tier is Down, the read path periodically
//     schedules a cheap write-probe on the placement pool; when it
//     succeeds the tier returns to service and demoted/unplaceable
//     entries become re-placeable.

// TierState is the circuit-breaker state of one hierarchy level.
type TierState int32

const (
	// TierHealthy: the tier is serving reads and accepting placements.
	TierHealthy TierState = iota
	// TierSuspect: recent errors were observed but the breaker has not
	// tripped; the tier is still used, and one success clears the state.
	TierSuspect
	// TierDown: the breaker is open. Reads route around the tier,
	// placements skip it, and only a successful recovery probe closes
	// the breaker again.
	TierDown
)

// String names the state.
func (s TierState) String() string {
	switch s {
	case TierHealthy:
		return "healthy"
	case TierSuspect:
		return "suspect"
	case TierDown:
		return "down"
	default:
		return "unknown"
	}
}

// HealthConfig tunes the per-tier circuit breaker. The zero value
// enables the breaker with defaults; set Disabled to recover the
// pre-breaker behaviour (every read retries the broken tier).
type HealthConfig struct {
	// Disabled turns the breaker off entirely.
	Disabled bool
	// ReadErrorThreshold is the number of consecutive failed reads that
	// trips a tier to Down (default 3).
	ReadErrorThreshold int
	// WriteErrorThreshold is the number of consecutive failed placement
	// writes that trips a tier to Down (default 3).
	WriteErrorThreshold int
	// ProbeAfterReads is how many foreground reads must pass between
	// recovery probes of a Down tier (default 16). Probes run on the
	// placement pool, never on the read path.
	ProbeAfterReads int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.ReadErrorThreshold <= 0 {
		c.ReadErrorThreshold = 3
	}
	if c.WriteErrorThreshold <= 0 {
		c.WriteErrorThreshold = 3
	}
	if c.ProbeAfterReads <= 0 {
		c.ProbeAfterReads = 16
	}
	return c
}

// RetryPolicy tunes placement retries (Config.Retry). The zero value
// disables retries: any operational write failure marks the file
// unplaceable, as before.
type RetryPolicy struct {
	// MaxAttempts is the total number of placement attempts per
	// scheduling, including the first; values <= 1 disable retries.
	MaxAttempts int
	// Backoff is the delay before the first retry; it doubles per
	// attempt. Zero retries immediately (useful in tests).
	Backoff time.Duration
	// MaxBackoff caps the doubled delay (0 = uncapped).
	MaxBackoff time.Duration
	// IsTransient overrides the default error classification. The
	// default treats quota (ErrNoSpace), read-only, missing-file, and
	// context errors as permanent and everything else (EIO-like device
	// errors) as transient.
	IsTransient func(error) bool
	// Sleep overrides how the backoff waits (simulations substitute
	// virtual time). The default sleeps real time, aborting on ctx
	// cancellation.
	Sleep func(ctx context.Context, d time.Duration)
}

func (r RetryPolicy) enabled() bool { return r.MaxAttempts > 1 }

// transient classifies err; only transient errors are retried.
func (r RetryPolicy) transient(err error) bool {
	if r.IsTransient != nil {
		return r.IsTransient(err)
	}
	switch {
	case errors.Is(err, storage.ErrNoSpace),
		errors.Is(err, storage.ErrReadOnly),
		errors.Is(err, storage.ErrNotExist),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// backoff returns the wait before attempt+1 (attempt is 1-based).
func (r RetryPolicy) backoff(attempt int) time.Duration {
	d := r.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if r.MaxBackoff > 0 && d >= r.MaxBackoff {
			return r.MaxBackoff
		}
	}
	return d
}

// wait blocks for the attempt's backoff, aborting on cancellation.
func (r RetryPolicy) wait(ctx context.Context, attempt int) {
	d := r.backoff(attempt)
	if d <= 0 {
		return
	}
	if r.Sleep != nil {
		r.Sleep(ctx, d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// tierHealth is the breaker state of one upper tier. The state field is
// read on every foreground read, so it is atomic; the mutex guards
// transitions and the probe gate.
type tierHealth struct {
	state atomic.Int32

	mu         sync.Mutex
	readErrs   int
	writeErrs  int
	sinceProbe int
	probing    bool
}

// healthTracker holds the breaker for every upper tier (the source
// level is never tracked: the PFS always holds the dataset and has no
// tier to fall back to).
type healthTracker struct {
	cfg   HealthConfig
	tiers []*tierHealth
}

func newHealthTracker(cfg HealthConfig, upperLevels int) *healthTracker {
	h := &healthTracker{cfg: cfg.withDefaults()}
	for i := 0; i < upperLevels; i++ {
		h.tiers = append(h.tiers, &tierHealth{})
	}
	return h
}

// tier returns the breaker for level, or nil when the level is not
// tracked (source level, out of range, or breaker disabled).
func (h *healthTracker) tier(level int) *tierHealth {
	if h == nil || h.cfg.Disabled || level < 0 || level >= len(h.tiers) {
		return nil
	}
	return h.tiers[level]
}

// state reports level's breaker state (untracked levels are Healthy).
func (h *healthTracker) state(level int) TierState {
	t := h.tier(level)
	if t == nil {
		return TierHealthy
	}
	return TierState(t.state.Load())
}

func (h *healthTracker) isDown(level int) bool    { return h.state(level) == TierDown }
func (h *healthTracker) placeable(level int) bool { return h.state(level) != TierDown }

// recordReadError counts a failed foreground read against level; it
// reports whether this error tripped the breaker open.
func (h *healthTracker) recordReadError(level int) bool { return h.recordError(level, true) }

// recordWriteError counts a failed placement write against level.
func (h *healthTracker) recordWriteError(level int) bool { return h.recordError(level, false) }

func (h *healthTracker) recordError(level int, read bool) (tripped bool) {
	t := h.tier(level)
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TierState(t.state.Load())
	if st == TierDown {
		return false
	}
	var n, threshold int
	if read {
		t.readErrs++
		n, threshold = t.readErrs, h.cfg.ReadErrorThreshold
	} else {
		t.writeErrs++
		n, threshold = t.writeErrs, h.cfg.WriteErrorThreshold
	}
	if n >= threshold {
		t.state.Store(int32(TierDown))
		t.readErrs, t.writeErrs = 0, 0
		t.sinceProbe, t.probing = 0, false
		return true
	}
	if st == TierHealthy {
		t.state.Store(int32(TierSuspect))
	}
	return false
}

// forceDown opens level's breaker unconditionally; it reports whether
// this call performed the Healthy/Suspect→Down transition (false when
// the level is untracked or already Down).
func (h *healthTracker) forceDown(level int) bool {
	t := h.tier(level)
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if TierState(t.state.Load()) == TierDown {
		return false
	}
	t.state.Store(int32(TierDown))
	t.readErrs, t.writeErrs = 0, 0
	t.sinceProbe, t.probing = 0, false
	return true
}

// recordReadOK closes the consecutive-read-error window after a
// successful read. Healthy tiers take the lock-free fast path: errors
// always move the state to Suspect first, so Healthy implies zero
// counters.
func (h *healthTracker) recordReadOK(level int) { h.recordOK(level, true) }

// recordWriteOK closes the write-error window after a successful
// placement.
func (h *healthTracker) recordWriteOK(level int) { h.recordOK(level, false) }

func (h *healthTracker) recordOK(level int, read bool) {
	t := h.tier(level)
	if t == nil || TierState(t.state.Load()) != TierSuspect {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if read {
		t.readErrs = 0
	} else {
		t.writeErrs = 0
	}
	if t.readErrs == 0 && t.writeErrs == 0 && TierState(t.state.Load()) == TierSuspect {
		t.state.Store(int32(TierHealthy))
	}
}

// observeDown is called once per foreground read for each Down tier; it
// reports whether the caller should launch a recovery probe now. At
// most one probe is in flight per tier, spaced ProbeAfterReads reads
// apart, so probing cost is bounded and deterministic under simulation.
func (h *healthTracker) observeDown(level int) bool {
	t := h.tier(level)
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if TierState(t.state.Load()) != TierDown || t.probing {
		return false
	}
	t.sinceProbe++
	if t.sinceProbe < h.cfg.ProbeAfterReads {
		return false
	}
	t.sinceProbe = 0
	t.probing = true
	return true
}

// probeDone records a probe outcome; recovered reports a Down→Healthy
// transition.
func (h *healthTracker) probeDone(level int, success bool) (recovered bool) {
	t := h.tier(level)
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.probing = false
	if !success || TierState(t.state.Load()) != TierDown {
		return false
	}
	t.state.Store(int32(TierHealthy))
	t.readErrs, t.writeErrs = 0, 0
	t.sinceProbe = 0
	return true
}

// probeAborted clears the probing latch when a probe could not run
// (pool closed or context cancelled).
func (h *healthTracker) probeAborted(level int) { h.probeDone(level, false) }

// TierState reports the circuit-breaker state of a hierarchy level. The
// source level (and any level when the breaker is disabled) is always
// TierHealthy.
func (m *Monarch) TierState(level int) TierState {
	return m.health.state(level)
}

// ReportTierError feeds an externally observed failure of level into
// its circuit breaker, exactly as if a foreground read had failed
// there. Cluster machinery uses it to translate out-of-band evidence —
// a peer marked Dead by gossip membership, say — into breaker pressure
// without waiting for reads to fail one by one. Errors accumulate
// toward ReadErrorThreshold, so isolated reports only move the tier to
// Suspect; repeated reports trip it.
func (m *Monarch) ReportTierError(level int, err error) {
	if level < 0 || level >= len(m.levels) || level == m.source.level {
		return
	}
	if tripped := m.health.recordReadError(level); tripped {
		m.tierDown(level, err)
	}
}

// ForceTierDown opens level's breaker immediately, skipping the
// consecutive-error window. It is the demotion path for definitive
// evidence: when membership declares every replica of a peer tier Dead,
// counting to the threshold would just burn doomed reads. Recovery
// still goes through the normal probe cycle, so a rejoining cluster
// closes the breaker the same way a repaired device does. The source
// level and untracked levels are never forced.
func (m *Monarch) ForceTierDown(level int, err error) {
	if level < 0 || level >= len(m.levels) || level == m.source.level {
		return
	}
	if m.health.forceDown(level) {
		m.tierDown(level, err)
	}
}

// tierDown records a breaker trip: stats, event, and nothing else — the
// demotions that follow happen lazily, one metadata update per entry on
// its next read.
func (m *Monarch) tierDown(level int, err error) {
	m.stats.tierTrips.Add(1)
	m.event(Event{Kind: EventTierDown, Level: level, Err: err})
}

// demote re-points an entry placed on a Down tier at the source level
// so subsequent reads skip the broken tier entirely. The entry's bytes
// leave its job's quota ledger: a demoted file is served from the
// source, and its re-placement after recovery charges the job again.
func (m *Monarch) demote(e *fileEntry, from int) {
	if e.markDemoted(from, m.source.level) {
		m.tenants.release(m.tenants.job(e.name), from, e.size)
		m.stats.demotions.Add(1)
		m.event(Event{Kind: EventDemoted, File: e.name, Level: from, Bytes: e.size})
	}
}

// tickProbes advances the probe gate of every Down tier; called once
// per foreground read. The atomic state load keeps the healthy path
// free of locks.
func (m *Monarch) tickProbes() {
	h := m.health
	if h == nil || h.cfg.Disabled {
		return
	}
	for lvl, t := range h.tiers {
		if TierState(t.state.Load()) == TierDown && h.observeDown(lvl) {
			m.submitProbe(lvl)
		}
	}
}

// submitProbe schedules a recovery probe of level on the placement
// pool.
func (m *Monarch) submitProbe(level int) {
	d := m.levels[level]
	ok := m.placer.submit(func(ctx context.Context) { m.runProbe(ctx, d) })
	if !ok {
		m.health.probeAborted(level)
	}
}

// runProbe checks whether a Down tier answers again. On success the
// breaker closes and every demoted/unplaceable entry becomes
// re-placeable, so the next epoch's reads restore the cached-tier pace.
func (m *Monarch) runProbe(ctx context.Context, d *driver) {
	start := time.Now()
	m.stats.probes.Add(1)
	err, cleanupErr := probeBackend(ctx, d.backend)
	if cleanupErr != nil {
		// The probe file lingering on a live tier is harmless but worth
		// knowing about; this error used to be discarded.
		m.inst.errCleanup.Inc()
		m.event(Event{Kind: EventOpError, File: probeFile, Level: d.level, Err: cleanupErr})
	}
	if ctx.Err() != nil {
		m.health.probeAborted(d.level)
		return
	}
	if err != nil {
		m.inst.errProbe.Inc()
	}
	m.span(obs.Span{Kind: obs.SpanTierProbe, Tier: d.level, Err: err, Duration: time.Since(start)})
	if recovered := m.health.probeDone(d.level, err == nil); recovered {
		n := m.meta.resetForReplacement()
		m.stats.tierRecoveries.Add(1)
		m.event(Event{Kind: EventTierUp, Level: d.level, Bytes: int64(n)})
	}
}

// probeFile is the scratch name recovery probes write; it never
// collides with dataset names built by List (names from the namespace
// are re-validated, and the probe removes its file immediately).
const probeFile = ".monarch-probe"

// probeBackend is the cheap liveness check: a one-byte write, removed
// on success. Errors that prove the device responded (quota exhausted,
// read-only, pre-existing file) count as alive — the tier can still
// serve reads of previously placed data. cleanupErr reports a failed
// best-effort removal of the scratch file so the caller can surface it.
func probeBackend(ctx context.Context, b storage.Backend) (err, cleanupErr error) {
	// Backends with a native liveness check (the peer tier is read-only
	// AND reports zero free space, so the write probe below would judge
	// it alive without ever touching the network) answer directly.
	if p, ok := b.(storage.Pinger); ok {
		return p.Ping(ctx), nil
	}
	scratch := bufpool.Get(1)
	scratch[0] = 0
	err = b.WriteFile(ctx, probeFile, scratch)
	bufpool.Put(scratch)
	switch {
	case err == nil:
		if rmErr := b.Remove(ctx, probeFile); rmErr != nil && !errors.Is(rmErr, storage.ErrNotExist) {
			cleanupErr = rmErr
		}
		return nil, cleanupErr
	case errors.Is(err, storage.ErrNoSpace),
		errors.Is(err, storage.ErrReadOnly),
		errors.Is(err, storage.ErrExist):
		return nil, nil
	default:
		return err, nil
	}
}
