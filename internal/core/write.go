package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"sync"
	"sync/atomic"

	"monarch/internal/journal"
	"monarch/internal/obs"
	"monarch/internal/storage"
)

// Durability selects how a writable file's bytes are acknowledged.
type Durability int

const (
	// WriteThrough acks a write only after the PFS (source level) has
	// the bytes — the durability of a direct-PFS checkpoint, at its
	// latency.
	WriteThrough Durability = iota
	// WriteBack acks as soon as tier 0 has the bytes; a background
	// flusher pushes them to the PFS behind the job's back. With a
	// journal configured, acked bytes survive a kill -9 before the
	// flush: the journal replays them into the PFS on the next Init.
	WriteBack
)

// String names the durability level.
func (d Durability) String() string {
	switch d {
	case WriteThrough:
		return "write-through"
	case WriteBack:
		return "write-back"
	default:
		return "unknown"
	}
}

// WriteConfig enables the write path: Create/WriteAt/Flush/Remove for
// runtime-created files (checkpoints, logs, preprocessed shards). The
// dataset the source listing yields stays read-only; only files
// created through Create are writable.
type WriteConfig struct {
	// Enabled turns the write path on.
	Enabled bool
	// Durability picks the level for a new file by name; nil means
	// WriteThrough for everything.
	Durability func(name string) Durability
	// JournalPath, when non-empty, write-ahead-logs every write-back
	// mutation to this file (see internal/journal), making tier-0-acked
	// bytes survive a kill -9 before their flush: Init replays the
	// journal into the PFS before listing it. The journal also persists
	// heat-policy state across restarts (written on Close).
	JournalPath string
	// JournalSync fsyncs the journal on every append, extending
	// durability from process death to machine crash.
	JournalSync bool
	// DirtyBudget bounds the unflushed write-back bytes; writers block
	// once the budget is exhausted until the flusher drains. Zero means
	// 256 MiB.
	DirtyBudget int64
	// FlushWorkers is the number of dedicated flusher goroutines. They
	// are deliberately NOT placement-pool tasks: the write-burst gate
	// pauses pool workers, and a flusher queued behind paused workers
	// while writers block on the dirty budget would deadlock the path
	// it exists to drain. Zero means 2.
	FlushWorkers int
	// BurstIdle is how long after the last foreground write the
	// checkpoint-burst gate keeps background placement copies paused
	// (the gate also holds while dirty bytes remain). Zero means 100ms.
	BurstIdle time.Duration
}

func (c WriteConfig) dirtyBudget() int64 {
	if c.DirtyBudget <= 0 {
		return 256 << 20
	}
	return c.DirtyBudget
}

func (c WriteConfig) flushWorkers() int {
	if c.FlushWorkers <= 0 {
		return 2
	}
	return c.FlushWorkers
}

func (c WriteConfig) burstIdle() time.Duration {
	if c.BurstIdle <= 0 {
		return 100 * time.Millisecond
	}
	return c.BurstIdle
}

func (c WriteConfig) durabilityOf(name string) Durability {
	if c.Durability == nil {
		return WriteThrough
	}
	return c.Durability(name)
}

// ErrWritesDisabled is returned by the write API without Config.Write.
var ErrWritesDisabled = errors.New("monarch: writes not enabled")

// ErrNotWritable is returned when WriteAt/Flush/Remove target a file
// that was not created through Create — the dataset stays read-only.
var ErrNotWritable = errors.New("monarch: file is not writable")

// Journal record kinds. The journal carries the write-back WAL plus
// the heat-policy snapshot; framing lives in internal/journal, these
// semantics live here.
const (
	// recAlloc: a writable file was created; Off is its size.
	recAlloc byte = 1
	// recData: one acked write-back write; Off is the file offset, Data
	// the payload.
	recData byte = 2
	// recFlush: every data record for Name with seq <= Off is durable
	// on the PFS and must not be replayed.
	recFlush byte = 3
	// recRemove: the file was removed; pending records are void.
	recRemove byte = 4
	// recHeatFile: one file's heat-decay state (Off = lastEpoch, Data =
	// prevBits u64 + cur u64, little-endian).
	recHeatFile byte = 5
	// recHeatEpoch: the heat policy's global epoch (Off).
	recHeatEpoch byte = 6
)

// writeFile is one writable file's live write-back state.
type writeFile struct {
	name string
	size int64
	back bool // WriteBack durability

	// wmu serialises write-back writes to this one file, so lastSeq is
	// monotone with *landed* tier-0 writes: without it, writer B (seq 6)
	// could publish lastSeq=6 while writer A's seq-5 bytes were still in
	// flight, and a flush covering 6 would let replay drop record 5.
	// Distinct files (the checkpoint-shard case) still write in parallel.
	wmu sync.Mutex

	mu       sync.Mutex
	dirty    int64  // tier-0-acked bytes not yet flushed to the PFS
	lastSeq  uint64 // journal seq of the newest acked data record
	flushing bool   // a flusher worker owns this file right now
	removed  bool
}

// writeState is the write subsystem: the writable-file table, the
// dirty-budget ledger, the dedicated flusher workers, the write-burst
// gate, and the crash journal.
type writeState struct {
	m   *Monarch
	cfg WriteConfig
	jn  *journal.Journal // nil without JournalPath

	mu     sync.Mutex
	files  map[string]*writeFile
	dirty  int64         // sum of per-file dirty (budget accounting)
	waitCh chan struct{} // closed+replaced when dirty drains; nil when nobody waits

	kick chan struct{} // nudges the flusher workers (cap 1)
	quit chan struct{}
	wg   sync.WaitGroup

	// lastWrite is the monotonic nanosecond stamp (time.Since(m.base))
	// of the last foreground write ack; the burst gate reads it.
	lastWrite atomic.Int64
	started   atomic.Bool
	closed    atomic.Bool
}

func newWriteState(m *Monarch, cfg WriteConfig) *writeState {
	return &writeState{
		m:     m,
		cfg:   cfg,
		files: make(map[string]*writeFile),
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
}

// file returns the writable-file record, or nil.
func (ws *writeState) file(name string) *writeFile {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.files[name]
}

// protected reports whether name is a writable file — writable files
// are never eviction victims: dirty ones hold the only tiered copy of
// acked bytes, and clean ones are owned by the Remove lifecycle, not
// the placement policy.
func (ws *writeState) protected(name string) bool {
	if ws == nil {
		return false
	}
	return ws.file(name) != nil
}

// dirtyBytes reports the unflushed write-back backlog.
func (ws *writeState) dirtyBytes() int64 {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.dirty
}

// burstActive reports whether a write burst is in progress: a
// foreground write acked within BurstIdle, or unflushed bytes still
// draining. The placement gate polls this.
func (ws *writeState) burstActive() bool {
	if ws.dirtyBytes() > 0 {
		return true
	}
	last := ws.lastWrite.Load()
	return last > 0 && time.Since(ws.m.base)-time.Duration(last) < ws.cfg.burstIdle()
}

// pauseForBurst blocks until the write burst drains (or ctx ends).
// Called by placement-pool tasks; the flushers this wait depends on
// run on their own goroutines, so the pause can always resolve.
func (ws *writeState) pauseForBurst(ctx context.Context) {
	paused := false
	poll := ws.cfg.burstIdle() / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	for ws.burstActive() {
		if ctx.Err() != nil {
			return
		}
		if !paused {
			paused = true
			ws.m.stats.placementPauses.Add(1)
		}
		time.Sleep(poll)
	}
}

// writePause is the nil-safe gate hook on the placement paths.
func (m *Monarch) writePause(ctx context.Context) {
	if m.writes != nil {
		m.writes.pauseForBurst(ctx)
	}
}

// reserve blocks until n write-back bytes fit under the dirty budget,
// then charges them. It reports whether the writer had to stall.
func (ws *writeState) reserve(ctx context.Context, n int64) (stalled bool, err error) {
	budget := ws.cfg.dirtyBudget()
	for {
		ws.mu.Lock()
		if ws.dirty+n <= budget || ws.dirty == 0 {
			// A single write larger than the whole budget must still
			// proceed when the backlog is empty, or it would wait forever.
			ws.dirty += n
			ws.mu.Unlock()
			return stalled, nil
		}
		if ws.waitCh == nil {
			ws.waitCh = make(chan struct{})
		}
		wait := ws.waitCh
		ws.mu.Unlock()
		if !stalled {
			stalled = true
			ws.m.stats.writeStalls.Add(1)
		}
		ws.nudge()
		select {
		case <-wait:
		case <-ctx.Done():
			return stalled, ctx.Err()
		}
	}
}

// release returns n flushed (or voided) bytes to the budget and wakes
// stalled writers.
func (ws *writeState) release(n int64) {
	if n == 0 {
		return
	}
	ws.mu.Lock()
	ws.dirty -= n
	if ws.waitCh != nil {
		close(ws.waitCh)
		ws.waitCh = nil
	}
	ws.mu.Unlock()
}

// nudge wakes a flusher worker (non-blocking; one pending nudge is
// enough, workers drain every dirty file per wake).
func (ws *writeState) nudge() {
	select {
	case ws.kick <- struct{}{}:
	default:
	}
}

// start launches the flusher workers; called from Init after journal
// recovery so flushes never race the replay.
func (ws *writeState) start() {
	if !ws.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < ws.cfg.flushWorkers(); i++ {
		ws.wg.Add(1)
		go ws.flushLoop()
	}
}

func (ws *writeState) flushLoop() {
	defer ws.wg.Done()
	ctx := context.Background()
	for {
		select {
		case <-ws.quit:
			return
		case <-ws.kick:
		}
		for {
			f := ws.claimDirty()
			if f == nil {
				break
			}
			if err := ws.flush(ctx, f); err != nil {
				// The PFS refused the flush. The bytes stay dirty (and
				// journaled), so nothing is lost; back off before the
				// next attempt rather than hot-looping on a dead PFS.
				select {
				case <-ws.quit:
					return
				case <-time.After(ws.cfg.burstIdle()):
				}
				ws.nudge()
			}
		}
	}
}

// claimDirty picks a dirty, unclaimed, live file and marks it flushing.
func (ws *writeState) claimDirty() *writeFile {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for _, f := range ws.files {
		f.mu.Lock()
		ok := f.dirty > 0 && !f.flushing && !f.removed
		if ok {
			f.flushing = true
		}
		f.mu.Unlock()
		if ok {
			return f
		}
	}
	return nil
}

// flush pushes f's current tier-0 content to the PFS and marks the
// covered bytes clean. Writers may land more bytes mid-flush; those
// stay dirty and the file is simply claimed again.
func (ws *writeState) flush(ctx context.Context, f *writeFile) error {
	m := ws.m
	f.mu.Lock()
	snap := f.dirty
	covered := f.lastSeq
	removed := f.removed
	f.mu.Unlock()
	if snap == 0 || removed {
		f.mu.Lock()
		f.flushing = false
		f.mu.Unlock()
		return nil
	}
	start := time.Now()
	// The tier-0 content as of `covered` is fully visible here: writers
	// update lastSeq only after their tier-0 write returns.
	data, err := m.levels[0].backend.ReadFile(ctx, f.name)
	if err == nil {
		err = m.source.backend.WriteFile(ctx, f.name, data)
	}
	dur := time.Since(start)
	if err != nil {
		f.mu.Lock()
		f.flushing = false
		f.mu.Unlock()
		m.inst.errFlush.Inc()
		m.event(Event{Kind: EventOpError, File: f.name, Level: m.source.level, Err: err})
		m.span(obs.Span{Kind: obs.SpanFlush, File: f.name, Tier: m.source.level, Bytes: int64(len(data)), Err: err, Duration: dur})
		return err
	}
	if ws.jn != nil {
		if _, jerr := ws.jn.Append(journal.Record{Kind: recFlush, Name: f.name, Off: covered}); jerr != nil {
			m.inst.errJournal.Inc()
			m.event(Event{Kind: EventOpError, File: f.name, Level: -1, Err: jerr})
		}
	}
	f.mu.Lock()
	f.dirty -= snap
	f.flushing = false
	f.mu.Unlock()
	ws.release(snap)
	m.stats.flushes.Inc()
	m.stats.flushedBytes.Add(snap)
	m.inst.flushLatency.Observe(dur.Seconds())
	m.event(Event{Kind: EventFlushed, File: f.name, Level: m.source.level, Bytes: snap})
	m.span(obs.Span{Kind: obs.SpanFlush, File: f.name, Tier: m.source.level, Bytes: int64(len(data)), Duration: dur})
	return nil
}

// drain flushes every dirty file, blocking until the backlog is empty
// or ctx ends. Used by Close and Monarch.Flush("").
func (ws *writeState) drain(ctx context.Context) error {
	for {
		if ws.dirtyBytes() == 0 {
			return nil
		}
		ws.nudge()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// close drains the dirty backlog, persists the heat snapshot, and
// closes the journal. graceful=false (Shutdown) skips the drain — the
// journal already holds every acked byte, so the next Init recovers
// them; only the heat snapshot is sacrificed.
func (ws *writeState) close(graceful bool) {
	if !ws.closed.CompareAndSwap(false, true) {
		// Close after Close (or Shutdown then Close): already sealed.
		return
	}
	if ws.started.CompareAndSwap(false, true) {
		// Never started (Init not reached): just seal the journal.
		if ws.jn != nil {
			ws.jn.Close()
		}
		return
	}
	if graceful {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = ws.drain(ctx)
		cancel()
	}
	close(ws.quit)
	ws.wg.Wait()
	if ws.jn == nil {
		return
	}
	if graceful {
		ws.persistHeat()
	}
	if err := ws.jn.Close(); err != nil {
		ws.m.inst.errJournal.Inc()
	}
}

// persistHeat compacts the journal down to a heat-policy snapshot: the
// dirty backlog has drained, so the data records are dead weight and
// the snapshot is the only live state the next Init needs.
func (ws *writeState) persistHeat() {
	hp, ok := ws.m.cfg.Eviction.(*HeatPolicy)
	if !ok {
		if ws.dirtyBytes() == 0 {
			if err := ws.jn.Compact(nil); err != nil {
				ws.m.inst.errJournal.Inc()
			}
		}
		return
	}
	if ws.dirtyBytes() > 0 {
		// An unflushable backlog (PFS down at close): keep the journal
		// as-is — replay durability outranks snapshot compaction.
		return
	}
	epoch, files := hp.snapshotState()
	recs := make([]journal.Record, 0, len(files)+1)
	recs = append(recs, journal.Record{Kind: recHeatEpoch, Off: uint64(epoch)})
	for _, f := range files {
		var data [16]byte
		binary.LittleEndian.PutUint64(data[0:8], f.prevBits)
		binary.LittleEndian.PutUint64(data[8:16], uint64(f.cur))
		recs = append(recs, journal.Record{
			Kind: recHeatFile,
			Name: f.name,
			Off:  uint64(f.lastEpoch),
			Data: data[:],
		})
	}
	if err := ws.jn.Compact(recs); err != nil {
		ws.m.inst.errJournal.Inc()
	}
}

// pendingWrite is one file's unreplayed journal state during recovery.
type pendingWrite struct {
	size    int64
	alloc   bool
	recs    []journal.Record // data records not yet covered by a flush
	removed bool
}

// initWrites opens the journal, replays it into the PFS (so every
// tier-0-acked byte the previous process lost to a crash is durable
// before the namespace is listed), restores the heat snapshot, and
// starts the flusher workers. Called from Init before the source List.
func (m *Monarch) initWrites(ctx context.Context) error {
	ws := m.writes
	if ws == nil {
		return nil
	}
	if ws.cfg.JournalPath == "" {
		ws.start()
		return nil
	}
	pending := make(map[string]*pendingWrite)
	var heatEpoch int64
	var heatFiles []heatState
	jn, err := journal.Open(ws.cfg.JournalPath, journal.Options{
		Sync: ws.cfg.JournalSync,
		Meta: map[string]string{"owner": "monarch-write-path"},
	}, func(r journal.Record) error {
		switch r.Kind {
		case recAlloc:
			pending[r.Name] = &pendingWrite{size: int64(r.Off), alloc: true}
		case recData:
			p := pending[r.Name]
			if p == nil {
				p = &pendingWrite{}
				pending[r.Name] = p
			}
			p.recs = append(p.recs, r)
		case recFlush:
			if p := pending[r.Name]; p != nil {
				live := p.recs[:0]
				for _, rec := range p.recs {
					if rec.Seq > r.Off {
						live = append(live, rec)
					}
				}
				p.recs = live
			}
		case recRemove:
			pending[r.Name] = &pendingWrite{removed: true}
		case recHeatEpoch:
			heatEpoch = int64(r.Off)
		case recHeatFile:
			if len(r.Data) == 16 {
				heatFiles = append(heatFiles, heatState{
					name:      r.Name,
					prevBits:  binary.LittleEndian.Uint64(r.Data[0:8]),
					cur:       int64(binary.LittleEndian.Uint64(r.Data[8:16])),
					lastEpoch: int64(r.Off),
				})
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("monarch: write journal: %w", err)
	}
	ws.jn = jn
	if err := ws.recover(ctx, pending); err != nil {
		jn.Close()
		ws.jn = nil
		return err
	}
	if hp, ok := m.cfg.Eviction.(*HeatPolicy); ok && (heatEpoch > 0 || len(heatFiles) > 0) {
		hp.restoreState(heatEpoch, heatFiles)
	}
	ws.start()
	return nil
}

// recover applies the surviving journal state to the PFS: pending
// allocations and data records land (in seq order), pending removals
// remove. Afterwards the journal is compacted down to the heat
// snapshot — everything it recovered is durable now.
func (ws *writeState) recover(ctx context.Context, pending map[string]*pendingWrite) error {
	m := ws.m
	src := m.source.backend
	names := make([]string, 0, len(pending))
	for name := range pending {
		names = append(names, name)
	}
	sort.Strings(names)
	recovered := 0
	for _, name := range names {
		p := pending[name]
		if p.removed {
			if err := src.Remove(ctx, name); err != nil && !errors.Is(err, storage.ErrNotExist) {
				return fmt.Errorf("monarch: recover remove %q: %w", name, err)
			}
			continue
		}
		if !p.alloc && len(p.recs) == 0 {
			continue
		}
		if _, err := src.Stat(ctx, name); errors.Is(err, storage.ErrNotExist) {
			rw, ok := src.(storage.RangeWriter)
			if !ok {
				return fmt.Errorf("monarch: recover %q: source lacks range writes", name)
			}
			if err := rw.Allocate(ctx, name, p.size); err != nil {
				return fmt.Errorf("monarch: recover allocate %q: %w", name, err)
			}
		} else if err != nil {
			return fmt.Errorf("monarch: recover stat %q: %w", name, err)
		}
		if len(p.recs) > 0 {
			rw, ok := src.(storage.RangeWriter)
			if !ok {
				return fmt.Errorf("monarch: recover %q: source lacks range writes", name)
			}
			sort.Slice(p.recs, func(i, j int) bool { return p.recs[i].Seq < p.recs[j].Seq })
			for _, rec := range p.recs {
				if _, err := rw.WriteAt(ctx, name, rec.Data, int64(rec.Off)); err != nil {
					return fmt.Errorf("monarch: recover write %q: %w", name, err)
				}
			}
		}
		recovered++
	}
	if recovered > 0 {
		m.stats.recoveredFiles.Add(int64(recovered))
		m.event(Event{Kind: EventRecovered, File: "", Level: m.source.level, Bytes: int64(recovered)})
	}
	// Everything recovered is durable; drop the replayed WAL so the
	// next crash replays only post-recovery records. Heat records are
	// re-persisted on the next graceful close.
	if err := ws.jn.Compact(nil); err != nil {
		return fmt.Errorf("monarch: compact after recovery: %w", err)
	}
	return nil
}

// Create registers a new writable file of fixed size and allocates its
// backing bytes (zero-filled) on the tier its durability dictates:
// tier 0 for write-back, the PFS for write-through. The name must not
// collide with the namespace; dataset files are never writable.
func (m *Monarch) Create(ctx context.Context, name string, size int64) error {
	ws := m.writes
	if ws == nil {
		return ErrWritesDisabled
	}
	if name == "" || size < 0 {
		return fmt.Errorf("monarch: invalid create %q size %d", name, size)
	}
	if !m.meta.initialized() {
		return ErrNotInitialized
	}
	back := ws.cfg.durabilityOf(name) == WriteBack
	var target *driver
	var state placementState
	if back {
		target, state = m.levels[0], statePlaced
	} else {
		target, state = m.source, stateSource
	}
	rw, ok := target.backend.(storage.RangeWriter)
	if !ok {
		return fmt.Errorf("monarch: level %d (%s) lacks range writes: %w",
			target.level, target.backend.Name(), errors.ErrUnsupported)
	}
	ws.mu.Lock()
	if _, exists := ws.files[name]; exists {
		ws.mu.Unlock()
		return fmt.Errorf("monarch: create %q: %w", name, storage.ErrExist)
	}
	ws.mu.Unlock()
	if _, err := m.meta.insert(name, size, target.level, state); err != nil {
		return fmt.Errorf("monarch: create %q: %w", name, err)
	}
	if back && ws.jn != nil {
		if _, err := ws.jn.Append(journal.Record{Kind: recAlloc, Name: name, Off: uint64(size)}); err != nil {
			m.meta.remove(name)
			m.inst.errJournal.Inc()
			return fmt.Errorf("monarch: create %q: %w", name, err)
		}
	}
	if err := rw.Allocate(ctx, name, size); err != nil {
		m.meta.remove(name)
		return fmt.Errorf("monarch: create %q: %w", name, err)
	}
	f := &writeFile{name: name, size: size, back: back}
	ws.mu.Lock()
	ws.files[name] = f
	ws.mu.Unlock()
	m.stats.creates.Inc()
	return nil
}

// WriteAt writes len(p) bytes at offset off of a file previously
// registered with Create, acking at the file's durability level:
// write-through returns once the PFS has the bytes; write-back returns
// once tier 0 (and the journal, when configured) has them, with the
// PFS flush running behind the caller's back under the dirty budget.
func (m *Monarch) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	ws := m.writes
	if ws == nil {
		return 0, ErrWritesDisabled
	}
	start := time.Now()
	f := ws.file(name)
	if f == nil {
		err := fmt.Errorf("%w: %q", ErrNotWritable, name)
		m.inst.errWrite.Inc()
		m.span(obs.Span{Kind: obs.SpanWrite, File: name, Tier: -1, Off: off, Err: err, Duration: time.Since(start)})
		return 0, err
	}
	if off < 0 || off+int64(len(p)) > f.size {
		err := fmt.Errorf("monarch: write [%d,%d) outside %q (size %d)", off, off+int64(len(p)), name, f.size)
		m.inst.errWrite.Inc()
		m.span(obs.Span{Kind: obs.SpanWrite, File: name, Tier: -1, Off: off, Err: err, Duration: time.Since(start)})
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	if f.back {
		return ws.writeBack(ctx, f, p, off, start)
	}
	return ws.writeThrough(ctx, f, p, off, start)
}

// writeThrough lands the bytes on the PFS before acking.
func (ws *writeState) writeThrough(ctx context.Context, f *writeFile, p []byte, off int64, start time.Time) (int, error) {
	m := ws.m
	rw := m.source.backend.(storage.RangeWriter)
	n, err := rw.WriteAt(ctx, f.name, p, off)
	dur := time.Since(start)
	if err != nil {
		m.inst.errWrite.Inc()
		m.span(obs.Span{Kind: obs.SpanWrite, File: f.name, Tier: m.source.level, Off: off, Err: err, Duration: dur})
		return n, err
	}
	ws.lastWrite.Store(int64(time.Since(m.base)))
	m.stats.writes.Inc()
	m.stats.writtenBytesFg.Add(int64(n))
	m.inst.writeLatency.Observe(dur.Seconds())
	m.span(obs.Span{Kind: obs.SpanWrite, File: f.name, Tier: m.source.level, Off: off, Bytes: int64(n), Duration: dur})
	return n, nil
}

// writeBack journals the bytes, lands them on tier 0, and acks; the
// flusher owns getting them to the PFS.
func (ws *writeState) writeBack(ctx context.Context, f *writeFile, p []byte, off int64, start time.Time) (int, error) {
	m := ws.m
	fail := func(n int, err error) (int, error) {
		m.inst.errWrite.Inc()
		m.span(obs.Span{Kind: obs.SpanWrite, File: f.name, Tier: 0, Off: off,
			Flags: obs.FlagWriteBack, Err: err, Duration: time.Since(start)})
		return n, err
	}
	stalled, err := ws.reserve(ctx, int64(len(p)))
	if err != nil {
		return fail(0, err)
	}
	f.wmu.Lock()
	var seq uint64
	if ws.jn != nil {
		var err error
		seq, err = ws.jn.Append(journal.Record{Kind: recData, Name: f.name, Off: uint64(off), Data: p})
		if err != nil {
			f.wmu.Unlock()
			ws.release(int64(len(p)))
			m.inst.errJournal.Inc()
			return fail(0, err)
		}
	}
	rw := m.levels[0].backend.(storage.RangeWriter)
	n, err := rw.WriteAt(ctx, f.name, p, off)
	if err != nil {
		f.wmu.Unlock()
		ws.release(int64(len(p)))
		return fail(n, err)
	}
	f.mu.Lock()
	f.dirty += int64(n)
	if seq > f.lastSeq {
		f.lastSeq = seq
	}
	f.mu.Unlock()
	f.wmu.Unlock()
	if int64(n) < int64(len(p)) {
		ws.release(int64(len(p)) - int64(n))
	}
	ws.lastWrite.Store(int64(time.Since(m.base)))
	ws.nudge()
	dur := time.Since(start)
	m.stats.writes.Inc()
	m.stats.writeBacks.Inc()
	m.stats.writtenBytesFg.Add(int64(n))
	if stalled {
		m.event(Event{Kind: EventWriteStalled, File: f.name, Level: 0, Bytes: int64(n)})
	}
	m.inst.writeLatency.Observe(dur.Seconds())
	m.span(obs.Span{Kind: obs.SpanWrite, File: f.name, Tier: 0, Off: off, Bytes: int64(n),
		Flags: obs.FlagWriteBack, Duration: dur})
	return n, nil
}

// Flush blocks until the named write-back file's acked bytes are
// durable on the PFS; name "" drains every dirty file. A no-op for
// write-through files.
func (m *Monarch) Flush(ctx context.Context, name string) error {
	ws := m.writes
	if ws == nil {
		return ErrWritesDisabled
	}
	if name == "" {
		return ws.drain(ctx)
	}
	f := ws.file(name)
	if f == nil {
		return fmt.Errorf("%w: %q", ErrNotWritable, name)
	}
	for {
		f.mu.Lock()
		dirty := f.dirty
		f.mu.Unlock()
		if dirty == 0 {
			return nil
		}
		ws.nudge()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// Remove deletes a writable file everywhere: the namespace, its tiered
// copy, the PFS copy (if flushed), and — through the journal — any
// pending replay state. Dataset files cannot be removed.
func (m *Monarch) Remove(ctx context.Context, name string) error {
	ws := m.writes
	if ws == nil {
		return ErrWritesDisabled
	}
	start := time.Now()
	f := ws.file(name)
	if f == nil {
		err := fmt.Errorf("%w: %q", ErrNotWritable, name)
		m.inst.errWrite.Inc()
		m.span(obs.Span{Kind: obs.SpanRemove, File: name, Tier: -1, Err: err, Duration: time.Since(start)})
		return err
	}
	f.mu.Lock()
	f.removed = true
	voided := f.dirty
	f.dirty = 0
	f.mu.Unlock()
	ws.release(voided)
	if ws.jn != nil {
		if _, err := ws.jn.Append(journal.Record{Kind: recRemove, Name: name}); err != nil {
			m.inst.errJournal.Inc()
			m.event(Event{Kind: EventOpError, File: name, Level: -1, Err: err})
		}
	}
	ws.mu.Lock()
	delete(ws.files, name)
	ws.mu.Unlock()
	m.meta.remove(name)
	if f.back {
		if err := m.levels[0].backend.Remove(ctx, name); err != nil && !errors.Is(err, storage.ErrNotExist) {
			m.inst.errWrite.Inc()
			m.span(obs.Span{Kind: obs.SpanRemove, File: name, Tier: 0, Err: err, Duration: time.Since(start)})
			return err
		}
	}
	if err := m.source.backend.Remove(ctx, name); err != nil && !errors.Is(err, storage.ErrNotExist) {
		m.inst.errWrite.Inc()
		m.span(obs.Span{Kind: obs.SpanRemove, File: name, Tier: m.source.level, Err: err, Duration: time.Since(start)})
		return err
	}
	m.stats.removes.Inc()
	m.span(obs.Span{Kind: obs.SpanRemove, File: name, Tier: m.source.level, Duration: time.Since(start)})
	return nil
}

// DirtyBytes reports the write-back bytes acked but not yet flushed to
// the PFS (also the monarch_dirty_bytes gauge).
func (m *Monarch) DirtyBytes() int64 {
	if m.writes == nil {
		return 0
	}
	return m.writes.dirtyBytes()
}

// WriteBurstActive reports whether the checkpoint-burst gate currently
// holds background placement copies paused.
func (m *Monarch) WriteBurstActive() bool {
	return m.writes != nil && m.writes.burstActive()
}
