package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv(1)
	var woke Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*time.Second) {
		t.Fatalf("woke at %v, want 5s", woke.Duration())
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	env := NewEnv(1)
	steps := 0
	env.Go("p", func(p *Proc) {
		p.Sleep(0)
		steps++
		p.Sleep(-time.Second)
		steps++
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 2 || env.Now() != 0 {
		t.Fatalf("steps=%d now=%v", steps, env.Now())
	}
}

func TestEventOrderingIsFIFOWithinTimestamp(t *testing.T) {
	env := NewEnv(1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		env.Go(name, func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, name)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("order = %q, want abc", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		env := NewEnv(99)
		defer env.Close()
		var log []string
		r := NewResource(env, "disk", 2)
		for i := 0; i < 5; i++ {
			i := i
			env.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
				d := time.Duration(env.Rand().IntN(1000)) * time.Millisecond
				p.Sleep(d)
				r.Acquire(p, 1)
				p.Sleep(100 * time.Millisecond)
				r.Release(1)
				log = append(log, fmt.Sprintf("w%d@%d", i, env.Now()))
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("non-deterministic runs:\n%v\n%v", a, b)
	}
}

func TestSleepUntilPastIsNow(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		p.Sleep(2 * time.Second)
		p.SleepUntil(Time(time.Second)) // in the past
		if env.Now() != Time(2*time.Second) {
			t.Errorf("now = %v", env.Now())
		}
		p.SleepUntil(Time(3 * time.Second))
		if env.Now() != Time(3*time.Second) {
			t.Errorf("now = %v after SleepUntil", env.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestJoin(t *testing.T) {
	env := NewEnv(1)
	var joined Time
	worker := env.Go("worker", func(p *Proc) { p.Sleep(7 * time.Second) })
	env.Go("joiner", func(p *Proc) {
		p.Join(worker)
		joined = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != Time(7*time.Second) {
		t.Fatalf("joined at %v", joined.Duration())
	}
}

func TestJoinFinishedProcReturnsImmediately(t *testing.T) {
	env := NewEnv(1)
	worker := env.Go("worker", func(p *Proc) {})
	env.Go("joiner", func(p *Proc) {
		p.Sleep(time.Second)
		p.Join(worker) // worker long gone
		if env.Now() != Time(time.Second) {
			t.Errorf("join of finished proc advanced time to %v", env.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAfterCallback(t *testing.T) {
	env := NewEnv(1)
	var at Time
	env.After(3*time.Second, func() { at = env.Now() })
	env.Go("keepalive", func(p *Proc) { p.Sleep(5 * time.Second) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(3*time.Second) {
		t.Fatalf("callback at %v", at.Duration())
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "r", 1)
	env.Go("hog", func(p *Proc) {
		r.Acquire(p, 1)
		// never releases, never finishes: waits on an event nobody fires
		NewEvent(env).Wait(p)
	})
	env.Go("starved", func(p *Proc) { r.Acquire(p, 1) })
	err := env.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "starved") {
		t.Fatalf("deadlock report should name parked procs: %v", err)
	}
	env.Close()
}

func TestProcPanicPropagates(t *testing.T) {
	env := NewEnv(1)
	env.Go("bomber", func(p *Proc) {
		p.Sleep(time.Second)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if !strings.Contains(fmt.Sprint(r), "bomber") || !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("panic lost context: %v", r)
		}
		env.Close()
	}()
	_ = env.Run()
}

func TestDaemonsDoNotBlockCompletion(t *testing.T) {
	env := NewEnv(1)
	ticks := 0
	env.GoDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	env.Go("main", func(p *Proc) { p.Sleep(3500 * time.Millisecond) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Fatalf("daemon ticked %d times, want 3", ticks)
	}
	env.Close()
}

func TestCloseTerminatesParkedProcs(t *testing.T) {
	env := NewEnv(1)
	env.GoDaemon("d", func(p *Proc) {
		for {
			p.Sleep(time.Hour)
		}
	})
	env.Go("m", func(p *Proc) {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Close()
	env.Close() // idempotent
}

func TestResourceFIFOAndCapacity(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "disk", 2)
	var order []string
	work := func(name string, hold time.Duration) {
		env.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name+"+")
			p.Sleep(hold)
			r.Release(1)
			order = append(order, name+"-")
		})
	}
	work("a", 10*time.Second)
	work("b", 1*time.Second)
	work("c", 1*time.Second) // must wait for b (capacity 2)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, " ")
	want := "a+ b+ b- c+ c- a-"
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestResourceNoOvertaking(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "r", 4)
	var order []string
	env.Go("big-holder", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(10 * time.Second)
		r.Release(3)
	})
	env.Go("wants-three", func(p *Proc) {
		p.Sleep(time.Second)
		r.Acquire(p, 3) // only 1 free: waits
		order = append(order, "three")
		r.Release(3)
	})
	env.Go("wants-one", func(p *Proc) {
		p.Sleep(2 * time.Second)
		r.Acquire(p, 1) // would fit, but FIFO forbids overtaking
		order = append(order, "one")
		r.Release(1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "three,one" {
		t.Fatalf("FIFO violated: %v", order)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "r", 1)
	env.Go("p", func(p *Proc) {
		if !r.TryAcquire(1) {
			t.Error("first TryAcquire should succeed")
		}
		if r.TryAcquire(1) {
			t.Error("second TryAcquire should fail")
		}
		r.Release(1)
		if !r.TryAcquire(1) {
			t.Error("TryAcquire after release should succeed")
		}
		r.Release(1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceUtilization(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "gpu", 2)
	env.Go("u", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(5 * time.Second)
		r.Release(2)
		p.Sleep(5 * time.Second)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Utilization(); got < 0.49 || got > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", got)
	}
}

func TestResourceUse(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "r", 1)
	env.Go("p", func(p *Proc) {
		r.Use(p, 1, func() {
			if r.InUse() != 1 {
				t.Error("resource not held inside Use")
			}
			p.Sleep(time.Second)
		})
		if r.InUse() != 0 {
			t.Error("resource not released after Use")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceMisusePanics(t *testing.T) {
	env := NewEnv(1)
	r := NewResource(env, "r", 1)
	env.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("over-release should panic")
			}
		}()
		r.Release(1)
	})
	defer func() { recover(); env.Close() }()
	_ = env.Run()
}

func TestWaitGroup(t *testing.T) {
	env := NewEnv(1)
	wg := NewWaitGroup(env)
	finished := 0
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		env.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i+1) * time.Second)
			finished++
			wg.Done()
		})
	}
	env.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		if finished != 3 {
			t.Errorf("waiter released with %d finished", finished)
		}
		if env.Now() != Time(3*time.Second) {
			t.Errorf("waiter released at %v", env.Now().Duration())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	env := NewEnv(1)
	wg := NewWaitGroup(env)
	env.Go("p", func(p *Proc) {
		wg.Wait(p) // returns immediately
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventBroadcast(t *testing.T) {
	env := NewEnv(1)
	ev := NewEvent(env)
	released := 0
	for i := 0; i < 3; i++ {
		env.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			ev.Wait(p)
			released++
		})
	}
	env.Go("firer", func(p *Proc) {
		p.Sleep(time.Second)
		ev.Fire()
		ev.Fire() // idempotent
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if released != 3 || !ev.Fired() {
		t.Fatalf("released=%d fired=%v", released, ev.Fired())
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	env := NewEnv(1)
	ev := NewEvent(env)
	ev.Fire()
	env.Go("late", func(p *Proc) {
		ev.Wait(p)
		if env.Now() != 0 {
			t.Error("late waiter should not block")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestContextCarriesProc(t *testing.T) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		ctx := p.Context()
		got, ok := ProcFromContext(ctx)
		if !ok || got != p {
			t.Error("context did not round-trip the proc")
		}
		if MustProc(ctx) != p {
			t.Error("MustProc mismatch")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMustProcPanicsWithoutProc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustProc(nilCtx())
}

func nilCtx() (ctx interface {
	Value(any) any
	Deadline() (time.Time, bool)
	Done() <-chan struct{}
	Err() error
}) {
	return backgroundCtx{}
}

type backgroundCtx struct{}

func (backgroundCtx) Value(any) any               { return nil }
func (backgroundCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (backgroundCtx) Done() <-chan struct{}       { return nil }
func (backgroundCtx) Err() error                  { return nil }

func TestTimeConversions(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Duration() != 1500*time.Millisecond {
		t.Fatalf("Duration = %v", tm.Duration())
	}
}

func TestYield(t *testing.T) {
	env := NewEnv(1)
	var order []string
	env.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	env.Go("b", func(p *Proc) { order = append(order, "b") })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a1,b,a2" {
		t.Fatalf("order = %v", order)
	}
}

func BenchmarkSleepWakeCycle(b *testing.B) {
	env := NewEnv(1)
	env.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkResourceContention(b *testing.B) {
	env := NewEnv(1)
	r := NewResource(env, "r", 4)
	per := b.N/8 + 1
	for w := 0; w < 8; w++ {
		env.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
			for i := 0; i < per; i++ {
				r.Acquire(p, 1)
				p.Sleep(time.Microsecond)
				r.Release(1)
			}
		})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}
