package sim

import (
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q", 0)
	var got []int
	env.Go("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			q.Put(p, i)
		}
		q.Close()
	})
	env.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestQueueBoundedBlocksProducer(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q", 2)
	var thirdPutAt Time
	env.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // blocks until consumer gets one
		thirdPutAt = env.Now()
		q.Close()
	})
	env.Go("consumer", func(p *Proc) {
		p.Sleep(5 * time.Second)
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if thirdPutAt != Time(5*time.Second) {
		t.Fatalf("third put completed at %v, want 5s", thirdPutAt.Duration())
	}
	if q.PeakLen() != 2 {
		t.Fatalf("peak = %d, want 2", q.PeakLen())
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[string](env, "q", 0)
	var gotAt Time
	env.Go("consumer", func(p *Proc) {
		v, ok := q.Get(p)
		gotAt = env.Now()
		if !ok || v != "x" {
			t.Errorf("got %q/%v", v, ok)
		}
	})
	env.Go("producer", func(p *Proc) {
		p.Sleep(3 * time.Second)
		q.Put(p, "x")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt != Time(3*time.Second) {
		t.Fatalf("got at %v", gotAt.Duration())
	}
}

func TestQueueCloseDrainsBufferedItems(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q", 0)
	var got []int
	env.Go("p", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Close()
		for {
			v, ok := q.Get(p)
			if !ok {
				break
			}
			got = append(got, v)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("drained %d items, want 2", len(got))
	}
}

func TestQueueCloseReleasesBlockedGetters(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q", 0)
	released := 0
	for i := 0; i < 3; i++ {
		env.Go("getter", func(p *Proc) {
			if _, ok := q.Get(p); ok {
				t.Error("expected ok=false from closed empty queue")
			}
			released++
		})
	}
	env.Go("closer", func(p *Proc) {
		p.Sleep(time.Second)
		q.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if released != 3 {
		t.Fatalf("released = %d", released)
	}
}

func TestQueuePutOnClosedPanics(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q", 0)
	q.Close()
	env.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		q.Put(p, 1)
	})
	defer func() { recover(); env.Close() }()
	_ = env.Run()
}

func TestQueueTryPut(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q", 1)
	env.Go("p", func(p *Proc) {
		if !q.TryPut(1) {
			t.Error("TryPut into empty bounded queue failed")
		}
		if q.TryPut(2) {
			t.Error("TryPut into full queue succeeded")
		}
		q.Get(p)
		if !q.TryPut(3) {
			t.Error("TryPut after drain failed")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueCounters(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env, "q", 0)
	env.Go("p", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Get(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Puts() != 2 || q.Gets() != 1 || q.Len() != 1 {
		t.Fatalf("puts/gets/len = %d/%d/%d", q.Puts(), q.Gets(), q.Len())
	}
}

func TestQueueMultipleProducersConsumers(t *testing.T) {
	env := NewEnv(7)
	q := NewQueue[int](env, "q", 4)
	wg := NewWaitGroup(env)
	const producers, items = 4, 50
	for i := 0; i < producers; i++ {
		wg.Add(1)
		env.Go("prod", func(p *Proc) {
			defer wg.Done()
			for j := 0; j < items; j++ {
				p.Sleep(time.Duration(env.Rand().IntN(10)) * time.Millisecond)
				q.Put(p, 1)
			}
		})
	}
	env.Go("closer", func(p *Proc) {
		wg.Wait(p)
		q.Close()
	})
	total := 0
	for i := 0; i < 3; i++ {
		env.Go("cons", func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				total += v
				p.Sleep(time.Millisecond)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if total != producers*items {
		t.Fatalf("consumed %d, want %d", total, producers*items)
	}
}
