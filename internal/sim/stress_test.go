package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// TestPropertyResourceInvariants drives a resource with randomised
// workloads and checks that in-use never exceeds capacity and that the
// busy-time integral stays within [0, 1].
func TestPropertyResourceInvariants(t *testing.T) {
	err := quick.Check(func(capRaw uint8, workers uint8, steps uint8, seed uint16) bool {
		capacity := int(capRaw%8) + 1
		nworkers := int(workers%12) + 1
		nsteps := int(steps%20) + 1

		env := NewEnv(uint64(seed))
		defer env.Close()
		r := NewResource(env, "r", capacity)
		violated := false
		for w := 0; w < nworkers; w++ {
			env.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
				for s := 0; s < nsteps; s++ {
					n := env.Rand().IntN(capacity) + 1
					r.Acquire(p, n)
					if r.InUse() > capacity || r.InUse() < n {
						violated = true
					}
					p.Sleep(time.Duration(env.Rand().IntN(1000)) * time.Microsecond)
					r.Release(n)
				}
			})
		}
		if err := env.Run(); err != nil {
			t.Log(err)
			return false
		}
		if violated {
			return false
		}
		u := r.Utilization()
		return u >= 0 && u <= 1.0000001 && r.InUse() == 0
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStressManyProcesses runs a thousand interleaved processes over
// shared queues and resources — a scaled-down version of what a
// full-size experiment does — and checks conservation.
func TestStressManyProcesses(t *testing.T) {
	env := NewEnv(42)
	defer env.Close()
	const producers, itemsPer = 500, 20
	q := NewQueue[int](env, "q", 32)
	r := NewResource(env, "shared", 3)
	wg := NewWaitGroup(env)
	for i := 0; i < producers; i++ {
		wg.Add(1)
		env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			defer wg.Done()
			for j := 0; j < itemsPer; j++ {
				r.Acquire(p, 1)
				p.Sleep(time.Duration(env.Rand().IntN(50)) * time.Microsecond)
				r.Release(1)
				q.Put(p, 1)
			}
		})
	}
	env.Go("closer", func(p *Proc) {
		wg.Wait(p)
		q.Close()
	})
	consumed := 0
	for c := 0; c < 8; c++ {
		env.Go(fmt.Sprintf("c%d", c), func(p *Proc) {
			for {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				consumed += v
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if consumed != producers*itemsPer {
		t.Fatalf("consumed %d, want %d", consumed, producers*itemsPer)
	}
}

// TestStressDeterminismUnderChurn replays a chaotic workload twice and
// requires identical final clocks — the core guarantee every experiment
// rests on.
func TestStressDeterminismUnderChurn(t *testing.T) {
	run := func() Time {
		env := NewEnv(99)
		defer env.Close()
		r := NewResource(env, "r", 2)
		q := NewQueue[int](env, "q", 4)
		ev := NewEvent(env)
		for i := 0; i < 50; i++ {
			i := i
			env.Go(fmt.Sprintf("a%d", i), func(p *Proc) {
				p.Sleep(time.Duration(env.Rand().IntN(5000)) * time.Microsecond)
				r.Acquire(p, 1)
				p.Sleep(time.Duration(env.Rand().IntN(500)) * time.Microsecond)
				r.Release(1)
				if i%7 == 0 {
					ev.Fire()
				}
				q.Put(p, i)
			})
		}
		env.Go("drain", func(p *Proc) {
			ev.Wait(p)
			for n := 0; n < 50; n++ {
				q.Get(p)
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return env.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a.Duration(), b.Duration())
	}
}

// TestManySequentialEnvsDoNotLeak builds and closes many environments
// with daemons; if Close leaked goroutines this would blow up the
// runtime (the count is asserted only loosely via completion).
func TestManySequentialEnvsDoNotLeak(t *testing.T) {
	for i := 0; i < 200; i++ {
		env := NewEnv(uint64(i))
		env.GoDaemon("d", func(p *Proc) {
			for {
				p.Sleep(time.Second)
			}
		})
		env.Go("m", func(p *Proc) { p.Sleep(3 * time.Second) })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		env.Close()
	}
}
