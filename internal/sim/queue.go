package sim

// Queue is a bounded FIFO channel on virtual time. It models the
// hand-off buffers of a data-loading pipeline: interleave outputs,
// prefetch buffers, batch queues. A capacity of 0 means unbounded.
type Queue[T any] struct {
	env     *Env
	name    string
	cap     int
	items   []T
	closed  bool
	getters []*Proc
	putters []*Proc
	puts    int
	gets    int
	// peakLen tracks the high-water mark for pipeline diagnostics.
	peakLen int
}

// NewQueue creates a queue with the given capacity (0 = unbounded).
func NewQueue[T any](env *Env, name string, capacity int) *Queue[T] {
	if capacity < 0 {
		panic("sim: negative queue capacity")
	}
	return &Queue[T]{env: env, name: name, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// PeakLen returns the high-water mark of the buffer.
func (q *Queue[T]) PeakLen() int { return q.peakLen }

// Puts returns the total number of items ever enqueued.
func (q *Queue[T]) Puts() int { return q.puts }

// Gets returns the total number of items ever dequeued.
func (q *Queue[T]) Gets() int { return q.gets }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

func (q *Queue[T]) full() bool { return q.cap > 0 && len(q.items) >= q.cap }

// Put enqueues v, blocking p while the queue is full. Putting into a
// closed queue panics, as with Go channels.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.full() {
		if q.closed {
			panic("sim: put on closed queue " + q.name)
		}
		q.putters = append(q.putters, p)
		p.park("queue put " + q.name)
	}
	if q.closed {
		panic("sim: put on closed queue " + q.name)
	}
	q.items = append(q.items, v)
	if len(q.items) > q.peakLen {
		q.peakLen = len(q.items)
	}
	q.puts++
	q.wakeOneGetter()
}

// TryPut enqueues without blocking; reports whether it succeeded.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || q.full() {
		return false
	}
	q.items = append(q.items, v)
	if len(q.items) > q.peakLen {
		q.peakLen = len(q.items)
	}
	q.puts++
	q.wakeOneGetter()
	return true
}

// Get dequeues the oldest item, blocking p while the queue is empty.
// ok is false if and only if the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return v, false
		}
		q.getters = append(q.getters, p)
		p.park("queue get " + q.name)
	}
	v = q.items[0]
	// Shift rather than reslice so the backing array does not pin
	// already-consumed items; queues are short so O(n) is fine.
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	q.gets++
	q.wakeOnePutter()
	return v, true
}

// Close marks the queue closed and wakes all blocked getters. Items
// already buffered remain retrievable.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, p := range q.getters {
		q.env.wake(p)
	}
	q.getters = nil
	for _, p := range q.putters {
		// Blocked putters will panic on resume, matching channel
		// semantics for send-on-closed. In practice pipelines close
		// queues only after their producers have finished.
		q.env.wake(p)
	}
	q.putters = nil
}

func (q *Queue[T]) wakeOneGetter() {
	if len(q.getters) > 0 {
		p := q.getters[0]
		q.getters = q.getters[1:]
		q.env.wake(p)
	}
}

func (q *Queue[T]) wakeOnePutter() {
	if len(q.putters) > 0 {
		p := q.putters[0]
		q.putters = q.putters[1:]
		q.env.wake(p)
	}
}
