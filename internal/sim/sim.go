// Package sim implements a deterministic discrete-event simulator used
// as the substrate for MONARCH's experimental evaluation.
//
// The paper measures wall-clock training time on a Frontera compute
// node; we reproduce the experiments on a virtual clock instead.
// Processes are ordinary goroutines, but exactly one runs at a time:
// the scheduler resumes the process owning the earliest event, waits
// for it to park (sleep, resource wait, queue wait) or finish, then
// advances the clock to the next event. Ties are broken by scheduling
// sequence number, which makes every run exactly reproducible from its
// RNG seed.
//
// The engine provides the primitives the storage and pipeline models
// need: Sleep, capacity Resources with FIFO admission, bounded Queues
// (the prefetch buffers of a tf.data pipeline), WaitGroups, and Events.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"monarch/internal/rng"
)

// Time is virtual nanoseconds since the start of the simulation.
type Time int64

// Seconds converts a virtual timestamp to seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts a virtual timestamp to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

type event struct {
	at   Time
	seq  uint64
	proc *Proc  // wake this parked process ...
	fn   func() // ... or run this callback inline
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus an event queue.
// An Env must be created with NewEnv and is not safe for concurrent use
// from goroutines other than its own processes.
type Env struct {
	now     Time
	events  eventHeap
	seq     uint64
	parked  chan struct{} // the running process yielded or finished
	running *Proc

	live       map[*Proc]struct{}
	nonDaemons int
	closed     bool
	panicVal   any
	panicProc  string

	rng *rng.Source
}

// NewEnv returns an environment whose random streams derive from seed.
func NewEnv(seed uint64) *Env {
	return &Env{
		parked: make(chan struct{}),
		live:   make(map[*Proc]struct{}),
		rng:    rng.New(seed),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's root random source. Subsystems should
// call Rand().Split() once at construction to obtain private streams.
func (e *Env) Rand() *rng.Source { return e.rng }

func (e *Env) schedule(at Time, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, proc: p, fn: fn})
}

// After runs fn at the given delay from now, inline in the scheduler.
// fn must not block; use Go for blocking work.
func (e *Env) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+Time(d), nil, fn)
}

// Proc is a simulated process. All blocking operations on a Proc must be
// invoked from the goroutine running that process.
type Proc struct {
	env     *Env
	name    string
	resume  chan struct{}
	state   string // where the process is parked, for deadlock reports
	daemon  bool
	done    bool
	joiners []*Proc
	ctx     context.Context
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment this process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Context returns a context carrying this process, suitable for passing
// into ctx-based APIs (storage backends) that charge virtual time.
func (p *Proc) Context() context.Context {
	if p.ctx == nil {
		p.ctx = WithProc(context.Background(), p)
	}
	return p.ctx
}

// Go spawns a process executing fn. The process starts at the current
// virtual time, after already-scheduled events at that time.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, false, fn)
}

// GoDaemon spawns a background process that does not keep Run alive:
// the simulation completes when all non-daemon processes have finished.
// Daemons are forcibly terminated by Close.
func (e *Env) GoDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, true, fn)
}

func (e *Env) spawn(name string, daemon bool, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: spawn on closed Env")
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{}), daemon: daemon, state: "starting"}
	e.live[p] = struct{}{}
	if !daemon {
		e.nonDaemons++
	}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && e.panicVal == nil {
				e.panicVal = r
				e.panicProc = p.name
			}
			p.finish()
			e.parked <- struct{}{}
		}()
		if !e.closed {
			fn(p)
		}
	}()
	e.schedule(e.now, p, nil)
	return p
}

// finish marks the process done and wakes joiners. Runs on the process
// goroutine while it still holds the "running" token.
func (p *Proc) finish() {
	e := p.env
	p.done = true
	delete(e.live, p)
	if !p.daemon {
		e.nonDaemons--
	}
	for _, j := range p.joiners {
		e.schedule(e.now, j, nil)
	}
	p.joiners = nil
}

// park yields control to the scheduler until another event resumes this
// process. reason is surfaced in deadlock reports.
func (p *Proc) park(reason string) {
	p.state = reason
	p.env.running = nil
	p.env.parked <- struct{}{}
	<-p.resume
	if p.env.closed {
		// Close is tearing the environment down; unwind this goroutine.
		// runtime.Goexit still runs the spawn defer, which hands the
		// token back to Close.
		runtime.Goexit()
	}
	p.state = "running"
}

// Sleep advances this process's local time by d.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+Time(d), p, nil)
	p.park("sleeping")
}

// SleepUntil sleeps until the given virtual timestamp; if it is in the
// past the process continues immediately (after pending events at now).
func (p *Proc) SleepUntil(t Time) {
	if t < p.env.now {
		t = p.env.now
	}
	p.env.schedule(t, p, nil)
	p.park("sleeping")
}

// Yield reschedules the process after all other events at the current
// timestamp.
func (p *Proc) Yield() {
	p.env.schedule(p.env.now, p, nil)
	p.park("yielding")
}

// Join blocks until target finishes. Joining a finished process returns
// immediately.
func (p *Proc) Join(target *Proc) {
	if target.done {
		return
	}
	target.joiners = append(target.joiners, p)
	p.park("joining " + target.name)
}

// wake schedules p to resume at the current time (FIFO after pending
// events at this timestamp).
func (e *Env) wake(p *Proc) { e.schedule(e.now, p, nil) }

// Run executes events until no runnable work remains or all non-daemon
// processes have finished. It returns an error if parked processes
// remain with an empty event queue (deadlock), or re-panics a process
// panic with its origin attached.
func (e *Env) Run() error {
	if e.closed {
		return fmt.Errorf("sim: Run on closed Env")
	}
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		p := ev.proc
		if p.done {
			continue // stale wakeup for a finished process
		}
		e.running = p
		p.resume <- struct{}{}
		<-e.parked
		e.running = nil
		if e.panicVal != nil {
			v, proc := e.panicVal, e.panicProc
			e.panicVal = nil
			panic(fmt.Sprintf("sim: process %q panicked: %v", proc, v))
		}
		if e.nonDaemons == 0 {
			return nil
		}
	}
	if e.nonDaemons > 0 {
		return fmt.Errorf("sim: deadlock at t=%v: %s", e.now.Duration(), e.describeParked())
	}
	return nil
}

func (e *Env) describeParked() string {
	var names []string
	for p := range e.live {
		if !p.daemon {
			names = append(names, fmt.Sprintf("%s(%s)", p.name, p.state))
		}
	}
	sort.Strings(names)
	return fmt.Sprintf("%d process(es) parked: %v", len(names), names)
}

// Close terminates all remaining processes (daemons included) and
// releases their goroutines. The environment is unusable afterwards.
// Close is idempotent.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for len(e.live) > 0 {
		var p *Proc
		for q := range e.live {
			p = q
			break
		}
		p.resume <- struct{}{}
		<-e.parked
	}
	e.events = nil
}

type procCtxKey struct{}

// WithProc attaches a process to a context so virtual-time-charging code
// (simulated storage devices) can find the caller.
func WithProc(ctx context.Context, p *Proc) context.Context {
	return context.WithValue(ctx, procCtxKey{}, p)
}

// ProcFromContext extracts the process previously attached by WithProc.
func ProcFromContext(ctx context.Context) (*Proc, bool) {
	p, ok := ctx.Value(procCtxKey{}).(*Proc)
	return p, ok
}

// MustProc extracts the process from ctx or panics: the simulated
// storage path cannot meaningfully execute outside a sim process.
func MustProc(ctx context.Context) *Proc {
	p, ok := ProcFromContext(ctx)
	if !ok {
		panic("sim: context does not carry a simulation process")
	}
	return p
}
