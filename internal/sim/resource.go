package sim

import (
	"fmt"

	"monarch/internal/stats"
)

// Resource models a capacity-limited server (disk channels, CPU cores,
// GPUs, metadata servers). Admission is strictly FIFO: a request never
// overtakes an earlier one even if the earlier request needs more units.
// This mirrors a device queue and keeps the simulation fair and
// deterministic.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []resWaiter
	util     *stats.Utilization
}

type resWaiter struct {
	proc    *Proc
	n       int
	granted bool
}

// NewResource creates a resource with the given capacity. Utilisation is
// tracked from the first acquisition.
func NewResource(env *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive", name))
	}
	u := stats.NewUtilization(capacity)
	u.Set(int64(env.Now()), 0)
	return &Resource{env: env, name: name, capacity: capacity, util: u}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Utilization returns the average fraction of capacity busy up to the
// current virtual time.
func (r *Resource) Utilization() float64 {
	return r.util.Average(int64(r.env.Now()))
}

// Acquire blocks p until n units are available and FIFO order admits it.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of %d from %q", n, r.capacity, r.name))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.grant(n)
		return
	}
	idx := len(r.waiters)
	r.waiters = append(r.waiters, resWaiter{proc: p, n: n})
	for {
		p.park("acquiring " + r.name)
		if r.waiterGranted(p, idx) {
			return
		}
	}
}

// waiterGranted reports whether p's waiter entry (searched by identity,
// index is only a starting hint) has been granted and removes it.
func (r *Resource) waiterGranted(p *Proc, hint int) bool {
	for i := range r.waiters {
		if r.waiters[i].proc == p {
			if !r.waiters[i].granted {
				return false
			}
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			return true
		}
	}
	panic("sim: woken waiter missing from " + r.name)
}

// TryAcquire acquires n units if immediately available, without queuing.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.capacity {
		return false
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.grant(n)
		return true
	}
	return false
}

// Release returns n units and admits as many queued waiters as now fit,
// in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: release %d with %d in use on %q", n, r.inUse, r.name))
	}
	r.inUse -= n
	r.util.Set(int64(r.env.Now()), r.inUse)
	for i := range r.waiters {
		w := &r.waiters[i]
		if w.granted {
			continue
		}
		if r.inUse+w.n > r.capacity {
			break // strict FIFO: do not let later small requests overtake
		}
		r.grant(w.n)
		w.granted = true
		r.env.wake(w.proc)
	}
}

func (r *Resource) grant(n int) {
	r.inUse += n
	r.util.Set(int64(r.env.Now()), r.inUse)
}

// Use acquires n units, runs the process for duration d, and releases.
// It is the common "serve a request" idiom for device models.
func (r *Resource) Use(p *Proc, n int, fn func()) {
	r.Acquire(p, n)
	defer r.Release(n)
	fn()
}

// WaitGroup mirrors sync.WaitGroup on virtual time.
type WaitGroup struct {
	env     *Env
	count   int
	waiters []*Proc
}

// NewWaitGroup returns an empty wait group.
func NewWaitGroup(env *Env) *WaitGroup { return &WaitGroup{env: env} }

// Add adjusts the counter by delta, waking waiters when it hits zero.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		for _, p := range wg.waiters {
			wg.env.wake(p)
		}
		wg.waiters = nil
	}
}

// Done decrements the counter.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, p)
		p.park("waitgroup")
	}
}

// Event is a one-shot broadcast: processes Wait until someone Fires.
type Event struct {
	env     *Env
	fired   bool
	waiters []*Proc
}

// NewEvent returns an unfired event.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Fired reports whether Fire has been called.
func (ev *Event) Fired() bool { return ev.fired }

// Fire wakes all current and future waiters. Firing twice is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, p := range ev.waiters {
		ev.env.wake(p)
	}
	ev.waiters = nil
}

// Wait parks p until the event fires; returns immediately if already
// fired.
func (ev *Event) Wait(p *Proc) {
	for !ev.fired {
		ev.waiters = append(ev.waiters, p)
		p.park("event")
	}
}
