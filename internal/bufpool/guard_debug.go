//go:build debug

package bufpool

import (
	"fmt"
	"sync"
)

// Debug builds (go test -tags debug ./internal/bufpool/) trade hot-path
// speed for misuse detection:
//
//   - Get zeroes every buffer, so a caller reading bytes it never wrote
//     sees deterministic zeros instead of another request's stale data;
//   - Put poisons the buffer with 0xDB, so use-after-Put reads are
//     recognizable at a glance;
//   - Put panics when the same buffer is already sitting in the pool
//     (double Put), the bug that would otherwise surface later as two
//     goroutines "owning" one buffer.
//
// The outstanding-buffer registry is keyed by the backing array's first
// byte; a class-capacity buffer always has cap > 0.

var (
	trackMu sync.Mutex
	pooled  = make(map[*byte]struct{}) // backing arrays currently inside the pool
)

func onGet(b []byte) {
	trackMu.Lock()
	delete(pooled, &b[:1][0])
	trackMu.Unlock()
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0
	}
}

func onPut(b []byte) {
	key := &b[0]
	trackMu.Lock()
	_, dup := pooled[key]
	if !dup {
		pooled[key] = struct{}{}
	}
	trackMu.Unlock()
	if dup {
		panic(fmt.Sprintf("bufpool: double Put of %p (cap %d)", key, cap(b)))
	}
	for i := range b {
		b[i] = 0xDB
	}
}
