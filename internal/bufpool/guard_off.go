//go:build !debug

package bufpool

// Release builds: no misuse checking on the hot path. Get hands out
// whatever bytes the recycled buffer held (callers overwrite before
// reading, per the package contract) and Put does no poisoning or
// double-Put tracking.

func onGet(b []byte) {}

func onPut(b []byte) {}
