//go:build debug

package bufpool

import "testing"

// These tests exercise the -tags debug misuse guards; make test runs
// them via `go test -tags debug ./internal/bufpool/`.

// TestDebugGetZeroed: debug Gets always hand out zeroed bytes, even
// when the buffer was dirtied before recycling.
func TestDebugGetZeroed(t *testing.T) {
	for round := 0; round < 4; round++ {
		b := Get(4096)
		for i := range b {
			if b[i] != 0 {
				t.Fatalf("round %d: byte %d = %#x, want 0", round, i, b[i])
			}
		}
		for i := range b {
			b[i] = 0xFF
		}
		Put(b)
	}
}

// TestDebugPutPoisons: after Put, a retained alias sees the 0xDB
// poison pattern, so use-after-Put is recognizable.
func TestDebugPutPoisons(t *testing.T) {
	b := Get(512)
	alias := b
	Put(b)
	for i := range alias {
		if alias[i] != 0xDB {
			t.Fatalf("byte %d = %#x after Put, want 0xDB poison", i, alias[i])
		}
	}
	// Drain the buffer back out so later tests' double-Put tracking
	// starts clean.
	Get(512)
}

// TestDebugDoublePutPanics: returning the same buffer twice is the
// misuse the debug build refuses to let slide.
func TestDebugDoublePutPanics(t *testing.T) {
	b := Get(1024)
	Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put of the same buffer did not panic")
		}
		// Leave the pool consistent for any tests that follow.
		Get(1024)
	}()
	Put(b)
}
