package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {512, 0}, {513, 1}, {1024, 1},
		{64 << 10, classOf(64 << 10)}, {MaxPooled, numClasses - 1},
		{MaxPooled + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if classOf(512) != 0 || classOf(1024) != 1 || classOf(MaxPooled) != numClasses-1 {
		t.Errorf("classOf size-class mismatch: %d %d %d", classOf(512), classOf(1024), classOf(MaxPooled))
	}
	for _, bad := range []int{0, 1, 511, 768, MaxPooled * 2} {
		if got := classOf(bad); got != -1 {
			t.Errorf("classOf(%d) = %d, want -1", bad, got)
		}
	}
}

// TestGetLength pins the length contract: Get(n) is always exactly n
// bytes long, with the capacity rounded up to the size class (oversize
// requests get exact capacity and are never recycled).
func TestGetLength(t *testing.T) {
	for _, n := range []int{1, 7, 512, 513, 4096, 64 << 10, 256 << 10, MaxPooled, MaxPooled + 1} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len %d", n, len(b))
		}
		if n <= MaxPooled {
			if c := cap(b); c&(c-1) != 0 || c < n {
				t.Fatalf("Get(%d): cap %d not a size class", n, c)
			}
		}
		Put(b)
	}
	if b := Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	if b := Get(-3); b != nil {
		t.Fatalf("Get(-3) = %v, want nil", b)
	}
}

// TestStatsBalance pins the accounting identity the leak checks rely
// on: after every Get has been answered by a Put, Gets == Puts +
// Discards (oversize buffers are discarded, class buffers recycled).
func TestStatsBalance(t *testing.T) {
	before := Snapshot()
	bufs := make([][]byte, 0, 64)
	for i := 0; i < 32; i++ {
		bufs = append(bufs, Get(1<<uint(9+i%6)), Get(MaxPooled+1))
	}
	for _, b := range bufs {
		Put(b)
	}
	after := Snapshot()
	gets := after.Gets - before.Gets
	puts := after.Puts - before.Puts
	disc := after.Discards - before.Discards
	if gets != 64 {
		t.Fatalf("Gets delta %d, want 64", gets)
	}
	if puts+disc != gets {
		t.Fatalf("Puts %d + Discards %d != Gets %d", puts, disc, gets)
	}
	if disc != 32 {
		t.Fatalf("Discards delta %d, want 32 (one per oversize Put)", disc)
	}
}

// TestPutForeign: slices that never came from Get are dropped, not
// recycled — cap not a size class.
func TestPutForeign(t *testing.T) {
	before := Snapshot()
	Put(make([]byte, 100))
	Put(nil)
	Put([]byte{})
	after := Snapshot()
	if d := after.Discards - before.Discards; d != 1 {
		t.Fatalf("Discards delta %d, want 1 (nil/empty Puts are no-ops)", d)
	}
	if p := after.Puts - before.Puts; p != 0 {
		t.Fatalf("Puts delta %d, want 0", p)
	}
}

// TestReslicedPut: a Get buffer re-sliced shorter still recycles (Put
// keys on capacity, not length).
func TestReslicedPut(t *testing.T) {
	before := Snapshot()
	b := Get(4096)
	Put(b[:10])
	after := Snapshot()
	if p := after.Puts - before.Puts; p != 1 {
		t.Fatalf("Puts delta %d, want 1", p)
	}
}

// TestConcurrent hammers Get/Put from many goroutines and checks the
// balance identity afterwards — mostly a race-detector target.
func TestConcurrent(t *testing.T) {
	before := Snapshot()
	var wg sync.WaitGroup
	const workers, rounds = 16, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := 1 << uint(9+(w+i)%10)
				b := Get(n)
				b[0], b[n-1] = byte(w), byte(i)
				if b[0] != byte(w) || b[n-1] != byte(i) {
					t.Errorf("buffer not writable")
					return
				}
				Put(b)
			}
		}(w)
	}
	wg.Wait()
	after := Snapshot()
	gets := after.Gets - before.Gets
	puts := after.Puts - before.Puts
	disc := after.Discards - before.Discards
	if gets != workers*rounds {
		t.Fatalf("Gets delta %d, want %d", gets, workers*rounds)
	}
	if puts+disc != gets {
		t.Fatalf("Puts %d + Discards %d != Gets %d", puts, disc, gets)
	}
}
