// Package bufpool provides size-classed reusable byte buffers for the
// hot I/O paths: chunk-copy staging, peernet frame payloads, probe
// scratch. Buffers are recycled through per-class sync.Pools, so a
// steady-state read or placement loop stops paying an allocation (and
// the GC pressure of a short-lived multi-megabyte slice) per
// operation.
//
// Ownership rules:
//
//   - Get(n) returns a slice of length exactly n whose contents are
//     UNSPECIFIED — callers must overwrite before reading. (Builds with
//     -tags debug zero every Get so stale-data bugs surface as zeros,
//     and poison every Put so use-after-Put surfaces as 0xDB.)
//   - The caller that Gets a buffer owns it until it Puts it back;
//     passing ownership along with the slice is fine, sharing it after
//     Put is not.
//   - Put accepts only slices whose capacity is exactly one of the
//     pool's size classes (i.e. slices that came from Get, possibly
//     re-sliced shorter). Anything else is counted as a discard and
//     dropped, never recycled — so feeding a foreign slice in is safe,
//     just pointless.
//   - Put(nil) and Put of an empty slice are no-ops.
//
// Size classes are the powers of two from 512 B to 4 MiB, matching the
// repo's working sizes: probe scratch (1 B rounds to 512 B), peernet
// frame payloads (≤4 MiB by protocol limit), and chunk copies (256 KiB
// default). Requests above the largest class fall through to plain
// make and are never recycled.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// pool wraps sync.Pool storing *[]byte, so Get of a pooled buffer
// allocates nothing (the one small box per Put is the price of
// interface boxing; the payload slice itself is what matters).
type pool struct{ p sync.Pool }

func (pl *pool) get() []byte {
	if v := pl.p.Get(); v != nil {
		return *(v.(*[]byte))
	}
	return nil
}

func (pl *pool) put(b []byte) { pl.p.Put(&b) }

const (
	// minClassBits..maxClassBits: 512 B .. 4 MiB.
	minClassBits = 9
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1

	// MaxPooled is the largest request the pool will recycle.
	MaxPooled = 1 << maxClassBits
)

// Stats is a point-in-time snapshot of pool activity. In a quiesced
// system every Get has been answered by exactly one Put or one
// Discard, so Gets == Puts + Discards; the fan-in stress test pins
// that balance. News counts Gets that missed the pool (cold pool,
// post-GC refill, or oversize requests).
type Stats struct {
	Gets     int64 // buffers handed out
	Puts     int64 // buffers recycled
	News     int64 // Gets satisfied by a fresh allocation
	Discards int64 // Puts dropped (capacity not a size class)
}

var (
	classes [numClasses]pool
	gets    atomic.Int64
	puts    atomic.Int64
	news    atomic.Int64
	discard atomic.Int64
)

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n exceeds MaxPooled.
func classFor(n int) int {
	if n > MaxPooled {
		return -1
	}
	c := 0
	for 1<<(minClassBits+c) < n {
		c++
	}
	return c
}

// classOf returns the class whose buffers have exactly capacity c, or
// -1 when c is not a class size.
func classOf(c int) int {
	if c < 1<<minClassBits || c > MaxPooled || c&(c-1) != 0 {
		return -1
	}
	k := 0
	for 1<<(minClassBits+k) < c {
		k++
	}
	return k
}

// Get returns a buffer of length exactly n. Contents are unspecified
// (zeroed under -tags debug); the caller owns the buffer until Put.
// n <= 0 returns nil.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	gets.Add(1)
	c := classFor(n)
	if c < 0 {
		// Oversize: plain allocation, never recycled.
		news.Add(1)
		return make([]byte, n)
	}
	if b := classes[c].get(); b != nil {
		b = b[:n]
		onGet(b)
		return b
	}
	news.Add(1)
	return make([]byte, n, 1<<(minClassBits+c))
}

// Put recycles a buffer obtained from Get. Slices whose capacity is
// not a size class (including oversize Get results) are dropped and
// counted as discards. Put(nil) is a no-op.
func Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := classOf(cap(b))
	if c < 0 {
		discard.Add(1)
		return
	}
	b = b[:cap(b)]
	onPut(b)
	puts.Add(1)
	classes[c].put(b)
}

// Snapshot returns current pool counters.
func Snapshot() Stats {
	return Stats{
		Gets:     gets.Load(),
		Puts:     puts.Load(),
		News:     news.Load(),
		Discards: discard.Load(),
	}
}
