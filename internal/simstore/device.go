// Package simstore models HPC storage devices on the simulation clock:
// a compute node's local SSD and a shared Lustre-like parallel file
// system, the two tiers of the paper's evaluation. It also provides
// Store, a storage.Backend over virtual (size-only) files that charges
// device time for every operation, so the same MONARCH middleware code
// that works on real directories runs unmodified inside experiments.
package simstore

import (
	"math"
	"time"

	"monarch/internal/rng"
	"monarch/internal/sim"
)

// DeviceSpec parameterises a device's service model. A request passes
// two phases:
//
//  1. a setup phase (per-op latency) limited by Channels — this models
//     queue depth / RPC concurrency and overlaps across requests;
//  2. a transfer phase limited by Slots — while holding a slot the
//     request pays PerOpCost plus bytes/Bandwidth. Aggregate device
//     throughput is therefore Slots×Bandwidth, and small requests pay
//     proportionally more per byte, which is exactly the effect that
//     makes MONARCH's large background fetches cheaper per byte than
//     the framework's 256 KiB preads.
type DeviceSpec struct {
	Name string
	// Channels limits concurrently-admitted operations.
	Channels int
	// Slots limits concurrent transfers.
	Slots int
	// ReadLatency / WriteLatency are per-op setup latencies.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// PerOpCost is server time charged per operation inside the slot.
	PerOpCost time.Duration
	// ReadBandwidth / WriteBandwidth are bytes/second while holding a
	// transfer slot.
	ReadBandwidth  float64
	WriteBandwidth float64
	// LatencySigma is the lognormal spread applied to the setup phase
	// and per-op cost (0 = deterministic).
	LatencySigma float64
	// MetaLatency is the per-file cost of metadata operations (stat, or
	// each directory entry during a listing).
	MetaLatency time.Duration
	// MetaSlots limits concurrent metadata operations (the MDS).
	MetaSlots int
	// Duplex gives writes their own transfer slots so reads and writes
	// overlap (local SSD/RAM). Non-duplex devices serialise both
	// directions through the same slots (the shared PFS pipe).
	Duplex bool
}

// Frontera-flavoured presets; values are calibrated in
// internal/experiments/calib.go's documentation and DESIGN.md §5.
func SSDSpec() DeviceSpec {
	return DeviceSpec{
		Name:           "ssd",
		Channels:       8,
		Slots:          1,
		ReadLatency:    80 * time.Microsecond,
		WriteLatency:   60 * time.Microsecond,
		PerOpCost:      10 * time.Microsecond,
		ReadBandwidth:  480 * MiB,
		WriteBandwidth: 400 * MiB,
		LatencySigma:   0.05,
		MetaLatency:    40 * time.Microsecond,
		MetaSlots:      8,
		Duplex:         true,
	}
}

// LustreSpec models the shared PFS: higher latency, per-op server cost,
// an aggregate per-client bandwidth cap, and a slow metadata server.
func LustreSpec() DeviceSpec {
	return DeviceSpec{
		Name:           "lustre",
		Channels:       32,
		Slots:          1,
		ReadLatency:    1200 * time.Microsecond,
		WriteLatency:   1500 * time.Microsecond,
		PerOpCost:      400 * time.Microsecond,
		ReadBandwidth:  440 * MiB,
		WriteBandwidth: 280 * MiB,
		LatencySigma:   0.35,
		MetaLatency:    8 * time.Millisecond,
		MetaSlots:      4,
	}
}

// RAMSpec models a memory-backed tier (the paper's §VI future-work
// hierarchy level).
func RAMSpec() DeviceSpec {
	return DeviceSpec{
		Name:           "ram",
		Channels:       64,
		Slots:          4,
		ReadLatency:    2 * time.Microsecond,
		WriteLatency:   2 * time.Microsecond,
		PerOpCost:      time.Microsecond,
		ReadBandwidth:  8 * GiB,
		WriteBandwidth: 8 * GiB,
		LatencySigma:   0.02,
		MetaLatency:    time.Microsecond,
		MetaSlots:      64,
		Duplex:         true,
	}
}

// Byte-size constants for specs.
const (
	KiB = float64(1 << 10)
	MiB = float64(1 << 20)
	GiB = float64(1 << 30)
)

// Device is a DeviceSpec instantiated in a simulation environment.
type Device struct {
	spec     DeviceSpec
	env      *sim.Env
	channels *sim.Resource
	slots    *sim.Resource
	wslots   *sim.Resource // write slots when Duplex; == slots otherwise
	meta     *sim.Resource
	rnd      *rng.Source
	// interf scales service times; nil means no interference.
	interf *Interference
	// timeline, when set, bins moved bytes over virtual time.
	timeline *Timeline

	readOps, writeOps, metaOps int64
	bytesRead, bytesWritten    int64
}

// NewDevice instantiates spec in env.
func NewDevice(env *sim.Env, spec DeviceSpec) *Device {
	if spec.Channels <= 0 || spec.Slots <= 0 || spec.MetaSlots <= 0 {
		panic("simstore: device concurrency must be positive")
	}
	d := &Device{
		spec:     spec,
		env:      env,
		channels: sim.NewResource(env, spec.Name+"-chan", spec.Channels),
		slots:    sim.NewResource(env, spec.Name+"-xfer", spec.Slots),
		meta:     sim.NewResource(env, spec.Name+"-meta", spec.MetaSlots),
		rnd:      env.Rand().Split(),
	}
	if spec.Duplex {
		d.wslots = sim.NewResource(env, spec.Name+"-wxfer", spec.Slots)
	} else {
		d.wslots = d.slots
	}
	return d
}

// SetInterference attaches an interference process (see Interference).
func (d *Device) SetInterference(i *Interference) { d.interf = i }

// Spec returns the device parameters.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Utilization returns the mean busy fraction of the transfer slots.
func (d *Device) Utilization() float64 { return d.slots.Utilization() }

// Stats returns op and byte totals since construction.
func (d *Device) Stats() (readOps, writeOps, metaOps, bytesRead, bytesWritten int64) {
	return d.readOps, d.writeOps, d.metaOps, d.bytesRead, d.bytesWritten
}

func (d *Device) factor() float64 {
	if d.interf == nil {
		return 1
	}
	return d.interf.Factor()
}

func (d *Device) noisy(base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	v := float64(base)
	if d.spec.LatencySigma > 0 {
		v = d.rnd.LogNormalMean(v, d.spec.LatencySigma)
	}
	return time.Duration(v * d.factor())
}

func xferTime(bytes int64, bw float64) time.Duration {
	if bytes <= 0 || bw <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

func (d *Device) transfer(p *sim.Proc, slots *sim.Resource, setup time.Duration, bytes int64, bw float64) {
	d.channels.Acquire(p, 1)
	p.Sleep(d.noisy(setup))
	slots.Acquire(p, 1)
	d.channels.Release(1)
	p.Sleep(d.noisy(d.spec.PerOpCost) + time.Duration(float64(xferTime(bytes, bw))*d.factor()))
	slots.Release(1)
}

// Read charges one read of the given size to the calling process.
func (d *Device) Read(p *sim.Proc, bytes int64) {
	d.readOps++
	d.bytesRead += bytes
	if d.timeline != nil {
		d.timeline.Add(d.env.Now(), bytes)
	}
	d.transfer(p, d.slots, d.spec.ReadLatency, bytes, d.spec.ReadBandwidth)
}

// Write charges one write of the given size.
func (d *Device) Write(p *sim.Proc, bytes int64) {
	d.writeOps++
	d.bytesWritten += bytes
	if d.timeline != nil {
		d.timeline.Add(d.env.Now(), bytes)
	}
	d.transfer(p, d.wslots, d.spec.WriteLatency, bytes, d.spec.WriteBandwidth)
}

// MetaOp charges n metadata operations executed back-to-back (a stat,
// or an n-entry directory scan).
func (d *Device) MetaOp(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	d.metaOps += int64(n)
	d.meta.Acquire(p, 1)
	for i := 0; i < n; i++ {
		p.Sleep(d.noisy(d.spec.MetaLatency))
	}
	d.meta.Release(1)
}

// Interference models the slowly-varying load other jobs impose on the
// shared PFS. A daemon resamples a multiplicative service-time factor
// with a mean-reverting random walk in log space; vanilla-lustre's
// throughput variability in the paper's Figures 1, 3 and 4 comes from
// exactly this effect.
type Interference struct {
	factor float64
}

// InterferenceConfig parameterises the walk.
type InterferenceConfig struct {
	// Mean is the long-run average factor (1.0 = no average slowdown).
	Mean float64
	// Volatility is the per-step lognormal sigma of the walk.
	Volatility float64
	// Reversion in (0,1] pulls the factor back toward Mean each step.
	Reversion float64
	// Min and Max clamp the factor.
	Min, Max float64
	// Period is the resampling interval in virtual time.
	Period time.Duration
}

// DefaultInterference matches the calibration in DESIGN.md: mild average
// slowdown with occasional multi-x spikes.
func DefaultInterference() InterferenceConfig {
	return InterferenceConfig{
		Mean:       1.02,
		Volatility: 0.30,
		Reversion:  0.15,
		Min:        0.70,
		Max:        4.0,
		Period:     3 * time.Second,
	}
}

// NewInterference starts the interference daemon in env.
func NewInterference(env *sim.Env, cfg InterferenceConfig) *Interference {
	if cfg.Period <= 0 {
		panic("simstore: interference period must be positive")
	}
	itf := &Interference{factor: cfg.Mean}
	src := env.Rand().Split()
	env.GoDaemon("interference", func(p *sim.Proc) {
		// log-space mean-reverting walk (Ornstein-Uhlenbeck flavoured).
		logMean := math.Log(cfg.Mean)
		x := logMean
		for {
			p.Sleep(cfg.Period)
			x += cfg.Reversion*(logMean-x) + src.Normal(0, cfg.Volatility)
			f := math.Exp(x)
			if f < cfg.Min {
				f = cfg.Min
			}
			if f > cfg.Max {
				f = cfg.Max
			}
			itf.factor = f
		}
	})
	return itf
}

// Factor returns the current service-time multiplier.
func (i *Interference) Factor() float64 { return i.factor }
