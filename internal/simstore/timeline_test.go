package simstore

import (
	"testing"
	"time"

	"monarch/internal/sim"
)

func TestTimelineBinning(t *testing.T) {
	tl := NewTimeline(time.Second)
	tl.Add(sim.Time(100*time.Millisecond), 10)
	tl.Add(sim.Time(900*time.Millisecond), 5)
	tl.Add(sim.Time(2500*time.Millisecond), 7)
	if tl.Len() != 3 {
		t.Fatalf("len = %d", tl.Len())
	}
	if tl.Bytes(0) != 15 || tl.Bytes(1) != 0 || tl.Bytes(2) != 7 {
		t.Fatalf("buckets = %v %v %v", tl.Bytes(0), tl.Bytes(1), tl.Bytes(2))
	}
	if tl.Bytes(-1) != 0 || tl.Bytes(99) != 0 {
		t.Fatal("out-of-range buckets should be 0")
	}
	if tl.Total() != 22 {
		t.Fatalf("total = %v", tl.Total())
	}
	if tl.Rate(0) != 15 {
		t.Fatalf("rate = %v", tl.Rate(0))
	}
	if got := tl.MeanRate(0, 3); got != 22.0/3 {
		t.Fatalf("mean rate = %v", got)
	}
	if tl.MeanRate(5, 2) != 0 {
		t.Fatal("degenerate range should be 0")
	}
	if tl.Bucket() != time.Second {
		t.Fatal("bucket width lost")
	}
}

func TestTimelinePanicsOnBadBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTimeline(0)
}

func TestDeviceFeedsTimeline(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	d := NewDevice(env, quietSpec())
	tl := NewTimeline(time.Second)
	d.SetTimeline(tl)
	env.Go("p", func(p *sim.Proc) {
		d.Read(p, 1000)
		p.Sleep(2 * time.Second)
		d.Write(p, 500)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if tl.Bytes(0) != 1000 {
		t.Fatalf("bucket 0 = %v", tl.Bytes(0))
	}
	if tl.Total() != 1500 {
		t.Fatalf("total = %v", tl.Total())
	}
}
