package simstore

import (
	"errors"
	"testing"

	"monarch/internal/sim"
	"monarch/internal/storage"
)

func TestDeviceAndStoreAccessors(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	spec := quietSpec()
	d := NewDevice(env, spec)
	if d.Spec().Name != spec.Name {
		t.Fatal("Spec accessor")
	}
	if got := d.Utilization(); got != 0 {
		t.Fatalf("untouched utilization = %v", got)
	}
	s := NewStore(d, "tier0", 1234)
	if s.Device() != d || s.Name() != "tier0" || s.Capacity() != 1234 {
		t.Fatal("store accessors")
	}
}

func TestDevicePanicsOnBadConcurrency(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	spec := quietSpec()
	spec.Channels = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDevice(env, spec)
}

func TestStoreReadFileChargesFullSize(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	s := NewStore(NewDevice(env, quietSpec()), "s", 0)
	s.AddFile("f", 2048)
	env.Go("p", func(p *sim.Proc) {
		data, err := s.ReadFile(p.Context(), "f")
		if err != nil || len(data) != 2048 {
			t.Errorf("len=%d err=%v", len(data), err)
		}
		if _, err := s.ReadFile(p.Context(), "ghost"); !errors.Is(err, storage.ErrNotExist) {
			t.Errorf("ghost: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	_, _, _, br, _ := s.Device().Stats()
	if br != 2048 {
		t.Fatalf("bytes read = %d", br)
	}
}

func TestStoreCopyFromReadFailureRollsBack(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	src := NewStore(NewDevice(env, quietSpec()), "pfs", 0)
	src.AddFile("f", 1000)
	faulty := storage.NewFaulty(src)
	faulty.FailEveryNthRead(1)
	dst := NewStore(NewDevice(env, quietSpec()), "ssd", 0)
	env.Go("p", func(p *sim.Proc) {
		if err := dst.CopyFrom(p.Context(), faulty, "f"); !errors.Is(err, storage.ErrInjected) {
			t.Errorf("got %v", err)
		}
		if dst.Used() != 0 {
			t.Errorf("reservation leaked: %d", dst.Used())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCopyFromReplacesExistingReservation(t *testing.T) {
	// Re-copying a file that already exists must swap, not add, quota.
	env := sim.NewEnv(1)
	defer env.Close()
	src := NewStore(NewDevice(env, quietSpec()), "pfs", 0)
	src.AddFile("f", 600)
	dst := NewStore(NewDevice(env, quietSpec()), "ssd", 1000)
	env.Go("p", func(p *sim.Proc) {
		ctx := p.Context()
		if err := dst.CopyFrom(ctx, src, "f"); err != nil {
			t.Error(err)
			return
		}
		if err := dst.CopyFrom(ctx, src, "f"); err != nil {
			t.Errorf("re-copy within quota failed: %v", err)
		}
		if dst.Used() != 600 {
			t.Errorf("used = %d, want 600", dst.Used())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCopyFromRollbackRestoresOldVersion(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	src := NewStore(NewDevice(env, quietSpec()), "pfs", 0)
	src.AddFile("f", 700)
	faulty := storage.NewFaulty(src)
	dst := NewStore(NewDevice(env, quietSpec()), "ssd", 0)
	dst.AddFile("f", 300) // stale prior version
	faulty.FailEveryNthRead(2)
	env.Go("p", func(p *sim.Proc) {
		// stat passes, first chunk read ok (chunk 4MiB > 700 so single
		// read)... make the very first read fail instead.
		faulty.FailEveryNthRead(1)
		if err := dst.CopyFrom(p.Context(), faulty, "f"); err == nil {
			t.Error("expected failure")
		}
		if dst.Used() != 300 {
			t.Errorf("old version not restored: used=%d", dst.Used())
		}
		fi, err := dst.Stat(p.Context(), "f")
		if err != nil || fi.Size != 300 {
			t.Errorf("stat after rollback: %+v %v", fi, err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCopyFromDefaultChunk(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	src := NewStore(NewDevice(env, quietSpec()), "pfs", 0)
	src.AddFile("f", 100)
	dst := NewStore(NewDevice(env, quietSpec()), "ssd", 0)
	dst.CopyChunk = 0 // forces the internal default
	env.Go("p", func(p *sim.Proc) {
		if err := dst.CopyFrom(p.Context(), src, "f"); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
