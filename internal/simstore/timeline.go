package simstore

import (
	"time"

	"monarch/internal/sim"
)

// Timeline bins bytes moved through a device into fixed virtual-time
// buckets, producing the throughput-over-time view behind the
// trace-timeline experiment: vanilla-lustre holds a flat plateau for
// the whole job, while MONARCH's PFS traffic collapses once placement
// completes.
type Timeline struct {
	bucket  time.Duration
	buckets []float64 // bytes per bucket
}

// NewTimeline creates a timeline with the given bucket width.
func NewTimeline(bucket time.Duration) *Timeline {
	if bucket <= 0 {
		panic("simstore: timeline bucket must be positive")
	}
	return &Timeline{bucket: bucket}
}

// Add records bytes at virtual time t.
func (tl *Timeline) Add(t sim.Time, bytes int64) {
	idx := int(int64(t) / int64(tl.bucket))
	for len(tl.buckets) <= idx {
		tl.buckets = append(tl.buckets, 0)
	}
	tl.buckets[idx] += float64(bytes)
}

// Bucket returns the bucket width.
func (tl *Timeline) Bucket() time.Duration { return tl.bucket }

// Len returns the number of buckets touched so far.
func (tl *Timeline) Len() int { return len(tl.buckets) }

// Bytes returns the byte count of bucket i (0 beyond the recorded end).
func (tl *Timeline) Bytes(i int) float64 {
	if i < 0 || i >= len(tl.buckets) {
		return 0
	}
	return tl.buckets[i]
}

// Rate returns bucket i's mean throughput in bytes/second.
func (tl *Timeline) Rate(i int) float64 {
	return tl.Bytes(i) / tl.bucket.Seconds()
}

// Total returns all recorded bytes.
func (tl *Timeline) Total() float64 {
	var t float64
	for _, b := range tl.buckets {
		t += b
	}
	return t
}

// MeanRate returns the mean throughput over buckets [lo, hi).
func (tl *Timeline) MeanRate(lo, hi int) float64 {
	if hi > len(tl.buckets) {
		hi = len(tl.buckets)
	}
	if lo >= hi {
		return 0
	}
	var sum float64
	for i := lo; i < hi; i++ {
		sum += tl.buckets[i]
	}
	return sum / (float64(hi-lo) * tl.bucket.Seconds())
}

// SetTimeline attaches a timeline that records every byte the device
// moves (reads and writes combined), stamped at operation start.
func (d *Device) SetTimeline(tl *Timeline) { d.timeline = tl }
