package simstore

import (
	"context"
	"fmt"
	"sort"

	"monarch/internal/sim"
	"monarch/internal/storage"
)

// Store is a storage.Backend over virtual files: it tracks names and
// sizes, enforces a quota, and charges its Device for every operation
// in virtual time. File *contents* are never materialised — read
// buffers come back with unspecified bytes — because the simulation
// substrate only studies timing and placement, never payload values.
//
// Store methods must be called with a context carrying a sim process
// (sim.WithProc); the simulation is single-threaded by construction so
// no locking is needed.
type Store struct {
	name     string
	dev      *Device
	capacity int64
	used     int64
	files    map[string]int64
	readOnly bool
	// CopyChunk is the request size CopyFrom uses against the source
	// backend. The paper's placement handler copies whole files; large
	// chunks model an efficient sequential fetch.
	CopyChunk int64
}

// NewStore creates an empty virtual backend on dev. capacity 0 means
// unlimited.
func NewStore(dev *Device, name string, capacity int64) *Store {
	return &Store{
		name:      name,
		dev:       dev,
		capacity:  capacity,
		files:     make(map[string]int64),
		CopyChunk: 4 << 20,
	}
}

// SetReadOnly marks the store read-only (the PFS level).
func (s *Store) SetReadOnly(ro bool) { s.readOnly = ro }

// Device returns the underlying device model.
func (s *Store) Device() *Device { return s.dev }

// AddFile registers a virtual file instantly (no time charged); used to
// mount dataset manifests before the experiment starts.
func (s *Store) AddFile(name string, size int64) {
	if old, ok := s.files[name]; ok {
		s.used -= old
	}
	s.files[name] = size
	s.used += size
}

// Name implements storage.Backend.
func (s *Store) Name() string { return s.name }

// Capacity implements storage.Backend.
func (s *Store) Capacity() int64 { return s.capacity }

// Used implements storage.Backend.
func (s *Store) Used() int64 { return s.used }

// List implements storage.Backend, charging one metadata op per entry —
// this is what makes the paper's metadata-container initialisation cost
// 13 s for 1,600 shards and 52 s for 6,400 (§IV-A).
func (s *Store) List(ctx context.Context) ([]storage.FileInfo, error) {
	p := sim.MustProc(ctx)
	s.dev.MetaOp(p, len(s.files))
	infos := make([]storage.FileInfo, 0, len(s.files))
	for name, size := range s.files {
		infos = append(infos, storage.FileInfo{Name: name, Size: size})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// Stat implements storage.Backend.
func (s *Store) Stat(ctx context.Context, name string) (storage.FileInfo, error) {
	p := sim.MustProc(ctx)
	s.dev.MetaOp(p, 1)
	size, ok := s.files[name]
	if !ok {
		return storage.FileInfo{}, fmt.Errorf("%s: stat %q: %w", s.name, name, storage.ErrNotExist)
	}
	return storage.FileInfo{Name: name, Size: size}, nil
}

// ReadAt implements storage.Backend. The returned count respects the
// virtual file size; buffer contents are unspecified.
func (s *Store) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	proc := sim.MustProc(ctx)
	size, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("%s: read %q: %w", s.name, name, storage.ErrNotExist)
	}
	if off < 0 {
		return 0, fmt.Errorf("%s: read %q: negative offset %d", s.name, name, off)
	}
	n := size - off
	if n <= 0 {
		return 0, nil
	}
	if n > int64(len(p)) {
		n = int64(len(p))
	}
	s.dev.Read(proc, n)
	return int(n), nil
}

// ReadFile implements storage.Backend. It charges a full-file read and
// returns a buffer of the right length with unspecified contents.
func (s *Store) ReadFile(ctx context.Context, name string) ([]byte, error) {
	proc := sim.MustProc(ctx)
	size, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("%s: read %q: %w", s.name, name, storage.ErrNotExist)
	}
	s.dev.Read(proc, size)
	return make([]byte, size), nil
}

// WriteFile implements storage.Backend. Quota is reserved before the
// transfer is charged so concurrent writers cannot jointly overshoot.
func (s *Store) WriteFile(ctx context.Context, name string, data []byte) error {
	proc := sim.MustProc(ctx)
	size := int64(len(data))
	if err := s.reserve(name, size); err != nil {
		return err
	}
	s.dev.Write(proc, size)
	return nil
}

// reserve commits quota for name at the new size, replacing any prior
// version.
func (s *Store) reserve(name string, size int64) error {
	if s.readOnly {
		return fmt.Errorf("%s: write %q: %w", s.name, name, storage.ErrReadOnly)
	}
	old := s.files[name]
	newUsed := s.used - old + size
	if s.capacity > 0 && newUsed > s.capacity {
		return fmt.Errorf("%s: write %q (%d bytes, %d free): %w",
			s.name, name, size, s.capacity-s.used, storage.ErrNoSpace)
	}
	s.files[name] = size
	s.used = newUsed
	return nil
}

// Allocate implements storage.RangeWriter: it reserves quota at the
// final size and charges one metadata op — creating the sparse file is
// cheap; the data transfer is charged per WriteAt chunk.
func (s *Store) Allocate(ctx context.Context, name string, size int64) error {
	p := sim.MustProc(ctx)
	s.dev.MetaOp(p, 1)
	return s.reserve(name, size)
}

// WriteAt implements storage.RangeWriter, charging the device for the
// chunk transfer. Quota was reserved at Allocate time, so only the
// range bound is checked.
func (s *Store) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	proc := sim.MustProc(ctx)
	if s.readOnly {
		return 0, fmt.Errorf("%s: write %q: %w", s.name, name, storage.ErrReadOnly)
	}
	size, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("%s: write %q: %w", s.name, name, storage.ErrNotExist)
	}
	if off < 0 || off+int64(len(p)) > size {
		return 0, fmt.Errorf("%s: write %q: range [%d,%d) past allocated size %d",
			s.name, name, off, off+int64(len(p)), size)
	}
	s.dev.Write(proc, int64(len(p)))
	return len(p), nil
}

// Remove implements storage.Backend.
func (s *Store) Remove(ctx context.Context, name string) error {
	proc := sim.MustProc(ctx)
	s.dev.MetaOp(proc, 1)
	if s.readOnly {
		return fmt.Errorf("%s: remove %q: %w", s.name, name, storage.ErrReadOnly)
	}
	size, ok := s.files[name]
	if !ok {
		return fmt.Errorf("%s: remove %q: %w", s.name, name, storage.ErrNotExist)
	}
	s.used -= size
	delete(s.files, name)
	return nil
}

// CopyFrom implements storage.Copier: it pulls name from src in
// CopyChunk-sized sequential reads (charging src, and any instrumentation
// wrapped around it) while charging this store's device for the writes.
// Quota is reserved up front; on source failure the reservation is
// rolled back.
func (s *Store) CopyFrom(ctx context.Context, src storage.Backend, name string) error {
	proc := sim.MustProc(ctx)
	fi, err := src.Stat(ctx, name)
	if err != nil {
		return err
	}
	old, hadOld := s.files[name]
	if err := s.reserve(name, fi.Size); err != nil {
		return err
	}
	rollback := func() {
		if hadOld {
			s.used = s.used - fi.Size + old
			s.files[name] = old
		} else {
			s.used -= fi.Size
			delete(s.files, name)
		}
	}
	chunk := s.CopyChunk
	if chunk <= 0 {
		chunk = 4 << 20
	}
	buf := make([]byte, chunk)
	for off := int64(0); off < fi.Size; {
		want := chunk
		if fi.Size-off < want {
			want = fi.Size - off
		}
		n, err := src.ReadAt(ctx, name, buf[:want], off)
		if err != nil {
			rollback()
			return fmt.Errorf("%s: copy %q from %s: %w", s.name, name, src.Name(), err)
		}
		if n == 0 {
			rollback()
			return fmt.Errorf("%s: copy %q from %s: source truncated at %d/%d",
				s.name, name, src.Name(), off, fi.Size)
		}
		s.dev.Write(proc, int64(n))
		off += int64(n)
	}
	return nil
}
