package simstore

import (
	"errors"
	"testing"
	"time"

	"monarch/internal/sim"
	"monarch/internal/storage"
)

// runSim executes fn as a single simulation process and returns the
// final virtual time.
func runSim(t *testing.T, seed uint64, fn func(p *sim.Proc, env *sim.Env)) sim.Time {
	t.Helper()
	env := sim.NewEnv(seed)
	defer env.Close()
	var end sim.Time
	env.Go("test", func(p *sim.Proc) {
		fn(p, env)
		end = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return end
}

// quiet returns a deterministic device spec with no noise, for exact
// timing assertions.
func quietSpec() DeviceSpec {
	return DeviceSpec{
		Name:           "quiet",
		Channels:       4,
		Slots:          1,
		ReadLatency:    time.Millisecond,
		WriteLatency:   2 * time.Millisecond,
		PerOpCost:      0,
		ReadBandwidth:  1 * MiB, // 1 MiB/s so timings are easy to compute
		WriteBandwidth: 1 * MiB,
		LatencySigma:   0,
		MetaLatency:    10 * time.Millisecond,
		MetaSlots:      2,
	}
}

func TestDeviceReadTiming(t *testing.T) {
	end := runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		d := NewDevice(env, quietSpec())
		d.Read(p, 1<<20) // 1 MiB at 1 MiB/s + 1 ms latency
	})
	want := sim.Time(time.Second + time.Millisecond)
	if end != want {
		t.Fatalf("read took %v, want %v", end.Duration(), want.Duration())
	}
}

func TestDeviceWriteTiming(t *testing.T) {
	end := runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		d := NewDevice(env, quietSpec())
		d.Write(p, 512<<10)
	})
	want := sim.Time(500*time.Millisecond + 2*time.Millisecond)
	if end != want {
		t.Fatalf("write took %v, want %v", end.Duration(), want.Duration())
	}
}

func TestDevicePerOpCostChargedInSlot(t *testing.T) {
	spec := quietSpec()
	spec.PerOpCost = 100 * time.Millisecond
	end := runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		d := NewDevice(env, spec)
		d.Read(p, 0) // pure overhead: latency + per-op cost
	})
	want := sim.Time(time.Millisecond + 100*time.Millisecond)
	if end != want {
		t.Fatalf("zero-byte read took %v, want %v", end.Duration(), want.Duration())
	}
}

func TestDeviceSlotSerializesTransfers(t *testing.T) {
	// Two concurrent 1 MiB reads with one slot must take ~2 s total:
	// latencies overlap via channels, transfers serialize.
	env := sim.NewEnv(1)
	defer env.Close()
	d := NewDevice(env, quietSpec())
	for i := 0; i < 2; i++ {
		env.Go("reader", func(p *sim.Proc) { d.Read(p, 1<<20) })
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(2*time.Second + time.Millisecond)
	if env.Now() != want {
		t.Fatalf("two reads finished at %v, want %v", env.Now().Duration(), want.Duration())
	}
}

func TestDeviceAggregateThroughputScalesWithSlots(t *testing.T) {
	spec := quietSpec()
	spec.Slots = 2
	env := sim.NewEnv(1)
	defer env.Close()
	d := NewDevice(env, spec)
	for i := 0; i < 2; i++ {
		env.Go("reader", func(p *sim.Proc) { d.Read(p, 1<<20) })
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(time.Second + time.Millisecond)
	if env.Now() != want {
		t.Fatalf("parallel reads finished at %v, want %v", env.Now().Duration(), want.Duration())
	}
}

func TestDeviceSmallOpsPayMoreWithPerOpCost(t *testing.T) {
	// The property MONARCH's full-file fetch exploits: moving the same
	// bytes in fewer, larger ops is faster when per-op cost is nonzero.
	spec := quietSpec()
	spec.PerOpCost = 50 * time.Millisecond
	small := runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		d := NewDevice(env, spec)
		for i := 0; i < 16; i++ {
			d.Read(p, 64<<10)
		}
	})
	large := runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		d := NewDevice(env, spec)
		d.Read(p, 1<<20)
	})
	if large >= small {
		t.Fatalf("large read (%v) not faster than 16 small reads (%v)",
			large.Duration(), small.Duration())
	}
}

func TestDeviceMetaOpBatch(t *testing.T) {
	end := runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		d := NewDevice(env, quietSpec())
		d.MetaOp(p, 5)
	})
	if end != sim.Time(50*time.Millisecond) {
		t.Fatalf("5 meta ops took %v", end.Duration())
	}
}

func TestDeviceStats(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		d := NewDevice(env, quietSpec())
		d.Read(p, 100)
		d.Read(p, 50)
		d.Write(p, 200)
		d.MetaOp(p, 3)
		r, w, m, br, bw := d.Stats()
		if r != 2 || w != 1 || m != 3 || br != 150 || bw != 200 {
			t.Errorf("stats = %d %d %d %d %d", r, w, m, br, bw)
		}
	})
}

func TestDeviceNoiseIsDeterministicPerSeed(t *testing.T) {
	spec := LustreSpec()
	run := func() sim.Time {
		return runSim(t, 42, func(p *sim.Proc, env *sim.Env) {
			d := NewDevice(env, spec)
			for i := 0; i < 50; i++ {
				d.Read(p, 256<<10)
			}
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced %v and %v", a.Duration(), b.Duration())
	}
}

func TestInterferenceSlowsDevice(t *testing.T) {
	spec := quietSpec()
	base := runSim(t, 5, func(p *sim.Proc, env *sim.Env) {
		d := NewDevice(env, spec)
		for i := 0; i < 20; i++ {
			d.Read(p, 1<<20)
		}
	})
	slowed := runSim(t, 5, func(p *sim.Proc, env *sim.Env) {
		d := NewDevice(env, spec)
		cfg := DefaultInterference()
		cfg.Mean = 2.0
		cfg.Min = 1.5
		d.SetInterference(NewInterference(env, cfg))
		for i := 0; i < 20; i++ {
			d.Read(p, 1<<20)
		}
	})
	if float64(slowed) < 1.4*float64(base) {
		t.Fatalf("interference too weak: base %v, slowed %v", base.Duration(), slowed.Duration())
	}
}

func TestInterferenceFactorStaysClamped(t *testing.T) {
	env := sim.NewEnv(9)
	defer env.Close()
	cfg := DefaultInterference()
	itf := NewInterference(env, cfg)
	bad := false
	env.Go("watch", func(p *sim.Proc) {
		for i := 0; i < 2000; i++ {
			p.Sleep(cfg.Period)
			f := itf.Factor()
			if f < cfg.Min || f > cfg.Max {
				bad = true
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("interference factor escaped clamp")
	}
}

func TestStoreReadAtRespectsVirtualSize(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		s := NewStore(NewDevice(env, quietSpec()), "s", 0)
		s.AddFile("f", 1000)
		ctx := p.Context()
		buf := make([]byte, 400)
		if n, err := s.ReadAt(ctx, "f", buf, 0); n != 400 || err != nil {
			t.Errorf("full window: n=%d err=%v", n, err)
		}
		if n, err := s.ReadAt(ctx, "f", buf, 900); n != 100 || err != nil {
			t.Errorf("tail: n=%d err=%v", n, err)
		}
		if n, err := s.ReadAt(ctx, "f", buf, 2000); n != 0 || err != nil {
			t.Errorf("past EOF: n=%d err=%v", n, err)
		}
		if _, err := s.ReadAt(ctx, "ghost", buf, 0); !errors.Is(err, storage.ErrNotExist) {
			t.Errorf("ghost: %v", err)
		}
		if _, err := s.ReadAt(ctx, "f", buf, -1); err == nil {
			t.Error("negative offset should fail")
		}
	})
}

func TestStoreQuotaAndReadOnly(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		s := NewStore(NewDevice(env, quietSpec()), "s", 1000)
		ctx := p.Context()
		if err := s.WriteFile(ctx, "a", make([]byte, 600)); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteFile(ctx, "b", make([]byte, 600)); !errors.Is(err, storage.ErrNoSpace) {
			t.Fatalf("quota: %v", err)
		}
		if s.Used() != 600 {
			t.Fatalf("failed write leaked quota: used=%d", s.Used())
		}
		s.SetReadOnly(true)
		if err := s.WriteFile(ctx, "c", make([]byte, 1)); !errors.Is(err, storage.ErrReadOnly) {
			t.Fatalf("read-only: %v", err)
		}
		if err := s.Remove(ctx, "a"); !errors.Is(err, storage.ErrReadOnly) {
			t.Fatalf("read-only remove: %v", err)
		}
	})
}

func TestStoreListAndStatChargeMetadataTime(t *testing.T) {
	end := runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		s := NewStore(NewDevice(env, quietSpec()), "s", 0)
		for i := 0; i < 7; i++ {
			s.AddFile(string(rune('a'+i)), 10)
		}
		infos, err := s.List(p.Context())
		if err != nil || len(infos) != 7 {
			t.Errorf("list: %d infos, err=%v", len(infos), err)
		}
		if infos[0].Name != "a" || infos[6].Name != "g" {
			t.Errorf("list not sorted: %v", infos)
		}
	})
	if end != sim.Time(70*time.Millisecond) {
		t.Fatalf("7-entry list took %v, want 70ms", end.Duration())
	}
}

func TestStoreRemoveFreesQuota(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		s := NewStore(NewDevice(env, quietSpec()), "s", 100)
		ctx := p.Context()
		if err := s.WriteFile(ctx, "f", make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		if err := s.Remove(ctx, "f"); err != nil {
			t.Fatal(err)
		}
		if s.Used() != 0 {
			t.Fatalf("used = %d", s.Used())
		}
		if _, err := s.Stat(ctx, "f"); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("stat removed: %v", err)
		}
	})
}

func TestStoreAddFileReplacesExisting(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	s := NewStore(NewDevice(env, quietSpec()), "s", 0)
	s.AddFile("f", 100)
	s.AddFile("f", 250)
	if s.Used() != 250 {
		t.Fatalf("used = %d, want 250", s.Used())
	}
}

func TestStoreCopyFromChargesBothDevices(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	srcDev := NewDevice(env, quietSpec())
	dstDev := NewDevice(env, quietSpec())
	src := NewStore(srcDev, "pfs", 0)
	dst := NewStore(dstDev, "ssd", 0)
	src.AddFile("shard", 2<<20)
	dst.CopyChunk = 1 << 20
	env.Go("copier", func(p *sim.Proc) {
		if err := dst.CopyFrom(p.Context(), src, "shard"); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dst.Used() != 2<<20 {
		t.Fatalf("dst used = %d", dst.Used())
	}
	rOps, _, _, br, _ := srcDev.Stats()
	_, wOps, _, _, bw := dstDev.Stats()
	if rOps != 2 || br != 2<<20 {
		t.Fatalf("src: %d reads, %d bytes", rOps, br)
	}
	if wOps != 2 || bw != 2<<20 {
		t.Fatalf("dst: %d writes, %d bytes", wOps, bw)
	}
	// Sequential copy: src stat (10ms) + 2×(read 1s+1ms) + 2×(write 1s+2ms)
	want := sim.Time(10*time.Millisecond + 2*(time.Second+time.Millisecond) + 2*(time.Second+2*time.Millisecond))
	if env.Now() != want {
		t.Fatalf("copy took %v, want %v", env.Now().Duration(), want.Duration())
	}
}

func TestStoreCopyFromCountsThroughInstrumentation(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	src := NewStore(NewDevice(env, quietSpec()), "pfs", 0)
	src.AddFile("shard", 3<<20)
	counted := storage.NewCounting(src)
	dst := NewStore(NewDevice(env, quietSpec()), "ssd", 0)
	dst.CopyChunk = 1 << 20
	env.Go("copier", func(p *sim.Proc) {
		if err := dst.CopyFrom(p.Context(), counted, "shard"); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	c := counted.Counts()
	if c.Ops[storage.OpRead] != 3 || c.Ops[storage.OpStat] != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.BytesRead != 3<<20 {
		t.Fatalf("bytes read = %d", c.BytesRead)
	}
}

func TestStoreCopyFromQuotaRollback(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	src := NewStore(NewDevice(env, quietSpec()), "pfs", 0)
	src.AddFile("big", 500)
	dst := NewStore(NewDevice(env, quietSpec()), "ssd", 100)
	env.Go("copier", func(p *sim.Proc) {
		if err := dst.CopyFrom(p.Context(), src, "big"); !errors.Is(err, storage.ErrNoSpace) {
			t.Errorf("expected quota error, got %v", err)
		}
		if dst.Used() != 0 {
			t.Errorf("quota leaked: used=%d", dst.Used())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCopyFromMissingSource(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	src := NewStore(NewDevice(env, quietSpec()), "pfs", 0)
	dst := NewStore(NewDevice(env, quietSpec()), "ssd", 0)
	env.Go("copier", func(p *sim.Proc) {
		if err := dst.CopyFrom(p.Context(), src, "ghost"); !errors.Is(err, storage.ErrNotExist) {
			t.Errorf("got %v", err)
		}
		if _, err := dst.Stat(p.Context(), "ghost"); !errors.Is(err, storage.ErrNotExist) {
			t.Errorf("phantom file created: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreConcurrentCopiesRespectQuota(t *testing.T) {
	// Reservation must prevent concurrent copies from jointly
	// overshooting the destination quota.
	env := sim.NewEnv(1)
	defer env.Close()
	src := NewStore(NewDevice(env, quietSpec()), "pfs", 0)
	for i := 0; i < 4; i++ {
		src.AddFile(string(rune('a'+i)), 400)
	}
	dst := NewStore(NewDevice(env, quietSpec()), "ssd", 1000)
	failures := 0
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		env.Go("copier-"+name, func(p *sim.Proc) {
			if err := dst.CopyFrom(p.Context(), src, name); err != nil {
				if !errors.Is(err, storage.ErrNoSpace) {
					t.Errorf("unexpected error: %v", err)
				}
				failures++
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dst.Used() > 1000 {
		t.Fatalf("quota overshot: %d", dst.Used())
	}
	if failures != 2 {
		t.Fatalf("failures = %d, want 2 (800 of 1000 used)", failures)
	}
}

func TestStoreBackendInterfaceCompliance(t *testing.T) {
	var _ storage.Backend = (*Store)(nil)
	var _ storage.Copier = (*Store)(nil)
}

func TestPresetSpecsSane(t *testing.T) {
	for _, spec := range []DeviceSpec{SSDSpec(), LustreSpec(), RAMSpec()} {
		if spec.Channels <= 0 || spec.Slots <= 0 || spec.MetaSlots <= 0 {
			t.Errorf("%s: non-positive concurrency", spec.Name)
		}
		if spec.ReadBandwidth <= 0 || spec.WriteBandwidth <= 0 {
			t.Errorf("%s: non-positive bandwidth", spec.Name)
		}
	}
	// The whole paper depends on this ordering.
	if !(RAMSpec().ReadBandwidth > SSDSpec().ReadBandwidth &&
		SSDSpec().ReadBandwidth > LustreSpec().ReadBandwidth) {
		t.Error("tier bandwidth ordering violated")
	}
	if SSDSpec().ReadLatency >= LustreSpec().ReadLatency {
		t.Error("SSD latency should be below Lustre latency")
	}
}

// TestStoreWriteLifecycle is the virtual-backend half of the write
// conformance suite: the byte-free Store must still honour the
// Allocate/WriteAt/Remove contract the core write path leans on —
// quota reserve-then-fill, in-bounds enforcement, sentinel errors, and
// device time charged per chunk (not at Allocate).
func TestStoreWriteLifecycle(t *testing.T) {
	end := runSim(t, 1, func(p *sim.Proc, env *sim.Env) {
		s := NewStore(NewDevice(env, quietSpec()), "s", 100)
		ctx := p.Context()
		if err := s.Allocate(ctx, "ckpt", 64); err != nil {
			t.Fatal(err)
		}
		if s.Used() != 64 {
			t.Fatalf("allocate reserved %d, want 64", s.Used())
		}
		if err := s.Allocate(ctx, "big", 40); !errors.Is(err, storage.ErrNoSpace) {
			t.Fatalf("over-quota allocate: %v", err)
		}
		if n, err := s.WriteAt(ctx, "ckpt", make([]byte, 32), 0); err != nil || n != 32 {
			t.Fatalf("writeat: n=%d err=%v", n, err)
		}
		if _, err := s.WriteAt(ctx, "ckpt", make([]byte, 40), 32); err == nil {
			t.Fatal("write past allocation succeeded")
		}
		if _, err := s.WriteAt(ctx, "ghost", []byte("x"), 0); !errors.Is(err, storage.ErrNotExist) {
			t.Fatalf("writeat ghost: %v", err)
		}
		if err := s.Remove(ctx, "ckpt"); err != nil {
			t.Fatal(err)
		}
		if s.Used() != 0 {
			t.Fatalf("used = %d after remove", s.Used())
		}
		// The freed quota admits a recreate under the same name.
		if err := s.Allocate(ctx, "ckpt", 100); err != nil {
			t.Fatalf("re-allocate after remove: %v", err)
		}
	})
	// Time charged: 3 successful metadata ops (2 allocates + remove, the
	// failed allocate also charges one before rejecting, ghost writeat
	// charges nothing, so 4 MetaOps at 10ms on 2 meta slots) plus one
	// 32-byte write (2ms latency + transfer at 1 MiB/s).
	bytesWritten := 32.0
	wantWrite := 2*time.Millisecond + time.Duration(bytesWritten*float64(time.Second)/float64(1<<20))
	wantMeta := 2 * 10 * time.Millisecond // 4 ops over 2 slots, sequential process
	if got := end.Duration(); got < wantWrite || got > wantMeta+wantWrite+20*time.Millisecond {
		t.Fatalf("lifecycle took %v (write %v, meta ~%v)", got, wantWrite, wantMeta)
	}
}
