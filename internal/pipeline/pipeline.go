// Package pipeline models a TensorFlow-style tf.data input pipeline on
// the simulation clock. It reproduces the I/O behaviour MONARCH's
// evaluation depends on:
//
//   - TFRecord shards are consumed by a fixed set of parallel reader
//     streams (parallel interleave); shard order is reshuffled every
//     epoch, so every file is read exactly once per epoch in random
//     order — the access pattern §III-A's no-eviction argument rests on;
//   - each reader issues fixed-size preads (256 KiB by default, which is
//     what makes the paper's 200 GiB epoch count ~798 k I/O operations);
//   - records flow through a parallel preprocess (map) stage that burns
//     CPU-core time per image, then are batched and staged in a bounded
//     prefetch buffer the trainer consumes from.
//
// The pipeline is storage-agnostic: it reads through a Source, which is
// either a raw backend (the vanilla baselines) or a MONARCH instance.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"monarch/internal/dataset"
	"monarch/internal/rng"
	"monarch/internal/sim"
)

// Source is the read interface the pipeline consumes shard bytes
// through. Both storage.Backend and core.Monarch satisfy it.
type Source interface {
	ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error)
}

// Config parameterises one pipeline instance.
type Config struct {
	// Manifest is the dataset layout to iterate.
	Manifest *dataset.Manifest `json:"-"`
	// Source serves the shard bytes.
	Source Source `json:"-"`
	// Readers is the parallel-interleave width (TF cycle_length).
	Readers int
	// ReadSize is the pread granularity in bytes.
	ReadSize int
	// GroupSize is how many records travel together between stages
	// (models TF's fused map_and_batch vectorisation).
	GroupSize int
	// PreprocessWorkers is the map-stage parallelism (TF
	// num_parallel_calls).
	PreprocessWorkers int
	// PreprocessPerImage is CPU-core time per record.
	PreprocessPerImage time.Duration
	// CPU is the node's core pool; preprocess holds one unit per
	// worker while it runs. Optional: nil skips CPU accounting.
	CPU *sim.Resource `json:"-"`
	// BatchSize is records per training batch.
	BatchSize int
	// PrefetchBatches bounds the ready-batch buffer (TF prefetch).
	PrefetchBatches int
	// GroupQueueLen bounds the reader→map hand-off buffer.
	GroupQueueLen int
	// SelectShards, when set, restricts an epoch to a subset of shard
	// indices (distributed data-parallel sharding). It receives the
	// epoch number and the total shard count and returns the indices
	// this pipeline should read; nil means all shards.
	SelectShards func(epoch, total int) []int `json:"-"`
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Manifest == nil:
		return fmt.Errorf("pipeline: nil manifest")
	case c.Source == nil:
		return fmt.Errorf("pipeline: nil source")
	case c.Readers <= 0:
		return fmt.Errorf("pipeline: Readers = %d", c.Readers)
	case c.ReadSize <= 0:
		return fmt.Errorf("pipeline: ReadSize = %d", c.ReadSize)
	case c.GroupSize <= 0:
		return fmt.Errorf("pipeline: GroupSize = %d", c.GroupSize)
	case c.PreprocessWorkers <= 0:
		return fmt.Errorf("pipeline: PreprocessWorkers = %d", c.PreprocessWorkers)
	case c.BatchSize <= 0:
		return fmt.Errorf("pipeline: BatchSize = %d", c.BatchSize)
	case c.PrefetchBatches <= 0:
		return fmt.Errorf("pipeline: PrefetchBatches = %d", c.PrefetchBatches)
	}
	return nil
}

// DefaultConfig mirrors the evaluation's TensorFlow settings (parallel
// I/O, parallel preprocessing and prefetching enabled, §II).
func DefaultConfig() Config {
	return Config{
		Readers:           16,
		ReadSize:          256 << 10,
		GroupSize:         32,
		PreprocessWorkers: 24,
		BatchSize:         256,
		PrefetchBatches:   8,
		GroupQueueLen:     64,
	}
}

// Batch is one training batch handed to the consumer.
type Batch struct {
	// Records is the number of images in the batch (the final batch of
	// an epoch may be short).
	Records int
}

// group is the unit flowing between reader, map and batch stages.
type group struct {
	records int
}

// Epoch runs one epoch's worth of stages. Construct with StartEpoch;
// consume with Next until ok is false; then inspect Stats.
type Epoch struct {
	out   *sim.Queue[Batch]
	errs  []error
	cfg   Config
	epoch int
}

// EpochStats summarises one finished epoch.
type EpochStats struct {
	Records int
	Batches int
}

// StartEpoch spawns the pipeline processes for epoch number `epoch` in
// env. Shard order derives deterministically from shuffleSeed and the
// epoch number.
func StartEpoch(env *sim.Env, cfg Config, epoch int, shuffleSeed uint64) (*Epoch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Epoch{
		cfg:   cfg,
		epoch: epoch,
		out:   sim.NewQueue[Batch](env, fmt.Sprintf("prefetch-e%d", epoch), cfg.PrefetchBatches),
	}

	// Reshuffle shard order each epoch, as tf.data's
	// shuffle(reshuffle_each_iteration=True) over file names does.
	// With a shard selector only the assigned subset is permuted.
	candidates := len(cfg.Manifest.Shards)
	var order []int
	if cfg.SelectShards != nil {
		subset := cfg.SelectShards(epoch, candidates)
		perm := rng.New(shuffleSeed + uint64(epoch)*0x9e37).Perm(len(subset))
		order = make([]int, len(subset))
		for i, pi := range perm {
			order[i] = subset[pi]
		}
	} else {
		order = rng.New(shuffleSeed + uint64(epoch)*0x9e37).Perm(candidates)
	}

	groups := sim.NewQueue[group](env, fmt.Sprintf("groups-e%d", epoch), cfg.GroupQueueLen)
	preprocessed := sim.NewQueue[group](env, fmt.Sprintf("mapped-e%d", epoch), cfg.GroupQueueLen)

	// Shard dispatcher state: readers pull the next shard index.
	next := 0
	takeShard := func() (int, bool) {
		if next >= len(order) {
			return 0, false
		}
		s := order[next]
		next++
		return s, true
	}

	readers := sim.NewWaitGroup(env)
	for r := 0; r < cfg.Readers; r++ {
		readers.Add(1)
		env.Go(fmt.Sprintf("reader-%d-e%d", r, epoch), func(p *sim.Proc) {
			defer readers.Done()
			buf := make([]byte, cfg.ReadSize)
			ctx := p.Context()
			for {
				si, ok := takeShard()
				if !ok {
					return
				}
				if err := e.readShard(ctx, p, buf, &cfg.Manifest.Shards[si], groups); err != nil {
					e.errs = append(e.errs, err)
					return
				}
			}
		})
	}
	env.Go(fmt.Sprintf("reader-closer-e%d", epoch), func(p *sim.Proc) {
		readers.Wait(p)
		groups.Close()
	})

	mappers := sim.NewWaitGroup(env)
	for w := 0; w < cfg.PreprocessWorkers; w++ {
		mappers.Add(1)
		env.Go(fmt.Sprintf("map-%d-e%d", w, epoch), func(p *sim.Proc) {
			defer mappers.Done()
			for {
				g, ok := groups.Get(p)
				if !ok {
					return
				}
				if cfg.PreprocessPerImage > 0 {
					work := time.Duration(g.records) * cfg.PreprocessPerImage
					if cfg.CPU != nil {
						cfg.CPU.Acquire(p, 1)
						p.Sleep(work)
						cfg.CPU.Release(1)
					} else {
						p.Sleep(work)
					}
				}
				preprocessed.Put(p, g)
			}
		})
	}
	env.Go(fmt.Sprintf("map-closer-e%d", epoch), func(p *sim.Proc) {
		mappers.Wait(p)
		preprocessed.Close()
	})

	env.Go(fmt.Sprintf("batcher-e%d", epoch), func(p *sim.Proc) {
		pending := 0
		for {
			g, ok := preprocessed.Get(p)
			if !ok {
				if pending > 0 {
					e.out.Put(p, Batch{Records: pending})
				}
				e.out.Close()
				return
			}
			pending += g.records
			for pending >= cfg.BatchSize {
				e.out.Put(p, Batch{Records: cfg.BatchSize})
				pending -= cfg.BatchSize
			}
		}
	})

	return e, nil
}

// readShard streams one TFRecord shard: sequential fixed-size preads,
// records grouped and pushed downstream as soon as their bytes are
// buffered. This reproduces TF's RecordReader over a buffered stream.
func (e *Epoch) readShard(ctx context.Context, p *sim.Proc, buf []byte, shard *dataset.Shard, groups *sim.Queue[group]) error {
	format := e.cfg.Manifest.Spec.Format
	buffered := int64(0)
	inGroup := 0
	for _, rec := range shard.Records {
		end := format.RecordEnd(rec)
		for end > buffered {
			n, err := e.cfg.Source.ReadAt(ctx, shard.Name, buf, buffered)
			if err != nil {
				return fmt.Errorf("pipeline: shard %s at %d: %w", shard.Name, buffered, err)
			}
			if n == 0 {
				return fmt.Errorf("pipeline: shard %s truncated at %d (want %d)",
					shard.Name, buffered, end)
			}
			buffered += int64(n)
		}
		inGroup++
		if inGroup >= e.cfg.GroupSize {
			groups.Put(p, group{records: inGroup})
			inGroup = 0
		}
	}
	if inGroup > 0 {
		groups.Put(p, group{records: inGroup})
	}
	return nil
}

// Next returns the next ready batch; ok is false when the epoch is
// exhausted.
func (e *Epoch) Next(p *sim.Proc) (Batch, bool) { return e.out.Get(p) }

// Err returns the first pipeline error, if any.
func (e *Epoch) Err() error {
	if len(e.errs) > 0 {
		return e.errs[0]
	}
	return nil
}

// BufferBytes estimates the resident memory of the pipeline's buffers,
// used by the experiments' memory-usage report.
func (c Config) BufferBytes(meanImage int64) int64 {
	groupBytes := int64(c.GroupSize) * meanImage
	batchBytes := int64(c.BatchSize) * meanImage
	return int64(c.GroupQueueLen)*2*groupBytes + // reader + map hand-offs
		int64(c.PrefetchBatches)*batchBytes +
		int64(c.Readers)*int64(c.ReadSize)
}
