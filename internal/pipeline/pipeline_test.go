package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"monarch/internal/dataset"
	"monarch/internal/sim"
	"monarch/internal/simstore"
)

// testManifest plans a small deterministic dataset.
func testManifest(t *testing.T, images, shards int, totalBytes int64) *dataset.Manifest {
	t.Helper()
	m, err := dataset.Plan(dataset.Spec{
		Name:       "t",
		NumImages:  images,
		TotalBytes: totalBytes,
		NumShards:  shards,
		SizeSigma:  0.2,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mountStore registers the manifest's shards on a fresh simulated
// store.
func mountStore(env *sim.Env, m *dataset.Manifest, spec simstore.DeviceSpec) *simstore.Store {
	st := simstore.NewStore(simstore.NewDevice(env, spec), spec.Name, 0)
	for i := range m.Shards {
		st.AddFile(m.Shards[i].Name, m.Shards[i].Size)
	}
	return st
}

func fastSpec() simstore.DeviceSpec {
	s := simstore.SSDSpec()
	s.LatencySigma = 0
	return s
}

func smallConfig(m *dataset.Manifest, src Source) Config {
	cfg := DefaultConfig()
	cfg.Manifest = m
	cfg.Source = src
	cfg.Readers = 4
	cfg.ReadSize = 4 << 10
	cfg.GroupSize = 8
	cfg.PreprocessWorkers = 4
	cfg.PreprocessPerImage = 100 * time.Microsecond
	cfg.BatchSize = 16
	cfg.PrefetchBatches = 4
	cfg.GroupQueueLen = 8
	return cfg
}

// runEpoch consumes one epoch fully and returns total records, batches,
// and the virtual duration.
func runEpoch(t *testing.T, cfg Config, epoch int) (records, batches int, elapsed sim.Time, env *sim.Env) {
	t.Helper()
	env = sim.NewEnv(7)
	t.Cleanup(env.Close)
	if st, ok := cfg.Source.(*deferredSource); ok {
		st.bind(env)
	}
	env.Go("trainer", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, epoch, 99)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			b, ok := ep.Next(p)
			if !ok {
				break
			}
			records += b.Records
			batches++
		}
		if err := ep.Err(); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return records, batches, env.Now(), env
}

// deferredSource lets tests build the store after the env exists.
type deferredSource struct {
	mk  func(env *sim.Env) Source
	src Source
}

func (d *deferredSource) bind(env *sim.Env) { d.src = d.mk(env) }
func (d *deferredSource) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	return d.src.ReadAt(ctx, name, p, off)
}

func TestEpochDeliversEveryRecordExactlyOnce(t *testing.T) {
	m := testManifest(t, 200, 10, 400_000)
	cfg := smallConfig(m, &deferredSource{mk: func(env *sim.Env) Source {
		return mountStore(env, m, fastSpec())
	}})
	records, batches, _, _ := runEpoch(t, cfg, 0)
	if records != 200 {
		t.Fatalf("records = %d, want 200", records)
	}
	wantBatches := (200 + cfg.BatchSize - 1) / cfg.BatchSize
	if batches != wantBatches {
		t.Fatalf("batches = %d, want %d", batches, wantBatches)
	}
}

func TestBatchSizesExact(t *testing.T) {
	m := testManifest(t, 100, 5, 200_000)
	cfg := smallConfig(m, &deferredSource{mk: func(env *sim.Env) Source {
		return mountStore(env, m, fastSpec())
	}})
	cfg.BatchSize = 30
	env := sim.NewEnv(1)
	defer env.Close()
	cfg.Source.(*deferredSource).bind(env)
	var sizes []int
	env.Go("trainer", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, 0, 5)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			b, ok := ep.Next(p)
			if !ok {
				return
			}
			sizes = append(sizes, b.Records)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range sizes {
		total += s
		if i < len(sizes)-1 && s != 30 {
			t.Fatalf("non-final batch %d has %d records", i, s)
		}
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
	if last := sizes[len(sizes)-1]; last != 10 {
		t.Fatalf("final batch = %d, want 10", last)
	}
}

func TestEveryShardReadFullyEachEpoch(t *testing.T) {
	m := testManifest(t, 128, 8, 256_000)
	var store *simstore.Store
	cfg := smallConfig(m, &deferredSource{mk: func(env *sim.Env) Source {
		store = mountStore(env, m, fastSpec())
		return store
	}})
	runEpoch(t, cfg, 0)
	_, _, _, bytesRead, _ := store.Device().Stats()
	if bytesRead != m.TotalBytes() {
		t.Fatalf("bytes read = %d, manifest = %d", bytesRead, m.TotalBytes())
	}
}

func TestReadOpCountMatchesGranularity(t *testing.T) {
	// With ReadSize R, each shard of size S costs ceil-ish S/R preads.
	m := testManifest(t, 64, 4, 1_000_000)
	var store *simstore.Store
	cfg := smallConfig(m, &deferredSource{mk: func(env *sim.Env) Source {
		store = mountStore(env, m, fastSpec())
		return store
	}})
	cfg.ReadSize = 64 << 10
	runEpoch(t, cfg, 0)
	readOps, _, _, _, _ := store.Device().Stats()
	var want int64
	for i := range m.Shards {
		want += (m.Shards[i].Size + int64(cfg.ReadSize) - 1) / int64(cfg.ReadSize)
	}
	if readOps != want {
		t.Fatalf("read ops = %d, want %d", readOps, want)
	}
}

func TestShardOrderReshufflesAcrossEpochs(t *testing.T) {
	m := testManifest(t, 64, 16, 128_000)
	var order0, order1 []string
	record := func(dst *[]string) Source {
		return sourceFunc(func(ctx context.Context, name string, p []byte, off int64) (int, error) {
			if off == 0 {
				*dst = append(*dst, name)
			}
			return len(p), nil
		})
	}
	run := func(epoch int, src Source) {
		env := sim.NewEnv(1)
		defer env.Close()
		cfg := smallConfig(m, src)
		cfg.Readers = 1 // serial so the touch order is the shard order
		env.Go("t", func(p *sim.Proc) {
			ep, err := StartEpoch(env, cfg, epoch, 42)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				if _, ok := ep.Next(p); !ok {
					return
				}
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run(0, record(&order0))
	run(1, record(&order1))
	if len(order0) != 16 || len(order1) != 16 {
		t.Fatalf("orders: %d / %d shards", len(order0), len(order1))
	}
	same := true
	for i := range order0 {
		if order0[i] != order1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shard order identical across epochs")
	}
}

// sourceFunc adapts a function to Source. The simulation still needs a
// proc context but this source charges no time.
type sourceFunc func(ctx context.Context, name string, p []byte, off int64) (int, error)

func (f sourceFunc) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	return f(ctx, name, p, off)
}

func TestSameSeedSameOrder(t *testing.T) {
	m := testManifest(t, 32, 8, 64_000)
	collect := func() []string {
		var order []string
		env := sim.NewEnv(1)
		defer env.Close()
		cfg := smallConfig(m, sourceFunc(func(ctx context.Context, name string, p []byte, off int64) (int, error) {
			if off == 0 {
				order = append(order, name)
			}
			return len(p), nil
		}))
		cfg.Readers = 1
		env.Go("t", func(p *sim.Proc) {
			ep, _ := StartEpoch(env, cfg, 3, 1234)
			for {
				if _, ok := ep.Next(p); !ok {
					return
				}
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed+epoch gave different shard orders")
		}
	}
}

func TestPreprocessChargesCPU(t *testing.T) {
	m := testManifest(t, 100, 4, 200_000)
	env := sim.NewEnv(1)
	defer env.Close()
	cpu := sim.NewResource(env, "cpu", 8)
	store := mountStore(env, m, fastSpec())
	cfg := smallConfig(m, store)
	cfg.CPU = cpu
	cfg.PreprocessPerImage = 10 * time.Millisecond
	env.Go("t", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, 0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			if _, ok := ep.Next(p); !ok {
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 100 images × 10 ms = 1 core-second of work. Epoch wall time must
	// be at least the critical path through 4 workers.
	if env.Now() < sim.Time(250*time.Millisecond) {
		t.Fatalf("epoch finished unrealistically fast: %v", env.Now().Duration())
	}
	if cpu.Utilization() <= 0 {
		t.Fatal("CPU utilization not recorded")
	}
}

func TestSlowerDeviceSlowerEpoch(t *testing.T) {
	// The motivation experiment in miniature: the same pipeline over a
	// Lustre-like device must take longer than over the SSD model.
	m := testManifest(t, 256, 8, 4<<20)
	run := func(spec simstore.DeviceSpec) sim.Time {
		cfg := smallConfig(m, &deferredSource{mk: func(env *sim.Env) Source {
			return mountStore(env, m, spec)
		}})
		cfg.ReadSize = 256 << 10
		_, _, elapsed, _ := runEpoch(t, cfg, 0)
		return elapsed
	}
	lustre := simstore.LustreSpec()
	lustre.LatencySigma = 0
	ssdTime, lustreTime := run(fastSpec()), run(lustre)
	if lustreTime <= ssdTime {
		t.Fatalf("lustre epoch (%v) not slower than ssd epoch (%v)",
			lustreTime.Duration(), ssdTime.Duration())
	}
}

func TestPrefetchBoundsBatchQueue(t *testing.T) {
	m := testManifest(t, 512, 4, 1<<20)
	env := sim.NewEnv(1)
	defer env.Close()
	store := mountStore(env, m, fastSpec())
	cfg := smallConfig(m, store)
	cfg.PrefetchBatches = 2
	env.Go("slow-trainer", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, 0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			_, ok := ep.Next(p)
			if !ok {
				return
			}
			p.Sleep(50 * time.Millisecond) // trainer slower than pipeline
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSourceErrorSurfaces(t *testing.T) {
	m := testManifest(t, 32, 2, 64_000)
	wantErr := errors.New("device on fire")
	env := sim.NewEnv(1)
	defer env.Close()
	cfg := smallConfig(m, sourceFunc(func(ctx context.Context, name string, p []byte, off int64) (int, error) {
		return 0, wantErr
	}))
	var gotRecords int
	var pipelineErr error
	env.Go("t", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, 0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			b, ok := ep.Next(p)
			if !ok {
				break
			}
			gotRecords += b.Records
		}
		pipelineErr = ep.Err()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(pipelineErr, wantErr) {
		t.Fatalf("pipeline error = %v", pipelineErr)
	}
	if gotRecords != 0 {
		t.Fatalf("records delivered despite failing source: %d", gotRecords)
	}
}

func TestConfigValidate(t *testing.T) {
	m := testManifest(t, 8, 2, 16_000)
	good := smallConfig(m, sourceFunc(func(context.Context, string, []byte, int64) (int, error) { return 0, nil }))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Manifest = nil },
		func(c *Config) { c.Source = nil },
		func(c *Config) { c.Readers = 0 },
		func(c *Config) { c.ReadSize = 0 },
		func(c *Config) { c.GroupSize = 0 },
		func(c *Config) { c.PreprocessWorkers = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.PrefetchBatches = 0 },
	}
	for i, mut := range mutations {
		bad := good
		mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestBufferBytesEstimate(t *testing.T) {
	cfg := DefaultConfig()
	b := cfg.BufferBytes(100_000)
	if b <= 0 {
		t.Fatal("non-positive buffer estimate")
	}
	bigger := cfg
	bigger.PrefetchBatches *= 2
	if bigger.BufferBytes(100_000) <= b {
		t.Fatal("estimate must grow with prefetch depth")
	}
}

func TestSelectShardsRestrictsEpoch(t *testing.T) {
	m := testManifest(t, 64, 8, 128_000)
	var touched []string
	env := sim.NewEnv(1)
	defer env.Close()
	cfg := smallConfig(m, sourceFunc(func(ctx context.Context, name string, p []byte, off int64) (int, error) {
		if off == 0 {
			touched = append(touched, name)
		}
		return len(p), nil
	}))
	cfg.SelectShards = func(epoch, total int) []int {
		if total != 8 {
			t.Errorf("total = %d", total)
		}
		// Node 1 of 2: odd shards only.
		var out []int
		for i := 1; i < total; i += 2 {
			out = append(out, i)
		}
		return out
	}
	records := 0
	env.Go("trainer", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, 0, 9)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			b, ok := ep.Next(p)
			if !ok {
				return
			}
			records += b.Records
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(touched) != 4 {
		t.Fatalf("touched %d shards, want 4: %v", len(touched), touched)
	}
	want := map[string]bool{}
	for i := 1; i < 8; i += 2 {
		want[m.Shards[i].Name] = true
	}
	for _, name := range touched {
		if !want[name] {
			t.Fatalf("read shard outside the selection: %s", name)
		}
	}
	// Half the shards → half the records.
	half := 0
	for i := 1; i < 8; i += 2 {
		half += len(m.Shards[i].Records)
	}
	if records != half {
		t.Fatalf("records = %d, want %d", records, half)
	}
}

func TestSelectShardsEmptySubset(t *testing.T) {
	m := testManifest(t, 16, 4, 32_000)
	env := sim.NewEnv(1)
	defer env.Close()
	cfg := smallConfig(m, sourceFunc(func(context.Context, string, []byte, int64) (int, error) {
		t.Error("source touched despite empty selection")
		return 0, nil
	}))
	cfg.SelectShards = func(int, int) []int { return nil }
	batches := 0
	env.Go("trainer", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, 0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			if _, ok := ep.Next(p); !ok {
				return
			}
			batches++
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if batches != 0 {
		t.Fatalf("batches = %d from empty selection", batches)
	}
}
