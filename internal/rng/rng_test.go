package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream correlates with parent: %d collisions", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntNBounds(t *testing.T) {
	s := New(4)
	err := quick.Check(func(n uint16) bool {
		bound := int(n%1000) + 1
		v := s.IntN(bound)
		return v >= 0 && v < bound
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).IntN(0)
}

func TestIntNCoversRange(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[s.IntN(8)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("IntN(8) hit only %d of 8 values in 1000 draws", len(seen))
	}
}

func TestUniformMoments(t *testing.T) {
	s := New(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Uniform(2, 6)
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.02 {
		t.Fatalf("uniform(2,6) mean = %v, want ~4", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalMeanParameterisation(t *testing.T) {
	s := New(9)
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.LogNormalMean(5, 0.5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("LogNormalMean(5, 0.5) sample mean = %v, want ~5", mean)
	}
}

func TestLogNormalMeanZero(t *testing.T) {
	if v := New(1).LogNormalMean(0, 0.5); v != 0 {
		t.Fatalf("LogNormalMean(0, _) = %v, want 0", v)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(10)
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(2.5)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.03 {
		t.Fatalf("exponential mean = %v, want ~2.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	err := quick.Check(func(n uint8) bool {
		size := int(n % 64)
		p := s.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum = %d", sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkLogNormalMean(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.LogNormalMean(1, 0.4)
	}
}
