// Package rng provides a small, deterministic pseudo-random number
// generator and the distributions used throughout the MONARCH
// simulation substrate.
//
// Every simulated experiment must be exactly reproducible from a seed,
// and independent streams (one per run, one per subsystem) must not
// correlate. We therefore implement an explicit xoshiro256**
// generator seeded through splitmix64 instead of relying on the global
// math/rand state.
package rng

import "math"

// Source is a deterministic xoshiro256** PRNG. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, which guarantees
// a well-mixed non-zero internal state for any seed, including 0.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split derives a new, statistically independent Source from s.
// It advances s, so the order of Split calls matters for determinism.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Int64N(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64N called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling is overkill here;
	// simple rejection keeps the implementation auditable.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return int(s.Int64N(int64(n))) }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (s *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// LogNormal returns exp(N(mu, sigma)). Note mu and sigma are the
// parameters of the underlying normal, not the resulting mean/stddev.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMean returns a lognormal sample whose *distribution mean* is
// mean with multiplicative spread sigma (sigma of the underlying
// normal). This is the form the device models use: "service time is on
// average m with lognormal noise sigma".
func (s *Source) LogNormalMean(mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	mu := math.Log(mean) - sigma*sigma/2
	return s.LogNormal(mu, sigma)
}

// Exponential returns an exponentially distributed value with the given
// mean (= 1/rate).
func (s *Source) Exponential(mean float64) float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.IntN(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the n elements addressed by swap in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.IntN(i + 1)
		swap(i, j)
	}
}
