// Package stats provides the summary statistics used by the experiment
// harness: streaming mean/variance (Welford), percentile summaries, and
// a time-weighted utilisation integrator for resource-usage accounting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a streaming mean and variance. The zero value is
// an empty accumulator ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a value into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of accumulated values.
func (w *Welford) N() int { return w.n }

// Mean returns the arithmetic mean, or 0 for an empty accumulator.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest accumulated value, or 0 when empty.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest accumulated value, or 0 when empty.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (n-1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// String formats the accumulator as "mean ± std (n=N)".
func (w *Welford) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", w.Mean(), w.StdDev(), w.n)
}

// Summary holds order statistics of a fixed sample.
type Summary struct {
	N             int
	Mean, StdDev  float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary over xs. It does not modify xs.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var w Welford
	for _, x := range sorted {
		w.Add(x)
	}
	s.Mean, s.StdDev = w.Mean(), w.StdDev()
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of an already-sorted
// slice using linear interpolation between closest ranks. It returns 0
// for an empty slice.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	rank := p * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.StdDev()
}

// Utilization integrates "k units busy" over time so that resource
// occupancy can be reported as an average percentage, the way the paper
// reports CPU and GPU usage. Time is an opaque int64 (the simulator's
// nanosecond clock).
type Utilization struct {
	capacity  int
	last      int64
	busy      int
	busyInt   float64 // integral of busy units × ns
	started   bool
	startTime int64
}

// NewUtilization creates an integrator for a resource with the given
// total capacity (e.g. 32 cores, 4 GPUs).
func NewUtilization(capacity int) *Utilization {
	if capacity <= 0 {
		panic("stats: utilization capacity must be positive")
	}
	return &Utilization{capacity: capacity}
}

// Set records that `busy` units are in use from time t onward.
func (u *Utilization) Set(t int64, busy int) {
	if !u.started {
		u.started = true
		u.startTime = t
		u.last = t
		u.busy = busy
		return
	}
	if t < u.last {
		panic("stats: utilization time went backwards")
	}
	u.busyInt += float64(u.busy) * float64(t-u.last)
	u.last = t
	u.busy = busy
}

// Add adjusts the busy count by delta at time t.
func (u *Utilization) Add(t int64, delta int) { u.Set(t, u.busy+delta) }

// Average returns mean utilisation in [0,1] over [start, end]. The
// currently-busy tail between the last event and end is included.
func (u *Utilization) Average(end int64) float64 {
	if !u.started || end <= u.startTime {
		return 0
	}
	total := u.busyInt + float64(u.busy)*float64(end-u.last)
	return total / (float64(u.capacity) * float64(end-u.startTime))
}

// Busy returns the instantaneous busy count.
func (u *Utilization) Busy() int { return u.busy }

// Capacity returns the configured capacity.
func (u *Utilization) Capacity() int { return u.capacity }
