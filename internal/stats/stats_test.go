package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Population stddev of this classic example is 2; sample variance
	// uses n-1: m2 = 32, so variance = 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Fatalf("single-value accumulator mean/var = %v/%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	err := quick.Check(func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		var sum float64
		for i, r := range raw {
			xs[i] = float64(r)
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		variance := m2 / float64(len(xs)-1)
		return almostEqual(w.Mean(), mean, 1e-6) && almostEqual(w.Variance(), variance, math.Max(1e-6, variance*1e-9))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if !almostEqual(s.P50, 3, 1e-12) {
		t.Fatalf("p50 = %v, want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDegenerate(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if Percentile([]float64{7}, 0.99) != 7 {
		t.Fatal("single-element percentile should be the element")
	}
}

func TestPercentileMonotone(t *testing.T) {
	err := quick.Check(func(raw []uint8, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs) // sorts a copy internally; re-sort here
		_ = s
		sorted := append([]float64(nil), xs...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		pa, pb := float64(a)/255, float64(b)/255
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(sorted, pa) <= Percentile(sorted, pb)+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndStdDevHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean([1 2 3]) != 2")
	}
	if !almostEqual(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatal("StdDev mismatch")
	}
}

func TestUtilizationAverage(t *testing.T) {
	u := NewUtilization(4)
	u.Set(0, 4)  // 4 busy in [0, 10)
	u.Set(10, 0) // idle in [10, 20)
	if got := u.Average(20); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("average = %v, want 0.5", got)
	}
}

func TestUtilizationAddAndTail(t *testing.T) {
	u := NewUtilization(2)
	u.Add(0, 1)
	u.Add(5, 1) // 2 busy from t=5
	// [0,5): 1 busy, [5,10]: 2 busy → integral = 5 + 10 = 15 of 20.
	if got := u.Average(10); !almostEqual(got, 0.75, 1e-12) {
		t.Fatalf("average = %v, want 0.75", got)
	}
	if u.Busy() != 2 || u.Capacity() != 2 {
		t.Fatalf("busy/capacity = %d/%d", u.Busy(), u.Capacity())
	}
}

func TestUtilizationEmpty(t *testing.T) {
	u := NewUtilization(8)
	if u.Average(100) != 0 {
		t.Fatal("untouched utilization should average 0")
	}
}

func TestUtilizationPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-positive capacity")
			}
		}()
		NewUtilization(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for time going backwards")
			}
		}()
		u := NewUtilization(1)
		u.Set(10, 1)
		u.Set(5, 0)
	}()
}
