package tfexample

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundtripAllFeatureKinds(t *testing.T) {
	ex := Example{
		"image/encoded":     {Bytes: [][]byte{[]byte("jpegdata"), []byte("more")}},
		"image/class/label": {Ints: []int64{42, -7, 0}},
		"image/aspect":      {Floats: []float32{1.5, -0.25}},
	}
	data := Marshal(ex)
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("features = %d", len(got))
	}
	if !bytes.Equal(got["image/encoded"].Bytes[0], []byte("jpegdata")) ||
		!bytes.Equal(got["image/encoded"].Bytes[1], []byte("more")) {
		t.Fatalf("bytes feature: %+v", got["image/encoded"])
	}
	ints := got["image/class/label"].Ints
	if len(ints) != 3 || ints[0] != 42 || ints[1] != -7 || ints[2] != 0 {
		t.Fatalf("ints feature: %v", ints)
	}
	floats := got["image/aspect"].Floats
	if len(floats) != 2 || floats[0] != 1.5 || floats[1] != -0.25 {
		t.Fatalf("floats feature: %v", floats)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	ex := Example{
		"b": {Ints: []int64{1}},
		"a": {Ints: []int64{2}},
		"c": {Bytes: [][]byte{[]byte("x")}},
	}
	if !bytes.Equal(Marshal(ex), Marshal(ex)) {
		t.Fatal("marshal not deterministic")
	}
}

func TestEmptyExample(t *testing.T) {
	data := Marshal(Example{})
	got, err := Unmarshal(data)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
	// Completely empty input is a valid empty message too.
	got, err = Unmarshal(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("nil input: %v err %v", got, err)
	}
}

func TestRoundtripProperty(t *testing.T) {
	err := quick.Check(func(img []byte, label int64, name string) bool {
		ex := Example{
			"image/encoded":     {Bytes: [][]byte{img}},
			"image/class/label": {Ints: []int64{label}},
			"image/filename":    {Bytes: [][]byte{[]byte(name)}},
		}
		got, err := Unmarshal(Marshal(ex))
		if err != nil {
			return false
		}
		return bytes.Equal(got["image/encoded"].Bytes[0], img) &&
			got["image/class/label"].Ints[0] == label &&
			string(got["image/filename"].Bytes[0]) == name
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalToleratesUnknownFields(t *testing.T) {
	// Hand-build an Example with an extra unknown field 9 (varint) at
	// the top level and inside the Feature.
	var b []byte
	b = appendTag(b, 9, wtVarint)
	b = appendVarint(b, 123)
	b = append(b, Marshal(Example{"k": {Ints: []int64{5}}})...)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got["k"].Ints[0] != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	valid := Marshal(Example{"k": {Bytes: [][]byte{bytes.Repeat([]byte{1}, 50)}}})
	cases := [][]byte{
		valid[:len(valid)-10],          // truncated payload
		append([]byte{0xFF}, valid...), // bogus leading tag/varint
		{0x0A, 0xFF, 0xFF, 0xFF, 0xFF}, // length longer than buffer
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: corruption accepted", i)
		}
	}
}

func TestUnpackedListsDecode(t *testing.T) {
	// Some writers emit unpacked repeated scalars; build one by hand:
	// Feature{int64_list{value: 7 (unpacked varint)}}.
	var il []byte
	il = appendTag(il, 1, wtVarint)
	il = appendVarint(il, 7)
	var feat []byte
	feat = appendBytesField(feat, 3, il)
	var entry []byte
	entry = appendBytesField(entry, 1, []byte("n"))
	entry = appendBytesField(entry, 2, feat)
	var features []byte
	features = appendBytesField(features, 1, entry)
	msg := appendBytesField(nil, 1, features)

	got, err := Unmarshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got["n"].Ints[0] != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestImageExampleShape(t *testing.T) {
	ex := ImageExample([]byte("img"), 3, "f.jpg")
	if string(ex["image/encoded"].Bytes[0]) != "img" ||
		ex["image/class/label"].Ints[0] != 3 ||
		string(ex["image/filename"].Bytes[0]) != "f.jpg" {
		t.Fatalf("%+v", ex)
	}
}

func TestMarshalToSizeExact(t *testing.T) {
	for _, size := range []int{90, 100, 127, 128, 129, 1000, 16384, 16385} {
		out, err := MarshalToSize(7, "shard/rec-1", size, 0xAB)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(out) != size {
			t.Fatalf("size %d: got %d bytes", size, len(out))
		}
		ex, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if ex["image/class/label"].Ints[0] != 7 {
			t.Fatalf("size %d: label lost", size)
		}
	}
}

func TestMarshalToSizeTooSmall(t *testing.T) {
	if _, err := MarshalToSize(1, "some/very/long/filename.jpg", 10, 0); err == nil {
		t.Fatal("expected error for impossible size")
	}
}

func TestMarshalToSizeProperty(t *testing.T) {
	err := quick.Check(func(label int64, raw uint16) bool {
		size := int(raw%5000) + 90
		out, err := MarshalToSize(label, "f", size, 1)
		return err == nil && len(out) == size
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	ex := ImageExample(bytes.Repeat([]byte{1}, 100<<10), 3, "f.jpg")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Marshal(ex)
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	data := Marshal(ImageExample(bytes.Repeat([]byte{1}, 100<<10), 3, "f.jpg"))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
