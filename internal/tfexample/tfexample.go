// Package tfexample implements the tf.Example payload format carried
// inside TFRecord shards. The paper's datasets are "ImageNet converted
// into TFRecords" — i.e. every record is a serialized tf.Example
// protocol-buffer message holding the encoded image bytes plus labels.
//
// The package is a minimal, dependency-free implementation of the
// protobuf wire format restricted to the three message types involved:
//
//	message BytesList { repeated bytes value = 1; }
//	message FloatList { repeated float value = 1 [packed = true]; }
//	message Int64List { repeated int64 value = 1 [packed = true]; }
//	message Feature   { oneof kind {
//	    BytesList bytes_list = 1; FloatList float_list = 2;
//	    Int64List int64_list = 3; } }
//	message Features  { map<string, Feature> feature = 1; }
//	message Example   { Features features = 1; }
//
// Marshal is deterministic (features sorted by name), and Unmarshal
// tolerates unknown fields, so real TensorFlow-produced records decode.
package tfexample

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Feature is one named value list; exactly one of the three lists
// should be set (protobuf oneof semantics — Marshal picks the first
// non-nil in Bytes, Ints, Floats order).
type Feature struct {
	Bytes  [][]byte
	Ints   []int64
	Floats []float32
}

// Example is a tf.Example: a map from feature name to value list.
type Example map[string]Feature

// Common errors.
var (
	// ErrMalformed reports a wire-format violation.
	ErrMalformed = errors.New("tfexample: malformed message")
)

// wire types
const (
	wtVarint = 0
	wtI64    = 1
	wtLen    = 2
	wtI32    = 5
)

func appendVarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendTag(b []byte, field int, wt int) []byte {
	return appendVarint(b, uint64(field)<<3|uint64(wt))
}

func appendBytesField(b []byte, field int, data []byte) []byte {
	b = appendTag(b, field, wtLen)
	b = appendVarint(b, uint64(len(data)))
	return append(b, data...)
}

// marshalFeature encodes the Feature submessage.
func marshalFeature(f Feature) []byte {
	var inner []byte
	switch {
	case f.Bytes != nil:
		var bl []byte
		for _, v := range f.Bytes {
			bl = appendBytesField(bl, 1, v)
		}
		inner = appendBytesField(nil, 1, bl) // bytes_list = 1
	case f.Ints != nil:
		var packed []byte
		for _, v := range f.Ints {
			packed = appendVarint(packed, uint64(v))
		}
		il := appendBytesField(nil, 1, packed)
		inner = appendBytesField(nil, 3, il) // int64_list = 3
	case f.Floats != nil:
		var packed []byte
		for _, v := range f.Floats {
			packed = binary.LittleEndian.AppendUint32(packed, math.Float32bits(v))
		}
		fl := appendBytesField(nil, 1, packed)
		inner = appendBytesField(nil, 2, fl) // float_list = 2
	}
	return inner
}

// Marshal serializes the example deterministically.
func Marshal(ex Example) []byte {
	names := make([]string, 0, len(ex))
	for name := range ex {
		names = append(names, name)
	}
	sort.Strings(names)

	var features []byte
	for _, name := range names {
		// map entry: key = 1 (string), value = 2 (Feature)
		var entry []byte
		entry = appendBytesField(entry, 1, []byte(name))
		entry = appendBytesField(entry, 2, marshalFeature(ex[name]))
		features = appendBytesField(features, 1, entry)
	}
	// Example.features = 1
	return appendBytesField(nil, 1, features)
}

// reader is a tiny wire-format cursor.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) done() bool { return r.pos >= len(r.b) }

func (r *reader) varint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	r.pos += n
	return v, nil
}

func (r *reader) tag() (field int, wt int, err error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, ErrMalformed
	}
	out := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

// skip advances past a field of the given wire type.
func (r *reader) skip(wt int) error {
	switch wt {
	case wtVarint:
		_, err := r.varint()
		return err
	case wtI64:
		if len(r.b)-r.pos < 8 {
			return ErrMalformed
		}
		r.pos += 8
		return nil
	case wtLen:
		_, err := r.bytes()
		return err
	case wtI32:
		if len(r.b)-r.pos < 4 {
			return ErrMalformed
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("%w: wire type %d", ErrMalformed, wt)
	}
}

// Unmarshal parses a serialized tf.Example.
func Unmarshal(data []byte) (Example, error) {
	ex := Example{}
	r := &reader{b: data}
	for !r.done() {
		field, wt, err := r.tag()
		if err != nil {
			return nil, err
		}
		if field == 1 && wt == wtLen { // features
			fb, err := r.bytes()
			if err != nil {
				return nil, err
			}
			if err := parseFeatures(fb, ex); err != nil {
				return nil, err
			}
			continue
		}
		if err := r.skip(wt); err != nil {
			return nil, err
		}
	}
	return ex, nil
}

func parseFeatures(data []byte, ex Example) error {
	r := &reader{b: data}
	for !r.done() {
		field, wt, err := r.tag()
		if err != nil {
			return err
		}
		if field == 1 && wt == wtLen { // map entry
			entry, err := r.bytes()
			if err != nil {
				return err
			}
			name, feat, err := parseEntry(entry)
			if err != nil {
				return err
			}
			ex[name] = feat
			continue
		}
		if err := r.skip(wt); err != nil {
			return err
		}
	}
	return nil
}

func parseEntry(data []byte) (string, Feature, error) {
	r := &reader{b: data}
	var name string
	var feat Feature
	for !r.done() {
		field, wt, err := r.tag()
		if err != nil {
			return "", feat, err
		}
		switch {
		case field == 1 && wt == wtLen:
			b, err := r.bytes()
			if err != nil {
				return "", feat, err
			}
			name = string(b)
		case field == 2 && wt == wtLen:
			b, err := r.bytes()
			if err != nil {
				return "", feat, err
			}
			feat, err = parseFeature(b)
			if err != nil {
				return "", feat, err
			}
		default:
			if err := r.skip(wt); err != nil {
				return "", feat, err
			}
		}
	}
	return name, feat, nil
}

func parseFeature(data []byte) (Feature, error) {
	var f Feature
	r := &reader{b: data}
	for !r.done() {
		field, wt, err := r.tag()
		if err != nil {
			return f, err
		}
		if wt != wtLen {
			if err := r.skip(wt); err != nil {
				return f, err
			}
			continue
		}
		body, err := r.bytes()
		if err != nil {
			return f, err
		}
		switch field {
		case 1: // bytes_list
			if err := parseList(body, func(rr *reader) error {
				v, err := rr.bytes()
				if err != nil {
					return err
				}
				f.Bytes = append(f.Bytes, append([]byte(nil), v...))
				return nil
			}, wtLen); err != nil {
				return f, err
			}
		case 2: // float_list (packed or unpacked)
			if err := parseFloatList(body, &f); err != nil {
				return f, err
			}
		case 3: // int64_list (packed or unpacked)
			if err := parseInt64List(body, &f); err != nil {
				return f, err
			}
		}
	}
	return f, nil
}

// parseList iterates "repeated" fields numbered 1 of the given wire
// type inside a list message.
func parseList(data []byte, fn func(*reader) error, wantWT int) error {
	r := &reader{b: data}
	for !r.done() {
		field, wt, err := r.tag()
		if err != nil {
			return err
		}
		if field == 1 && wt == wantWT {
			if err := fn(r); err != nil {
				return err
			}
			continue
		}
		if err := r.skip(wt); err != nil {
			return err
		}
	}
	return nil
}

func parseInt64List(data []byte, f *Feature) error {
	r := &reader{b: data}
	for !r.done() {
		field, wt, err := r.tag()
		if err != nil {
			return err
		}
		switch {
		case field == 1 && wt == wtLen: // packed
			packed, err := r.bytes()
			if err != nil {
				return err
			}
			pr := &reader{b: packed}
			for !pr.done() {
				v, err := pr.varint()
				if err != nil {
					return err
				}
				f.Ints = append(f.Ints, int64(v))
			}
		case field == 1 && wt == wtVarint: // unpacked
			v, err := r.varint()
			if err != nil {
				return err
			}
			f.Ints = append(f.Ints, int64(v))
		default:
			if err := r.skip(wt); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseFloatList(data []byte, f *Feature) error {
	r := &reader{b: data}
	for !r.done() {
		field, wt, err := r.tag()
		if err != nil {
			return err
		}
		switch {
		case field == 1 && wt == wtLen: // packed
			packed, err := r.bytes()
			if err != nil {
				return err
			}
			if len(packed)%4 != 0 {
				return ErrMalformed
			}
			for i := 0; i < len(packed); i += 4 {
				f.Floats = append(f.Floats,
					math.Float32frombits(binary.LittleEndian.Uint32(packed[i:])))
			}
		case field == 1 && wt == wtI32: // unpacked
			if len(r.b)-r.pos < 4 {
				return ErrMalformed
			}
			f.Floats = append(f.Floats,
				math.Float32frombits(binary.LittleEndian.Uint32(r.b[r.pos:])))
			r.pos += 4
		default:
			if err := r.skip(wt); err != nil {
				return err
			}
		}
	}
	return nil
}

// ImageExample builds the canonical ImageNet-style record: encoded
// image bytes, an integer class label, and the source file name.
func ImageExample(image []byte, label int64, filename string) Example {
	return Example{
		"image/encoded":     {Bytes: [][]byte{image}},
		"image/class/label": {Ints: []int64{label}},
		"image/filename":    {Bytes: [][]byte{[]byte(filename)}},
	}
}

// MarshalToSize marshals an ImageExample whose serialized form is
// exactly size bytes, by sizing the embedded image. It fails if size is
// too small to hold the fixed fields.
func MarshalToSize(label int64, filename string, size int, fill byte) ([]byte, error) {
	// Serialized size is monotone in the image length; binary-search
	// would be overkill since varint boundaries shift by at most a few
	// bytes — walk down from an estimate.
	overhead := len(Marshal(ImageExample(nil, label, filename)))
	imgLen := size - overhead - 8 // generous slack for length varints
	if imgLen < 0 {
		imgLen = 0
	}
	img := make([]byte, imgLen)
	for i := range img {
		img[i] = fill
	}
	for {
		out := Marshal(ImageExample(img, label, filename))
		switch {
		case len(out) == size:
			return out, nil
		case len(out) < size:
			img = append(img, fill)
		default:
			if len(img) == 0 {
				return nil, fmt.Errorf("tfexample: size %d too small (fixed fields need %d)",
					size, len(out))
			}
			img = img[:len(img)-1]
		}
	}
}
