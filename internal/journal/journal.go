// Package journal implements a crash-safe, append-only write-ahead log
// used by the core write path (tier-0-acked write-back durability) and
// the heat-policy snapshot. It follows the trace binary-format
// conventions (internal/trace/format.go): a self-describing magic +
// length-prefixed JSON header, fixed-layout little-endian records, and
// replay-on-open — plus a per-record CRC so a torn tail left by kill -9
// is detected and truncated rather than replayed.
//
// On-disk layout:
//
//	| "MJNL1\n" | u32 headerLen | header JSON | record* |
//
// and each record is
//
//	| u8 kind | u64 seq | u64 off | u32 nameLen | u32 dataLen |
//	| name bytes | data bytes | u32 crc |
//
// with the CRC (Castagnoli) covering everything from kind through the
// last data byte. Integers are little-endian, matching the trace
// format. Record kinds are owned by the caller; the journal only
// enforces framing, ordering (seq is assigned monotonically by Append)
// and integrity.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Magic identifies a journal file; the trailing newline keeps
// accidental text-mode corruption detectable, as in the trace format.
const Magic = "MJNL1\n"

// Version is written into the header and checked on open.
const Version = 1

// Framing limits. Records above these bounds are rejected on append
// and treated as corruption on replay — the same decode-side defense
// the peernet frame reader uses.
const (
	MaxName = 64 << 10 // 64 KiB file names
	MaxData = 64 << 20 // 64 MiB payload per record
)

// recPrefix is the fixed-size portion of a record before the variable
// name/data bytes: kind u8 + seq u64 + off u64 + nameLen u32 + dataLen u32.
const recPrefix = 1 + 8 + 8 + 4 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append/Sync/Compact after Close.
var ErrClosed = errors.New("journal: closed")

// Record is one journal entry. Kind and the use of Off/Name/Data are
// defined by the caller; Seq is assigned by Append and reported on
// replay.
type Record struct {
	Kind byte
	Seq  uint64
	Off  uint64
	Name string
	Data []byte
}

// header is the JSON blob after the magic.
type header struct {
	Version int               `json:"version"`
	Meta    map[string]string `json:"meta,omitempty"`
}

// Stats reports a journal's lifetime counters since Open.
type Stats struct {
	// Replayed is the number of intact records recovered on open;
	// TruncatedBytes the length of the torn tail discarded (0 on a
	// clean open).
	Replayed       int
	TruncatedBytes int64
	// Appends / AppendedBytes count records written since open.
	Appends       int64
	AppendedBytes int64
	// Compactions counts Compact calls; Size is the current file size.
	Compactions int64
	Size        int64
}

// Journal is an append-only log over a single file. Append is
// mutex-guarded and flushes to the OS file before returning, so an
// acknowledged append survives the death of this process (kill -9).
// With Sync enabled every append also fsyncs, extending durability to
// machine crashes at the cost of one disk flush per record.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	seq    uint64
	size   int64
	sync   bool
	closed bool

	replayed       int
	truncatedBytes int64
	appends        int64
	appendedBytes  int64
	compactions    int64
}

// Options configure Open.
type Options struct {
	// Meta is stored in the header of a newly created journal
	// (informational; existing journals keep their header).
	Meta map[string]string
	// Sync fsyncs after every append (and after compaction). Without
	// it appends are durable against process death but not power loss.
	Sync bool
}

// Open opens (creating if absent) the journal at path, replays every
// intact record through fn in append order, truncates any torn tail,
// and leaves the journal positioned for appends. A nil fn discards the
// replayed records. If fn returns an error, Open stops and returns it
// with the file closed.
func Open(path string, opts Options, fn func(Record) error) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path, sync: opts.Sync}
	if err := j.load(opts, fn); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load validates or writes the header, replays records and truncates
// the torn tail (if any).
func (j *Journal) load(opts Options, fn func(Record) error) error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if info.Size() == 0 {
		return j.writeHeader(opts.Meta)
	}

	r := &countingReader{r: j.f}
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != Magic {
		return fmt.Errorf("journal: %s is not a journal (bad magic)", j.path)
	}
	var hlenBuf [4]byte
	if _, err := io.ReadFull(r, hlenBuf[:]); err != nil {
		return fmt.Errorf("journal: %s: truncated header length", j.path)
	}
	hlen := binary.LittleEndian.Uint32(hlenBuf[:])
	if hlen > 1<<20 {
		return fmt.Errorf("journal: %s: implausible header length %d", j.path, hlen)
	}
	hbuf := make([]byte, hlen)
	if _, err := io.ReadFull(r, hbuf); err != nil {
		return fmt.Errorf("journal: %s: truncated header", j.path)
	}
	var h header
	if err := json.Unmarshal(hbuf, &h); err != nil {
		return fmt.Errorf("journal: %s: header: %w", j.path, err)
	}
	if h.Version != Version {
		return fmt.Errorf("journal: %s: version %d, want %d", j.path, h.Version, Version)
	}

	// Replay. Any framing violation, short read, or CRC mismatch marks
	// the start of a torn tail: everything before it is intact (appends
	// are sequential), everything from it on is discarded.
	good := r.n
	for {
		rec, ok, err := readRecord(r)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		j.replayed++
		if fn != nil {
			if err := fn(rec); err != nil {
				return err
			}
		}
		good = r.n
	}
	if torn := info.Size() - good; torn > 0 {
		j.truncatedBytes = torn
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.size = good
	return nil
}

// writeHeader initializes an empty file.
func (j *Journal) writeHeader(meta map[string]string) error {
	hbuf, err := json.Marshal(header{Version: Version, Meta: meta})
	if err != nil {
		return fmt.Errorf("journal: header: %w", err)
	}
	buf := make([]byte, 0, len(Magic)+4+len(hbuf))
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hbuf)))
	buf = append(buf, hbuf...)
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	j.size = int64(len(buf))
	return nil
}

// countingReader tracks how many bytes have been consumed, so replay
// knows the exact offset of the last intact record.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readRecord decodes one record. ok=false means a clean or torn end of
// log (EOF, short read, bounds violation, or CRC mismatch) — the
// caller truncates there. A non-nil error means the underlying reader
// itself failed.
func readRecord(r io.Reader) (Record, bool, error) {
	var prefix [recPrefix]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, false, nil
		}
		return Record{}, false, fmt.Errorf("journal: read: %w", err)
	}
	nameLen := binary.LittleEndian.Uint32(prefix[17:21])
	dataLen := binary.LittleEndian.Uint32(prefix[21:25])
	if nameLen > MaxName || dataLen > MaxData {
		return Record{}, false, nil
	}
	body := make([]byte, int(nameLen)+int(dataLen)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, false, nil
		}
		return Record{}, false, fmt.Errorf("journal: read: %w", err)
	}
	crc := crc32.New(castagnoli)
	crc.Write(prefix[:])
	crc.Write(body[:len(body)-4])
	if crc.Sum32() != binary.LittleEndian.Uint32(body[len(body)-4:]) {
		return Record{}, false, nil
	}
	rec := Record{
		Kind: prefix[0],
		Seq:  binary.LittleEndian.Uint64(prefix[1:9]),
		Off:  binary.LittleEndian.Uint64(prefix[9:17]),
		Name: string(body[:nameLen]),
	}
	if dataLen > 0 {
		rec.Data = append([]byte(nil), body[nameLen:nameLen+dataLen]...)
	}
	return rec, true, nil
}

// encode appends the wire form of rec (with seq) to buf.
func encode(buf []byte, rec Record, seq uint64) []byte {
	start := len(buf)
	buf = append(buf, rec.Kind)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Off)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Name)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Data)))
	buf = append(buf, rec.Name...)
	buf = append(buf, rec.Data...)
	crc := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// Append writes one record and returns once the bytes have reached the
// OS file (surviving this process's death). Seq is assigned
// monotonically and returned — the record's Seq field is ignored on
// input — so callers can reference their own record in later ones (a
// flush record covering "everything up to seq N").
func (j *Journal) Append(rec Record) (uint64, error) {
	if len(rec.Name) > MaxName {
		return 0, fmt.Errorf("journal: name %d bytes exceeds %d", len(rec.Name), MaxName)
	}
	if len(rec.Data) > MaxData {
		return 0, fmt.Errorf("journal: record %d bytes exceeds %d", len(rec.Data), MaxData)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	j.seq++
	buf := encode(make([]byte, 0, recPrefix+len(rec.Name)+len(rec.Data)+4), rec, j.seq)
	if _, err := j.f.Write(buf); err != nil {
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return 0, fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.size += int64(len(buf))
	j.appends++
	j.appendedBytes += int64(len(buf))
	return j.seq, nil
}

// Sync forces an fsync regardless of the Sync option — callers use it
// at durability boundaries (checkpoint complete) without paying a
// per-record fsync.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Compact atomically rewrites the journal to contain exactly the live
// records, in order. On-disk seqs are renumbered from 1 but the
// in-memory counter keeps its high-water mark, so records appended
// after a compaction never reuse a seq handed out before it. The
// rewrite goes through a temp file + rename, so a crash mid-compaction
// leaves either the old or the new journal, never a hybrid.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	hbuf, err := json.Marshal(header{Version: Version})
	if err != nil {
		return fmt.Errorf("journal: header: %w", err)
	}
	buf := make([]byte, 0, len(Magic)+4+len(hbuf))
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hbuf)))
	buf = append(buf, hbuf...)
	seq := uint64(0)
	for _, rec := range live {
		seq++
		buf = encode(buf, rec, seq)
	}
	tmp := j.path + ".compact"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: compact: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.f.Close()
	j.f = f
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	if seq > j.seq {
		j.seq = seq
	}
	j.size = int64(len(buf))
	j.compactions++
	return nil
}

// Stats returns the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Replayed:       j.replayed,
		TruncatedBytes: j.truncatedBytes,
		Appends:        j.appends,
		AppendedBytes:  j.appendedBytes,
		Compactions:    j.compactions,
		Size:           j.size,
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the file. Further appends fail with
// ErrClosed. Safe to call twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: sync: %w", err)
	}
	return j.f.Close()
}
