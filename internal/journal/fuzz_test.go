package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// seedJournal builds a real two-record journal and returns its bytes,
// so the fuzzer starts from parseable input.
func seedJournal(f *testing.F) []byte {
	f.Helper()
	dir, err := os.MkdirTemp("", "journal-fuzz-seed-")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "wal")
	j, err := Open(path, Options{Meta: map[string]string{"node": "fuzz"}}, nil)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := j.Append(Record{Kind: 1, Name: "ckpt/shard-0", Off: 1 << 20}); err != nil {
		f.Fatal(err)
	}
	if _, err := j.Append(Record{Kind: 2, Name: "ckpt/shard-0", Off: 4096, Data: []byte("checkpoint bytes")}); err != nil {
		f.Fatal(err)
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return b
}

// FuzzReplay throws arbitrary file contents at Open's replay path. The
// invariants: no panic and no unbounded allocation on any input; when
// Open succeeds, the stats agree with what the callback saw, and a
// fresh Append must round-trip through a reopen — a fuzzed tail can
// never poison subsequent appends.
func FuzzReplay(f *testing.F) {
	valid := seedJournal(f)
	f.Add([]byte(nil))
	f.Add([]byte(Magic))
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // torn tail
	corrupt := bytes.Clone(valid)
	corrupt[len(corrupt)-1] ^= 0xff // CRC mismatch on the last record
	f.Add(corrupt)
	f.Add([]byte("MJNL1\n\xff\xff\xff\xff not json"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var replayed []Record
		j, err := Open(path, Options{}, func(r Record) error {
			replayed = append(replayed, Record{
				Kind: r.Kind, Seq: r.Seq, Off: r.Off,
				Name: r.Name, Data: bytes.Clone(r.Data),
			})
			return nil
		})
		if err != nil {
			// A rejected header (bad magic, unparseable JSON) is the only
			// failure mode; record-level damage must degrade to torn-tail
			// truncation, never an error.
			return
		}
		defer j.Close()
		st := j.Stats()
		if st.Replayed != len(replayed) {
			t.Fatalf("stats report %d replayed, callback saw %d", st.Replayed, len(replayed))
		}
		if st.TruncatedBytes < 0 || st.TruncatedBytes > int64(len(data)) {
			t.Fatalf("truncated %d bytes from a %d-byte input", st.TruncatedBytes, len(data))
		}
		want := Record{Kind: 7, Off: 42, Name: "fuzz/file", Data: []byte("payload")}
		seq, err := j.Append(want)
		if err != nil {
			t.Fatalf("append after fuzzed open: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		var again []Record
		j2, err := Open(path, Options{}, func(r Record) error {
			again = append(again, Record{
				Kind: r.Kind, Seq: r.Seq, Off: r.Off,
				Name: r.Name, Data: bytes.Clone(r.Data),
			})
			return nil
		})
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer j2.Close()
		if len(again) != len(replayed)+1 {
			t.Fatalf("reopen replayed %d records, want %d survivors + 1 appended", len(again), len(replayed))
		}
		last := again[len(again)-1]
		if last.Seq != seq || last.Kind != want.Kind || last.Off != want.Off ||
			last.Name != want.Name || !bytes.Equal(last.Data, want.Data) {
			t.Fatalf("appended record did not round-trip: %+v (assigned seq %d)", last, seq)
		}
	})
}
