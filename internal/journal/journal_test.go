package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openCollect(t *testing.T, path string, opts Options) (*Journal, []Record) {
	t.Helper()
	var got []Record
	j, err := Open(path, opts, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, got
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal", "m.journal")
	j, got := openCollect(t, path, Options{Meta: map[string]string{"node": "a"}})
	if len(got) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(got))
	}
	recs := []Record{
		{Kind: 1, Off: 1 << 20, Name: "ckpt/shard-0"},
		{Kind: 2, Off: 0, Name: "ckpt/shard-0", Data: []byte("hello checkpoint")},
		{Kind: 2, Off: 16, Name: "ckpt/shard-0", Data: bytes.Repeat([]byte{0xAB}, 4096)},
		{Kind: 3, Name: "ckpt/shard-0"},
		{Kind: 4, Name: "ckpt/old", Data: nil},
	}
	for _, r := range recs {
		if _, err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := j.Stats()
	if st.Appends != int64(len(recs)) {
		t.Fatalf("Appends = %d, want %d", st.Appends, len(recs))
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got := openCollect(t, path, Options{})
	defer j2.Close()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		want := recs[i]
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if r.Kind != want.Kind || r.Off != want.Off || r.Name != want.Name || !bytes.Equal(r.Data, want.Data) {
			t.Errorf("record %d mismatch: %+v", i, r)
		}
	}
	if st := j2.Stats(); st.Replayed != len(recs) || st.TruncatedBytes != 0 {
		t.Fatalf("clean reopen stats: %+v", st)
	}
	// Seq continues past the replayed records.
	if _, err := j2.Append(Record{Kind: 2, Name: "x"}); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if j2.seq != uint64(len(recs)+1) {
		t.Fatalf("seq after reopen append = %d, want %d", j2.seq, len(recs)+1)
	}
}

// TestTruncateAtEveryOffset is the torn-tail harness: it cuts the file
// at every byte offset past the header and asserts that replay yields
// an intact prefix of the appended records — never a torn, corrupted,
// or phantom record — and that the journal is usable for appends after
// recovery.
func TestTruncateAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	j, _ := openCollect(t, full, Options{})
	recs := []Record{
		{Kind: 1, Off: 64, Name: "a"},
		{Kind: 2, Off: 0, Name: "a", Data: []byte("0123456789abcdef")},
		{Kind: 2, Off: 16, Name: "a", Data: bytes.Repeat([]byte{7}, 100)},
		{Kind: 3, Name: "a"},
	}
	// boundaries[i] = file size after i records.
	boundaries := []int64{j.Stats().Size}
	for _, r := range recs {
		if _, err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
		boundaries = append(boundaries, j.Stats().Size)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	blob, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	header := boundaries[0]
	for cut := header; cut <= int64(len(blob)); cut++ {
		// How many whole records survive a cut at this offset?
		wantN := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				wantN = i
			}
		}
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.journal", cut))
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		j, err := Open(path, Options{}, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), wantN)
		}
		for i, r := range got {
			want := recs[i]
			if r.Kind != want.Kind || r.Off != want.Off || r.Name != want.Name || !bytes.Equal(r.Data, want.Data) {
				t.Fatalf("cut %d: record %d torn: %+v", cut, i, r)
			}
		}
		wantTorn := cut - boundaries[wantN]
		if st := j.Stats(); st.TruncatedBytes != wantTorn {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, st.TruncatedBytes, wantTorn)
		}
		// The journal must be append-ready after recovery.
		if _, err := j.Append(Record{Kind: 9, Name: "post-crash"}); err != nil {
			t.Fatalf("cut %d: Append after recovery: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		// And a further reopen sees the survivors plus the new record.
		j2, got2 := openCollect(t, path, Options{})
		if len(got2) != wantN+1 || got2[len(got2)-1].Name != "post-crash" {
			t.Fatalf("cut %d: second reopen replayed %d records", cut, len(got2))
		}
		j2.Close()
		os.Remove(path)
	}
}

// TestCorruptMidFile flips a byte inside the first record's payload:
// the CRC must reject it, and because appends are sequential the torn
// tail starts there — everything from that record on is discarded.
func TestCorruptMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.journal")
	j, _ := openCollect(t, path, Options{})
	hdr := j.Stats().Size
	for i := 0; i < 3; i++ {
		if _, err := j.Append(Record{Kind: 2, Name: "f", Data: bytes.Repeat([]byte{byte(i)}, 32)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	blob, _ := os.ReadFile(path)
	blob[hdr+recPrefix+2] ^= 0xFF // inside record 0's name/data
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, got := openCollect(t, path, Options{})
	defer j2.Close()
	if len(got) != 0 {
		t.Fatalf("replayed %d records after mid-file corruption, want 0", len(got))
	}
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("corruption did not truncate")
	}
}

func TestRejectsBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("MTRB1\nnot a journal"), 0o644)
	if _, err := Open(bad, Options{}, nil); err == nil {
		t.Fatal("Open accepted a non-journal file")
	}
}

func TestAppendBounds(t *testing.T) {
	j, _ := openCollect(t, filepath.Join(t.TempDir(), "m.journal"), Options{})
	defer j.Close()
	if _, err := j.Append(Record{Name: string(make([]byte, MaxName+1))}); err == nil {
		t.Fatal("oversized name accepted")
	}
	if _, err := j.Append(Record{Name: "x", Data: make([]byte, MaxData+1)}); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.journal")
	j, _ := openCollect(t, path, Options{})
	for i := 0; i < 10; i++ {
		if _, err := j.Append(Record{Kind: 2, Name: "f", Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	live := []Record{
		{Kind: 5, Name: "heat/a", Off: 3, Data: []byte("snapshot")},
		{Kind: 5, Name: "heat/b", Off: 3},
	}
	if err := j.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Appends after compaction land after the live set and keep
	// monotonically increasing seqs.
	if _, err := j.Append(Record{Kind: 2, Name: "post"}); err != nil {
		t.Fatalf("Append after Compact: %v", err)
	}
	j.Close()
	j2, got := openCollect(t, path, Options{})
	defer j2.Close()
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if got[0].Name != "heat/a" || !bytes.Equal(got[0].Data, []byte("snapshot")) || got[2].Name != "post" {
		t.Fatalf("unexpected replay after compaction: %+v", got)
	}
	if got[2].Seq <= got[1].Seq {
		t.Fatalf("seqs regressed across compaction: %d then %d", got[1].Seq, got[2].Seq)
	}
}

func TestClosedErrors(t *testing.T) {
	j, _ := openCollect(t, filepath.Join(t.TempDir(), "m.journal"), Options{})
	j.Close()
	if _, err := j.Append(Record{Name: "x"}); err != ErrClosed {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := j.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestReplayErrorStopsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.journal")
	j, _ := openCollect(t, path, Options{})
	j.Append(Record{Kind: 1, Name: "a"})
	j.Close()
	wantErr := fmt.Errorf("boom")
	if _, err := Open(path, Options{}, func(Record) error { return wantErr }); err != wantErr {
		t.Fatalf("Open = %v, want replay error", err)
	}
}

func TestSyncMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.journal")
	j, err := Open(path, Options{Sync: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Record{Kind: 2, Name: "f", Data: []byte("x")}); err != nil {
		t.Fatalf("Append with Sync: %v", err)
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	j.Close()
}
