package recordio

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the RecordIO reader: no panics,
// and agreement with BuildIndex on stream validity.
func FuzzReader(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.Write([]byte("one"))
	_ = w.Write(nil)
	_ = w.Write(bytes.Repeat([]byte{9}, 100))
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:6])
	corrupted := append([]byte(nil), valid.Bytes()...)
	corrupted[0] ^= 1
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, idxErr := BuildIndex(data)
		r := NewReader(bytes.NewReader(data))
		records := 0
		var readErr error
		for {
			payload, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = err
				break
			}
			if records < len(idx) && int64(len(payload)) != idx[records].Length {
				t.Fatalf("record %d: reader length %d, index %d",
					records, len(payload), idx[records].Length)
			}
			records++
		}
		if idxErr == nil && readErr != nil {
			t.Fatalf("index accepted stream the reader rejected: %v", readErr)
		}
		if idxErr == nil && records != len(idx) {
			t.Fatalf("reader found %d records, index %d", records, len(idx))
		}
	})
}
