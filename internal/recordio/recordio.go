// Package recordio implements MXNet's RecordIO container format, the
// second packed dataset format the paper's introduction names next to
// TFRecords ("optimized data formats, such as TensorFlow's TFRecords,
// MXNet's RecordIO, and HDF5, pack several small-sized files into a
// single, larger one").
//
// MONARCH is format-agnostic — it moves whole files between tiers — so
// supporting a second real on-disk format demonstrates that nothing in
// the middleware depends on TFRecord framing.
//
// On-disk layout of each record:
//
//	uint32 magic   = 0xced7230a           (little endian)
//	uint32 lrecord = cflag<<29 | length   (cflag = continuation flag)
//	byte   data[length]
//	byte   pad[(4 - length%4) % 4]        (zero padding to 4-byte alignment)
//
// This implementation writes single-part records (cflag 0) and rejects
// multi-part records on read; MXNet only emits multi-part framing for
// records larger than the 2^29-byte field, far beyond image sizes.
package recordio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic is the per-record marker word.
const Magic uint32 = 0xced7230a

// headerSize is the fixed framing before each payload.
const headerSize = 8

// maxLength is the largest payload a single-part record can hold.
const maxLength = 1<<29 - 1

// Errors returned by Reader.
var (
	// ErrBadMagic reports a corrupted or misaligned record boundary.
	ErrBadMagic = errors.New("recordio: bad magic")
	// ErrTruncated reports a record cut short by EOF.
	ErrTruncated = errors.New("recordio: truncated record")
	// ErrMultiPart reports an unsupported continuation record.
	ErrMultiPart = errors.New("recordio: multi-part records unsupported")
	// ErrTooLarge reports a payload exceeding the length field.
	ErrTooLarge = errors.New("recordio: record exceeds 2^29-1 bytes")
)

// Pad returns the number of zero bytes appended after a payload of n
// bytes.
func Pad(n int64) int64 { return (4 - n%4) % 4 }

// RecordSize returns the on-disk footprint of a payload of n bytes.
func RecordSize(n int64) int64 { return headerSize + n + Pad(n) }

// Writer emits RecordIO framing.
type Writer struct {
	w       *bufio.Writer
	written int64
	records int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record.
func (w *Writer) Write(data []byte) error {
	if len(data) > maxLength {
		return ErrTooLarge
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	var pad [3]byte
	if _, err := w.w.Write(pad[:Pad(int64(len(data)))]); err != nil {
		return err
	}
	w.written += RecordSize(int64(len(data)))
	w.records++
	return nil
}

// Flush drains the internal buffer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Written returns total bytes emitted (after Flush).
func (w *Writer) Written() int64 { return w.written }

// Records returns the number of records written.
func (w *Writer) Records() int { return w.records }

// Reader iterates records.
type Reader struct {
	r      *bufio.Reader
	offset int64
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next payload, or io.EOF cleanly at stream end.
func (r *Reader) Next() ([]byte, error) {
	var hdr [headerSize]byte
	n, err := io.ReadFull(r.r, hdr[:])
	if err == io.EOF && n == 0 {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("%w: header at offset %d", ErrTruncated, r.offset)
	}
	if binary.LittleEndian.Uint32(hdr[:4]) != Magic {
		return nil, fmt.Errorf("%w at offset %d", ErrBadMagic, r.offset)
	}
	lrecord := binary.LittleEndian.Uint32(hdr[4:])
	if cflag := lrecord >> 29; cflag != 0 {
		return nil, fmt.Errorf("%w (cflag %d at offset %d)", ErrMultiPart, cflag, r.offset)
	}
	length := int64(lrecord & maxLength)
	data, err := readPayload(r.r, length)
	if err != nil {
		return nil, fmt.Errorf("%w: payload at offset %d", ErrTruncated, r.offset)
	}
	if pad := Pad(length); pad > 0 {
		var buf [3]byte
		if _, err := io.ReadFull(r.r, buf[:pad]); err != nil {
			return nil, fmt.Errorf("%w: padding at offset %d", ErrTruncated, r.offset)
		}
	}
	r.offset += RecordSize(length)
	return data, nil
}

// Offset returns the stream offset of the next record.
func (r *Reader) Offset() int64 { return r.offset }

// readPayload reads exactly n bytes, growing the buffer incrementally
// so a corrupted length field cannot force a huge up-front allocation.
func readPayload(r io.Reader, n int64) ([]byte, error) {
	const chunk = 1 << 20
	data := make([]byte, 0, min64(n, chunk))
	for int64(len(data)) < n {
		want := min64(n-int64(len(data)), chunk)
		data = append(data, make([]byte, want)...)
		if _, err := io.ReadFull(r, data[int64(len(data))-want:]); err != nil {
			return nil, err
		}
	}
	return data, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Entry locates one record in a serialized stream.
type Entry struct {
	Offset int64 // record header offset
	Length int64 // payload length
}

// End returns the offset one past the record (including padding).
func (e Entry) End() int64 { return e.Offset + RecordSize(e.Length) }

// BuildIndex scans a serialized stream and returns its record index.
func BuildIndex(data []byte) ([]Entry, error) {
	var idx []Entry
	off := int64(0)
	for off < int64(len(data)) {
		if off+headerSize > int64(len(data)) {
			return nil, fmt.Errorf("%w: header at offset %d", ErrTruncated, off)
		}
		if binary.LittleEndian.Uint32(data[off:off+4]) != Magic {
			return nil, fmt.Errorf("%w at offset %d", ErrBadMagic, off)
		}
		lrecord := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if lrecord>>29 != 0 {
			return nil, fmt.Errorf("%w at offset %d", ErrMultiPart, off)
		}
		e := Entry{Offset: off, Length: int64(lrecord & maxLength)}
		if e.End() > int64(len(data)) {
			return nil, fmt.Errorf("%w: payload at offset %d", ErrTruncated, off)
		}
		idx = append(idx, e)
		off = e.End()
	}
	return idx, nil
}
