package recordio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestPadAndRecordSize(t *testing.T) {
	cases := map[int64]int64{0: 0, 1: 3, 2: 2, 3: 1, 4: 0, 5: 3, 100: 0}
	for n, want := range cases {
		if got := Pad(n); got != want {
			t.Errorf("Pad(%d) = %d, want %d", n, got, want)
		}
	}
	if RecordSize(5) != 8+5+3 {
		t.Fatalf("RecordSize(5) = %d", RecordSize(5))
	}
}

func TestWriterExactFraming(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if int64(len(raw)) != RecordSize(5) {
		t.Fatalf("size = %d", len(raw))
	}
	if binary.LittleEndian.Uint32(raw[:4]) != Magic {
		t.Fatal("magic missing")
	}
	if binary.LittleEndian.Uint32(raw[4:8]) != 5 {
		t.Fatal("length wrong")
	}
	if string(raw[8:13]) != "hello" {
		t.Fatal("payload wrong")
	}
	if raw[13] != 0 || raw[14] != 0 || raw[15] != 0 {
		t.Fatal("padding not zeroed")
	}
}

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	records := [][]byte{[]byte("a"), {}, []byte("abcd"), bytes.Repeat([]byte{7}, 1000)}
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 4 || w.Written() != int64(buf.Len()) {
		t.Fatalf("records=%d written=%d buf=%d", w.Records(), w.Written(), buf.Len())
	}
	r := NewReader(&buf)
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRoundtripProperty(t *testing.T) {
	err := quick.Check(func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range payloads {
			if err := w.Write(p); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		idx, err := BuildIndex(buf.Bytes())
		if err != nil || len(idx) != len(payloads) {
			return false
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		for i, want := range payloads {
			if r.Offset() != idx[i].Offset {
				return false
			}
			got, err := r.Next()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReaderDetectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write([]byte("data"))
	_ = w.Flush()
	raw := buf.Bytes()
	raw[0] ^= 0xFF
	if _, err := NewReader(bytes.NewReader(raw)).Next(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v", err)
	}
	if _, err := BuildIndex(raw); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("index: %v", err)
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write([]byte("data-data"))
	_ = w.Flush()
	for _, cut := range []int{4, 10, buf.Len() - 1} {
		if _, err := NewReader(bytes.NewReader(buf.Bytes()[:cut])).Next(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if _, err := BuildIndex(buf.Bytes()[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("index cut %d: %v", cut, err)
		}
	}
}

func TestReaderRejectsMultiPart(t *testing.T) {
	var raw [8]byte
	binary.LittleEndian.PutUint32(raw[:4], Magic)
	binary.LittleEndian.PutUint32(raw[4:], 1<<29) // cflag = 1, length 0
	if _, err := NewReader(bytes.NewReader(raw[:])).Next(); !errors.Is(err, ErrMultiPart) {
		t.Fatalf("got %v", err)
	}
	if _, err := BuildIndex(raw[:]); !errors.Is(err, ErrMultiPart) {
		t.Fatalf("index: %v", err)
	}
}

func TestWriterRejectsOversizedRecord(t *testing.T) {
	w := NewWriter(io.Discard)
	huge := make([]byte, 1<<29)
	if err := w.Write(huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestBuildIndexOffsets(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	sizes := []int{3, 0, 8, 5}
	for _, n := range sizes {
		if err := w.Write(make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Flush()
	idx, err := BuildIndex(buf.Bytes())
	if err != nil || len(idx) != 4 {
		t.Fatalf("idx=%v err=%v", idx, err)
	}
	off := int64(0)
	for i, e := range idx {
		if e.Offset != off || e.Length != int64(sizes[i]) {
			t.Fatalf("entry %d = %+v", i, e)
		}
		off = e.End()
	}
	if off != int64(buf.Len()) {
		t.Fatalf("index ends at %d, stream is %d", off, buf.Len())
	}
}

func BenchmarkWriter(b *testing.B) {
	payload := make([]byte, 64<<10)
	w := NewWriter(io.Discard)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := w.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}
