package tfrecord

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the record reader: it must never
// panic and must either parse records consistently with BuildIndex or
// report a typed corruption error.
func FuzzReader(f *testing.F) {
	// Seed corpus: valid streams and near-miss corruptions.
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.Write([]byte("record-one"))
	_ = w.Write(nil)
	_ = w.Write(bytes.Repeat([]byte{0xAB}, 300))
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:5])
	corrupted := append([]byte(nil), valid.Bytes()...)
	corrupted[9] ^= 0xFF
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, idxErr := BuildIndex(data)

		r := NewReader(bytes.NewReader(data))
		var records int
		var readErr error
		for {
			payload, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = err
				break
			}
			if records < len(idx) && int64(len(payload)) != idx[records].Length {
				t.Fatalf("record %d: reader length %d, index %d",
					records, len(payload), idx[records].Length)
			}
			records++
		}
		// BuildIndex and Reader must agree on whether the stream is
		// fully valid.
		if idxErr == nil && readErr != nil {
			t.Fatalf("index accepted stream the reader rejected: %v", readErr)
		}
		if idxErr == nil && records != len(idx) {
			t.Fatalf("reader found %d records, index %d", records, len(idx))
		}
	})
}
