// Package tfrecord implements TensorFlow's TFRecord container format.
//
// The paper's datasets are ImageNet converted to TFRecords — "optimized
// data formats [that] pack several small-sized files into a single,
// larger one" (§I). MONARCH's headline epoch-1 optimisation (fetch the
// *whole* record file when the framework asks for a slice of it) only
// makes sense against this format, so the reproduction implements it
// for real: examples and tests read and write byte-compatible TFRecord
// files.
//
// On-disk layout of each record:
//
//	uint64 length        (little endian)
//	uint32 masked_crc32c(length)
//	byte   data[length]
//	uint32 masked_crc32c(data)
//
// where masked_crc32c(x) = rotr15(crc32c(x)) + 0xa282ead8, matching
// TensorFlow's record writer.
package tfrecord

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Overhead is the framing overhead per record in bytes.
const Overhead = 8 + 4 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Corruption errors returned by Reader.
var (
	// ErrBadLengthCRC reports a corrupted length header.
	ErrBadLengthCRC = errors.New("tfrecord: length CRC mismatch")
	// ErrBadDataCRC reports corrupted record payload.
	ErrBadDataCRC = errors.New("tfrecord: data CRC mismatch")
	// ErrTruncated reports a record cut short by EOF.
	ErrTruncated = errors.New("tfrecord: truncated record")
)

// MaskedCRC computes TensorFlow's masked CRC32-Castagnoli of data.
func MaskedCRC(data []byte) uint32 {
	crc := crc32.Checksum(data, castagnoli)
	return ((crc >> 15) | (crc << 17)) + 0xa282ead8
}

// Writer emits TFRecord framing to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	written int64
	records int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record.
func (w *Writer) Write(data []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(len(data)))
	binary.LittleEndian.PutUint32(hdr[8:12], MaskedCRC(hdr[:8]))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], MaskedCRC(data))
	if _, err := w.w.Write(foot[:]); err != nil {
		return err
	}
	w.written += int64(len(data)) + Overhead
	w.records++
	return nil
}

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Written returns the total bytes emitted (after Flush).
func (w *Writer) Written() int64 { return w.written }

// Records returns the number of records written.
func (w *Writer) Records() int { return w.records }

// RecordSize returns the on-disk footprint of a payload of n bytes.
func RecordSize(n int64) int64 { return n + Overhead }

// Reader iterates records from an io.Reader.
type Reader struct {
	r      *bufio.Reader
	offset int64
	// Verify controls CRC checking; disabled it still parses framing.
	Verify bool
}

// NewReader wraps r with CRC verification enabled.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16), Verify: true}
}

// Next returns the next record payload, or io.EOF cleanly at the end of
// the stream. The returned slice is freshly allocated.
func (r *Reader) Next() ([]byte, error) {
	var hdr [12]byte
	n, err := io.ReadFull(r.r, hdr[:])
	if err == io.EOF && n == 0 {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("%w: header at offset %d", ErrTruncated, r.offset)
	}
	length := binary.LittleEndian.Uint64(hdr[:8])
	if r.Verify && binary.LittleEndian.Uint32(hdr[8:12]) != MaskedCRC(hdr[:8]) {
		return nil, fmt.Errorf("%w at offset %d", ErrBadLengthCRC, r.offset)
	}
	if length > 1<<40 {
		return nil, fmt.Errorf("tfrecord: implausible record length %d at offset %d", length, r.offset)
	}
	data, err := readPayload(r.r, int64(length))
	if err != nil {
		return nil, fmt.Errorf("%w: payload at offset %d", ErrTruncated, r.offset)
	}
	var foot [4]byte
	if _, err := io.ReadFull(r.r, foot[:]); err != nil {
		return nil, fmt.Errorf("%w: footer at offset %d", ErrTruncated, r.offset)
	}
	if r.Verify && binary.LittleEndian.Uint32(foot[:]) != MaskedCRC(data) {
		return nil, fmt.Errorf("%w at offset %d", ErrBadDataCRC, r.offset)
	}
	r.offset += int64(length) + Overhead
	return data, nil
}

// Offset returns the stream offset of the next record.
func (r *Reader) Offset() int64 { return r.offset }

// readPayload reads exactly n bytes, growing the buffer incrementally
// so a corrupted length field cannot force a huge up-front allocation.
func readPayload(r io.Reader, n int64) ([]byte, error) {
	const chunk = 1 << 20
	capHint := n
	if capHint > chunk {
		capHint = chunk
	}
	data := make([]byte, 0, capHint)
	for int64(len(data)) < n {
		want := n - int64(len(data))
		if want > chunk {
			want = chunk
		}
		data = append(data, make([]byte, want)...)
		if _, err := io.ReadFull(r, data[int64(len(data))-want:]); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Entry locates one record inside a shard file.
type Entry struct {
	Offset int64 // offset of the record header
	Length int64 // payload length (without framing)
}

// End returns the offset one past the record's footer.
func (e Entry) End() int64 { return e.Offset + e.Length + Overhead }

// Index lists the records of a shard in file order. TensorFlow keeps an
// equivalent structure implicitly by reading shards sequentially; the
// simulation uses the explicit index to know which 256 KiB pread
// touches which record.
type Index []Entry

// BuildIndex scans a serialized shard and returns its index.
func BuildIndex(data []byte) (Index, error) {
	var idx Index
	off := int64(0)
	for off < int64(len(data)) {
		if off+12 > int64(len(data)) {
			return nil, fmt.Errorf("%w: header at offset %d", ErrTruncated, off)
		}
		length := int64(binary.LittleEndian.Uint64(data[off : off+8]))
		if binary.LittleEndian.Uint32(data[off+8:off+12]) != MaskedCRC(data[off:off+8]) {
			return nil, fmt.Errorf("%w at offset %d", ErrBadLengthCRC, off)
		}
		if off+length+Overhead > int64(len(data)) {
			return nil, fmt.Errorf("%w: payload at offset %d", ErrTruncated, off)
		}
		payload := data[off+12 : off+12+length]
		if binary.LittleEndian.Uint32(data[off+12+length:off+length+Overhead]) != MaskedCRC(payload) {
			return nil, fmt.Errorf("%w at offset %d", ErrBadDataCRC, off)
		}
		idx = append(idx, Entry{Offset: off, Length: length})
		off += length + Overhead
	}
	return idx, nil
}

// TotalBytes returns the serialized size of all indexed records.
func (idx Index) TotalBytes() int64 {
	if len(idx) == 0 {
		return 0
	}
	last := idx[len(idx)-1]
	return last.End()
}
