package tfrecord

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestMaskedCRCKnownVector(t *testing.T) {
	// The empty-payload masked CRC is a stable constant of the format:
	// crc32c("") = 0, masked = rotr15(0) + 0xa282ead8.
	if got := MaskedCRC(nil); got != 0xa282ead8 {
		t.Fatalf("MaskedCRC(nil) = %#x, want 0xa282ead8", got)
	}
	// Regression vector computed from TensorFlow's implementation
	// definition: crc32c("a") = 0xc1d04330.
	crcA := uint32(0xc1d04330)
	want := ((crcA >> 15) | (crcA << 17)) + 0xa282ead8
	if got := MaskedCRC([]byte("a")); got != want {
		t.Fatalf("MaskedCRC(a) = %#x, want %#x", got, want)
	}
}

func TestWriterProducesExactFraming(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payload := []byte("hello")
	if err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if int64(len(raw)) != RecordSize(int64(len(payload))) {
		t.Fatalf("file size %d, want %d", len(raw), RecordSize(5))
	}
	if binary.LittleEndian.Uint64(raw[:8]) != 5 {
		t.Fatal("length header wrong")
	}
	if binary.LittleEndian.Uint32(raw[8:12]) != MaskedCRC(raw[:8]) {
		t.Fatal("length CRC wrong")
	}
	if !bytes.Equal(raw[12:17], payload) {
		t.Fatal("payload wrong")
	}
	if binary.LittleEndian.Uint32(raw[17:21]) != MaskedCRC(payload) {
		t.Fatal("data CRC wrong")
	}
}

func TestRoundtripMultipleRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	records := [][]byte{[]byte("one"), {}, []byte("three"), bytes.Repeat([]byte{0xAB}, 10000)}
	for _, rec := range records {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 4 {
		t.Fatalf("Records = %d", w.Records())
	}
	if w.Written() != int64(buf.Len()) {
		t.Fatalf("Written = %d, buffer = %d", w.Written(), buf.Len())
	}

	r := NewReader(&buf)
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestRoundtripProperty(t *testing.T) {
	err := quick.Check(func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range payloads {
			if err := w.Write(p); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		for _, want := range payloads {
			got, err := r.Next()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err := r.Next()
		return err == io.EOF
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func corruptedShard(t *testing.T, flip int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[flip] ^= 0xFF
	return raw
}

func TestReaderDetectsLengthCorruption(t *testing.T) {
	raw := corruptedShard(t, 9) // inside length CRC
	_, err := NewReader(bytes.NewReader(raw)).Next()
	if !errors.Is(err, ErrBadLengthCRC) {
		t.Fatalf("got %v", err)
	}
}

func TestReaderDetectsDataCorruption(t *testing.T) {
	raw := corruptedShard(t, 13) // inside payload
	_, err := NewReader(bytes.NewReader(raw)).Next()
	if !errors.Is(err, ErrBadDataCRC) {
		t.Fatalf("got %v", err)
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, 14, buf.Len() - 1} {
		_, err := NewReader(bytes.NewReader(buf.Bytes()[:cut])).Next()
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: got %v", cut, err)
		}
	}
}

func TestReaderVerifyDisabled(t *testing.T) {
	raw := corruptedShard(t, 13) // payload corrupted, CRC stale
	r := NewReader(bytes.NewReader(raw))
	r.Verify = false
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len("payload") {
		t.Fatalf("len = %d", len(got))
	}
}

func TestReaderRejectsImplausibleLength(t *testing.T) {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], 1<<50)
	binary.LittleEndian.PutUint32(hdr[8:12], MaskedCRC(hdr[:8]))
	_, err := NewReader(bytes.NewReader(hdr[:])).Next()
	if err == nil {
		t.Fatal("expected error for huge length")
	}
}

func TestBuildIndex(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	sizes := []int{100, 0, 250, 7}
	for _, n := range sizes {
		if err := w.Write(make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != len(sizes) {
		t.Fatalf("index has %d entries", len(idx))
	}
	off := int64(0)
	for i, e := range idx {
		if e.Offset != off || e.Length != int64(sizes[i]) {
			t.Fatalf("entry %d = %+v, want offset %d length %d", i, e, off, sizes[i])
		}
		if e.End() != off+int64(sizes[i])+Overhead {
			t.Fatalf("entry %d End = %d", i, e.End())
		}
		off = e.End()
	}
	if idx.TotalBytes() != int64(buf.Len()) {
		t.Fatalf("TotalBytes = %d, want %d", idx.TotalBytes(), buf.Len())
	}
}

func TestBuildIndexEmpty(t *testing.T) {
	idx, err := BuildIndex(nil)
	if err != nil || len(idx) != 0 || idx.TotalBytes() != 0 {
		t.Fatalf("idx=%v err=%v", idx, err)
	}
}

func TestBuildIndexCorruption(t *testing.T) {
	raw := corruptedShard(t, 9)
	if _, err := BuildIndex(raw); !errors.Is(err, ErrBadLengthCRC) {
		t.Fatalf("got %v", err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write([]byte("abc"))
	_ = w.Flush()
	if _, err := BuildIndex(buf.Bytes()[:buf.Len()-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v", err)
	}
}

func TestIndexMatchesReaderOffsets(t *testing.T) {
	err := quick.Check(func(sizes []uint16) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, s := range sizes {
			if err := w.Write(make([]byte, int(s)%5000)); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		idx, err := BuildIndex(buf.Bytes())
		if err != nil || len(idx) != len(sizes) {
			return false
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		for _, e := range idx {
			if r.Offset() != e.Offset {
				return false
			}
			if _, err := r.Next(); err != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriter(b *testing.B) {
	payload := make([]byte, 64*1024)
	w := NewWriter(io.Discard)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := w.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReader(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payload := make([]byte, 64*1024)
	for i := 0; i < 64; i++ {
		_ = w.Write(payload)
	}
	_ = w.Flush()
	raw := buf.Bytes()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			b.StopTimer()
			r := NewReader(bytes.NewReader(raw))
			b.StartTimer()
			for j := 0; j < 64 && i+j < b.N; j++ {
				if _, err := r.Next(); err != nil {
					b.Fatal(err)
				}
			}
			i += 63
		}
	}
}
