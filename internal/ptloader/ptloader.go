// Package ptloader models a PyTorch-style DataLoader on the simulation
// clock — the paper's §VI portability direction ("we are integrating
// our system with PyTorch").
//
// Its I/O pattern differs fundamentally from the TensorFlow pipeline in
// internal/pipeline: a map-style dataset is driven by a *global sampler
// that permutes individual record indices* each epoch, and a fixed set
// of worker processes fetch assigned batches by issuing one positioned
// read per record — small, random reads scattered across every shard,
// instead of 256 KiB sequential streams within a few shards at a time.
// Each worker fetches and transforms its samples serially, holding one
// CPU core during the transform, exactly as a DataLoader worker process
// does.
//
// Because the framework still addresses data as (file name, offset,
// length), the same MONARCH ReadAt call serves both frameworks — which
// is the paper's framework-agnosticism claim, and what the ext-pytorch
// experiment validates.
package ptloader

import (
	"context"
	"fmt"
	"time"

	"monarch/internal/dataset"
	"monarch/internal/pipeline"
	"monarch/internal/rng"
	"monarch/internal/sim"
	"monarch/internal/tfrecord"
)

// Config parameterises one DataLoader.
type Config struct {
	// Manifest is the dataset layout; records are addressed globally.
	Manifest *dataset.Manifest
	// Source serves record bytes (a backend or a MONARCH instance).
	Source pipeline.Source
	// Workers is num_workers.
	Workers int
	// BatchSize is records per batch.
	BatchSize int
	// PrefetchFactor is batches buffered per worker (PyTorch default 2).
	PrefetchFactor int
	// PreprocessPerImage is CPU-core time per record transform.
	PreprocessPerImage time.Duration
	// CPU is the node core pool (optional).
	CPU *sim.Resource
	// FetchGroup bounds how many records a worker reads back-to-back
	// before charging their combined transform time; it only coarsens
	// event granularity, not semantics. Default 16.
	FetchGroup int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Manifest == nil:
		return fmt.Errorf("ptloader: nil manifest")
	case c.Source == nil:
		return fmt.Errorf("ptloader: nil source")
	case c.Workers <= 0:
		return fmt.Errorf("ptloader: Workers = %d", c.Workers)
	case c.BatchSize <= 0:
		return fmt.Errorf("ptloader: BatchSize = %d", c.BatchSize)
	case c.PrefetchFactor <= 0:
		return fmt.Errorf("ptloader: PrefetchFactor = %d", c.PrefetchFactor)
	}
	return nil
}

// DefaultConfig mirrors a typical DataLoader(num_workers=8,
// prefetch_factor=2) setup.
func DefaultConfig() Config {
	return Config{
		Workers:        8,
		BatchSize:      256,
		PrefetchFactor: 2,
		FetchGroup:     16,
	}
}

// recordRef flattens the manifest into a global index.
type recordRef struct {
	shard int
	entry tfrecord.Entry
}

// Flatten builds the global record index once per dataset.
func Flatten(man *dataset.Manifest) []recordRef {
	refs := make([]recordRef, 0, man.NumRecords())
	for si := range man.Shards {
		for _, e := range man.Shards[si].Records {
			refs = append(refs, recordRef{shard: si, entry: e})
		}
	}
	return refs
}

// Epoch is one epoch of the loader; consume with Next.
type Epoch struct {
	out  *sim.Queue[pipeline.Batch]
	errs []error
}

// StartEpoch spawns the sampler, workers and collator for one epoch.
// refs must come from Flatten on cfg.Manifest (passed in so the caller
// amortises the flattening across epochs).
func StartEpoch(env *sim.Env, cfg Config, refs []recordRef, epoch int, seed uint64) (*Epoch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	group := cfg.FetchGroup
	if group <= 0 {
		group = 16
	}
	e := &Epoch{
		out: sim.NewQueue[pipeline.Batch](env, fmt.Sprintf("pt-out-e%d", epoch),
			cfg.Workers*cfg.PrefetchFactor),
	}

	// The sampler: a fresh global permutation of record indices each
	// epoch, split into batches handed to workers round-robin. We keep
	// PyTorch's in-order collation: batch b is delivered before b+1, so
	// one slow worker stalls the queue exactly as it does in PyTorch.
	perm := rng.New(seed + uint64(epoch)*0x51ed).Perm(len(refs))
	numBatches := (len(refs) + cfg.BatchSize - 1) / cfg.BatchSize

	// Per-batch completion events let the in-order collator wait.
	done := make([]*sim.Event, numBatches)
	sizes := make([]int, numBatches)
	for b := range done {
		done[b] = sim.NewEvent(env)
		lo := b * cfg.BatchSize
		hi := lo + cfg.BatchSize
		if hi > len(perm) {
			hi = len(perm)
		}
		sizes[b] = hi - lo
	}

	for w := 0; w < cfg.Workers; w++ {
		w := w
		env.Go(fmt.Sprintf("pt-worker-%d-e%d", w, epoch), func(p *sim.Proc) {
			ctx := p.Context()
			buf := make([]byte, 1<<20)
			for b := w; b < numBatches; b += cfg.Workers {
				lo := b * cfg.BatchSize
				if err := e.fetchBatch(ctx, p, cfg, refs, perm[lo:lo+sizes[b]], buf, group); err != nil {
					e.errs = append(e.errs, err)
				}
				done[b].Fire()
			}
		})
	}

	env.Go(fmt.Sprintf("pt-collate-e%d", epoch), func(p *sim.Proc) {
		for b := 0; b < numBatches; b++ {
			done[b].Wait(p)
			e.out.Put(p, pipeline.Batch{Records: sizes[b]})
		}
		e.out.Close()
	})
	return e, nil
}

// fetchBatch reads and transforms one batch's samples serially, the way
// a DataLoader worker process does: positioned read per record, then
// the transform on one core.
func (e *Epoch) fetchBatch(ctx context.Context, p *sim.Proc, cfg Config,
	refs []recordRef, idxs []int, buf []byte, group int) error {
	pendingTransforms := 0
	charge := func() {
		if cfg.PreprocessPerImage <= 0 || pendingTransforms == 0 {
			return
		}
		work := time.Duration(pendingTransforms) * cfg.PreprocessPerImage
		if cfg.CPU != nil {
			cfg.CPU.Acquire(p, 1)
			p.Sleep(work)
			cfg.CPU.Release(1)
		} else {
			p.Sleep(work)
		}
		pendingTransforms = 0
	}
	format := cfg.Manifest.Spec.Format
	for _, ri := range idxs {
		ref := refs[ri]
		shard := &cfg.Manifest.Shards[ref.shard]
		want := format.RecordEnd(ref.entry) - ref.entry.Offset
		dst := buf
		if want < int64(len(dst)) {
			dst = dst[:want]
		}
		read := int64(0)
		for read < want {
			n, err := cfg.Source.ReadAt(ctx, shard.Name, dst, ref.entry.Offset+read)
			if err != nil {
				return fmt.Errorf("ptloader: %s record@%d: %w", shard.Name, ref.entry.Offset, err)
			}
			if n == 0 {
				return fmt.Errorf("ptloader: %s truncated at %d", shard.Name, ref.entry.Offset+read)
			}
			read += int64(n)
		}
		pendingTransforms++
		if pendingTransforms >= group {
			charge()
		}
	}
	charge()
	return nil
}

// Next returns the next batch in sampler order; ok is false at epoch
// end.
func (e *Epoch) Next(p *sim.Proc) (pipeline.Batch, bool) { return e.out.Get(p) }

// Err returns the first worker error, if any.
func (e *Epoch) Err() error {
	if len(e.errs) > 0 {
		return e.errs[0]
	}
	return nil
}
