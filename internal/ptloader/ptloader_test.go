package ptloader

import (
	"context"
	"errors"
	"testing"
	"time"

	"monarch/internal/dataset"
	"monarch/internal/pipeline"
	"monarch/internal/sim"
	"monarch/internal/simstore"
)

func testManifest(t *testing.T, images, shards int, total int64) *dataset.Manifest {
	t.Helper()
	m, err := dataset.Plan(dataset.Spec{
		Name: "pt", NumImages: images, TotalBytes: total,
		NumShards: shards, SizeSigma: 0.2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func quietSSD() simstore.DeviceSpec {
	s := simstore.SSDSpec()
	s.LatencySigma = 0
	return s
}

func smallConfig(m *dataset.Manifest, src pipeline.Source) Config {
	cfg := DefaultConfig()
	cfg.Manifest = m
	cfg.Source = src
	cfg.Workers = 4
	cfg.BatchSize = 16
	cfg.PreprocessPerImage = 50 * time.Microsecond
	cfg.FetchGroup = 4
	return cfg
}

// consume runs one epoch to completion inside a fresh env.
func consume(t *testing.T, mk func(env *sim.Env) Config, epoch int) (records, batches int, end sim.Time) {
	t.Helper()
	env := sim.NewEnv(5)
	defer env.Close()
	cfg := mk(env)
	refs := Flatten(cfg.Manifest)
	env.Go("trainer", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, refs, epoch, 77)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			b, ok := ep.Next(p)
			if !ok {
				break
			}
			records += b.Records
			batches++
		}
		if err := ep.Err(); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return records, batches, env.Now()
}

func withStore(t *testing.T, m *dataset.Manifest) func(env *sim.Env) Config {
	return func(env *sim.Env) Config {
		st := simstore.NewStore(simstore.NewDevice(env, quietSSD()), "ssd", 0)
		for i := range m.Shards {
			st.AddFile(m.Shards[i].Name, m.Shards[i].Size)
		}
		return smallConfig(m, st)
	}
}

func TestEpochDeliversEveryRecordOnce(t *testing.T) {
	m := testManifest(t, 200, 8, 400_000)
	records, batches, _ := consume(t, withStore(t, m), 0)
	if records != 200 {
		t.Fatalf("records = %d", records)
	}
	if batches != (200+15)/16 {
		t.Fatalf("batches = %d", batches)
	}
}

func TestFlattenCoversManifest(t *testing.T) {
	m := testManifest(t, 100, 4, 200_000)
	refs := Flatten(m)
	if len(refs) != 100 {
		t.Fatalf("refs = %d", len(refs))
	}
	perShard := map[int]int{}
	for _, r := range refs {
		perShard[r.shard]++
	}
	for si := range m.Shards {
		if perShard[si] != len(m.Shards[si].Records) {
			t.Fatalf("shard %d: %d refs, %d records", si, perShard[si], len(m.Shards[si].Records))
		}
	}
}

func TestAccessPatternIsRecordGrainedAndRandom(t *testing.T) {
	m := testManifest(t, 128, 4, 512_000)
	var offsets []int64
	var names []string
	env := sim.NewEnv(1)
	defer env.Close()
	cfg := smallConfig(m, sourceFunc(func(ctx context.Context, name string, p []byte, off int64) (int, error) {
		names = append(names, name)
		offsets = append(offsets, off)
		return len(p), nil
	}))
	cfg.Workers = 1 // serialise so the trace order is the sampler order
	refs := Flatten(m)
	env.Go("t", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, refs, 0, 3)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			if _, ok := ep.Next(p); !ok {
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 128 {
		t.Fatalf("ops = %d, want one per record", len(offsets))
	}
	// The trace must NOT be sequential within a single shard stream:
	// consecutive ops should frequently hop shards or jump backwards.
	hops := 0
	for i := 1; i < len(offsets); i++ {
		if names[i] != names[i-1] || offsets[i] < offsets[i-1] {
			hops++
		}
	}
	if hops < len(offsets)/2 {
		t.Fatalf("access looks sequential: only %d hops in %d ops", hops, len(offsets))
	}
}

func TestEpochsReshuffle(t *testing.T) {
	m := testManifest(t, 64, 2, 128_000)
	trace := func(epoch int) []int64 {
		var offs []int64
		env := sim.NewEnv(1)
		defer env.Close()
		cfg := smallConfig(m, sourceFunc(func(ctx context.Context, name string, p []byte, off int64) (int, error) {
			offs = append(offs, off)
			return len(p), nil
		}))
		cfg.Workers = 1
		refs := Flatten(m)
		env.Go("t", func(p *sim.Proc) {
			ep, _ := StartEpoch(env, cfg, refs, epoch, 3)
			for {
				if _, ok := ep.Next(p); !ok {
					return
				}
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return offs
	}
	a, b := trace(0), trace(1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("sampler order identical across epochs")
	}
}

func TestInOrderCollation(t *testing.T) {
	// Batches must arrive in sampler order even with many workers.
	m := testManifest(t, 96, 4, 192_000)
	env := sim.NewEnv(9)
	defer env.Close()
	st := simstore.NewStore(simstore.NewDevice(env, simstore.LustreSpec()), "lustre", 0)
	for i := range m.Shards {
		st.AddFile(m.Shards[i].Name, m.Shards[i].Size)
	}
	cfg := smallConfig(m, st)
	cfg.Workers = 6
	refs := Flatten(m)
	var sizes []int
	env.Go("t", func(p *sim.Proc) {
		ep, err := StartEpoch(env, cfg, refs, 0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			b, ok := ep.Next(p)
			if !ok {
				return
			}
			sizes = append(sizes, b.Records)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, s := range sizes[:len(sizes)-1] {
		if s != 16 {
			t.Fatalf("batch %d size %d (only the last may be short)", i, s)
		}
	}
}

func TestWorkerErrorSurfaces(t *testing.T) {
	m := testManifest(t, 32, 2, 64_000)
	boom := errors.New("boom")
	env := sim.NewEnv(1)
	defer env.Close()
	cfg := smallConfig(m, sourceFunc(func(context.Context, string, []byte, int64) (int, error) {
		return 0, boom
	}))
	refs := Flatten(m)
	var err error
	env.Go("t", func(p *sim.Proc) {
		ep, serr := StartEpoch(env, cfg, refs, 0, 1)
		if serr != nil {
			t.Error(serr)
			return
		}
		for {
			if _, ok := ep.Next(p); !ok {
				break
			}
		}
		err = ep.Err()
	})
	if e := env.Run(); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidate(t *testing.T) {
	m := testManifest(t, 8, 2, 16_000)
	good := smallConfig(m, sourceFunc(func(context.Context, string, []byte, int64) (int, error) { return 0, nil }))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, mut := range []func(*Config){
		func(c *Config) { c.Manifest = nil },
		func(c *Config) { c.Source = nil },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.PrefetchFactor = 0 },
	} {
		bad := good
		mut(&bad)
		if bad.Validate() == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestCPUCharged(t *testing.T) {
	m := testManifest(t, 64, 2, 128_000)
	env := sim.NewEnv(1)
	defer env.Close()
	cpu := sim.NewResource(env, "cpu", 4)
	st := simstore.NewStore(simstore.NewDevice(env, quietSSD()), "ssd", 0)
	for i := range m.Shards {
		st.AddFile(m.Shards[i].Name, m.Shards[i].Size)
	}
	cfg := smallConfig(m, st)
	cfg.CPU = cpu
	cfg.PreprocessPerImage = 10 * time.Millisecond
	refs := Flatten(m)
	env.Go("t", func(p *sim.Proc) {
		ep, _ := StartEpoch(env, cfg, refs, 0, 1)
		for {
			if _, ok := ep.Next(p); !ok {
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if cpu.Utilization() <= 0 {
		t.Fatal("CPU never charged")
	}
	// 64 records × 10 ms over ≤4 workers ≥ 160 ms of wall time.
	if env.Now() < sim.Time(160*time.Millisecond) {
		t.Fatalf("epoch too fast: %v", env.Now().Duration())
	}
}

// sourceFunc adapts a function to pipeline.Source.
type sourceFunc func(ctx context.Context, name string, p []byte, off int64) (int, error)

func (f sourceFunc) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	return f(ctx, name, p, off)
}
