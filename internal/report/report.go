// Package report renders experiment results as aligned text tables,
// ASCII bar charts (the stand-in for the paper's figures), and CSV.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; missing cells render empty, extras are dropped.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	_ = format // reserved; Add handles plain cells
	t.Add(parts...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV emits the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// BarRow is one bar in a chart.
type BarRow struct {
	// Group labels a cluster of bars (e.g. "epoch 1"); repeated groups
	// render once.
	Group string
	// Label names the bar (e.g. "vanilla-lustre").
	Label string
	// Value is the bar length; Err renders as "± err".
	Value, Err float64
	// Unit is appended to the value ("s", "%", "ops").
	Unit string
}

// BarChart is a grouped horizontal bar chart — the textual equivalent
// of the paper's per-epoch figures.
type BarChart struct {
	Title string
	Rows  []BarRow
	// Width is the maximum bar width in runes (default 40).
	Width int
}

// NewBarChart creates an empty chart.
func NewBarChart(title string) *BarChart { return &BarChart{Title: title, Width: 40} }

// Add appends one bar.
func (c *BarChart) Add(group, label string, value, err float64, unit string) {
	c.Rows = append(c.Rows, BarRow{Group: group, Label: label, Value: value, Err: err, Unit: unit})
}

// Render writes the chart as text.
func (c *BarChart) Render(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var max float64
	labelW, groupW := 0, 0
	for _, r := range c.Rows {
		if r.Value > max {
			max = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
		if len(r.Group) > groupW {
			groupW = len(r.Group)
		}
	}
	if max <= 0 {
		max = 1
	}
	prevGroup := "\x00"
	for _, r := range c.Rows {
		group := ""
		if r.Group != prevGroup {
			group = r.Group
			prevGroup = r.Group
		}
		n := int(r.Value / max * float64(width))
		if n < 1 && r.Value > 0 {
			n = 1
		}
		bar := strings.Repeat("#", n)
		errStr := ""
		if r.Err > 0 {
			errStr = fmt.Sprintf(" ± %.1f", r.Err)
		}
		fmt.Fprintf(w, "  %-*s %-*s %-*s %.1f%s%s\n",
			groupW, group, labelW, r.Label, width, bar, r.Value, errStr, r.Unit)
	}
}

// String renders the chart to a string.
func (c *BarChart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

// Seconds formats a duration in seconds with one decimal.
func Seconds(s float64) string { return fmt.Sprintf("%.1f s", s) }

// Percent formats a ratio as a percentage.
func Percent(r float64) string { return fmt.Sprintf("%.0f%%", 100*r) }

// Count formats a large count with thousands separators.
func Count(n int64) string {
	s := fmt.Sprintf("%d", n)
	if n < 0 {
		return s
	}
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}
