package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("Demo", "setup", "time")
	tb.Add("vanilla-lustre", "401.7 s")
	tb.Add("monarch", "270.3 s")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns must align: "time" header column starts where values do.
	hdrIdx := strings.Index(lines[1], "time")
	rowIdx := strings.Index(lines[3], "401.7")
	if hdrIdx != rowIdx {
		t.Fatalf("misaligned: header at %d, value at %d\n%s", hdrIdx, rowIdx, out)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("only-one")
	tb.Add("x", "y", "dropped-extra")
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Fatalf("short row = %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 2 {
		t.Fatalf("long row = %v", tb.Rows[1])
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "n", "v")
	tb.Addf("", 42, 3.5)
	if tb.Rows[0][0] != "42" || tb.Rows[0][1] != "3.5" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add("1", "two,with comma")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("csv header: %q", got)
	}
	if !strings.Contains(got, `"two,with comma"`) {
		t.Fatalf("csv quoting: %q", got)
	}
}

func TestBarChartScalesToMax(t *testing.T) {
	c := NewBarChart("Fig")
	c.Width = 10
	c.Add("e1", "a", 100, 5, " s")
	c.Add("e1", "b", 50, 0, " s")
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%q", out)
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 5 {
		t.Fatalf("half bar wrong: %q", lines[2])
	}
	if !strings.Contains(lines[1], "± 5.0") {
		t.Fatalf("error bar missing: %q", lines[1])
	}
	// Group label renders once.
	if strings.Count(out, "e1") != 1 {
		t.Fatalf("group repeated:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := NewBarChart("z")
	c.Add("g", "zero", 0, 0, "")
	out := c.String() // must not divide by zero
	if !strings.Contains(out, "0.0") {
		t.Fatalf("%q", out)
	}
}

func TestBarChartTinyValueStillVisible(t *testing.T) {
	c := NewBarChart("t")
	c.Width = 10
	c.Add("g", "big", 1000, 0, "")
	c.Add("g", "tiny", 1, 0, "")
	lines := strings.Split(strings.TrimRight(c.String(), "\n"), "\n")
	if strings.Count(lines[2], "#") != 1 {
		t.Fatalf("tiny bar invisible: %q", lines[2])
	}
}

func TestFormatters(t *testing.T) {
	if Seconds(3.14159) != "3.1 s" {
		t.Fatal(Seconds(3.14159))
	}
	if Percent(0.553) != "55%" {
		t.Fatal(Percent(0.553))
	}
	cases := map[int64]string{
		0: "0", 12: "12", 123: "123", 1234: "1,234",
		798340: "798,340", 1234567: "1,234,567", -5: "-5",
	}
	for n, want := range cases {
		if got := Count(n); got != want {
			t.Errorf("Count(%d) = %q, want %q", n, got, want)
		}
	}
}
