package storage

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// memFile is one MemFS file. The data slice header is immutable after
// creation (WriteFile and Allocate swap in a whole new memFile), so
// sizes can be read without locking; mu guards the *contents* against
// concurrent WriteAt, with readers taking the shared side. A ReadView
// holds the read lock until Release, which keeps chunked placement
// (concurrent WriteAt) from mutating bytes a borrower is still
// parsing.
type memFile struct {
	mu   sync.RWMutex
	data []byte
}

// Release implements Releaser: it drops the read lock a ReadView took.
func (f *memFile) Release() { f.mu.RUnlock() }

// MemFS is an in-memory Backend. It stands in for a compute node's
// local file system in unit tests and the quickstart example, and backs
// the simulated devices (which add timing on top).
//
// The namespace is a sync.Map of per-file lock words: the read path
// (ReadAt/ReadView/Stat) takes no global lock at all, so goroutine
// fan-in on distinct files scales instead of serializing on one
// RWMutex. Namespace mutations and quota accounting serialize on mu;
// a WriteFile concurrent with a held view swaps in a fresh file object
// and leaves the borrowed bytes untouched (snapshot semantics).
type MemFS struct {
	name     string
	capacity int64

	files sync.Map // name -> *memFile

	mu   sync.Mutex // guards used/ro and namespace mutations
	used int64
	ro   bool
}

// NewMemFS creates an empty in-memory backend. capacity 0 = unlimited.
func NewMemFS(name string, capacity int64) *MemFS {
	return &MemFS{name: name, capacity: capacity}
}

// SetReadOnly marks the backend read-only, as the paper requires for the
// last hierarchy level (the PFS holding the dataset).
func (m *MemFS) SetReadOnly(ro bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ro = ro
}

// Name implements Backend.
func (m *MemFS) Name() string { return m.name }

// Capacity implements Backend.
func (m *MemFS) Capacity() int64 { return m.capacity }

// Used implements Backend.
func (m *MemFS) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

func (m *MemFS) load(name string) (*memFile, bool) {
	v, ok := m.files.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*memFile), true
}

// List implements Backend.
func (m *MemFS) List(ctx context.Context) ([]FileInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	var infos []FileInfo
	m.files.Range(func(k, v any) bool {
		infos = append(infos, FileInfo{Name: k.(string), Size: int64(len(v.(*memFile).data))})
		return true
	})
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// Stat implements Backend.
func (m *MemFS) Stat(ctx context.Context, name string) (FileInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return FileInfo{}, err
	}
	if err := ValidateName(name); err != nil {
		return FileInfo{}, err
	}
	f, ok := m.load(name)
	if !ok {
		return FileInfo{}, fmt.Errorf("%s: stat %q: %w", m.name, name, ErrNotExist)
	}
	return FileInfo{Name: name, Size: int64(len(f.data))}, nil
}

// ReadAt implements Backend.
func (m *MemFS) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if err := ValidateName(name); err != nil {
		return 0, err
	}
	f, ok := m.load(name)
	if !ok {
		return 0, fmt.Errorf("%s: read %q: %w", m.name, name, ErrNotExist)
	}
	f.mu.RLock()
	n, err := ReadRange(f.data, p, off)
	f.mu.RUnlock()
	return n, err
}

// ReadView implements ViewReader: it lends the file's own bytes under
// the per-file read lock, held until the view's Release. No copy is
// made; WriteAt to the same file blocks until the view is released.
func (m *MemFS) ReadView(ctx context.Context, name string, off, n int64) (View, error) {
	if err := ctxErr(ctx); err != nil {
		return View{}, err
	}
	if err := ValidateName(name); err != nil {
		return View{}, err
	}
	if off < 0 {
		return View{}, fmt.Errorf("%s: read %q: negative offset %d", m.name, name, off)
	}
	if n < 0 {
		return View{}, fmt.Errorf("%s: read %q: negative length %d", m.name, name, n)
	}
	f, ok := m.load(name)
	if !ok {
		return View{}, fmt.Errorf("%s: read %q: %w", m.name, name, ErrNotExist)
	}
	f.mu.RLock()
	size := int64(len(f.data))
	if off > size {
		off = size
	}
	end := off + n
	if end > size {
		end = size
	}
	return View{Data: f.data[off:end:end], R: f}, nil
}

// ReadFile implements Backend.
func (m *MemFS) ReadFile(ctx context.Context, name string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	f, ok := m.load(name)
	if !ok {
		return nil, fmt.Errorf("%s: read %q: %w", m.name, name, ErrNotExist)
	}
	f.mu.RLock()
	out := make([]byte, len(f.data))
	copy(out, f.data)
	f.mu.RUnlock()
	return out, nil
}

// WriteFile implements Backend.
func (m *MemFS) WriteFile(ctx context.Context, name string, data []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := ValidateName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ro {
		return fmt.Errorf("%s: write %q: %w", m.name, name, ErrReadOnly)
	}
	var old int64
	if f, ok := m.load(name); ok {
		old = int64(len(f.data))
	}
	newUsed := m.used - old + int64(len(data))
	if m.capacity > 0 && newUsed > m.capacity {
		return fmt.Errorf("%s: write %q (%d bytes, %d free): %w",
			m.name, name, len(data), m.capacity-m.used, ErrNoSpace)
	}
	stored := make([]byte, len(data))
	copy(stored, data)
	m.files.Store(name, &memFile{data: stored})
	m.used = newUsed
	return nil
}

// Allocate implements RangeWriter: it reserves quota for name at size
// bytes and creates it zero-filled, ready for concurrent WriteAt calls.
func (m *MemFS) Allocate(ctx context.Context, name string, size int64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := ValidateName(name); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("%s: allocate %q: negative size %d", m.name, name, size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ro {
		return fmt.Errorf("%s: allocate %q: %w", m.name, name, ErrReadOnly)
	}
	var old int64
	if f, ok := m.load(name); ok {
		old = int64(len(f.data))
	}
	newUsed := m.used - old + size
	if m.capacity > 0 && newUsed > m.capacity {
		return fmt.Errorf("%s: allocate %q (%d bytes, %d free): %w",
			m.name, name, size, m.capacity-m.used, ErrNoSpace)
	}
	m.files.Store(name, &memFile{data: make([]byte, size)})
	m.used = newUsed
	return nil
}

// WriteAt implements RangeWriter. Writes must stay within the allocated
// size, and mutate the file object current at lookup time (a
// concurrent WriteFile swap orphans in-flight WriteAt results, exactly
// like a rename-over on a real file system).
func (m *MemFS) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if err := ValidateName(name); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%s: write %q: negative offset %d", m.name, name, off)
	}
	m.mu.Lock()
	ro := m.ro
	m.mu.Unlock()
	if ro {
		return 0, fmt.Errorf("%s: write %q: %w", m.name, name, ErrReadOnly)
	}
	f, ok := m.load(name)
	if !ok {
		return 0, fmt.Errorf("%s: write %q: %w", m.name, name, ErrNotExist)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off+int64(len(p)) > int64(len(f.data)) {
		return 0, fmt.Errorf("%s: write %q: range [%d,%d) past allocated size %d",
			m.name, name, off, off+int64(len(p)), len(f.data))
	}
	return copy(f.data[off:], p), nil
}

// Remove implements Backend.
func (m *MemFS) Remove(ctx context.Context, name string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := ValidateName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ro {
		return fmt.Errorf("%s: remove %q: %w", m.name, name, ErrReadOnly)
	}
	v, ok := m.files.LoadAndDelete(name)
	if !ok {
		return fmt.Errorf("%s: remove %q: %w", m.name, name, ErrNotExist)
	}
	m.used -= int64(len(v.(*memFile).data))
	return nil
}
