package storage

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// MemFS is an in-memory Backend. It stands in for a compute node's
// local file system in unit tests and the quickstart example, and backs
// the simulated devices (which add timing on top).
type MemFS struct {
	name     string
	capacity int64

	mu    sync.RWMutex
	files map[string][]byte
	used  int64
	ro    bool
}

// NewMemFS creates an empty in-memory backend. capacity 0 = unlimited.
func NewMemFS(name string, capacity int64) *MemFS {
	return &MemFS{name: name, capacity: capacity, files: make(map[string][]byte)}
}

// SetReadOnly marks the backend read-only, as the paper requires for the
// last hierarchy level (the PFS holding the dataset).
func (m *MemFS) SetReadOnly(ro bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ro = ro
}

// Name implements Backend.
func (m *MemFS) Name() string { return m.name }

// Capacity implements Backend.
func (m *MemFS) Capacity() int64 { return m.capacity }

// Used implements Backend.
func (m *MemFS) Used() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used
}

// List implements Backend.
func (m *MemFS) List(ctx context.Context) ([]FileInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	infos := make([]FileInfo, 0, len(m.files))
	for name, data := range m.files {
		infos = append(infos, FileInfo{Name: name, Size: int64(len(data))})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// Stat implements Backend.
func (m *MemFS) Stat(ctx context.Context, name string) (FileInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return FileInfo{}, err
	}
	if err := ValidateName(name); err != nil {
		return FileInfo{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("%s: stat %q: %w", m.name, name, ErrNotExist)
	}
	return FileInfo{Name: name, Size: int64(len(data))}, nil
}

// ReadAt implements Backend.
func (m *MemFS) ReadAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if err := ValidateName(name); err != nil {
		return 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("%s: read %q: %w", m.name, name, ErrNotExist)
	}
	return ReadRange(data, p, off)
}

// ReadFile implements Backend.
func (m *MemFS) ReadFile(ctx context.Context, name string) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%s: read %q: %w", m.name, name, ErrNotExist)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WriteFile implements Backend.
func (m *MemFS) WriteFile(ctx context.Context, name string, data []byte) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := ValidateName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ro {
		return fmt.Errorf("%s: write %q: %w", m.name, name, ErrReadOnly)
	}
	old := int64(len(m.files[name]))
	newUsed := m.used - old + int64(len(data))
	if m.capacity > 0 && newUsed > m.capacity {
		return fmt.Errorf("%s: write %q (%d bytes, %d free): %w",
			m.name, name, len(data), m.capacity-m.used, ErrNoSpace)
	}
	stored := make([]byte, len(data))
	copy(stored, data)
	m.files[name] = stored
	m.used = newUsed
	return nil
}

// Allocate implements RangeWriter: it reserves quota for name at size
// bytes and creates it zero-filled, ready for concurrent WriteAt calls.
func (m *MemFS) Allocate(ctx context.Context, name string, size int64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := ValidateName(name); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("%s: allocate %q: negative size %d", m.name, name, size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ro {
		return fmt.Errorf("%s: allocate %q: %w", m.name, name, ErrReadOnly)
	}
	old := int64(len(m.files[name]))
	newUsed := m.used - old + size
	if m.capacity > 0 && newUsed > m.capacity {
		return fmt.Errorf("%s: allocate %q (%d bytes, %d free): %w",
			m.name, name, size, m.capacity-m.used, ErrNoSpace)
	}
	m.files[name] = make([]byte, size)
	m.used = newUsed
	return nil
}

// WriteAt implements RangeWriter. Writes must stay within the allocated
// size.
func (m *MemFS) WriteAt(ctx context.Context, name string, p []byte, off int64) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	if err := ValidateName(name); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%s: write %q: negative offset %d", m.name, name, off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ro {
		return 0, fmt.Errorf("%s: write %q: %w", m.name, name, ErrReadOnly)
	}
	data, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("%s: write %q: %w", m.name, name, ErrNotExist)
	}
	if off+int64(len(p)) > int64(len(data)) {
		return 0, fmt.Errorf("%s: write %q: range [%d,%d) past allocated size %d",
			m.name, name, off, off+int64(len(p)), len(data))
	}
	return copy(data[off:], p), nil
}

// Remove implements Backend.
func (m *MemFS) Remove(ctx context.Context, name string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := ValidateName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ro {
		return fmt.Errorf("%s: remove %q: %w", m.name, name, ErrReadOnly)
	}
	data, ok := m.files[name]
	if !ok {
		return fmt.Errorf("%s: remove %q: %w", m.name, name, ErrNotExist)
	}
	m.used -= int64(len(data))
	delete(m.files, name)
	return nil
}
