package storage

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestRangeWriterConformance runs the Allocate/WriteAt contract against
// every Backend that implements RangeWriter, the same way
// TestBackendConformance covers the base interface. Chunked placement
// depends on these semantics: reserve-then-fill quota accounting,
// in-bounds enforcement, and readers seeing written ranges mid-copy.
func TestRangeWriterConformance(t *testing.T) {
	for name, mk := range backendFactories(t) {
		t.Run(name, func(t *testing.T) {
			runRangeWriterConformance(t, mk)
		})
	}
}

func runRangeWriterConformance(t *testing.T, mk func(int64) Backend) {
	ctx := context.Background()
	asRW := func(t *testing.T, b Backend) RangeWriter {
		t.Helper()
		rw, ok := b.(RangeWriter)
		if !ok {
			t.Fatalf("%s does not implement RangeWriter", b.Name())
		}
		return rw
	}

	t.Run("AllocateReservesQuotaAndZeroFills", func(t *testing.T) {
		b := mk(100)
		rw := asRW(t, b)
		if err := rw.Allocate(ctx, "f", 64); err != nil {
			t.Fatal(err)
		}
		if got := b.Used(); got != 64 {
			t.Fatalf("used = %d after allocate, want 64", got)
		}
		fi, err := b.Stat(ctx, "f")
		if err != nil || fi.Size != 64 {
			t.Fatalf("stat: %+v err=%v, want size 64", fi, err)
		}
		data, err := b.ReadFile(ctx, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, make([]byte, 64)) {
			t.Fatalf("allocated file not zero-filled: %v", data)
		}
	})

	t.Run("AllocateOverQuota", func(t *testing.T) {
		b := mk(10)
		rw := asRW(t, b)
		if err := rw.Allocate(ctx, "big", 11); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("over-quota allocate: %v, want ErrNoSpace", err)
		}
		if got := b.Used(); got != 0 {
			t.Fatalf("failed allocate leaked quota: used = %d", got)
		}
	})

	t.Run("AllocateNegativeSize", func(t *testing.T) {
		rw := asRW(t, mk(0))
		if err := rw.Allocate(ctx, "f", -1); err == nil {
			t.Fatal("negative-size allocate succeeded")
		}
	})

	t.Run("AllocateReplacesExisting", func(t *testing.T) {
		b := mk(100)
		rw := asRW(t, b)
		if err := b.WriteFile(ctx, "f", make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
		if err := rw.Allocate(ctx, "f", 16); err != nil {
			t.Fatal(err)
		}
		if got := b.Used(); got != 16 {
			t.Fatalf("used = %d after re-allocate, want 16", got)
		}
	})

	t.Run("WriteAtFillsRanges", func(t *testing.T) {
		b := mk(0)
		rw := asRW(t, b)
		if err := rw.Allocate(ctx, "f", 10); err != nil {
			t.Fatal(err)
		}
		if n, err := rw.WriteAt(ctx, "f", []byte("456"), 4); err != nil || n != 3 {
			t.Fatalf("writeat: n=%d err=%v", n, err)
		}
		// The written range is readable while the rest is still zero —
		// the mid-copy read-through contract.
		p := make([]byte, 3)
		if n, err := b.ReadAt(ctx, "f", p, 4); err != nil || n != 3 || string(p) != "456" {
			t.Fatalf("mid-copy read: n=%d err=%v p=%q", n, err, p)
		}
		if n, err := rw.WriteAt(ctx, "f", []byte("0123"), 0); err != nil || n != 4 {
			t.Fatalf("writeat head: n=%d err=%v", n, err)
		}
		if n, err := rw.WriteAt(ctx, "f", []byte("789"), 7); err != nil || n != 3 {
			t.Fatalf("writeat tail: n=%d err=%v", n, err)
		}
		data, err := b.ReadFile(ctx, "f")
		if err != nil || string(data) != "0123456789" {
			t.Fatalf("assembled file = %q err=%v", data, err)
		}
		if got := b.Used(); got != 10 {
			t.Fatalf("used = %d after fills, want 10 (WriteAt must not re-charge quota)", got)
		}
	})

	t.Run("WriteAtMissingFile", func(t *testing.T) {
		rw := asRW(t, mk(0))
		if _, err := rw.WriteAt(ctx, "ghost", []byte("x"), 0); !errors.Is(err, ErrNotExist) {
			t.Fatalf("writeat ghost: %v, want ErrNotExist", err)
		}
	})

	t.Run("WriteAtOutOfBounds", func(t *testing.T) {
		rw := asRW(t, mk(0))
		if err := rw.Allocate(ctx, "f", 8); err != nil {
			t.Fatal(err)
		}
		if _, err := rw.WriteAt(ctx, "f", []byte("xx"), 7); err == nil {
			t.Fatal("write past allocated size succeeded")
		}
		if _, err := rw.WriteAt(ctx, "f", []byte("x"), -1); err == nil {
			t.Fatal("negative-offset write succeeded")
		}
	})

	t.Run("ConcurrentChunkFill", func(t *testing.T) {
		b := mk(0)
		rw := asRW(t, b)
		const chunk, nchunks = 128, 16
		want := make([]byte, chunk*nchunks)
		for i := range want {
			want[i] = byte(i * 31)
		}
		if err := rw.Allocate(ctx, "f", int64(len(want))); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errc := make(chan error, nchunks)
		for i := 0; i < nchunks; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				off := int64(i * chunk)
				_, err := rw.WriteAt(ctx, "f", want[off:off+chunk], off)
				errc <- err
			}(i)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			if err != nil {
				t.Fatal(err)
			}
		}
		data, err := b.ReadFile(ctx, "f")
		if err != nil || !bytes.Equal(data, want) {
			t.Fatalf("concurrent fill mismatch (err=%v)", err)
		}
	})

	t.Run("ContextCancelled", func(t *testing.T) {
		rw := asRW(t, mk(0))
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if err := rw.Allocate(cctx, "f", 4); !errors.Is(err, context.Canceled) {
			t.Fatalf("allocate with cancelled ctx: %v", err)
		}
	})
}

// noRange hides the optional interfaces of a Backend so wrapper
// fallback paths can be exercised.
type noRange struct{ Backend }

// TestWrapperRangeWriterPassthrough pins down the instrumentation
// wrappers' RangeWriter behaviour: forwarding when the inner backend
// supports ranges, errors.ErrUnsupported when it does not, fault
// injection on chunk writes, and byte accounting.
func TestWrapperRangeWriterPassthrough(t *testing.T) {
	ctx := context.Background()

	t.Run("CountingForwardsAndCounts", func(t *testing.T) {
		inner := NewMemFS("mem", 0)
		c := NewCounting(inner)
		if err := c.Allocate(ctx, "f", 8); err != nil {
			t.Fatal(err)
		}
		if n, err := c.WriteAt(ctx, "f", []byte("abcd"), 2); err != nil || n != 4 {
			t.Fatalf("writeat: n=%d err=%v", n, err)
		}
		counts := c.Counts()
		if counts.BytesWritten != 4 {
			t.Fatalf("bytes written = %d, want 4 (allocate moves no bytes)", counts.BytesWritten)
		}
		if counts.Ops[OpWrite] != 2 {
			t.Fatalf("write ops = %d, want 2 (allocate + writeat)", counts.Ops[OpWrite])
		}
	})

	t.Run("CountingUnsupportedInner", func(t *testing.T) {
		c := NewCounting(noRange{NewMemFS("mem", 0)})
		if err := c.Allocate(ctx, "f", 8); !errors.Is(err, errors.ErrUnsupported) {
			t.Fatalf("allocate over bare backend: %v, want ErrUnsupported", err)
		}
		if _, err := c.WriteAt(ctx, "f", []byte("x"), 0); !errors.Is(err, errors.ErrUnsupported) {
			t.Fatalf("writeat over bare backend: %v, want ErrUnsupported", err)
		}
	})

	t.Run("FaultyInjectsOnChunkWrites", func(t *testing.T) {
		inner := NewMemFS("mem", 0)
		f := NewFaulty(inner)
		if err := f.Allocate(ctx, "f", 8); err != nil {
			t.Fatal(err)
		}
		f.FailNextWrites(1)
		if _, err := f.WriteAt(ctx, "f", []byte("ab"), 0); err == nil {
			t.Fatal("faulted chunk write succeeded")
		}
		// The window has healed: the retry goes through.
		if n, err := f.WriteAt(ctx, "f", []byte("ab"), 0); err != nil || n != 2 {
			t.Fatalf("post-heal writeat: n=%d err=%v", n, err)
		}
	})

	t.Run("FaultyUnsupportedInner", func(t *testing.T) {
		f := NewFaulty(noRange{NewMemFS("mem", 0)})
		if err := f.Allocate(ctx, "f", 8); !errors.Is(err, errors.ErrUnsupported) {
			t.Fatalf("allocate over bare backend: %v, want ErrUnsupported", err)
		}
		if _, err := f.WriteAt(ctx, "f", []byte("x"), 0); !errors.Is(err, errors.ErrUnsupported) {
			t.Fatalf("writeat over bare backend: %v, want ErrUnsupported", err)
		}
	})

	t.Run("ReadOnlyBackendRejects", func(t *testing.T) {
		m := NewMemFS("mem", 0)
		if err := m.Allocate(ctx, "f", 4); err != nil {
			t.Fatal(err)
		}
		m.SetReadOnly(true)
		if err := m.Allocate(ctx, "g", 4); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("allocate on read-only: %v", err)
		}
		if _, err := m.WriteAt(ctx, "f", []byte("x"), 0); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("writeat on read-only: %v", err)
		}
	})

	t.Run("InvalidName", func(t *testing.T) {
		m := NewMemFS("mem", 0)
		if err := m.Allocate(ctx, "../escape", 4); err == nil ||
			!strings.Contains(err.Error(), "name") {
			t.Fatalf("allocate with traversal name: %v", err)
		}
	})
}
