package storage_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"monarch/internal/storage"
	"monarch/internal/storage/storagetest"
)

// TestRangeWriterConformance runs the Allocate/WriteAt contract against
// every Backend that implements RangeWriter, the same way
// TestBackendConformance covers the base interface. Chunked placement
// depends on these semantics: reserve-then-fill quota accounting,
// in-bounds enforcement, and readers seeing written ranges mid-copy.
func TestRangeWriterConformance(t *testing.T) {
	for name, mk := range backendFactories(t) {
		t.Run(name, func(t *testing.T) {
			storagetest.RunRangeWriterConformance(t, mk)
		})
	}
}

// TestWriteConformance runs the write-lifecycle contract (the shapes
// Monarch.Create/WriteAt/Flush/Remove and journal recovery lean on)
// against every in-tree backend, including the instrumentation
// wrappers — the write path reaches the PFS through Counting in every
// experiment, so sentinel preservation through wrappers is load-bearing.
func TestWriteConformance(t *testing.T) {
	factories := backendFactories(t)
	factories["counting-memfs"] = func(capacity int64) storage.Backend {
		return storage.NewCounting(storage.NewMemFS("mem", capacity))
	}
	factories["faulty-memfs"] = func(capacity int64) storage.Backend {
		return storage.NewFaulty(storage.NewMemFS("mem", capacity))
	}
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) {
			storagetest.RunWriteConformance(t, mk)
		})
	}
}

// noRange hides the optional interfaces of a Backend so wrapper
// fallback paths can be exercised.
type noRange struct{ storage.Backend }

// TestWrapperRangeWriterPassthrough pins down the instrumentation
// wrappers' RangeWriter behaviour: forwarding when the inner backend
// supports ranges, errors.ErrUnsupported when it does not, fault
// injection on chunk writes, and byte accounting.
func TestWrapperRangeWriterPassthrough(t *testing.T) {
	ctx := context.Background()

	t.Run("CountingForwardsAndCounts", func(t *testing.T) {
		inner := storage.NewMemFS("mem", 0)
		c := storage.NewCounting(inner)
		if err := c.Allocate(ctx, "f", 8); err != nil {
			t.Fatal(err)
		}
		if n, err := c.WriteAt(ctx, "f", []byte("abcd"), 2); err != nil || n != 4 {
			t.Fatalf("writeat: n=%d err=%v", n, err)
		}
		counts := c.Counts()
		if counts.BytesWritten != 4 {
			t.Fatalf("bytes written = %d, want 4 (allocate moves no bytes)", counts.BytesWritten)
		}
		if counts.Ops[storage.OpWrite] != 2 {
			t.Fatalf("write ops = %d, want 2 (allocate + writeat)", counts.Ops[storage.OpWrite])
		}
	})

	t.Run("CountingUnsupportedInner", func(t *testing.T) {
		c := storage.NewCounting(noRange{storage.NewMemFS("mem", 0)})
		if err := c.Allocate(ctx, "f", 8); !errors.Is(err, errors.ErrUnsupported) {
			t.Fatalf("allocate over bare backend: %v, want ErrUnsupported", err)
		}
		if _, err := c.WriteAt(ctx, "f", []byte("x"), 0); !errors.Is(err, errors.ErrUnsupported) {
			t.Fatalf("writeat over bare backend: %v, want ErrUnsupported", err)
		}
	})

	t.Run("FaultyInjectsOnChunkWrites", func(t *testing.T) {
		inner := storage.NewMemFS("mem", 0)
		f := storage.NewFaulty(inner)
		if err := f.Allocate(ctx, "f", 8); err != nil {
			t.Fatal(err)
		}
		f.FailNextWrites(1)
		if _, err := f.WriteAt(ctx, "f", []byte("ab"), 0); err == nil {
			t.Fatal("faulted chunk write succeeded")
		}
		// The window has healed: the retry goes through.
		if n, err := f.WriteAt(ctx, "f", []byte("ab"), 0); err != nil || n != 2 {
			t.Fatalf("post-heal writeat: n=%d err=%v", n, err)
		}
	})

	t.Run("FaultyUnsupportedInner", func(t *testing.T) {
		f := storage.NewFaulty(noRange{storage.NewMemFS("mem", 0)})
		if err := f.Allocate(ctx, "f", 8); !errors.Is(err, errors.ErrUnsupported) {
			t.Fatalf("allocate over bare backend: %v, want ErrUnsupported", err)
		}
		if _, err := f.WriteAt(ctx, "f", []byte("x"), 0); !errors.Is(err, errors.ErrUnsupported) {
			t.Fatalf("writeat over bare backend: %v, want ErrUnsupported", err)
		}
	})

	t.Run("ReadOnlyBackendRejects", func(t *testing.T) {
		m := storage.NewMemFS("mem", 0)
		if err := m.Allocate(ctx, "f", 4); err != nil {
			t.Fatal(err)
		}
		m.SetReadOnly(true)
		if err := m.Allocate(ctx, "g", 4); !errors.Is(err, storage.ErrReadOnly) {
			t.Fatalf("allocate on read-only: %v", err)
		}
		if _, err := m.WriteAt(ctx, "f", []byte("x"), 0); !errors.Is(err, storage.ErrReadOnly) {
			t.Fatalf("writeat on read-only: %v", err)
		}
	})

	t.Run("InvalidName", func(t *testing.T) {
		m := storage.NewMemFS("mem", 0)
		if err := m.Allocate(ctx, "../escape", 4); err == nil ||
			!strings.Contains(err.Error(), "name") {
			t.Fatalf("allocate with traversal name: %v", err)
		}
	})
}
