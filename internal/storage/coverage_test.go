package storage

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestBackendNameAccessors(t *testing.T) {
	m := NewMemFS("memname", 0)
	if m.Name() != "memname" {
		t.Fatal("memfs name")
	}
	dir := t.TempDir()
	o, err := NewOSFS("osname", dir, 77)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "osname" || o.Root() != dir || o.Capacity() != 77 {
		t.Fatal("osfs accessors")
	}
}

func TestOSFSStatOnDirectoryEntry(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	o, err := NewOSFS("o", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.WriteFile(ctx, "sub/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Stat of an existing file under a subdirectory.
	fi, err := o.Stat(ctx, "sub/f")
	if err != nil || fi.Size != 1 {
		t.Fatalf("%+v %v", fi, err)
	}
	// Stat with an invalid name.
	if _, err := o.Stat(ctx, "../escape"); err == nil {
		t.Fatal("traversal accepted")
	}
}

func TestOSFSWriteFileOverwriteAccounting(t *testing.T) {
	ctx := context.Background()
	o, err := NewOSFS("o", t.TempDir(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.WriteFile(ctx, "f", make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	// Replace with a smaller file: quota must shrink accordingly.
	if err := o.WriteFile(ctx, "f", make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	if o.Used() != 30 {
		t.Fatalf("used = %d", o.Used())
	}
	// Now a 60-byte sibling fits.
	if err := o.WriteFile(ctx, "g", make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
}

func TestOSFSWriteFileUndoOnMkdirFailure(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	o, err := NewOSFS("o", dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Create a *file* where WriteFile will need a directory: MkdirAll
	// fails and the quota reservation must roll back.
	if err := o.WriteFile(ctx, "blocker", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteFile(ctx, "blocker/child", []byte("y")); err == nil {
		t.Fatal("expected mkdir failure")
	}
	if o.Used() != 1 {
		t.Fatalf("quota leaked: used = %d", o.Used())
	}
}

func TestOSFSRemoveInvalidName(t *testing.T) {
	o, err := NewOSFS("o", t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Remove(context.Background(), "/abs"); err == nil {
		t.Fatal("absolute name accepted")
	}
}

func TestOSFSListSkipsNothingAndIsSorted(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	o, err := NewOSFS("o", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b/x", "a", "c/d/e"} {
		if err := o.WriteFile(ctx, name, []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := o.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || infos[0].Name != "a" || infos[1].Name != "b/x" || infos[2].Name != "c/d/e" {
		t.Fatalf("%+v", infos)
	}
}

func TestOSFSReadAtInvalidName(t *testing.T) {
	o, err := NewOSFS("o", t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.ReadAt(context.Background(), "..", make([]byte, 1), 0); err == nil {
		t.Fatal("parent traversal accepted")
	}
	if _, err := o.ReadFile(context.Background(), "/abs"); err == nil {
		t.Fatal("absolute accepted")
	}
}

func TestOSFSStatPermissionError(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	ctx := context.Background()
	dir := t.TempDir()
	o, err := NewOSFS("o", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.WriteFile(ctx, "locked/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	locked := filepath.Join(dir, "locked")
	if err := os.Chmod(locked, 0); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(locked, 0o755)
	if _, err := o.Stat(ctx, "locked/f"); err == nil {
		t.Fatal("expected permission error")
	} else if errors.Is(err, ErrNotExist) {
		t.Fatal("permission error misreported as not-exist")
	}
}
